(* The out-of-order core: architectural agreement with the ISS on all
   workloads and configurations, plus structural behaviour (fusion,
   move elimination, branch prediction learning, Figure 15 counters). *)

let dut_run cfg prog ~max_cycles =
  let soc = Xiangshan.Soc.create cfg in
  Xiangshan.Soc.load_program soc prog;
  let _ = Xiangshan.Soc.run ~max_cycles soc in
  soc

let iss_exit prog =
  let m = Iss.Interp.create ~hartid:0 () in
  Iss.Interp.load_program m prog;
  let _ = Iss.Interp.run ~max_insns:200_000_000 m in
  Iss.Interp.exit_code m

let agreement_case cfg (w : Workloads.Wl_common.t) =
  Alcotest.test_case
    (Printf.sprintf "%s on %s" w.wl_name cfg.Xiangshan.Config.cfg_name)
    `Slow
    (fun () ->
      let prog = w.program ~scale:w.small in
      let soc = dut_run cfg prog ~max_cycles:50_000_000 in
      Alcotest.(check (option int))
        "exit code" (iss_exit prog)
        (Xiangshan.Soc.exit_code soc);
      let core = soc.Xiangshan.Soc.cores.(0) in
      Alcotest.(check bool) "ipc sane" true
        (Xiangshan.Core.ipc core > 0.05 && Xiangshan.Core.ipc core < 6.0))

let test_fusion_and_move_elim () =
  let prog = (Workloads.Suite.find "lbm_like").program ~scale:1 in
  let soc = dut_run Xiangshan.Config.nh_single prog ~max_cycles:20_000_000 in
  let perf = soc.Xiangshan.Soc.cores.(0).Xiangshan.Core.perf in
  Alcotest.(check bool) "fused some pairs" true
    (perf.Xiangshan.Core.p_fused > 0);
  Alcotest.(check bool) "eliminated some moves" true
    (perf.Xiangshan.Core.p_moves_eliminated > 0);
  (* YQH has both features off *)
  let soc' = dut_run Xiangshan.Config.yqh prog ~max_cycles:50_000_000 in
  let perf' = soc'.Xiangshan.Soc.cores.(0).Xiangshan.Core.perf in
  Alcotest.(check int) "yqh no fusion" 0 perf'.Xiangshan.Core.p_fused;
  Alcotest.(check int) "yqh no move elim" 0
    perf'.Xiangshan.Core.p_moves_eliminated

let test_bpu_learns () =
  (* sjeng-like is hard to predict; a regular loop is easy *)
  let easy = (Workloads.Suite.find "stream_like").program ~scale:1 in
  let hard = (Workloads.Suite.find "sjeng_like").program ~scale:2 in
  let mpki prog =
    let soc = dut_run Xiangshan.Config.yqh prog ~max_cycles:50_000_000 in
    let core = soc.Xiangshan.Soc.cores.(0) in
    Xiangshan.Bpu.mpki core.Xiangshan.Core.bpu
      ~instructions:core.Xiangshan.Core.perf.Xiangshan.Core.p_instrs
  in
  let e = mpki easy and h = mpki hard in
  Alcotest.(check bool)
    (Printf.sprintf "stream MPKI %.2f < 3" e)
    true (e < 3.0);
  Alcotest.(check bool)
    (Printf.sprintf "sjeng MPKI %.2f > 3 (PUBS paper threshold)" h)
    true (h > 3.0)

let test_ready_histogram () =
  let prog = (Workloads.Suite.find "sjeng_like").program ~scale:1 in
  let soc = dut_run Xiangshan.Config.yqh prog ~max_cycles:20_000_000 in
  let perf = soc.Xiangshan.Soc.cores.(0).Xiangshan.Core.perf in
  let total = Array.fold_left ( + ) 0 perf.Xiangshan.Core.ready_hist in
  Alcotest.(check bool) "histogram populated" true (total > 1000);
  Alcotest.(check bool) "some cycles have >2 ready" true
    (Array.fold_left ( + ) 0
       (Array.sub perf.Xiangshan.Core.ready_hist 3 14)
    > 0)

let test_pubs_policy_runs () =
  let prog = (Workloads.Suite.find "sjeng_like").program ~scale:1 in
  let cfg =
    { Xiangshan.Config.yqh with Xiangshan.Config.issue_policy = Xiangshan.Config.Pubs }
  in
  let soc = dut_run cfg prog ~max_cycles:20_000_000 in
  Alcotest.(check (option int)) "pubs config correct" (iss_exit prog)
    (Xiangshan.Soc.exit_code soc);
  let perf = soc.Xiangshan.Soc.cores.(0).Xiangshan.Core.perf in
  Alcotest.(check bool) "high-priority uops marked" true
    (perf.Xiangshan.Core.p_hi_prio > 0)

let test_vm_kernel_on_dut () =
  let prog = Workloads.Vm_kernel.program ~scale:1 () in
  let soc = dut_run Xiangshan.Config.yqh prog ~max_cycles:50_000_000 in
  Alcotest.(check (option int)) "same exit as REF" (iss_exit prog)
    (Xiangshan.Soc.exit_code soc);
  let core = soc.Xiangshan.Soc.cores.(0) in
  (* the DUT must have taken page faults (lazy allocation) *)
  Alcotest.(check bool) "page faults occurred" true
    (core.Xiangshan.Core.perf.Xiangshan.Core.p_traps > 10);
  (* and performed hardware page walks *)
  Alcotest.(check bool) "walks occurred" true
    (core.Xiangshan.Core.tlb.Xiangshan.Tlb.walks > 0)

let test_smp_runs () =
  let prog = Workloads.Smp.spinlock ~scale:2 in
  let soc = dut_run Xiangshan.Config.nh prog ~max_cycles:50_000_000 in
  (* 2 harts x 100 increments = 200 *)
  Alcotest.(check (option int)) "SMP counter" (Some 200)
    (Xiangshan.Soc.exit_code soc)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_table2_printout () =
  let s = Xiangshan.Config.table2 () in
  Alcotest.(check bool) "mentions ROB sizes" true
    (contains s "192/64/48" && contains s "256/80/64")

let tests =
  List.map (agreement_case Xiangshan.Config.yqh) Workloads.Suite.all
  @ List.map (agreement_case Xiangshan.Config.nh_single) Workloads.Suite.all
  @ [
      Alcotest.test_case "fusion and move elimination" `Slow
        test_fusion_and_move_elim;
      Alcotest.test_case "branch predictor learns" `Slow test_bpu_learns;
      Alcotest.test_case "ready-instruction histogram (Fig 15)" `Quick
        test_ready_histogram;
      Alcotest.test_case "PUBS issue policy" `Quick test_pubs_policy_runs;
      Alcotest.test_case "vm kernel on the DUT" `Slow test_vm_kernel_on_dut;
      Alcotest.test_case "dual-core SMP" `Slow test_smp_runs;
      Alcotest.test_case "Table II printout" `Quick test_table2_printout;
    ]
