(* Two-phase cycle model (DESIGN.md "Two-phase cycle semantics").

   Phase 1 must read only the start-of-cycle snapshot, so stepping the
   unit planners in ANY order has to be indistinguishable: identical
   DiffTest verdicts, identical commit counts, identical counter
   snapshots, identical fault-campaign cells.  These tests pin that
   property with seeded permutations across both REF backends, and pin
   the phase-2 arbitration rules (snapshot claims never oversubscribe
   a structure; flushes cancel or invalidate younger same-cycle plans;
   fault hooks at the effect boundary degrade plans to stalls, never
   crashes). *)

module Core = Xiangshan.Core
module Soc = Xiangshan.Soc

let shuffles = [ Core.Shuffle 1; Core.Shuffle 42; Core.Shuffle 1337 ]

let order_name = function
  | Core.Default_order -> "default"
  | Core.Shuffle s -> Printf.sprintf "shuffle:%d" s

let set_order soc o =
  Array.iter (fun c -> Core.set_phase_order c o) soc.Soc.cores

(* Run [wl] under DiffTest with a given phase order and REF backend;
   return every observable the permutation identity must cover. *)
let observe ?(cfg = Xiangshan.Config.yqh) ~ref_kind ~order wl =
  let prog = (Workloads.Suite.find wl).program ~scale:1 in
  let soc = Soc.create cfg in
  Soc.load_program soc prog;
  set_order soc order;
  let dt = Minjie.Difftest.create ~ref_kind ~prog soc in
  let status =
    match Minjie.Difftest.run ~max_cycles:20_000_000 dt with
    | Minjie.Difftest.Running -> "running"
    | Minjie.Difftest.Finished code -> Printf.sprintf "finished:%d" code
    | Minjie.Difftest.Failed f -> "failed:" ^ Minjie.Rule.string_of_failure f
  in
  (status, Minjie.Difftest.commits_checked dt, Soc.counter_snapshot soc ~hartid:0)

let check_identity ~what baseline other =
  let sb, cb, kb = baseline and so, co, ko = other in
  Alcotest.(check string) (what ^ " verdict") sb so;
  Alcotest.(check int) (what ^ " commits checked") cb co;
  Alcotest.(check (list (pair string int))) (what ^ " counter snapshot") kb ko

let test_permutations_iss () =
  List.iter
    (fun wl ->
      let baseline =
        observe ~ref_kind:Minjie.Ref_model.Iss ~order:Core.Default_order wl
      in
      List.iter
        (fun order ->
          check_identity
            ~what:(Printf.sprintf "%s iss %s" wl (order_name order))
            baseline
            (observe ~ref_kind:Minjie.Ref_model.Iss ~order wl))
        shuffles)
    [ "coremark_like"; "stream_like" ]

let test_permutations_nemu () =
  let wl = "coremark_like" in
  let baseline =
    observe ~ref_kind:Minjie.Ref_model.Nemu ~order:Core.Default_order wl
  in
  List.iter
    (fun order ->
      check_identity
        ~what:(Printf.sprintf "%s nemu %s" wl (order_name order))
        baseline
        (observe ~ref_kind:Minjie.Ref_model.Nemu ~order wl))
    shuffles

(* Redirect-vs-commit arbitration: commit applies first, so a trap or
   serialising flush squashes the uop whose same-cycle redirect would
   otherwise fire; the issue-side revalidation must suppress it.  The
   VM kernel takes page faults continuously (commit-side flushes) on
   top of ordinary mispredict redirects, so every arbitration row is
   exercised -- under permutation, the outcome must not move. *)
let test_redirect_vs_commit_under_permutation () =
  let run order =
    let prog = Workloads.Vm_kernel.program ~scale:1 () in
    let soc = Soc.create Xiangshan.Config.yqh in
    Soc.load_program soc prog;
    set_order soc order;
    let cycles = Soc.run ~max_cycles:50_000_000 soc in
    let core = soc.Soc.cores.(0) in
    Alcotest.(check bool) "traps exercised" true
      (core.Core.perf.Core.p_traps > 10);
    Alcotest.(check bool) "flushes exercised" true
      (core.Core.perf.Core.p_flushes > 10);
    (cycles, Soc.exit_code soc, Core.counter_snapshot core)
  in
  let cd, ed, kd = run Core.Default_order in
  List.iter
    (fun order ->
      let cs, es, ks = run order in
      let what = "vm_kernel " ^ order_name order in
      Alcotest.(check int) (what ^ " cycles") cd cs;
      Alcotest.(check (option int)) (what ^ " exit") ed es;
      Alcotest.(check (list (pair string int))) (what ^ " counters") kd ks)
    shuffles

let iss_exit prog =
  let m = Iss.Interp.create ~hartid:0 () in
  Iss.Interp.load_program m prog;
  ignore (Iss.Interp.run ~max_insns:200_000_000 m);
  Iss.Interp.exit_code m

let counter soc name =
  List.assoc name (Soc.counter_snapshot soc ~hartid:0)

(* Drive a SoC cycle by cycle asserting, every cycle, that the
   dispatch plan never oversubscribed a structure: phase-1 claims come
   from the start-of-cycle snapshot and resources are only freed
   during apply, so occupancy can never exceed capacity.  Also checks
   the O(1) LSU occupancy mirrors against the lists they shadow. *)
let run_with_occupancy_invariant cfg prog ~order =
  let soc = Soc.create cfg in
  Soc.load_program soc prog;
  set_order soc order;
  let core = soc.Soc.cores.(0) in
  let steps = ref 0 in
  while (not (Soc.exited soc)) && !steps < 50_000_000 do
    Soc.tick soc;
    incr steps;
    let le what limit v =
      if v > limit then
        Alcotest.failf "cycle %d: %s = %d > %d" core.Core.now what v limit
    in
    le "rob" cfg.Xiangshan.Config.rob_size (Xiangshan.Rob.count core.Core.rob);
    Array.iter
      (fun iq ->
        le "iq" (Xiangshan.Iq.capacity iq) (Xiangshan.Iq.occupancy iq))
      core.Core.iqs;
    let lsu = core.Core.lsu in
    le "lq" cfg.Xiangshan.Config.lq_size (Xiangshan.Lsu.lq_occupancy lsu);
    le "sq" cfg.Xiangshan.Config.sq_size (Xiangshan.Lsu.sq_occupancy lsu);
    le "sb" cfg.Xiangshan.Config.store_buffer_size
      (Xiangshan.Lsu.sb_occupancy lsu);
    if Xiangshan.Lsu.lq_occupancy lsu <> List.length lsu.Xiangshan.Lsu.lq then
      Alcotest.failf "cycle %d: lq_n out of sync" core.Core.now;
    if Xiangshan.Lsu.sq_occupancy lsu <> List.length lsu.Xiangshan.Lsu.sq then
      Alcotest.failf "cycle %d: sq_n out of sync" core.Core.now;
    (* rename discipline: the next seq is always the ROB tail *)
    if core.Core.seq <> core.Core.rob.Xiangshan.Rob.tail then
      Alcotest.failf "cycle %d: seq %d <> rob tail %d" core.Core.now
        core.Core.seq core.Core.rob.Xiangshan.Rob.tail
  done;
  soc

(* ROB-full arbitration: an 8-entry ROB forces the planner to cut the
   dispatch group at the snapshot limit every few cycles. *)
let test_rob_full_arbitration () =
  let cfg = { Xiangshan.Config.yqh with Xiangshan.Config.rob_size = 8 } in
  let prog = (Workloads.Suite.find "coremark_like").program ~scale:1 in
  let soc = run_with_occupancy_invariant cfg prog ~order:(Core.Shuffle 5) in
  Alcotest.(check (option int)) "correct exit" (iss_exit prog)
    (Soc.exit_code soc);
  Alcotest.(check bool) "rob-full stalls attributed" true
    (counter soc "stall.dispatch.rob_full" > 0)

(* SB-full arbitration: a 1-entry store buffer makes commit and the
   background drain fight over the only slot; commit's enqueue wins
   and drain eligibility is re-read from the snapshot next cycle. *)
let test_sb_full_arbitration () =
  let cfg =
    { Xiangshan.Config.yqh with Xiangshan.Config.store_buffer_size = 1 }
  in
  let prog = (Workloads.Suite.find "stream_like").program ~scale:1 in
  let soc = run_with_occupancy_invariant cfg prog ~order:(Core.Shuffle 5) in
  Alcotest.(check (option int)) "correct exit" (iss_exit prog)
    (Soc.exit_code soc);
  Alcotest.(check bool) "sb-full stalls attributed" true
    (counter soc "stall.commit.sb_full" > 0)

(* Fault hooks fire at the effect boundary (between step and apply):
   a hook that flushes the whole speculative state mid-cycle leaves
   phase-2 holding a plan for uops that no longer exist.  Revalidation
   must degrade every such plan to a stall -- the run still reaches
   the architecturally correct exit, identically under every phase
   order.  (A flush to the committed pc is architecturally neutral, so
   the ISS exit code is still the oracle.) *)
let test_boundary_flush_degrades_to_stall () =
  let prog = (Workloads.Suite.find "coremark_like").program ~scale:1 in
  let run order =
    let soc = Soc.create Xiangshan.Config.yqh in
    Soc.load_program soc prog;
    set_order soc order;
    Soc.add_fault_hook soc (fun s ->
        if s.Soc.now mod 97 = 0 then
          let c = s.Soc.cores.(0) in
          Core.flush c
            ~after:(c.Core.rob.Xiangshan.Rob.head - 1)
            ~target:c.Core.arch.Riscv.Arch_state.pc);
    let cycles = Soc.run ~max_cycles:50_000_000 soc in
    (cycles, Soc.exit_code soc, Soc.counter_snapshot soc ~hartid:0)
  in
  let cd, ed, kd = run Core.Default_order in
  Alcotest.(check (option int)) "correct exit" (iss_exit prog) ed;
  List.iter
    (fun order ->
      let cs, es, ks = run order in
      let what = "boundary flush " ^ order_name order in
      Alcotest.(check int) (what ^ " cycles") cd cs;
      Alcotest.(check (option int)) (what ^ " exit") ed es;
      Alcotest.(check (list (pair string int))) (what ^ " counters") kd ks)
    shuffles

(* Campaign smoke across permutations: detection, rule, latency and
   the LightSSS replay verdict of a fault cell must not depend on the
   phase-1 order.  iq-lost-uop is the sharpest case -- its hook steals
   a waiting uop at the effect boundary, exactly between a phase-1
   issue selection and its phase-2 application. *)
let test_campaign_cells_under_permutation () =
  let cell fault =
    Minjie.Campaign.run_cell ~fault:(Minjie.Fault.find fault) ~seed:1 ()
  in
  List.iter
    (fun fault ->
      Unix.putenv "MINJIE_PHASE_ORDER" "";
      let base = cell fault in
      Alcotest.(check bool) (fault ^ " detected") true
        base.Minjie.Campaign.c_detected;
      Fun.protect
        ~finally:(fun () -> Unix.putenv "MINJIE_PHASE_ORDER" "")
        (fun () ->
          List.iter
            (fun seed ->
              Unix.putenv "MINJIE_PHASE_ORDER"
                (Printf.sprintf "shuffle:%d" seed);
              let shuffled = cell fault in
              if shuffled <> base then
                Alcotest.failf "%s cell diverged under shuffle:%d:\n%s\nvs\n%s"
                  fault seed
                  (Minjie.Campaign.string_of_cell shuffled)
                  (Minjie.Campaign.string_of_cell base))
            [ 3; 11 ]))
    [ "iq-lost-uop"; "lsu-sb-drop"; "csr-mtvec-corrupt" ]

(* The MINJIE_PHASE_ORDER parser. *)
let test_phase_order_env () =
  let with_env v f =
    Unix.putenv "MINJIE_PHASE_ORDER" v;
    Fun.protect ~finally:(fun () -> Unix.putenv "MINJIE_PHASE_ORDER" "") f
  in
  let order_of v =
    with_env v (fun () ->
        let soc = Soc.create Xiangshan.Config.yqh in
        soc.Soc.cores.(0).Core.phase_order)
  in
  Alcotest.(check bool) "default" true (order_of "default" = Core.Default_order);
  Alcotest.(check bool) "empty" true (order_of "" = Core.Default_order);
  Alcotest.(check bool) "shuffle" true (order_of "shuffle" = Core.Shuffle 1);
  Alcotest.(check bool) "shuffle:9" true (order_of "shuffle:9" = Core.Shuffle 9);
  Alcotest.(check bool) "garbage" true (order_of "shuffle:x" = Core.Default_order)

let tests =
  [
    Alcotest.test_case "MINJIE_PHASE_ORDER parsing" `Quick test_phase_order_env;
    Alcotest.test_case "permutation identity under DiffTest (ISS REF)" `Slow
      test_permutations_iss;
    Alcotest.test_case "permutation identity under DiffTest (NEMU REF)" `Slow
      test_permutations_nemu;
    Alcotest.test_case "redirect-vs-commit arbitration under permutation" `Slow
      test_redirect_vs_commit_under_permutation;
    Alcotest.test_case "ROB-full: snapshot claims never oversubscribe" `Slow
      test_rob_full_arbitration;
    Alcotest.test_case "SB-full: commit wins the last slot" `Slow
      test_sb_full_arbitration;
    Alcotest.test_case "boundary fault flush degrades plans to stalls" `Slow
      test_boundary_flush_degrades_to_stall;
    Alcotest.test_case "campaign cells identical under permutation" `Slow
      test_campaign_cells_under_permutation;
  ]
