(* REF conformance: the two Ref_model backends (the ISS interpreter
   and the NEMU block-compiled non-autonomous core) must be
   observationally identical -- same commit stream stepped standalone,
   same response to the DRAV control plane, same verdicts and
   rule-fire counts under DiffTest, and interchangeable in the
   fault-injection workflow. *)

open Riscv

let both = [ Minjie.Ref_model.Iss; Minjie.Ref_model.Nemu ]

let make kind prog = Minjie.Ref_model.create ~kind ~hartid:0 ~prog ()

let show_commit (c : Minjie.Ref_model.commit) =
  Printf.sprintf "pc=0x%Lx next=0x%Lx insn=%s trap=%s load=%s store=%s" c.pc
    c.next_pc (Insn.show c.insn)
    (match c.trap with
    | Some t -> Trap.show_exc t.Minjie.Ref_model.exc
    | None -> "-")
    (match c.load with
    | Some a -> Printf.sprintf "0x%Lx=0x%Lx" a.paddr a.value
    | None -> "-")
    (match c.store with
    | Some a -> Printf.sprintf "0x%Lx=0x%Lx" a.paddr a.value
    | None -> "-")

(* Step both REFs to program exit, requiring every commit record --
   pc, next pc, decoded instruction, traps, memory accesses, CSR
   reads -- to match field for field. *)
let lockstep ?(max_insns = 2_000_000) name prog =
  let a = make Minjie.Ref_model.Iss prog
  and b = make Minjie.Ref_model.Nemu prog in
  let n = ref 0 and running = ref true in
  while !running do
    (match (a.Minjie.Ref_model.step (), b.Minjie.Ref_model.step ()) with
    | Minjie.Ref_model.Exited, Minjie.Ref_model.Exited -> running := false
    | Minjie.Ref_model.Committed ca, Minjie.Ref_model.Committed cb ->
        if ca <> cb then
          Alcotest.failf "%s: commit %d diverges\n  iss:  %s\n  nemu: %s" name
            !n (show_commit ca) (show_commit cb)
    | Minjie.Ref_model.Exited, Minjie.Ref_model.Committed c ->
        Alcotest.failf "%s: iss exited at %d, nemu still commits %s" name !n
          (show_commit c)
    | Minjie.Ref_model.Committed c, Minjie.Ref_model.Exited ->
        Alcotest.failf "%s: nemu exited at %d, iss still commits %s" name !n
          (show_commit c));
    incr n;
    if !n > max_insns then Alcotest.failf "%s: no exit in %d insns" name !n
  done;
  Alcotest.(check (option int))
    (name ^ " exit codes")
    (a.Minjie.Ref_model.exit_code ())
    (b.Minjie.Ref_model.exit_code ());
  for x = 1 to 31 do
    if a.Minjie.Ref_model.get_reg x <> b.Minjie.Ref_model.get_reg x then
      Alcotest.failf "%s: final x%d: iss 0x%Lx nemu 0x%Lx" name x
        (a.Minjie.Ref_model.get_reg x)
        (b.Minjie.Ref_model.get_reg x)
  done

let test_lockstep_fuzz () =
  for seed = 1 to 12 do
    lockstep
      (Printf.sprintf "testgen seed %d" seed)
      (Workloads.Testgen.program ~seed ())
  done

let test_lockstep_workloads () =
  List.iter
    (fun wname ->
      let w = Minjie.Campaign.find_workload wname in
      lockstep wname (w.Workloads.Wl_common.program ~scale:w.small))
    [ "coremark_like"; "mcf_like"; "vm_kernel"; "bwaves_like" ]

(* The control plane must behave identically: patches land in the
   same registers, forced traps redirect both backends to the same
   handler, and the commit streams re-converge afterwards. *)
let test_control_plane () =
  let prog =
    (Minjie.Campaign.find_workload "coremark_like").Workloads.Wl_common.program
      ~scale:1
  in
  let a = make Minjie.Ref_model.Iss prog
  and b = make Minjie.Ref_model.Nemu prog in
  let step_both what =
    match (a.Minjie.Ref_model.step (), b.Minjie.Ref_model.step ()) with
    | Minjie.Ref_model.Committed ca, Minjie.Ref_model.Committed cb ->
        if ca <> cb then
          Alcotest.failf "%s: commits diverge\n  iss:  %s\n  nemu: %s" what
            (show_commit ca) (show_commit cb);
        ca
    | _ -> Alcotest.failf "%s: unexpected exit" what
  in
  for _ = 1 to 50 do
    ignore (step_both "warm-up")
  done;
  (* register patch: visible to both immediately and to the next
     commit (NEMU's compiled routines read registers at call time) *)
  List.iter
    (fun (r : Minjie.Ref_model.t) ->
      r.Minjie.Ref_model.patch_reg 7 0x1234_5678L)
    [ a; b ];
  Alcotest.(check int64) "patched x7 (iss)" 0x1234_5678L
    (a.Minjie.Ref_model.get_reg 7);
  Alcotest.(check int64) "patched x7 (nemu)" 0x1234_5678L
    (b.Minjie.Ref_model.get_reg 7);
  ignore (step_both "after patch_reg");
  (* counter sync *)
  List.iter
    (fun (r : Minjie.Ref_model.t) ->
      r.Minjie.Ref_model.set_mcycle 9999L;
      r.Minjie.Ref_model.set_time 4242L;
      r.Minjie.Ref_model.set_counters ~cycle:10_000L ~instret:777L)
    [ a; b ];
  ignore (step_both "after counter sync");
  (* forced exception: both must trap on the next step, committing
     the same trap record and landing on the same handler pc *)
  List.iter
    (fun (r : Minjie.Ref_model.t) ->
      r.Minjie.Ref_model.force_exception Trap.Load_page_fault 0xdead_0000L)
    [ a; b ];
  let c = step_both "forced page fault" in
  (match c.Minjie.Ref_model.trap with
  | Some t ->
      Alcotest.(check bool)
        "forced trap cause" true
        (Trap.equal_exc t.Minjie.Ref_model.exc Trap.Load_page_fault)
  | None -> Alcotest.fail "forced page fault produced no trap commit");
  (* forced interrupt, with the pending bit mirrored first *)
  List.iter
    (fun (r : Minjie.Ref_model.t) ->
      r.Minjie.Ref_model.set_mip_bit (Trap.irq_code Trap.Mtip) true;
      r.Minjie.Ref_model.force_interrupt Trap.Mtip)
    [ a; b ];
  let c = step_both "forced interrupt" in
  (match c.Minjie.Ref_model.interrupt with
  | Some irq ->
      Alcotest.(check bool) "forced irq" true (Trap.equal_irq irq Trap.Mtip)
  | None -> Alcotest.fail "forced interrupt produced no interrupt commit");
  (* streams stay converged after the control-plane traffic *)
  for _ = 1 to 200 do
    ignore (step_both "post-control-plane")
  done

(* Memory patches must invalidate any NEMU uop block compiled from
   the patched page: patch the next instruction's bytes and require
   the new instruction to be the one committed. *)
let test_patch_mem_code () =
  let prog =
    (Minjie.Campaign.find_workload "coremark_like").Workloads.Wl_common.program
      ~scale:1
  in
  List.iter
    (fun kind ->
      let r = make kind prog in
      let c =
        match r.Minjie.Ref_model.step () with
        | Minjie.Ref_model.Committed c -> c
        | Minjie.Ref_model.Exited -> Alcotest.fail "exited on first step"
      in
      (* overwrite the already-compiled next instruction with
         addi x31, x0, 1  (0x00100f93) *)
      r.Minjie.Ref_model.patch_mem ~paddr:c.Minjie.Ref_model.next_pc ~size:4
        ~value:0x0010_0f93L;
      (match r.Minjie.Ref_model.step () with
      | Minjie.Ref_model.Committed c2 -> (
          match c2.Minjie.Ref_model.insn with
          | Insn.Op_imm (Insn.ADD, 31, 0, 1L) -> ()
          | i ->
              Alcotest.failf "%s REF executed stale code: %s"
                (Minjie.Ref_model.kind_name kind)
                (Insn.show i))
      | Minjie.Ref_model.Exited -> Alcotest.fail "exited after patch");
      Alcotest.(check int64)
        (Minjie.Ref_model.kind_name kind ^ " patched code executed")
        1L
        (r.Minjie.Ref_model.get_reg 31))
    both

(* --- REF-mode jump-site inline caches ---------------------------------

   The NEMU REF links taken jumps block-to-block through per-site
   inline caches (the REF analogue of trace chaining).  The linking
   must be commit-stream invisible, actually exercised on indirect
   calls, disabled cleanly, and safely invalidated by patch_mem
   (generation bump), including for blocks reachable only through an
   inline cache. *)

let test_ref_ic_lockstep () =
  lockstep "indirect calls" Test_engines.indirect_call_program;
  lockstep "self-modifying + fence.i" Test_engines.selfmod_fencei_program

let test_ref_ic_counters () =
  let run mega =
    let r = Nemu.Ref_core.create ~megablocks:mega () in
    Nemu.Ref_core.load_program r Test_engines.indirect_call_program;
    let _ = Nemu.Ref_core.run r in
    Alcotest.(check (option int))
      (Printf.sprintf "exit (ic %b)" mega)
      (Some 120) (Nemu.Ref_core.exit_code r);
    r
  in
  let r = run true in
  Alcotest.(check bool)
    (Printf.sprintf "ic hits %d > misses %d" r.Nemu.Ref_core.ic_hits
       r.Nemu.Ref_core.ic_misses)
    true
    (r.Nemu.Ref_core.ic_hits > r.Nemu.Ref_core.ic_misses);
  let r0 = run false in
  Alcotest.(check int) "ic off: no hits" 0 r0.Nemu.Ref_core.ic_hits

let test_ref_ic_patch_mem () =
  let prog = Test_engines.indirect_call_program in
  let a = make Minjie.Ref_model.Iss prog
  and b = make Minjie.Ref_model.Nemu prog in
  let step_both what =
    match (a.Minjie.Ref_model.step (), b.Minjie.Ref_model.step ()) with
    | Minjie.Ref_model.Committed ca, Minjie.Ref_model.Committed cb ->
        if ca <> cb then
          Alcotest.failf "%s: commits diverge\n  iss:  %s\n  nemu: %s" what
            (show_commit ca) (show_commit cb);
        true
    | Minjie.Ref_model.Exited, Minjie.Ref_model.Exited -> false
    | _ -> Alcotest.failf "%s: one REF exited early" what
  in
  (* enough steps that the call-site inline caches are linked to both
     callees *)
  for _ = 1 to 40 do
    ignore (step_both "warm-up")
  done;
  (* patch f1's first instruction (addi a0,a0,1 -> addi a0,a0,5)
     through the DRAV write path: the NEMU REF must not execute the
     stale linked block *)
  let f1 = Riscv.Asm.label_addr prog "f1" in
  List.iter
    (fun (r : Minjie.Ref_model.t) ->
      r.Minjie.Ref_model.patch_mem ~paddr:f1 ~size:4 ~value:0x0055_0513L)
    [ a; b ];
  while step_both "after patch" do
    ()
  done;
  Alcotest.(check (option int))
    "exit codes agree after patching a linked callee"
    (a.Minjie.Ref_model.exit_code ())
    (b.Minjie.Ref_model.exit_code ())

(* Same DUT, either REF: DiffTest must reach the same verdict with
   the same rule-fire profile and commit count. *)
let difftest_profile kind prog =
  let soc = Xiangshan.Soc.create Xiangshan.Config.yqh in
  Xiangshan.Soc.load_program soc prog;
  let dt = Minjie.Difftest.create ~ref_kind:kind ~prog soc in
  let status = Minjie.Difftest.run ~max_cycles:30_000_000 dt in
  let code =
    match status with
    | Minjie.Difftest.Finished c -> c
    | Minjie.Difftest.Failed f ->
        Alcotest.failf "difftest under %s REF failed: %s (%s)"
          (Minjie.Ref_model.kind_name kind)
          f.Minjie.Rule.f_msg f.Minjie.Rule.f_rule
    | Minjie.Difftest.Running -> Alcotest.fail "difftest timed out"
  in
  (code, Minjie.Difftest.commits_checked dt, Minjie.Difftest.rule_fire_counts dt)

let test_difftest_equivalence () =
  List.iter
    (fun wname ->
      let w = Minjie.Campaign.find_workload wname in
      let prog = w.Workloads.Wl_common.program ~scale:1 in
      let code_i, commits_i, fires_i =
        difftest_profile Minjie.Ref_model.Iss prog
      and code_n, commits_n, fires_n =
        difftest_profile Minjie.Ref_model.Nemu prog
      in
      Alcotest.(check int) (wname ^ " exit code") code_i code_n;
      Alcotest.(check int) (wname ^ " commits checked") commits_i commits_n;
      Alcotest.(check (list (pair string int)))
        (wname ^ " rule fires") fires_i fires_n)
    [ "coremark_like"; "vm_kernel" ]

(* The campaign smoke subset must detect every fault with the
   expected rule under either REF backend. *)
let test_campaign_smoke_both_refs () =
  List.iter
    (fun fname ->
      let fault = Minjie.Fault.find fname in
      List.iter
        (fun kind ->
          let cell = Minjie.Campaign.run_cell ~ref_kind:kind ~fault ~seed:1 () in
          if not cell.Minjie.Campaign.c_ok then
            Alcotest.failf "%s under %s REF: %s" fname
              (Minjie.Ref_model.kind_name kind)
              (Minjie.Campaign.string_of_cell cell))
        both)
    [ "csr-mtvec-corrupt"; "rob-commit-reorder"; "lsu-sb-drop" ]

let tests =
  [
    Alcotest.test_case "commit-stream lockstep over fuzz programs" `Slow
      test_lockstep_fuzz;
    Alcotest.test_case "commit-stream lockstep over workloads" `Slow
      test_lockstep_workloads;
    Alcotest.test_case "control-plane parity" `Quick test_control_plane;
    Alcotest.test_case "patch_mem invalidates compiled code" `Quick
      test_patch_mem_code;
    Alcotest.test_case "REF inline caches: lockstep on indirect calls" `Quick
      test_ref_ic_lockstep;
    Alcotest.test_case "REF inline caches: hit counters and clean disable"
      `Quick test_ref_ic_counters;
    Alcotest.test_case "REF inline caches: patch_mem invalidates linked blocks"
      `Quick test_ref_ic_patch_mem;
    Alcotest.test_case "difftest verdicts and rule fires agree" `Slow
      test_difftest_equivalence;
    Alcotest.test_case "campaign smoke subset under both REFs" `Slow
      test_campaign_smoke_both_refs;
  ]
