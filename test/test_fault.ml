(* Fault registry + campaign driver: the harness that PROVES the
   verification stack catches injected bugs (the robustness
   counterpart of the clean-run tests in test_difftest.ml). *)

let test_registry_well_formed () =
  let names = Minjie.Fault.names () in
  Alcotest.(check bool)
    (Printf.sprintf "at least 12 faults (%d)" (List.length names))
    true
    (List.length names >= 12);
  Alcotest.(check int) "names unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (f.Minjie.Fault.f_name ^ " has expected rules")
        true
        (f.Minjie.Fault.f_expected_rules <> []);
      (* every workload the registry references must resolve *)
      ignore (Minjie.Campaign.find_workload f.Minjie.Fault.f_workload))
    Minjie.Fault.all

let test_registry_covers_every_layer () =
  let layers =
    List.sort_uniq compare
      (List.map (fun f -> f.Minjie.Fault.f_layer) Minjie.Fault.all)
  in
  List.iter
    (fun l ->
      Alcotest.(check bool) ("layer " ^ l) true (List.mem l layers))
    [ "bpu"; "rename"; "rob"; "iq"; "lsu"; "tlb"; "cache"; "dram"; "csr" ]

let test_find_unknown_raises () =
  Alcotest.check_raises "unknown fault"
    (Invalid_argument "Fault.find: unknown fault \"no-such-fault\"")
    (fun () -> ignore (Minjie.Fault.find "no-such-fault"))

let run_cell name =
  Minjie.Campaign.run_cell ~fault:(Minjie.Fault.find name) ~seed:1 ()

let test_cell_detects_and_replays () =
  (* a full campaign cell end to end on the fastest fault: detection
     by an expected rule, latency accounted, replay within two
     snapshot intervals *)
  let c = run_cell "cache-skip-probe" in
  Alcotest.(check bool) "detected" true c.Minjie.Campaign.c_detected;
  Alcotest.(check bool)
    ("rule expected: " ^ c.Minjie.Campaign.c_rule)
    true c.Minjie.Campaign.c_rule_expected;
  Alcotest.(check bool) "latency accounted" true
    (c.Minjie.Campaign.c_latency_cycles >= 0);
  Alcotest.(check bool) "commits accounted" true
    (c.Minjie.Campaign.c_commits >= 0);
  Alcotest.(check bool) "replayed within two intervals" true
    c.Minjie.Campaign.c_replay_within;
  Alcotest.(check bool) "cell ok" true c.Minjie.Campaign.c_ok

let test_hang_watchdog_fires () =
  (* the injected deadlock must be caught by the hang watchdog, and
     the failure must carry the stall site *)
  let c = run_cell "iq-lost-uop" in
  Alcotest.(check string) "caught by the hang watchdog" "hang-watchdog"
    c.Minjie.Campaign.c_rule;
  Alcotest.(check bool)
    ("stall site named: " ^ c.Minjie.Campaign.c_msg)
    true
    (let msg = c.Minjie.Campaign.c_msg in
     let has sub =
       let n = String.length sub and m = String.length msg in
       let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
       go 0
     in
     has "stall site");
  Alcotest.(check bool) "deadlock reproduces in replay" true
    c.Minjie.Campaign.c_replay_within

let test_cells_are_seed_deterministic () =
  let a = run_cell "csr-mtvec-corrupt" and b = run_cell "csr-mtvec-corrupt" in
  Alcotest.(check int) "same failure cycle" a.Minjie.Campaign.c_failure_cycle
    b.Minjie.Campaign.c_failure_cycle;
  Alcotest.(check string) "same rule" a.Minjie.Campaign.c_rule
    b.Minjie.Campaign.c_rule;
  Alcotest.(check string) "same message" a.Minjie.Campaign.c_msg
    b.Minjie.Campaign.c_msg

let tests =
  [
    Alcotest.test_case "registry well-formed" `Quick test_registry_well_formed;
    Alcotest.test_case "registry spans every DUT layer" `Quick
      test_registry_covers_every_layer;
    Alcotest.test_case "unknown fault raises" `Quick test_find_unknown_raises;
    Alcotest.test_case "campaign cell detects + replays" `Slow
      test_cell_detects_and_replays;
    Alcotest.test_case "injected deadlock trips the hang watchdog" `Slow
      test_hang_watchdog_fires;
    Alcotest.test_case "cells are seed-deterministic" `Slow
      test_cells_are_seed_deterministic;
  ]
