(* MINJIE / XiangShan reproduction test suite. *)
let () =
  Alcotest.run "minjie"
    [
      ("insn", Test_insn.tests);
      ("memory", Test_memory.tests);
      ("softfloat", Test_softfloat.tests);
      ("alu", Test_alu.tests);
      ("csr-trap", Test_csr_trap.tests);
      ("iss", Test_iss.tests);
      ("engines", Test_engines.tests);
      ("softmem", Test_softmem.tests);
      ("xiangshan", Test_xiangshan.tests);
      ("difftest", Test_difftest.tests);
      ("ref-model", Test_ref_model.tests);
      ("fault", Test_fault.tests);
      ("pool", Test_pool.tests);
      ("journal", Test_journal.tests);
      ("supervisor", Test_supervisor.tests);
      ("chaos", Test_chaos.tests);
      ("lightsss", Test_lightsss.tests);
      ("checkpoint", Test_checkpoint.tests);
      ("archdb", Test_archdb.tests);
      ("bpu", Test_bpu.tests);
      ("tlb", Test_tlb.tests);
      ("backend", Test_backend.tests);
      ("determinism", Test_determinism.tests);
      ("fuzz", Test_fuzz.tests);
      ("fuzz-cov", Test_fuzz_cov.tests);
      ("workloads", Test_workloads.tests);
      ("twophase", Test_twophase.tests);
      ("perf", Test_perf.tests);
      ("serve", Test_serve.tests);
    ]
