(* Constrained-random differential testing: generated programs must
   produce identical architectural outcomes on the ISS and every
   interpreter engine, and pass DiffTest on the cycle-level core --
   the workflow the paper drives with riscv-dv-style generators. *)

(* The sweep is deterministic by default; MINJIE_FUZZ_SEED shifts the
   whole seed window so CI (or a debugging session) can explore a
   different region of the generator space without editing the test. *)
let base_seed =
  match Sys.getenv_opt "MINJIE_FUZZ_SEED" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None -> invalid_arg "MINJIE_FUZZ_SEED must be an integer")
  | None -> 0

let iss_final prog =
  let m = Iss.Interp.create ~hartid:0 () in
  Iss.Interp.load_program m prog;
  let _ = Iss.Interp.run ~max_insns:5_000_000 m in
  (Iss.Interp.exit_code m, Array.copy m.Iss.Interp.st.Riscv.Arch_state.regs)

let test_fuzz_engines () =
  for s = 1 to 25 do
    let seed = base_seed + s in
    let prog = Workloads.Testgen.program ~seed () in
    let code_ref, regs_ref = iss_final prog in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d terminates" seed)
      true (code_ref <> None);
    List.iter
      (fun kind ->
        let m = Nemu.Mach.create () in
        Nemu.Mach.load_program m prog;
        (match kind with
        | Nemu.Engine.Nemu ->
            ignore (Nemu.Fast.run (Nemu.Fast.create m) ~max_insns:5_000_000)
        | Nemu.Engine.Spike_like ->
            ignore (Nemu.Spike_like.run m ~max_insns:5_000_000)
        | Nemu.Engine.Qemu_tci_like ->
            ignore (Nemu.Qemu_tci_like.run m ~max_insns:5_000_000)
        | Nemu.Engine.Dromajo_like ->
            ignore (Nemu.Dromajo_like.run m ~max_insns:5_000_000));
        Alcotest.(check (option int))
          (Printf.sprintf "seed %d %s exit" seed (Nemu.Engine.name kind))
          code_ref (Nemu.Mach.exit_code m);
        for x = 1 to 31 do
          if Nemu.Mach.get_reg m x <> regs_ref.(x) then
            Alcotest.failf "seed %d %s: x%d = 0x%Lx, ISS has 0x%Lx" seed
              (Nemu.Engine.name kind) x (Nemu.Mach.get_reg m x) regs_ref.(x)
        done)
      Nemu.Engine.all
  done

let test_fuzz_difftest () =
  (* the cycle-level core under full DiffTest verification *)
  List.iter
    (fun (s, cfg) ->
      let seed = base_seed + s in
      let prog = Workloads.Testgen.program ~seed () in
      let soc = Xiangshan.Soc.create cfg in
      Xiangshan.Soc.load_program soc prog;
      let dt = Minjie.Difftest.create ~prog soc in
      match Minjie.Difftest.run ~max_cycles:5_000_000 dt with
      | Minjie.Difftest.Finished _ -> ()
      | Minjie.Difftest.Failed f ->
          Alcotest.failf "seed %d on %s: %s at pc=0x%Lx (%s)" seed
            cfg.Xiangshan.Config.cfg_name f.Minjie.Rule.f_msg
            f.Minjie.Rule.f_pc f.Minjie.Rule.f_rule
      | Minjie.Difftest.Running -> Alcotest.failf "seed %d: timeout" seed)
    [
      (101, Xiangshan.Config.yqh);
      (102, Xiangshan.Config.yqh);
      (103, Xiangshan.Config.nh_single);
      (104, Xiangshan.Config.nh_single);
      (105, Xiangshan.Config.yqh);
      (106, Xiangshan.Config.nh_single);
    ]

let test_generator_determinism () =
  let a = Workloads.Testgen.program ~seed:7 () in
  let b = Workloads.Testgen.program ~seed:7 () in
  Alcotest.(check bool) "same words" true (a.Riscv.Asm.words = b.Riscv.Asm.words);
  let c = Workloads.Testgen.program ~seed:8 () in
  Alcotest.(check bool) "different seed differs" true
    (a.Riscv.Asm.words <> c.Riscv.Asm.words)

let tests =
  [
    Alcotest.test_case "random programs agree across engines" `Slow
      test_fuzz_engines;
    Alcotest.test_case "random programs pass DiffTest" `Slow
      test_fuzz_difftest;
    Alcotest.test_case "generator determinism" `Quick
      test_generator_determinism;
  ]
