(* LightSSS: snapshot/replay determinism, cost characteristics
   (fork-like vs full-image), and the two-slot manager policy. *)

let make_difftest prog cfg =
  let soc = Xiangshan.Soc.create cfg in
  Xiangshan.Soc.load_program soc prog;
  Minjie.Difftest.create ~prog soc

let test_replay_determinism () =
  (* run to cycle A, snapshot, run to B; restore and re-run: the
     restored instance must reach the same architectural state *)
  let prog = (Workloads.Suite.find "coremark_like").program ~scale:1 in
  let dt = make_difftest prog Xiangshan.Config.yqh in
  let subject = Minjie.Workflow.subject_of dt in
  for _ = 1 to 3000 do
    Minjie.Difftest.tick dt
  done;
  let snap = Lightsss.snapshot subject ~cycle:3000 in
  for _ = 1 to 2000 do
    Minjie.Difftest.tick dt
  done;
  let ref_state =
    Riscv.Arch_state.copy (Minjie.Difftest.soc dt).Xiangshan.Soc.cores.(0).Xiangshan.Core.arch
  in
  (* restore and replay the same 2000 cycles *)
  let dt' = Minjie.Workflow.restore_shared dt snap in
  for _ = 1 to 2000 do
    Minjie.Difftest.tick dt'
  done;
  let replay_state =
    (Minjie.Difftest.soc dt').Xiangshan.Soc.cores.(0).Xiangshan.Core.arch
  in
  (match Riscv.Arch_state.diff ref_state replay_state with
  | None -> ()
  | Some msg -> Alcotest.failf "replay diverged: %s" msg);
  (* the original instance is unaffected by the replay *)
  (match Minjie.Difftest.status dt with
  | Minjie.Difftest.Failed f -> Alcotest.failf "original failed: %s" f.f_msg
  | _ -> ());
  Lightsss.release snap

let test_snapshot_is_lightweight () =
  (* fork-like: the image excludes the memory pages, so its size is
     O(metadata); the SSS baseline includes them *)
  let prog = (Workloads.Suite.find "mcf_like").program ~scale:1 in
  let dt = make_difftest prog Xiangshan.Config.yqh in
  for _ = 1 to 500_000 do
    Minjie.Difftest.tick dt
  done;
  let subject = Minjie.Workflow.subject_of dt in
  let snap = Lightsss.snapshot subject ~cycle:500_000 in
  let sss_bytes = Lightsss.full_image_snapshot subject in
  Alcotest.(check bool)
    (Printf.sprintf "light image %d << SSS image %d" snap.Lightsss.image_bytes
       sss_bytes)
    true
    (snap.Lightsss.image_bytes * 2 < sss_bytes);
  Lightsss.release snap

let test_two_slot_manager () =
  let prog = (Workloads.Suite.find "coremark_like").program ~scale:1 in
  let dt = make_difftest prog Xiangshan.Config.yqh in
  let subject = Minjie.Workflow.subject_of dt in
  let mgr = Lightsss.manager ~interval:1000 subject in
  for cycle = 1 to 5500 do
    Minjie.Difftest.tick dt;
    Lightsss.tick mgr ~cycle
  done;
  Alcotest.(check int) "snapshots taken" 6 mgr.Lightsss.snapshots_taken;
  (* only two retained; the replay point is the older one *)
  Alcotest.(check int) "slots" 2 (List.length mgr.Lightsss.slots);
  match Lightsss.replay_point mgr with
  | Some s ->
      (* snapshots land at cycles 1, 1001, ..., 5001; the replay point
         is the older of the last two *)
      Alcotest.(check int) "replay at 4001" 4001 s.Lightsss.snap_cycle
  | None -> Alcotest.fail "no replay point"

(* --- edge cases around the two-slot policy --------------------------- *)

let test_replay_point_edges () =
  (* no snapshot yet -> no replay point; a single snapshot -> itself *)
  let prog = (Workloads.Suite.find "coremark_like").program ~scale:1 in
  let dt = make_difftest prog Xiangshan.Config.yqh in
  let subject = Minjie.Workflow.subject_of dt in
  let mgr = Lightsss.manager ~interval:1000 subject in
  Alcotest.(check bool) "no snapshot, no replay point" true
    (Lightsss.replay_point mgr = None);
  Lightsss.tick mgr ~cycle:0;
  Alcotest.(check int) "one snapshot" 1 mgr.Lightsss.snapshots_taken;
  (match Lightsss.replay_point mgr with
  | Some s -> Alcotest.(check int) "single slot is the replay point" 0
      s.Lightsss.snap_cycle
  | None -> Alcotest.fail "single snapshot must be the replay point")

let test_failure_inside_first_interval () =
  (* the skip-probe fault is detected within ~200 cycles; with a huge
     snapshot interval the only snapshot is the one at cycle 0, and
     the workflow must replay from it and still reproduce *)
  let fault = Minjie.Fault.find "cache-skip-probe" in
  let prog = Workloads.Smp.spinlock ~scale:4 in
  match
    Minjie.Workflow.run_verified ~snapshot_interval:100_000 ~prog
      ~inject:(fun soc ->
        fault.Minjie.Fault.f_install ~seed:0
          ~trigger:fault.Minjie.Fault.f_trigger soc)
      Xiangshan.Config.nh
  with
  | Minjie.Workflow.Verified _ -> Alcotest.fail "bug escaped"
  | Minjie.Workflow.Debugged r ->
      Alcotest.(check int) "replay starts at the cycle-0 snapshot" 0
        r.replay_from_cycle;
      (match r.replay_failure with
      | Some f ->
          Alcotest.(check int) "reproduced at the same cycle"
            r.first_failure.f_cycle f.f_cycle
      | None -> Alcotest.fail "failure did not reproduce from cycle 0")

let test_two_replay_archdb_determinism () =
  (* running the same faulty cell twice must produce byte-identical
     diagnoses: same failure, same replay point, same ArchDB volume *)
  let fault = Minjie.Fault.find "cache-mshr-race" in
  let run () =
    match
      Minjie.Workflow.run_verified ~prog:(Workloads.Smp.lrsc_contend ~scale:6)
        ~inject:(fun soc ->
          fault.Minjie.Fault.f_install ~seed:0
            ~trigger:fault.Minjie.Fault.f_trigger soc)
        Xiangshan.Config.nh
    with
    | Minjie.Workflow.Verified _ -> Alcotest.fail "bug escaped"
    | Minjie.Workflow.Debugged r -> r
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same failure cycle" a.Minjie.Workflow.first_failure.f_cycle
    b.Minjie.Workflow.first_failure.f_cycle;
  Alcotest.(check string) "same rule" a.Minjie.Workflow.first_failure.f_rule
    b.Minjie.Workflow.first_failure.f_rule;
  Alcotest.(check int) "same replay point" a.Minjie.Workflow.replay_from_cycle
    b.Minjie.Workflow.replay_from_cycle;
  Alcotest.(check int) "same ArchDB commit volume"
    (Minjie.Archdb.count a.Minjie.Workflow.db.Minjie.Archdb.commits)
    (Minjie.Archdb.count b.Minjie.Workflow.db.Minjie.Archdb.commits);
  Alcotest.(check int) "same ArchDB cache-event volume"
    (Minjie.Archdb.count a.Minjie.Workflow.db.Minjie.Archdb.cache_events)
    (Minjie.Archdb.count b.Minjie.Workflow.db.Minjie.Archdb.cache_events)

let test_workflow_clean () =
  let prog = (Workloads.Suite.find "sjeng_like").program ~scale:1 in
  match Minjie.Workflow.run_verified ~prog Xiangshan.Config.yqh with
  | Minjie.Workflow.Verified code ->
      Alcotest.(check bool) "verified" true (code >= 0)
  | Minjie.Workflow.Debugged r ->
      Alcotest.failf "unexpected failure: %s" r.first_failure.f_msg

let test_workflow_debugs_injected_bug () =
  let fault = Minjie.Fault.find "cache-mshr-race" in
  let prog = Workloads.Smp.lrsc_contend ~scale:6 in
  match
    Minjie.Workflow.run_verified ~prog
      ~inject:(fun soc ->
        fault.Minjie.Fault.f_install ~seed:0
          ~trigger:fault.Minjie.Fault.f_trigger soc)
      Xiangshan.Config.nh
  with
  | Minjie.Workflow.Verified _ -> Alcotest.fail "bug escaped the workflow"
  | Minjie.Workflow.Debugged r ->
      Alcotest.(check bool) "failure reproduced in replay" true
        (r.replay_failure <> None);
      (* replay determinism: the failure reproduces at the exact cycle *)
      (match r.replay_failure with
      | Some f ->
          Alcotest.(check int) "same failure cycle" r.first_failure.f_cycle
            f.f_cycle
      | None -> ());
      (* ArchDB captured the debug-mode region of interest *)
      Alcotest.(check bool) "commits recorded" true
        (Minjie.Archdb.count r.db.Minjie.Archdb.commits > 0);
      Alcotest.(check bool) "cache transactions recorded" true
        (Minjie.Archdb.count r.db.Minjie.Archdb.cache_events > 0);
      (* the §IV-C signature: overlapping Acquire/Probe windows *)
      Alcotest.(check bool) "acquire/probe overlap found" true
        (r.overlaps <> [])

let tests =
  [
    Alcotest.test_case "snapshot/replay determinism" `Slow
      test_replay_determinism;
    Alcotest.test_case "snapshot is fork-like lightweight" `Quick
      test_snapshot_is_lightweight;
    Alcotest.test_case "two-slot manager policy" `Quick test_two_slot_manager;
    Alcotest.test_case "replay-point edge cases" `Quick test_replay_point_edges;
    Alcotest.test_case "failure inside the first interval" `Slow
      test_failure_inside_first_interval;
    Alcotest.test_case "two-replay ArchDB determinism" `Slow
      test_two_replay_archdb_determinism;
    Alcotest.test_case "workflow: clean run verifies" `Slow test_workflow_clean;
    Alcotest.test_case "workflow: debugs the injected L2 bug (§IV-C)" `Slow
      test_workflow_debugs_injected_bug;
  ]
