(* lib/perf: counter registry, top-down CPI stacks, pipeline tracing.

   The load-bearing invariants: the CPI stack sums exactly to the
   measured cycle count on every suite workload (each cycle is
   attributed to exactly one bucket at runtime, so this is an equality
   check, not a tolerance); counters and trace windows are
   deterministic across LightSSS snapshot/replay; the commit counters
   match the DiffTest commit stream under both REF backends; and all
   of it is pure observation -- verdicts are bit-identical with perf
   instrumentation on or off. *)

(* --- the counter registry itself ------------------------------------- *)

let test_registry () =
  let t = Perf.Perf_counter.create ~capacity:2 () in
  let a = Perf.Perf_counter.register t "a" in
  let b = Perf.Perf_counter.register t "b" in
  (* third registration forces the backing arrays to grow *)
  let c = Perf.Perf_counter.register t "c" in
  Perf.Perf_counter.incr t a;
  Perf.Perf_counter.add t b 41;
  Perf.Perf_counter.incr t b;
  Alcotest.(check int) "incr" 1 (Perf.Perf_counter.get t a);
  Alcotest.(check int) "add" 42 (Perf.Perf_counter.get t b);
  Alcotest.(check int) "fresh counter is zero" 0 (Perf.Perf_counter.get t c);
  Alcotest.(check (option int)) "find" (Some 42) (Perf.Perf_counter.find t "b");
  Alcotest.(check (option int)) "find missing" None
    (Perf.Perf_counter.find t "zzz");
  Alcotest.(check (list (pair string int)))
    "to_alist in registration order"
    [ ("a", 1); ("b", 42); ("c", 0) ]
    (Perf.Perf_counter.to_alist t);
  Alcotest.check_raises "duplicate registration rejected"
    (Invalid_argument "Perf_counter.register: duplicate \"a\"") (fun () ->
      ignore (Perf.Perf_counter.register t "a"));
  Perf.Perf_counter.reset t;
  Alcotest.(check int) "reset" 0 (Perf.Perf_counter.get t b)

let test_of_counters_missing () =
  match Perf.Topdown.of_counters [ ("core.cycles", 10) ] with
  | Ok _ -> Alcotest.fail "of_counters accepted an incomplete snapshot"
  | Error msg ->
      Alcotest.(check bool) "error names the missing counter" true
        (String.length msg > 0)

(* --- the CPI-stack invariant on every suite workload ------------------ *)

let run_counters (w : Workloads.Wl_common.t) =
  let prog =
    w.Workloads.Wl_common.program ~scale:w.Workloads.Wl_common.small
  in
  let soc = Xiangshan.Soc.create Xiangshan.Config.yqh in
  Xiangshan.Soc.load_program soc prog;
  let _ = Xiangshan.Soc.run ~max_cycles:100_000_000 soc in
  Xiangshan.Soc.counter_snapshot soc ~hartid:0

let stack_of counters =
  match Perf.Topdown.of_counters counters with
  | Ok s -> s
  | Error msg -> Alcotest.failf "of_counters: %s" msg

let test_stack_sums_on_suite () =
  List.iter
    (fun (w : Workloads.Wl_common.t) ->
      let stack = stack_of (run_counters w) in
      (match Perf.Topdown.check stack with
      | Ok () -> ()
      | Error msg ->
          Alcotest.failf "%s: %s" w.Workloads.Wl_common.wl_name msg);
      Alcotest.(check bool)
        (w.Workloads.Wl_common.wl_name ^ ": ran some cycles")
        true
        (stack.Perf.Topdown.ts_cycles > 0);
      (* the level-1 grouping partitions the level-2 buckets, so its
         fractions must sum to 1 as well *)
      let total =
        List.fold_left
          (fun acc l1 -> acc +. Perf.Topdown.level1_frac stack l1)
          0.0 Perf.Topdown.level1_all
      in
      Alcotest.(check bool)
        (w.Workloads.Wl_common.wl_name ^ ": L1 fractions sum to 1")
        true
        (abs_float (total -. 1.0) < 1e-9))
    Workloads.Suite.all

(* --- determinism across LightSSS snapshot/replay ---------------------- *)

let test_counters_replay_deterministic () =
  let prog = (Workloads.Suite.find "coremark_like").program ~scale:1 in
  let soc = Xiangshan.Soc.create Xiangshan.Config.yqh in
  Xiangshan.Soc.load_program soc prog;
  (* the tracer is part of the core graph, so the trace window rides
     inside the snapshot exactly like the counters do *)
  ignore (Xiangshan.Soc.attach_tracers ~capacity:512 soc);
  let dt = Minjie.Difftest.create ~prog soc in
  let subject = Minjie.Workflow.subject_of dt in
  for _ = 1 to 3000 do
    Minjie.Difftest.tick dt
  done;
  let snap = Lightsss.snapshot subject ~cycle:3000 in
  for _ = 1 to 2000 do
    Minjie.Difftest.tick dt
  done;
  let snapshot_of dt =
    Xiangshan.Soc.counter_snapshot (Minjie.Difftest.soc dt) ~hartid:0
  in
  let reference = snapshot_of dt in
  let dt' = Minjie.Workflow.restore_shared dt snap in
  for _ = 1 to 2000 do
    Minjie.Difftest.tick dt'
  done;
  let replayed = snapshot_of dt' in
  List.iter2
    (fun (n, v) (n', v') ->
      Alcotest.(check string) "same counter order" n n';
      Alcotest.(check int) ("replayed " ^ n) v v')
    reference replayed;
  let konata dt =
    match
      (Minjie.Difftest.soc dt).Xiangshan.Soc.cores.(0).Xiangshan.Core.tracer
    with
    | Some tr -> Perf.Pipetrace.to_konata tr
    | None -> Alcotest.fail "tracer lost across snapshot/restore"
  in
  Alcotest.(check string) "identical Konata trace window" (konata dt)
    (konata dt');
  Lightsss.release snap

(* --- the commit counters vs the DiffTest commit stream ---------------- *)

(* every commit-stream probe (uop, trap, interrupt) is checked by
   DiffTest, so the instret-style counters must reconstruct
   commits_checked exactly -- under either REF backend *)
let commit_counters_match kind () =
  let w = Workloads.Suite.find "coremark_like" in
  let prog = w.Workloads.Wl_common.program ~scale:1 in
  let soc = Xiangshan.Soc.create Xiangshan.Config.yqh in
  Xiangshan.Soc.load_program soc prog;
  let dt = Minjie.Difftest.create ~ref_kind:kind ~prog soc in
  (match Minjie.Difftest.run ~max_cycles:100_000_000 dt with
  | Minjie.Difftest.Finished _ -> ()
  | Minjie.Difftest.Failed f ->
      Alcotest.failf "difftest failed: %s" f.Minjie.Rule.f_msg
  | Minjie.Difftest.Running -> Alcotest.fail "cycle budget exhausted");
  let counters = Xiangshan.Soc.counter_snapshot soc ~hartid:0 in
  let get n =
    match List.assoc_opt n counters with
    | Some v -> v
    | None -> Alcotest.failf "missing counter %s" n
  in
  Alcotest.(check int) "commits_checked = uops + traps + interrupts"
    (Minjie.Difftest.commits_checked dt)
    (get "core.uops" + get "core.traps" + get "core.interrupts");
  Alcotest.(check bool) "instret counted" true (get "core.instrs" > 0)

(* --- purity: identical verdicts with perf on or off ------------------- *)

let test_verdict_pure_under_perf () =
  (* a full campaign cell -- fast mode, detection, debug replay -- run
     twice, with and without tracers; the cell record carries every
     verdict field and must be structurally identical *)
  let fault = Minjie.Fault.find "csr-mtvec-corrupt" in
  let cell perf = Minjie.Campaign.run_cell ~perf ~fault ~seed:1 () in
  let off = cell false and on = cell true in
  Alcotest.(check bool) "cell detected" true off.Minjie.Campaign.c_detected;
  Alcotest.(check bool) "identical cell with perf on" true (off = on)

(* --- the pipeline tracer ---------------------------------------------- *)

let test_pipetrace_konata () =
  let w = Workloads.Suite.find "coremark_like" in
  let prog = w.Workloads.Wl_common.program ~scale:1 in
  let soc = Xiangshan.Soc.create Xiangshan.Config.yqh in
  Xiangshan.Soc.load_program soc prog;
  let trs = Xiangshan.Soc.attach_tracers ~capacity:256 soc in
  let _ = Xiangshan.Soc.run ~max_cycles:200_000 soc in
  let tr = trs.(0) in
  Alcotest.(check bool) "many uops recorded" true
    (Perf.Pipetrace.recorded tr > 256);
  Alcotest.(check int) "ring keeps the last window" 256
    (Perf.Pipetrace.live tr);
  let text = Perf.Pipetrace.to_konata tr in
  let lines = String.split_on_char '\n' text in
  (match lines with
  | header :: _ -> Alcotest.(check string) "header" "Kanata\t0004" header
  | [] -> Alcotest.fail "empty trace");
  let starts_with p l =
    String.length l >= String.length p && String.sub l 0 (String.length p) = p
  in
  let count p = List.length (List.filter (starts_with p) lines) in
  let n_i = count "I\t" in
  Alcotest.(check int) "one record per live uop" 256 n_i;
  Alcotest.(check int) "one label per record" n_i (count "L\t");
  Alcotest.(check int) "one retire per record" n_i (count "R\t");
  (* every record enters at least the fetch stage *)
  Alcotest.(check bool) "stage starts present" true (count "S\t" >= n_i);
  Alcotest.(check bool) "cycle advances present" true (count "C\t" > 0)

(* --- ArchDB persistence ----------------------------------------------- *)

let test_archdb_final_counters () =
  let prog = (Workloads.Suite.find "sort_like").program ~scale:1 in
  let soc = Xiangshan.Soc.create Xiangshan.Config.yqh in
  Xiangshan.Soc.load_program soc prog;
  let _ = Xiangshan.Soc.run ~max_cycles:100_000_000 soc in
  let db = Minjie.Archdb.create () in
  Minjie.Archdb.record_counters db soc;
  Alcotest.(check (list (pair string int)))
    "persisted rows reproduce the live snapshot"
    (Xiangshan.Soc.counter_snapshot soc ~hartid:0)
    (Minjie.Archdb.final_counters db ~hartid:0)

let tests =
  [
    Alcotest.test_case "counter registry" `Quick test_registry;
    Alcotest.test_case "of_counters rejects incomplete snapshots" `Quick
      test_of_counters_missing;
    Alcotest.test_case "CPI stack sums to cycles on the whole suite" `Slow
      test_stack_sums_on_suite;
    Alcotest.test_case "counters + trace deterministic across replay" `Slow
      test_counters_replay_deterministic;
    Alcotest.test_case "commit counters match DiffTest stream (ISS REF)"
      `Slow
      (commit_counters_match Minjie.Ref_model.Iss);
    Alcotest.test_case "commit counters match DiffTest stream (NEMU REF)"
      `Slow
      (commit_counters_match Minjie.Ref_model.Nemu);
    Alcotest.test_case "verdicts identical with perf on/off" `Slow
      test_verdict_pure_under_perf;
    Alcotest.test_case "pipetrace emits well-formed Konata" `Quick
      test_pipetrace_konata;
    Alcotest.test_case "ArchDB persists final counter values" `Quick
      test_archdb_final_counters;
  ]
