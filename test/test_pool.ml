(* The fork-based parallel simulation pool: deterministic merging,
   crash isolation, timeout escalation, and the jobs=1 == sequential
   guarantee the campaign and sampled-simulation fan-outs rely on. *)

let mk ?(cost = 1.0) label f = { Minjie.Pool.j_label = label; j_cost = cost; j_run = f }

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let payload_of = function
  | Minjie.Pool.Done v -> Some v
  | Minjie.Pool.Job_error _ | Minjie.Pool.Crashed _ | Minjie.Pool.Timed_out _
    ->
      None

let test_ordering_adversarial () =
  (* jobs submitted in one order but finishing in roughly the reverse:
     early jobs sleep longest, so completion order is adversarial to
     submission order.  The merged result list must still be the
     submission order, payloads intact.  Costs are all equal so the
     scheduler cannot reorder dispatch to rescue us. *)
  let n = 8 in
  let jobs =
    List.init n (fun i ->
        mk (Printf.sprintf "j%d" i) (fun () ->
            Unix.sleepf (0.02 *. float_of_int (n - i));
            i * i))
  in
  let results, stats = Minjie.Pool.map ~jobs:4 jobs in
  Alcotest.(check int) "all results" n (List.length results);
  List.iteri
    (fun i (r : int Minjie.Pool.result) ->
      Alcotest.(check int) "submission order" i r.Minjie.Pool.r_index;
      Alcotest.(check (option int)) "payload" (Some (i * i))
        (payload_of r.Minjie.Pool.r_outcome))
    results;
  Alcotest.(check int) "worker count" 4 stats.Minjie.Pool.p_workers;
  Alcotest.(check int) "every job accounted to a slot" n
    (Array.fold_left
       (fun a (s : Minjie.Pool.slot_stats) -> a + s.Minjie.Pool.s_jobs)
       0 stats.Minjie.Pool.p_slots);
  Alcotest.(check int) "no crashes" 0 stats.Minjie.Pool.p_crashed

let test_longest_first_scheduling () =
  (* with 2 workers and one job twice as long as the other three
     combined, longest-first dispatch keeps total wall clock near the
     long job's length; submission order still rules the output *)
  let jobs =
    [
      mk ~cost:1.0 "short0" (fun () -> Unix.sleepf 0.05; 0);
      mk ~cost:1.0 "short1" (fun () -> Unix.sleepf 0.05; 1);
      mk ~cost:10.0 "long" (fun () -> Unix.sleepf 0.3; 2);
      mk ~cost:1.0 "short2" (fun () -> Unix.sleepf 0.05; 3);
    ]
  in
  let results, stats = Minjie.Pool.map ~jobs:2 jobs in
  List.iteri
    (fun i (r : int Minjie.Pool.result) ->
      Alcotest.(check (option int)) "payload" (Some i)
        (payload_of r.Minjie.Pool.r_outcome))
    results;
  (* long job dispatched first -> pool finishes in ~0.3s, not ~0.45s
     (generous bound: the assertion is about overlap, not precision) *)
  Alcotest.(check bool)
    (Printf.sprintf "longest-first overlap (%.2fs)" stats.Minjie.Pool.p_seconds)
    true
    (stats.Minjie.Pool.p_seconds < 0.45)

let test_worker_crash_isolated () =
  let jobs =
    [
      mk "ok0" (fun () -> 10);
      mk "boom" (fun () -> Unix._exit 3);
      mk "ok1" (fun () -> 11);
      mk "raise" (fun () -> failwith "job raised");
      mk "ok2" (fun () -> 12);
    ]
  in
  let results, stats = Minjie.Pool.map ~jobs:2 jobs in
  (match (List.nth results 1).Minjie.Pool.r_outcome with
  | Minjie.Pool.Crashed msg ->
      Alcotest.(check bool) ("crash message names job: " ^ msg) true
        (contains ~sub:"boom" msg)
  | _ -> Alcotest.fail "exit 3 should surface as Crashed");
  (match (List.nth results 3).Minjie.Pool.r_outcome with
  | Minjie.Pool.Job_error msg ->
      Alcotest.(check bool) ("job error carries exception: " ^ msg) true
        (contains ~sub:"job raised" msg)
  | _ -> Alcotest.fail "raising job should surface as Job_error");
  List.iter
    (fun i ->
      Alcotest.(check (option int)) "healthy jobs unaffected" (Some (10 + i / 2))
        (payload_of (List.nth results i).Minjie.Pool.r_outcome))
    [ 0; 2; 4 ];
  Alcotest.(check int) "one crash counted" 1 stats.Minjie.Pool.p_crashed

let test_worker_killed_by_signal () =
  let jobs =
    [
      mk "ok" (fun () -> 1);
      mk "sigkill-self" (fun () ->
          Unix.kill (Unix.getpid ()) Sys.sigkill;
          2);
    ]
  in
  let results, stats = Minjie.Pool.map ~jobs:2 jobs in
  (match (List.nth results 1).Minjie.Pool.r_outcome with
  | Minjie.Pool.Crashed _ -> ()
  | _ -> Alcotest.fail "SIGKILLed worker should surface as Crashed");
  Alcotest.(check (option int)) "sibling survives" (Some 1)
    (payload_of (List.hd results).Minjie.Pool.r_outcome);
  Alcotest.(check int) "one crash" 1 stats.Minjie.Pool.p_crashed

let test_timeout_kill () =
  let t0 = Unix.gettimeofday () in
  let jobs =
    [
      mk "fast" (fun () -> 7);
      (* ignores SIGTERM, so only the SIGKILL escalation can end it *)
      mk "hang" (fun () ->
          Sys.set_signal Sys.sigterm Sys.Signal_ignore;
          Unix.sleepf 30.0;
          8);
    ]
  in
  let results, stats =
    Minjie.Pool.map ~jobs:2 ~timeout:0.3 ~kill_grace:0.2 jobs
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match (List.nth results 1).Minjie.Pool.r_outcome with
  | Minjie.Pool.Timed_out secs ->
      Alcotest.(check bool) "ran at least the timeout" true (secs >= 0.3)
  | _ -> Alcotest.fail "hung worker should surface as Timed_out");
  Alcotest.(check (option int)) "fast job done" (Some 7)
    (payload_of (List.hd results).Minjie.Pool.r_outcome);
  Alcotest.(check int) "one timeout" 1 stats.Minjie.Pool.p_timed_out;
  Alcotest.(check bool)
    (Printf.sprintf "pool returned promptly (%.2fs)" elapsed)
    true (elapsed < 5.0)

let test_jobs1_is_sequential () =
  (* jobs=1 must be the in-process path: same process (observable via
     a shared ref -- forked children could never write back), results
     in submission order *)
  let witness = ref [] in
  let jobs =
    List.init 5 (fun i ->
        mk (Printf.sprintf "s%d" i) (fun () ->
            witness := i :: !witness;
            i))
  in
  let results, stats = Minjie.Pool.map ~jobs:1 jobs in
  Alcotest.(check (list int)) "ran in-process, in order" [ 4; 3; 2; 1; 0 ]
    !witness;
  List.iteri
    (fun i (r : int Minjie.Pool.result) ->
      Alcotest.(check (option int)) "payload" (Some i)
        (payload_of r.Minjie.Pool.r_outcome))
    results;
  Alcotest.(check int) "single slot" 1
    (Array.length stats.Minjie.Pool.p_slots)

let test_parallel_equals_sequential_payloads () =
  let jobs () = List.init 12 (fun i -> mk (string_of_int i) (fun () -> i * 7)) in
  let seq, _ = Minjie.Pool.map ~jobs:1 (jobs ()) in
  let par, _ = Minjie.Pool.map ~jobs:4 (jobs ()) in
  List.iter2
    (fun (a : int Minjie.Pool.result) (b : int Minjie.Pool.result) ->
      Alcotest.(check (option int)) "same payload"
        (payload_of a.Minjie.Pool.r_outcome)
        (payload_of b.Minjie.Pool.r_outcome))
    seq par

let test_resolve_jobs () =
  Alcotest.(check int) "explicit wins" 4 (Minjie.Pool.resolve_jobs ~jobs:4 ());
  Alcotest.(check int) "clamped to 1" 1 (Minjie.Pool.resolve_jobs ~jobs:0 ());
  Alcotest.(check int) "default 1" 1 (Minjie.Pool.resolve_jobs ())

(* The campaign smoke: a --jobs 2 grid over fast faults must
   reproduce the sequential cells field for field (the guarantee the
   ci.sh verdict diff rests on). *)
let test_campaign_jobs2_equals_sequential () =
  let faults = [ "csr-mtvec-corrupt"; "rob-commit-reorder" ] in
  let seq = Minjie.Campaign.run ~faults ~seeds:[ 1 ] ~jobs:1 () in
  let par = Minjie.Campaign.run ~faults ~seeds:[ 1 ] ~jobs:2 () in
  Alcotest.(check int) "same cell count" seq.Minjie.Campaign.total
    par.Minjie.Campaign.total;
  Alcotest.(check int) "zero escapes" 0 par.Minjie.Campaign.escapes;
  List.iter2
    (fun (a : Minjie.Campaign.cell) (b : Minjie.Campaign.cell) ->
      Alcotest.(check bool)
        (Printf.sprintf "cell %s#%d identical" a.Minjie.Campaign.c_fault
           a.Minjie.Campaign.c_seed)
        true (a = b))
    seq.Minjie.Campaign.cells par.Minjie.Campaign.cells

let test_sampled_jobs2_equals_sequential () =
  let w = Workloads.Suite.find "coremark_like" in
  let prog = w.Workloads.Wl_common.program ~scale:2 in
  let cks, _ = Checkpoint.Sampled.generate ~interval:10_000 ~max_k:4 prog in
  Alcotest.(check bool) "some checkpoints" true (cks <> []);
  let seq =
    Checkpoint.Sampled.simulate_all ~warmup:1_000 ~measure:2_000 ~jobs:1
      Xiangshan.Config.yqh cks
  in
  let par =
    Checkpoint.Sampled.simulate_all ~warmup:1_000 ~measure:2_000 ~jobs:2
      Xiangshan.Config.yqh cks
  in
  Alcotest.(check bool) "identical sample results" true (seq = par)

let tests =
  [
    Alcotest.test_case "ordering: adversarial durations" `Quick
      test_ordering_adversarial;
    Alcotest.test_case "longest-expected-first scheduling" `Quick
      test_longest_first_scheduling;
    Alcotest.test_case "worker crash isolated to its job" `Quick
      test_worker_crash_isolated;
    Alcotest.test_case "worker killed by signal" `Quick
      test_worker_killed_by_signal;
    Alcotest.test_case "timeout: SIGTERM then SIGKILL" `Quick test_timeout_kill;
    Alcotest.test_case "jobs=1 is the in-process sequential path" `Quick
      test_jobs1_is_sequential;
    Alcotest.test_case "parallel payloads == sequential" `Quick
      test_parallel_equals_sequential_payloads;
    Alcotest.test_case "resolve_jobs precedence" `Quick test_resolve_jobs;
    Alcotest.test_case "campaign --jobs 2 == sequential cells" `Slow
      test_campaign_jobs2_equals_sequential;
    Alcotest.test_case "sampled --jobs 2 == sequential results" `Slow
      test_sampled_jobs2_equals_sequential;
  ]
