(* Reference interpreter: end-to-end program semantics, traps, CSRs,
   LR/SC, Sv39 translation, and the DiffTest control surface. *)

open Riscv
open Workloads.Wl_common.Ops

let run_prog ?(max_insns = 1_000_000) items =
  let prog = Asm.assemble items in
  let m = Iss.Interp.create ~hartid:0 () in
  Iss.Interp.load_program m prog;
  let n = Iss.Interp.run ~max_insns m in
  (m, n)

let exit_items reg = Workloads.Wl_common.exit_with reg

let check_exit ?(max_insns = 1_000_000) items expect =
  let m, _ = run_prog ~max_insns items in
  Alcotest.(check (option int)) "exit code" (Some expect) (Iss.Interp.exit_code m)

let ( @. ) = List.append

let test_arith () =
  check_exit
    Asm.(
      [ li a0 21L; i (Insn.Op_imm (SLL, a0, a0, 1L)) ] @. exit_items a0)
    42;
  check_exit
    Asm.(
      [ li a0 (-7L); li a1 3L; i (Insn.Mul (REM, a0, a0, a1)) ]
      @. exit_items a0)
    ((-1) land 0xFF)

let test_memory_ops () =
  check_exit
    Asm.(
      [
        li s0 Workloads.Wl_common.data_base;
        li t0 0x1234L;
        i (Insn.Store (SW, t0, s0, 0L));
        i (Insn.Load (LBU, a0, s0, 1L)) (* byte 1 of 0x1234 = 0x12 *);
      ]
      @. exit_items a0)
    0x12

let test_branches_loops () =
  check_exit
    Asm.(
      [
        li a0 0L;
        li t0 10L;
        label "l";
        i (Insn.Op (ADD, a0, a0, t0));
        i (Insn.Op_imm (ADD, t0, t0, -1L));
        bnez t0 "l";
      ]
      @. exit_items a0)
    55

let test_fp () =
  (* 1.5 * 4.0 + 2.0 = 8.0 *)
  check_exit
    Asm.(
      [
        li t0 3L;
        fcvt_d_l ft0 t0;
        li t0 2L;
        fcvt_d_l ft1 t0;
        fdiv ft0 ft0 ft1 (* 1.5 *);
        li t0 4L;
        fcvt_d_l ft2 t0;
        fmadd ft3 ft0 ft2 ft1 (* 1.5*4+2 = 8 *);
        fcvt_l_d a0 ft3;
      ]
      @. exit_items a0)
    8

let test_ecall_handler () =
  check_exit
    Asm.(
      [
        la t0 "handler";
        i (Insn.Csr (CSRRW, 0, t0, Csr.mtvec));
        li a0 5L;
        i Insn.Ecall;
        (* handler bumps a0 and returns past the ecall *)
        i (Insn.Op_imm (ADD, a0, a0, 100L));
      ]
      @. exit_items a0
      @. [
           label "handler";
           i (Insn.Op_imm (ADD, a0, a0, 10L));
           i (Insn.Csr (CSRRS, t1, 0, Csr.mepc));
           i (Insn.Op_imm (ADD, t1, t1, 4L));
           i (Insn.Csr (CSRRW, 0, t1, Csr.mepc));
           i Insn.Mret;
         ])
    115

let test_illegal_instruction () =
  let m, _ =
    run_prog
      Asm.(
        [
          la t0 "handler";
          i (Insn.Csr (CSRRW, 0, t0, Csr.mtvec));
          i (Insn.Illegal 0l);
          label "h2";
          j "h2";
          label "handler";
          i (Insn.Csr (CSRRS, a0, 0, Csr.mcause));
        ]
        @. exit_items Asm.a0)
  in
  Alcotest.(check (option int)) "mcause illegal = 2" (Some 2) (Iss.Interp.exit_code m)

let test_lr_sc () =
  check_exit
    Asm.(
      [
        li s0 Workloads.Wl_common.data_base;
        li t0 7L;
        i (Insn.Store (SD, t0, s0, 0L));
        i (Insn.Lr (Width_d, t1, s0));
        i (Insn.Op_imm (ADD, t1, t1, 1L));
        i (Insn.Sc (Width_d, t2, s0, t1)) (* succeeds: t2 = 0 *);
        i (Insn.Sc (Width_d, t3, s0, t1)) (* no reservation: t3 = 1 *);
        i (Insn.Load (LD, a0, s0, 0L)) (* 8 *);
        i (Insn.Op (ADD, a0, a0, t3)) (* 9 *);
      ]
      @. exit_items a0)
    9

let test_amo_prog () =
  check_exit
    Asm.(
      [
        li s0 Workloads.Wl_common.data_base;
        li t0 10L;
        i (Insn.Store (SD, t0, s0, 0L));
        li t1 32L;
        i (Insn.Amo (AMOADD, Width_d, a0, s0, t1)) (* a0 = 10 *);
        i (Insn.Load (LD, t2, s0, 0L)) (* 42 *);
        i (Insn.Op (ADD, a0, a0, t2)) (* 52 *);
      ]
      @. exit_items a0)
    52

let test_forced_events () =
  (* forcing an exception makes the REF trap without executing *)
  let prog =
    Asm.assemble
      Asm.(
        [ la t0 "handler"; i (Insn.Csr (CSRRW, 0, t0, Csr.mtvec)); li a0 1L ]
        @. exit_items a0
        @. [ label "handler"; li a0 77L ]
        @. exit_items a0)
  in
  let m = Iss.Interp.create ~autonomous:false ~hartid:0 () in
  Iss.Interp.load_program m prog;
  (* step the first three instructions (la = 2 insns + csrrw) *)
  for _ = 1 to 3 do
    ignore (Iss.Interp.step m)
  done;
  Iss.Interp.force_exception m Trap.Load_page_fault 0xdeadL;
  (match Iss.Interp.step m with
  | Iss.Interp.Committed c ->
      (match c.Iss.Interp.trap with
      | Some t ->
          Alcotest.(check bool) "forced exc" true
            (t.Iss.Interp.exc = Trap.Load_page_fault);
          Alcotest.(check int64) "tval" 0xdeadL t.Iss.Interp.tval
      | None -> Alcotest.fail "expected trap");
      Alcotest.(check int64) "mepc is pc of the skipped insn"
        c.Iss.Interp.pc m.Iss.Interp.st.Arch_state.csr.Csr.reg_mepc
  | Iss.Interp.Exited -> Alcotest.fail "exited");
  ignore (Iss.Interp.run ~max_insns:100 m);
  Alcotest.(check (option int)) "handler path" (Some 77) (Iss.Interp.exit_code m)

let test_sv39_via_kernel () =
  (* the vm micro-kernel runs to completion with paging on the REF *)
  let prog = Workloads.Vm_kernel.program ~scale:1 () in
  let m = Iss.Interp.create ~hartid:0 () in
  Iss.Interp.load_program m prog;
  let _ = Iss.Interp.run ~max_insns:5_000_000 m in
  match Iss.Interp.exit_code m with
  | Some c -> Alcotest.(check bool) "vm kernel exits cleanly" true (c <> 0xEE && c <> 0xED)
  | None -> Alcotest.fail "vm kernel did not exit"

let test_interrupt_autonomous () =
  let prog = Workloads.Timer.program ~scale:1 in
  let m = Iss.Interp.create ~hartid:0 () in
  Iss.Interp.load_program m prog;
  let _ = Iss.Interp.run ~max_insns:5_000_000 m in
  Alcotest.(check (option int)) "3 timer interrupts" (Some 3) (Iss.Interp.exit_code m)

let test_console () =
  let prog =
    Asm.assemble
      Asm.(
        [
          li t0 (Int64.add Platform.sim_base Platform.sim_putchar_offset);
          li t1 72L (* 'H' *);
          i (Insn.Store (SD, t1, t0, 0L));
          li t1 105L (* 'i' *);
          i (Insn.Store (SD, t1, t0, 0L));
          li a0 0L;
        ]
        @. exit_items Asm.a0)
  in
  let m = Iss.Interp.create ~hartid:0 () in
  Iss.Interp.load_program m prog;
  let _ = Iss.Interp.run ~max_insns:100 m in
  Alcotest.(check string) "console" "Hi" (Platform.console_output m.Iss.Interp.plat)

let tests =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "memory ops" `Quick test_memory_ops;
    Alcotest.test_case "branches and loops" `Quick test_branches_loops;
    Alcotest.test_case "floating point" `Quick test_fp;
    Alcotest.test_case "ecall and trap handler" `Quick test_ecall_handler;
    Alcotest.test_case "illegal instruction" `Quick test_illegal_instruction;
    Alcotest.test_case "lr/sc" `Quick test_lr_sc;
    Alcotest.test_case "amo" `Quick test_amo_prog;
    Alcotest.test_case "DiffTest forced events" `Quick test_forced_events;
    Alcotest.test_case "Sv39 micro-kernel" `Quick test_sv39_via_kernel;
    Alcotest.test_case "autonomous timer interrupts" `Quick
      test_interrupt_autonomous;
    Alcotest.test_case "console device" `Quick test_console;
  ]
