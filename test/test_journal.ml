(* The crash-safe result journal: framed-record roundtrips, the
   truncate-at-every-byte recovery property, atomic whole-file writes,
   and campaign resume equivalence -- an interrupted-and-resumed
   campaign must produce byte-identical cells to an uninterrupted
   one, on both REF backends. *)

let tmpfile () = Filename.temp_file "minjie-test-journal" ".jnl"

let with_tmp f =
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_crc32_vectors () =
  (* the standard IEEE 802.3 check values *)
  Alcotest.(check int32) "empty" 0l (Minjie.Journal.crc32 "");
  Alcotest.(check int32) "123456789" 0xCBF43926l
    (Minjie.Journal.crc32 "123456789")

let test_roundtrip () =
  with_tmp (fun path ->
      let j, replayed = Minjie.Journal.open_ ~path ~key:"k1" in
      Alcotest.(check int) "fresh journal is empty" 0 (List.length replayed);
      let records = [ (1, "one"); (2, "two"); (3, "three") ] in
      List.iter (fun r -> Minjie.Journal.append j r) records;
      Alcotest.(check int) "appended" 3 (Minjie.Journal.appended j);
      Alcotest.(check bool) "active" true (Minjie.Journal.active j);
      Minjie.Journal.close j;
      let key, (back : (int * string) list) = Minjie.Journal.scan ~path in
      Alcotest.(check (option string)) "key" (Some "k1") key;
      Alcotest.(check bool) "records roundtrip" true (back = records))

let test_resume_append () =
  with_tmp (fun path ->
      let j, _ = Minjie.Journal.open_ ~path ~key:"k1" in
      Minjie.Journal.append j 10;
      Minjie.Journal.append j 20;
      Minjie.Journal.close j;
      (* reopen with a matching key: replay, then extend *)
      let j2, (replayed : int list) = Minjie.Journal.open_ ~path ~key:"k1" in
      Alcotest.(check (list int)) "replayed" [ 10; 20 ] replayed;
      Minjie.Journal.append j2 30;
      Minjie.Journal.close j2;
      let _, (all : int list) = Minjie.Journal.scan ~path in
      Alcotest.(check (list int)) "extended" [ 10; 20; 30 ] all)

let test_key_mismatch_starts_fresh () =
  with_tmp (fun path ->
      let j, _ = Minjie.Journal.open_ ~path ~key:"grid-A" in
      Minjie.Journal.append j 1;
      Minjie.Journal.close j;
      (* a journal of a different run must be ignored wholesale *)
      let j2, (replayed : int list) =
        Minjie.Journal.open_ ~path ~key:"grid-B"
      in
      Alcotest.(check (list int)) "foreign journal discarded" [] replayed;
      Minjie.Journal.append j2 42;
      Minjie.Journal.close j2;
      let key, (back : int list) = Minjie.Journal.scan ~path in
      Alcotest.(check (option string)) "new key" (Some "grid-B") key;
      Alcotest.(check (list int)) "only new records" [ 42 ] back)

let test_torn_tail_truncated () =
  with_tmp (fun path ->
      let j, _ = Minjie.Journal.open_ ~path ~key:"k" in
      Minjie.Journal.append j "alpha";
      Minjie.Journal.append j "beta";
      Minjie.Journal.close j;
      (* simulate a crash mid-append: garbage after the valid prefix *)
      let valid = read_file path in
      write_file path (valid ^ "\x40\x00\x00\x00torn-frame");
      let _, (back : string list) = Minjie.Journal.scan ~path in
      Alcotest.(check (list string)) "torn tail ignored on scan"
        [ "alpha"; "beta" ] back;
      (* reopening truncates the tail so appends extend the valid part *)
      let j2, (replayed : string list) = Minjie.Journal.open_ ~path ~key:"k" in
      Alcotest.(check (list string)) "replayed" [ "alpha"; "beta" ] replayed;
      Minjie.Journal.append j2 "gamma";
      Minjie.Journal.close j2;
      Alcotest.(check bool) "no garbage left behind" true
        (String.length (read_file path) < String.length valid + 64);
      let _, (all : string list) = Minjie.Journal.scan ~path in
      Alcotest.(check (list string)) "clean extension"
        [ "alpha"; "beta"; "gamma" ] all)

let test_truncate_every_byte () =
  (* THE recovery property: whatever byte the power failed at, replay
     yields a valid prefix of the appended records -- never an error,
     never a corrupt record, never records out of order *)
  with_tmp (fun path ->
      let j, _ = Minjie.Journal.open_ ~path ~key:"prop" in
      let records =
        List.init 6 (fun i -> (i, String.make (7 * (i + 1)) (Char.chr (65 + i))))
      in
      List.iter (fun r -> Minjie.Journal.append j r) records;
      Minjie.Journal.close j;
      let full = read_file path in
      let is_prefix l =
        let rec go = function
          | [], _ -> true
          | x :: xs, y :: ys -> x = y && go (xs, ys)
          | _ :: _, [] -> false
        in
        go (l, records)
      in
      with_tmp (fun cut ->
          for len = 0 to String.length full do
            write_file cut (String.sub full 0 len);
            let _, (back : (int * string) list) =
              Minjie.Journal.scan ~path:cut
            in
            if not (is_prefix back) then
              Alcotest.failf
                "truncation at byte %d replayed a non-prefix (%d records)"
                len (List.length back)
          done))

let test_flipped_byte_stops_replay () =
  (* a CRC failure ends the journal at that frame; earlier records
     survive untouched *)
  with_tmp (fun path ->
      let j, _ = Minjie.Journal.open_ ~path ~key:"crc" in
      List.iter (fun r -> Minjie.Journal.append j r) [ 111; 222; 333 ];
      Minjie.Journal.close j;
      let full = Bytes.of_string (read_file path) in
      (* flip one byte inside the *last* record's payload *)
      let pos = Bytes.length full - 2 in
      Bytes.set full pos (Char.chr (Char.code (Bytes.get full pos) lxor 0xFF));
      write_file path (Bytes.to_string full);
      let _, (back : int list) = Minjie.Journal.scan ~path in
      Alcotest.(check (list int)) "prefix before the corrupt frame"
        [ 111; 222 ] back)

let test_atomic_write_file () =
  with_tmp (fun path ->
      Minjie.Journal.atomic_write_file ~path "first version";
      Alcotest.(check string) "written" "first version" (read_file path);
      Minjie.Journal.atomic_write_file ~path "second version";
      Alcotest.(check string) "replaced" "second version" (read_file path);
      Alcotest.(check bool) "no temp file left" false
        (Sys.file_exists (path ^ ".tmp")))

(* ---- campaign resume equivalence --------------------------------- *)

let smoke_faults = [ "csr-mtvec-corrupt"; "rob-commit-reorder"; "lsu-sb-drop" ]

exception Simulated_crash

(* Run the smoke campaign but abort (as a crash would) after [k] cells
   have been journaled; then resume and check the merged cells are
   byte-identical to an uninterrupted run's. *)
let check_resume_equivalence ~ref_kind ~jobs k =
  with_tmp (fun path ->
      let run ?(jobs = 1) ?journal ?resume ?progress () =
        Minjie.Campaign.run ~faults:smoke_faults ~seeds:[ 1 ]
          ~ref_kind ~jobs ?journal ?resume ?progress ()
      in
      let clean = run () in
      let completed = ref 0 in
      (* the interrupted run stays sequential: raising from a pool
         parent's progress callback would strand forked workers.
         k = 0 means killed before any cell was journaled: an empty
         journal file is exactly what such a crash leaves behind. *)
      if k > 0 then (
        match
          run ~journal:path
            ~progress:(fun _ ->
              incr completed;
              if !completed >= k then raise Simulated_crash)
            ()
        with
        | exception Simulated_crash -> ()
        | _ when k > List.length clean.Minjie.Campaign.cells -> ()
        | _ -> Alcotest.failf "interrupted run at k=%d was not interrupted" k);
      let resumed = run ~jobs ~journal:path ~resume:true () in
      Alcotest.(check int)
        (Printf.sprintf "k=%d: cells resumed from journal" k)
        (min k (List.length clean.Minjie.Campaign.cells))
        resumed.Minjie.Campaign.resumed;
      Alcotest.(check bool)
        (Printf.sprintf "k=%d: resumed cells structurally equal" k)
        true
        (resumed.Minjie.Campaign.cells = clean.Minjie.Campaign.cells);
      (* byte-diff, literally: marshalled cell lists compared as
         bytes.  No_sharing canonicalises the representation --
         replayed cells lose the inter-cell string sharing of
         freshly computed ones, which is invisible to every consumer
         (the JSON printer included) but changes default Marshal
         output. *)
      Alcotest.(check bool)
        (Printf.sprintf "k=%d: resumed cells byte-identical" k)
        true
        (Marshal.to_string resumed.Minjie.Campaign.cells
           [ Marshal.No_sharing ]
        = Marshal.to_string clean.Minjie.Campaign.cells
            [ Marshal.No_sharing ]))

let test_resume_equivalence_iss () =
  (* kill after cell k for k in {0 (nothing journaled), 1, mid, last} *)
  List.iter
    (fun k -> check_resume_equivalence ~ref_kind:Minjie.Ref_model.Iss ~jobs:1 k)
    [ 0; 1; 2; 3 ]

let test_resume_equivalence_nemu () =
  List.iter
    (fun k ->
      check_resume_equivalence ~ref_kind:Minjie.Ref_model.Nemu ~jobs:1 k)
    [ 0; 2 ]

let test_resume_equivalence_parallel () =
  (* same property with the interrupted run's remainder recomputed by
     the forked pool *)
  List.iter
    (fun k -> check_resume_equivalence ~ref_kind:Minjie.Ref_model.Iss ~jobs:4 k)
    [ 1; 2 ]

let test_resume_from_missing_journal () =
  (* --resume with no journal on disk is just a full run *)
  with_tmp (fun path ->
      Sys.remove path;
      let clean =
        Minjie.Campaign.run ~faults:smoke_faults ~seeds:[ 1 ]
          ~ref_kind:Minjie.Ref_model.Iss ()
      in
      let resumed =
        Minjie.Campaign.run ~faults:smoke_faults ~seeds:[ 1 ]
          ~ref_kind:Minjie.Ref_model.Iss ~journal:path ~resume:true ()
      in
      Alcotest.(check int) "nothing resumed" 0 resumed.Minjie.Campaign.resumed;
      Alcotest.(check bool) "cells identical" true
        (resumed.Minjie.Campaign.cells = clean.Minjie.Campaign.cells))

let tests =
  [
    Alcotest.test_case "crc32 known vectors" `Quick test_crc32_vectors;
    Alcotest.test_case "append/scan roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "reopen replays and extends" `Quick test_resume_append;
    Alcotest.test_case "key mismatch starts fresh" `Quick
      test_key_mismatch_starts_fresh;
    Alcotest.test_case "torn tail truncated on reopen" `Quick
      test_torn_tail_truncated;
    Alcotest.test_case "truncate at every byte = valid prefix" `Quick
      test_truncate_every_byte;
    Alcotest.test_case "corrupt frame ends replay" `Quick
      test_flipped_byte_stops_replay;
    Alcotest.test_case "atomic whole-file write" `Quick test_atomic_write_file;
    Alcotest.test_case "campaign resume equivalence (iss)" `Quick
      test_resume_equivalence_iss;
    Alcotest.test_case "campaign resume equivalence (nemu)" `Quick
      test_resume_equivalence_nemu;
    Alcotest.test_case "campaign resume equivalence (jobs=4)" `Quick
      test_resume_equivalence_parallel;
    Alcotest.test_case "resume from missing journal" `Quick
      test_resume_from_missing_journal;
  ]
