(* The `minjie serve` subsystem: wire-protocol framing and its failure
   edges, served-vs-cold byte identity, warm-state reuse, queue-full
   backpressure, per-client fairness, client disconnect mid-job, and
   crash-safe queue resume. *)

module Proto = Serve.Proto
module Client = Serve.Client
module Server = Serve.Server

(* a tiny generated program: deterministic, flush-free, ~5k insns *)
let tiny_engine =
  Proto.Engine { en_workload = "testgen:7:400:12"; en_max_insns = 1_000_000 }

let sleep_spec ?(secs = 0.15) tag =
  Proto.Sleep { sl_seconds = secs; sl_tag = tag }

let marshal_result (r : Proto.job_result) = Marshal.to_string r []

(* Run [f sock] against a freshly forked server process; always kills
   and reaps the server and removes the socket. *)
let with_server ?(jobs = 1) ?(depth = 64) ?(batch = 2) ?journal
    ?(resume = false) f =
  let sock =
    Printf.sprintf "%s/minjie_serve_test_%d_%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) (int_of_float (Unix.gettimeofday () *. 1e3) mod 100_000)
  in
  (try Sys.remove sock with Sys_error _ -> ());
  (* children inherit the stdout buffer on fork; flush so a worker's
     exit cannot re-emit buffered alcotest output *)
  flush stdout;
  let pid = Unix.fork () in
  if pid = 0 then begin
    let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 null Unix.stderr;
    let cfg =
      {
        Server.socket_path = sock;
        jobs;
        queue_depth = depth;
        batch_max = batch;
        journal_path = journal;
        resume;
        quiet = true;
      }
    in
    let code = try Server.serve cfg with _ -> 10 in
    Unix._exit code
  end
  else
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
        try Sys.remove sock with Sys_error _ -> ())
      (fun () ->
        Alcotest.(check bool) "server came up" true (Client.wait_ready sock);
        f sock)

let result_of_reply = function
  | Proto.Result r -> (r.r_id, r.r_warm, r.r_result)
  | Proto.Busy _ -> Alcotest.fail "unexpected Busy"
  | Proto.Err m -> Alcotest.fail ("unexpected Err: " ^ m)
  | _ -> Alcotest.fail "unexpected reply"

(* --- protocol framing ------------------------------------------------- *)

let test_frame_roundtrip () =
  let reqs =
    [
      Proto.Ping;
      Proto.Stats;
      Proto.Shutdown;
      Proto.Submit tiny_engine;
      Proto.Submit
        (Proto.Campaign
           { ca_faults = [ "a"; "b" ]; ca_seeds = [ 1; 2 ]; ca_ref = "iss" });
    ]
  in
  List.iter
    (fun req ->
      let framed = Proto.frame (Proto.request_to_bytes req) in
      (* feed byte-by-byte: the accumulator must stay incomplete until
         the last byte, then yield exactly one frame *)
      let acc = Proto.Accum.create () in
      let n = Bytes.length framed in
      for i = 0 to n - 2 do
        Proto.Accum.feed acc (Bytes.sub framed i 1) 1;
        match Proto.Accum.next acc with
        | None -> ()
        | Some _ -> Alcotest.fail "frame complete before its last byte"
      done;
      Proto.Accum.feed acc (Bytes.sub framed (n - 1) 1) 1;
      (match Proto.Accum.next acc with
      | Some (Ok payload) ->
          Alcotest.(check bool)
            "request survives the roundtrip" true
            (Proto.request_of_payload payload = req)
      | _ -> Alcotest.fail "no frame after the last byte");
      Alcotest.(check bool)
        "accumulator drained" true
        (Proto.Accum.next acc = None))
    reqs

let test_frame_corruption () =
  let framed = Proto.frame (Proto.request_to_bytes Proto.Ping) in
  (* flip one payload byte: CRC must catch it *)
  let corrupt = Bytes.copy framed in
  Bytes.set corrupt 8 (Char.chr (Char.code (Bytes.get corrupt 8) lxor 0x40));
  let acc = Proto.Accum.create () in
  Proto.Accum.feed acc corrupt (Bytes.length corrupt);
  (match Proto.Accum.next acc with
  | Some (Error msg) ->
      Alcotest.(check bool)
        "CRC error named" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "corrupted frame not rejected");
  (* an absurd length field is rejected before any allocation *)
  let huge = Bytes.make 8 '\xff' in
  let acc2 = Proto.Accum.create () in
  Proto.Accum.feed acc2 huge 8;
  match Proto.Accum.next acc2 with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "oversized frame length not rejected"

(* --- served results vs the cold-start path ---------------------------- *)

let test_served_byte_identical_to_cold () =
  let specs =
    [
      tiny_engine;
      Proto.Run
        {
          rn_workload = "coremark_like";
          rn_config = "YQH";
          rn_max_cycles = 100_000;
          rn_ref = "iss";
        };
      sleep_spec ~secs:0.01 "identity";
    ]
  in
  with_server (fun sock ->
      List.iter
        (fun spec ->
          let cold = marshal_result (Server.exec_cold spec) in
          let c = Client.connect sock in
          let _, _, r1 = result_of_reply (Client.submit c spec) in
          let _, warm2, r2 = result_of_reply (Client.submit c spec) in
          Client.close c;
          Alcotest.(check bool)
            "first served result byte-identical to cold" true
            (marshal_result r1 = cold);
          Alcotest.(check bool)
            "repeat served result byte-identical to cold" true
            (marshal_result r2 = cold);
          match Proto.warm_key spec with
          | Some _ ->
              Alcotest.(check bool) "repeat job reported warm" true warm2
          | None -> ())
        specs)

let test_warm_engine_in_process () =
  (* the same property the server leans on, without sockets: a warm
     engine re-run retires the same instructions to the same digest as
     a cold engine, and compiles nothing new *)
  let cache = Serve.Warm_cache.create () in
  let r1 = Server.exec cache ~jobs:1 tiny_engine in
  let w = Serve.Warm_cache.engine cache "testgen:7:400:12" in
  let compiled_after_first = Nemu.Engine.warm_compiled w in
  let r2 = Server.exec cache ~jobs:1 tiny_engine in
  Alcotest.(check bool)
    "warm rerun result identical" true
    (marshal_result r1 = marshal_result r2);
  Alcotest.(check int) "warm rerun compiled nothing new" compiled_after_first
    (Nemu.Engine.warm_compiled w);
  Alcotest.(check bool)
    "matches the cold path" true
    (marshal_result (Server.exec_cold tiny_engine) = marshal_result r1)

(* --- failure edges ---------------------------------------------------- *)

let test_malformed_frame_closes_connection () =
  with_server (fun sock ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      (* valid length header, garbage payload: CRC cannot match *)
      let framed = Proto.frame (Proto.request_to_bytes Proto.Ping) in
      Bytes.set framed 8 '\x00';
      Bytes.set framed 9 '\x00';
      let _ = Unix.write fd framed 0 (Bytes.length framed) in
      (match Proto.read_frame fd with
      | Some payload -> (
          match Proto.reply_of_payload payload with
          | Proto.Err _ -> ()
          | _ -> Alcotest.fail "expected an Err reply")
      | None -> Alcotest.fail "server closed without an Err reply");
      (* ...then the connection is closed *)
      Alcotest.(check bool)
        "connection closed after the error" true
        (match Proto.read_frame fd with
        | None -> true
        | Some _ -> false
        | exception _ -> true);
      Unix.close fd;
      (* ...and the server is still healthy for new clients *)
      let c = Client.connect sock in
      let _, _, _ = result_of_reply (Client.submit c tiny_engine) in
      Client.close c)

let test_disconnect_mid_job () =
  let journal =
    Filename.temp_file "serve_disconnect" ".journal"
  in
  Sys.remove journal;
  Fun.protect
    ~finally:(fun () -> try Sys.remove journal with Sys_error _ -> ())
    (fun () ->
      with_server ~journal (fun sock ->
          (* submit a job and vanish before it completes *)
          let c = Client.connect sock in
          Client.submit_nowait c (sleep_spec ~secs:0.4 "abandoned");
          Unix.sleepf 0.1;
          Client.close c;
          (* the job still runs to completion: watch jobs_done *)
          let c2 = Client.connect sock in
          let deadline = Unix.gettimeofday () +. 10.0 in
          let rec wait_done () =
            match Client.request c2 Proto.Stats with
            | Proto.Stats_reply s when s.st_jobs_done >= 1 -> ()
            | _ when Unix.gettimeofday () > deadline ->
                Alcotest.fail "abandoned job never completed"
            | _ ->
                Unix.sleepf 0.05;
                wait_done ()
          in
          wait_done ();
          (* server still serves *)
          let _, _, _ = result_of_reply (Client.submit c2 tiny_engine) in
          (match Client.request c2 Proto.Shutdown with
          | Proto.Shutting_down -> ()
          | _ -> Alcotest.fail "shutdown not acknowledged");
          Client.close c2);
      (* the journal accounts for the abandoned job: accepted AND done *)
      let j, (records : Server.jrec list) =
        Minjie.Journal.open_ ~path:journal ~key:Server.journal_key
      in
      Minjie.Journal.close j;
      let acc_sleep =
        List.exists
          (function
            | Server.J_acc (_, Proto.Sleep s) -> s.sl_tag = "abandoned"
            | _ -> false)
          records
      in
      Alcotest.(check bool) "abandoned job journaled as accepted" true
        acc_sleep;
      Alcotest.(check bool)
        "abandoned job journaled as done" true
        (List.exists
           (function
             | Server.J_done (_, Proto.R_sleep s) -> s.rs_tag = "abandoned"
             | _ -> false)
           records);
      Alcotest.(check int) "no pending jobs left in the journal" 0
        (List.length (Server.pending_of_records records)))

let test_busy_backpressure () =
  with_server ~jobs:1 ~depth:1 ~batch:1 (fun sock ->
      (* occupy the server: batch execution blocks its event loop *)
      let blocker = Client.connect sock in
      Client.submit_nowait blocker (sleep_spec ~secs:0.8 "blocker");
      Unix.sleepf 0.2;
      (* while it runs, flood three submits; the server drains them in
         one round: one fills the queue (depth 1), the rest get Busy *)
      let c = Client.connect sock in
      Client.submit_nowait c (sleep_spec ~secs:0.01 "q1");
      Client.submit_nowait c (sleep_spec ~secs:0.01 "q2");
      Client.submit_nowait c (sleep_spec ~secs:0.01 "q3");
      let r1 = Client.read_reply c in
      let r2 = Client.read_reply c in
      let busy = function Proto.Busy _ -> true | _ -> false in
      Alcotest.(check bool) "excess submits got Busy" true
        (busy r1 && busy r2);
      (* the accepted one completes *)
      (match Client.read_reply c with
      | Proto.Result { r_result = Proto.R_sleep s; _ } ->
          Alcotest.(check string) "accepted job was the first" "q1" s.rs_tag
      | _ -> Alcotest.fail "queued job did not complete");
      (* a later retry succeeds *)
      (match Client.submit c (sleep_spec ~secs:0.01 "retry") with
      | Proto.Result { r_result = Proto.R_sleep s; _ } ->
          Alcotest.(check string) "retry accepted" "retry" s.rs_tag
      | _ -> Alcotest.fail "retry after Busy failed");
      (match Client.read_reply blocker with
      | Proto.Result { r_result = Proto.R_sleep s; _ } ->
          Alcotest.(check string) "blocker completed" "blocker" s.rs_tag
      | _ -> Alcotest.fail "blocker lost");
      Client.close blocker;
      Client.close c)

let test_round_robin_fairness () =
  with_server ~jobs:1 ~depth:64 ~batch:2 (fun sock ->
      (* block the loop so both clients' floods queue up together *)
      let blocker = Client.connect sock in
      Client.submit_nowait blocker (sleep_spec ~secs:0.5 "blocker");
      Unix.sleepf 0.15;
      let a = Client.connect sock in
      let b = Client.connect sock in
      let t0 = Unix.gettimeofday () in
      for i = 1 to 4 do
        Client.submit_nowait a (sleep_spec ~secs:0.15 (Printf.sprintf "a%d" i))
      done;
      Client.submit_nowait b (sleep_spec ~secs:0.15 "b1");
      (* round-robin batching must schedule b1 in the first batch
         alongside a1, so b's latency beats a's 4th job by the width
         of at least one batch *)
      let _ = Client.read_reply b in
      let t_b = Unix.gettimeofday () -. t0 in
      for _ = 1 to 4 do
        ignore (Client.read_reply a)
      done;
      let t_a4 = Unix.gettimeofday () -. t0 in
      ignore (Client.read_reply blocker);
      Alcotest.(check bool)
        (Printf.sprintf
           "one job from the quiet client lands before the flood drains \
            (b %.2fs vs a4 %.2fs)"
           t_b t_a4)
        true
        (t_b < t_a4 -. 0.1);
      Client.close a;
      Client.close b;
      Client.close blocker)

(* --- crash-safe queue resume ------------------------------------------ *)

let test_pending_of_records () =
  let spec = tiny_engine in
  let records =
    [
      Server.J_acc (0, spec);
      Server.J_done (0, Proto.R_sleep { rs_tag = "x" });
      Server.J_acc (1, spec);
      Server.J_acc (2, sleep_spec "z");
      Server.J_done (2, Proto.R_sleep { rs_tag = "z" });
      Server.J_acc (3, spec);
    ]
  in
  let pending = Server.pending_of_records records in
  Alcotest.(check (list int))
    "unfinished ids, in acceptance order" [ 1; 3 ]
    (List.map fst pending)

let test_resume_reruns_pending () =
  let journal = Filename.temp_file "serve_resume" ".journal" in
  Sys.remove journal;
  Fun.protect
    ~finally:(fun () -> try Sys.remove journal with Sys_error _ -> ())
    (fun () ->
      (* forge the journal of a server that died with one accepted,
         unfinished job *)
      let j, (_ : Server.jrec list) =
        Minjie.Journal.open_ ~path:journal ~key:Server.journal_key
      in
      Minjie.Journal.append j (Server.J_acc (41, tiny_engine));
      Minjie.Journal.close j;
      (* a resumed server must re-run it before serving new clients *)
      with_server ~journal ~resume:true (fun sock ->
          let c = Client.connect sock in
          (match Client.request c Proto.Shutdown with
          | Proto.Shutting_down -> ()
          | _ -> Alcotest.fail "shutdown not acknowledged");
          Client.close c);
      let j, (records : Server.jrec list) =
        Minjie.Journal.open_ ~path:journal ~key:Server.journal_key
      in
      Minjie.Journal.close j;
      let orphan_done =
        List.exists
          (function
            | Server.J_done (41, Proto.R_engine _) -> true
            | _ -> false)
          records
      in
      Alcotest.(check bool) "orphan re-ran and journaled its result" true
        orphan_done;
      Alcotest.(check int) "journal shows nothing pending" 0
        (List.length (Server.pending_of_records records));
      (* and its result equals the cold-start result *)
      let cold = Server.exec_cold tiny_engine in
      let orphan_result =
        List.find_map
          (function
            | Server.J_done (41, r) -> Some r
            | _ -> None)
          records
      in
      Alcotest.(check bool)
        "orphan result byte-identical to cold" true
        (Some (marshal_result cold) = Option.map marshal_result orphan_result))

(* --- EWMA runtime feedback -------------------------------------------- *)

let test_ewma () =
  let e = Serve.Warm_cache.Ewma.create ~alpha:0.5 () in
  Alcotest.(check (float 1e-9))
    "default before any sample" 7.0
    (Serve.Warm_cache.Ewma.expect e "k" ~default:7.0);
  Serve.Warm_cache.Ewma.observe e "k" 1.0;
  Alcotest.(check (float 1e-9))
    "first sample taken verbatim" 1.0
    (Serve.Warm_cache.Ewma.expect e "k" ~default:0.0);
  Serve.Warm_cache.Ewma.observe e "k" 3.0;
  Alcotest.(check (float 1e-9))
    "EWMA blends" 2.0
    (Serve.Warm_cache.Ewma.expect e "k" ~default:0.0);
  Serve.Warm_cache.Ewma.observe e "other" 5.0;
  Alcotest.(check bool)
    "snapshot sorted by key" true
    (List.map fst (Serve.Warm_cache.Ewma.snapshot e) = [ "k"; "other" ])

let tests =
  [
    Alcotest.test_case "frame roundtrip (byte-at-a-time)" `Quick
      test_frame_roundtrip;
    Alcotest.test_case "frame corruption rejected" `Quick test_frame_corruption;
    Alcotest.test_case "served == cold, byte for byte" `Quick
      test_served_byte_identical_to_cold;
    Alcotest.test_case "warm engine identity + no recompiles" `Quick
      test_warm_engine_in_process;
    Alcotest.test_case "malformed frame: Err, close, stay healthy" `Quick
      test_malformed_frame_closes_connection;
    Alcotest.test_case "client disconnect mid-job" `Quick
      test_disconnect_mid_job;
    Alcotest.test_case "queue-full backpressure (Busy, then retry)" `Quick
      test_busy_backpressure;
    Alcotest.test_case "per-client round-robin fairness" `Quick
      test_round_robin_fairness;
    Alcotest.test_case "pending_of_records" `Quick test_pending_of_records;
    Alcotest.test_case "resume re-runs journaled pending jobs" `Quick
      test_resume_reruns_pending;
    Alcotest.test_case "EWMA runtime feedback" `Quick test_ewma;
  ]
