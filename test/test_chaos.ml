(* The host-chaos injection suite: every armed fault class actually
   fires against the pool/journal hooks, and the recovery machinery
   (EINTR/short-write retry loops, supervised retries, journal
   degradation) delivers results identical to the clean run. *)

let mk ?(cost = 1.0) label f =
  { Minjie.Pool.j_label = label; j_cost = cost; j_run = f }

let with_chaos ?slow_delay ~seed classes f =
  Minjie.Host_chaos.arm ?slow_delay ~seed classes;
  Fun.protect ~finally:Minjie.Host_chaos.disarm f

let payload_of = function
  | Minjie.Pool.Done v -> Some v
  | _ -> None

let test_determinism () =
  (* the same seed must plan the same fates, run after run *)
  let labels = List.init 32 (fun i -> Printf.sprintf "cell%d" i) in
  let fates seed =
    with_chaos ~seed [ Minjie.Host_chaos.Worker_kill ] (fun () ->
        List.map
          (fun l -> Minjie.Host_chaos.worker_fate ~label:l ~attempt:0)
          labels)
  in
  Alcotest.(check bool) "seed 5 reproducible" true (fates 5 = fates 5);
  Alcotest.(check bool) "seeds differ" true (fates 5 <> fates 6);
  (* attempt > 0 is always clean, whatever the schedule *)
  with_chaos ~seed:5 [ Minjie.Host_chaos.Worker_kill ] (fun () ->
      List.iter
        (fun l ->
          if Minjie.Host_chaos.worker_fate ~label:l ~attempt:1
             <> Minjie.Host_chaos.Run
          then Alcotest.failf "retry of %s not spared" l)
        labels)

let test_eintr_storm_pool () =
  (* a bounded synthetic EINTR storm on every pipe read/write/waitpid:
     the pool's retry loops must deliver every result unscathed *)
  let jobs = List.init 6 (fun i -> mk (Printf.sprintf "e%d" i) (fun () -> i * 3)) in
  with_chaos ~seed:1 [ Minjie.Host_chaos.Eintr_storm ] (fun () ->
      let results, stats = Minjie.Pool.map ~jobs:2 jobs in
      List.iteri
        (fun i r ->
          Alcotest.(check (option int))
            (Printf.sprintf "job %d survived the storm" i)
            (Some (i * 3))
            (payload_of r.Minjie.Pool.r_outcome))
        results;
      Alcotest.(check int) "no crashes" 0 stats.Minjie.Pool.p_crashed;
      (* the storm actually hit this process *)
      match List.assoc_opt "eintr" (Minjie.Host_chaos.fired ()) with
      | Some n when n > 0 -> ()
      | _ -> Alcotest.fail "no synthetic EINTRs fired")

let test_short_writes_pool () =
  (* clamped partial writes force the write_all continuation path;
     large payloads must still arrive byte-perfect *)
  let big i = String.init 40_000 (fun j -> Char.chr ((i + j) land 0xff)) in
  let jobs = List.init 4 (fun i -> mk (Printf.sprintf "s%d" i) (fun () -> big i)) in
  with_chaos ~seed:1 [ Minjie.Host_chaos.Short_write ] (fun () ->
      let results, _ = Minjie.Pool.map ~jobs:2 jobs in
      List.iteri
        (fun i r ->
          match payload_of r.Minjie.Pool.r_outcome with
          | Some s when s = big i -> ()
          | Some _ -> Alcotest.failf "job %d payload corrupted" i
          | None -> Alcotest.failf "job %d failed under short writes" i)
        results)

let test_worker_kill_converges () =
  (* find a seed whose schedule kills at least one of our labels, then
     prove supervised retries converge every job to Done *)
  let labels = List.init 8 (fun i -> Printf.sprintf "victim%d" i) in
  let seed =
    let rec hunt s =
      if s > 64 then Alcotest.fail "no killing seed found"
      else if
        with_chaos ~seed:s [ Minjie.Host_chaos.Worker_kill ] (fun () ->
            List.exists
              (fun l ->
                Minjie.Host_chaos.worker_fate ~label:l ~attempt:0
                <> Minjie.Host_chaos.Run)
              labels)
      then s
      else hunt (s + 1)
    in
    hunt 1
  in
  with_chaos ~seed [ Minjie.Host_chaos.Worker_kill ] (fun () ->
      let victims =
        List.length
          (List.filter
             (fun l ->
               Minjie.Host_chaos.worker_fate ~label:l ~attempt:0
               <> Minjie.Host_chaos.Run)
             labels)
      in
      let jobs = List.mapi (fun i l -> mk l (fun () -> i * 11)) labels in
      let results, _, rep =
        Minjie.Supervisor.map ~jobs:2
          ~policy:{ Minjie.Supervisor.default_policy with sp_retries = 2 }
          jobs
      in
      List.iteri
        (fun i r ->
          Alcotest.(check (option int))
            (Printf.sprintf "job %d converged" i)
            (Some (i * 11))
            (payload_of r.Minjie.Pool.r_outcome))
        results;
      Alcotest.(check int) "every victim recovered" victims
        rep.Minjie.Supervisor.sup_recovered)

let test_slow_worker_times_out_then_converges () =
  (* a stalled worker fires the pool's timeout escalation; the retry
     (spared by the schedule) converges *)
  let labels = List.init 16 (fun i -> Printf.sprintf "slow%d" i) in
  with_chaos ~slow_delay:5.0 ~seed:1 [ Minjie.Host_chaos.Slow_worker ]
    (fun () ->
      let stalled =
        List.filter
          (fun l ->
            match Minjie.Host_chaos.worker_fate ~label:l ~attempt:0 with
            | Minjie.Host_chaos.Stall _ -> true
            | _ -> false)
          labels
      in
      if stalled = [] then Alcotest.fail "schedule stalled nothing";
      (* one stalled label and one clean one keep the test fast *)
      let clean =
        List.find
          (fun l ->
            Minjie.Host_chaos.worker_fate ~label:l ~attempt:0
            = Minjie.Host_chaos.Run)
          labels
      in
      let jobs = [ mk (List.hd stalled) (fun () -> 1); mk clean (fun () -> 2) ] in
      let results, _, rep =
        Minjie.Supervisor.map ~jobs:2 ~timeout:0.4
          ~policy:{ Minjie.Supervisor.default_policy with sp_retries = 1 }
          jobs
      in
      List.iter
        (fun r ->
          match r.Minjie.Pool.r_outcome with
          | Minjie.Pool.Done _ -> ()
          | _ -> Alcotest.failf "%s did not converge" r.Minjie.Pool.r_label)
        results;
      Alcotest.(check int) "the stall was retried" 1
        rep.Minjie.Supervisor.sup_recovered)

let test_journal_enospc_degrades () =
  (* the first append past the header fails ENOSPC-shaped: the journal
     must warn and degrade, never abort the run *)
  let path = Filename.temp_file "minjie-test-chaos" ".jnl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      with_chaos ~seed:1 [ Minjie.Host_chaos.Journal_enospc ] (fun () ->
          let j, _ = Minjie.Journal.open_ ~path ~key:"k" in
          Minjie.Journal.append j 100;
          Alcotest.(check bool) "first append fine" true
            (Minjie.Journal.active j);
          Minjie.Journal.append j 200;
          Alcotest.(check bool) "degraded after ENOSPC" false
            (Minjie.Journal.active j);
          (* further appends are silent no-ops, not crashes *)
          Minjie.Journal.append j 300;
          Minjie.Journal.close j);
      let _, (back : int list) = Minjie.Journal.scan ~path in
      Alcotest.(check (list int)) "valid prefix survived" [ 100 ] back)

let smoke_faults = [ "csr-mtvec-corrupt"; "rob-commit-reorder"; "lsu-sb-drop" ]

let test_campaign_verdict_identity_under_chaos () =
  (* the headline guarantee: worker kills + EINTR storms + short
     writes together cannot change a single campaign verdict *)
  let clean =
    Minjie.Campaign.run ~faults:smoke_faults ~seeds:[ 1 ]
      ~ref_kind:Minjie.Ref_model.Iss ()
  in
  let chaotic =
    with_chaos ~seed:1
      [
        Minjie.Host_chaos.Worker_kill;
        Minjie.Host_chaos.Eintr_storm;
        Minjie.Host_chaos.Short_write;
      ]
      (fun () ->
        Minjie.Campaign.run ~faults:smoke_faults ~seeds:[ 1 ]
          ~ref_kind:Minjie.Ref_model.Iss ~jobs:2 ~retries:2 ())
  in
  Alcotest.(check bool) "cells structurally equal" true
    (chaotic.Minjie.Campaign.cells = clean.Minjie.Campaign.cells);
  (* No_sharing canonicalises: pool-returned cells lack the
     inter-cell string sharing of in-process ones *)
  Alcotest.(check bool) "cells byte-identical" true
    (Marshal.to_string chaotic.Minjie.Campaign.cells [ Marshal.No_sharing ]
    = Marshal.to_string clean.Minjie.Campaign.cells [ Marshal.No_sharing ])

let test_faults_not_retried_away () =
  (* the flake classifier must never launder a real microarchitectural
     fault: a detected cell is a successful Done result, so even an
     absurd retry budget leaves the detection verdict intact *)
  let s =
    Minjie.Campaign.run ~faults:smoke_faults ~seeds:[ 1 ]
      ~ref_kind:Minjie.Ref_model.Iss ~jobs:2 ~retries:5 ()
  in
  Alcotest.(check int) "every fault still detected"
    (List.length smoke_faults)
    s.Minjie.Campaign.detected;
  Alcotest.(check int) "no escapes" 0 s.Minjie.Campaign.escapes;
  Alcotest.(check int) "nothing was retried" 0 s.Minjie.Campaign.retried

let test_env_plan () =
  Alcotest.(check bool) "no env, no plan" true
    (Minjie.Host_chaos.env_plan () = None
    || Sys.getenv_opt "MINJIE_CHAOS" <> None);
  Unix.putenv "MINJIE_CHAOS" "eintr,worker-kill";
  Unix.putenv "MINJIE_CHAOS_SEED" "9";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "MINJIE_CHAOS" "";
      Unix.putenv "MINJIE_CHAOS_SEED" "")
    (fun () ->
      match Minjie.Host_chaos.env_plan () with
      | Some (9, [ Minjie.Host_chaos.Eintr_storm; Minjie.Host_chaos.Worker_kill ])
        ->
          ()
      | Some _ -> Alcotest.fail "wrong plan parsed"
      | None -> Alcotest.fail "env plan not picked up")

let tests =
  [
    Alcotest.test_case "schedules are deterministic" `Quick test_determinism;
    Alcotest.test_case "pool survives EINTR storm" `Quick
      test_eintr_storm_pool;
    Alcotest.test_case "pool survives short writes" `Quick
      test_short_writes_pool;
    Alcotest.test_case "worker kills converge under retry" `Quick
      test_worker_kill_converges;
    Alcotest.test_case "slow worker times out then converges" `Quick
      test_slow_worker_times_out_then_converges;
    Alcotest.test_case "journal degrades on ENOSPC" `Quick
      test_journal_enospc_degrades;
    Alcotest.test_case "campaign verdict identical under chaos" `Quick
      test_campaign_verdict_identity_under_chaos;
    Alcotest.test_case "real faults are not retried away" `Quick
      test_faults_not_retried_away;
    Alcotest.test_case "MINJIE_CHAOS env plan" `Quick test_env_plan;
  ]
