(* Interpreter engines: architectural equivalence of NEMU and the
   three baselines against the reference ISS across the workload
   suite, plus engine-specific structure (uop-cache behaviour). *)

let iss_reference prog =
  let m = Iss.Interp.create ~hartid:0 () in
  Iss.Interp.load_program m prog;
  let n = Iss.Interp.run ~max_insns:100_000_000 m in
  (n, Iss.Interp.exit_code m, m)

let run_engine kind prog =
  let m = Nemu.Mach.create () in
  Nemu.Mach.load_program m prog;
  let n =
    match kind with
    | Nemu.Engine.Nemu ->
        let t = Nemu.Fast.create m in
        Nemu.Fast.run t ~max_insns:100_000_000
    | Nemu.Engine.Spike_like -> Nemu.Spike_like.run m ~max_insns:100_000_000
    | Nemu.Engine.Qemu_tci_like ->
        Nemu.Qemu_tci_like.run m ~max_insns:100_000_000
    | Nemu.Engine.Dromajo_like -> Nemu.Dromajo_like.run m ~max_insns:100_000_000
  in
  (n, Nemu.Mach.exit_code m, m)

let equivalence_case (w : Workloads.Wl_common.t) =
  Alcotest.test_case (w.wl_name ^ " on all engines") `Slow (fun () ->
      let prog = w.program ~scale:w.small in
      let n_ref, code_ref, iss = iss_reference prog in
      List.iter
        (fun kind ->
          let n, code, m = run_engine kind prog in
          let name = Nemu.Engine.name kind in
          Alcotest.(check int) (name ^ " instret") n_ref n;
          Alcotest.(check (option int)) (name ^ " exit code") code_ref code;
          (* final integer register file must agree *)
          for r = 1 to 31 do
            Alcotest.(check int64)
              (Printf.sprintf "%s x%d" name r)
              (Riscv.Arch_state.get_reg iss.Iss.Interp.st r)
              (Nemu.Mach.get_reg m r)
          done)
        Nemu.Engine.all)

let test_uop_cache_structure () =
  let prog = (Workloads.Suite.find "coremark_like").program ~scale:1 in
  let m = Nemu.Mach.create () in
  Nemu.Mach.load_program m prog;
  let t = Nemu.Fast.create m in
  let n = Nemu.Fast.run t ~max_insns:10_000_000 in
  Alcotest.(check bool) "ran" true (n > 1000);
  (* trace organisation: far fewer compilations than executions *)
  Alcotest.(check bool)
    (Printf.sprintf "compiled %d << executed %d" t.Nemu.Fast.compiled n)
    true
    (t.Nemu.Fast.compiled * 10 < n);
  (* block chaining: slow lookups are a small fraction of executions *)
  Alcotest.(check bool)
    (Printf.sprintf "slow lookups %d" t.Nemu.Fast.slow_lookups)
    true
    (t.Nemu.Fast.slow_lookups * 5 < n)

let test_uop_cache_eviction_on_capacity () =
  let prog = (Workloads.Suite.find "coremark_like").program ~scale:1 in
  let m = Nemu.Mach.create () in
  Nemu.Mach.load_program m prog;
  (* tiny capacity: the cache must evict victims (not flush wholesale)
     and stale chains must self-heal, with execution staying correct *)
  let t = Nemu.Fast.create ~capacity:16 m in
  let _ = Nemu.Fast.run t ~max_insns:10_000_000 in
  Alcotest.(check bool) "evicted" true (t.Nemu.Fast.evictions > 0);
  Alcotest.(check bool) "chains self-healed" true (t.Nemu.Fast.recompiles > 0);
  Alcotest.(check bool) "cache stayed bounded" true
    (Hashtbl.length t.Nemu.Fast.cache <= 2 * t.Nemu.Fast.capacity);
  Alcotest.(check (option int)) "still correct" (Some 199) (Nemu.Mach.exit_code m)

(* --- superblock NEMU vs step-by-step reference ------------------------

   The superblock engine must be architecturally indistinguishable
   from executing Exec_generic.step in a loop: same final registers,
   CSRs, memory, pc and instret -- including across paging, mid-block
   traps (page faults and misaligned accesses that fire from inside a
   fused body) and cache eviction. *)

let step_reference ?(max_insns = 50_000_000) prog =
  let m = Nemu.Mach.create () in
  Nemu.Mach.load_program m prog;
  let steps = ref 0 in
  while m.Nemu.Mach.running && !steps < max_insns do
    Nemu.Exec_generic.step Nemu.Exec_generic.host_fp m;
    incr steps;
    if !steps land 0xFF = 0 then Nemu.Mach.check_running m
  done;
  Nemu.Mach.check_running m;
  m

let nemu_superblock ?capacity ?(max_insns = 50_000_000) prog =
  let m = Nemu.Mach.create () in
  Nemu.Mach.load_program m prog;
  let t = Nemu.Fast.create ?capacity m in
  let _ = Nemu.Fast.run t ~max_insns in
  m

let mem_digest (mem : Riscv.Memory.t) =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i p ->
      match p with
      | Some pg ->
          Buffer.add_string buf (string_of_int i);
          Buffer.add_string buf
            (Digest.to_hex (Digest.bytes pg.Riscv.Memory.data))
      | None -> ())
    mem.Riscv.Memory.pages;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let check_same_arch name (ref_m : Nemu.Mach.t) (m : Nemu.Mach.t) =
  Alcotest.(check (option int))
    (name ^ " exit code")
    (Nemu.Mach.exit_code ref_m) (Nemu.Mach.exit_code m);
  Alcotest.(check int)
    (name ^ " instret") ref_m.Nemu.Mach.instret m.Nemu.Mach.instret;
  Alcotest.(check int64) (name ^ " pc") ref_m.Nemu.Mach.pc m.Nemu.Mach.pc;
  for r = 1 to 31 do
    Alcotest.(check int64)
      (Printf.sprintf "%s x%d" name r)
      (Nemu.Mach.get_reg ref_m r) (Nemu.Mach.get_reg m r)
  done;
  for f = 0 to 31 do
    Alcotest.(check int64)
      (Printf.sprintf "%s f%d" name f)
      (Bigarray.Array1.get ref_m.Nemu.Mach.fregs f)
      (Bigarray.Array1.get m.Nemu.Mach.fregs f)
  done;
  Alcotest.(check (list (pair string int64)))
    (name ^ " csrs")
    (Riscv.Csr.compare_digest ref_m.Nemu.Mach.csr)
    (Riscv.Csr.compare_digest m.Nemu.Mach.csr);
  Alcotest.(check string)
    (name ^ " memory")
    (mem_digest ref_m.Nemu.Mach.plat.Riscv.Platform.mem)
    (mem_digest m.Nemu.Mach.plat.Riscv.Platform.mem)

(* Straight-line runs with misaligned loads/stores in the middle: the
   trap fires from inside a fused superblock body and must retire a
   precise instruction count and epc; the M-mode handler skips the
   faulting instruction (mepc += 4) and returns. *)
let trap_torture_program =
  let open Riscv in
  let open Workloads.Wl_common.Ops in
  Asm.assemble
    ([
       Asm.la Asm.t0 "handler";
       Asm.i (Insn.Csr (CSRRW, 0, Asm.t0, Csr.mtvec));
       Asm.li Asm.s1 0L;
       Asm.li Asm.s2 (Int64.add Platform.dram_base 0x10000L);
       Asm.li Asm.s3 5L;
       Asm.label "loop";
       addi Asm.s1 Asm.s1 1;
       addi Asm.s1 Asm.s1 2;
       sd Asm.s1 Asm.s2 0;
       ld Asm.t1 Asm.s2 0;
       add Asm.s1 Asm.s1 Asm.t1;
       lw Asm.t2 Asm.s2 1; (* misaligned: traps mid-block *)
       add Asm.s1 Asm.s1 Asm.t2;
       addi Asm.s1 Asm.s1 3;
       sw Asm.s1 Asm.s2 8;
       sw Asm.s1 Asm.s2 3; (* misaligned: traps mid-block *)
       lbu Asm.t3 Asm.s2 3;
       add Asm.s1 Asm.s1 Asm.t3;
       addi Asm.s3 Asm.s3 (-1);
       Asm.bnez Asm.s3 "loop";
       Asm.mv Asm.a0 Asm.s1;
     ]
    @ Workloads.Wl_common.exit_with Asm.a0
    @ [
        Asm.label "handler";
        Asm.i (Insn.Csr (CSRRS, Asm.t5, 0, Csr.mepc));
        addi Asm.t5 Asm.t5 4;
        Asm.i (Insn.Csr (CSRRW, 0, Asm.t5, Csr.mepc));
        Asm.i Insn.Mret;
      ])

let test_superblock_vs_step_fuzz () =
  for seed = 1 to 12 do
    let prog = Workloads.Testgen.program ~seed () in
    let name = Printf.sprintf "testgen seed %d" seed in
    let ref_m = step_reference prog in
    check_same_arch name ref_m (nemu_superblock prog);
    (* again with a tiny cache so eviction + chain self-healing is on
       the execution path *)
    check_same_arch (name ^ " (evicting)") ref_m
      (nemu_superblock ~capacity:8 prog)
  done

let test_superblock_vs_step_paging () =
  List.iter
    (fun (name, prog) ->
      let ref_m = step_reference prog in
      check_same_arch name ref_m (nemu_superblock prog))
    [
      ("vm_kernel", Workloads.Vm_kernel.program ~rounds:3 ~scale:2 ());
      ("user_mode", Workloads.User_mode.program ~scale:2 ());
    ]

let test_superblock_vs_step_midblock_traps () =
  let ref_m = step_reference trap_torture_program in
  Alcotest.(check bool) "reference terminated" true
    (Nemu.Mach.exit_code ref_m <> None);
  check_same_arch "trap torture" ref_m (nemu_superblock trap_torture_program);
  check_same_arch "trap torture (evicting)" ref_m
    (nemu_superblock ~capacity:8 trap_torture_program)

(* exact budget stops: run ~max_insns must retire exactly max_insns
   even when the boundary falls inside a superblock (checkpoint
   sampling relies on this) *)
let test_exact_budget_stops () =
  let prog = (Workloads.Suite.find "coremark_like").program ~scale:1 in
  List.iter
    (fun budget ->
      let m = Nemu.Mach.create () in
      Nemu.Mach.load_program m prog;
      let t = Nemu.Fast.create m in
      let n = Nemu.Fast.run t ~max_insns:budget in
      Alcotest.(check int)
        (Printf.sprintf "retired exactly %d" budget)
        budget n;
      Alcotest.(check int)
        (Printf.sprintf "instret at %d" budget)
        budget m.Nemu.Mach.instret;
      (* resume and compare against an uninterrupted reference run *)
      let rest = Nemu.Fast.run t ~max_insns:50_000_000 in
      let ref_m = step_reference prog in
      Alcotest.(check int) "total instret" ref_m.Nemu.Mach.instret (budget + rest))
    [ 1; 2; 3; 7; 50; 1234; 9_999 ]

(* --- trace megablocks --------------------------------------------------

   The trace compiler must be architecturally invisible: megablocks-on
   vs -off vs generic stepping agree on all state, traps from inside a
   trace retire a precise count and epc, budget stops inside a trace
   are exact, and fence.i / sfence.vma / self-modifying stores
   invalidate trace members.  hot_threshold:1 promotes every block on
   its first re-dispatch so even short tests run almost entirely
   inside traces. *)

let nemu_mega ?megablocks ?(hot_threshold = 1) ?(max_insns = 50_000_000) prog =
  let m = Nemu.Mach.create () in
  Nemu.Mach.load_program m prog;
  let t = Nemu.Fast.create ?megablocks ~hot_threshold m in
  let _ = Nemu.Fast.run t ~max_insns in
  (m, t)

let test_megablock_vs_step_fuzz () =
  for seed = 1 to 12 do
    let prog = Workloads.Testgen.program ~seed () in
    let ref_m = step_reference prog in
    let m_on, _ = nemu_mega ~megablocks:true prog in
    check_same_arch (Printf.sprintf "testgen seed %d (mega on)" seed) ref_m m_on;
    let m_off, _ = nemu_mega ~megablocks:false prog in
    check_same_arch
      (Printf.sprintf "testgen seed %d (mega off)" seed)
      ref_m m_off
  done

let test_megablock_paging () =
  List.iter
    (fun (name, prog) ->
      let ref_m = step_reference prog in
      let m, _ = nemu_mega ~megablocks:true prog in
      check_same_arch (name ^ " (mega)") ref_m m)
    [
      ("vm_kernel", Workloads.Vm_kernel.program ~rounds:3 ~scale:2 ());
      ("user_mode", Workloads.User_mode.program ~scale:2 ());
    ]

let test_megablock_midtrace_traps () =
  let ref_m = step_reference trap_torture_program in
  let m, t = nemu_mega ~megablocks:true trap_torture_program in
  Alcotest.(check bool) "traces were built" true (t.Nemu.Fast.megablocks > 0);
  check_same_arch "mega trap torture" ref_m m

let test_megablock_exact_budget_stops () =
  let prog = (Workloads.Suite.find "coremark_like").program ~scale:1 in
  let ref_m = step_reference prog in
  List.iter
    (fun budget ->
      let m = Nemu.Mach.create () in
      Nemu.Mach.load_program m prog;
      let t = Nemu.Fast.create ~megablocks:true ~hot_threshold:1 m in
      let n = Nemu.Fast.run t ~max_insns:budget in
      Alcotest.(check int)
        (Printf.sprintf "retired exactly %d" budget)
        budget n;
      Alcotest.(check int)
        (Printf.sprintf "instret at %d" budget)
        budget m.Nemu.Mach.instret;
      (* resume: the partial stop must be a clean suspension point *)
      let rest = Nemu.Fast.run t ~max_insns:50_000_000 in
      Alcotest.(check int) "total instret" ref_m.Nemu.Mach.instret
        (budget + rest);
      check_same_arch (Printf.sprintf "resumed after %d" budget) ref_m m)
    [ 1; 2; 3; 7; 50; 1234; 9_999; 14_000 ]

(* Self-modifying code: a hot loop is promoted to a trace, then the
   program overwrites an instruction inside the trace and issues
   fence.i -- the second pass must execute the patched instruction.
   Pass 1 adds 1 per iteration, the patch turns the addi into +5, so
   the exit code separates stale-trace execution from correct
   invalidation. *)
let selfmod_fencei_program =
  let open Riscv in
  let open Workloads.Wl_common.Ops in
  Asm.assemble
    ([
       Asm.la Asm.t3 "site";
       Asm.li Asm.t4 0x00550513L (* addi a0, a0, 5 *);
       Asm.li Asm.s2 0L;
       Asm.li Asm.s1 20L;
       Asm.li Asm.a0 0L;
       Asm.label "loop";
       Asm.label "site";
       addi Asm.a0 Asm.a0 1;
       addi Asm.s1 Asm.s1 (-1);
       Asm.bnez Asm.s1 "loop";
       Asm.bnez Asm.s2 "done";
       Asm.li Asm.s2 1L;
       sw Asm.t4 Asm.t3 0;
       Asm.i Insn.Fence_i;
       Asm.li Asm.s1 20L;
       Asm.j "loop";
       Asm.label "done";
     ]
    @ Workloads.Wl_common.exit_with Asm.a0)

let test_megablock_selfmod_fencei () =
  let ref_m = step_reference selfmod_fencei_program in
  Alcotest.(check (option int))
    "reference executes the patched code" (Some 120)
    (Nemu.Mach.exit_code ref_m);
  let m, t = nemu_mega ~megablocks:true selfmod_fencei_program in
  Alcotest.(check bool) "traces were built" true (t.Nemu.Fast.megablocks > 0);
  check_same_arch "self-modifying store + fence.i" ref_m m;
  let m_off, _ = nemu_mega ~megablocks:false selfmod_fencei_program in
  check_same_arch "self-modifying (mega off)" ref_m m_off

(* Indirect jumps: a call site alternating between two callees through
   a register, so the jalr terminal's 2-way inline cache sees both
   targets (and the callees' rets return through their own ICs). *)
let indirect_call_program =
  let open Riscv in
  let open Workloads.Wl_common.Ops in
  Asm.assemble
    ([
       Asm.la Asm.t0 "f1";
       Asm.la Asm.t1 "f2";
       Asm.li Asm.s1 60L;
       Asm.li Asm.a0 0L;
       Asm.label "loop";
       Asm.i (Insn.Jalr (Asm.ra, Asm.t0, 0L));
       Asm.mv Asm.t2 Asm.t0;
       Asm.mv Asm.t0 Asm.t1;
       Asm.mv Asm.t1 Asm.t2;
       addi Asm.s1 Asm.s1 (-1);
       Asm.bnez Asm.s1 "loop";
       Asm.j "done";
       Asm.label "f1";
       addi Asm.a0 Asm.a0 1;
       Asm.ret;
       Asm.label "f2";
       addi Asm.a0 Asm.a0 3;
       Asm.ret;
       Asm.label "done";
     ]
    @ Workloads.Wl_common.exit_with Asm.a0)

let test_megablock_indirect_ic () =
  let ref_m = step_reference indirect_call_program in
  Alcotest.(check (option int))
    "reference exit" (Some 120)
    (Nemu.Mach.exit_code ref_m);
  let m, t = nemu_mega ~megablocks:true indirect_call_program in
  check_same_arch "indirect calls" ref_m m;
  Alcotest.(check bool)
    (Printf.sprintf "inline cache hits (%d hits / %d misses)"
       t.Nemu.Fast.ic_hits t.Nemu.Fast.ic_misses)
    true
    (t.Nemu.Fast.ic_hits > t.Nemu.Fast.ic_misses);
  let m_off, _ = nemu_mega ~megablocks:false indirect_call_program in
  check_same_arch "indirect calls (mega off)" ref_m m_off

(* Acceptance gate: megablocks-on vs -off identical architectural
   state across the full workload suite (exact budget stops make the
   two runs comparable even when a workload doesn't exit). *)
let test_megablock_suite_identity () =
  let built = ref 0 in
  List.iter
    (fun (w : Workloads.Wl_common.t) ->
      let prog = w.program ~scale:w.small in
      let m_on, t_on =
        nemu_mega ~megablocks:true ~hot_threshold:8 ~max_insns:3_000_000 prog
      in
      let m_off, _ =
        nemu_mega ~megablocks:false ~max_insns:3_000_000 prog
      in
      built := !built + t_on.Nemu.Fast.megablocks;
      check_same_arch (w.wl_name ^ " mega on/off") m_off m_on)
    (Workloads.Suite.all @ Workloads.Suite.llc_stress);
  Alcotest.(check bool) "suite exercised the trace compiler" true (!built > 0)

let test_spike_decode_cache_conflicts () =
  let prog = (Workloads.Suite.find "sort_like").program ~scale:1 in
  let m = Nemu.Mach.create () in
  Nemu.Mach.load_program m prog;
  let c = Nemu.Spike_like.create ~size:64 () in
  (* drive manually to observe hit/miss counters *)
  let steps = ref 0 in
  while m.Nemu.Mach.running && !steps < 200_000 do
    Nemu.Spike_like.step c m;
    incr steps
  done;
  Alcotest.(check bool) "hits" true (c.Nemu.Spike_like.hits > 0);
  Alcotest.(check bool) "some conflict misses with a tiny cache" true
    (c.Nemu.Spike_like.misses > 10)

let test_mips_ordering () =
  (* relative performance shape of Figure 8 on one int workload:
     NEMU fastest; dromajo slowest *)
  let prog = (Workloads.Suite.find "mcf_like").program ~scale:2 in
  let mips kind =
    let n, secs = Nemu.Engine.run_program ~max_insns:30_000_000 kind prog in
    Nemu.Engine.mips n secs
  in
  let nemu = mips Nemu.Engine.Nemu in
  let spike = mips Nemu.Engine.Spike_like in
  let dromajo = mips Nemu.Engine.Dromajo_like in
  Alcotest.(check bool)
    (Printf.sprintf "NEMU (%.0f) > Spike-like (%.0f)" nemu spike)
    true (nemu > spike);
  Alcotest.(check bool)
    (Printf.sprintf "Spike-like (%.0f) > Dromajo-like (%.0f)" spike dromajo)
    true (spike > dromajo)

(* the Sv39 workloads also run on every engine: translation goes
   through the generic fallback path (NEMU keys its uop cache on
   virtual pcs; the identity and user windows are distinct) *)
let paging_case (w : Workloads.Wl_common.t) =
  Alcotest.test_case (w.wl_name ^ " on all engines (paging)") `Slow (fun () ->
      let prog = w.program ~scale:1 in
      let _, code_ref, _ = iss_reference prog in
      Alcotest.(check bool) "terminates" true (code_ref <> None);
      List.iter
        (fun kind ->
          let _, code, _ = run_engine kind prog in
          Alcotest.(check (option int))
            (Nemu.Engine.name kind ^ " exit")
            code_ref code)
        Nemu.Engine.all)

let tests =
  List.map equivalence_case Workloads.Suite.all
  @ List.map paging_case [ Workloads.Vm_kernel.spec; Workloads.User_mode.spec ]
  @ [
      Alcotest.test_case "uop cache: trace organisation" `Quick
        test_uop_cache_structure;
      Alcotest.test_case "uop cache: capacity eviction" `Quick
        test_uop_cache_eviction_on_capacity;
      Alcotest.test_case "superblock vs step: testgen fuzz" `Quick
        test_superblock_vs_step_fuzz;
      Alcotest.test_case "superblock vs step: paging workloads" `Quick
        test_superblock_vs_step_paging;
      Alcotest.test_case "superblock vs step: mid-block traps" `Quick
        test_superblock_vs_step_midblock_traps;
      Alcotest.test_case "superblock: exact budget stops" `Quick
        test_exact_budget_stops;
      Alcotest.test_case "megablocks vs step: testgen fuzz (on and off)" `Quick
        test_megablock_vs_step_fuzz;
      Alcotest.test_case "megablocks vs step: paging workloads" `Quick
        test_megablock_paging;
      Alcotest.test_case "megablocks: mid-trace traps are precise" `Quick
        test_megablock_midtrace_traps;
      Alcotest.test_case "megablocks: exact budget stops inside traces" `Quick
        test_megablock_exact_budget_stops;
      Alcotest.test_case "megablocks: self-modifying store + fence.i" `Quick
        test_megablock_selfmod_fencei;
      Alcotest.test_case "megablocks: indirect-jump inline cache" `Quick
        test_megablock_indirect_ic;
      Alcotest.test_case "megablocks: on/off architectural identity (suite)"
        `Slow test_megablock_suite_identity;
      Alcotest.test_case "spike-like decode cache conflicts" `Quick
        test_spike_decode_cache_conflicts;
      Alcotest.test_case "engine performance ordering (Figure 8 shape)" `Slow
        test_mips_ordering;
    ]
