(* DiffTest / DRAV: clean verification across configurations (the
   N-to-1 DUT/REF correspondence), the diff-rules on their dedicated
   scenarios, and injected-bug detection. *)

let run_difftest ?(max_cycles = 30_000_000) ?inject cfg prog =
  let soc = Xiangshan.Soc.create cfg in
  Xiangshan.Soc.load_program soc prog;
  (match inject with Some f -> f soc | None -> ());
  let dt = Minjie.Difftest.create ~prog soc in
  (Minjie.Difftest.run ~max_cycles dt, dt)

let check_finished name (status, _) =
  match status with
  | Minjie.Difftest.Finished _ -> ()
  | Minjie.Difftest.Failed f ->
      Alcotest.failf "%s: difftest failed at cycle %d pc=0x%Lx (%s): %s" name
        f.Minjie.Rule.f_cycle f.Minjie.Rule.f_pc f.Minjie.Rule.f_rule
        f.Minjie.Rule.f_msg
  | Minjie.Difftest.Running -> Alcotest.failf "%s: difftest timed out" name

(* One REF + one rule set verifies every DUT configuration: the
   paper's N-to-1 correspondence (Figure 1c). *)
let n_to_1_case cfg =
  Alcotest.test_case
    ("one REF verifies " ^ cfg.Xiangshan.Config.cfg_name)
    `Slow
    (fun () ->
      List.iter
        (fun (w : Workloads.Wl_common.t) ->
          let prog = w.program ~scale:1 in
          check_finished
            (cfg.Xiangshan.Config.cfg_name ^ "/" ^ w.wl_name)
            (run_difftest cfg prog))
        [
          Workloads.Suite.find "coremark_like";
          Workloads.Suite.find "sjeng_like";
          Workloads.Suite.find "bwaves_like";
        ])

let configs_to_verify =
  [
    Xiangshan.Config.yqh;
    Xiangshan.Config.nh_single;
    Xiangshan.Config.nh_fpga_250c_2mb;
    {
      Xiangshan.Config.yqh with
      Xiangshan.Config.cfg_name = "YQH-PUBS";
      issue_policy = Xiangshan.Config.Pubs;
    };
  ]

let test_page_fault_rule () =
  let prog = Workloads.Vm_kernel.program ~scale:2 () in
  let status, dt = run_difftest Xiangshan.Config.yqh prog in
  check_finished "vm_kernel" (status, dt);
  let fires = List.assoc "page-fault-forcing" (Minjie.Difftest.rule_fire_counts dt) in
  Alcotest.(check bool)
    (Printf.sprintf "page-fault rule fired (%d)" fires)
    true (fires > 0)

let test_user_mode_delegation () =
  (* three privilege levels, medeleg'd page faults and U-ecalls,
     S-mode lazy allocation: verified by the same REF and rules *)
  let prog = Workloads.User_mode.program ~scale:2 () in
  let status, dt = run_difftest Xiangshan.Config.yqh prog in
  check_finished "user_mode" (status, dt);
  let fires =
    List.assoc "page-fault-forcing" (Minjie.Difftest.rule_fire_counts dt)
  in
  Alcotest.(check bool) "delegated faults forced" true (fires > 0)

let test_interrupt_and_csr_rules () =
  let prog = Workloads.Timer.program ~scale:2 in
  let status, dt = run_difftest Xiangshan.Config.yqh prog in
  check_finished "timer" (status, dt);
  let fires n = List.assoc n (Minjie.Difftest.rule_fire_counts dt) in
  Alcotest.(check bool) "interrupts forced" true (fires "interrupt-forcing" > 0);
  Alcotest.(check bool) "mmio loads patched" true (fires "mmio-load-trust" > 0)

let test_sc_and_global_memory_rules () =
  let prog = Workloads.Smp.lrsc_contend ~scale:2 in
  let status, dt = run_difftest Xiangshan.Config.nh prog in
  check_finished "smp_lrsc" (status, dt);
  let fires n = List.assoc n (Minjie.Difftest.rule_fire_counts dt) in
  Alcotest.(check bool) "sc failures forced" true
    (fires "sc-failure-forcing" > 0);
  Alcotest.(check bool) "global memory patched" true
    (fires "global-memory-load" > 0)

let test_spinlock_correct_total () =
  let prog = Workloads.Smp.spinlock ~scale:1 in
  let status, _ = run_difftest Xiangshan.Config.nh prog in
  match status with
  | Minjie.Difftest.Finished code ->
      Alcotest.(check int) "2 harts x 50 increments" 100 code
  | _ -> Alcotest.fail "spinlock did not finish"

(* --- injected bugs must be caught ------------------------------------- *)

let test_catches_corrupted_commit () =
  (* flip a committed register value mid-run: the state comparison
     must flag it *)
  let prog = (Workloads.Suite.find "coremark_like").program ~scale:1 in
  let soc = Xiangshan.Soc.create Xiangshan.Config.yqh in
  Xiangshan.Soc.load_program soc prog;
  let dt = Minjie.Difftest.create ~prog soc in
  let corrupted = ref false in
  let status = ref Minjie.Difftest.Running in
  let cycles = ref 0 in
  while
    (match Minjie.Difftest.status dt with
    | Minjie.Difftest.Running -> true
    | s ->
        status := s;
        false)
    && !cycles < 10_000_000
  do
    incr cycles;
    if !cycles = 5000 && not !corrupted then begin
      corrupted := true;
      let arch = soc.Xiangshan.Soc.cores.(0).Xiangshan.Core.arch in
      Riscv.Arch_state.set_reg arch 9
        (Int64.add (Riscv.Arch_state.get_reg arch 9) 1L)
    end;
    Minjie.Difftest.tick dt
  done;
  match Minjie.Difftest.status dt with
  | Minjie.Difftest.Failed f ->
      Alcotest.(check string) "caught by state compare" "state-compare"
        f.Minjie.Rule.f_rule
  | _ -> Alcotest.fail "corruption not caught"

(* Both §IV-C bugs now live in the fault registry; the tests install
   them through the same API the campaign uses, and the accepted-rule
   lists come from the registry entry rather than being duplicated
   here. *)
let run_registry_fault name prog =
  let fault = Minjie.Fault.find name in
  let status, _ =
    run_difftest Xiangshan.Config.nh prog ~inject:(fun soc ->
        fault.Minjie.Fault.f_install ~seed:0 ~trigger:fault.Minjie.Fault.f_trigger
          soc)
  in
  match status with
  | Minjie.Difftest.Failed f ->
      Alcotest.(check bool)
        ("caught by " ^ f.Minjie.Rule.f_rule)
        true
        (List.mem f.Minjie.Rule.f_rule fault.Minjie.Fault.f_expected_rules)
  | Minjie.Difftest.Finished _ -> Alcotest.fail "bug escaped"
  | Minjie.Difftest.Running -> Alcotest.fail "timeout without detection"

let test_catches_l2_race_bug () =
  run_registry_fault "cache-mshr-race" (Workloads.Smp.lrsc_contend ~scale:4)

let test_catches_skip_probe_bug () =
  run_registry_fault "cache-skip-probe" (Workloads.Smp.spinlock ~scale:4)

(* global memory unit behaviour *)
let test_global_memory_history () =
  let g = Minjie.Global_memory.create () in
  Minjie.Global_memory.record g ~cycle:100 ~paddr:0x1000L ~size:8 ~value:1L;
  Minjie.Global_memory.record g ~cycle:200 ~paddr:0x1000L ~size:8 ~value:2L;
  (* current value always legal *)
  Alcotest.(check bool) "current" true
    (Minjie.Global_memory.compatible g ~at:300 ~paddr:0x1000L ~size:8 ~value:2L);
  (* the old value is legal only near its overwrite *)
  Alcotest.(check bool) "old value at overwrite time" true
    (Minjie.Global_memory.compatible g ~at:199 ~paddr:0x1000L ~size:8 ~value:1L);
  Alcotest.(check bool) "stale long after overwrite" false
    (Minjie.Global_memory.compatible g ~at:5000 ~paddr:0x1000L ~size:8 ~value:1L);
  (* a value never stored anywhere: bytes unconstrained -> initial image *)
  Alcotest.(check bool) "untouched address" true
    (Minjie.Global_memory.compatible g ~at:300 ~paddr:0x2000L ~size:8 ~value:99L);
  Alcotest.(check (option int64)) "lookup" (Some 2L)
    (Minjie.Global_memory.lookup g ~paddr:0x1000L ~size:8)

let tests =
  List.map n_to_1_case configs_to_verify
  @ [
      Alcotest.test_case "page-fault diff-rule (Figure 3)" `Slow
        test_page_fault_rule;
      Alcotest.test_case "U/S/M privilege stack with delegation" `Slow
        test_user_mode_delegation;
      Alcotest.test_case "interrupt + CSR diff-rules" `Slow
        test_interrupt_and_csr_rules;
      Alcotest.test_case "SC + Global-Memory diff-rules" `Slow
        test_sc_and_global_memory_rules;
      Alcotest.test_case "SMP spinlock verified total" `Slow
        test_spinlock_correct_total;
      Alcotest.test_case "catches corrupted commit" `Quick
        test_catches_corrupted_commit;
      Alcotest.test_case "catches injected L2 race (§IV-C)" `Slow
        test_catches_l2_race_bug;
      Alcotest.test_case "catches skip-probe coherence bug" `Slow
        test_catches_skip_probe_bug;
      Alcotest.test_case "Global Memory history semantics" `Quick
        test_global_memory_history;
    ]
