(* Coverage-guided fuzzing subsystem: the coverage map's lattice laws
   (pool-worker merges must equal the sequential fold), mutation
   determinism and assemblability, corpus ranking/eviction and
   persistence, the generator's seed-stability pin, and campaign-level
   same-seed / journal-resume reproducibility. *)

module Cov = Fuzz.Coverage
module Mut = Fuzz.Mutate
module Corp = Fuzz.Corpus
module Tg = Workloads.Testgen

(* --- coverage map ------------------------------------------------- *)

let cov_of pairs =
  let c = Cov.create () in
  List.iter (fun (k, v) -> Cov.note c k v) pairs;
  c

let copy c =
  match Cov.of_string (Cov.to_string c) with
  | Some c' -> c'
  | None -> Alcotest.fail "coverage round-trip failed"

let check_cov msg a b = Alcotest.(check string) msg (Cov.to_string a) (Cov.to_string b)

let test_bucket () =
  Alcotest.(check int) "0" 0 (Cov.bucket 0);
  Alcotest.(check int) "negative" 0 (Cov.bucket (-3));
  Alcotest.(check int) "1" 1 (Cov.bucket 1);
  Alcotest.(check int) "2" 2 (Cov.bucket 2);
  Alcotest.(check int) "3" 2 (Cov.bucket 3);
  Alcotest.(check int) "4" 3 (Cov.bucket 4);
  Alcotest.(check int) "127" 7 (Cov.bucket 127);
  Alcotest.(check int) "128 saturates" Cov.max_bucket (Cov.bucket 128);
  Alcotest.(check int) "max_int saturates" Cov.max_bucket (Cov.bucket max_int)

(* three maps with overlapping and distinct cells at varied depths *)
let sample_maps () =
  ( cov_of [ ("A/x", 1); ("A/y", 40); ("B/z", 3) ],
    cov_of [ ("A/x", 200); ("B/z", 1); ("C/w", 7) ],
    cov_of [ ("A/y", 2); ("C/w", 90); ("D/v", 1) ] )

let test_merge_laws () =
  let a, b, c = sample_maps () in
  (* commutative *)
  let ab = copy a and ba = copy b in
  Cov.merge_into ~into:ab b;
  Cov.merge_into ~into:ba a;
  check_cov "a+b = b+a" ab ba;
  (* associative *)
  let ab_c = copy a in
  Cov.merge_into ~into:ab_c b;
  Cov.merge_into ~into:ab_c c;
  let bc = copy b in
  Cov.merge_into ~into:bc c;
  let a_bc = copy a in
  Cov.merge_into ~into:a_bc bc;
  check_cov "(a+b)+c = a+(b+c)" ab_c a_bc;
  (* idempotent *)
  let aa = copy a in
  Cov.merge_into ~into:aa a;
  check_cov "a+a = a" aa a;
  Alcotest.(check bool) "equal agrees" true (Cov.equal aa a);
  (* monotone *)
  Alcotest.(check bool) "points grow under merge" true
    (Cov.points ab >= Cov.points a && Cov.points ab >= Cov.points b)

(* pool workers each fold a disjoint share of the runs into a private
   map, then the shards merge in arbitrary order: the result must be
   byte-identical to one map folding every run in sequence *)
let test_worker_merge_equals_sequential () =
  let r = Tg.rng_of_seed 99 in
  let snapshots =
    List.init 24 (fun i ->
        let axis = [| "YQH"; "NH"; "NH-4core" |].(i mod 3) in
        let counters =
          List.init 8 (fun j ->
              (Printf.sprintf "ctr.%d" (Tg.rand r 12), Tg.rand r 300 * j))
        in
        (axis, counters))
  in
  let seq = Cov.create () in
  List.iter (fun (axis, cs) -> Cov.add_counters seq ~axis cs) snapshots;
  let shards = Array.init 4 (fun _ -> Cov.create ()) in
  List.iteri
    (fun i (axis, cs) -> Cov.add_counters shards.(i mod 4) ~axis cs)
    snapshots;
  let merged = Cov.create () in
  (* deliberately merge in non-submission order *)
  List.iter
    (fun i -> Cov.merge_into ~into:merged shards.(i))
    [ 2; 0; 3; 1 ];
  check_cov "4-way shard merge = sequential fold" merged seq

let test_cov_serialization () =
  let a, b, _ = sample_maps () in
  Cov.merge_into ~into:a b;
  check_cov "round-trip" (copy a) a;
  Alcotest.(check bool) "empty round-trips" true
    (match Cov.of_string (Cov.to_string (Cov.create ())) with
    | Some e -> Cov.equal e (Cov.create ())
    | None -> false);
  Alcotest.(check bool) "garbage rejected" true
    (Cov.of_string "not a coverage map" = None);
  Alcotest.(check bool) "bad level rejected" true
    (Cov.of_string "MJCOV1\nA/x nine\n" = None)

(* --- mutation operators ------------------------------------------- *)

let test_mutate_plan_determinism () =
  let draw_ops seed n =
    let r = Tg.rng_of_seed seed in
    List.init n (fun _ -> Mut.plan r)
  in
  Alcotest.(check (list string))
    "same seed, same plans"
    (List.map Mut.to_string (draw_ops 5 32))
    (List.map Mut.to_string (draw_ops 5 32));
  Alcotest.(check bool) "different seed differs" true
    (List.map Mut.to_string (draw_ops 5 32)
    <> List.map Mut.to_string (draw_ops 9 32))

let test_mutate_serialization () =
  let r = Tg.rng_of_seed 17 in
  for _ = 1 to 200 do
    let op = Mut.plan r in
    match Mut.of_string (Mut.to_string op) with
    | Some op' ->
        Alcotest.(check string) "round-trip" (Mut.to_string op)
          (Mut.to_string op')
    | None -> Alcotest.failf "unparseable op %s" (Mut.to_string op)
  done;
  let ops = List.init 7 (fun _ -> Mut.plan r) in
  (match Mut.ops_of_string (Mut.ops_to_string ops) with
  | Some ops' ->
      Alcotest.(check string) "history round-trip" (Mut.ops_to_string ops)
        (Mut.ops_to_string ops')
  | None -> Alcotest.fail "unparseable history");
  Alcotest.(check bool) "empty history" true (Mut.ops_of_string "" = Some []);
  Alcotest.(check bool) "garbage op rejected" true
    (Mut.of_string "zz:1:2" = None)

(* every mutated program must still assemble: mutations are closed
   over the generator's invariants, whatever the plan and parent *)
let test_mutate_always_assembles () =
  for seed = 1 to 15 do
    let r = Tg.rng_of_seed (seed * 7919) in
    let ir = Tg.generate ~seed ~blocks:4 ~block_len:6 () in
    let ops = List.init (1 + (seed mod 5)) (fun _ -> Mut.plan r) in
    let mutated = Mut.apply_all ir ops in
    match Tg.to_asm mutated with
    | (_ : Riscv.Asm.program) -> ()
    | exception e ->
        Alcotest.failf "seed %d ops [%s]: %s" seed (Mut.ops_to_string ops)
          (Printexc.to_string e)
  done

(* plans drawn against one parent shape apply to any other: indices
   reduce modulo the actual shape at apply time *)
let test_mutate_total_on_any_shape () =
  let ir = Tg.generate ~seed:3 ~blocks:2 ~block_len:3 () in
  let wild =
    [
      Mut.Opcode { block = 999; index = 999; pick = 123456 };
      Mut.Operand { block = -0x40; index = 777; pick = 999999 };
      Mut.Branch_bias { block = 555; pick = 42 };
      Mut.Loop_bound { block = 1000; bound = 1_000_000 };
      Mut.Page_boundary { block = 88; index = 77; pick = 66 };
      Mut.Self_mod_store { block = 12; index = 34; pick = 56 };
      Mut.Splice { at = 400; donor_seed = 12345 };
    ]
  in
  let mutated = List.fold_left Mut.apply ir wild in
  match Tg.to_asm mutated with
  | (_ : Riscv.Asm.program) -> ()
  | exception e ->
      Alcotest.failf "wild plan broke assembly: %s" (Printexc.to_string e)

(* --- corpus -------------------------------------------------------- *)

let ent ~id ~np ~cyc = Corp.mk_entry ~id ~seed:(100 + id) ~ops:[] ~new_points:np ~cycles:cyc

let test_corpus_ranking_and_eviction () =
  let c = Corp.create ~cap:3 in
  Alcotest.(check bool) "no-coverage entry rejected" false
    (Corp.admit c (ent ~id:0 ~np:0 ~cyc:100));
  Alcotest.(check bool) "admit 1" true (Corp.admit c (ent ~id:1 ~np:10 ~cyc:1000));
  Alcotest.(check bool) "admit 2" true (Corp.admit c (ent ~id:2 ~np:50 ~cyc:1000));
  Alcotest.(check bool) "admit 3" true (Corp.admit c (ent ~id:3 ~np:30 ~cyc:1000));
  (* better than the current worst: evicts id=1 *)
  Alcotest.(check bool) "admit 4 evicts" true
    (Corp.admit c (ent ~id:4 ~np:20 ~cyc:1000));
  Alcotest.(check int) "cap held" 3 (Corp.size c);
  Alcotest.(check (list int)) "best-first order"
    [ 2; 3; 4 ]
    (List.map (fun e -> e.Corp.en_id) (Corp.entries c));
  (* worse than the worst survivor: bounces *)
  Alcotest.(check bool) "admit 5 bounces" false
    (Corp.admit c (ent ~id:5 ~np:10 ~cyc:1000));
  Alcotest.(check (list int)) "order unchanged"
    [ 2; 3; 4 ]
    (List.map (fun e -> e.Corp.en_id) (Corp.entries c));
  (* equal score: lower admission id ranks first *)
  let c2 = Corp.create ~cap:2 in
  ignore (Corp.admit c2 (ent ~id:7 ~np:10 ~cyc:1000));
  ignore (Corp.admit c2 (ent ~id:6 ~np:10 ~cyc:1000));
  Alcotest.(check (list int)) "id tiebreak"
    [ 6; 7 ]
    (List.map (fun e -> e.Corp.en_id) (Corp.entries c2))

let test_corpus_persistence () =
  let r = Tg.rng_of_seed 23 in
  let c = Corp.create ~cap:8 in
  for id = 1 to 12 do
    let ops = List.init (id mod 3) (fun _ -> Mut.plan r) in
    ignore
      (Corp.admit c
         (Corp.mk_entry ~id ~seed:(id * 31) ~ops
            ~new_points:(1 + (id * 13 mod 40))
            ~cycles:(500 + (id * 997 mod 3000))))
  done;
  (match Corp.of_string (Corp.to_string c) with
  | Some c' ->
      Alcotest.(check string) "round-trip" (Corp.to_string c)
        (Corp.to_string c');
      Alcotest.(check (list int)) "same ranking"
        (List.map (fun e -> e.Corp.en_id) (Corp.entries c))
        (List.map (fun e -> e.Corp.en_id) (Corp.entries c'))
  | None -> Alcotest.fail "corpus round-trip failed");
  let path = Filename.temp_file "minjie_corpus" ".txt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Corp.save c ~path;
  match Corp.load ~path with
  | Some c' ->
      Alcotest.(check string) "save/load round-trip" (Corp.to_string c)
        (Corp.to_string c')
  | None -> Alcotest.fail "corpus load failed"

let test_corpus_pick_deterministic () =
  let c = Corp.create ~cap:8 in
  for id = 1 to 6 do
    ignore (Corp.admit c (ent ~id ~np:(id * 5) ~cyc:1000))
  done;
  let picks seed =
    let r = Tg.rng_of_seed seed in
    List.init 20 (fun _ ->
        match Corp.pick c r with Some e -> e.Corp.en_id | None -> -1)
  in
  Alcotest.(check (list int)) "same rng, same picks" (picks 11) (picks 11);
  Alcotest.(check bool) "empty corpus picks nothing" true
    (Corp.pick (Corp.create ~cap:4) (Tg.rng_of_seed 1) = None)

(* --- generator seed stability ------------------------------------- *)

(* pinned digests: any change to the generator's draw sequence or the
   IR lowering shows up here before it silently invalidates every
   recorded corpus entry and journal *)
let test_testgen_seed_stability () =
  List.iter
    (fun (seed, expect_digest, expect_words) ->
      let p = Tg.program ~seed () in
      let d =
        Digest.to_hex
          (Digest.string
             (String.concat ","
                (Array.to_list
                   (Array.map Int32.to_string p.Riscv.Asm.words))))
      in
      Alcotest.(check int)
        (Printf.sprintf "seed %d word count" seed)
        expect_words
        (Array.length p.Riscv.Asm.words);
      Alcotest.(check string) (Printf.sprintf "seed %d digest" seed)
        expect_digest d)
    [
      (1, "5eb7397fad3cdb942e118d8cfa476999", 604);
      (2, "d243ccf6a06c157b21e34edb2f6ba375", 606);
      (7, "67d618db95683987297d7ddc9c671bd4", 606);
      (42, "3be6efa6335d7ee6f3f3af8640a9a402", 606);
      (1234567, "2b8834f0697bedf0f68b376fa2f23248", 608);
    ]

let test_testgen_ir_roundtrip () =
  List.iter
    (fun seed ->
      let direct = Tg.program ~seed () in
      let lowered = Tg.to_asm (Tg.generate ~seed ()) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d to_asm(generate) = program" seed)
        true
        (direct.Riscv.Asm.words = lowered.Riscv.Asm.words);
      let smp = Tg.to_asm ~smp:true (Tg.generate ~seed ()) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d smp lowering differs" seed)
        true
        (direct.Riscv.Asm.words <> smp.Riscv.Asm.words))
    [ 1; 7; 42 ]

(* --- campaign reproducibility ------------------------------------- *)

let tiny =
  {
    Fuzz.smoke with
    Fuzz.fz_rounds = 2;
    fz_cands = 2;
    fz_blocks = 3;
    fz_block_len = 4;
    fz_max_cycles = 10_000;
    fz_configs = [ "YQH" ];
    fz_refs = [ Minjie.Ref_model.Iss ];
  }

let strip_summary (s : Fuzz.summary) =
  (s.Fuzz.fz_round_stats, s.Fuzz.fz_execs, s.Fuzz.fz_coverage)

let test_fuzz_same_seed_identical () =
  let a = Fuzz.run ~p:tiny ~jobs:1 () in
  let b = Fuzz.run ~p:tiny ~jobs:1 () in
  Alcotest.(check bool) "same seed, same summary" true
    (strip_summary a = strip_summary b);
  let c = Fuzz.run ~p:{ tiny with Fuzz.fz_seed = 2 } ~jobs:1 () in
  Alcotest.(check bool) "different seed differs" true
    (strip_summary a <> strip_summary c)

let test_fuzz_journal_resume () =
  let path = Filename.temp_file "minjie_fuzz" ".journal" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let clean = Fuzz.run ~p:tiny ~jobs:1 ~journal:path () in
  let resumed = Fuzz.run ~p:tiny ~jobs:1 ~journal:path ~resume:true () in
  Alcotest.(check int) "every exec replayed from the journal"
    (List.length clean.Fuzz.fz_execs)
    resumed.Fuzz.fz_resumed;
  Alcotest.(check bool) "resumed summary identical" true
    (strip_summary clean = strip_summary resumed)

(* a planted fault must surface as mismatch finds, every one of which
   reproduces through the LightSSS replay *)
let test_fuzz_find_replays () =
  let p =
    {
      tiny with
      Fuzz.fz_rounds = 1;
      fz_max_cycles = 20_000;
      fz_fault = Some "rob-commit-reorder";
    }
  in
  let s = Fuzz.run ~p ~jobs:1 () in
  Alcotest.(check bool) "the fault was found" true (s.Fuzz.fz_mismatches > 0);
  List.iter
    (fun (e : Fuzz.exec) ->
      if Fuzz.is_mismatch e then
        Alcotest.(check bool)
          (Printf.sprintf "r%d.c%d find replays" e.Fuzz.x_round e.Fuzz.x_cand)
          true e.Fuzz.x_replayed)
    s.Fuzz.fz_execs

let tests =
  [
    Alcotest.test_case "coverage buckets" `Quick test_bucket;
    Alcotest.test_case "merge is commutative/associative/idempotent" `Quick
      test_merge_laws;
    Alcotest.test_case "worker shard merge = sequential fold" `Quick
      test_worker_merge_equals_sequential;
    Alcotest.test_case "coverage serialization" `Quick test_cov_serialization;
    Alcotest.test_case "mutation planning is seed-deterministic" `Quick
      test_mutate_plan_determinism;
    Alcotest.test_case "mutation serialization round-trips" `Quick
      test_mutate_serialization;
    Alcotest.test_case "mutated programs always assemble" `Quick
      test_mutate_always_assembles;
    Alcotest.test_case "mutations are total on any parent shape" `Quick
      test_mutate_total_on_any_shape;
    Alcotest.test_case "corpus ranking and eviction" `Quick
      test_corpus_ranking_and_eviction;
    Alcotest.test_case "corpus persistence round-trips" `Quick
      test_corpus_persistence;
    Alcotest.test_case "corpus pick is deterministic" `Quick
      test_corpus_pick_deterministic;
    Alcotest.test_case "testgen seed stability (pinned digests)" `Quick
      test_testgen_seed_stability;
    Alcotest.test_case "testgen IR lowering round-trip" `Quick
      test_testgen_ir_roundtrip;
    Alcotest.test_case "same-seed campaigns are identical" `Slow
      test_fuzz_same_seed_identical;
    Alcotest.test_case "journal resume reproduces the campaign" `Slow
      test_fuzz_journal_resume;
    Alcotest.test_case "mismatch finds reproduce in replay" `Slow
      test_fuzz_find_replays;
  ]
