(* Worker supervision: transient flakes converge under retry, while
   deterministic failures reproduce and are never retried away; the
   cooperative memory ceiling fires as a crash; SIGINT shutdown leaves
   no orphan workers behind. *)

let mk ?(cost = 1.0) label f =
  { Minjie.Pool.j_label = label; j_cost = cost; j_run = f }

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let tmpmarker () = Filename.temp_file "minjie-test-sup" ".marker"

let test_flake_converges () =
  (* the classic transient fault: the first attempt dies, the re-run
     succeeds.  Cross-process state lives in a marker file because the
     first attempt runs in a forked worker. *)
  let marker = tmpmarker () in
  Sys.remove marker;
  Fun.protect
    ~finally:(fun () -> try Sys.remove marker with Sys_error _ -> ())
    (fun () ->
      let flaky =
        mk "flaky" (fun () ->
            if Sys.file_exists marker then 42
            else begin
              close_out (open_out marker);
              (* die the way an OOM-killed worker does *)
              Unix.kill (Unix.getpid ()) Sys.sigkill;
              0
            end)
      in
      let results, _, rep =
        Minjie.Supervisor.map ~jobs:2
          ~policy:{ Minjie.Supervisor.default_policy with sp_retries = 2 }
          [ mk "steady" (fun () -> 7); flaky ]
      in
      (match results with
      | [ a; b ] ->
          Alcotest.(check bool) "steady done" true
            (a.Minjie.Pool.r_outcome = Minjie.Pool.Done 7);
          Alcotest.(check bool) "flake recovered to Done" true
            (b.Minjie.Pool.r_outcome = Minjie.Pool.Done 42)
      | _ -> Alcotest.fail "wrong result count");
      Alcotest.(check int) "one retry" 1 rep.Minjie.Supervisor.sup_retried;
      Alcotest.(check int) "one recovery" 1
        rep.Minjie.Supervisor.sup_recovered;
      Alcotest.(check int) "no deterministic failures" 0
        rep.Minjie.Supervisor.sup_deterministic)

let test_deterministic_error_not_retried_away () =
  (* a failure that reproduces with the same signature is final after
     ONE confirming re-run, even with budget left -- a real bug must
     never be retried into silence *)
  let results, _, rep =
    Minjie.Supervisor.map ~jobs:2
      ~policy:{ Minjie.Supervisor.default_policy with sp_retries = 5 }
      [ mk "buggy" (fun () : int -> failwith "the same bug every time") ]
  in
  (match results with
  | [ r ] -> (
      match r.Minjie.Pool.r_outcome with
      | Minjie.Pool.Job_error msg ->
          Alcotest.(check bool) "carries the error" true
            (contains ~sub:"the same bug every time" msg)
      | _ -> Alcotest.fail "expected Job_error")
  | _ -> Alcotest.fail "wrong result count");
  Alcotest.(check int) "confirmed deterministic after one re-run" 1
    rep.Minjie.Supervisor.sup_deterministic;
  Alcotest.(check int) "only one retry spent of the five" 1
    rep.Minjie.Supervisor.sup_retried;
  Alcotest.(check int) "nothing recovered" 0
    rep.Minjie.Supervisor.sup_recovered

let test_deterministic_crash_isolated_retry () =
  (* a deterministically-crashing job's retry runs at the bottom of
     the degradation ladder -- a single-worker Pool.map -- where it
     must stay fork-isolated: the supervisor survives to report it as
     Crashed instead of dying with its job *)
  let results, _, rep =
    Minjie.Supervisor.map ~jobs:2
      ~policy:{ Minjie.Supervisor.default_policy with sp_retries = 3 }
      [
        mk "always-dies" (fun () ->
            Unix.kill (Unix.getpid ()) Sys.sigkill;
            0);
        mk "fine" (fun () -> 5);
      ]
  in
  (match results with
  | [ a; b ] ->
      (match a.Minjie.Pool.r_outcome with
      | Minjie.Pool.Crashed _ -> ()
      | _ -> Alcotest.fail "expected Crashed");
      Alcotest.(check bool) "other job unharmed" true
        (b.Minjie.Pool.r_outcome = Minjie.Pool.Done 5)
  | _ -> Alcotest.fail "wrong result count");
  Alcotest.(check int) "confirmed deterministic" 1
    rep.Minjie.Supervisor.sup_deterministic

let test_mem_ceiling () =
  (* a worker that blows through its cooperative memory ceiling exits
     with the dedicated code and surfaces as a ceiling crash *)
  let results, _, _ =
    Minjie.Supervisor.map ~jobs:2
      ~policy:
        {
          Minjie.Supervisor.default_policy with
          sp_retries = 1;
          sp_mem_limit_mb = Some 16;
        }
      [
        mk "hog" (fun () ->
            let acc = ref [] in
            for _ = 1 to 256 do
              acc := Bytes.create (1 lsl 20) :: !acc;
              (* the ceiling is checked at the end of major cycles *)
              Gc.major ()
            done;
            List.length !acc);
        mk "modest" (fun () -> 3);
      ]
  in
  match results with
  | [ hog; modest ] ->
      (match hog.Minjie.Pool.r_outcome with
      | Minjie.Pool.Crashed msg ->
          Alcotest.(check bool) "names the ceiling" true
            (contains ~sub:"memory ceiling" msg)
      | _ -> Alcotest.fail "expected a memory-ceiling crash");
      Alcotest.(check bool) "modest job unaffected" true
        (modest.Minjie.Pool.r_outcome = Minjie.Pool.Done 3)
  | _ -> Alcotest.fail "wrong result count"

let test_backoff_applied () =
  (* the retry round waits at least the base backoff *)
  let marker = tmpmarker () in
  Sys.remove marker;
  Fun.protect
    ~finally:(fun () -> try Sys.remove marker with Sys_error _ -> ())
    (fun () ->
      let flaky =
        mk "flaky" (fun () ->
            if Sys.file_exists marker then 1
            else begin
              close_out (open_out marker);
              Unix.kill (Unix.getpid ()) Sys.sigkill;
              0
            end)
      in
      let t0 = Unix.gettimeofday () in
      let _, _, rep =
        Minjie.Supervisor.map ~jobs:2
          ~policy:
            {
              Minjie.Supervisor.default_policy with
              sp_retries = 1;
              sp_backoff_base = 0.2;
            }
          [ flaky ]
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check int) "recovered" 1 rep.Minjie.Supervisor.sup_recovered;
      Alcotest.(check bool)
        (Printf.sprintf "waited the backoff (%.3fs)" elapsed)
        true (elapsed >= 0.2))

let test_progress_fires_once_per_job () =
  let marker = tmpmarker () in
  Sys.remove marker;
  Fun.protect
    ~finally:(fun () -> try Sys.remove marker with Sys_error _ -> ())
    (fun () ->
      let seen = Hashtbl.create 8 in
      let flaky =
        mk "flaky" (fun () ->
            if Sys.file_exists marker then 9
            else begin
              close_out (open_out marker);
              Unix.kill (Unix.getpid ()) Sys.sigkill;
              0
            end)
      in
      let jobs = [ mk "a" (fun () -> 1); flaky; mk "b" (fun () -> 2) ] in
      let _, _, _ =
        Minjie.Supervisor.map ~jobs:2
          ~policy:{ Minjie.Supervisor.default_policy with sp_retries = 2 }
          ~progress:(fun r ->
            Hashtbl.replace seen r.Minjie.Pool.r_index
              (1
              + Option.value
                  (Hashtbl.find_opt seen r.Minjie.Pool.r_index)
                  ~default:0))
          jobs
      in
      Alcotest.(check int) "three progress events" 3 (Hashtbl.length seen);
      Hashtbl.iter
        (fun idx n ->
          if n <> 1 then Alcotest.failf "job %d saw %d progress events" idx n)
        seen)

(* ---- clean shutdown: no orphan workers --------------------------- *)

let test_sigint_leaves_no_orphans () =
  (* a driver process (own session) runs a pool of long sleepers and
     gets SIGINT: it must exit 130 and leave NOTHING alive in its
     process group -- the workers are SIGTERM/SIGKILLed and reaped *)
  flush stdout;
  flush stderr;
  let driver = Unix.fork () in
  if driver = 0 then begin
    ignore (Unix.setsid ());
    Minjie.Supervisor.install_signal_handlers ();
    let jobs =
      List.init 3 (fun i ->
          mk (Printf.sprintf "sleeper%d" i) (fun () ->
              Unix.sleepf 30.0;
              i))
    in
    let _ = Minjie.Pool.map ~jobs:3 jobs in
    (* unreachable if the signal arrived *)
    Unix._exit 99
  end
  else begin
    (* give the driver time to fork its workers *)
    Unix.sleepf 0.6;
    Unix.kill driver Sys.sigint;
    let _, status = Unix.waitpid [] driver in
    (match status with
    | Unix.WEXITED 130 -> ()
    | Unix.WEXITED c -> Alcotest.failf "driver exited %d, wanted 130" c
    | Unix.WSIGNALED s -> Alcotest.failf "driver died on signal %d" s
    | Unix.WSTOPPED _ -> Alcotest.fail "driver stopped");
    (* the driver was its own process group (setsid): once every
       worker is gone, signalling the group raises ESRCH *)
    let deadline = Unix.gettimeofday () +. 3.0 in
    let rec wait_empty () =
      match Unix.kill (-driver) 0 with
      | () ->
          if Unix.gettimeofday () > deadline then
            Alcotest.fail "orphan workers survived SIGINT"
          else begin
            Unix.sleepf 0.05;
            wait_empty ()
          end
      | exception Unix.Unix_error (Unix.ESRCH, _, _) -> ()
    in
    wait_empty ()
  end

let tests =
  [
    Alcotest.test_case "transient flake converges" `Quick test_flake_converges;
    Alcotest.test_case "deterministic error not retried away" `Quick
      test_deterministic_error_not_retried_away;
    Alcotest.test_case "deterministic crash retried in isolation" `Quick
      test_deterministic_crash_isolated_retry;
    Alcotest.test_case "memory ceiling crash" `Quick test_mem_ceiling;
    Alcotest.test_case "retry backoff applied" `Quick test_backoff_applied;
    Alcotest.test_case "progress fires once per job" `Quick
      test_progress_fires_once_per_job;
    Alcotest.test_case "SIGINT leaves no orphans" `Quick
      test_sigint_leaves_no_orphans;
  ]
