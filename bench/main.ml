(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md for the experiment index and
   EXPERIMENTS.md for paper-vs-measured numbers).

     dune exec bench/main.exe -- all        -- everything, scaled down
     dune exec bench/main.exe -- fig8       -- one experiment
     dune exec bench/main.exe -- all --big  -- full scales (slow)
     dune exec bench/main.exe -- --help     -- experiment + flag listing

   Absolute numbers are not expected to match the paper (the substrate
   is an OCaml simulator, not the authors' testbed); the shape --
   orderings, ratios, crossovers -- is the reproduction target, and
   each section prints the paper's number next to the measured one. *)

let big = ref false

(* --jobs N / MINJIE_JOBS: worker-process count for the pooled
   fan-outs (campaign cells, sampled simulations, best-of-N reps) *)
let jobs_opt : int option ref = ref None
let effective_jobs () = Minjie.Pool.resolve_jobs ?jobs:!jobs_opt ()

(* ---------------------------------------------------------------- *)
(* machine-readable output: --json <file> collects one flat record   *)
(* per measurement (engine runs, geomeans, snapshot costs) so CI and *)
(* regression tooling can diff numbers without scraping the tables   *)
(* ---------------------------------------------------------------- *)

module Json = struct
  type t =
    | Obj of (string * t) list
    | Arr of t list
    | Str of string
    | Num of float
    | Int of int
    | Bool of bool

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec write buf indent = function
    | Str s -> Buffer.add_string buf (Printf.sprintf "\"%s\"" (escape s))
    | Num f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.1f" f)
        else Buffer.add_string buf (Printf.sprintf "%.6g" f)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr xs ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf pad;
            write buf (indent + 2) x)
          xs;
        Buffer.add_string buf "\n";
        Buffer.add_string buf (String.make indent ' ');
        Buffer.add_string buf "]"
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf pad;
            Buffer.add_string buf (Printf.sprintf "\"%s\": " (escape k));
            write buf (indent + 2) v)
          kvs;
        Buffer.add_string buf "\n";
        Buffer.add_string buf (String.make indent ' ');
        Buffer.add_string buf "}"

  let to_string t =
    let buf = Buffer.create 4096 in
    write buf 0 t;
    Buffer.add_char buf '\n';
    Buffer.contents buf
end

let json_file : string option ref = ref None
let json_records : Json.t list ref = ref []
let record r = json_records := Json.Obj r :: !json_records

let record_engine_run ~experiment ~group ~workload ~engine ~megablocks
    (s : Nemu.Engine.stats) =
  record
    [
      ("experiment", Json.Str experiment);
      ("group", Json.Str group);
      ("workload", Json.Str workload);
      ("engine", Json.Str engine);
      ("megablocks", Json.Bool megablocks);
      ("insns", Json.Int s.Nemu.Engine.insns);
      ("seconds", Json.Num s.Nemu.Engine.seconds);
      ("mips", Json.Num (Nemu.Engine.mips s.Nemu.Engine.insns s.Nemu.Engine.seconds));
      ("uop_flushes", Json.Int s.Nemu.Engine.flushes);
      ("uop_slow_lookups", Json.Int s.Nemu.Engine.slow_lookups);
      ("uop_compiled", Json.Int s.Nemu.Engine.compiled);
      ("uop_evictions", Json.Int s.Nemu.Engine.evictions);
      ("uop_recompiles", Json.Int s.Nemu.Engine.recompiles);
      ("megablocks_built", Json.Int s.Nemu.Engine.megablocks);
      ("mega_exits", Json.Int s.Nemu.Engine.mega_exits);
      ("ic_hits", Json.Int s.Nemu.Engine.ic_hits);
      ("ic_misses", Json.Int s.Nemu.Engine.ic_misses);
      ("branch_folds", Json.Int s.Nemu.Engine.branch_folds);
      ("tlb_dedups", Json.Int s.Nemu.Engine.tlb_dedups);
      ("addr_fuses", Json.Int s.Nemu.Engine.addr_fuses);
    ]

(* Fixed-size cycle-model calibration for the --json host header:
   coremark_like at scale 1 under a bounded cycle budget, so committed
   BENCH files expose DUT-throughput regressions even when the
   experiment itself measures something else.  Forced only by the
   simspeed experiment; other experiments' JSON stays free of host
   timing so the CI byte-diff contracts (parallel/perf/resume runs
   identical to sequential) keep holding. *)
let simspeed_calibration =
  lazy
    (let w = Workloads.Suite.find "coremark_like" in
     let prog = w.Workloads.Wl_common.program ~scale:1 in
     let soc = Xiangshan.Soc.create Xiangshan.Config.yqh in
     Xiangshan.Soc.load_program soc prog;
     let t0 = Unix.gettimeofday () in
     let cycles = Xiangshan.Soc.run ~max_cycles:120_000 soc in
     let secs = Unix.gettimeofday () -. t0 in
     float_of_int cycles /. 1000.0 /. Float.max 1e-9 secs)

(* Every emitter that wants host context uses this one helper, so the
   top-level header and any per-experiment host record carry the same
   fields -- static per host, never wall-clock, so the CI byte-diff
   contracts keep holding *)
let host_fields () =
  [
    ("nproc", Json.Int (Minjie.Pool.host_cores ()));
    ("ocaml_version", Json.Str Sys.ocaml_version);
    ("os_type", Json.Str Sys.os_type);
    ("word_size", Json.Int Sys.word_size);
  ]

let write_json () =
  match !json_file with
  | None -> ()
  | Some path ->
      let doc =
        Json.Obj
          [
            ("schema", Json.Str "minjie-bench-v1");
            ("big", Json.Bool !big);
            (* re-runs are only comparable on a known substrate: a
               1-core host serialises the pooled fan-outs, and a
               different compiler changes absolute MIPS *)
            ( "host",
              Json.Obj
                (host_fields ()
                 (* kilocycles of Soc.tick per wall-second on the
                   calibration run; present only when the simspeed
                   experiment forced it (wall clock is volatile, and
                   every other experiment's JSON must stay
                   byte-reproducible) *)
                @
                if Lazy.is_val simspeed_calibration then
                  [
                    ( "simspeed_kcps",
                      Json.Num (Lazy.force simspeed_calibration) );
                  ]
                else []) );
            ("experiments", Json.Arr (List.rev !json_records));
          ]
      in
      (* atomic (temp + fsync + rename): a killed run can never leave
         a truncated or missing JSON once this returns *)
      Minjie.Journal.atomic_write_file ~path (Json.to_string doc);
      Printf.printf "\n[json] wrote %d records to %s\n"
        (List.length !json_records) path

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let wl_scale (w : Workloads.Wl_common.t) = if !big then w.big else w.small

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let geomean = function
  | [] -> 0.0
  | xs ->
      exp
        (List.fold_left (fun a x -> a +. log (max 1e-9 x)) 0.0 xs
        /. float_of_int (List.length xs))

(* ---------------------------------------------------------------- *)
(* Table I + §III-C4: snapshot schemes and their costs               *)
(* ---------------------------------------------------------------- *)

let bench_table1 () =
  section "Table I: snapshot schemes for software RTL-simulation";
  Printf.printf "%-30s %-10s %-12s %-16s\n" "scheme" "in-memory" "incremental"
    "circuit-agnostic";
  List.iter
    (fun (s : Lightsss.scheme) ->
      Printf.printf "%-30s %-10s %-12s %-16s\n" s.scheme_name
        (if s.in_memory then "yes" else "no")
        (if s.incremental then "yes" else "no")
        (if s.circuit_agnostic then "yes" else "no"))
    Lightsss.schemes;
  (* §III-C4 cost microbenchmark: fork()-like vs SSS full image.
     Paper: fork() = 535us, SSS = 3.671s. *)
  let prog = (Workloads.Suite.find "mcf_like").program ~scale:1 in
  let soc = Xiangshan.Soc.create Xiangshan.Config.yqh in
  Xiangshan.Soc.load_program soc prog;
  let dt = Minjie.Difftest.create ~prog soc in
  let warm = if !big then 500_000 else 150_000 in
  for _ = 1 to warm do
    Minjie.Difftest.tick dt
  done;
  let subject = Minjie.Workflow.subject_of dt in
  let snap, light_t = time (fun () -> Lightsss.snapshot subject ~cycle:warm) in
  let sss_mem_bytes, sss_mem_t =
    time (fun () -> Lightsss.full_image_snapshot subject)
  in
  let _, sss_file_t =
    time (fun () -> Lightsss.full_image_snapshot ~to_file:true subject)
  in
  Lightsss.release snap;
  record
    [
      ("experiment", Json.Str "table1");
      ("group", Json.Str "snapshot-cost");
      ("lightsss_ms", Json.Num (1000. *. light_t));
      ("lightsss_image_kb", Json.Int (snap.Lightsss.image_bytes / 1024));
      ("livesim_full_mem_ms", Json.Num (1000. *. sss_mem_t));
      ("livesim_image_kb", Json.Int (sss_mem_bytes / 1024));
      ("sss_to_file_ms", Json.Num (1000. *. sss_file_t));
      ("lightsss_vs_sss_speedup", Json.Num (sss_file_t /. max 1e-9 light_t));
    ];
  Printf.printf
    "\n\
     snapshot cost (paper: fork 535us vs SSS 3.671s):\n\
     \  LightSSS (page tables + metadata) : %8.3f ms (image %d KB)\n\
     \  LiveSim-like (full in-memory)     : %8.3f ms (image %d KB)\n\
     \  SSS (full image through a file)   : %8.3f ms\n\
     \  LightSSS vs SSS-to-file speedup   : %8.1fx\n"
    (1000. *. light_t)
    (snap.Lightsss.image_bytes / 1024)
    (1000. *. sss_mem_t) (sss_mem_bytes / 1024) (1000. *. sss_file_t)
    (sss_file_t /. max 1e-9 light_t)

(* ---------------------------------------------------------------- *)
(* Figure 6: simulation time vs LightSSS snapshot interval           *)
(* ---------------------------------------------------------------- *)

let run_with_interval cfg prog interval =
  let soc = Xiangshan.Soc.create cfg in
  Xiangshan.Soc.load_program soc prog;
  let dt = Minjie.Difftest.create ~prog soc in
  let mgr =
    Option.map
      (fun i -> Lightsss.manager ~interval:i (Minjie.Workflow.subject_of dt))
      interval
  in
  let (), secs =
    time (fun () ->
        let running () =
          match Minjie.Difftest.status dt with
          | Minjie.Difftest.Running -> true
          | Minjie.Difftest.Finished _ | Minjie.Difftest.Failed _ -> false
        in
        while running () do
          (match mgr with
          | Some m -> Lightsss.tick m ~cycle:soc.Xiangshan.Soc.now
          | None -> ());
          Minjie.Difftest.tick dt
        done)
  in
  let mem = soc.Xiangshan.Soc.plat.Riscv.Platform.mem in
  let st = Riscv.Memory.stats mem in
  ( secs,
    Option.map (fun m -> m.Lightsss.snapshots_taken) mgr,
    st.Riscv.Memory.cow_faults )

let bench_fig6 () =
  section
    "Figure 6: simulation time with LightSSS at different snapshot intervals";
  Printf.printf
    "(paper: time is barely affected by the existence or interval of \
     snapshots)\n\n";
  let cases =
    [
      ( "single-core (coremark_like, YQH)",
        Xiangshan.Config.yqh,
        (Workloads.Suite.find "coremark_like").program
          ~scale:(if !big then 8 else 2) );
      ( "dual-core (smp_spinlock, NH)",
        Xiangshan.Config.nh,
        Workloads.Smp.spinlock ~scale:(if !big then 16 else 4) );
    ]
  in
  let intervals = [ None; Some 2_000; Some 10_000; Some 40_000 ] in
  List.iter
    (fun (name, cfg, prog) ->
      Printf.printf "%s:\n" name;
      List.iter
        (fun interval ->
          let secs, snaps, cow = run_with_interval cfg prog interval in
          Printf.printf
            "  interval %-9s : %7.2f s   (snapshots %-4s cow-faults %d)\n"
            (match interval with
            | None -> "off"
            | Some i -> string_of_int i ^ "cyc")
            secs
            (match snaps with None -> "-" | Some n -> string_of_int n)
            cow)
        intervals;
      print_newline ())
    cases

(* ---------------------------------------------------------------- *)
(* Figure 8: interpreter performance (MIPS)                          *)
(* ---------------------------------------------------------------- *)

let bench_fig8 () =
  section "Figure 8: interpreter performance (MIPS)";
  Printf.printf
    "(paper: NEMU 733 MIPS vs Spike 142 on SPECint = 5.16x; 7.71x on SPECfp \
     where Spike pays SoftFloat)\n\n";
  let max_insns = if !big then 400_000_000 else 40_000_000 in
  (* MIPS is a pure-throughput measure and host scheduler / frequency
     noise only ever subtracts from it, so each cell is the best of
     [reps] runs (every engine gets the same treatment) *)
  let reps = 3 in
  (* the NEMU column honours MINJIE_MEGABLOCKS (on unless disabled);
     NEMU-nomb pins trace megablocks off, giving an A/B pair in every
     fig8 table and JSON *)
  let cols =
    [
      ("NEMU", Nemu.Engine.Nemu, None);
      ("NEMU-nomb", Nemu.Engine.Nemu, Some false);
      ("Spike-like", Nemu.Engine.Spike_like, None);
      ("QEMU-TCI-like", Nemu.Engine.Qemu_tci_like, None);
      ("Dromajo-like", Nemu.Engine.Dromajo_like, None);
    ]
  in
  let header =
    Printf.sprintf "%-15s %12s %12s %12s %14s %14s" "workload" "NEMU"
      "NEMU-nomb" "Spike-like" "QEMU-TCI-like" "Dromajo-like"
  in
  (* each rep is one pool job (fork-isolated when --jobs > 1); the
     best-of merge below is order-independent, and with jobs=1 the
     pool degenerates to the original in-process rep loop *)
  let run_reps label kind mb wl_name prog =
    let rep_jobs =
      List.init reps (fun r ->
          {
            Minjie.Pool.j_label = Printf.sprintf "%s/%s#%d" wl_name label r;
            j_cost = 1.0;
            j_run =
              (fun () ->
                Nemu.Engine.run_program_stats ~max_insns ?megablocks:mb kind
                  prog);
          })
    in
    let results, _ = Minjie.Pool.map ~jobs:(effective_jobs ()) rep_jobs in
    List.filter_map
      (fun (r : Nemu.Engine.stats Minjie.Pool.result) ->
        match r.Minjie.Pool.r_outcome with
        | Minjie.Pool.Done s -> Some s
        | Minjie.Pool.Job_error msg | Minjie.Pool.Crashed msg ->
            Printf.eprintf "bench: dropping rep %s: %s\n%!"
              r.Minjie.Pool.r_label msg;
            None
        | Minjie.Pool.Timed_out secs ->
            Printf.eprintf "bench: dropping rep %s: timed out after %.1fs\n%!"
              r.Minjie.Pool.r_label secs;
            None)
      results
  in
  let run_row group_name per_engine (wl_name : string) prog =
    let mips =
      List.map
        (fun (label, kind, mb) ->
          let best = ref None in
          List.iter
            (fun s ->
              let m =
                Nemu.Engine.mips s.Nemu.Engine.insns s.Nemu.Engine.seconds
              in
              match !best with
              | Some (bm, _) when bm >= m -> ()
              | _ -> best := Some (m, s))
            (run_reps label kind mb wl_name prog);
          let m, s = Option.get !best in
          let megablocks =
            match mb with
            | Some b -> b
            | None -> kind = Nemu.Engine.Nemu && Nemu.Fast.megablocks_default ()
          in
          record_engine_run ~experiment:"fig8" ~group:group_name
            ~workload:wl_name ~engine:label ~megablocks s;
          let prev =
            Option.value (Hashtbl.find_opt per_engine label) ~default:[]
          in
          Hashtbl.replace per_engine label (m :: prev);
          m)
        cols
    in
    match mips with
    | [ a; b; c; d; e ] ->
        Printf.printf "%-15s %12.1f %12.1f %12.1f %14.1f %14.1f\n" wl_name a b
          c d e
    | _ -> ()
  in
  let finish_group group_name per_engine =
    let g label =
      geomean (Option.value (Hashtbl.find_opt per_engine label) ~default:[])
    in
    let nemu = g "NEMU" and nomb = g "NEMU-nomb" and spike = g "Spike-like" in
    Printf.printf "%-15s %12.1f %12.1f %12.1f %14.1f %14.1f\n" "geomean" nemu
      nomb spike
      (g "QEMU-TCI-like")
      (g "Dromajo-like");
    record
      [
        ("experiment", Json.Str "fig8");
        ("group", Json.Str group_name);
        ("workload", Json.Str "geomean");
        ("nemu_mips", Json.Num nemu);
        ("nemu_nomb_mips", Json.Num nomb);
        ("spike_like_mips", Json.Num spike);
        ("qemu_tci_like_mips", Json.Num (g "QEMU-TCI-like"));
        ("dromajo_like_mips", Json.Num (g "Dromajo-like"));
        ("nemu_vs_spike", Json.Num (nemu /. max 1e-9 spike));
        ("nemu_megablock_speedup", Json.Num (nemu /. max 1e-9 nomb));
      ];
    Printf.printf "NEMU / Spike-like ratio: %.2fx   megablock speedup: %.2fx\n\n"
      (nemu /. spike)
      (nemu /. max 1e-9 nomb)
  in
  (* MIPS is a steady-state measure: grow the workload scale until the
     run is long enough that compile/startup costs are amortised, so
     tiny kernels don't report warm-up throughput *)
  let min_insns = if !big then 20_000_000 else 2_000_000 in
  let calibrate (w : Workloads.Wl_common.t) =
    let rec go scale tries =
      let prog = w.program ~scale in
      let s = Nemu.Engine.run_program_stats ~max_insns Nemu.Engine.Nemu prog in
      if s.Nemu.Engine.insns >= min_insns || tries = 0 then prog
      else go (scale * 4) (tries - 1)
    in
    go (wl_scale w) 6
  in
  let run_group name group =
    Printf.printf "%s\n%s\n" name header;
    let per_engine = Hashtbl.create 8 in
    List.iter
      (fun (w : Workloads.Wl_common.t) ->
        run_row name per_engine w.wl_name (calibrate w))
      group;
    finish_group name per_engine
  in
  run_group "SPECint-like group" Workloads.Suite.ints;
  run_group "SPECfp-like group" Workloads.Suite.fps;
  (* paging-heavy group: Sv39 address translation on every access
     (vm_kernel) and U<->S syscall round trips (user_mode) -- the
     workloads the host TLB and per-privilege uop caches exist for *)
  Printf.printf "paging group (Sv39 on)\n%s\n" header;
  let per_engine = Hashtbl.create 8 in
  run_row "paging" per_engine "vm_kernel"
    (Workloads.Vm_kernel.program
       ~rounds:(if !big then 20_000 else 2_000)
       ~scale:16 ());
  run_row "paging" per_engine "user_mode"
    (Workloads.User_mode.program
       ~rounds:(if !big then 500_000 else 100_000)
       ~scale:8 ());
  finish_group "paging" per_engine

(* ---------------------------------------------------------------- *)
(* §III-D3: checkpoint generation and restore                        *)
(* ---------------------------------------------------------------- *)

let bench_checkpoints () =
  section "§III-D3: RISC-V checkpoint generation with NEMU + SimPoint";
  Printf.printf
    "(paper: checkpoints generated at >300 MIPS; 8 CoreMark-PRO checkpoints \
     generated and restored correctly)\n\n";
  let w = Workloads.Suite.find "coremark_like" in
  let prog = w.program ~scale:(if !big then 20 else 4) in
  let interval = if !big then 100_000 else 10_000 in
  let cks, stats = Checkpoint.Sampled.generate ~interval ~max_k:8 prog in
  (* raw NEMU speed on a long enough run to amortise compilation *)
  let raw_prog = w.program ~scale:(if !big then 60 else 20) in
  let raw_n, raw_secs =
    Nemu.Engine.run_program ~max_insns:200_000_000 Nemu.Engine.Nemu raw_prog
  in
  let gen_mips =
    float_of_int stats.gen_instructions /. stats.gen_seconds /. 1e6
  in
  let raw_mips = Nemu.Engine.mips raw_n raw_secs in
  Printf.printf
    "profiling+capture: %d instructions in %.2fs = %.1f MIPS\n\
     raw NEMU on the same workload: %.1f MIPS -> checkpointing retains \
     %.0f%% of interpreter speed (paper: 320/733 = 44%%)\n\
     intervals: %d, checkpoints selected: %d\n"
    stats.gen_instructions stats.gen_seconds gen_mips raw_mips
    (100. *. gen_mips /. raw_mips)
    stats.gen_intervals stats.gen_selected;
  (* restore each and verify it runs on the cycle-level model
     (parallel across pool workers under --jobs N) *)
  List.iter
    (fun (r : Checkpoint.Sampled.sample_result) ->
      Printf.printf
        "  checkpoint @interval %-4d weight %.2f -> restored, ipc %.3f\n"
        r.sr_index r.sr_weight r.sr_ipc)
    (Checkpoint.Sampled.simulate_all ~warmup:2_000 ~measure:4_000
       ~jobs:(effective_jobs ()) Xiangshan.Config.yqh cks)

(* ---------------------------------------------------------------- *)
(* Table II: micro-architecture parameters                           *)
(* ---------------------------------------------------------------- *)

let bench_table2 () =
  section "Table II: tape-out micro-architecture parameters (YQH vs NH)";
  print_endline (Xiangshan.Config.table2 ())

(* ---------------------------------------------------------------- *)
(* Figure 12: SPEC-like scores across platforms                      *)
(* ---------------------------------------------------------------- *)

let run_score cfg (w : Workloads.Wl_common.t) =
  let prog = w.program ~scale:(wl_scale w) in
  let soc = Xiangshan.Soc.create cfg in
  Xiangshan.Soc.load_program soc prog;
  let _ = Xiangshan.Soc.run ~max_cycles:400_000_000 soc in
  Xiangshan.Core.ipc soc.Xiangshan.Soc.cores.(0)

let bench_fig12 () =
  section "Figure 12: SPEC-like scores (score/GHz, proportional to IPC)";
  Printf.printf
    "(paper: YQH ~7/GHz; NH ~10/GHz; 4MB LLC beats 2MB LLC by +8.9%% int / \
     +5.4%% fp)\n\n";
  let configs =
    [
      Xiangshan.Config.yqh;
      Xiangshan.Config.yqh_fpga_90c;
      Xiangshan.Config.nh_single;
      Xiangshan.Config.nh_fpga_250c_4mb;
      Xiangshan.Config.nh_fpga_250c_2mb;
    ]
  in
  let llc_int, llc_fp =
    List.partition
      (fun w -> w.Workloads.Wl_common.group = `Int)
      Workloads.Suite.llc_stress
  in
  let int_suite = Workloads.Suite.ints @ llc_int in
  let fp_suite = Workloads.Suite.fps @ llc_fp in
  let results =
    List.map
      (fun cfg ->
        let int_ipcs = List.map (run_score cfg) int_suite in
        let fp_ipcs = List.map (run_score cfg) fp_suite in
        (cfg, geomean int_ipcs, geomean fp_ipcs))
      configs
  in
  (* one calibration constant: chosen so the YQH baseline lands on its
     measured silicon score (7.03/GHz int); every other number uses
     the same constant, so all ratios are model-derived *)
  let yqh_int = match results with (_, i, _) :: _ -> i | [] -> 1.0 in
  let k = 7.03 /. yqh_int in
  Printf.printf "%-28s %14s %14s %12s %12s\n" "configuration" "int score/GHz"
    "fp score/GHz" "int IPC" "fp IPC";
  List.iter
    (fun ((cfg : Xiangshan.Config.t), i, f) ->
      Printf.printf "%-28s %14.2f %14.2f %12.3f %12.3f\n"
        cfg.Xiangshan.Config.cfg_name (k *. i) (k *. f) i f)
    results;
  (* the crossover drivers, individually *)
  Printf.printf "\nLLC-sensitive workloads (IPC):\n";
  List.iter
    (fun (w : Workloads.Wl_common.t) ->
      Printf.printf "  %-10s" w.wl_name;
      List.iter
        (fun cfg -> Printf.printf " %s=%.3f" cfg.Xiangshan.Config.cfg_name (run_score cfg w))
        [ Xiangshan.Config.yqh; Xiangshan.Config.nh_single;
          Xiangshan.Config.nh_fpga_250c_4mb; Xiangshan.Config.nh_fpga_250c_2mb ];
      print_newline ())
    Workloads.Suite.llc_stress;
  (match results with
  | [ _; _; _; (_, i4, f4); (_, i2, f2) ] ->
      Printf.printf
        "\n\
         NH 4MB vs 2MB LLC: int %+.1f%% (paper +8.9%%), fp %+.1f%% (paper \
         +5.4%%)\n"
        (100. *. ((i4 /. i2) -. 1.))
        (100. *. ((f4 /. f2) -. 1.))
  | _ -> ());
  match (results, List.nth_opt results 2) with
  | (_, yi, _) :: _, Some (_, ni, _) ->
      Printf.printf "NH vs YQH (int): %+.1f%% (paper: ~+43%%, 7.03 -> 10.06)\n"
        (100. *. ((ni /. yi) -. 1.))
  | _ -> ()

(* ---------------------------------------------------------------- *)
(* Figure 14: PUBS IPC difference on sjeng checkpoints               *)
(* ---------------------------------------------------------------- *)

let bench_fig14 () =
  section "Figure 14: IPC difference with PUBS on sjeng checkpoints";
  Printf.printf
    "(paper: no visible deviation on XiangShan, vs +6.5%% reported by the \
     original PUBS paper on SimpleScalar)\n\n";
  let prog =
    (Workloads.Suite.find "sjeng_like").program ~scale:(if !big then 30 else 8)
  in
  let interval = if !big then 40_000 else 8_000 in
  let cks, _ = Checkpoint.Sampled.generate ~interval ~max_k:10 prog in
  let age_cfg = Xiangshan.Config.yqh in
  let pubs_cfg =
    {
      Xiangshan.Config.yqh with
      Xiangshan.Config.cfg_name = "YQH+PUBS";
      issue_policy = Xiangshan.Config.Pubs;
    }
  in
  Printf.printf "%-12s %10s %10s %10s\n" "checkpoint" "AGE IPC" "PUBS IPC"
    "delta";
  let deltas =
    List.filter_map
      (fun (sc : Checkpoint.Sampled.sampled_checkpoint) ->
        let warmup = if !big then 20_000 else 4_000 in
        let measure = if !big then 20_000 else 8_000 in
        let a =
          Checkpoint.Sampled.simulate_checkpoint ~warmup ~measure age_cfg sc
        in
        let p =
          Checkpoint.Sampled.simulate_checkpoint ~warmup ~measure pubs_cfg sc
        in
        (* a checkpoint too close to program exit measures nothing *)
        if a.sr_instructions < measure / 2 then None
        else begin
          let d = (p.sr_ipc /. max 1e-9 a.sr_ipc) -. 1.0 in
          Printf.printf "%-12d %10.3f %10.3f %+9.2f%%\n" sc.sc_index a.sr_ipc
            p.sr_ipc (100. *. d);
          Some d
        end)
      cks
  in
  let avg =
    List.fold_left ( +. ) 0.0 deltas
    /. float_of_int (max 1 (List.length deltas))
  in
  Printf.printf "average IPC delta: %+.2f%% (paper: no visible deviation)\n"
    (100. *. avg)

(* ---------------------------------------------------------------- *)
(* Figure 15: ready-instruction distribution                         *)
(* ---------------------------------------------------------------- *)

let bench_fig15 () =
  section "Figure 15: fraction of cycles by number of ready instructions";
  Printf.printf
    "(paper, sjeng on XiangShan: >2 ready instructions in ~12.8%% of cycles; \
     ~5.9%% of instructions are high-priority)\n\n";
  let prog =
    (Workloads.Suite.find "sjeng_like").program ~scale:(if !big then 20 else 4)
  in
  let soc = Xiangshan.Soc.create Xiangshan.Config.yqh in
  Xiangshan.Soc.load_program soc prog;
  let _ = Xiangshan.Soc.run ~max_cycles:400_000_000 soc in
  let perf = soc.Xiangshan.Soc.cores.(0).Xiangshan.Core.perf in
  let hist = perf.Xiangshan.Core.ready_hist in
  let total = float_of_int (Array.fold_left ( + ) 0 hist) in
  Array.iteri
    (fun n c ->
      if c > 0 then
        Printf.printf "global.num_ready_frac_%-2s : %6.2f%%\n"
          (if n = 16 then "16+" else string_of_int n)
          (100. *. float_of_int c /. total))
    hist;
  let more_than_2 =
    Array.fold_left ( + ) 0 (Array.sub hist 3 14) |> float_of_int
  in
  Printf.printf "\ncycles with >2 ready instructions: %.1f%% (paper: 12.8%%)\n"
    (100. *. more_than_2 /. total);
  (* high-priority fraction measured under PUBS *)
  let soc' =
    Xiangshan.Soc.create
      {
        Xiangshan.Config.yqh with
        Xiangshan.Config.issue_policy = Xiangshan.Config.Pubs;
      }
  in
  Xiangshan.Soc.load_program soc' prog;
  let _ = Xiangshan.Soc.run ~max_cycles:400_000_000 soc' in
  let p' = soc'.Xiangshan.Soc.cores.(0).Xiangshan.Core.perf in
  Printf.printf "high-priority instructions: %.1f%% (paper: 5.9%%)\n"
    (100.
    *. float_of_int p'.Xiangshan.Core.p_hi_prio
    /. float_of_int (max 1 p'.Xiangshan.Core.p_dispatched))

(* ---------------------------------------------------------------- *)
(* Ablations: the design choices DESIGN.md calls out                 *)
(* ---------------------------------------------------------------- *)

let bench_ablation () =
  section "Ablations: NH feature knobs and verification-relevant parameters";
  let base = Xiangshan.Config.nh_single in
  let score cfg w =
    let prog = (Workloads.Suite.find w).Workloads.Wl_common.program
        ~scale:(wl_scale (Workloads.Suite.find w)) in
    let soc = Xiangshan.Soc.create cfg in
    Xiangshan.Soc.load_program soc prog;
    let _ = Xiangshan.Soc.run ~max_cycles:400_000_000 soc in
    Xiangshan.Core.ipc soc.Xiangshan.Soc.cores.(0)
  in
  (* 1. macro-op fusion and move elimination (Table II NH features) *)
  Printf.printf "feature ablation (IPC on lbm_like / coremark_like):\n";
  let variants =
    [
      ("NH (fusion+move-elim)", base);
      ( "NH -fusion",
        { base with Xiangshan.Config.cfg_name = "NH-nofuse"; fusion = false } );
      ( "NH -move-elim",
        { base with Xiangshan.Config.cfg_name = "NH-nome"; move_elim = false } );
      ( "NH -both",
        {
          base with
          Xiangshan.Config.cfg_name = "NH-neither";
          fusion = false;
          move_elim = false;
        } );
    ]
  in
  List.iter
    (fun (name, cfg) ->
      Printf.printf "  %-24s lbm %.3f   coremark %.3f\n" name
        (score cfg "lbm_like") (score cfg "coremark_like"))
    variants;
  (* 2. store-buffer drain interval: the Figure 3 non-determinism
     window.  More delay -> more speculative page faults for the
     page-fault diff-rule to reconcile; architectural results remain
     identical (DiffTest-verified). *)
  Printf.printf
    "\nstore-buffer drain interval vs page-fault diff-rule firings \
     (vm_kernel):\n";
  List.iter
    (fun drain ->
      let cfg =
        {
          Xiangshan.Config.yqh with
          Xiangshan.Config.cfg_name = "YQH-drain" ^ string_of_int drain;
          sb_drain_interval = drain;
        }
      in
      let prog = Workloads.Vm_kernel.program ~scale:2 () in
      let soc = Xiangshan.Soc.create cfg in
      Xiangshan.Soc.load_program soc prog;
      let dt = Minjie.Difftest.create ~prog soc in
      match Minjie.Difftest.run ~max_cycles:50_000_000 dt with
      | Minjie.Difftest.Finished code ->
          let fires =
            List.assoc "page-fault-forcing" (Minjie.Difftest.rule_fire_counts dt)
          in
          Printf.printf
            "  drain every %-3d cycles: %3d forced page faults, exit %d \
             (verified)\n"
            drain fires code
      | Minjie.Difftest.Failed f ->
          Printf.printf "  drain every %d cycles: FAILED %s\n" drain
            f.Minjie.Rule.f_msg
      | Minjie.Difftest.Running ->
          Printf.printf "  drain every %d cycles: timeout\n" drain)
    [ 1; 4; 16; 64 ];
  (* 3. branch predictor sizing on the branchy workload *)
  Printf.printf "\nBPU sizing (sjeng_like IPC / MPKI):\n";
  List.iter
    (fun (name, tage) ->
      let cfg =
        {
          Xiangshan.Config.yqh with
          Xiangshan.Config.cfg_name = name;
          tage_entries = tage;
        }
      in
      let prog =
        (Workloads.Suite.find "sjeng_like").Workloads.Wl_common.program
          ~scale:(if !big then 20 else 4)
      in
      let soc = Xiangshan.Soc.create cfg in
      Xiangshan.Soc.load_program soc prog;
      let _ = Xiangshan.Soc.run ~max_cycles:400_000_000 soc in
      let core = soc.Xiangshan.Soc.cores.(0) in
      Printf.printf "  TAGE 4x%-5d : IPC %.3f  MPKI %.1f\n" tage
        (Xiangshan.Core.ipc core)
        (Xiangshan.Bpu.mpki core.Xiangshan.Core.bpu
           ~instructions:core.Xiangshan.Core.perf.Xiangshan.Core.p_instrs))
    [ ("tiny", 256); ("small", 1024); ("table-ii", 4096) ]

(* ---------------------------------------------------------------- *)
(* Fault-injection campaign: every registry fault on its designated  *)
(* workload, detection + replay asserted per cell                    *)
(* ---------------------------------------------------------------- *)

let campaign_seed = ref 1
let campaign_smoke = ref false
let campaign_failed = ref false

(* --ref iss|nemu: REF backend for the campaign bench (default: the
   MINJIE_REF environment variable, then the ISS) *)
let campaign_ref : Minjie.Ref_model.kind option ref = ref None

(* --perf: attach pipeline tracers in campaign cells.  Counters and
   tracers are pure observation, so the campaign output must be
   byte-identical with or without this flag (ci.sh asserts it). *)
let campaign_perf = ref false

(* --journal FILE / --resume / --retries N: crash-safe campaign
   running.  With a journal every completed cell is persisted as it
   lands; --resume replays a matching journal and recomputes only the
   rest, producing byte-identical output (ci.sh SIGKILLs a run mid-
   campaign and asserts exactly that).  Defaults honour MINJIE_RESUME
   and MINJIE_RETRIES. *)
let campaign_journal : string option ref = ref None
let campaign_resume = ref false
let campaign_retries : int option ref = ref None

let effective_resume () = !campaign_resume || Minjie.Journal.env_resume ()

let effective_journal () =
  match !campaign_journal with
  | Some p -> Some p
  | None ->
      (* --resume without --journal still needs a stable path *)
      if effective_resume () then Some "minjie-campaign.journal" else None

(* faults whose cells resolve in a few thousand cycles; enough for CI
   to validate the whole detect->replay->report pipeline *)
let smoke_faults = [ "csr-mtvec-corrupt"; "rob-commit-reorder"; "lsu-sb-drop" ]

let bench_campaign () =
  section "Fault-injection campaign: prove DRAV catches what we break";
  Printf.printf
    "grid: %s faults x %s seed(s), base seed %d; every cell must be \
     detected by an expected diff-rule and reproduce in the LightSSS \
     replay\n\n"
    (if !campaign_smoke then string_of_int (List.length smoke_faults)
     else string_of_int (List.length Minjie.Fault.all))
    (if !campaign_smoke then "1" else "2")
    !campaign_seed;
  let faults = if !campaign_smoke then Some smoke_faults else None in
  let seeds =
    if !campaign_smoke then [ !campaign_seed ]
    else [ !campaign_seed; !campaign_seed + 1 ]
  in
  let s =
    Minjie.Campaign.run ?faults ~seeds ?ref_kind:!campaign_ref
      ~perf:!campaign_perf
      ~jobs:(effective_jobs ())
      ?journal:(effective_journal ())
      ~resume:(effective_resume ()) ?retries:!campaign_retries
      ~progress:(fun c ->
        Printf.printf "  %s\n%!" (Minjie.Campaign.string_of_cell c))
      ()
  in
  (* stdout only: the JSON must stay byte-identical between a clean
     run and an interrupted-then-resumed one *)
  if s.Minjie.Campaign.resumed > 0 || s.Minjie.Campaign.retried > 0 then
    Printf.printf
      "\n(journal: %d cell(s) resumed, %d supervised re-run(s), %d \
       recovered)\n"
      s.Minjie.Campaign.resumed s.Minjie.Campaign.retried
      s.Minjie.Campaign.recovered;
  List.iter
    (fun (c : Minjie.Campaign.cell) ->
      record
        [
          ("experiment", Json.Str "campaign");
          ("group", Json.Str "cell");
          ("fault", Json.Str c.Minjie.Campaign.c_fault);
          ("layer", Json.Str c.Minjie.Campaign.c_layer);
          ("workload", Json.Str c.Minjie.Campaign.c_workload);
          ("config", Json.Str c.Minjie.Campaign.c_config);
          ("seed", Json.Int c.Minjie.Campaign.c_seed);
          ("trigger_cycle", Json.Int c.Minjie.Campaign.c_trigger);
          ("detected", Json.Bool c.Minjie.Campaign.c_detected);
          ("rule", Json.Str c.Minjie.Campaign.c_rule);
          ("rule_expected", Json.Bool c.Minjie.Campaign.c_rule_expected);
          ("failure_cycle", Json.Int c.Minjie.Campaign.c_failure_cycle);
          ("latency_cycles", Json.Int c.Minjie.Campaign.c_latency_cycles);
          ("commits_checked", Json.Int c.Minjie.Campaign.c_commits);
          ("replayed", Json.Bool c.Minjie.Campaign.c_replayed);
          ("replay_rule", Json.Str c.Minjie.Campaign.c_replay_rule);
          ("replay_window", Json.Int c.Minjie.Campaign.c_replay_window);
          ("replay_within", Json.Bool c.Minjie.Campaign.c_replay_within);
          ("ok", Json.Bool c.Minjie.Campaign.c_ok);
        ])
    s.Minjie.Campaign.cells;
  record
    [
      ("experiment", Json.Str "campaign");
      ("group", Json.Str "summary");
      ("total_cells", Json.Int s.Minjie.Campaign.total);
      ("detected", Json.Int s.Minjie.Campaign.detected);
      ("escapes", Json.Int s.Minjie.Campaign.escapes);
      ("rule_mismatches", Json.Int s.Minjie.Campaign.rule_mismatches);
      ("replay_misses", Json.Int s.Minjie.Campaign.replay_misses);
      ("snapshot_interval", Json.Int s.Minjie.Campaign.snapshot_interval);
    ];
  Printf.printf
    "\n\
     campaign summary: %d cells, %d detected, %d escapes, %d rule \
     mismatches, %d replay misses\n"
    s.Minjie.Campaign.total s.Minjie.Campaign.detected
    s.Minjie.Campaign.escapes s.Minjie.Campaign.rule_mismatches
    s.Minjie.Campaign.replay_misses;
  if
    s.Minjie.Campaign.escapes > 0
    || s.Minjie.Campaign.rule_mismatches > 0
    || s.Minjie.Campaign.replay_misses > 0
  then begin
    campaign_failed := true;
    Printf.printf "CAMPAIGN FAILED: the verification stack missed a fault\n"
  end
  else Printf.printf "zero escapes: every injected fault was caught\n"

(* ---------------------------------------------------------------- *)
(* Coverage-guided fuzz campaign: mutate testgen programs, run them  *)
(* under DiffTest on a (config x REF) grid, keep what reaches new    *)
(* microarchitectural coverage                                       *)
(* ---------------------------------------------------------------- *)

let fuzz_journal () =
  match !campaign_journal with
  | Some p -> Some p
  | None -> if effective_resume () then Some "minjie-fuzz.journal" else None

let bench_fuzz () =
  section "Coverage-guided fuzz campaign: chase new microarchitectural states";
  let p =
    let base = if !campaign_smoke then Fuzz.smoke else Fuzz.default in
    let base = { base with Fuzz.fz_seed = !campaign_seed } in
    match !campaign_ref with
    | Some k -> { base with Fuzz.fz_refs = [ k ] }
    | None -> base
  in
  Printf.printf
    "grid: %d round(s) x %d candidate(s) over %s, REF %s, base seed %d\n\n"
    p.Fuzz.fz_rounds p.Fuzz.fz_cands
    (String.concat "/" p.Fuzz.fz_configs)
    (String.concat "+" (List.map Minjie.Ref_model.kind_name p.Fuzz.fz_refs))
    p.Fuzz.fz_seed;
  let s =
    Fuzz.run ~p
      ~jobs:(effective_jobs ())
      ?journal:(fuzz_journal ())
      ~resume:(effective_resume ()) ?retries:!campaign_retries
      ~progress:(fun e -> Printf.printf "  %s\n%!" (Fuzz.string_of_exec e))
      ()
  in
  (* stdout only: the JSON must stay byte-identical between a clean
     run and an interrupted-then-resumed one *)
  if s.Fuzz.fz_resumed > 0 || s.Fuzz.fz_retried > 0 then
    Printf.printf
      "\n(journal: %d exec(s) resumed, %d supervised re-run(s), %d recovered)\n"
      s.Fuzz.fz_resumed s.Fuzz.fz_retried s.Fuzz.fz_recovered;
  print_newline ();
  List.iter
    (fun (r : Fuzz.round_stat) ->
      Printf.printf "  %s\n" (Fuzz.string_of_round r);
      record
        [
          ("experiment", Json.Str "fuzz");
          ("group", Json.Str "round");
          ("round", Json.Int r.Fuzz.rs_round);
          ("execs", Json.Int r.Fuzz.rs_execs);
          ("new_points", Json.Int r.Fuzz.rs_new_points);
          ("points", Json.Int r.Fuzz.rs_points);
          ("cells", Json.Int r.Fuzz.rs_cells);
          ("corpus", Json.Int r.Fuzz.rs_corpus);
          ("mismatches", Json.Int r.Fuzz.rs_mismatches);
        ])
    s.Fuzz.fz_round_stats;
  (* every rule-fire find gets its own record: seed + mutation history
     is the reproducer *)
  List.iter
    (fun (e : Fuzz.exec) ->
      if Fuzz.is_mismatch e then
        record
          [
            ("experiment", Json.Str "fuzz");
            ("group", Json.Str "find");
            ("round", Json.Int e.Fuzz.x_round);
            ("cand", Json.Int e.Fuzz.x_cand);
            ("seed", Json.Int e.Fuzz.x_seed);
            ("ops", Json.Str e.Fuzz.x_ops);
            ("config", Json.Str e.Fuzz.x_cfg);
            ("ref", Json.Str e.Fuzz.x_ref);
            ("rule", Json.Str e.Fuzz.x_rule);
            ("replayed", Json.Bool e.Fuzz.x_replayed);
            ("replay_rule", Json.Str e.Fuzz.x_replay_rule);
          ])
    s.Fuzz.fz_execs;
  record
    [
      ("experiment", Json.Str "fuzz");
      ("group", Json.Str "summary");
      ("seed", Json.Int p.Fuzz.fz_seed);
      ("rounds", Json.Int (List.length s.Fuzz.fz_round_stats));
      ("execs", Json.Int (List.length s.Fuzz.fz_execs));
      ("points", Json.Int s.Fuzz.fz_points);
      ("cells", Json.Int s.Fuzz.fz_cells);
      ("corpus", Json.Int s.Fuzz.fz_corpus);
      ("mismatches", Json.Int s.Fuzz.fz_mismatches);
    ];
  Printf.printf
    "\n\
     fuzz summary: %d exec(s), %d coverage point(s) over %d cell(s), \
     corpus %d, %d mismatch(es)\n"
    (List.length s.Fuzz.fz_execs)
    s.Fuzz.fz_points s.Fuzz.fz_cells s.Fuzz.fz_corpus s.Fuzz.fz_mismatches;
  let bad =
    List.exists
      (fun (e : Fuzz.exec) ->
        e.Fuzz.x_exit = -2 || (Fuzz.is_mismatch e && not e.Fuzz.x_replayed))
      s.Fuzz.fz_execs
  in
  if bad then begin
    campaign_failed := true;
    Printf.printf
      "FUZZ FAILED: a pool failure or a mismatch that did not reproduce in \
       replay\n"
  end

(* ---------------------------------------------------------------- *)
(* Host-chaos suite: inject harness-level host faults (worker kills, *)
(* EINTR storms, short writes, stalls, journal ENOSPC) and assert    *)
(* the campaign verdict is byte-identical to the clean run's under   *)
(* every schedule                                                    *)
(* ---------------------------------------------------------------- *)

let bench_chaos () =
  section "Host-chaos suite: the harness survives the host";
  let faults = if !campaign_smoke then Some smoke_faults else None in
  let seeds =
    if !campaign_smoke then [ !campaign_seed ]
    else [ !campaign_seed; !campaign_seed + 1 ]
  in
  let jobs = max 2 (effective_jobs ()) in
  let chaos_seed = !campaign_seed in
  Printf.printf
    "(every schedule below is a deterministic function of seed %d; the \
     campaign runs at\n\
    \ jobs=%d with a retry budget of 2, and its verdict must be \
     byte-identical to the\n\
    \ clean run's under every schedule)\n\n"
    chaos_seed jobs;
  (* cell labels exactly as Campaign.run builds them, for the
     planned-injection counts *)
  let fault_names =
    match faults with
    | Some names -> names
    | None -> List.map (fun f -> f.Minjie.Fault.f_name) Minjie.Fault.all
  in
  let labels =
    List.concat_map
      (fun f -> List.map (fun s -> Printf.sprintf "%s#%d" f s) seeds)
      fault_names
  in
  (* clean baseline: no chaos, sequential *)
  let clean, clean_secs =
    time (fun () ->
        Minjie.Campaign.run ?faults ~seeds ?ref_kind:!campaign_ref ~jobs:1 ())
  in
  Printf.printf "clean baseline: %d cells, %d escapes, %.2f s\n\n"
    clean.Minjie.Campaign.total clean.Minjie.Campaign.escapes clean_secs;
  let all_identical = ref true in
  List.iter
    (fun cls ->
      let name = Minjie.Host_chaos.class_name cls in
      (* stalled workers must overrun the deadline, and real cells must
         never get near it *)
      let timeout =
        match cls with Minjie.Host_chaos.Slow_worker -> Some 3.0 | _ -> None
      in
      let journal =
        match cls with
        | Minjie.Host_chaos.Journal_enospc ->
            Some (Filename.temp_file "minjie-chaos" ".journal")
        | _ -> None
      in
      Minjie.Host_chaos.arm ~slow_delay:8.0 ~seed:chaos_seed [ cls ];
      let injected =
        match List.assoc_opt name (Minjie.Host_chaos.planned ~labels) with
        | Some n -> n
        | None -> 0
      in
      let s, secs =
        time (fun () ->
            Minjie.Campaign.run ?faults ~seeds ?ref_kind:!campaign_ref ~jobs
              ~retries:2 ?timeout ?journal ())
      in
      let parent_fired =
        List.fold_left (fun a (_, n) -> a + n) 0 (Minjie.Host_chaos.fired ())
      in
      Minjie.Host_chaos.disarm ();
      (match journal with
      | Some p -> ( try Sys.remove p with Sys_error _ -> ())
      | None -> ());
      let identical = s.Minjie.Campaign.cells = clean.Minjie.Campaign.cells in
      if not identical then all_identical := false;
      Printf.printf
        "%-15s: %3d planned injection(s), %2d re-run(s), %2d recovered; \
         %d/%d detected, %d escapes, verdict %s  (%.2f s)\n\
         %!"
        name injected s.Minjie.Campaign.retried s.Minjie.Campaign.recovered
        s.Minjie.Campaign.detected s.Minjie.Campaign.total
        s.Minjie.Campaign.escapes
        (if identical then "== clean" else "DIVERGED")
        secs;
      record
        [
          ("experiment", Json.Str "chaos");
          ("group", Json.Str "schedule");
          ("class", Json.Str name);
          ("chaos_seed", Json.Int chaos_seed);
          ("workers", Json.Int jobs);
          ("planned_injections", Json.Int injected);
          ("parent_fired", Json.Int parent_fired);
          ("retried", Json.Int s.Minjie.Campaign.retried);
          ("recovered", Json.Int s.Minjie.Campaign.recovered);
          ("cells", Json.Int s.Minjie.Campaign.total);
          ("detected", Json.Int s.Minjie.Campaign.detected);
          ("escapes", Json.Int s.Minjie.Campaign.escapes);
          ("seconds", Json.Num secs);
          ("verdict_identical", Json.Bool identical);
        ];
      if not identical then begin
        campaign_failed := true;
        Printf.printf "CHAOS FAILED: %s diverged from the clean verdict\n" name
      end)
    Minjie.Host_chaos.all_classes;
  (* resume overhead: journal the grid once, then resume from the
     complete journal -- the replay must recompute nothing *)
  let jpath = Filename.temp_file "minjie-resume" ".journal" in
  let _first, first_secs =
    time (fun () ->
        Minjie.Campaign.run ?faults ~seeds ?ref_kind:!campaign_ref ~jobs:1
          ~journal:jpath ())
  in
  let resumed, resumed_secs =
    time (fun () ->
        Minjie.Campaign.run ?faults ~seeds ?ref_kind:!campaign_ref ~jobs:1
          ~journal:jpath ~resume:true ())
  in
  (try Sys.remove jpath with Sys_error _ -> ());
  let resume_identical =
    resumed.Minjie.Campaign.cells = clean.Minjie.Campaign.cells
  in
  Printf.printf
    "\n\
     resume overhead: journaled run %.2f s, full-journal resume %.2f s \
     (%d/%d cells replayed, verdict %s)\n"
    first_secs resumed_secs resumed.Minjie.Campaign.resumed
    resumed.Minjie.Campaign.total
    (if resume_identical then "== clean" else "DIVERGED");
  record
    [
      ("experiment", Json.Str "chaos");
      ("group", Json.Str "resume");
      ("journaled_seconds", Json.Num first_secs);
      ("resume_seconds", Json.Num resumed_secs);
      ("cells_resumed", Json.Int resumed.Minjie.Campaign.resumed);
      ("cells", Json.Int resumed.Minjie.Campaign.total);
      ("verdict_identical", Json.Bool resume_identical);
    ];
  if not resume_identical then begin
    campaign_failed := true;
    Printf.printf "CHAOS FAILED: full-journal resume diverged\n"
  end;
  record
    [
      ("experiment", Json.Str "chaos");
      ("group", Json.Str "summary");
      ("host", Json.Obj (host_fields ()));
      ("classes", Json.Int (List.length Minjie.Host_chaos.all_classes));
      ("all_verdicts_identical", Json.Bool !all_identical);
    ];
  if !all_identical && resume_identical then
    Printf.printf
      "\n\
       all %d chaos schedules recovered to the clean verdict, cell for cell\n"
      (List.length Minjie.Host_chaos.all_classes)

(* ---------------------------------------------------------------- *)
(* Co-simulation throughput: the pluggable REF interface lets the    *)
(* same DiffTest run against the ISS or the NEMU block-compiled REF; *)
(* this bench measures both, end-to-end and REF-side only            *)
(* ---------------------------------------------------------------- *)

let cosim_workloads = [ "coremark_like"; "mcf_like"; "vm_kernel" ]

(* Retire instructions on a standalone non-autonomous REF until the
   program exits (or the cap): the REF-side cost of co-simulation,
   with the DUT out of the picture.  One warm-up run, then repeated
   runs until the sample is big enough for a stable rate (small-scale
   programs finish in a millisecond or two). *)
let cosim_ref_only kind prog =
  let cap = if !big then 200_000_000 else 50_000_000 in
  let run_once () =
    let r = Minjie.Ref_model.create ~kind ~hartid:0 ~prog () in
    let n = ref 0 in
    let continue = ref true in
    while !continue do
      match r.Minjie.Ref_model.step () with
      | Minjie.Ref_model.Committed _ ->
          incr n;
          if !n >= cap then continue := false
      | Minjie.Ref_model.Exited -> continue := false
    done;
    !n
  in
  ignore (run_once ());
  let total = ref 0 and reps = ref 0 in
  let (), secs =
    time (fun () ->
        while !total < 2_000_000 && !reps < 200 do
          total := !total + run_once ();
          incr reps
        done)
  in
  (!total, secs)

let cosim_e2e kind prog =
  let soc = Xiangshan.Soc.create Xiangshan.Config.yqh in
  Xiangshan.Soc.load_program soc prog;
  let dt = Minjie.Difftest.create ~ref_kind:kind ~prog soc in
  let (), secs =
    time (fun () ->
        let running () =
          match Minjie.Difftest.status dt with
          | Minjie.Difftest.Running -> true
          | Minjie.Difftest.Finished _ | Minjie.Difftest.Failed _ -> false
        in
        while running () do
          Minjie.Difftest.tick dt
        done)
  in
  (match Minjie.Difftest.status dt with
  | Minjie.Difftest.Failed f ->
      Printf.printf "  !! difftest FAILED under %s REF: %s\n"
        (Minjie.Ref_model.kind_name kind)
        (Minjie.Rule.string_of_failure f)
  | Minjie.Difftest.Running | Minjie.Difftest.Finished _ -> ());
  ( (Minjie.Difftest.soc dt).Xiangshan.Soc.now,
    Minjie.Difftest.commits_checked dt,
    secs )

let bench_cosim () =
  section "Co-simulation throughput: ISS REF vs NEMU REF";
  Printf.printf
    "(the REF is pluggable behind Ref_model; NEMU's block-compiled \
     non-autonomous mode\n\
    \ is the paper's fast REF -- both are measured end-to-end under \
     DiffTest and\n\
    \ REF-side only, stepping the same program standalone)\n\n";
  let speedups_e2e = ref [] and speedups_ref = ref [] in
  List.iter
    (fun wname ->
      let w = Minjie.Campaign.find_workload wname in
      let prog = w.Workloads.Wl_common.program ~scale:(wl_scale w) in
      Printf.printf "%s:\n" wname;
      let results =
        List.map
          (fun kind ->
            let cycles, commits, e2e_secs = cosim_e2e kind prog in
            let ref_insns, ref_secs = cosim_ref_only kind prog in
            let kcps = float_of_int cycles /. max 1e-9 e2e_secs /. 1e3 in
            let cps = float_of_int commits /. max 1e-9 e2e_secs in
            let rps = float_of_int ref_insns /. max 1e-9 ref_secs in
            Printf.printf
              "  %-5s e2e: %8.1f kcycles/s %10.0f commits/s   REF-only: \
               %10.0f insns/s\n"
              (Minjie.Ref_model.kind_name kind)
              kcps cps rps;
            record
              [
                ("experiment", Json.Str "cosim");
                ("group", Json.Str "run");
                ("workload", Json.Str wname);
                ("ref", Json.Str (Minjie.Ref_model.kind_name kind));
                ("e2e_cycles", Json.Int cycles);
                ("e2e_seconds", Json.Num e2e_secs);
                ("e2e_kcycles_per_s", Json.Num kcps);
                ("e2e_commits", Json.Int commits);
                ("e2e_commits_per_s", Json.Num cps);
                ("ref_insns", Json.Int ref_insns);
                ("ref_seconds", Json.Num ref_secs);
                ("ref_insns_per_s", Json.Num rps);
              ];
            (kind, cps, rps))
          [ Minjie.Ref_model.Iss; Minjie.Ref_model.Nemu ]
      in
      match results with
      | [ (_, iss_cps, iss_rps); (_, nemu_cps, nemu_rps) ] ->
          let e2e_speedup = nemu_cps /. max 1e-9 iss_cps in
          let ref_speedup = nemu_rps /. max 1e-9 iss_rps in
          speedups_e2e := e2e_speedup :: !speedups_e2e;
          speedups_ref := ref_speedup :: !speedups_ref;
          Printf.printf
            "  nemu/iss speedup: %.2fx end-to-end, %.2fx REF-side\n" e2e_speedup
            ref_speedup;
          record
            [
              ("experiment", Json.Str "cosim");
              ("group", Json.Str "speedup");
              ("workload", Json.Str wname);
              ("e2e_speedup", Json.Num e2e_speedup);
              ("ref_step_speedup", Json.Num ref_speedup);
            ]
      | _ -> ())
    cosim_workloads;
  let ge = geomean !speedups_e2e and gr = geomean !speedups_ref in
  record
    [
      ("experiment", Json.Str "cosim");
      ("group", Json.Str "summary");
      ("workloads", Json.Int (List.length cosim_workloads));
      ("geomean_e2e_speedup", Json.Num ge);
      ("geomean_ref_step_speedup", Json.Num gr);
    ];
  Printf.printf
    "\ngeomean nemu/iss speedup: %.2fx end-to-end, %.2fx REF-side\n" ge gr

(* ---------------------------------------------------------------- *)
(* Parallel simulation pool: the scaling curve for the two big       *)
(* fan-outs (campaign cells, sampled simulations) at 1/2/4/8         *)
(* workers, with verdict identity asserted against the sequential    *)
(* run at every worker count                                         *)
(* ---------------------------------------------------------------- *)

let bench_parallel () =
  section "Parallel pool: campaign + sampled-simulation scaling";
  let host = Minjie.Pool.host_cores () in
  let worker_counts = if !campaign_smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  Printf.printf
    "(each cell/sample is one forked pool worker; wall-clock speedup \
     saturates\n\
    \ at the host's %d online core(s) -- verdict identity and crash \
     isolation\n\
    \ are asserted at every worker count regardless)\n\n"
    host;
  record
    [
      ("experiment", Json.Str "parallel");
      ("group", Json.Str "host");
      ("host", Json.Obj (host_fields ()));
    ];
  (* campaign scaling, both REF backends *)
  let faults = if !campaign_smoke then Some smoke_faults else None in
  let seeds =
    if !campaign_smoke then [ !campaign_seed ]
    else [ !campaign_seed; !campaign_seed + 1 ]
  in
  List.iter
    (fun kind ->
      Printf.printf "campaign (--ref %s):\n" (Minjie.Ref_model.kind_name kind);
      let base_secs = ref 0.0 in
      let base_cells = ref [] in
      List.iter
        (fun j ->
          let s, secs =
            time (fun () ->
                Minjie.Campaign.run ?faults ~seeds ~ref_kind:kind ~jobs:j ())
          in
          if j = 1 then begin
            base_secs := secs;
            base_cells := s.Minjie.Campaign.cells
          end;
          (* cells are deterministic records: the parallel grid must
             reproduce the sequential one field for field *)
          let matches = s.Minjie.Campaign.cells = !base_cells in
          let speedup = !base_secs /. max 1e-9 secs in
          Printf.printf
            "  jobs=%d : %6.2f s  speedup %5.2fx  cells %d  escapes %d  \
             verdicts %s\n\
             %!"
            j secs speedup s.Minjie.Campaign.total s.Minjie.Campaign.escapes
            (if matches then "== sequential" else "DIVERGED");
          record
            [
              ("experiment", Json.Str "parallel");
              ("group", Json.Str "campaign");
              ("ref", Json.Str (Minjie.Ref_model.kind_name kind));
              ("workers", Json.Int j);
              ("seconds", Json.Num secs);
              ("speedup_vs_jobs1", Json.Num speedup);
              ("cells", Json.Int s.Minjie.Campaign.total);
              ("detected", Json.Int s.Minjie.Campaign.detected);
              ("escapes", Json.Int s.Minjie.Campaign.escapes);
              ("verdicts_match_sequential", Json.Bool matches);
            ];
          if (not matches) || s.Minjie.Campaign.escapes > 0 then begin
            campaign_failed := true;
            Printf.printf
              "PARALLEL CAMPAIGN FAILED at jobs=%d (escapes or verdict \
               divergence)\n"
              j
          end)
        worker_counts)
    [ Minjie.Ref_model.Iss; Minjie.Ref_model.Nemu ];
  (* sampled-simulation sweep: the paper's parallel-RTL-simulation
     analogue -- SimPoint samples of one workload across the pool *)
  let w = Workloads.Suite.find "coremark_like" in
  let prog = w.Workloads.Wl_common.program ~scale:(if !big then 20 else 8) in
  let interval = if !big then 100_000 else 10_000 in
  let cks, _ = Checkpoint.Sampled.generate ~interval ~max_k:8 prog in
  let warmup = if !big then 20_000 else 8_000 in
  let measure = if !big then 20_000 else 12_000 in
  Printf.printf "\nsampled simulation (coremark_like, %d checkpoints):\n"
    (List.length cks);
  let base_secs = ref 0.0 in
  let base_results = ref [] in
  List.iter
    (fun j ->
      let rs, secs =
        time (fun () ->
            Checkpoint.Sampled.simulate_all ~warmup ~measure ~jobs:j
              Xiangshan.Config.yqh cks)
      in
      let ipc = Checkpoint.Sampled.weighted_ipc rs in
      if j = 1 then begin
        base_secs := secs;
        base_results := rs
      end;
      let matches = rs = !base_results in
      let speedup = !base_secs /. max 1e-9 secs in
      Printf.printf
        "  jobs=%d : %6.2f s  speedup %5.2fx  samples %d  weighted ipc %.3f  \
         results %s\n\
         %!"
        j secs speedup (List.length rs) ipc
        (if matches then "== sequential" else "DIVERGED");
      record
        [
          ("experiment", Json.Str "parallel");
          ("group", Json.Str "sampled");
          ("workload", Json.Str "coremark_like");
          ("workers", Json.Int j);
          ("seconds", Json.Num secs);
          ("speedup_vs_jobs1", Json.Num speedup);
          ("samples", Json.Int (List.length rs));
          ("weighted_ipc", Json.Num ipc);
          ("results_match_sequential", Json.Bool matches);
        ];
      if not matches then begin
        campaign_failed := true;
        Printf.printf "PARALLEL SAMPLED SWEEP DIVERGED at jobs=%d\n" j
      end)
    worker_counts;
  (* dispatch policy A/B: the same heterogeneous job mix (one full
     cycle-model run per workload -- runtimes span more than an order
     of magnitude across the suite) under longest-first vs FIFO
     ordering.  Pass 1 at jobs=1 doubles as the cost oracle: each
     job's observed r_seconds becomes its j_cost for the scheduled
     passes, the same observed-runtime feedback the serve daemon's
     EWMA provides. *)
  let dispatch_workloads =
    if !campaign_smoke then
      List.map Minjie.Campaign.find_workload
        [ "coremark_like"; "sjeng_like"; "mcf_like" ]
    else Workloads.Suite.all
  in
  let dispatch_counts =
    if !campaign_smoke then [ 1; 2 ] else [ 1; 2; 4; 8; 16 ]
  in
  let mk_job cost (w : Workloads.Wl_common.t) =
    {
      Minjie.Pool.j_label = w.Workloads.Wl_common.wl_name;
      j_cost = cost w.Workloads.Wl_common.wl_name;
      j_run =
        (fun () ->
          let prog = w.Workloads.Wl_common.program ~scale:(wl_scale w) in
          let soc = Xiangshan.Soc.create Xiangshan.Config.yqh in
          Xiangshan.Soc.load_program soc prog;
          Xiangshan.Soc.run ~max_cycles:400_000_000 soc);
    }
  in
  Printf.printf "\ndispatch policy A/B (%d-job heterogeneous mix):\n"
    (List.length dispatch_workloads);
  let (base_results, _), base_secs =
    time (fun () ->
        Minjie.Pool.map ~jobs:1 ~dispatch:`Fifo
          (List.map (mk_job (fun _ -> 1.0)) dispatch_workloads))
  in
  let observed =
    List.map
      (fun (r : int Minjie.Pool.result) ->
        (r.Minjie.Pool.r_label, r.Minjie.Pool.r_seconds))
      base_results
  in
  let cost_of label = try List.assoc label observed with Not_found -> 1.0 in
  let base_cycles =
    List.map
      (fun (r : int Minjie.Pool.result) ->
        ( r.Minjie.Pool.r_label,
          match r.Minjie.Pool.r_outcome with
          | Minjie.Pool.Done c -> c
          | _ -> -1 ))
      base_results
  in
  Printf.printf "  jobs=1 baseline: %6.2f s (per-job runtimes observed)\n%!"
    base_secs;
  let best_lf = ref infinity in
  let lf_times = ref [] in
  List.iter
    (fun dispatch ->
      let dname =
        match dispatch with `Fifo -> "fifo" | `Longest_first -> "longest-first"
      in
      List.iter
        (fun j ->
          let (results, _), secs =
            time (fun () ->
                Minjie.Pool.map ~jobs:j ~dispatch
                  (List.map (mk_job cost_of) dispatch_workloads))
          in
          let cycles =
            List.map
              (fun (r : int Minjie.Pool.result) ->
                ( r.Minjie.Pool.r_label,
                  match r.Minjie.Pool.r_outcome with
                  | Minjie.Pool.Done c -> c
                  | _ -> -2 ))
              results
          in
          let matches =
            List.sort compare cycles = List.sort compare base_cycles
          in
          let speedup = base_secs /. max 1e-9 secs in
          if dispatch = `Longest_first then begin
            best_lf := Float.min !best_lf secs;
            lf_times := (j, secs) :: !lf_times
          end;
          Printf.printf
            "  %-13s jobs=%2d : %6.2f s  speedup %5.2fx  results %s\n%!" dname
            j secs speedup
            (if matches then "== sequential" else "DIVERGED");
          record
            [
              ("experiment", Json.Str "parallel");
              ("group", Json.Str "dispatch");
              ("policy", Json.Str dname);
              ("workers", Json.Int j);
              ("mix_jobs", Json.Int (List.length dispatch_workloads));
              ("seconds", Json.Num secs);
              ("speedup_vs_jobs1", Json.Num speedup);
              ("results_match_sequential", Json.Bool matches);
            ];
          if not matches then begin
            campaign_failed := true;
            Printf.printf "DISPATCH A/B DIVERGED (%s, jobs=%d)\n" dname j
          end)
        dispatch_counts)
    [ `Fifo; `Longest_first ];
  (* the saturation knee: the smallest worker count whose wall clock
     is within 5%% of the best longest-first time.  On a 1-core host
     every count serialises onto the same core, so the knee lands at
     1 -- the record keeps that honest rather than hiding it *)
  let knee =
    List.fold_left
      (fun acc (j, secs) ->
        if secs <= !best_lf *. 1.05 then min acc j else acc)
      max_int !lf_times
  in
  Printf.printf
    "  saturation knee: %d worker(s) (host has %d online core(s))\n" knee host;
  record
    [
      ("experiment", Json.Str "parallel");
      ("group", Json.Str "dispatch_summary");
      ("knee_workers", Json.Int knee);
      ("host", Json.Obj (host_fields ()));
      ("baseline_seconds", Json.Num base_secs);
    ]

(* ---------------------------------------------------------------- *)
(* Top-down CPI stacks: every workload's cycles folded into the      *)
(* L1/L2 cycle-accounting stack, with the invariant (buckets sum     *)
(* exactly to measured cycles) asserted on every run                 *)
(* ---------------------------------------------------------------- *)

(* three bottleneck archetypes are enough for CI: compute-bound,
   mispredict-bound and memory-bound *)
let topdown_smoke_workloads = [ "coremark_like"; "sjeng_like"; "mcf_like" ]

let bench_topdown () =
  section "Top-down CPI stacks: where every cycle went";
  Printf.printf
    "(each cycle of each run lands in exactly one of 9 leaf buckets; \
     the stack is\n\
    \ rejected outright if the buckets do not sum to the measured \
     cycle count)\n\n";
  let workloads =
    if !campaign_smoke then
      List.map Minjie.Campaign.find_workload topdown_smoke_workloads
    else Workloads.Suite.all
  in
  (* one pool job per workload: a full run to completion, returning
     the (marshal-safe) counter snapshot of hart 0 *)
  let pool_jobs =
    List.map
      (fun (w : Workloads.Wl_common.t) ->
        {
          Minjie.Pool.j_label = w.Workloads.Wl_common.wl_name;
          j_cost = float_of_int (wl_scale w);
          j_run =
            (fun () ->
              let prog = w.Workloads.Wl_common.program ~scale:(wl_scale w) in
              let soc = Xiangshan.Soc.create Xiangshan.Config.yqh in
              Xiangshan.Soc.load_program soc prog;
              let _ = Xiangshan.Soc.run ~max_cycles:400_000_000 soc in
              Xiangshan.Soc.counter_snapshot soc ~hartid:0);
        })
      workloads
  in
  let results, _ = Minjie.Pool.map ~jobs:(effective_jobs ()) pool_jobs in
  let stacks =
    List.filter_map
      (fun (r : (string * int) list Minjie.Pool.result) ->
        match r.Minjie.Pool.r_outcome with
        | Minjie.Pool.Done counters ->
            Some (r.Minjie.Pool.r_label, counters)
        | Minjie.Pool.Job_error msg | Minjie.Pool.Crashed msg ->
            campaign_failed := true;
            Printf.printf "TOPDOWN FAILED: %s: %s\n" r.Minjie.Pool.r_label msg;
            None
        | Minjie.Pool.Timed_out secs ->
            campaign_failed := true;
            Printf.printf "TOPDOWN FAILED: %s timed out after %.1fs\n"
              r.Minjie.Pool.r_label secs;
            None)
      results
  in
  let ok = ref 0 in
  List.iter
    (fun (wname, counters) ->
      match Perf.Topdown.of_counters counters with
      | Error msg ->
          campaign_failed := true;
          Printf.printf "TOPDOWN FAILED: %s: %s\n" wname msg
      | Ok stack -> (
          match Perf.Topdown.check stack with
          | Error msg ->
              campaign_failed := true;
              Printf.printf "TOPDOWN INVARIANT VIOLATED: %s: %s\n" wname msg
          | Ok () ->
              incr ok;
              print_string (Perf.Topdown.render ~label:wname stack);
              print_newline ();
              record
                (( "experiment", Json.Str "topdown" )
                 :: ("group", Json.Str "stack")
                 :: ("workload", Json.Str wname)
                 :: ("cycles", Json.Int stack.Perf.Topdown.ts_cycles)
                 :: ("instrs", Json.Int stack.Perf.Topdown.ts_instrs)
                 :: ("ipc", Json.Num (Perf.Topdown.ipc stack))
                 :: ("cpi", Json.Num (Perf.Topdown.cpi stack))
                 :: ("sum_matches_cycles", Json.Bool true)
                 :: (List.map
                       (fun b ->
                         ( Perf.Topdown.counter_name b,
                           Json.Int (Perf.Topdown.cycles_of stack b) ))
                       Perf.Topdown.all
                    @ List.map
                        (fun l1 ->
                          ( "frac_" ^ Perf.Topdown.level1_name l1,
                            Json.Num (Perf.Topdown.level1_frac stack l1) ))
                        Perf.Topdown.level1_all))))
    stacks;
  record
    [
      ("experiment", Json.Str "topdown");
      ("group", Json.Str "summary");
      ("workloads", Json.Int (List.length workloads));
      ("stacks_ok", Json.Int !ok);
      ("invariant_holds", Json.Bool (!ok = List.length workloads));
    ];
  if !ok = List.length workloads then
    Printf.printf
      "all %d stacks sum to their measured cycle counts, bucket for bucket\n"
      !ok

(* ---------------------------------------------------------------- *)
(* Cycle-model throughput: kilocycles of Soc.tick per wall-second.   *)
(* The A/B instrument for DUT-stepping refactors (EXPERIMENTS.md).   *)
(* ---------------------------------------------------------------- *)

let bench_simspeed () =
  section "Cycle-model throughput (kilocycles of Soc.tick per wall-second)";
  (* force the host-header calibration so --json carries simspeed_kcps *)
  ignore (Lazy.force simspeed_calibration : float);
  let workloads =
    if !campaign_smoke then
      List.map Minjie.Campaign.find_workload topdown_smoke_workloads
    else Workloads.Suite.all
  in
  (* sequential and in-process on purpose: per-run wall clock IS the
     measurement, so fork/pipe scheduling noise must stay out of it *)
  Printf.printf "%-16s %12s %9s %12s\n" "workload" "cycles" "seconds"
    "kcycles/s";
  let kcps_all =
    List.map
      (fun (w : Workloads.Wl_common.t) ->
        let prog = w.Workloads.Wl_common.program ~scale:(wl_scale w) in
        let soc = Xiangshan.Soc.create Xiangshan.Config.yqh in
        Xiangshan.Soc.load_program soc prog;
        let cycles, secs =
          time (fun () -> Xiangshan.Soc.run ~max_cycles:400_000_000 soc)
        in
        let kcps = float_of_int cycles /. 1000.0 /. Float.max 1e-9 secs in
        Printf.printf "%-16s %12d %9.3f %12.1f\n" w.Workloads.Wl_common.wl_name
          cycles secs kcps;
        record
          [
            ("experiment", Json.Str "simspeed");
            ("group", Json.Str "run");
            ("workload", Json.Str w.Workloads.Wl_common.wl_name);
            ("cycles", Json.Int cycles);
            ("seconds", Json.Num secs);
            ("kcps", Json.Num kcps);
          ];
        kcps)
      workloads
  in
  let g = geomean kcps_all in
  Printf.printf "%-16s %12s %9s %12.1f  (geomean)\n" "geomean" "" "" g;
  record
    [
      ("experiment", Json.Str "simspeed");
      ("group", Json.Str "summary");
      ("workloads", Json.Int (List.length workloads));
      ("geomean_kcps", Json.Num g);
    ]

(* ---------------------------------------------------------------- *)
(* Serve: the persistent warm-state service.  Cold-vs-warm latency   *)
(* per job class -- with every served reply asserted byte-identical  *)
(* to the cold-start execution path -- and sustained jobs/sec under  *)
(* a two-client mixed load.                                          *)
(* ---------------------------------------------------------------- *)

let bench_serve () =
  section "Serve: warm-state service latency and throughput";
  let sock =
    Printf.sprintf "%s/minjie_bench_serve_%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ())
  in
  (try Sys.remove sock with Sys_error _ -> ());
  (* the server and its pool workers inherit this buffer on fork;
     flush so nothing in it can be re-emitted by a child's exit *)
  flush stdout;
  let pid = Unix.fork () in
  if pid = 0 then begin
    let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 null Unix.stderr;
    let cfg =
      {
        (Serve.Server.default_config ~socket_path:sock) with
        jobs = effective_jobs ();
        queue_depth = 512;
        batch_max = 8;
        quiet = true;
      }
    in
    Unix._exit (try Serve.Server.serve cfg with _ -> 10)
  end;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      try Sys.remove sock with Sys_error _ -> ())
  @@ fun () ->
  if not (Serve.Client.wait_ready ~timeout:30.0 sock) then begin
    campaign_failed := true;
    Printf.printf "SERVE FAILED: server never answered a ping\n"
  end
  else begin
    (* one spec per job class; distinct workloads so each class's
       first submit is genuinely cold at the server (run and topdown
       share a warm key ("prog:<wl>") when given the same workload) *)
    let blocks = if !big then 120_000 else 30_000 in
    let classes =
      [
        ( "engine",
          Serve.Proto.Engine
            {
              en_workload = Printf.sprintf "testgen:5:%d:16" blocks;
              en_max_insns = 100_000_000;
            },
          true );
        ( "checkpoint",
          Serve.Proto.Checkpoint
            {
              ck_workload = Printf.sprintf "testgen:3:%d:16" blocks;
              ck_config = "YQH";
              ck_interval = 100_000;
              ck_max_k = 3;
              ck_warmup = 200;
              ck_measure = 600;
            },
          true );
        ( "run",
          Serve.Proto.Run
            {
              rn_workload = "coremark_like";
              rn_config = "YQH";
              rn_max_cycles = 200_000;
              rn_ref = "iss";
            },
          false );
        ( "topdown",
          Serve.Proto.Topdown
            {
              td_workload = "sjeng_like";
              td_config = "YQH";
              td_max_cycles = 200_000;
            },
          false );
      ]
    in
    let result_of = function
      | Serve.Proto.Result r -> Some (r.r_warm, r.r_result)
      | _ -> None
    in
    let c = Serve.Client.connect sock in
    Printf.printf "%-12s %9s %9s %9s  %-5s %s\n" "class" "cold(s)" "warm(s)"
      "speedup" "warm?" "bytes-vs-cold";
    List.iter
      (fun (name, spec, must_2x) ->
        (* the reference: the same spec through the cold-start path,
           in this process, against a throwaway cache *)
        let cold_ref = Marshal.to_string (Serve.Server.exec_cold spec) [] in
        let reply0, t_cold = time (fun () -> Serve.Client.submit c spec) in
        let warm3 =
          List.init 3 (fun _ -> time (fun () -> Serve.Client.submit c spec))
        in
        let t_warm =
          match List.sort compare (List.map snd warm3) with
          | [ _; m; _ ] -> m
          | _ -> assert false
        in
        let replies = reply0 :: List.map fst warm3 in
        let results = List.filter_map result_of replies in
        let ok_count = List.length results = 4 in
        let identical =
          ok_count
          && List.for_all
               (fun (_, r) -> Marshal.to_string r [] = cold_ref)
               results
        in
        let warm_flag =
          match List.rev results with (w, _) :: _ -> w | [] -> false
        in
        let speedup = t_cold /. max 1e-9 t_warm in
        Printf.printf "%-12s %9.3f %9.3f %8.1fx  %-5b %s\n%!" name t_cold
          t_warm speedup warm_flag
          (if identical then "identical" else "DIVERGED");
        record
          [
            ("experiment", Json.Str "serve");
            ("group", Json.Str "latency");
            ("class", Json.Str name);
            ("cold_seconds", Json.Num t_cold);
            ("warm_seconds_median3", Json.Num t_warm);
            ("warm_speedup", Json.Num speedup);
            ("warm_flag", Json.Bool warm_flag);
            ("byte_identical_to_cold", Json.Bool identical);
            ("warm_2x_required", Json.Bool must_2x);
          ];
        if not identical then begin
          campaign_failed := true;
          Printf.printf "SERVE FAILED: %s served result diverged from cold\n"
            name
        end;
        if must_2x && speedup < 2.0 then begin
          campaign_failed := true;
          Printf.printf
            "SERVE FAILED: %s warm speedup %.2fx below the 2x floor\n" name
            speedup
        end)
      classes;
    (* sustained throughput: two clients flood a mixed engine+run
       load without waiting, then drain all replies *)
    let per_client = if !campaign_smoke then 4 else 10 in
    let tiny_engine =
      Serve.Proto.Engine
        { en_workload = "testgen:7:400:12"; en_max_insns = 1_000_000 }
    in
    let tiny_run =
      Serve.Proto.Run
        {
          rn_workload = "coremark_like";
          rn_config = "YQH";
          rn_max_cycles = 20_000;
          rn_ref = "iss";
        }
    in
    let a = Serve.Client.connect sock in
    let b = Serve.Client.connect sock in
    let (), wall =
      time (fun () ->
          for i = 1 to per_client do
            Serve.Client.submit_nowait a
              (if i mod 2 = 0 then tiny_engine else tiny_run);
            Serve.Client.submit_nowait b
              (if i mod 2 = 0 then tiny_run else tiny_engine)
          done;
          for _ = 1 to per_client do
            ignore (Serve.Client.read_reply a);
            ignore (Serve.Client.read_reply b)
          done)
    in
    let total = 2 * per_client in
    let jps = float_of_int total /. max 1e-9 wall in
    Printf.printf
      "\nsustained: %d mixed jobs from 2 clients in %.2f s = %.1f jobs/s\n"
      total wall jps;
    record
      [
        ("experiment", Json.Str "serve");
        ("group", Json.Str "throughput");
        ("clients", Json.Int 2);
        ("jobs", Json.Int total);
        ("seconds", Json.Num wall);
        ("jobs_per_sec", Json.Num jps);
      ];
    Serve.Client.close a;
    Serve.Client.close b;
    (match Serve.Client.request c Serve.Proto.Shutdown with
    | Serve.Proto.Shutting_down -> ()
    | _ ->
        campaign_failed := true;
        Printf.printf "SERVE FAILED: shutdown not acknowledged\n");
    Serve.Client.close c
  end

(* ---------------------------------------------------------------- *)

let all_benches =
  [
    ("table1", bench_table1, "snapshot schemes and their costs (Table I)");
    ("fig6", bench_fig6, "simulation time vs LightSSS snapshot interval");
    ("fig8", bench_fig8, "interpreter performance in MIPS, best of N reps");
    ( "checkpoints",
      bench_checkpoints,
      "NEMU+SimPoint checkpoint generation and restore (§III-D3)" );
    ("table2", bench_table2, "tape-out micro-architecture parameters");
    ("fig12", bench_fig12, "SPEC-like scores across platforms");
    ("fig14", bench_fig14, "PUBS IPC difference on sjeng checkpoints");
    ("fig15", bench_fig15, "ready-instruction distribution");
    ("ablation", bench_ablation, "NH feature knobs and drain/BPU sweeps");
    ( "campaign",
      bench_campaign,
      "fault-injection campaign (honours --smoke/--seed/--ref/--jobs)" );
    ( "fuzz",
      bench_fuzz,
      "coverage-guided fuzz campaign (honours \
       --smoke/--seed/--ref/--jobs/--journal/--resume)" );
    ( "chaos",
      bench_chaos,
      "host-chaos suite: campaign verdict identity under injected host \
       faults" );
    ("cosim", bench_cosim, "co-simulation throughput, ISS REF vs NEMU REF");
    ( "parallel",
      bench_parallel,
      "pool scaling: campaign + sampled simulation + dispatch A/B" );
    ( "serve",
      bench_serve,
      "warm-state service: cold-vs-warm latency per job class, jobs/sec" );
    ( "topdown",
      bench_topdown,
      "top-down CPI stacks per workload (honours --smoke/--jobs)" );
    ( "simspeed",
      bench_simspeed,
      "cycle-model throughput in kilocycles/s (honours --smoke)" );
  ]

let usage oc =
  output_string oc
    "usage: bench/main.exe <experiment>... [flags]\n\nexperiments:\n";
  List.iter
    (fun (n, _, descr) -> Printf.fprintf oc "  %-12s %s\n" n descr)
    all_benches;
  output_string oc "  all          every experiment above, in order\n";
  output_string oc
    "\n\
     flags:\n\
    \  --big         full workload scales (slow; default: scaled down)\n\
    \  --json FILE   write one machine-readable record per measurement \
     (atomic)\n\
    \  --jobs N      worker processes for pooled fan-outs (default: \
     MINJIE_JOBS, else 1)\n\
    \  --seed N      campaign base seed (default 1)\n\
    \  --smoke       campaign/parallel: 3-fault subset, 1 seed, fewer \
     worker counts\n\
    \  --ref REF     campaign REF backend: iss|nemu (default: MINJIE_REF, \
     else iss)\n\
    \  --perf        campaign: attach pipeline tracers (verdicts must be \
     identical)\n\
    \  --journal F   campaign: journal completed cells to F (checksummed, \
     fsynced)\n\
    \  --resume      campaign: replay a matching journal, recompute only \
     the rest\n\
    \                (default: MINJIE_RESUME; implies --journal at a \
     default path)\n\
    \  --retries N   supervised retry budget per failed cell (default: \
     MINJIE_RETRIES, else 0)\n\
    \  --help        this listing\n"

let () =
  (* SIGINT/SIGTERM: kill and reap every pool worker, run registered
     cleanups (journal close), exit 130/143 -- no orphans, no torn
     files *)
  Minjie.Supervisor.install_signal_handlers ();
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse acc = function
    | [] -> List.rev acc
    | ("--help" | "-h") :: _ ->
        usage stdout;
        exit 0
    | "--big" :: rest ->
        big := true;
        parse acc rest
    | "--json" :: file :: rest ->
        json_file := Some file;
        parse acc rest
    | [ "--json" ] ->
        Printf.eprintf "--json requires a file argument\n";
        exit 2
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs_opt := Some n;
            parse acc rest
        | _ ->
            Printf.eprintf "--jobs requires a positive integer argument\n";
            exit 2)
    | [ "--jobs" ] ->
        Printf.eprintf "--jobs requires a positive integer argument\n";
        exit 2
    | "--seed" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n ->
            campaign_seed := n;
            parse acc rest
        | None ->
            Printf.eprintf "--seed requires an integer argument\n";
            exit 2)
    | [ "--seed" ] ->
        Printf.eprintf "--seed requires an integer argument\n";
        exit 2
    | "--smoke" :: rest ->
        campaign_smoke := true;
        parse acc rest
    | "--resume" :: rest ->
        campaign_resume := true;
        parse acc rest
    | "--journal" :: file :: rest ->
        campaign_journal := Some file;
        parse acc rest
    | [ "--journal" ] ->
        Printf.eprintf "--journal requires a file argument\n";
        exit 2
    | "--retries" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 0 ->
            campaign_retries := Some n;
            parse acc rest
        | _ ->
            Printf.eprintf "--retries requires a non-negative integer\n";
            exit 2)
    | [ "--retries" ] ->
        Printf.eprintf "--retries requires a non-negative integer\n";
        exit 2
    | "--perf" :: rest ->
        campaign_perf := true;
        parse acc rest
    | "--ref" :: k :: rest -> (
        match Minjie.Ref_model.kind_of_string k with
        | Some kind ->
            campaign_ref := Some kind;
            parse acc rest
        | None ->
            Printf.eprintf "--ref wants iss or nemu, got %s\n" k;
            exit 2)
    | [ "--ref" ] ->
        Printf.eprintf "--ref requires an argument (iss|nemu)\n";
        exit 2
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] args in
  let selected =
    match args with
    | [] ->
        (* no experiment named: print the listing rather than silently
           running for hours *)
        usage stdout;
        exit 0
    | [ "all" ] -> List.map (fun (n, f, _) -> (n, f)) all_benches
    | names ->
        List.map
          (fun n ->
            match
              List.find_opt (fun (n', _, _) -> n' = n) all_benches
            with
            | Some (n, f, _) -> (n, f)
            | None ->
                Printf.eprintf "unknown experiment %S\n\n" n;
                usage stderr;
                exit 2)
          names
  in
  List.iter (fun (_, f) -> f ()) selected;
  write_json ();
  if !campaign_failed then exit 1
