(* minjie: command-line driver for the platform.

     minjie list                         workloads and configurations
     minjie run sjeng_like --config nh   run under DiffTest verification
     minjie engines mcf_like             compare the four interpreters
     minjie checkpoint coremark_like     NEMU+SimPoint sampled evaluation
     minjie debug --inject l2-race       the §IV-C debugging workflow *)

open Cmdliner

let configs =
  List.map
    (fun (c : Xiangshan.Config.t) -> (String.lowercase_ascii c.cfg_name, c))
    Xiangshan.Config.all_presets

let config_conv =
  Arg.enum (("yqh", Xiangshan.Config.yqh) :: ("nh", Xiangshan.Config.nh) :: configs)

let all_workloads () =
  Workloads.Suite.all @ Workloads.Suite.llc_stress @ Workloads.Suite.system
  @ Workloads.Suite.smp

let find_workload name =
  match
    List.find_opt (fun w -> w.Workloads.Wl_common.wl_name = name) (all_workloads ())
  with
  | Some w -> w
  | None ->
      Printf.eprintf "unknown workload %s; try `minjie list`\n" name;
      exit 2

let workload_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let config_arg =
  Arg.(
    value
    & opt config_conv Xiangshan.Config.yqh
    & info [ "config"; "c" ] ~docv:"CONFIG" ~doc:"Micro-architecture preset.")

let scale_arg =
  Arg.(
    value & opt (some int) None
    & info [ "scale"; "s" ] ~docv:"N" ~doc:"Workload scale (default: small).")

let max_cycles_arg =
  Arg.(
    value & opt int 200_000_000
    & info [ "max-cycles" ] ~docv:"N" ~doc:"Cycle budget.")

(* ---- list ------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Printf.printf "workloads:\n";
    List.iter
      (fun (w : Workloads.Wl_common.t) ->
        Printf.printf "  %-16s %-4s mimics %s\n" w.wl_name
          (match w.group with `Int -> "int" | `Fp -> "fp")
          w.mimics)
      (all_workloads ());
    Printf.printf "\nconfigurations:\n";
    List.iter
      (fun (c : Xiangshan.Config.t) ->
        Printf.printf "  %-26s %d core(s), L2 %dKB, L3 %dKB, %s\n" c.cfg_name
          c.n_cores c.l2_kb c.l3_kb
          (Xiangshan.Config.show_dram_model c.dram))
      Xiangshan.Config.all_presets
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads and configurations.")
    Term.(const run $ const ())

(* ---- run (DiffTest-verified simulation) ------------------------------- *)

let run_cmd =
  let run name cfg scale max_cycles no_difftest perf pipetrace =
    let w = find_workload name in
    let scale = Option.value scale ~default:w.Workloads.Wl_common.small in
    let prog = w.Workloads.Wl_common.program ~scale in
    let cfg =
      if List.mem w (Workloads.Suite.smp) && cfg.Xiangshan.Config.n_cores < 2
      then Xiangshan.Config.nh
      else cfg
    in
    let soc = Xiangshan.Soc.create cfg in
    Xiangshan.Soc.load_program soc prog;
    let tracers =
      match pipetrace with
      | Some _ -> Some (Xiangshan.Soc.attach_tracers soc)
      | None -> None
    in
    let t0 = Unix.gettimeofday () in
    let outcome =
      if no_difftest then begin
        let _ = Xiangshan.Soc.run ~max_cycles soc in
        match Xiangshan.Soc.exit_code soc with
        | Some c -> `Finished c
        | None -> `Timeout
      end
      else begin
        let dt = Minjie.Difftest.create ~prog soc in
        match Minjie.Difftest.run ~max_cycles dt with
        | Minjie.Difftest.Finished c -> `Finished c
        | Minjie.Difftest.Failed f -> `Failed f
        | Minjie.Difftest.Running -> `Timeout
      end
    in
    let secs = Unix.gettimeofday () -. t0 in
    (match outcome with
    | `Finished c -> Printf.printf "exit code %d\n" c
    | `Failed (f : Minjie.Rule.failure) ->
        Printf.printf "DIFFTEST FAILURE at cycle %d (rule %s): %s\n"
          f.Minjie.Rule.f_cycle f.Minjie.Rule.f_rule f.Minjie.Rule.f_msg
    | `Timeout -> Printf.printf "cycle budget exhausted\n");
    Array.iteri
      (fun i (core : Xiangshan.Core.t) ->
        let p = core.Xiangshan.Core.perf in
        Printf.printf
          "hart %d: %d instrs / %d cycles = IPC %.3f | MPKI %.1f | fused %d \
           | moves elim. %d | traps %d | interrupts %d\n"
          i p.Xiangshan.Core.p_instrs p.Xiangshan.Core.p_cycles
          (Xiangshan.Core.ipc core)
          (Xiangshan.Bpu.mpki core.Xiangshan.Core.bpu
             ~instructions:p.Xiangshan.Core.p_instrs)
          p.Xiangshan.Core.p_fused p.Xiangshan.Core.p_moves_eliminated
          p.Xiangshan.Core.p_traps p.Xiangshan.Core.p_interrupts)
      soc.Xiangshan.Soc.cores;
    Printf.printf "simulated %d cycles in %.2fs (%.0f kHz)\n"
      soc.Xiangshan.Soc.now secs
      (float_of_int soc.Xiangshan.Soc.now /. secs /. 1e3);
    if perf then
      Array.iteri
        (fun i (core : Xiangshan.Core.t) ->
          let counters = Xiangshan.Core.counter_snapshot core in
          Printf.printf "\nhart %d performance counters:\n" i;
          List.iter
            (fun (n, v) -> Printf.printf "  %-28s %12d\n" n v)
            counters;
          print_newline ();
          match Perf.Topdown.of_counters counters with
          | Error msg -> Printf.printf "top-down stack unavailable: %s\n" msg
          | Ok stack -> (
              match Perf.Topdown.check stack with
              | Error msg ->
                  Printf.printf "TOPDOWN INVARIANT VIOLATED: %s\n" msg
              | Ok () ->
                  print_string
                    (Perf.Topdown.render
                       ~label:(Printf.sprintf "hart %d" i)
                       stack)))
        soc.Xiangshan.Soc.cores;
    match (pipetrace, tracers) with
    | Some file, Some trs when Array.length trs > 0 ->
        let tr = trs.(0) in
        let oc = open_out file in
        output_string oc (Perf.Pipetrace.to_konata tr);
        close_out oc;
        Printf.printf
          "pipeline trace: %d uops recorded (last %d kept) -> %s (Konata \
           format)\n"
          (Perf.Pipetrace.recorded tr)
          (Perf.Pipetrace.live tr)
          file
    | _ -> ()
  in
  let no_difftest =
    Arg.(value & flag & info [ "no-difftest" ] ~doc:"Run without the REF.")
  in
  let perf =
    Arg.(
      value & flag
      & info [ "perf" ]
          ~doc:
            "Print the full per-hart performance-counter table and the \
             top-down CPI stack after the run.")
  in
  let pipetrace =
    Arg.(
      value
      & opt (some string) None
      & info [ "pipetrace" ] ~docv:"FILE"
          ~doc:
            "Record per-uop pipeline lifecycles in a ring buffer and write \
             the trace window to $(docv) in Konata format.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload on the cycle-level model under \
                          DiffTest.")
    Term.(
      const run $ workload_arg $ config_arg $ scale_arg $ max_cycles_arg
      $ no_difftest $ perf $ pipetrace)

(* ---- engines ----------------------------------------------------------- *)

let engines_cmd =
  let run name scale =
    let w = find_workload name in
    let scale = Option.value scale ~default:w.Workloads.Wl_common.small in
    let prog = w.Workloads.Wl_common.program ~scale in
    List.iter
      (fun kind ->
        let n, secs = Nemu.Engine.run_program kind prog in
        Printf.printf "%-14s %10d instrs in %6.2fs = %8.1f MIPS\n"
          (Nemu.Engine.name kind) n secs (Nemu.Engine.mips n secs))
      Nemu.Engine.all
  in
  Cmd.v
    (Cmd.info "engines" ~doc:"Compare the interpreter engines (Figure 8).")
    Term.(const run $ workload_arg $ scale_arg)

(* ---- checkpoint --------------------------------------------------------- *)

let checkpoint_cmd =
  let run name scale cfg interval k jobs =
    let w = find_workload name in
    let scale = Option.value scale ~default:w.Workloads.Wl_common.small in
    let prog = w.Workloads.Wl_common.program ~scale in
    let ipc, results, stats =
      Checkpoint.Sampled.estimate ~interval ~max_k:k ?jobs cfg prog
    in
    Printf.printf
      "%d instructions profiled, %d intervals, %d checkpoints (%.1f MIPS)\n"
      stats.gen_instructions stats.gen_intervals stats.gen_selected
      (float_of_int stats.gen_instructions /. stats.gen_seconds /. 1e6);
    List.iter
      (fun (r : Checkpoint.Sampled.sample_result) ->
        Printf.printf "  checkpoint @%-4d weight %.2f ipc %.3f\n" r.sr_index
          r.sr_weight r.sr_ipc)
      results;
    Printf.printf "weighted IPC estimate on %s: %.3f\n"
      cfg.Xiangshan.Config.cfg_name ipc
  in
  let interval =
    Arg.(value & opt int 50_000 & info [ "interval" ] ~docv:"N")
  in
  let k = Arg.(value & opt int 8 & info [ "clusters"; "k" ] ~docv:"K") in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Simulate samples across $(docv) forked pool workers (default: \
             MINJIE_JOBS, else 1).")
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:"Sampled performance evaluation with NEMU + SimPoint (§III-D3).")
    Term.(
      const run $ workload_arg $ scale_arg $ config_arg $ interval $ k $ jobs)

(* ---- campaign (crash-safe fault-injection runs) -------------------------- *)

let campaign_cmd =
  let run seed smoke jobs ref_kind journal resume retries chaos chaos_seed =
    let smoke_faults =
      [ "csr-mtvec-corrupt"; "rob-commit-reorder"; "lsu-sb-drop" ]
    in
    let faults = if smoke then Some smoke_faults else None in
    let seeds = if smoke then [ seed ] else [ seed; seed + 1 ] in
    let resume = resume || Minjie.Journal.env_resume () in
    let journal =
      match journal with
      | Some _ as j -> j
      | None -> if resume then Some "minjie-campaign.journal" else None
    in
    (match chaos with
    | [] -> (
        (* MINJIE_CHAOS can arm a plan even without the flag *)
        match Minjie.Host_chaos.env_plan () with
        | Some (s, classes) -> Minjie.Host_chaos.arm ~seed:s classes
        | None -> ())
    | names ->
        let classes =
          List.concat_map
            (fun n ->
              if n = "all" then Minjie.Host_chaos.all_classes
              else
                match Minjie.Host_chaos.class_of_string n with
                | Some c -> [ c ]
                | None ->
                    Printf.eprintf
                      "unknown chaos class %s (worker-kill | eintr | \
                       short-write | slow-worker | journal-enospc | all)\n"
                      n;
                    exit 2)
            names
        in
        Minjie.Host_chaos.arm ~seed:chaos_seed classes);
    let s =
      Minjie.Campaign.run ?faults ~seeds ?ref_kind ?jobs ?journal ~resume
        ?retries
        ~progress:(fun c ->
          Printf.printf "  %s\n%!" (Minjie.Campaign.string_of_cell c))
        ()
    in
    Minjie.Host_chaos.disarm ();
    Printf.printf
      "\n\
       campaign: %d cells, %d detected, %d escapes, %d rule mismatches, %d \
       replay misses\n"
      s.Minjie.Campaign.total s.Minjie.Campaign.detected
      s.Minjie.Campaign.escapes s.Minjie.Campaign.rule_mismatches
      s.Minjie.Campaign.replay_misses;
    if s.Minjie.Campaign.resumed > 0 || s.Minjie.Campaign.retried > 0 then
      Printf.printf
        "(journal: %d cell(s) resumed, %d supervised re-run(s), %d \
         recovered)\n"
        s.Minjie.Campaign.resumed s.Minjie.Campaign.retried
        s.Minjie.Campaign.recovered;
    if
      s.Minjie.Campaign.escapes > 0
      || s.Minjie.Campaign.rule_mismatches > 0
      || s.Minjie.Campaign.replay_misses > 0
    then exit 1
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Base seed.")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"3-fault subset, one seed (CI-sized grid).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Run cells across $(docv) forked pool workers (default: \
             MINJIE_JOBS, else 1).")
  in
  let ref_kind =
    let ref_conv =
      Arg.enum [ ("iss", Minjie.Ref_model.Iss); ("nemu", Minjie.Ref_model.Nemu) ]
    in
    Arg.(
      value
      & opt (some ref_conv) None
      & info [ "ref" ] ~docv:"REF"
          ~doc:"REF backend (default: MINJIE_REF, else iss).")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Journal completed cells to $(docv) (checksummed, fsynced \
             append-only log).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay a matching journal and recompute only the missing \
             cells; output is byte-identical to an uninterrupted run \
             (default: MINJIE_RESUME).")
  in
  let retries =
    Arg.(
      value
      & opt (some int) None
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Supervised retry budget per failed cell (default: \
             MINJIE_RETRIES, else 0).")
  in
  let chaos =
    Arg.(
      value
      & opt_all string []
      & info [ "chaos" ] ~docv:"CLASS"
          ~doc:
            "Arm a host-chaos class (worker-kill, eintr, short-write, \
             slow-worker, journal-enospc, or all); repeatable.")
  in
  let chaos_seed =
    Arg.(
      value & opt int 1
      & info [ "chaos-seed" ] ~docv:"N" ~doc:"Chaos schedule seed.")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run the fault-injection campaign with crash-safe journaling, \
          resume, supervised retries, and optional host-chaos injection.")
    Term.(
      const run $ seed $ smoke $ jobs $ ref_kind $ journal $ resume $ retries
      $ chaos $ chaos_seed)

(* ---- fuzz (coverage-guided campaign) ------------------------------------ *)

let fuzz_cmd =
  let run seed rounds cands smoke jobs ref_kind journal resume retries corpus
      fault =
    let resume = resume || Minjie.Journal.env_resume () in
    let journal =
      match journal with
      | Some _ as j -> j
      | None -> if resume then Some "minjie-fuzz.journal" else None
    in
    let base = if smoke then Fuzz.smoke else Fuzz.default in
    let p =
      {
        base with
        Fuzz.fz_seed = seed;
        fz_rounds = Option.value rounds ~default:base.Fuzz.fz_rounds;
        fz_cands = Option.value cands ~default:base.Fuzz.fz_cands;
        fz_refs =
          (match ref_kind with
          | Some k -> [ k ]
          | None -> base.Fuzz.fz_refs);
        fz_fault = fault;
      }
    in
    let s =
      Fuzz.run ~p ?jobs ?journal ~resume ?retries ?corpus_path:corpus
        ~progress:(fun e -> Printf.printf "  %s\n%!" (Fuzz.string_of_exec e))
        ()
    in
    Printf.printf "\n";
    List.iter
      (fun r -> Printf.printf "%s\n" (Fuzz.string_of_round r))
      s.Fuzz.fz_round_stats;
    Printf.printf
      "\nfuzz: %d exec(s), %d coverage point(s) over %d cell(s), corpus %d, \
       %d mismatch(es)\n"
      (List.length s.Fuzz.fz_execs)
      s.Fuzz.fz_points s.Fuzz.fz_cells s.Fuzz.fz_corpus s.Fuzz.fz_mismatches;
    if s.Fuzz.fz_resumed > 0 || s.Fuzz.fz_retried > 0 then
      Printf.printf
        "(journal: %d exec(s) resumed, %d supervised re-run(s), %d recovered)\n"
        s.Fuzz.fz_resumed s.Fuzz.fz_retried s.Fuzz.fz_recovered;
    let replay_missed =
      List.exists
        (fun e -> Fuzz.is_mismatch e && not e.Fuzz.x_replayed)
        s.Fuzz.fz_execs
    in
    let pool_failed =
      List.exists (fun e -> e.Fuzz.x_exit = -2) s.Fuzz.fz_execs
    in
    if replay_missed || pool_failed then exit 1
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.")
  in
  let rounds =
    Arg.(
      value
      & opt (some int) None
      & info [ "rounds" ] ~docv:"N" ~doc:"Fuzz rounds (default 6; smoke 2).")
  in
  let cands =
    Arg.(
      value
      & opt (some int) None
      & info [ "cands" ] ~docv:"N"
          ~doc:"Candidates per round (default 6; smoke 3).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"CI-sized campaign: 2 rounds x 3 candidates on YQH + NH.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Run candidates across $(docv) forked pool workers (default: \
             MINJIE_JOBS, else 1).")
  in
  let ref_kind =
    let ref_conv =
      Arg.enum [ ("iss", Minjie.Ref_model.Iss); ("nemu", Minjie.Ref_model.Nemu) ]
    in
    Arg.(
      value
      & opt (some ref_conv) None
      & info [ "ref" ] ~docv:"REF"
          ~doc:"Restrict to one REF backend (default: both).")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Journal completed candidate executions to $(docv).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay a matching journal and run only the missing candidates; \
             output is byte-identical to an uninterrupted run (default: \
             MINJIE_RESUME).")
  in
  let retries =
    Arg.(
      value
      & opt (some int) None
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Supervised retry budget per failed candidate (default: \
             MINJIE_RETRIES, else 0).")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"FILE"
          ~doc:"Persist the final corpus to $(docv) (atomic write).")
  in
  let fault =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"NAME"
          ~doc:
            "Plant this fault-registry model in every run (mismatch finds \
             then reproduce through the LightSSS replay).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Run the coverage-guided fuzz campaign: rounds of mutate, run, \
          coverage-merge, corpus-update over both REF backends and \
          1/2/4-hart configs, with crash-safe journaling and resume.")
    Term.(
      const run $ seed $ rounds $ cands $ smoke $ jobs $ ref_kind $ journal
      $ resume $ retries $ corpus $ fault)

(* ---- debug (the §IV-C workflow) ----------------------------------------- *)

let debug_cmd =
  let run inject =
    let prog = Workloads.Smp.lrsc_contend ~scale:8 in
    let inject_fn soc =
      match inject with
      | Some "l2-race" -> Xiangshan.Soc.inject_l2_race_bug soc ~core:0
      | Some "skip-probe" -> Xiangshan.Soc.inject_skip_probe_bug soc
      | Some other ->
          Printf.eprintf "unknown fault %s (l2-race | skip-probe)\n" other;
          exit 2
      | None -> ()
    in
    match
      Minjie.Workflow.run_verified ~prog ~inject:inject_fn Xiangshan.Config.nh
    with
    | Minjie.Workflow.Verified code -> Printf.printf "verified; exit %d\n" code
    | Minjie.Workflow.Debugged r ->
        Printf.printf "failure: %s (rule %s) at cycle %d\n"
          r.first_failure.f_msg r.first_failure.f_rule r.first_failure.f_cycle;
        Printf.printf "replayed %d cycles from cycle %d; reproduced: %b\n"
          r.replay_cycles r.replay_from_cycle
          (r.replay_failure <> None);
        Format.printf "%a@." Minjie.Archdb.pp_summary r.db;
        List.iteri
          (fun i (o : Minjie.Archdb.overlap) ->
            if i < 6 then
              Printf.printf "overlap: block 0x%Lx %s acquire@%d probe@%d\n"
                o.ov_addr o.ov_node o.ov_acquire_cycle o.ov_probe_cycle)
          r.overlaps
  in
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"FAULT" ~doc:"Inject l2-race or skip-probe.")
  in
  Cmd.v
    (Cmd.info "debug"
       ~doc:"Run the DiffTest + LightSSS + ArchDB workflow (§IV-C).")
    Term.(const run $ inject)

(* ---- serve (persistent warm-state simulation service) ------------------ *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket path.")

let serve_cmd =
  let run socket jobs depth batch journal resume quiet =
    let cfg =
      {
        Serve.Server.socket_path = socket;
        jobs;
        queue_depth = depth;
        batch_max = (match batch with Some b -> max 1 b | None -> max 2 (2 * jobs));
        journal_path = journal;
        resume;
        quiet;
      }
    in
    exit (Serve.Server.serve cfg)
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Pool workers for job batches.")
  in
  let depth =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Max queued jobs before clients get Busy.")
  in
  let batch =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch" ] ~docv:"N"
          ~doc:"Max jobs dispatched per loop round (default 2*jobs).")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Crash-safe job accounting journal.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Re-run journaled jobs the previous server never finished.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress per-job logs.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent simulation service: a Unix-socket job server \
          with resident warm state (assembled images, decoded superblock \
          caches, generated checkpoints), batching, backpressure, and \
          per-client fairness.")
    Term.(
      const run $ socket_arg $ jobs $ depth $ batch $ journal $ resume $ quiet)

(* ---- submit (serve client) --------------------------------------------- *)

let submit_cmd =
  let run klass socket cold workload config max_cycles max_insns interval max_k
      warmup measure faults seeds ref_kind duration tag retries fuzz_seed
      fuzz_rounds fuzz_cands =
    let split s = if s = "" then [] else String.split_on_char ',' s in
    let spec () : Serve.Proto.job_spec =
      match klass with
      | "run" ->
          Serve.Proto.Run
            {
              rn_workload = workload;
              rn_config = config;
              rn_max_cycles = max_cycles;
              rn_ref = ref_kind;
            }
      | "engine" ->
          Serve.Proto.Engine
            { en_workload = workload; en_max_insns = max_insns }
      | "checkpoint" ->
          Serve.Proto.Checkpoint
            {
              ck_workload = workload;
              ck_config = config;
              ck_interval = interval;
              ck_max_k = max_k;
              ck_warmup = warmup;
              ck_measure = measure;
            }
      | "campaign" ->
          Serve.Proto.Campaign
            {
              ca_faults = split faults;
              ca_seeds = List.map int_of_string (split seeds);
              ca_ref = ref_kind;
            }
      | "fuzz" ->
          Serve.Proto.Fuzz
            {
              fu_seed = fuzz_seed;
              fu_rounds = fuzz_rounds;
              fu_cands = fuzz_cands;
              (* "iss"/"nemu" restricts the grid; "both" (or "")
                 keeps the smoke campaign's two-backend rotation *)
              fu_ref = (if ref_kind = "both" then "" else ref_kind);
            }
      | "topdown" ->
          Serve.Proto.Topdown
            {
              td_workload = workload;
              td_config = config;
              td_max_cycles = max_cycles;
            }
      | "sleep" ->
          Serve.Proto.Sleep { sl_seconds = duration; sl_tag = tag }
      | other ->
          Printf.eprintf
            "unknown job class %s (run | engine | checkpoint | campaign | \
             fuzz | topdown | sleep | ping | stats | shutdown)\n"
            other;
          exit 2
    in
    let with_conn f =
      match socket with
      | None ->
          Printf.eprintf "submit: --socket is required (or use --cold)\n";
          exit 2
      | Some path -> (
          match Serve.Client.connect path with
          | c -> Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)
          | exception Unix.Unix_error (e, _, _) ->
              Printf.eprintf "submit: cannot connect to %s: %s\n" path
                (Unix.error_message e);
              exit 1)
    in
    match klass with
    | "ping" ->
        with_conn (fun c ->
            match Serve.Client.request c Serve.Proto.Ping with
            | Serve.Proto.Pong p ->
                Printf.printf "pong: %d pool worker(s), %d job(s) queued\n"
                  p.p_jobs p.p_queued
            | _ ->
                Printf.eprintf "unexpected reply to ping\n";
                exit 1)
    | "stats" ->
        with_conn (fun c ->
            match Serve.Client.request c Serve.Proto.Stats with
            | Serve.Proto.Stats_reply s ->
                Printf.printf
                  "jobs done %d | warm hits %d | misses %d | queued %d | \
                   clients %d\n"
                  s.st_jobs_done s.st_warm_hits s.st_warm_misses
                  s.st_queue_depth s.st_clients;
                List.iter
                  (fun (k, v) -> Printf.printf "  ewma %-32s %.4fs\n" k v)
                  s.st_ewma
            | _ ->
                Printf.eprintf "unexpected reply to stats\n";
                exit 1)
    | "shutdown" ->
        with_conn (fun c ->
            match Serve.Client.request c Serve.Proto.Shutdown with
            | Serve.Proto.Shutting_down -> Printf.printf "server shutting down\n"
            | _ ->
                Printf.eprintf "unexpected reply to shutdown\n";
                exit 1)
    | _ ->
        let spec = spec () in
        let finish (result : Serve.Proto.job_result) =
          print_string (Serve.Client.render_result result);
          match result with Serve.Proto.R_error _ -> exit 3 | _ -> exit 0
        in
        if cold then begin
          let t0 = Unix.gettimeofday () in
          let result = Serve.Server.exec_cold spec in
          Printf.eprintf "cold-start in %.3fs\n" (Unix.gettimeofday () -. t0);
          finish result
        end
        else
          with_conn (fun c ->
              let t0 = Unix.gettimeofday () in
              match Serve.Client.submit ~retries c spec with
              | Serve.Proto.Result r ->
                  Printf.eprintf "served job %d in %.3fs%s\n" r.r_id
                    (Unix.gettimeofday () -. t0)
                    (if r.r_warm then " [warm]" else "");
                  finish r.r_result
              | Serve.Proto.Busy b ->
                  Printf.eprintf "server busy (queue depth %d); try again\n"
                    b.b_depth;
                  exit 4
              | Serve.Proto.Shutting_down ->
                  Printf.eprintf "server is shutting down\n";
                  exit 4
              | Serve.Proto.Err msg ->
                  Printf.eprintf "protocol error: %s\n" msg;
                  exit 1
              | _ ->
                  Printf.eprintf "unexpected reply\n";
                  exit 1)
  in
  let klass =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CLASS")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Server socket path.")
  in
  let cold =
    Arg.(
      value & flag
      & info [ "cold" ]
          ~doc:
            "Execute in-process on the cold-start path instead of a server \
             (the byte-identity reference).")
  in
  let workload =
    Arg.(
      value & opt string "coremark_like"
      & info [ "workload"; "w" ] ~docv:"NAME"
          ~doc:
            "Workload name; engine jobs also accept \
             testgen:SEED:BLOCKS:BLOCKLEN.")
  in
  let config =
    Arg.(
      value & opt string "YQH"
      & info [ "config"; "c" ] ~docv:"NAME" ~doc:"Config preset name.")
  in
  let max_cycles =
    Arg.(
      value & opt int 400_000
      & info [ "max-cycles" ] ~docv:"N" ~doc:"Cycle budget (run/topdown).")
  in
  let max_insns =
    Arg.(
      value & opt int 50_000_000
      & info [ "max-insns" ] ~docv:"N" ~doc:"Instruction budget (engine).")
  in
  let interval =
    Arg.(
      value & opt int 20_000
      & info [ "interval" ] ~docv:"N" ~doc:"Checkpoint interval (insns).")
  in
  let max_k =
    Arg.(
      value & opt int 4
      & info [ "max-k" ] ~docv:"N" ~doc:"Max SimPoint clusters.")
  in
  let warmup =
    Arg.(
      value & opt int 5_000
      & info [ "warmup" ] ~docv:"N" ~doc:"Checkpoint warmup instructions.")
  in
  let measure =
    Arg.(
      value & opt int 10_000
      & info [ "measure" ] ~docv:"N" ~doc:"Checkpoint measured instructions.")
  in
  let faults =
    Arg.(
      value & opt string ""
      & info [ "faults" ] ~docv:"A,B,C"
          ~doc:"Campaign fault subset (empty = full registry).")
  in
  let seeds =
    Arg.(
      value & opt string "1"
      & info [ "seeds" ] ~docv:"1,2" ~doc:"Campaign seeds.")
  in
  let ref_kind =
    Arg.(
      value & opt string "iss"
      & info [ "ref" ] ~docv:"iss|nemu" ~doc:"REF backend.")
  in
  let duration =
    Arg.(
      value & opt float 0.5
      & info [ "duration" ] ~docv:"SECS" ~doc:"Sleep duration.")
  in
  let tag =
    Arg.(value & opt string "t" & info [ "tag" ] ~docv:"TAG" ~doc:"Sleep tag.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N" ~doc:"Retries on a Busy reply.")
  in
  let fuzz_seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Fuzz campaign seed.")
  in
  let fuzz_rounds =
    Arg.(
      value & opt int 2
      & info [ "rounds" ] ~docv:"N" ~doc:"Fuzz rounds (smoke-sized default).")
  in
  let fuzz_cands =
    Arg.(
      value & opt int 3
      & info [ "cands" ] ~docv:"N" ~doc:"Fuzz candidates per round.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a job to a running `minjie serve` (or execute it cold with \
          --cold).  CLASS is run | engine | checkpoint | campaign | fuzz | \
          topdown | sleep | ping | stats | shutdown.")
    Term.(
      const run $ klass $ socket $ cold $ workload $ config $ max_cycles
      $ max_insns $ interval $ max_k $ warmup $ measure $ faults $ seeds
      $ ref_kind $ duration $ tag $ retries $ fuzz_seed $ fuzz_rounds
      $ fuzz_cands)

let () =
  (* SIGINT/SIGTERM: kill and reap every pool worker, run registered
     cleanups, exit 130/143 -- no orphans, no torn files *)
  Minjie.Supervisor.install_signal_handlers ();
  let doc = "MINJIE: agile RISC-V processor development platform (OCaml)" in
  (* bare `minjie` (or `minjie --help`) prints the subcommand listing
     instead of exiting silently *)
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let cmd =
    Cmd.group ~default
      (Cmd.info "minjie" ~doc)
      [
        list_cmd;
        run_cmd;
        engines_cmd;
        checkpoint_cmd;
        campaign_cmd;
        fuzz_cmd;
        debug_cmd;
        serve_cmd;
        submit_cmd;
      ]
  in
  (* match the bench driver's convention: usage errors (unknown
     subcommand, bad flags) report on stderr -- which Cmdliner already
     does -- and exit 2, not Cmdliner's default 124 *)
  match Cmd.eval_value cmd with
  | Ok (`Ok ()) | Ok `Version | Ok `Help -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 125
