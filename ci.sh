#!/bin/sh
# CI entry point: build, run the full test suite, then a scaled-down
# benchmark smoke run that exercises the fig8 interpreter-performance
# harness end to end (including --json output, validated for
# well-formedness below).
set -eu

cd "$(dirname "$0")"

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== bench smoke (fig8, small scales) =="
dune exec bench/main.exe -- fig8 --json ci_bench.json
test -s ci_bench.json
grep -q '"experiment": "fig8"' ci_bench.json
# megablock A/B column, trace-compiler counters, host metadata
grep -q '"engine": "NEMU-nomb"' ci_bench.json
grep -q '"megablocks_built"' ci_bench.json
grep -q '"nemu_megablock_speedup"' ci_bench.json
grep -q '"nproc"' ci_bench.json
grep -q '"ocaml_version"' ci_bench.json

echo "== fig8 with MINJIE_MEGABLOCKS=0: architectural results must be identical =="
MINJIE_MEGABLOCKS=0 dune exec bench/main.exe -- fig8 --json ci_bench_nomb.json
test -s ci_bench_nomb.json
# timings differ run to run; the architectural outcome (instructions
# retired per workload/engine cell) must be byte-identical
grep '"insns"' ci_bench.json > ci_insns_on.txt
grep '"insns"' ci_bench_nomb.json > ci_insns_off.txt
diff ci_insns_on.txt ci_insns_off.txt
rm -f ci_bench.json ci_bench_nomb.json ci_insns_on.txt ci_insns_off.txt

echo "== pool tests (fork pool: ordering, crash isolation, timeouts) =="
dune exec test/main.exe -- test pool

echo "== campaign smoke (3-fault subset; exits non-zero on any escape) =="
dune exec bench/main.exe -- campaign --smoke --json ci_campaign.json
test -s ci_campaign.json
grep -q '"experiment": "campaign"' ci_campaign.json
grep -q '"group": "cell"' ci_campaign.json
grep -q '"group": "summary"' ci_campaign.json
grep -q '"escapes": 0' ci_campaign.json

echo "== campaign smoke under --jobs 2: per-cell verdicts must equal sequential =="
dune exec bench/main.exe -- campaign --smoke --jobs 2 --json ci_campaign_par.json
test -s ci_campaign_par.json
# every campaign record field is deterministic, so the whole JSON
# must be byte-identical to the sequential smoke's
diff ci_campaign.json ci_campaign_par.json

echo "== campaign smoke with --perf: counters/tracers are pure observation =="
dune exec bench/main.exe -- campaign --smoke --perf --json ci_campaign_perf.json
test -s ci_campaign_perf.json
# perf instrumentation must not perturb a single verdict field
diff ci_campaign.json ci_campaign_perf.json

echo "== campaign smoke under MINJIE_PHASE_ORDER=shuffle: phase-1 order cannot move a byte =="
MINJIE_PHASE_ORDER=shuffle:13 dune exec bench/main.exe -- campaign --smoke --json ci_campaign_perm.json
test -s ci_campaign_perm.json
diff ci_campaign.json ci_campaign_perm.json
rm -f ci_campaign.json ci_campaign_par.json ci_campaign_perf.json ci_campaign_perm.json

echo "== phase-order permutation smoke (two-phase purity: shuffled planners byte-identical) =="
dune exec bin/minjie_cli.exe -- run coremark_like --perf > ci_perm_default.txt
MINJIE_PHASE_ORDER=shuffle:42 dune exec bin/minjie_cli.exe -- run coremark_like --perf > ci_perm_shuffled.txt
# the "simulated ... in ...s" line carries host wall clock; every
# model-visible line (verdict, counters, CPI stack) must match exactly
grep -v '^simulated ' ci_perm_default.txt > ci_perm_default_model.txt
grep -v '^simulated ' ci_perm_shuffled.txt > ci_perm_shuffled_model.txt
diff ci_perm_default_model.txt ci_perm_shuffled_model.txt
rm -f ci_perm_default.txt ci_perm_shuffled.txt ci_perm_default_model.txt ci_perm_shuffled_model.txt

echo "== parallel-pool scaling smoke (verdict identity at every worker count) =="
dune exec bench/main.exe -- parallel --smoke --json ci_parallel.json
test -s ci_parallel.json
grep -q '"experiment": "parallel"' ci_parallel.json
grep -q '"verdicts_match_sequential": true' ci_parallel.json
grep -q '"results_match_sequential": true' ci_parallel.json
if grep -q '_match_sequential": false' ci_parallel.json; then
  echo "parallel smoke recorded a divergence"; exit 1
fi
rm -f ci_parallel.json

echo "== campaign smoke with the NEMU REF backend =="
MINJIE_REF=nemu dune exec bench/main.exe -- campaign --smoke --json ci_campaign_nemu.json
test -s ci_campaign_nemu.json
grep -q '"escapes": 0' ci_campaign_nemu.json

echo "== NEMU REF with megablocks disabled: verdicts must equal megablocks on =="
MINJIE_REF=nemu MINJIE_MEGABLOCKS=0 dune exec bench/main.exe -- campaign --smoke --json ci_campaign_nemu_nomb.json
test -s ci_campaign_nemu_nomb.json
# every campaign record field is deterministic, so the REF's inline
# caches must not change a byte of the verdict JSON
diff ci_campaign_nemu.json ci_campaign_nemu_nomb.json
rm -f ci_campaign_nemu.json ci_campaign_nemu_nomb.json

echo "== chaos smoke (host-fault injection: every schedule recovers the clean verdict) =="
dune exec bench/main.exe -- chaos --smoke --json ci_chaos.json
test -s ci_chaos.json
grep -q '"experiment": "chaos"' ci_chaos.json
grep -q '"group": "schedule"' ci_chaos.json
grep -q '"group": "resume"' ci_chaos.json
grep -q '"all_verdicts_identical": true' ci_chaos.json
if grep -q '"verdict_identical": false' ci_chaos.json; then
  echo "chaos smoke recorded a verdict divergence"; exit 1
fi
rm -f ci_chaos.json

echo "== kill-and-resume smoke (SIGKILL mid-campaign; --resume must reproduce the clean JSON byte for byte) =="
BENCH=./_build/default/bench/main.exe
"$BENCH" campaign --json ci_resume_clean.json >/dev/null
rm -f ci_resume.journal ci_resume_killed.json
"$BENCH" campaign --json ci_resume_killed.json --journal ci_resume.journal >/dev/null &
victim=$!
sleep 0.5
kill -9 "$victim" 2>/dev/null || true
set +e; wait "$victim" >/dev/null 2>&1; set -e
test -s ci_resume.journal
"$BENCH" campaign --json ci_resume_done.json --journal ci_resume.journal --resume
# the resumed run's JSON must be byte-identical to the uninterrupted one
diff ci_resume_clean.json ci_resume_done.json
rm -f ci_resume_clean.json ci_resume_killed.json ci_resume_done.json ci_resume.journal

echo "== fuzz smoke (coverage-guided campaign; same seed must be byte-identical) =="
dune exec bench/main.exe -- fuzz --smoke --seed 1 --json ci_fuzz_a.json
test -s ci_fuzz_a.json
grep -q '"experiment": "fuzz"' ci_fuzz_a.json
grep -q '"group": "round"' ci_fuzz_a.json
grep -q '"group": "summary"' ci_fuzz_a.json
dune exec bench/main.exe -- fuzz --smoke --seed 1 --json ci_fuzz_b.json >/dev/null
# coverage buckets, corpus ranking and mutation planning are all
# seed-derived: two same-seed runs must agree byte for byte
diff ci_fuzz_a.json ci_fuzz_b.json
rm -f ci_fuzz_a.json ci_fuzz_b.json
# the CLI front-end shares the determinism contract
./_build/default/bin/minjie_cli.exe fuzz --smoke --seed 1 > ci_fuzz_cli_a.txt
./_build/default/bin/minjie_cli.exe fuzz --smoke --seed 1 > ci_fuzz_cli_b.txt
diff ci_fuzz_cli_a.txt ci_fuzz_cli_b.txt
rm -f ci_fuzz_cli_a.txt ci_fuzz_cli_b.txt

echo "== fuzz kill-and-resume smoke (SIGKILL mid-round; --resume must reproduce the clean JSON byte for byte) =="
"$BENCH" fuzz --json ci_fuzz_clean.json >/dev/null
rm -f ci_fuzz.journal ci_fuzz_killed.json
"$BENCH" fuzz --json ci_fuzz_killed.json --journal ci_fuzz.journal >/dev/null &
victim=$!
sleep 0.5
kill -9 "$victim" 2>/dev/null || true
set +e; wait "$victim" >/dev/null 2>&1; set -e
test -s ci_fuzz.journal
"$BENCH" fuzz --json ci_fuzz_done.json --journal ci_fuzz.journal --resume
# journaled execs replay, the rest recompute: same bytes either way
diff ci_fuzz_clean.json ci_fuzz_done.json
rm -f ci_fuzz_clean.json ci_fuzz_killed.json ci_fuzz_done.json ci_fuzz.journal

echo "== clean shutdown: SIGTERM exits 143 and leaves no orphan workers =="
"$BENCH" campaign --jobs 2 --json ci_term.json >/dev/null &
victim=$!
sleep 0.5
kill -TERM "$victim"
set +e; wait "$victim"; code=$?; set -e
if [ "$code" != 143 ]; then
  echo "SIGTERM exit code was $code, wanted 143"; exit 1
fi
sleep 0.3
# -x: exact process-name match, so shells whose command line merely
# mentions the binary path can never count as orphans
if pgrep -x main.exe >/dev/null; then
  echo "orphan bench workers survived SIGTERM:"
  pgrep -ax main.exe || true
  exit 1
fi
rm -f ci_term.json

echo "== simspeed smoke (cycle-model throughput; host header carries the calibration) =="
dune exec bench/main.exe -- simspeed --smoke --json ci_simspeed.json
test -s ci_simspeed.json
grep -q '"experiment": "simspeed"' ci_simspeed.json
grep -q '"geomean_kcps"' ci_simspeed.json
grep -q '"simspeed_kcps"' ci_simspeed.json
rm -f ci_simspeed.json

echo "== topdown smoke (CPI stacks must sum to measured cycles) =="
dune exec bench/main.exe -- topdown --smoke --json ci_topdown.json
test -s ci_topdown.json
grep -q '"experiment": "topdown"' ci_topdown.json
grep -q '"group": "stack"' ci_topdown.json
grep -q '"invariant_holds": true' ci_topdown.json
rm -f ci_topdown.json

echo "== pipetrace smoke (well-formed Konata records) =="
dune exec bin/minjie_cli.exe -- run coremark_like --pipetrace ci_trace.kanata >/dev/null
test -s ci_trace.kanata
head -1 ci_trace.kanata | grep -q '^Kanata'
grep -q '^C=' ci_trace.kanata
grep -q '^I' ci_trace.kanata
grep -q '^S' ci_trace.kanata
grep -q '^R' ci_trace.kanata
# every record opened (I) is closed by a retire (R)
test "$(grep -c '^I' ci_trace.kanata)" = "$(grep -c '^R' ci_trace.kanata)"
rm -f ci_trace.kanata

echo "== cosim smoke (ISS REF vs NEMU REF throughput, megablocks on) =="
MINJIE_MEGABLOCKS=1 dune exec bench/main.exe -- cosim --json ci_cosim.json
test -s ci_cosim.json
grep -q '"experiment": "cosim"' ci_cosim.json
grep -q '"group": "run"' ci_cosim.json
grep -q '"group": "speedup"' ci_cosim.json
grep -q '"ref_step_speedup"' ci_cosim.json
grep -q '"geomean_ref_step_speedup"' ci_cosim.json
rm -f ci_cosim.json

echo "== serve smoke (warm-state service: served output byte-identical to cold, clean shutdown, no orphans) =="
CLI=./_build/default/bin/minjie_cli.exe
SOCK=./ci_serve.sock
rm -f "$SOCK"
"$CLI" serve --socket "$SOCK" --quiet >/dev/null 2>&1 &
server=$!
# wait for the server to answer a ping (it assembles nothing at boot,
# so this converges in well under a second)
ready=0
for _ in $(seq 1 100); do
  if "$CLI" submit ping --socket "$SOCK" >/dev/null 2>&1; then ready=1; break; fi
  sleep 0.1
done
if [ "$ready" != 1 ]; then echo "serve never answered a ping"; exit 1; fi
# every served job's stdout must be byte-identical to the cold-start
# path's (`submit --cold` executes in-process against a fresh cache);
# the run is submitted twice so the second reply exercises the warm
# cache, not just the protocol
"$CLI" submit run --socket "$SOCK" -w coremark_like --max-cycles 200000 >ci_serve_run.txt 2>/dev/null
"$CLI" submit run --socket "$SOCK" -w coremark_like --max-cycles 200000 >ci_serve_run_warm.txt 2>/dev/null
"$CLI" submit run --cold             -w coremark_like --max-cycles 200000 >ci_serve_run_cold.txt 2>/dev/null
diff ci_serve_run.txt ci_serve_run_cold.txt
diff ci_serve_run_warm.txt ci_serve_run_cold.txt
"$CLI" submit campaign --socket "$SOCK" --faults csr-mtvec-corrupt,rob-commit-reorder,lsu-sb-drop --seeds 1 >ci_serve_camp.txt 2>/dev/null
"$CLI" submit campaign --cold             --faults csr-mtvec-corrupt,rob-commit-reorder,lsu-sb-drop --seeds 1 >ci_serve_camp_cold.txt 2>/dev/null
diff ci_serve_camp.txt ci_serve_camp_cold.txt
grep -q 'escape' ci_serve_camp.txt
"$CLI" submit topdown --socket "$SOCK" -w sjeng_like --max-cycles 200000 >ci_serve_td.txt 2>/dev/null
"$CLI" submit topdown --cold             -w sjeng_like --max-cycles 200000 >ci_serve_td_cold.txt 2>/dev/null
diff ci_serve_td.txt ci_serve_td_cold.txt
# fuzz runs through the isolation pool but stays deterministic, so the
# served reply must still match the cold in-process path byte for byte
"$CLI" submit fuzz --socket "$SOCK" --seed 1 --rounds 2 --cands 3 >ci_serve_fuzz.txt 2>/dev/null
"$CLI" submit fuzz --cold             --seed 1 --rounds 2 --cands 3 >ci_serve_fuzz_cold.txt 2>/dev/null
diff ci_serve_fuzz.txt ci_serve_fuzz_cold.txt
grep -q 'coverage point' ci_serve_fuzz.txt
# the fuzz class reports its own per-class EWMA cost estimate
"$CLI" submit stats --socket "$SOCK" >ci_serve_stats.txt 2>/dev/null
grep -q 'ewma fuzz:' ci_serve_stats.txt
# SIGTERM: supervised shutdown (exit 143), socket unlinked, no orphans
kill -TERM "$server"
set +e; wait "$server"; code=$?; set -e
if [ "$code" != 143 ]; then
  echo "serve SIGTERM exit code was $code, wanted 143"; exit 1
fi
sleep 0.3
if [ -e "$SOCK" ]; then
  echo "serve left its socket behind"; exit 1
fi
if pgrep -x minjie_cli.exe >/dev/null; then
  echo "orphan serve workers survived SIGTERM:"
  pgrep -ax minjie_cli.exe || true
  exit 1
fi
rm -f ci_serve_run.txt ci_serve_run_warm.txt ci_serve_run_cold.txt \
  ci_serve_camp.txt ci_serve_camp_cold.txt ci_serve_td.txt ci_serve_td_cold.txt \
  ci_serve_fuzz.txt ci_serve_fuzz_cold.txt ci_serve_stats.txt

echo "CI OK"
