(* Register renaming: separate integer and floating-point physical
   register files with free lists, plus reference-counting move
   elimination for the integer file (Table II: NH feature).

   The physical register files also hold the speculative values and
   their ready cycles -- the "execute at issue" model computes results
   straight into the physical file. *)

type rf = {
  map : int array; (* arch -> phys *)
  free : int Queue.t;
  value : int64 array;
  ready_at : int array; (* cycle the value becomes available *)
  refcnt : int array;
}

let make_rf ~arch_regs ~pregs =
  let rf =
    {
      map = Array.init arch_regs (fun i -> i);
      free = Queue.create ();
      value = Array.make pregs 0L;
      ready_at = Array.make pregs 0;
      refcnt = Array.make pregs 0;
    }
  in
  for i = 0 to arch_regs - 1 do
    rf.refcnt.(i) <- 1
  done;
  for p = arch_regs to pregs - 1 do
    Queue.add p rf.free
  done;
  rf

type t = { int_rf : rf; fp_rf : rf; cfg : Config.t }

let create (cfg : Config.t) =
  {
    int_rf = make_rf ~arch_regs:32 ~pregs:cfg.int_pregs;
    fp_rf = make_rf ~arch_regs:32 ~pregs:cfg.fp_pregs;
    cfg;
  }

let rf t is_fp = if is_fp then t.fp_rf else t.int_rf

let lookup t ~is_fp arch = (rf t is_fp).map.(arch)

let free_phys rf p =
  rf.refcnt.(p) <- rf.refcnt.(p) - 1;
  assert (rf.refcnt.(p) >= 0);
  if rf.refcnt.(p) = 0 then Queue.add p rf.free

(* Can we rename a uop that needs an int/fp destination? *)
let can_alloc t ~is_fp = not (Queue.is_empty (rf t is_fp).free)

(* Allocate a new destination mapping; returns (prd, old_prd). *)
let alloc t ~is_fp ~arch ~now =
  let rf = rf t is_fp in
  let p = Queue.pop rf.free in
  let old_p = rf.map.(arch) in
  rf.map.(arch) <- p;
  rf.refcnt.(p) <- 1;
  rf.ready_at.(p) <- max_int;
  ignore now;
  (p, old_p)

(* Move elimination: map [arch_rd] to the physical register currently
   holding [arch_rs]; returns (prd, old_prd). *)
let alias t ~arch_rd ~arch_rs =
  let rf = t.int_rf in
  let p = rf.map.(arch_rs) in
  let old_p = rf.map.(arch_rd) in
  rf.map.(arch_rd) <- p;
  rf.refcnt.(p) <- rf.refcnt.(p) + 1;
  (p, old_p)

(* Fault injection: alias [arch_rd] onto [arch_rs]'s physical register
   with no uop carrying the old mapping -- the next consumer of
   [arch_rd] reads [arch_rs]'s value and the old physical register
   leaks, as if move elimination mis-fired on an unrelated
   instruction.  The shared register's reference count is bumped so
   later releases stay balanced. *)
let corrupt_alias t ~arch_rd ~arch_rs =
  if arch_rd <> 0 && arch_rd <> arch_rs then begin
    let rf = t.int_rf in
    let p = rf.map.(arch_rs) in
    rf.map.(arch_rd) <- p;
    rf.refcnt.(p) <- rf.refcnt.(p) + 1
  end

(* Commit: release the previous mapping of the destination. *)
let commit_release t ~is_fp ~old_prd =
  if old_prd >= 0 then free_phys (rf t is_fp) old_prd

(* Rollback a squashed uop (must be called youngest-first). *)
let rollback t (u : Uop.t) =
  if u.Uop.prd >= 0 then begin
    let rf = rf t u.Uop.rd_is_fp in
    rf.map.(u.Uop.arch_rd) <- u.Uop.old_prd;
    free_phys rf u.Uop.prd
  end

let set_result t ~is_fp ~prd ~value ~ready_at =
  let rf = rf t is_fp in
  rf.value.(prd) <- value;
  rf.ready_at.(prd) <- ready_at

let value t ~is_fp ~prd = (rf t is_fp).value.(prd)

let ready t ~is_fp ~prd ~now = (rf t is_fp).ready_at.(prd) <= now

(* A uop's sources are all available at [now]? *)
let srcs_ready t (u : Uop.t) ~now =
  let ok = ref true in
  Array.iteri
    (fun i p -> if not (ready t ~is_fp:u.Uop.psrc_fp.(i) ~prd:p ~now) then ok := false)
    u.Uop.psrc;
  !ok

let free_count t ~is_fp = Queue.length (rf t is_fp).free
