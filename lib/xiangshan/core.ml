(* The XiangShan-like superscalar out-of-order core (Figure 10).

   Pipeline model: decoupled fetch with BPU-directed bundles, decode
   with optional macro-op fusion, rename with move elimination,
   dispatch into distributed issue queues, execute-at-issue with
   per-class latencies, a load/store unit with store queue + store
   buffer, and in-order commit that maintains the architectural state
   observed by DiffTest.  System instructions, atomics and MMIO
   accesses execute at the ROB head.

   Cycle semantics are two-phase (DESIGN.md "Two-phase cycle
   semantics"): phase 1 ([step]) lets every unit -- commit, issue,
   store-buffer drain, dispatch, fetch -- compute its plan for the
   cycle from the read-only start-of-cycle state and return it as a
   typed effect record; phase 2 ([apply]) commits all effects in one
   canonical order with explicit arbitration for the structural
   hazards (snapshot-claimed ROB/IQ/LSU slots, redirect-vs-commit
   priority, fault hooks firing at the effect boundary).  Phase-1
   purity is not enforced by the type system (OCaml has no const);
   it is enforced by the seeded permutation harness: stepping the
   units in any order must produce byte-identical behaviour
   (MINJIE_PHASE_ORDER=shuffle:SEED, test/test_twophase.ml).

   Fidelity notes (see DESIGN.md): results are computed when an
   instruction issues, using values in the physical register file, and
   timing is tracked via ready/done cycles; loads never speculate past
   unresolved older store addresses, so memory-order replays are not
   modelled. *)

open Riscv

type fetch_item = {
  fi_pc : int64;
  fi_insn : Insn.t;
  fi_pred_next : int64;
  fi_fault : (Trap.exc * int64) option;
  mutable fi_fetched_at : int; (* cycle the item entered the fetch queue *)
}

type fetch_bundle = { fb_ready_at : int; fb_items : fetch_item list }

type perf = {
  mutable p_cycles : int;
  mutable p_instrs : int; (* architectural instructions committed *)
  mutable p_uops : int;
  mutable p_fused : int;
  mutable p_moves_eliminated : int;
  mutable p_loads : int;
  mutable p_stores : int;
  mutable p_traps : int;
  mutable p_interrupts : int;
  mutable p_flushes : int;
  ready_hist : int array; (* Figure 15: cycles with N ready insns *)
  mutable p_dispatched : int;
  mutable p_hi_prio : int; (* PUBS high-priority uops dispatched *)
}

let make_perf () =
  {
    p_cycles = 0;
    p_instrs = 0;
    p_uops = 0;
    p_fused = 0;
    p_moves_eliminated = 0;
    p_loads = 0;
    p_stores = 0;
    p_traps = 0;
    p_interrupts = 0;
    p_flushes = 0;
    ready_hist = Array.make 17 0;
    p_dispatched = 0;
    p_hi_prio = 0;
  }

(* Dense Perf_counter handles, resolved once at [create] so the
   per-cycle hot paths are plain array stores. *)
type ids = {
  i_td : Perf.Perf_counter.id array; (* indexed by Perf.Topdown.index *)
  i_disp_rob_full : Perf.Perf_counter.id;
  i_disp_iq_full : Perf.Perf_counter.id;
  i_disp_lq_full : Perf.Perf_counter.id;
  i_disp_sq_full : Perf.Perf_counter.id;
  i_disp_freelist_int : Perf.Perf_counter.id;
  i_disp_freelist_fp : Perf.Perf_counter.id;
  i_commit_sb_full : Perf.Perf_counter.id;
  i_fetch_bubble : Perf.Perf_counter.id;
  i_icache_miss : Perf.Perf_counter.id;
  i_rob_walk : Perf.Perf_counter.id;
  i_commit_w : Perf.Perf_counter.id array; (* commit width 0..8+ *)
  (* edge-style coverage probes (fed to the fuzzer's coverage map) *)
  i_walk_depth : Perf.Perf_counter.id array; (* per-flush ROB walk depth, log2 buckets *)
  i_flush_misp : Perf.Perf_counter.id;
  i_flush_trap : Perf.Perf_counter.id;
  i_flush_serial : Perf.Perf_counter.id;
  i_sc_success : Perf.Perf_counter.id;
  i_sc_fail : Perf.Perf_counter.id;
  i_tlb_walk_flush : Perf.Perf_counter.id;
}

(* Phase-1 evaluation order.  [Default_order] runs the unit planners
   in a fixed order; [Shuffle seed] runs them in a fresh seeded
   permutation every cycle.  Both must be indistinguishable -- the
   permutation mode exists purely to enforce that property. *)
type phase_order = Default_order | Shuffle of int

let phase_order_of_env () =
  match Sys.getenv_opt "MINJIE_PHASE_ORDER" with
  | Some "shuffle" -> Shuffle 1
  | Some s
    when String.length s > 8 && String.sub s 0 8 = "shuffle:" -> (
      match int_of_string_opt (String.sub s 8 (String.length s - 8)) with
      | Some seed -> Shuffle seed
      | None -> Default_order)
  | _ -> Default_order

type t = {
  cfg : Config.t;
  hartid : int;
  arch : Arch_state.t; (* committed architectural state *)
  plat : Platform.t; (* SoC-shared *)
  bpu : Bpu.t;
  tlb : Tlb.t;
  l1i : Softmem.Cache.t;
  l1d : Softmem.Cache.t;
  rename : Rename.t;
  rob : Rob.t;
  iqs : Iq.t array;
  lsu : Lsu.t;
  probes : Probe.sinks;
  perf : perf;
  ctrs : Perf.Perf_counter.t; (* named counter registry (observation only) *)
  ids : ids;
  def_table : int array; (* arch int reg -> seq of last producer *)
  mutable now : int;
  mutable seq : int; (* next uop sequence number *)
  mutable fetch_pc : int64;
  mutable fetch_stalled : bool;
  mutable inflight : fetch_bundle option;
  fetch_queue : fetch_item Queue.t;
  mutable commit_busy_until : int; (* at-commit execution occupancy *)
  (* top-down attribution state: a flush opens a bad-speculation
     recovery window; an L1I miss opens a frontend-icache window *)
  mutable recover_until : int;
  mutable recover_misp : bool; (* window opened by a mispredict redirect? *)
  mutable icache_stall_until : int;
  (* opt-in pipeline tracer; [None] keeps the hot paths allocation-free *)
  mutable tracer : Perf.Pipetrace.t option;
  mutable halted : bool;
  (* hook used by the SoC to invalidate sibling reservations *)
  mutable on_store_drain : int64 -> int -> unit;
  (* fault injection: for the next N resolved mispredictions, trust
     the predictor instead of redirecting (wrong-path commits) *)
  mutable bug_trust_bpu : int;
  (* two-phase machinery: the cycle of the most recent flush (apply
     cancels younger plans when it equals [now]), and the phase-1
     evaluation order *)
  mutable flushed_at : int;
  mutable phase_order : phase_order;
  (* PTW walks observed up to the end of the previous cycle; [apply]
     charges the delta to tlb.walk_during_flush while inside a
     flush-recovery window *)
  mutable tlb_walk_seen : int;
}

let make_ids () =
  let ctrs = Perf.Perf_counter.create ~capacity:64 () in
  let reg = Perf.Perf_counter.register ctrs in
  (* bind in sequence: record-field expressions evaluate in an
     unspecified order, but the registration order is what to_alist
     (and every counter dump) presents *)
  let i_td =
    Array.of_list
      (List.map (fun b -> reg (Perf.Topdown.counter_name b)) Perf.Topdown.all)
  in
  let i_disp_rob_full = reg "stall.dispatch.rob_full" in
  let i_disp_iq_full = reg "stall.dispatch.iq_full" in
  let i_disp_lq_full = reg "stall.dispatch.lq_full" in
  let i_disp_sq_full = reg "stall.dispatch.sq_full" in
  let i_disp_freelist_int = reg "stall.dispatch.freelist_int" in
  let i_disp_freelist_fp = reg "stall.dispatch.freelist_fp" in
  let i_commit_sb_full = reg "stall.commit.sb_full" in
  let i_fetch_bubble = reg "frontend.fetch_bubbles" in
  let i_icache_miss = reg "frontend.icache_misses" in
  let i_rob_walk = reg "rob.walked_uops" in
  let i_commit_w =
    Array.init 9 (fun w -> reg (Printf.sprintf "commit.width_%d" w))
  in
  (* edge probes: these exist for microarchitectural *coverage* --
     each is an event class the fuzzer wants to know was reached, not
     a performance account.  Incremented at the effect boundary
     (flush/commit/apply), so they cost nothing on untaken paths. *)
  let i_walk_depth =
    Array.init 5 (fun b -> reg (Printf.sprintf "rob.walk_depth_b%d" b))
  in
  let i_flush_misp = reg "flush.mispredict" in
  let i_flush_trap = reg "flush.trap" in
  let i_flush_serial = reg "flush.serialize" in
  let i_sc_success = reg "commit.sc_success" in
  let i_sc_fail = reg "commit.sc_failures" in
  let i_tlb_walk_flush = reg "tlb.walk_during_flush" in
  ( ctrs,
    {
      i_td;
      i_disp_rob_full;
      i_disp_iq_full;
      i_disp_lq_full;
      i_disp_sq_full;
      i_disp_freelist_int;
      i_disp_freelist_fp;
      i_commit_sb_full;
      i_fetch_bubble;
      i_icache_miss;
      i_rob_walk;
      i_commit_w;
      i_walk_depth;
      i_flush_misp;
      i_flush_trap;
      i_flush_serial;
      i_sc_success;
      i_sc_fail;
      i_tlb_walk_flush;
    } )

let create (cfg : Config.t) ~hartid ~(plat : Platform.t)
    ~(l1i : Softmem.Cache.t) ~(l1d : Softmem.Cache.t)
    ~(ptw_port : Softmem.Cache.t) : t =
  let arch = Arch_state.create ~hartid () in
  arch.Arch_state.csr.Csr.time_source <-
    (fun () -> plat.Platform.clint.Platform.Clint.mtime);
  let ctrs, ids = make_ids () in
  {
    cfg;
    hartid;
    arch;
    plat;
    bpu = Bpu.create cfg;
    tlb = Tlb.create cfg ~ptw_port;
    l1i;
    l1d;
    rename = Rename.create cfg;
    rob = Rob.create ~size:cfg.rob_size;
    iqs = Array.of_list (List.map (fun iqc -> Iq.create iqc ~policy:cfg.issue_policy) cfg.iqs);
    lsu = Lsu.create cfg ~dcache:l1d;
    probes = Probe.null_sinks ();
    perf = make_perf ();
    ctrs;
    ids;
    def_table = Array.make 32 (-1);
    now = 0;
    seq = 0;
    fetch_pc = Platform.dram_base;
    fetch_stalled = false;
    inflight = None;
    fetch_queue = Queue.create ();
    commit_busy_until = 0;
    recover_until = 0;
    recover_misp = false;
    icache_stall_until = 0;
    tracer = None;
    halted = false;
    on_store_drain = (fun _ _ -> ());
    bug_trust_bpu = 0;
    flushed_at = -1;
    tlb_walk_seen = 0;
    phase_order = phase_order_of_env ();
  }

let set_phase_order t o = t.phase_order <- o

let set_boot_pc t pc =
  t.fetch_pc <- pc;
  t.arch.Arch_state.pc <- pc

(* Copy the committed architectural register values into the currently
   mapped physical registers (used after restoring a checkpoint). *)
let sync_regfile_from_arch t =
  for r = 0 to 31 do
    let prd = Rename.lookup t.rename ~is_fp:false r in
    Rename.set_result t.rename ~is_fp:false ~prd
      ~value:(Arch_state.get_reg t.arch r) ~ready_at:0;
    let pfd = Rename.lookup t.rename ~is_fp:true r in
    Rename.set_result t.rename ~is_fp:true ~prd:pfd
      ~value:(Arch_state.get_freg t.arch r) ~ready_at:0
  done

(* ---------------- flush / redirect ---------------------------------- *)

(* Mispredict penalty beyond frontend refill: resolve + recovery. *)
let mispredict_penalty = 6

(* Squash all uops younger than [after] (-1 = everything) and restart
   fetch at [target].  Records the flush cycle: plans computed in
   phase 1 of the same cycle are invalidated by it (apply skips
   dispatch outright and re-evaluates fetch live). *)
let flush ?(cause = `Other) t ~after ~target =
  t.perf.p_flushes <- t.perf.p_flushes + 1;
  t.flushed_at <- t.now;
  (match cause with
  | `Misp -> Perf.Perf_counter.incr t.ctrs t.ids.i_flush_misp
  | `Trap -> Perf.Perf_counter.incr t.ctrs t.ids.i_flush_trap
  | `Serial -> Perf.Perf_counter.incr t.ctrs t.ids.i_flush_serial
  | `Other -> ());
  let squashed = Rob.squash_younger t.rob ~after in
  let depth = List.length squashed in
  Perf.Perf_counter.add t.ctrs t.ids.i_rob_walk depth;
  if depth > 0 then begin
    (* log2 depth buckets: 1, 2-3, 4-7, 8-15, 16+ *)
    let b =
      if depth >= 16 then 4
      else if depth >= 8 then 3
      else if depth >= 4 then 2
      else if depth >= 2 then 1
      else 0
    in
    Perf.Perf_counter.incr t.ctrs t.ids.i_walk_depth.(b)
  end;
  (match t.tracer with
  | Some tr ->
      List.iter
        (fun (u : Uop.t) -> Perf.Pipetrace.on_flush tr ~seq:u.Uop.seq ~now:t.now)
        squashed
  | None -> ());
  List.iter (fun u -> Rename.rollback t.rename u) squashed;
  t.seq <- t.rob.Rob.tail;
  Array.iter Iq.drop_squashed t.iqs;
  Lsu.drop_squashed t.lsu;
  Queue.clear t.fetch_queue;
  t.inflight <- None;
  t.fetch_stalled <- false;
  t.fetch_pc <- target;
  (* open a bad-speculation recovery window for top-down attribution;
     a mispredict redirect overrides [recover_misp] at its call site *)
  t.recover_until <- max t.recover_until (t.now + mispredict_penalty);
  t.recover_misp <- false

(* ================= effect records (phase-1 output) =================== *)

(* Each unit's phase-1 planner reads only start-of-cycle state and
   returns one of these records; phase 2 applies them in the canonical
   order (commit, issue, drain, dispatch, fetch).  The records are
   deliberately plans, not state deltas: application still performs
   the mutation through the same unit code paths, after revalidating
   any claim a flush or a boundary fault hook may have invalidated. *)

type commit_eff = {
  ce_mtip : bool; (* CLINT timer-interrupt line, sampled *)
  ce_msip : bool; (* CLINT software-interrupt line, sampled *)
}

type issue_eff = {
  ie_ready_total : int; (* Figure 15: ready instructions before selection *)
  ie_chosen : Uop.t list array; (* per-IQ selection (age/PUBS policy) *)
}

type drain_eff = { de_fire : bool (* store buffer eligible to drain one entry *) }

type stall_kind =
  | Rob_full
  | Iq_full
  | Lq_full
  | Sq_full
  | Freelist_int
  | Freelist_fp

type disp_plan = {
  pl_uop : Uop.t; (* pre-built uop, seq pre-assigned from the snapshot *)
  pl_item : fetch_item; (* head fetch-queue item consumed *)
  pl_second : fetch_item option; (* second item consumed when fused *)
  pl_iq : int; (* target IQ index, -1 = none (at-commit / fault) *)
  pl_eliminated : bool; (* move elimination: alias, no alloc, no issue *)
  (* Fusion.fused_regs of pl_uop, cached so apply never recomputes;
     pl_int_rd is normalised (x0 writes dropped) *)
  pl_int_srcs : int list;
  pl_fp_srcs : int list;
  pl_int_rd : int option;
  pl_fp_rd : int option;
}

type dispatch_eff = {
  dp_plans : disp_plan list; (* in program order *)
  dp_stall : stall_kind option; (* first scarce resource, if any *)
}

type fetch_eff = {
  fe_complete : bool; (* the in-flight bundle reaches the fetch queue *)
  fe_start : bool; (* a new bundle may start (headroom from snapshot) *)
}

type effects = {
  ef_commit : commit_eff;
  ef_issue : issue_eff;
  ef_drain : drain_eff;
  ef_dispatch : dispatch_eff;
  ef_fetch : fetch_eff;
}

(* ---------------- fetch ---------------------------------------------- *)

let fetch_block_bytes = 32

(* Move a completed bundle's items into the fetch queue. *)
let fetch_complete_now t =
  match t.inflight with
  | Some b when t.now >= b.fb_ready_at ->
      List.iter
        (fun it ->
          it.fi_fetched_at <- t.now;
          Queue.add it t.fetch_queue)
        b.fb_items;
      t.inflight <- None
  | Some _ | None -> ()

(* Start a new fetch bundle at [t.fetch_pc]: translate, probe the
   icache, decode and predict up to fetch_width sequential slots.
   Mutates the TLB, L1I and BPU -- phase 2 only. *)
let fetch_start_bundle t =
  let pc0 = t.fetch_pc in
  match Tlb.translate t.tlb t.arch.Arch_state.csr pc0 Tlb.Fetch with
  | Tlb.Page_fault (exc, tval), lat ->
      t.inflight <-
        Some
          {
            fb_ready_at = t.now + lat + 2;
            fb_items =
              [
                {
                  fi_pc = pc0;
                  fi_insn = Insn.Illegal 0l;
                  fi_pred_next = Int64.add pc0 4L;
                  fi_fault = Some (exc, tval);
                  fi_fetched_at = t.now;
                };
              ];
          };
      t.fetch_stalled <- true
  | Tlb.Translated pa0, tlb_lat ->
      if not (Memory.in_range t.plat.Platform.mem pa0) then begin
        t.inflight <-
          Some
            {
              fb_ready_at = t.now + tlb_lat + 2;
              fb_items =
                [
                  {
                    fi_pc = pc0;
                    fi_insn = Insn.Illegal 0l;
                    fi_pred_next = Int64.add pc0 4L;
                    fi_fault = Some (Trap.Fetch_access, pc0);
                    fi_fetched_at = t.now;
                  };
                ];
            };
        t.fetch_stalled <- true
      end
      else begin
        let icache_lat = Softmem.Cache.fetch t.l1i ~addr:pa0 in
        if icache_lat > t.l1i.Softmem.Cache.hit_latency then begin
          Perf.Perf_counter.incr t.ctrs t.ids.i_icache_miss;
          t.icache_stall_until <-
            max t.icache_stall_until (t.now + tlb_lat + icache_lat)
        end;
        let items = ref [] in
        let next_fetch = ref (Int64.add pc0 (Int64.of_int 4)) in
        let stop = ref false in
        let i = ref 0 in
        let block = Int64.div pc0 (Int64.of_int fetch_block_bytes) in
        while (not !stop) && !i < t.cfg.fetch_width do
          let pc = Int64.add pc0 (Int64.of_int (4 * !i)) in
          if Int64.div pc (Int64.of_int fetch_block_bytes) <> block then
            stop := true
          else begin
            let pa = Int64.add pa0 (Int64.of_int (4 * !i)) in
            let word = Memory.read_u32 t.plat.Platform.mem pa in
            let insn = Riscv.Decode.decode_int word in
            let pred = Bpu.predict t.bpu ~pc ~insn in
            let pred_next =
              if pred.Bpu.taken then pred.Bpu.target else Int64.add pc 4L
            in
            items :=
              {
                fi_pc = pc;
                fi_insn = insn;
                fi_pred_next = pred_next;
                fi_fault = None;
                fi_fetched_at = t.now;
              }
              :: !items;
            next_fetch := pred_next;
            if pred.Bpu.taken then stop := true;
            incr i
          end
        done;
        t.fetch_pc <- !next_fetch;
        t.inflight <-
          Some
            {
              fb_ready_at = t.now + tlb_lat + icache_lat + 2;
              fb_items = List.rev !items;
            }
      end

(* Live fetch evaluation (the pre-refactor do_fetch).  Used when a
   flush in this cycle invalidated the phase-1 fetch plan: the
   redirected target starts fetching in the same cycle, exactly as
   the ordered model did. *)
let fetch_live t =
  fetch_complete_now t;
  if
    t.inflight = None
    && (not t.fetch_stalled)
    && Queue.length t.fetch_queue + t.cfg.fetch_width <= t.cfg.fetch_buffer
  then fetch_start_bundle t

(* Phase 1: decide bundle completion and new-bundle start from the
   snapshot.  Headroom counts the start-of-cycle queue plus the items
   a completion would add -- NOT the slots dispatch will free this
   cycle (conservative snapshot claim; see the arbitration table). *)
let step_fetch t : fetch_eff =
  let v_now = t.now + 1 in
  let fe_complete =
    match t.inflight with Some b -> v_now >= b.fb_ready_at | None -> false
  in
  let qlen =
    Queue.length t.fetch_queue
    + (match t.inflight with
      | Some b when v_now >= b.fb_ready_at -> List.length b.fb_items
      | _ -> 0)
  in
  let fe_start =
    (t.inflight = None || fe_complete)
    && (not t.fetch_stalled)
    && qlen + t.cfg.fetch_width <= t.cfg.fetch_buffer
  in
  { fe_complete; fe_start }

let apply_fetch t (eff : fetch_eff) =
  if t.flushed_at = t.now then
    (* the plan predates a redirect: re-evaluate live so the new
       target starts fetching this cycle (a mispredict redirect left
       a refill bubble in [inflight], which blocks the new bundle) *)
    fetch_live t
  else begin
    if eff.fe_complete then fetch_complete_now t;
    if eff.fe_start && t.inflight = None && not t.fetch_stalled then
      fetch_start_bundle t
  end

(* ---------------- dispatch (decode + rename) ------------------------- *)

(* PUBS: mark the producer slice of an unconfident branch as high
   priority, walking the define table transitively. *)
let rec mark_slice t ~depth (arch_srcs : int list) =
  if depth > 0 then
    List.iter
      (fun r ->
        if r > 0 then
          let seq = t.def_table.(r) in
          if seq >= 0 then
            match Rob.get t.rob seq with
            | Some p when p.Uop.state <> Uop.Completed && not p.Uop.priority ->
                p.Uop.priority <- true;
                t.perf.p_hi_prio <- t.perf.p_hi_prio + 1;
                let srcs, _, _, _ = Fusion.fused_regs p in
                mark_slice t ~depth:(depth - 1) srcs
            | Some _ | None -> ())
      arch_srcs

(* Is this instruction a move-eliminable register copy? *)
let move_eliminable t (it : fetch_item) ~fused =
  t.cfg.move_elim && (not fused) && it.fi_fault = None
  &&
  match it.fi_insn with
  | Op_imm (ADD, rd, rs, 0L) when rd <> 0 && rs <> 0 -> true
  | _ -> false

(* Phase 1: plan this cycle's dispatch group against the snapshot.
   Structural claims (ROB/IQ/LQ/SQ slots, free physical registers) are
   threaded through the plan so the group can never over-subscribe the
   start-of-cycle occupancies; slots freed by commit or issue in the
   same cycle become usable next cycle.  The fetch queue is walked
   lazily via [Queue.to_seq] -- the queue is unmodified during phase 1,
   so forcing a node is O(1) and only the decode_width prefix is ever
   touched (this also retires the old per-item Queue.copy fusion
   probe). *)
let step_dispatch t : dispatch_eff =
  if Queue.is_empty t.fetch_queue then { dp_plans = []; dp_stall = None }
  else begin
    let rob_free = ref (t.cfg.rob_size - Rob.count t.rob) in
    let iq_occ = Array.map Iq.occupancy t.iqs in
    let lq_free = ref (t.cfg.lq_size - Lsu.lq_occupancy t.lsu) in
    let sq_free = ref (t.cfg.sq_size - Lsu.sq_occupancy t.lsu) in
    let int_free = ref (Rename.free_count t.rename ~is_fp:false) in
    let fp_free = ref (Rename.free_count t.rename ~is_fp:true) in
    let seq = ref t.seq in
    let budget = ref t.cfg.decode_width in
    let plans = ref [] in
    let stall = ref None in
    let rec go (node : fetch_item Seq.node) =
      if !budget > 0 && !stall = None then
        match node with
        | Seq.Nil -> ()
        | Seq.Cons (it, rest) ->
            if !rob_free <= 0 then stall := Some Rob_full
            else begin
              let tail = Lazy.from_fun rest in
              (* fusion candidate: the next queued instruction, only if
                 it is the sequential successor *)
              let second =
                if
                  t.cfg.fusion && !budget >= 2
                  && it.fi_pred_next = Int64.add it.fi_pc 4L
                then
                  match Lazy.force tail with
                  | Seq.Cons (s, _) when s.fi_pc = Int64.add it.fi_pc 4L ->
                      Some s
                  | _ -> None
                else None
              in
              let fusion =
                match second with
                | Some s -> Fusion.try_fuse it.fi_insn s.fi_insn
                | None -> None
              in
              let second_item = if fusion = None then None else second in
              let second_insn, pred_next =
                match (fusion, second_item) with
                | Some _, Some s -> (Some s.fi_insn, s.fi_pred_next)
                | _ -> (None, it.fi_pred_next)
              in
              let u =
                Uop.make ~seq:!seq ~pc:it.fi_pc ~insn:it.fi_insn
                  ~second:second_insn ~fusion ~pred_next
              in
              (match it.fi_fault with
              | Some e -> u.Uop.exc <- Some e
              | None -> ());
              let int_srcs, fp_srcs, int_rd, fp_rd = Fusion.fused_regs u in
              let int_rd = match int_rd with Some 0 -> None | r -> r in
              let needs_int_rd = int_rd <> None in
              let needs_fp_rd = fp_rd <> None in
              let iq_target =
                if u.Uop.where = Uop.In_iq && it.fi_fault = None then begin
                  (* least-occupied accepting IQ, snapshot + planned *)
                  let best = ref (-1) in
                  Array.iteri
                    (fun i iq ->
                      if
                        Iq.accepts iq u.Uop.exec_class
                        && iq_occ.(i) < Iq.capacity iq
                      then
                        match !best with
                        | -1 -> best := i
                        | b -> if iq_occ.(i) < iq_occ.(b) then best := i)
                    t.iqs;
                  !best
                end
                else -1
              in
              let iq_ok =
                u.Uop.where <> Uop.In_iq || it.fi_fault <> None || iq_target >= 0
              in
              let lsu_ok =
                (not (Uop.is_load u) || !lq_free > 0)
                && ((not (Uop.is_store u)) || !sq_free > 0)
              in
              let int_free_ok = (not needs_int_rd) || !int_free > 0 in
              let fp_free_ok = (not needs_fp_rd) || !fp_free > 0 in
              if
                (not iq_ok) || (not lsu_ok) || (not int_free_ok)
                || not fp_free_ok
              then
                (* attribute the stall to the first scarce resource *)
                stall :=
                  Some
                    (if not iq_ok then Iq_full
                     else if not lsu_ok then
                       if Uop.is_load u && !lq_free <= 0 then Lq_full
                       else Sq_full
                     else if not int_free_ok then Freelist_int
                     else Freelist_fp)
              else begin
                let eliminated = move_eliminable t it ~fused:(fusion <> None) in
                (* thread the claims the group has now taken *)
                decr rob_free;
                if it.fi_fault = None && not eliminated then begin
                  if iq_target >= 0 then
                    iq_occ.(iq_target) <- iq_occ.(iq_target) + 1;
                  if Uop.is_load u then decr lq_free;
                  if Uop.is_store u then decr sq_free
                end;
                if not eliminated then begin
                  if needs_int_rd then decr int_free;
                  if needs_fp_rd then decr fp_free
                end;
                incr seq;
                plans :=
                  {
                    pl_uop = u;
                    pl_item = it;
                    pl_second = second_item;
                    pl_iq = (if it.fi_fault = None then iq_target else -1);
                    pl_eliminated = eliminated;
                    pl_int_srcs = int_srcs;
                    pl_fp_srcs = fp_srcs;
                    pl_int_rd = int_rd;
                    pl_fp_rd = fp_rd;
                  }
                  :: !plans;
                if second_item <> None then begin
                  budget := !budget - 2;
                  (* skip the fused successor *)
                  match Lazy.force tail with
                  | Seq.Cons (_, rest2) -> go (rest2 ())
                  | Seq.Nil -> ()
                end
                else begin
                  decr budget;
                  go (Lazy.force tail)
                end
              end
            end
    in
    go (Queue.to_seq t.fetch_queue ());
    { dp_plans = List.rev !plans; dp_stall = !stall }
  end

(* Phase 2: execute the dispatch plan -- rename, allocate, push into
   ROB/IQ/LSU.  A flush earlier in this cycle's application (commit
   trap/serialise/interrupt or an issue redirect) cancels the whole
   plan: the planned uops were never architecturally visible.  Claims
   are also revalidated against the live structures: a fault hook
   firing at the effect boundary may have consumed what the plan
   reserved, in which case dispatch degrades to a stall and retries
   next cycle. *)
let apply_dispatch t (eff : dispatch_eff) =
  if t.flushed_at = t.now then ()
  else begin
    let aborted = ref false in
    List.iter
      (fun (p : disp_plan) ->
        if not !aborted then begin
          let u = p.pl_uop and it = p.pl_item in
          let int_srcs = p.pl_int_srcs and fp_srcs = p.pl_fp_srcs in
          let int_rd = p.pl_int_rd and fp_rd = p.pl_fp_rd in
          if
            Rob.is_full t.rob
            || u.Uop.seq <> t.seq
            (* the planned head item must still be queued (physical
               identity): a boundary-hook flush cleared the fetch
               queue, even if it left seq/ROB looking untouched *)
            || (match Queue.peek_opt t.fetch_queue with
               | Some live -> live != it
               | None -> true)
            || (int_rd <> None && (not p.pl_eliminated)
               && not (Rename.can_alloc t.rename ~is_fp:false))
            || (fp_rd <> None && not (Rename.can_alloc t.rename ~is_fp:true))
          then aborted := true
          else begin
            (* consume the planned queue items *)
            ignore (Queue.pop t.fetch_queue);
            if p.pl_second <> None then ignore (Queue.pop t.fetch_queue);
            (* rename sources *)
            let psrc =
              Array.of_list
                (List.map (fun r -> Rename.lookup t.rename ~is_fp:false r) int_srcs
                @ List.map (fun r -> Rename.lookup t.rename ~is_fp:true r) fp_srcs)
            in
            let psrc_fp =
              Array.of_list
                (List.map (fun _ -> false) int_srcs
                @ List.map (fun _ -> true) fp_srcs)
            in
            u.Uop.psrc <- psrc;
            u.Uop.psrc_fp <- psrc_fp;
            (match (p.pl_eliminated, it.fi_insn) with
            | true, Op_imm (ADD, rd, rs, _) ->
                let prd, old_prd = Rename.alias t.rename ~arch_rd:rd ~arch_rs:rs in
                u.Uop.arch_rd <- rd;
                u.Uop.prd <- prd;
                u.Uop.old_prd <- old_prd;
                u.Uop.state <- Uop.Completed;
                u.Uop.done_at <- t.now;
                u.Uop.eliminated <- true;
                t.perf.p_moves_eliminated <- t.perf.p_moves_eliminated + 1;
                t.def_table.(rd) <- u.Uop.seq
            | _ -> (
                (match int_rd with
                | Some rd ->
                    let prd, old_prd =
                      Rename.alloc t.rename ~is_fp:false ~arch:rd ~now:t.now
                    in
                    u.Uop.arch_rd <- rd;
                    u.Uop.rd_is_fp <- false;
                    u.Uop.prd <- prd;
                    u.Uop.old_prd <- old_prd;
                    t.def_table.(rd) <- u.Uop.seq
                | None -> ());
                (match fp_rd with
                | Some rd ->
                    let prd, old_prd =
                      Rename.alloc t.rename ~is_fp:true ~arch:rd ~now:t.now
                    in
                    u.Uop.arch_rd <- rd;
                    u.Uop.rd_is_fp <- true;
                    u.Uop.prd <- prd;
                    u.Uop.old_prd <- old_prd
                | None -> ())));
            (* allocate in ROB + queues *)
            t.seq <- t.seq + 1;
            Rob.push t.rob u;
            if p.pl_second <> None then t.perf.p_fused <- t.perf.p_fused + 1;
            t.perf.p_dispatched <- t.perf.p_dispatched + 1;
            if it.fi_fault = None && not p.pl_eliminated then begin
              if p.pl_iq >= 0 then Iq.insert t.iqs.(p.pl_iq) u;
              if Uop.is_load u then Lsu.insert_load t.lsu u;
              if Uop.is_store u then Lsu.insert_store t.lsu u
            end
            else if it.fi_fault <> None then begin
              (* faulting fetch: deliver the exception at commit *)
              u.Uop.state <- Uop.Completed;
              u.Uop.done_at <- t.now
            end;
            (* PUBS: mark unconfident branch slices *)
            (if t.cfg.issue_policy = Config.Pubs then
               match it.fi_insn with
               | Branch _ when Bpu.unconfident t.bpu ~pc:it.fi_pc ->
                   u.Uop.priority <- true;
                   t.perf.p_hi_prio <- t.perf.p_hi_prio + 1;
                   mark_slice t ~depth:2 int_srcs
               | _ -> ());
            match t.tracer with
            | Some tr ->
                Perf.Pipetrace.on_dispatch tr ~seq:u.Uop.seq ~pc:u.Uop.pc
                  ~label:(Insn.show it.fi_insn) ~fetched_at:it.fi_fetched_at
                  ~now:t.now;
                (* eliminated moves and faulting fetches never issue;
                   close their execute window at dispatch *)
                if p.pl_eliminated || it.fi_fault <> None then begin
                  Perf.Pipetrace.on_issue tr ~seq:u.Uop.seq ~now:t.now;
                  Perf.Pipetrace.on_complete tr ~seq:u.Uop.seq ~at:u.Uop.done_at
                end
            | None -> ()
          end
        end)
      eff.dp_plans;
    match eff.dp_stall with
    | Some Rob_full -> Perf.Perf_counter.incr t.ctrs t.ids.i_disp_rob_full
    | Some Iq_full -> Perf.Perf_counter.incr t.ctrs t.ids.i_disp_iq_full
    | Some Lq_full -> Perf.Perf_counter.incr t.ctrs t.ids.i_disp_lq_full
    | Some Sq_full -> Perf.Perf_counter.incr t.ctrs t.ids.i_disp_sq_full
    | Some Freelist_int ->
        Perf.Perf_counter.incr t.ctrs t.ids.i_disp_freelist_int
    | Some Freelist_fp -> Perf.Perf_counter.incr t.ctrs t.ids.i_disp_freelist_fp
    | None -> ()
  end

(* ---------------- issue / execute ------------------------------------ *)

let src_values t (u : Uop.t) : int64 array =
  Array.mapi
    (fun i p -> Rename.value t.rename ~is_fp:u.Uop.psrc_fp.(i) ~prd:p)
    u.Uop.psrc

let complete t (u : Uop.t) ~at =
  u.Uop.state <- Uop.Completed;
  u.Uop.done_at <- at;
  (match t.tracer with
  | Some tr -> Perf.Pipetrace.on_complete tr ~seq:u.Uop.seq ~at
  | None -> ());
  if u.Uop.prd >= 0 then
    Rename.set_result t.rename ~is_fp:u.Uop.rd_is_fp ~prd:u.Uop.prd
      ~value:u.Uop.result ~ready_at:at

(* Returns true if the uop issued. *)
let issue_uop t (u : Uop.t) : bool =
  let srcs = src_values t u in
  match u.Uop.exec_class with
  | Config.LOAD -> (
      let vaddr =
        match u.Uop.insn with
        | Load (_, _, _, imm) | Fld (_, _, imm) -> Int64.add srcs.(0) imm
        | _ -> srcs.(0)
      in
      let size =
        match u.Uop.insn with
        | Load (op, _, _, _) -> Iss.Alu.load_width op
        | Fld _ -> 8
        | _ -> 8
      in
      u.Uop.vaddr <- vaddr;
      u.Uop.msize <- size;
      if Int64.rem vaddr (Int64.of_int size) <> 0L then begin
        u.Uop.exc <- Some (Trap.Load_misaligned, vaddr);
        u.Uop.state <- Uop.Completed;
        u.Uop.done_at <- t.now + 1;
        true
      end
      else begin
        match Tlb.translate t.tlb t.arch.Arch_state.csr vaddr Tlb.Load with
        | Tlb.Page_fault (exc, tval), lat ->
            u.Uop.exc <- Some (exc, tval);
            u.Uop.state <- Uop.Completed;
            u.Uop.done_at <- t.now + 1 + lat;
            true
        | Tlb.Translated pa, tlb_lat ->
            u.Uop.paddr <- pa;
            if Platform.is_mmio t.plat pa then begin
              (* MMIO loads execute at the ROB head *)
              u.Uop.mmio <- true;
              u.Uop.state <- Uop.Issued;
              true
            end
            else begin
              match Lsu.forward t.lsu ~seq:u.Uop.seq ~paddr:pa ~size with
              | Lsu.Blocked -> false (* retry next cycle *)
              | Lsu.Forward raw ->
                  let v =
                    match u.Uop.insn with
                    | Load (op, _, _, _) -> Iss.Alu.extend_load op raw
                    | _ -> raw
                  in
                  u.Uop.result <- v;
                  u.Uop.load_value <- raw;
                  u.Uop.mem_cycle <- t.now;
                  complete t u ~at:(t.now + 2 + tlb_lat);
                  t.perf.p_loads <- t.perf.p_loads + 1;
                  true
              | Lsu.No_match ->
                  let raw, lat = Softmem.Cache.read t.l1d ~addr:pa ~size in
                  let v =
                    match u.Uop.insn with
                    | Load (op, _, _, _) -> Iss.Alu.extend_load op raw
                    | _ -> raw
                  in
                  u.Uop.result <- v;
                  u.Uop.load_value <- raw;
                  u.Uop.mem_cycle <- t.now;
                  complete t u ~at:(t.now + 1 + tlb_lat + lat);
                  t.perf.p_loads <- t.perf.p_loads + 1;
                  true
            end
      end)
  | Config.STORE -> (
      let vaddr, data, size =
        match u.Uop.insn with
        | Store (op, _, _, imm) ->
            (Int64.add srcs.(0) imm, srcs.(1), Iss.Alu.store_width op)
        | Fsd (_, _, imm) -> (Int64.add srcs.(0) imm, srcs.(1), 8)
        | _ -> (srcs.(0), srcs.(1), 8)
      in
      u.Uop.vaddr <- vaddr;
      u.Uop.msize <- size;
      u.Uop.sdata <-
        (if size >= 8 then data
         else Int64.logand data (Int64.sub (Int64.shift_left 1L (8 * size)) 1L));
      if Int64.rem vaddr (Int64.of_int size) <> 0L then begin
        u.Uop.exc <- Some (Trap.Store_misaligned, vaddr);
        u.Uop.state <- Uop.Completed;
        u.Uop.done_at <- t.now + 1;
        true
      end
      else begin
        match Tlb.translate t.tlb t.arch.Arch_state.csr vaddr Tlb.Store with
        | Tlb.Page_fault (exc, tval), lat ->
            u.Uop.exc <- Some (exc, tval);
            u.Uop.state <- Uop.Completed;
            u.Uop.done_at <- t.now + 1 + lat;
            true
        | Tlb.Translated pa, tlb_lat ->
            u.Uop.paddr <- pa;
            u.Uop.mmio <- Platform.is_mmio t.plat pa;
            u.Uop.addr_ready <- true;
            u.Uop.state <- Uop.Completed;
            u.Uop.done_at <- t.now + 1 + tlb_lat;
            t.perf.p_stores <- t.perf.p_stores + 1;
            true
      end)
  | Config.ALU | Config.MUL | Config.DIV | Config.JUMP_CSR | Config.FMAC
  | Config.FMISC ->
      Exec.execute u srcs;
      (* fault injection: swallow the resolved redirect and follow the
         (possibly corrupted) prediction instead *)
      (match u.Uop.insn with
      | (Branch _ | Jal _ | Jalr _)
        when t.bug_trust_bpu > 0 && u.Uop.mispredicted && u.Uop.exc = None ->
          u.Uop.next_pc <- u.Uop.pred_next;
          u.Uop.mispredicted <- false;
          t.bug_trust_bpu <- t.bug_trust_bpu - 1
      | _ -> ());
      let lat = Uop.latency u.Uop.exec_class u.Uop.insn in
      complete t u ~at:(t.now + lat);
      (* resolve control flow *)
      (match u.Uop.insn with
      | Branch _ | Jal _ | Jalr _ ->
          let taken = u.Uop.next_pc <> Int64.add u.Uop.pc (Int64.of_int (4 * u.Uop.n_insns)) in
          Bpu.update t.bpu ~pc:u.Uop.pc ~insn:u.Uop.insn ~taken
            ~target:u.Uop.next_pc ~mispredicted:u.Uop.mispredicted
      | _ -> ());
      true

(* Readiness against an explicit clock: phase 1 evaluates it at the
   cycle being planned (now + 1), which is the value [t.now] holds
   when phase 2 applies the plan. *)
let uop_ready_at t ~now (u : Uop.t) =
  Rename.srcs_ready t.rename u ~now
  && (u.Uop.exec_class <> Config.LOAD
     || Lsu.older_stores_known t.lsu ~seq:u.Uop.seq)

(* Phase 1: per-IQ selection under the configured policy, plus the
   Figure 15 ready-count, from one readiness scan per queue
   ([Iq.select_counted] is pure); the pre-selected uops are
   revalidated at application. *)
let step_issue t : issue_eff =
  let now = t.now + 1 in
  let ready = uop_ready_at t ~now in
  let total = ref 0 in
  let chosen =
    Array.map
      (fun iq ->
        let sel, n = Iq.select_counted iq ~ready in
        total := !total + n;
        sel)
      t.iqs
  in
  { ie_ready_total = !total; ie_chosen = chosen }

let apply_issue t (eff : issue_eff) =
  t.perf.ready_hist.(min eff.ie_ready_total 16) <-
    t.perf.ready_hist.(min eff.ie_ready_total 16) + 1;
  let redirect = ref None in
  Array.iteri
    (fun i chosen ->
      let iq = t.iqs.(i) in
      List.iter
        (fun (u : Uop.t) ->
          (* revalidate the phase-1 selection: a commit-side flush in
             this cycle squashed it, or a boundary fault hook stole it
             from the queue (Iq.steal_waiting, observable as the O(1)
             in_iq flag) -- issuing it anyway would mask the fault *)
          if
            (not u.Uop.squashed)
            && u.Uop.state = Uop.Waiting
            && u.Uop.in_iq
          then
            if issue_uop t u then begin
              (match t.tracer with
              | Some tr -> Perf.Pipetrace.on_issue tr ~seq:u.Uop.seq ~now:t.now
              | None -> ());
              if u.Uop.state <> Uop.Waiting then Iq.remove iq u;
              if u.Uop.mispredicted && u.Uop.exc = None then
                match !redirect with
                | Some (s, _) when s <= u.Uop.seq -> ()
                | Some _ | None -> redirect := Some (u.Uop.seq, u.Uop.next_pc)
            end)
        chosen)
    eff.ie_chosen;
  match !redirect with
  | Some (seq, target) ->
      (* redirect-vs-commit arbitration: the oldest resolved
         mispredict wins among this cycle's issues; commit already
         applied, so an older trap/serialise flush has squashed the
         issuing uop and suppressed the redirect via revalidation *)
      flush ~cause:`Misp t ~after:seq ~target;
      t.recover_misp <- true;
      (* model the resolve + refill bubble *)
      t.inflight <-
        Some { fb_ready_at = t.now + mispredict_penalty; fb_items = [] }
  | None -> ()

(* ---------------- at-commit execution -------------------------------- *)

(* Every store that enters the cache hierarchy must be announced: the
   Global Memory diff-rule and sibling LR reservations depend on it.
   The value is read back from the (write-through) backing memory. *)
let drain_notify t pa size =
  t.probes.Probe.on_drain
    {
      Probe.d_hartid = t.hartid;
      d_cycle = t.now;
      d_paddr = pa;
      d_size = size;
      d_value = Riscv.Memory.read_bytes_le t.plat.Platform.mem pa size;
    };
  t.on_store_drain pa size

let execute_at_head t (u : Uop.t) : unit =
  let arch = t.arch in
  let csr = arch.Arch_state.csr in
  let rg r = Arch_state.get_reg arch r in
  let finish ?(lat = 1) () =
    complete t u ~at:t.now;
    t.commit_busy_until <- t.now + lat
  in
  let fault exc tval =
    u.Uop.exc <- Some (exc, tval);
    u.Uop.state <- Uop.Completed;
    u.Uop.done_at <- t.now
  in
  let drain_sb () =
    let lat = Lsu.drain_all t.lsu ~now:t.now ~on_drain:(drain_notify t) in
    t.commit_busy_until <- max t.commit_busy_until (t.now + lat)
  in
  match u.Uop.insn with
  | Csr (op, rd, rs1, addr) -> (
      try
        let old_v =
          match op with
          | CSRRW | CSRRWI when rd = 0 -> 0L
          | CSRRW | CSRRS | CSRRC | CSRRWI | CSRRSI | CSRRCI ->
              Csr.read csr addr
        in
        let src =
          match op with
          | CSRRW | CSRRS | CSRRC -> rg rs1
          | CSRRWI | CSRRSI | CSRRCI -> Int64.of_int rs1
        in
        (match op with
        | CSRRW | CSRRWI -> Csr.write csr addr src
        | CSRRS | CSRRSI ->
            if rs1 <> 0 then Csr.write csr addr (Int64.logor old_v src)
        | CSRRC | CSRRCI ->
            if rs1 <> 0 then
              Csr.write csr addr (Int64.logand old_v (Int64.lognot src)));
        u.Uop.result <- old_v;
        u.Uop.csr_read <- Some (addr, old_v);
        finish ()
      with Csr.Illegal_csr _ -> fault Trap.Illegal_instruction 0L)
  | Ecall ->
      let exc =
        match csr.Csr.priv with
        | Csr.U -> Trap.Ecall_from_u
        | Csr.S -> Trap.Ecall_from_s
        | Csr.M -> Trap.Ecall_from_m
      in
      fault exc 0L
  | Ebreak -> fault Trap.Breakpoint u.Uop.pc
  | Mret ->
      if csr.Csr.priv <> Csr.M then fault Trap.Illegal_instruction 0L
      else begin
        u.Uop.next_pc <- Trap.mret csr;
        finish ()
      end
  | Sret ->
      if csr.Csr.priv = Csr.U then fault Trap.Illegal_instruction 0L
      else begin
        u.Uop.next_pc <- Trap.sret csr;
        finish ()
      end
  | Wfi -> finish ()
  | Fence ->
      drain_sb ();
      finish ()
  | Fence_i -> finish ()
  | Sfence_vma (_, _) ->
      if csr.Csr.priv = Csr.U then fault Trap.Illegal_instruction 0L
      else begin
        (* sfence.vma orders preceding stores before subsequent
           implicit page-table reads: drain the store buffer, then
           drop cached translations (including cached faults) *)
        drain_sb ();
        Tlb.flush t.tlb;
        finish ()
      end
  | Illegal _ -> fault Trap.Illegal_instruction 0L
  | Lr (w, _, rs1) -> (
      let size = match w with Width_w -> 4 | Width_d -> 8 in
      let vaddr = rg rs1 in
      if Int64.rem vaddr (Int64.of_int size) <> 0L then
        fault Trap.Load_misaligned vaddr
      else
        match Tlb.translate t.tlb csr vaddr Tlb.Load with
        | Tlb.Page_fault (exc, tval), _ -> fault exc tval
        | Tlb.Translated pa, _ ->
            if Platform.is_mmio t.plat pa then fault Trap.Load_access vaddr
            else begin
              let raw, lat = Softmem.Cache.read t.l1d ~addr:pa ~size in
              u.Uop.result <-
                (match w with
                | Width_w -> Iss.Alu.sext32 raw
                | Width_d -> raw);
              u.Uop.load_value <- raw;
              u.Uop.mem_cycle <- t.now;
              u.Uop.vaddr <- vaddr;
              u.Uop.paddr <- pa;
              u.Uop.msize <- size;
              Lsu.set_reservation t.lsu ~paddr:pa ~now:t.now;
              finish ~lat ()
            end)
  | Sc (w, _, rs1, rs2) -> (
      let size = match w with Width_w -> 4 | Width_d -> 8 in
      let vaddr = rg rs1 in
      if Int64.rem vaddr (Int64.of_int size) <> 0L then
        fault Trap.Store_misaligned vaddr
      else
        match Tlb.translate t.tlb csr vaddr Tlb.Store with
        | Tlb.Page_fault (exc, tval), _ -> fault exc tval
        | Tlb.Translated pa, _ ->
            let ok = Lsu.reservation_valid t.lsu ~paddr:pa ~now:t.now in
            Lsu.clear_reservation t.lsu;
            u.Uop.vaddr <- vaddr;
            u.Uop.paddr <- pa;
            u.Uop.msize <- size;
            if ok then begin
              drain_sb ();
              let lat = Softmem.Cache.write t.l1d ~addr:pa ~size (rg rs2) in
              drain_notify t pa size;
              u.Uop.sdata <- rg rs2;
              u.Uop.addr_ready <- true;
              u.Uop.result <- 0L;
              finish ~lat ()
            end
            else begin
              u.Uop.result <- 1L;
              u.Uop.sc_failed <- true;
              finish ()
            end)
  | Amo (op, w, _, rs1, rs2) -> (
      let size = match w with Width_w -> 4 | Width_d -> 8 in
      let vaddr = rg rs1 in
      if Int64.rem vaddr (Int64.of_int size) <> 0L then
        fault Trap.Store_misaligned vaddr
      else
        match Tlb.translate t.tlb csr vaddr Tlb.Store with
        | Tlb.Page_fault (exc, tval), _ -> fault exc tval
        | Tlb.Translated pa, _ ->
            if Platform.is_mmio t.plat pa then fault Trap.Store_access vaddr
            else begin
              drain_sb ();
              let raw, rlat = Softmem.Cache.read t.l1d ~addr:pa ~size in
              let old_v =
                match w with
                | Width_w -> Iss.Alu.sext32 raw
                | Width_d -> raw
              in
              let new_v = Iss.Alu.eval_amo op w old_v (rg rs2) in
              let wlat = Softmem.Cache.write t.l1d ~addr:pa ~size new_v in
              drain_notify t pa size;
              u.Uop.result <- old_v;
              u.Uop.load_value <- raw;
              u.Uop.mem_cycle <- t.now;
              u.Uop.sdata <- new_v;
              u.Uop.vaddr <- vaddr;
              u.Uop.paddr <- pa;
              u.Uop.msize <- size;
              u.Uop.addr_ready <- true;
              finish ~lat:(rlat + wlat) ()
            end)
  | Load (lop, _, rs1, imm) ->
      (* MMIO load discovered at issue; strongly ordered *)
      assert u.Uop.mmio;
      ignore rs1;
      ignore imm;
      let drained = Lsu.drain_all t.lsu ~now:t.now ~on_drain:(drain_notify t) in
      (match Platform.read t.plat ~addr:u.Uop.paddr ~size:u.Uop.msize with
      | raw ->
          u.Uop.result <- Iss.Alu.extend_load lop raw;
          u.Uop.load_value <- raw;
          u.Uop.mem_cycle <- t.now;
          finish ~lat:(20 + drained) ()
      | exception Platform.Bus_fault _ -> fault Trap.Load_access u.Uop.vaddr)
  | Fld (_, _, _) ->
      assert u.Uop.mmio;
      fault Trap.Load_access u.Uop.vaddr
  | Lui _ | Auipc _ | Jal _ | Jalr _ | Branch _ | Store _ | Fsd _
  | Op_imm _ | Op_imm_w _ | Op _ | Op_w _ | Mul _ | Mul_w _ | Fp_rrr _
  | Fp_fused _ | Fp_sign _ | Fp_minmax _ | Fp_cmp _ | Fsqrt_d _
  | Fcvt_d_l _ | Fcvt_d_lu _ | Fcvt_d_w _ | Fcvt_l_d _ | Fcvt_lu_d _
  | Fcvt_w_d _ | Fmv_x_d _ | Fmv_d_x _ | Fclass_d _ ->
      assert false

(* ---------------- commit ---------------------------------------------- *)

exception Stop_commit

let emit_probe t (u : Uop.t) ~trap ~interrupt =
  (match u.Uop.insn with
  | Insn.Sc _ when trap = None && interrupt = None ->
      Perf.Perf_counter.incr t.ctrs
        (if u.Uop.sc_failed then t.ids.i_sc_fail else t.ids.i_sc_success)
  | _ -> ());
  let load =
    if
      (Uop.is_load u || Insn.is_amo u.Uop.insn)
      && trap = None && u.Uop.exc = None
      &&
      match u.Uop.insn with Sc _ -> false | _ -> true
    then
      Some
        {
          Probe.m_paddr = u.Uop.paddr;
          m_size = u.Uop.msize;
          m_value = u.Uop.load_value;
          m_cycle = u.Uop.mem_cycle;
        }
    else None
  in
  let store =
    if Uop.is_store u && u.Uop.exc = None && not u.Uop.sc_failed then
      Some
        {
          Probe.m_paddr = u.Uop.paddr;
          m_size = u.Uop.msize;
          m_value = u.Uop.sdata;
          m_cycle = u.Uop.mem_cycle;
        }
    else None
  in
  t.probes.Probe.on_commit
    {
      Probe.p_hartid = t.hartid;
      p_cycle = t.now;
      p_pc = u.Uop.pc;
      p_insn = u.Uop.insn;
      p_second = u.Uop.second;
      p_next_pc = u.Uop.next_pc;
      p_trap = trap;
      p_interrupt = interrupt;
      p_load = load;
      p_store = store;
      p_sc_failed = u.Uop.sc_failed;
      p_csr_read = u.Uop.csr_read;
      p_mmio = u.Uop.mmio;
      p_instret = t.arch.Arch_state.csr.Csr.reg_minstret;
    }

let nop_uop t =
  Uop.make ~seq:(-1) ~pc:t.arch.Arch_state.pc ~insn:(Insn.Op_imm (ADD, 0, 0, 0L))
    ~second:None ~fusion:None ~pred_next:t.arch.Arch_state.pc

(* Phase 1: sample the interrupt lines the commit stage will observe.
   The CLINT is SoC-shared mutable state; snapshotting the two wires
   here keeps the retire walk (inherently sequential, every retired
   uop mutates architectural state) deterministic regardless of when
   other units evaluate. *)
let step_commit t : commit_eff =
  {
    ce_mtip = Platform.Clint.mtip t.plat.Platform.clint t.hartid;
    ce_msip = Platform.Clint.msip t.plat.Platform.clint t.hartid;
  }

let apply_commit t (eff : commit_eff) =
  if t.now < t.commit_busy_until then ()
  else begin
    (* interrupts are taken at commit boundaries *)
    let csr = t.arch.Arch_state.csr in
    Csr.set_mip_bit csr Csr.ip_mtip eff.ce_mtip;
    Csr.set_mip_bit csr Csr.ip_msip eff.ce_msip;
    match Trap.pending_interrupt csr with
    | Some irq ->
        let epc = t.arch.Arch_state.pc in
        let u = nop_uop t in
        let target = Trap.take_interrupt csr irq ~epc in
        t.arch.Arch_state.pc <- target;
        t.perf.p_interrupts <- t.perf.p_interrupts + 1;
        u.Uop.next_pc <- target;
        emit_probe t u ~trap:None ~interrupt:(Some irq);
        flush ~cause:`Trap t ~after:(t.rob.Rob.head - 1) ~target
    | None -> (
        try
          let budget = ref t.cfg.decode_width in
          while !budget > 0 do
            match Rob.peek_head t.rob with
            | None -> raise Stop_commit
            | Some u ->
                if u.Uop.state = Uop.Completed && u.Uop.done_at <= t.now then begin
                  match u.Uop.exc with
                  | Some (exc, tval) ->
                      t.perf.p_traps <- t.perf.p_traps + 1;
                      emit_probe t u ~trap:(Some (exc, tval)) ~interrupt:None;
                      let target =
                        Trap.take_exception csr exc tval ~epc:u.Uop.pc
                      in
                      t.arch.Arch_state.pc <- target;
                      flush ~cause:`Trap t ~after:(u.Uop.seq - 1) ~target;
                      raise Stop_commit
                  | None ->
                      (* stores need a store-buffer slot (or are MMIO) *)
                      if Uop.is_store u then begin
                        if u.Uop.mmio then begin
                          let lat =
                            Lsu.drain_all t.lsu ~now:t.now
                              ~on_drain:(drain_notify t)
                          in
                          (try
                             Platform.write t.plat ~addr:u.Uop.paddr
                               ~size:u.Uop.msize u.Uop.sdata
                           with Platform.Bus_fault _ -> ());
                          t.commit_busy_until <- t.now + lat + 20
                        end
                        else begin
                          if Lsu.sb_full t.lsu then begin
                            Perf.Perf_counter.incr t.ctrs
                              t.ids.i_commit_sb_full;
                            raise Stop_commit
                          end;
                          Lsu.commit_store t.lsu u
                        end
                      end;
                      if Uop.is_load u then Lsu.remove_load t.lsu u;
                      if u.Uop.eliminated then
                        u.Uop.result <-
                          Rename.value t.rename ~is_fp:false ~prd:u.Uop.prd;
                      (* architectural update *)
                      if u.Uop.arch_rd >= 0 then begin
                        if u.Uop.rd_is_fp then
                          Arch_state.set_freg t.arch u.Uop.arch_rd u.Uop.result
                        else Arch_state.set_reg t.arch u.Uop.arch_rd u.Uop.result
                      end;
                      t.arch.Arch_state.pc <- u.Uop.next_pc;
                      csr.Csr.reg_minstret <-
                        Int64.add csr.Csr.reg_minstret (Int64.of_int u.Uop.n_insns);
                      t.perf.p_instrs <- t.perf.p_instrs + u.Uop.n_insns;
                      t.perf.p_uops <- t.perf.p_uops + 1;
                      emit_probe t u ~trap:None ~interrupt:None;
                      (match t.tracer with
                      | Some tr ->
                          Perf.Pipetrace.on_commit tr ~seq:u.Uop.seq ~now:t.now
                      | None -> ());
                      Rename.commit_release t.rename ~is_fp:u.Uop.rd_is_fp
                        ~old_prd:u.Uop.old_prd;
                      Rob.pop_head t.rob;
                      budget := !budget - u.Uop.n_insns;
                      (* serialising instructions flush the pipeline *)
                      (match u.Uop.insn with
                      | Csr _ | Mret | Sret | Fence_i | Sfence_vma _ | Wfi ->
                          flush ~cause:`Serial t ~after:u.Uop.seq
                            ~target:u.Uop.next_pc;
                          raise Stop_commit
                      | _ -> ())
                end
                else if
                  u.Uop.state <> Uop.Completed
                  && (u.Uop.where = Uop.At_commit
                     || (u.Uop.mmio && u.Uop.state = Uop.Issued))
                then begin
                  execute_at_head t u;
                  (* loop re-examines the now-completed head *)
                  if u.Uop.state <> Uop.Completed then raise Stop_commit
                end
                else raise Stop_commit
          done
        with Stop_commit -> ())
  end

(* ---------------- store-buffer drain ---------------------------------- *)

(* Phase 1: snapshot drain eligibility.  A store committed in this
   cycle's application enters the buffer after this decision, so it
   becomes drain-eligible the following cycle (the "commit enqueues
   before drain dequeues, drain decides from the snapshot"
   arbitration row). *)
let step_drain t : drain_eff =
  { de_fire = Lsu.drain_ready t.lsu ~now:(t.now + 1) }

(* ---------------- per-cycle driver ------------------------------------ *)

(* Top-down CPI stack: attribute this cycle to exactly one Level-2
   bucket (one counter increment per cycle, so the buckets sum to
   measured cycles by construction).  Decision order: useful work,
   then speculation recovery, then an empty window (frontend), then
   whatever the ROB head is blocked on (backend).  Runs in phase 2,
   right after commit applies: the attribution inputs (ROB head,
   recovery windows) are this cycle's retirement outcome, which no
   phase-1 ordering can perturb. *)
let attribute_topdown t ~committed =
  let open Perf in
  let bucket =
    if committed > 0 then Topdown.Base
    else if t.now < t.recover_until then
      if t.recover_misp then Topdown.Badspec_mispredict
      else Topdown.Badspec_flush
    else
      match Rob.peek_head t.rob with
      | None ->
          if t.now < t.icache_stall_until then Topdown.Frontend_icache
          else Topdown.Frontend_fetch
      | Some u -> (
          let mem_bucket () =
            match u.Uop.insn with
            | Insn.Sc _ | Insn.Amo _ -> Topdown.Mem_store
            | _ -> Topdown.Mem_load
          in
          match u.Uop.state with
          | Uop.Completed ->
              if u.Uop.done_at > t.now || t.now < t.commit_busy_until then (
                (* head still finishing: charge its execution class *)
                match u.Uop.exec_class with
                | Config.LOAD -> mem_bucket ()
                | Config.STORE -> Topdown.Mem_store
                | _ -> Topdown.Core_exec)
              else
                (* done and commit idle, yet nothing retired: the head
                   store is blocked on a store-buffer slot *)
                Topdown.Mem_store
          | Uop.Issued -> (
              match u.Uop.exec_class with
              | Config.LOAD -> mem_bucket ()
              | Config.STORE -> Topdown.Mem_store
              | _ -> Topdown.Core_exec)
          | Uop.Waiting -> (
              match u.Uop.exec_class with
              | Config.LOAD -> mem_bucket ()
              | Config.STORE -> Topdown.Mem_store
              | _ -> Topdown.Core_dep))
  in
  Perf_counter.incr t.ctrs t.ids.i_td.(Topdown.index bucket)

(* Phase 1: evaluate every unit's planner against the read-only
   start-of-cycle state.  Under [Default_order] the planners run in
   the canonical order; under [Shuffle seed] they run in a fresh
   seeded permutation each cycle.  Because phase 1 is pure, the two
   must be byte-identical -- the permutation harness exists to catch
   any unit that sneaks a mutation or a cross-unit read into its
   planning. *)
let step t : effects =
  match t.phase_order with
  | Default_order ->
      {
        ef_commit = step_commit t;
        ef_issue = step_issue t;
        ef_drain = step_drain t;
        ef_dispatch = step_dispatch t;
        ef_fetch = step_fetch t;
      }
  | Shuffle seed ->
      let commit = ref None
      and issue = ref None
      and drain = ref None
      and dispatch = ref None
      and fetch = ref None in
      let thunks =
        [|
          (fun () -> commit := Some (step_commit t));
          (fun () -> issue := Some (step_issue t));
          (fun () -> drain := Some (step_drain t));
          (fun () -> dispatch := Some (step_dispatch t));
          (fun () -> fetch := Some (step_fetch t));
        |]
      in
      (* Fisher-Yates over the five planners, driven by a small LCG
         seeded from (seed, cycle): deterministic per cycle, different
         across cycles, marshal-safe (no global RNG state) *)
      let state = ref ((seed * 0x9E3779B9) + ((t.now + 1) * 0x85EBCA6B)) in
      let rand n =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state mod n
      in
      for i = 4 downto 1 do
        let j = rand (i + 1) in
        let tmp = thunks.(i) in
        thunks.(i) <- thunks.(j);
        thunks.(j) <- tmp
      done;
      Array.iter (fun f -> f ()) thunks;
      let get = function Some x -> x | None -> assert false in
      {
        ef_commit = get !commit;
        ef_issue = get !issue;
        ef_drain = get !drain;
        ef_dispatch = get !dispatch;
        ef_fetch = get !fetch;
      }

(* Phase 2: advance the clock and commit every effect in the one
   canonical order.  This order -- and the revalidation each
   application performs -- IS the arbitration; see the DESIGN.md
   table.  Fault hooks registered on the SoC fire between [step] and
   [apply] (the effect boundary). *)
let apply t (e : effects) =
  t.now <- t.now + 1;
  t.perf.p_cycles <- t.perf.p_cycles + 1;
  t.arch.Arch_state.csr.Csr.reg_mcycle <- Int64.of_int t.now;
  Softmem.Cache.set_now t.l1i t.now;
  Softmem.Cache.set_now t.l1d t.now;
  let uops_before = t.perf.p_uops in
  apply_commit t e.ef_commit;
  let committed = t.perf.p_uops - uops_before in
  Perf.Perf_counter.incr t.ctrs t.ids.i_commit_w.(min committed 8);
  attribute_topdown t ~committed;
  apply_issue t e.ef_issue;
  if e.ef_drain.de_fire then
    Lsu.drain t.lsu ~now:t.now ~on_drain:(drain_notify t);
  if Queue.is_empty t.fetch_queue then
    Perf.Perf_counter.incr t.ctrs t.ids.i_fetch_bubble;
  apply_dispatch t e.ef_dispatch;
  apply_fetch t e.ef_fetch;
  (* edge probe: PTW walks performed while a flush-recovery window is
     open (stale-translation refetch territory, the Figure 3 class) *)
  let walks = t.tlb.Tlb.walks in
  if t.now <= t.recover_until && walks > t.tlb_walk_seen then
    Perf.Perf_counter.add t.ctrs t.ids.i_tlb_walk_flush
      (walks - t.tlb_walk_seen);
  t.tlb_walk_seen <- walks

let cycle t = apply t (step t)

let ipc t =
  if t.perf.p_cycles = 0 then 0.0
  else float_of_int t.perf.p_instrs /. float_of_int t.perf.p_cycles

let set_tracer t tr = t.tracer <- tr

(* Merge every counter source into one named snapshot: the registry
   (top-down buckets, stall reasons, histograms), the legacy perf
   block, and the per-structure stats kept by the BPU/LSU/TLB/caches.
   This is the interchange format consumed by [Perf.Topdown],
   [Archdb.record_counters] and the CLI/bench reporters. *)
let counter_snapshot t : (string * int) list =
  let p = t.perf and b = t.bpu and l = t.lsu and tlb = t.tlb in
  let cache prefix c =
    let s = Softmem.Cache.stats c in
    [
      (prefix ^ ".accesses", s.Softmem.Cache.accesses);
      (prefix ^ ".misses", s.Softmem.Cache.misses);
      (prefix ^ ".refills", s.Softmem.Cache.refills);
      (prefix ^ ".probes", s.Softmem.Cache.probes);
      (prefix ^ ".evictions", s.Softmem.Cache.evictions);
      (prefix ^ ".mshr_saturated", s.Softmem.Cache.mshr_saturated);
    ]
  in
  Perf.Perf_counter.to_alist t.ctrs
  @ [
      ("core.cycles", p.p_cycles);
      ("core.instrs", p.p_instrs);
      ("core.uops", p.p_uops);
      ("core.fused", p.p_fused);
      ("core.moves_eliminated", p.p_moves_eliminated);
      ("core.loads", p.p_loads);
      ("core.stores", p.p_stores);
      ("core.traps", p.p_traps);
      ("core.interrupts", p.p_interrupts);
      ("core.flushes", p.p_flushes);
      ("core.dispatched", p.p_dispatched);
      ("core.hi_prio", p.p_hi_prio);
      ("bpu.lookups", b.Bpu.lookups);
      ("bpu.cond_branches", b.Bpu.cond_branches);
      ("bpu.mispredicts", b.Bpu.mispredicts);
      ("bpu.misp_branch", b.Bpu.misp_branch);
      ("bpu.misp_jal", b.Bpu.misp_jal);
      ("bpu.misp_jalr", b.Bpu.misp_jalr);
      ("bpu.misp_ret", b.Bpu.misp_ret);
      ("bpu.tage_provided", b.Bpu.tage_provided);
      ("bpu.bimodal_provided", b.Bpu.bimodal_provided);
      ("bpu.ras_pushes", b.Bpu.ras_pushes);
      ("bpu.ras_pops", b.Bpu.ras_pops);
      ("bpu.ras_overflows", b.Bpu.ras_overflows);
      ("bpu.ras_underflows", b.Bpu.ras_underflows);
      ("lsu.forward_hits", l.Lsu.forwards);
      ("lsu.forward_blocked", l.Lsu.blocked_loads);
      ("lsu.forward_misses", l.Lsu.forward_misses);
      ("lsu.sb_drains", l.Lsu.drains);
      ("tlb.walks", tlb.Tlb.walks);
      ("tlb.itlb_misses", tlb.Tlb.itlb_misses);
      ("tlb.dtlb_misses", tlb.Tlb.dtlb_misses);
      ("tlb.stlb_hits", tlb.Tlb.stlb_hits);
      ("tlb.cached_fault_hits", tlb.Tlb.cached_fault_hits);
    ]
  @ cache "l1i" t.l1i @ cache "l1d" t.l1d

(* Where is commit stuck?  Snapshot of the retirement bottleneck for
   the hang watchdog's failure report.  Occupancies come from the same
   O(1) accessors dispatch admission reads, so the two can never
   disagree. *)
let stall_site t : string =
  let occupancy =
    Printf.sprintf "rob=%d/%d iq=%d lq=%d sq=%d sb=%d/%d%s"
      (Rob.count t.rob) t.cfg.Config.rob_size
      (Array.fold_left (fun a iq -> a + Iq.occupancy iq) 0 t.iqs)
      (Lsu.lq_occupancy t.lsu) (Lsu.sq_occupancy t.lsu)
      (Lsu.sb_occupancy t.lsu)
      t.cfg.Config.store_buffer_size
      (if t.halted then " halted" else "")
  in
  match Rob.peek_head t.rob with
  | None -> Printf.sprintf "rob empty, fetch_pc=0x%Lx; %s" t.fetch_pc occupancy
  | Some u ->
      let state =
        match u.Uop.state with
        | Uop.Waiting -> "waiting"
        | Uop.Issued -> "issued"
        | Uop.Completed -> "completed"
      in
      Printf.sprintf "rob head seq=%d pc=0x%Lx [%s] %s; %s" u.Uop.seq
        u.Uop.pc (Insn.show u.Uop.insn) state occupancy
