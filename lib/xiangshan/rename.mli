(** Register renaming: separate integer and FP physical register
    files with free lists, plus reference-counted move elimination for
    the integer file (Table II NH feature).

    The physical register files also hold the speculative values and
    their ready cycles: the execute-at-issue model computes results
    straight into the physical file, and consumers become ready when
    [ready_at] passes. *)

type rf = {
  map : int array; (** architectural -> physical *)
  free : int Queue.t;
  value : int64 array;
  ready_at : int array;
  refcnt : int array; (** move elimination shares physical registers *)
}

type t = { int_rf : rf; fp_rf : rf; cfg : Config.t }

val create : Config.t -> t

val lookup : t -> is_fp:bool -> int -> int

val can_alloc : t -> is_fp:bool -> bool

val alloc : t -> is_fp:bool -> arch:int -> now:int -> int * int
(** New destination mapping; returns (prd, old_prd).  The old mapping
    is released at commit or restored on rollback. *)

val alias : t -> arch_rd:int -> arch_rs:int -> int * int
(** Move elimination: map [arch_rd] to [arch_rs]'s physical register,
    bumping its reference count; returns (prd, old_prd). *)

val corrupt_alias : t -> arch_rd:int -> arch_rs:int -> unit
(** Fault injection: silently remap [arch_rd] onto [arch_rs]'s
    physical register (a mis-fired move elimination); the next
    consumer of [arch_rd] reads the wrong value. *)

val commit_release : t -> is_fp:bool -> old_prd:int -> unit

val rollback : t -> Uop.t -> unit
(** Undo a squashed uop's mapping (call youngest-first). *)

val set_result : t -> is_fp:bool -> prd:int -> value:int64 -> ready_at:int -> unit

val value : t -> is_fp:bool -> prd:int -> int64

val ready : t -> is_fp:bool -> prd:int -> now:int -> bool

val srcs_ready : t -> Uop.t -> now:int -> bool

val free_count : t -> is_fp:bool -> int
