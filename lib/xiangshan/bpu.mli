(** Branch prediction unit: micro-BTB + BTB, a 4-table TAGE-lite
    direction predictor, a return-address stack, an ITTAGE-lite
    indirect predictor (NH), and the confidence estimation table used
    by the PUBS issue policy (paper §IV-D). *)

type t = {
  btb : btb_entry array;
  btb_sets : int;
  ubtb : btb_entry array;
  ubtb_size : int;
  bimodal : int array;
  bimodal_size : int;
  tage : tage_entry array array;
  tage_size : int;
  hist_lens : int array;
  mutable ghist : int64;
  ras : int64 array;
  mutable ras_top : int;
  ras_size : int;
  mutable ras_depth : int;
  ittage : btb_entry array;
  ittage_size : int;
  use_ittage : bool;
  conf : int array;
  conf_size : int;
  mutable lookups : int;
  mutable cond_branches : int;
  mutable mispredicts : int;
  mutable misp_branch : int;
  mutable misp_jal : int;
  mutable misp_jalr : int;
  mutable misp_ret : int;
  mutable tage_provided : int;
  mutable bimodal_provided : int;
  mutable ras_pushes : int;
  mutable ras_pops : int;
  mutable ras_overflows : int;
  mutable ras_underflows : int;
}

and btb_entry = { mutable b_tag : int64; mutable b_target : int64 }

and tage_entry = {
  mutable t_tag : int;
  mutable t_ctr : int;
  mutable t_useful : int;
}

val create : Config.t -> t

type prediction = { taken : bool; target : int64 }

val predict : t -> pc:int64 -> insn:Riscv.Insn.t -> prediction
(** Called by the IFU for every fetched instruction; updates the RAS
    speculatively on calls and returns. *)

val update :
  t ->
  pc:int64 ->
  insn:Riscv.Insn.t ->
  taken:bool ->
  target:int64 ->
  mispredicted:bool ->
  unit
(** Resolve-time training: bimodal + TAGE provider/allocation, BTB and
    ITTAGE targets, global history, and the PUBS confidence run. *)

val corrupt_targets : t -> int
(** Fault injection: flip an address bit in every valid BTB / uBTB /
    ITTAGE target.  Pair with [Core]'s redirect suppression to turn
    the bad predictions into wrong-path commits.  Returns the number
    of entries corrupted. *)

val unconfident : t -> pc:int64 -> bool
(** PUBS: a branch is unconfident until it accumulates a run of
    correct predictions. *)

val mpki : t -> instructions:int -> float
(** Mispredictions per kilo-instruction (the paper's PUBS selection
    criterion is MPKI > 3). *)

val is_call : Riscv.Insn.t -> bool

val is_ret : Riscv.Insn.t -> bool
