(** The XiangShan-like superscalar out-of-order core (paper
    Figure 10).

    Pipeline: decoupled fetch with BPU-directed bundles, decode with
    optional macro-op fusion, rename with move elimination, dispatch
    into distributed issue queues, execute-at-issue with per-class
    latencies, a load/store unit with store queue + store buffer, and
    in-order commit maintaining the architectural state DiffTest
    observes.  System instructions, atomics and MMIO execute at the
    ROB head; `sfence.vma` drains the store buffer and flushes the
    TLBs.  Fidelity notes are in DESIGN.md. *)

open Riscv

type fetch_item = {
  fi_pc : int64;
  fi_insn : Insn.t;
  fi_pred_next : int64;
  fi_fault : (Trap.exc * int64) option;
  mutable fi_fetched_at : int;  (** cycle the item entered the fetch queue *)
}

type fetch_bundle = { fb_ready_at : int; fb_items : fetch_item list }

(** Performance counters, including the Figure 15 ready-instruction
    histogram and the PUBS high-priority accounting. *)
type perf = {
  mutable p_cycles : int;
  mutable p_instrs : int;
  mutable p_uops : int;
  mutable p_fused : int;
  mutable p_moves_eliminated : int;
  mutable p_loads : int;
  mutable p_stores : int;
  mutable p_traps : int;
  mutable p_interrupts : int;
  mutable p_flushes : int;
  ready_hist : int array;
  mutable p_dispatched : int;
  mutable p_hi_prio : int;
}

(** Dense handles into the counter registry, resolved at [create] so
    the per-cycle instrumentation is a plain array store. *)
type ids

type t = {
  cfg : Config.t;
  hartid : int;
  arch : Arch_state.t; (** committed architectural state *)
  plat : Platform.t;
  bpu : Bpu.t;
  tlb : Tlb.t;
  l1i : Softmem.Cache.t;
  l1d : Softmem.Cache.t;
  rename : Rename.t;
  rob : Rob.t;
  iqs : Iq.t array;
  lsu : Lsu.t;
  probes : Probe.sinks;
  perf : perf;
  ctrs : Perf.Perf_counter.t;
      (** named counter registry; pure observation, never consulted by
          the pipeline *)
  ids : ids;
  def_table : int array;
  mutable now : int;
  mutable seq : int;
  mutable fetch_pc : int64;
  mutable fetch_stalled : bool;
  mutable inflight : fetch_bundle option;
  fetch_queue : fetch_item Queue.t;
  mutable commit_busy_until : int;
  mutable recover_until : int;
  mutable recover_misp : bool;
  mutable icache_stall_until : int;
  mutable tracer : Perf.Pipetrace.t option;
      (** opt-in pipeline tracer; [None] (the default) keeps the hot
          paths allocation-free *)
  mutable halted : bool;
  mutable on_store_drain : int64 -> int -> unit;
  mutable bug_trust_bpu : int;
      (** fault injection: for the next N resolved mispredictions,
          follow the (possibly corrupted) prediction instead of
          redirecting -- wrong-path instructions then commit *)
}

val create :
  Config.t ->
  hartid:int ->
  plat:Platform.t ->
  l1i:Softmem.Cache.t ->
  l1d:Softmem.Cache.t ->
  ptw_port:Softmem.Cache.t ->
  t

val set_boot_pc : t -> int64 -> unit

val sync_regfile_from_arch : t -> unit
(** Copy the committed register values into the mapped physical
    registers (after restoring a checkpoint). *)

val flush : t -> after:int -> target:int64 -> unit
(** Squash every uop with seq > [after], roll the rename state back,
    and restart fetch at [target]. *)

val mispredict_penalty : int

val cycle : t -> unit
(** One clock: commit, issue/execute, store-buffer drain, dispatch,
    fetch. *)

val ipc : t -> float

val set_tracer : t -> Perf.Pipetrace.t option -> unit

val counter_snapshot : t -> (string * int) list
(** Every counter the core maintains, as (name, value) pairs: the
    registry (top-down buckets [td.*], stall attribution [stall.*],
    frontend/ROB/commit histograms), the legacy perf block [core.*],
    and the per-structure stats [bpu.* lsu.* tlb.* l1i.* l1d.*].
    Suitable for [Perf.Topdown.of_counters]. *)

val stall_site : t -> string
(** One-line snapshot of the retirement bottleneck (ROB head uop and
    queue occupancies), reported by the hang watchdog. *)
