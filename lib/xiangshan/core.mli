(** The XiangShan-like superscalar out-of-order core (paper
    Figure 10).

    Pipeline: decoupled fetch with BPU-directed bundles, decode with
    optional macro-op fusion, rename with move elimination, dispatch
    into distributed issue queues, execute-at-issue with per-class
    latencies, a load/store unit with store queue + store buffer, and
    in-order commit maintaining the architectural state DiffTest
    observes.  System instructions, atomics and MMIO execute at the
    ROB head; `sfence.vma` drains the store buffer and flushes the
    TLBs.  Fidelity notes are in DESIGN.md.

    Cycle semantics are two-phase (DESIGN.md "Two-phase cycle
    semantics"): [step] evaluates every unit against the read-only
    start-of-cycle state and returns a typed {!effects} record;
    [apply] commits those effects in one canonical order with explicit
    arbitration for structural hazards.  [cycle] is the composition.
    Phase-1 order independence is enforced by the seeded permutation
    harness ([Shuffle], MINJIE_PHASE_ORDER, test/test_twophase.ml). *)

open Riscv

type fetch_item = {
  fi_pc : int64;
  fi_insn : Insn.t;
  fi_pred_next : int64;
  fi_fault : (Trap.exc * int64) option;
  mutable fi_fetched_at : int;  (** cycle the item entered the fetch queue *)
}

type fetch_bundle = { fb_ready_at : int; fb_items : fetch_item list }

(** Performance counters, including the Figure 15 ready-instruction
    histogram and the PUBS high-priority accounting. *)
type perf = {
  mutable p_cycles : int;
  mutable p_instrs : int;
  mutable p_uops : int;
  mutable p_fused : int;
  mutable p_moves_eliminated : int;
  mutable p_loads : int;
  mutable p_stores : int;
  mutable p_traps : int;
  mutable p_interrupts : int;
  mutable p_flushes : int;
  ready_hist : int array;
  mutable p_dispatched : int;
  mutable p_hi_prio : int;
}

(** Dense handles into the counter registry, resolved at [create] so
    the per-cycle instrumentation is a plain array store. *)
type ids

(** Phase-1 evaluation order.  [Default_order] runs the unit planners
    in the canonical fixed order; [Shuffle seed] runs them in a fresh
    seeded permutation every cycle.  The two must be byte-identical in
    every observable (DiffTest verdicts, ArchDB, counter snapshots) --
    the shuffle mode exists purely to enforce phase-1 purity.
    Initialised from MINJIE_PHASE_ORDER ("default" | "shuffle" |
    "shuffle:SEED") at [create]. *)
type phase_order = Default_order | Shuffle of int

type t = {
  cfg : Config.t;
  hartid : int;
  arch : Arch_state.t; (** committed architectural state *)
  plat : Platform.t;
  bpu : Bpu.t;
  tlb : Tlb.t;
  l1i : Softmem.Cache.t;
  l1d : Softmem.Cache.t;
  rename : Rename.t;
  rob : Rob.t;
  iqs : Iq.t array;
  lsu : Lsu.t;
  probes : Probe.sinks;
  perf : perf;
  ctrs : Perf.Perf_counter.t;
      (** named counter registry; pure observation, never consulted by
          the pipeline *)
  ids : ids;
  def_table : int array;
  mutable now : int;
  mutable seq : int;
  mutable fetch_pc : int64;
  mutable fetch_stalled : bool;
  mutable inflight : fetch_bundle option;
  fetch_queue : fetch_item Queue.t;
  mutable commit_busy_until : int;
  mutable recover_until : int;
  mutable recover_misp : bool;
  mutable icache_stall_until : int;
  mutable tracer : Perf.Pipetrace.t option;
      (** opt-in pipeline tracer; [None] (the default) keeps the hot
          paths allocation-free *)
  mutable halted : bool;
  mutable on_store_drain : int64 -> int -> unit;
  mutable bug_trust_bpu : int;
      (** fault injection: for the next N resolved mispredictions,
          follow the (possibly corrupted) prediction instead of
          redirecting -- wrong-path instructions then commit *)
  mutable flushed_at : int;
      (** cycle of the most recent flush; [apply] uses it to cancel
          same-cycle plans that the redirect invalidated *)
  mutable phase_order : phase_order;
  mutable tlb_walk_seen : int;
      (** PTW walks observed up to the previous cycle's end; [apply]
          charges the delta to the tlb.walk_during_flush edge probe
          while inside a flush-recovery window *)
}

(** {1 Phase-1 effect records}

    Each unit's planner returns one of these from the read-only
    start-of-cycle state; {!apply} commits them in the canonical
    order.  They are plans, not state deltas: application performs the
    mutation through the unit's own code path after revalidating any
    claim a flush or a boundary fault hook may have invalidated. *)

type commit_eff = {
  ce_mtip : bool;  (** CLINT timer-interrupt line, sampled *)
  ce_msip : bool;  (** CLINT software-interrupt line, sampled *)
}

type issue_eff = {
  ie_ready_total : int;  (** Figure 15: ready instructions before selection *)
  ie_chosen : Uop.t list array;  (** per-IQ selection (age/PUBS policy) *)
}

type drain_eff = {
  de_fire : bool;  (** store buffer eligible to drain one entry *)
}

type stall_kind =
  | Rob_full
  | Iq_full
  | Lq_full
  | Sq_full
  | Freelist_int
  | Freelist_fp

type disp_plan = {
  pl_uop : Uop.t;  (** pre-built uop, seq pre-assigned from the snapshot *)
  pl_item : fetch_item;  (** head fetch-queue item consumed *)
  pl_second : fetch_item option;  (** second item consumed when fused *)
  pl_iq : int;  (** target IQ index, -1 = none (at-commit / fault) *)
  pl_eliminated : bool;  (** move elimination: alias, no alloc, no issue *)
  pl_int_srcs : int list;
      (** [Fusion.fused_regs] of [pl_uop], cached at plan time so phase
          2 never recomputes it; [pl_int_rd] is normalised (x0 writes
          dropped). *)
  pl_fp_srcs : int list;
  pl_int_rd : int option;
  pl_fp_rd : int option;
}

type dispatch_eff = {
  dp_plans : disp_plan list;  (** in program order *)
  dp_stall : stall_kind option;  (** first scarce resource, if any *)
}

type fetch_eff = {
  fe_complete : bool;  (** the in-flight bundle reaches the fetch queue *)
  fe_start : bool;  (** a new bundle may start (headroom from snapshot) *)
}

type effects = {
  ef_commit : commit_eff;
  ef_issue : issue_eff;
  ef_drain : drain_eff;
  ef_dispatch : dispatch_eff;
  ef_fetch : fetch_eff;
}

val create :
  Config.t ->
  hartid:int ->
  plat:Platform.t ->
  l1i:Softmem.Cache.t ->
  l1d:Softmem.Cache.t ->
  ptw_port:Softmem.Cache.t ->
  t

val set_phase_order : t -> phase_order -> unit

val set_boot_pc : t -> int64 -> unit

val sync_regfile_from_arch : t -> unit
(** Copy the committed register values into the mapped physical
    registers (after restoring a checkpoint). *)

val flush :
  ?cause:[ `Misp | `Trap | `Serial | `Other ] ->
  t ->
  after:int ->
  target:int64 ->
  unit
(** Squash every uop with seq > [after], roll the rename state back,
    and restart fetch at [target].  Records [flushed_at] so [apply]
    cancels plans the redirect invalidated. *)

val mispredict_penalty : int

val step : t -> effects
(** Phase 1: evaluate every unit planner against the read-only
    start-of-cycle state, in the configured {!phase_order}.  Performs
    no mutation. *)

val apply : t -> effects -> unit
(** Phase 2: advance the clock and commit the effects in the canonical
    order (commit, issue, drain, dispatch, fetch), revalidating
    snapshot claims against the live structures. *)

val cycle : t -> unit
(** One clock: [apply t (step t)].  Fault hooks that must fire at the
    effect boundary go through [Soc.tick], which separates the two
    calls. *)

val ipc : t -> float

val set_tracer : t -> Perf.Pipetrace.t option -> unit

val counter_snapshot : t -> (string * int) list
(** Every counter the core maintains, as (name, value) pairs: the
    registry (top-down buckets [td.*], stall attribution [stall.*],
    frontend/ROB/commit histograms), the legacy perf block [core.*],
    and the per-structure stats [bpu.* lsu.* tlb.* l1i.* l1d.*].
    Suitable for [Perf.Topdown.of_counters]. *)

val stall_site : t -> string
(** One-line snapshot of the retirement bottleneck (ROB head uop and
    queue occupancies), reported by the hang watchdog. *)
