(* Micro-architecture configurations: Table II of the paper.

   Both tape-out generations (YQH, 28nm/1.3GHz single-core and NH,
   14nm/2GHz dual-core) are expressed as configuration records, plus
   the evaluation variants of Figure 12 (2MB/4MB LLC, fixed-AMAT
   "FPGA" memory).  Most parameters are freely configurable, as in the
   Chisel generator. *)

type exec_class = ALU | MUL | DIV | JUMP_CSR | LOAD | STORE | FMAC | FMISC
[@@deriving show { with_path = false }, eq, ord]

type issue_policy = Age | Pubs
[@@deriving show { with_path = false }, eq]

type dram_model = Fixed_amat of int | Ddr4_1600 | Ddr4_2400
[@@deriving show { with_path = false }, eq]

type iq_config = {
  iq_name : string;
  iq_size : int;
  iq_issue : int; (* instructions issued per cycle *)
  iq_classes : exec_class list;
}
[@@deriving show { with_path = false }, eq]

type t = {
  cfg_name : string;
  n_cores : int;
  freq_ghz : float;
  (* frontend *)
  fetch_width : int;
  decode_width : int;
  fetch_buffer : int;
  btb_entries : int;
  ubtb_entries : int;
  tage_entries : int; (* per tagged table; 4 tables *)
  ras_size : int;
  ittage : bool;
  (* backend *)
  rob_size : int;
  lq_size : int;
  sq_size : int;
  int_pregs : int;
  fp_pregs : int;
  store_buffer_size : int;
  sb_drain_interval : int; (* cycles between store-buffer drains *)
  iqs : iq_config list;
  issue_policy : issue_policy;
  fusion : bool;
  move_elim : bool;
  (* memory subsystem *)
  l1i_kb : int;
  l1i_ways : int;
  l1d_kb : int;
  l1d_ways : int;
  l2_kb : int;
  l2_ways : int;
  l3_kb : int; (* 0 = no L3 *)
  l3_ways : int;
  mshrs : int;
  itlb_entries : int;
  dtlb_entries : int;
  stlb_entries : int;
  dram : dram_model;
  (* LR/SC reservation timeout (source of SC-failure non-determinism) *)
  sc_timeout_cycles : int;
}
[@@deriving show { with_path = false }]

let yqh_iqs =
  [
    { iq_name = "alu0"; iq_size = 32; iq_issue = 2; iq_classes = [ ALU ] };
    { iq_name = "alu1"; iq_size = 32; iq_issue = 2; iq_classes = [ ALU ] };
    {
      iq_name = "mdu";
      iq_size = 16;
      iq_issue = 1;
      iq_classes = [ MUL; DIV ];
    };
    { iq_name = "jmp"; iq_size = 16; iq_issue = 1; iq_classes = [ JUMP_CSR ] };
    { iq_name = "ld"; iq_size = 16; iq_issue = 2; iq_classes = [ LOAD ] };
    { iq_name = "st"; iq_size = 16; iq_issue = 1; iq_classes = [ STORE ] };
    { iq_name = "fmac"; iq_size = 32; iq_issue = 2; iq_classes = [ FMAC ] };
    { iq_name = "fmisc"; iq_size = 16; iq_issue = 1; iq_classes = [ FMISC ] };
  ]

let nh_iqs =
  [
    { iq_name = "alu0"; iq_size = 32; iq_issue = 2; iq_classes = [ ALU ] };
    { iq_name = "alu1"; iq_size = 32; iq_issue = 2; iq_classes = [ ALU ] };
    {
      iq_name = "mdu";
      iq_size = 16;
      iq_issue = 1;
      iq_classes = [ MUL; DIV ];
    };
    { iq_name = "jmp"; iq_size = 16; iq_issue = 1; iq_classes = [ JUMP_CSR ] };
    { iq_name = "ld"; iq_size = 16; iq_issue = 2; iq_classes = [ LOAD ] };
    (* NH decouples store address and data uops; we model one STORE
       class with two issue slots *)
    { iq_name = "st"; iq_size = 16; iq_issue = 2; iq_classes = [ STORE ] };
    { iq_name = "fmac"; iq_size = 32; iq_issue = 2; iq_classes = [ FMAC ] };
    { iq_name = "fmisc"; iq_size = 16; iq_issue = 1; iq_classes = [ FMISC ] };
  ]

let yqh =
  {
    cfg_name = "YQH";
    n_cores = 1;
    freq_ghz = 1.3;
    fetch_width = 8;
    decode_width = 6;
    fetch_buffer = 24;
    btb_entries = 2048;
    ubtb_entries = 32;
    tage_entries = 4096;
    ras_size = 16;
    ittage = false;
    rob_size = 192;
    lq_size = 64;
    sq_size = 48;
    int_pregs = 160;
    fp_pregs = 160;
    store_buffer_size = 16;
    sb_drain_interval = 4;
    iqs = yqh_iqs;
    issue_policy = Age;
    fusion = false;
    move_elim = false;
    l1i_kb = 16;
    l1i_ways = 4;
    l1d_kb = 32;
    l1d_ways = 8;
    l2_kb = 1024;
    l2_ways = 8;
    l3_kb = 0;
    l3_ways = 6;
    mshrs = 8;
    itlb_entries = 40;
    dtlb_entries = 40;
    stlb_entries = 4096;
    dram = Ddr4_1600;
    sc_timeout_cycles = 64;
  }

let nh =
  {
    yqh with
    cfg_name = "NH";
    n_cores = 2;
    freq_ghz = 2.0;
    btb_entries = 4096;
    ubtb_entries = 256;
    ras_size = 32;
    ittage = true;
    rob_size = 256;
    lq_size = 80;
    sq_size = 64;
    int_pregs = 192;
    fp_pregs = 192;
    iqs = nh_iqs;
    fusion = true;
    move_elim = true;
    l1i_kb = 128;
    l1i_ways = 8;
    l1d_kb = 128;
    l1d_ways = 8;
    l2_kb = 1024;
    l2_ways = 8;
    l3_kb = 6144;
    l3_ways = 6;
    mshrs = 16;
    dtlb_entries = 136;
    stlb_entries = 2048;
    dram = Ddr4_2400;
    sc_timeout_cycles = 64;
  }

(* single-core NH for performance studies that do not need SMP *)
let nh_single = { nh with cfg_name = "NH-1core"; n_cores = 1 }

(* quad-core NH: the widest SMP configuration the fuzz campaign runs;
   same per-core parameters, four private L2s under the shared L3 *)
let nh4 = { nh with cfg_name = "NH-4core"; n_cores = 4 }

(* Figure 12 variants *)
let yqh_fpga_90c = { yqh with cfg_name = "YQH-FPGA-90C-AMAT"; dram = Fixed_amat 90 }

let nh_fpga_250c_4mb =
  {
    nh_single with
    cfg_name = "NH-4MBLLC-FPGA-250C-AMAT";
    l3_kb = 4096;
    dram = Fixed_amat 250;
  }

let nh_fpga_250c_2mb =
  {
    nh_single with
    cfg_name = "NH-2MBLLC-FPGA-250C-AMAT";
    l3_kb = 2048;
    dram = Fixed_amat 250;
  }

let all_presets =
  [ yqh; nh; nh_single; nh4; yqh_fpga_90c; nh_fpga_250c_4mb; nh_fpga_250c_2mb ]

(* Table II printout for the bench harness. *)
let table2_row feature f =
  Printf.sprintf "| %-18s | %-18s | %-18s |" feature (f yqh) (f nh)

let table2 () =
  let rows =
    [
      ("ISA", fun _ -> "RV64 (IMAFD sub.)");
      ("Frequency", fun c -> Printf.sprintf "%.1fGHz (nominal)" c.freq_ghz);
      ("Core Number", fun c -> string_of_int c.n_cores);
      ("microBTB", fun c -> Printf.sprintf "%d entries" c.ubtb_entries);
      ("BTB", fun c -> Printf.sprintf "%d entries" c.btb_entries);
      ("TAGE-SC", fun c -> Printf.sprintf "4x%d entries" c.tage_entries);
      ( "Others",
        fun c -> if c.ittage then "RAS, ITTAGE" else "RAS" );
      ("L1 ICache", fun c -> Printf.sprintf "%dKB, %d-way" c.l1i_kb c.l1i_ways);
      ("L1 DCache", fun c -> Printf.sprintf "%dKB, %d-way" c.l1d_kb c.l1d_ways);
      ("L2 Cache", fun c -> Printf.sprintf "%dKB %d-way" c.l2_kb c.l2_ways);
      ( "L3 Cache",
        fun c ->
          if c.l3_kb = 0 then "-"
          else Printf.sprintf "%dMB %d-way" (c.l3_kb / 1024) c.l3_ways );
      ("L1 ITLB", fun c -> Printf.sprintf "%d entries" c.itlb_entries);
      ("L1 DTLB", fun c -> Printf.sprintf "%d entries" c.dtlb_entries);
      ("STLB", fun c -> Printf.sprintf "%d entries" c.stlb_entries);
      ( "Fetch Width",
        fun c -> Printf.sprintf "%d*4B instr./cycle" c.fetch_width );
      ( "Dec./Ren. Width",
        fun c -> Printf.sprintf "%d instr./cycle" c.decode_width );
      ( "ROB/LQ/SQ",
        fun c -> Printf.sprintf "%d/%d/%d" c.rob_size c.lq_size c.sq_size );
      ( "Phy. Int/FP RF",
        fun c -> Printf.sprintf "%d/%d" c.int_pregs c.fp_pregs );
      ( "Instruction Fusion",
        fun c -> if c.fusion then "Yes" else "-" );
      ("Move Elimination", fun c -> if c.move_elim then "Yes" else "-");
    ]
  in
  String.concat "\n"
    (Printf.sprintf "| %-18s | %-18s | %-18s |" "Feature" "YQH" "NH"
    :: List.map (fun (n, f) -> table2_row n f) rows)
