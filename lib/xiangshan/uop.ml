(* Micro-operations flowing through the out-of-order backend.  One uop
   normally covers one instruction; with macro-op fusion enabled a uop
   may cover two (n_insns = 2). *)

open Riscv

type fusion =
  | Fused_lui_addi of int64 (* resulting constant *)
  | Fused_zext_w (* slli 32 ; srli 32 *)
  | Fused_sh_add of int (* slli rd,rs1,k ; add rd,rd,rs2 *)

type where = In_iq | At_commit | Eliminated

type state = Waiting | Issued | Completed

type t = {
  seq : int; (* global program-order sequence number *)
  pc : int64;
  insn : Insn.t;
  second : Insn.t option; (* second instruction covered by fusion *)
  fusion : fusion option;
  n_insns : int;
  pred_next : int64; (* predicted next pc after this uop's insns *)
  exec_class : Config.exec_class;
  where : where;
  (* rename *)
  mutable arch_rd : int; (* -1 = none *)
  mutable rd_is_fp : bool;
  mutable prd : int; (* -1 = none *)
  mutable old_prd : int;
  mutable psrc : int array;
  mutable psrc_fp : bool array;
  mutable src2 : int; (* second fused source arch reg (for sh_add), -1 *)
  (* dynamic status *)
  mutable state : state;
  mutable done_at : int;
  mutable result : int64;
  mutable next_pc : int64; (* actual *)
  mutable mispredicted : bool;
  mutable exc : (Trap.exc * int64) option;
  mutable priority : bool; (* PUBS high priority *)
  mutable squashed : bool;
  mutable in_iq : bool; (* resident in an issue queue: O(1) membership
                           for phase-2 issue revalidation *)
  mutable eliminated : bool; (* move-eliminated: result read at commit *)
  (* memory *)
  mutable vaddr : int64;
  mutable paddr : int64;
  mutable msize : int;
  mutable sdata : int64; (* store data *)
  mutable addr_ready : bool;
  mutable mmio : bool;
  mutable load_value : int64;
  mutable mem_cycle : int; (* when the access touched memory *)
  mutable sc_failed : bool;
  mutable csr_read : (int * int64) option;
  mutable committed_store : bool; (* in SQ, waiting for SB drain *)
}

let is_load u = Insn.is_load u.insn && u.where = In_iq

let is_store u =
  match u.insn with Store _ | Fsd _ -> true | _ -> false

(* Classify an instruction into an execution class and a pipeline
   placement. *)
let classify (insn : Insn.t) : Config.exec_class * where =
  match insn with
  | Op_imm _ | Op_imm_w _ | Op _ | Op_w _ | Lui _ | Auipc _ | Branch _ ->
      (Config.ALU, In_iq)
  | Mul (m, _, _, _) -> (
      match m with
      | MUL | MULH | MULHSU | MULHU -> (Config.MUL, In_iq)
      | DIV | DIVU | REM | REMU -> (Config.DIV, In_iq))
  | Mul_w (m, _, _, _) -> (
      match m with
      | MULW -> (Config.MUL, In_iq)
      | DIVW | DIVUW | REMW | REMUW -> (Config.DIV, In_iq))
  | Jal _ | Jalr _ -> (Config.JUMP_CSR, In_iq)
  | Load _ | Fld _ -> (Config.LOAD, In_iq)
  | Store _ | Fsd _ -> (Config.STORE, In_iq)
  | Lr _ | Sc _ | Amo _ -> (Config.LOAD, At_commit)
  | Csr _ | Ecall | Ebreak | Mret | Sret | Wfi | Fence | Fence_i
  | Sfence_vma _ | Illegal _ ->
      (Config.JUMP_CSR, At_commit)
  | Fp_rrr (op, _, _, _) -> (
      match op with
      | FADD | FSUB | FMUL -> (Config.FMAC, In_iq)
      | FDIV -> (Config.FMISC, In_iq))
  | Fp_fused _ -> (Config.FMAC, In_iq)
  | Fsqrt_d _ -> (Config.FMISC, In_iq)
  | Fp_sign _ | Fp_minmax _ | Fp_cmp _ | Fcvt_d_l _ | Fcvt_d_lu _
  | Fcvt_d_w _ | Fcvt_l_d _ | Fcvt_lu_d _ | Fcvt_w_d _ | Fmv_x_d _
  | Fmv_d_x _ | Fclass_d _ ->
      (Config.FMISC, In_iq)

(* Execution latency by class (cycles).  FMA is 5 cycles -- the
   cascade FMA unit of the paper. *)
let latency (cls : Config.exec_class) (insn : Insn.t) : int =
  match cls with
  | Config.ALU -> 1
  | Config.MUL -> 3
  | Config.DIV -> 12
  | Config.JUMP_CSR -> 1
  | Config.LOAD -> 1 (* plus memory latency, added by the LSU *)
  | Config.STORE -> 1
  | Config.FMAC -> (
      match insn with Fp_fused _ -> 5 | _ -> 3)
  | Config.FMISC -> (
      match insn with
      | Fp_rrr (FDIV, _, _, _) -> 12
      | Fsqrt_d _ -> 16
      | _ -> 2)

let make ~seq ~pc ~insn ~second ~fusion ~pred_next : t =
  let exec_class, where = classify insn in
  let n_insns = match second with Some _ -> 2 | None -> 1 in
  {
    seq;
    pc;
    insn;
    second;
    fusion;
    n_insns;
    pred_next;
    exec_class;
    where;
    arch_rd = -1;
    rd_is_fp = false;
    prd = -1;
    old_prd = -1;
    psrc = [||];
    psrc_fp = [||];
    src2 = -1;
    state = Waiting;
    done_at = max_int;
    result = 0L;
    next_pc = pred_next;
    mispredicted = false;
    exc = None;
    priority = false;
    squashed = false;
    in_iq = false;
    eliminated = false;
    vaddr = 0L;
    paddr = 0L;
    msize = 0;
    sdata = 0L;
    addr_ready = false;
    mmio = false;
    load_value = 0L;
    mem_cycle = 0;
    sc_failed = false;
    csr_read = None;
    committed_store = false;
  }
