(* Branch prediction unit: micro-BTB + BTB, a 4-table TAGE-lite
   direction predictor, a return-address stack, and (for NH) an
   ITTAGE-lite indirect target predictor.

   The BPU also maintains the per-branch confidence estimation table
   used by the PUBS issue policy (§IV-D): a branch is "unconfident"
   until it has accumulated a run of correct predictions. *)

type btb_entry = { mutable b_tag : int64; mutable b_target : int64 }

type tage_entry = {
  mutable t_tag : int;
  mutable t_ctr : int; (* signed, -4..3; >= 0 predicts taken *)
  mutable t_useful : int;
}

type t = {
  (* BTB: direct-mapped over sets, 2-way *)
  btb : btb_entry array;
  btb_sets : int;
  ubtb : btb_entry array;
  ubtb_size : int;
  (* TAGE *)
  bimodal : int array; (* 2-bit counters *)
  bimodal_size : int;
  tage : tage_entry array array; (* 4 tables *)
  tage_size : int;
  hist_lens : int array;
  mutable ghist : int64; (* global history, newest bit at LSB *)
  (* RAS *)
  ras : int64 array;
  mutable ras_top : int;
  ras_size : int;
  mutable ras_depth : int; (* live entries, saturating at ras_size *)
  (* ITTAGE-lite *)
  ittage : btb_entry array;
  ittage_size : int;
  use_ittage : bool;
  (* PUBS confidence *)
  conf : int array; (* per-pc run counters *)
  conf_size : int;
  (* stats *)
  mutable lookups : int;
  mutable cond_branches : int;
  mutable mispredicts : int;
  (* per-component mispredict attribution *)
  mutable misp_branch : int;
  mutable misp_jal : int;
  mutable misp_jalr : int;
  mutable misp_ret : int;
  (* direction-predictor provider accounting *)
  mutable tage_provided : int;
  mutable bimodal_provided : int;
  (* RAS traffic *)
  mutable ras_pushes : int;
  mutable ras_pops : int;
  mutable ras_overflows : int;
  mutable ras_underflows : int;
}

let create (cfg : Config.t) : t =
  let btb_sets = max 16 (cfg.btb_entries / 2) in
  let tage_size = max 64 cfg.tage_entries in
  {
    btb =
      Array.init (btb_sets * 2) (fun _ -> { b_tag = -1L; b_target = 0L });
    btb_sets;
    ubtb = Array.init cfg.ubtb_entries (fun _ -> { b_tag = -1L; b_target = 0L });
    ubtb_size = cfg.ubtb_entries;
    bimodal = Array.make 4096 1;
    bimodal_size = 4096;
    tage =
      Array.init 4 (fun _ ->
          Array.init tage_size (fun _ ->
              { t_tag = -1; t_ctr = 0; t_useful = 0 }));
    tage_size;
    hist_lens = [| 8; 16; 32; 60 |];
    ghist = 0L;
    ras = Array.make cfg.ras_size 0L;
    ras_top = 0;
    ras_size = cfg.ras_size;
    ras_depth = 0;
    ittage =
      Array.init (max 16 (cfg.btb_entries / 4)) (fun _ ->
          { b_tag = -1L; b_target = 0L });
    ittage_size = max 16 (cfg.btb_entries / 4);
    use_ittage = cfg.ittage;
    conf = Array.make 1024 0;
    conf_size = 1024;
    lookups = 0;
    cond_branches = 0;
    mispredicts = 0;
    misp_branch = 0;
    misp_jal = 0;
    misp_jalr = 0;
    misp_ret = 0;
    tage_provided = 0;
    bimodal_provided = 0;
    ras_pushes = 0;
    ras_pops = 0;
    ras_overflows = 0;
    ras_underflows = 0;
  }

let pc_bits pc = Int64.to_int (Int64.shift_right_logical pc 2)

let hist_fold t len =
  (* fold [len] bits of global history into 12 bits *)
  let h = Int64.to_int (Int64.logand t.ghist (Int64.sub (Int64.shift_left 1L (min len 62)) 1L)) in
  (h lxor (h lsr 12) lxor (h lsr 24) lxor (h lsr 36) lxor (h lsr 48)) land 0xFFF

let tage_index t table pc =
  (pc_bits pc lxor hist_fold t t.hist_lens.(table) lxor (table * 0x9E37))
  land (t.tage_size - 1)

let tage_tag t table pc =
  (pc_bits pc lxor (hist_fold t t.hist_lens.(table) * 3) lxor (table * 0x61C))
  land 0xFF

(* Direction prediction with provider selection: longest matching
   tagged table wins, else the bimodal base predictor. *)
let predict_direction t pc : bool * int =
  let provider = ref (-1) in
  let pred = ref (t.bimodal.(pc_bits pc land (t.bimodal_size - 1)) >= 2) in
  for table = 0 to 3 do
    let e = t.tage.(table).(tage_index t table pc) in
    if e.t_tag = tage_tag t table pc then begin
      provider := table;
      pred := e.t_ctr >= 0
    end
  done;
  (!pred, !provider)

let btb_lookup t pc : int64 option =
  (* micro-BTB first *)
  let u = t.ubtb.(pc_bits pc land (t.ubtb_size - 1)) in
  if u.b_tag = pc then Some u.b_target
  else
    let set = pc_bits pc land (t.btb_sets - 1) in
    let e0 = t.btb.(set * 2) and e1 = t.btb.((set * 2) + 1) in
    if e0.b_tag = pc then Some e0.b_target
    else if e1.b_tag = pc then Some e1.b_target
    else None

let btb_update t pc target =
  let u = t.ubtb.(pc_bits pc land (t.ubtb_size - 1)) in
  u.b_tag <- pc;
  u.b_target <- target;
  let set = pc_bits pc land (t.btb_sets - 1) in
  let e0 = t.btb.(set * 2) and e1 = t.btb.((set * 2) + 1) in
  if e0.b_tag = pc then e0.b_target <- target
  else if e1.b_tag = pc then e1.b_target <- target
  else if e0.b_tag = -1L then begin
    e0.b_tag <- pc;
    e0.b_target <- target
  end
  else begin
    e1.b_tag <- e0.b_tag;
    e1.b_target <- e0.b_target;
    e0.b_tag <- pc;
    e0.b_target <- target
  end

(* The stack is circular and never refuses a push: on overflow the
   oldest return address is silently overwritten (counted), and a pop
   of an empty stack returns whatever is in the slot (counted).  The
   counters are observation only -- behaviour is unchanged. *)
let ras_push t v =
  t.ras_pushes <- t.ras_pushes + 1;
  if t.ras_depth >= t.ras_size then t.ras_overflows <- t.ras_overflows + 1
  else t.ras_depth <- t.ras_depth + 1;
  t.ras.(t.ras_top) <- v;
  t.ras_top <- (t.ras_top + 1) mod t.ras_size

let ras_pop t =
  t.ras_pops <- t.ras_pops + 1;
  if t.ras_depth = 0 then t.ras_underflows <- t.ras_underflows + 1
  else t.ras_depth <- t.ras_depth - 1;
  t.ras_top <- (t.ras_top + t.ras_size - 1) mod t.ras_size;
  t.ras.(t.ras_top)

let is_call (insn : Riscv.Insn.t) =
  match insn with
  | Jal (1, _) | Jalr (1, _, _) -> true
  | _ -> false

let is_ret (insn : Riscv.Insn.t) =
  match insn with Jalr (0, 1, 0L) -> true | _ -> false

type prediction = { taken : bool; target : int64 }

(* Predict the outcome of [insn] at [pc].  The IFU calls this for every
   fetched control-flow instruction. *)
let predict (t : t) ~(pc : int64) ~(insn : Riscv.Insn.t) : prediction =
  t.lookups <- t.lookups + 1;
  let next = Int64.add pc 4L in
  match insn with
  | Branch (_, _, _, off) ->
      t.cond_branches <- t.cond_branches + 1;
      let dir, provider = predict_direction t pc in
      if provider >= 0 then t.tage_provided <- t.tage_provided + 1
      else t.bimodal_provided <- t.bimodal_provided + 1;
      {
        taken = dir;
        target = (if dir then Int64.add pc off else next);
      }
  | Jal (rd, off) ->
      if rd = 1 then ras_push t next;
      { taken = true; target = Int64.add pc off }
  | Jalr (rd, rs1, _) ->
      if rd = 1 then begin
        let target =
          match btb_lookup t pc with Some tg -> tg | None -> next
        in
        ras_push t next;
        { taken = true; target }
      end
      else if rs1 = 1 && rd = 0 then { taken = true; target = ras_pop t }
      else begin
        (* other indirect: ITTAGE (path-hashed) or BTB *)
        let target =
          if t.use_ittage then begin
            let idx =
              (pc_bits pc lxor hist_fold t 24) land (t.ittage_size - 1)
            in
            let e = t.ittage.(idx) in
            if e.b_tag = pc then Some e.b_target else btb_lookup t pc
          end
          else btb_lookup t pc
        in
        { taken = true; target = Option.value target ~default:next }
      end
  | Lui _ | Auipc _ | Load _ | Store _ | Op_imm _ | Op_imm_w _ | Op _
  | Op_w _ | Mul _ | Mul_w _ | Lr _ | Sc _ | Amo _ | Csr _ | Ecall | Ebreak
  | Mret | Sret | Wfi | Fence | Fence_i | Sfence_vma _ | Fld _ | Fsd _
  | Fp_rrr _ | Fp_fused _ | Fp_sign _ | Fp_minmax _ | Fp_cmp _ | Fsqrt_d _
  | Fcvt_d_l _ | Fcvt_d_lu _ | Fcvt_d_w _ | Fcvt_l_d _ | Fcvt_lu_d _
  | Fcvt_w_d _ | Fmv_x_d _ | Fmv_d_x _ | Fclass_d _ | Illegal _ ->
      { taken = false; target = next }

(* Resolve-time update. *)
let update (t : t) ~(pc : int64) ~(insn : Riscv.Insn.t) ~(taken : bool)
    ~(target : int64) ~(mispredicted : bool) =
  if mispredicted then begin
    t.mispredicts <- t.mispredicts + 1;
    match insn with
    | Branch _ -> t.misp_branch <- t.misp_branch + 1
    | Jal _ -> t.misp_jal <- t.misp_jal + 1
    | Jalr _ ->
        if is_ret insn then t.misp_ret <- t.misp_ret + 1
        else t.misp_jalr <- t.misp_jalr + 1
    | _ -> ()
  end;
  (* confidence table for PUBS *)
  let ci = pc_bits pc land (t.conf_size - 1) in
  if mispredicted then t.conf.(ci) <- 0
  else if t.conf.(ci) < 64 then t.conf.(ci) <- t.conf.(ci) + 1;
  (match insn with
  | Branch _ ->
      (* bimodal *)
      let bi = pc_bits pc land (t.bimodal_size - 1) in
      let c = t.bimodal.(bi) in
      t.bimodal.(bi) <-
        (if taken then min 3 (c + 1) else max 0 (c - 1));
      (* tage provider update + allocation on mispredict *)
      let _, provider = predict_direction t pc in
      if provider >= 0 then begin
        let e = t.tage.(provider).(tage_index t provider pc) in
        e.t_ctr <-
          (if taken then min 3 (e.t_ctr + 1) else max (-4) (e.t_ctr - 1));
        if not mispredicted then e.t_useful <- min 3 (e.t_useful + 1)
      end;
      if mispredicted then begin
        (* allocate in a longer-history table *)
        let start = provider + 1 in
        (try
           for table = start to 3 do
             let e = t.tage.(table).(tage_index t table pc) in
             if e.t_useful = 0 then begin
               e.t_tag <- tage_tag t table pc;
               e.t_ctr <- (if taken then 0 else -1);
               raise Exit
             end
             else e.t_useful <- e.t_useful - 1
           done
         with Exit -> ())
      end;
      (* fold outcome into history *)
      t.ghist <-
        Int64.logor
          (Int64.shift_left t.ghist 1)
          (if taken then 1L else 0L)
  | Jal _ -> ()
  | Jalr _ ->
      if not (is_ret insn) then begin
        btb_update t pc target;
        if t.use_ittage then begin
          let idx = (pc_bits pc lxor hist_fold t 24) land (t.ittage_size - 1) in
          let e = t.ittage.(idx) in
          e.b_tag <- pc;
          e.b_target <- target
        end
      end
  | Lui _ | Auipc _ | Load _ | Store _ | Op_imm _ | Op_imm_w _ | Op _
  | Op_w _ | Mul _ | Mul_w _ | Lr _ | Sc _ | Amo _ | Csr _ | Ecall | Ebreak
  | Mret | Sret | Wfi | Fence | Fence_i | Sfence_vma _ | Fld _ | Fsd _
  | Fp_rrr _ | Fp_fused _ | Fp_sign _ | Fp_minmax _ | Fp_cmp _ | Fsqrt_d _
  | Fcvt_d_l _ | Fcvt_d_lu _ | Fcvt_d_w _ | Fcvt_l_d _ | Fcvt_lu_d _
  | Fcvt_w_d _ | Fmv_x_d _ | Fmv_d_x _ | Fclass_d _ | Illegal _ ->
      ());
  (match insn with
  | Branch _ -> ()
  | _ when taken -> btb_update t pc target
  | _ -> ())

(* Fault injection: flip an address bit in every valid predicted
   target (BTB, micro-BTB, ITTAGE).  Harmless on its own -- branch
   resolution redirects -- so campaign faults pair it with the core's
   redirect-suppression knob to turn wrong predictions into wrong-path
   commits.  Returns the number of entries corrupted. *)
let corrupt_targets (t : t) : int =
  let n = ref 0 in
  let corrupt (e : btb_entry) =
    if e.b_tag <> -1L then begin
      e.b_target <- Int64.logxor e.b_target 8L;
      incr n
    end
  in
  Array.iter corrupt t.btb;
  Array.iter corrupt t.ubtb;
  Array.iter corrupt t.ittage;
  !n

(* Low-confidence query for PUBS: a branch is unconfident until it has
   a run of >= 4 correct predictions (paper: ~5.9% of instructions end
   up high-priority on sjeng). *)
let unconfident (t : t) ~pc = t.conf.(pc_bits pc land (t.conf_size - 1)) < 4

let mpki t ~instructions =
  if instructions = 0 then 0.0
  else 1000.0 *. float_of_int t.mispredicts /. float_of_int instructions
