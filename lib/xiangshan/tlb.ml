(* L1 TLBs + STLB + hardware page-table walker.

   The walker reads PTEs *through the cache hierarchy* (its own port
   below L2, like XiangShan's PTW), so it sees memory as of the last
   store-buffer drain -- not the core's committed-but-undrained
   stores.  Combined with the deliberate caching of failed
   translations until an sfence.vma, this reproduces the speculative
   page-fault behaviour of Figure 3: the micro-kernel's lazy PTE write
   can be retired but not yet visible when the walker runs, and the
   resulting (legal!) page fault diverges from the REF until the
   page-fault diff-rule reconciles them. *)

open Riscv

type mapping = {
  ppn : int64; (* 4K-granular physical page number *)
  pte_flags : int64; (* leaf PTE bits for permission checks *)
}

type entry = {
  mutable e_vpn : int64; (* -1 invalid *)
  mutable e_res : (mapping, unit) result; (* Error () = cached fault *)
  mutable e_lru : int;
}

type tlb_array = { entries : entry array; mutable clock : int }

let make_array n =
  {
    entries = Array.init n (fun _ -> { e_vpn = -1L; e_res = Error (); e_lru = 0 });
    clock = 0;
  }

let arr_lookup (a : tlb_array) vpn =
  let found = ref None in
  Array.iter
    (fun e ->
      if e.e_vpn = vpn then begin
        a.clock <- a.clock + 1;
        e.e_lru <- a.clock;
        found := Some e.e_res
      end)
    a.entries;
  !found

let arr_insert (a : tlb_array) vpn res =
  a.clock <- a.clock + 1;
  let victim = ref a.entries.(0) in
  Array.iter (fun e -> if e.e_lru < !victim.e_lru then victim := e) a.entries;
  !victim.e_vpn <- vpn;
  !victim.e_res <- res;
  !victim.e_lru <- a.clock

let arr_flush (a : tlb_array) =
  Array.iter
    (fun e ->
      e.e_vpn <- -1L;
      e.e_res <- Error ())
    a.entries

type t = {
  itlb : tlb_array;
  dtlb : tlb_array;
  stlb : tlb_array;
  ptw_port : Softmem.Cache.t;
  mutable walks : int;
  mutable itlb_misses : int;
  mutable dtlb_misses : int;
  mutable stlb_hits : int; (* L1 misses served by the shared L2 TLB *)
  mutable cached_fault_hits : int;
}

let create (cfg : Config.t) ~ptw_port =
  {
    itlb = make_array cfg.itlb_entries;
    dtlb = make_array cfg.dtlb_entries;
    stlb = make_array cfg.stlb_entries;
    ptw_port;
    walks = 0;
    itlb_misses = 0;
    dtlb_misses = 0;
    stlb_hits = 0;
    cached_fault_hits = 0;
  }

let flush t =
  arr_flush t.itlb;
  arr_flush t.dtlb;
  arr_flush t.stlb

(* Fault injection: force the low ppn bit of every cached data-side
   mapping (dtlb + stlb), as if a PTE write had been missed -- loads
   and stores then hit the neighbouring physical page while the walker
   and the REF still agree on the real one.  The itlb is left intact
   so the corruption surfaces as data divergence, not fetch garbage.
   OR rather than XOR so a periodic re-injection never heals an
   already-corrupted entry.  Returns the entries newly corrupted. *)
let corrupt_data_ppn (t : t) : int =
  let n = ref 0 in
  let corrupt (a : tlb_array) =
    Array.iter
      (fun e ->
        if e.e_vpn >= 0L then
          match e.e_res with
          | Ok m when Int64.logand m.ppn 1L = 0L ->
              e.e_res <- Ok { m with ppn = Int64.logor m.ppn 1L };
              incr n
          | Ok _ | Error () -> ())
      a.entries
  in
  corrupt t.dtlb;
  corrupt t.stlb;
  !n

type access = Fetch | Load | Store

let fault_of = function
  | Fetch -> Trap.Fetch_page_fault
  | Load -> Trap.Load_page_fault
  | Store -> Trap.Store_page_fault

type outcome =
  | Translated of int64 (* physical address *)
  | Page_fault of Trap.exc * int64

(* Hardware walk via the cache port; returns the 4K mapping or a fault,
   plus accumulated latency. *)
let walk (t : t) (csr : Csr.t) (va : int64) : (mapping, unit) result * int =
  t.walks <- t.walks + 1;
  if not (Pte.va_canonical va) then (Error (), 4)
  else begin
    let lat = ref 4 (* walker occupancy *) in
    let rec step level table_pa =
      if level < 0 then Error ()
      else begin
        let pte_pa = Int64.add table_pa (Int64.of_int (8 * Pte.vpn va level)) in
        let pte, l = Softmem.Cache.read t.ptw_port ~addr:pte_pa ~size:8 in
        lat := !lat + l;
        if not (Pte.valid pte) then Error ()
        else if (not (Pte.readable pte)) && Pte.writable pte then Error ()
        else if Pte.is_leaf pte then begin
          let ppn = Pte.ppn pte in
          if
            level > 0
            && Int64.logand ppn (Int64.of_int ((1 lsl (9 * level)) - 1)) <> 0L
          then Error ()
          else begin
            (* form the 4K-level ppn for this va *)
            let low_vpns =
              match level with
              | 0 -> 0L
              | 1 -> Int64.of_int (Pte.vpn va 0)
              | _ -> Int64.of_int ((Pte.vpn va 1 lsl 9) lor Pte.vpn va 0)
            in
            Ok { ppn = Int64.add ppn low_vpns; pte_flags = pte }
          end
        end
        else step (level - 1) (Pte.pa_of_ppn (Pte.ppn pte))
      end
    in
    let r = step (Pte.levels - 1) (Pte.root_of_satp csr.Csr.reg_satp) in
    (r, !lat)
  end

let check_perms (csr : Csr.t) (m : mapping) (access : access) : bool =
  let pte = m.pte_flags in
  let sum = Csr.get_bit csr.Csr.reg_mstatus Csr.st_sum in
  let mxr = Csr.get_bit csr.Csr.reg_mstatus Csr.st_mxr in
  let type_ok =
    match access with
    | Fetch -> Pte.executable pte
    | Load -> Pte.readable pte || (mxr && Pte.executable pte)
    | Store -> Pte.writable pte
  in
  let priv_ok =
    match csr.Csr.priv with
    | Csr.U -> Pte.user pte
    | Csr.S -> (not (Pte.user pte)) || (sum && access <> Fetch)
    | Csr.M -> true
  in
  type_ok && priv_ok

(* Translate [va]; returns the outcome and the latency in cycles. *)
let translate (t : t) (csr : Csr.t) (va : int64) (access : access) :
    outcome * int =
  let active = csr.Csr.priv <> Csr.M && Pte.satp_mode csr.Csr.reg_satp = 8 in
  if not active then (Translated va, 0)
  else begin
    let vpn = Int64.shift_right_logical va 12 in
    let l1 = match access with Fetch -> t.itlb | Load | Store -> t.dtlb in
    let res, lat =
      match arr_lookup l1 vpn with
      | Some r -> (r, 0)
      | None -> (
          (match access with
          | Fetch -> t.itlb_misses <- t.itlb_misses + 1
          | Load | Store -> t.dtlb_misses <- t.dtlb_misses + 1);
          match arr_lookup t.stlb vpn with
          | Some r ->
              t.stlb_hits <- t.stlb_hits + 1;
              arr_insert l1 vpn r;
              (r, 2)
          | None ->
              let r, wl = walk t csr va in
              (* invalid PTEs are allowed to be cached (Figure 3) *)
              arr_insert t.stlb vpn r;
              arr_insert l1 vpn r;
              (r, 2 + wl))
    in
    match res with
    | Error () ->
        t.cached_fault_hits <- t.cached_fault_hits + 1;
        (Page_fault (fault_of access, va), lat)
    | Ok m ->
        if check_perms csr m access then
          (Translated (Int64.logor (Pte.pa_of_ppn m.ppn) (Int64.logand va 0xFFFL)), lat)
        else (Page_fault (fault_of access, va), lat)
  end
