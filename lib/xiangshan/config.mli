(** Micro-architecture configurations: Table II of the paper.

    Both tape-out generations -- YQH (28nm, 1.3GHz, single-core) and
    NH (14nm, 2GHz, dual-core) -- plus the Figure 12 evaluation
    variants are expressed as configuration records.  As with the
    Chisel generator, everything is freely configurable; the presets
    carry the tape-out parameters. *)

type exec_class = ALU | MUL | DIV | JUMP_CSR | LOAD | STORE | FMAC | FMISC

val pp_exec_class : Format.formatter -> exec_class -> unit
val show_exec_class : exec_class -> string
val equal_exec_class : exec_class -> exec_class -> bool
val compare_exec_class : exec_class -> exec_class -> int

(** Issue-queue selection policy: oldest-first (AGE) or prioritised
    unconfident branch slices (PUBS, §IV-D). *)
type issue_policy = Age | Pubs

val pp_issue_policy : Format.formatter -> issue_policy -> unit
val show_issue_policy : issue_policy -> string
val equal_issue_policy : issue_policy -> issue_policy -> bool

type dram_model = Fixed_amat of int | Ddr4_1600 | Ddr4_2400

val pp_dram_model : Format.formatter -> dram_model -> unit
val show_dram_model : dram_model -> string
val equal_dram_model : dram_model -> dram_model -> bool

(** One distributed reservation station (paper: 32- or 16-entry,
    issuing one or two instructions per cycle). *)
type iq_config = {
  iq_name : string;
  iq_size : int;
  iq_issue : int;
  iq_classes : exec_class list;
}

val pp_iq_config : Format.formatter -> iq_config -> unit
val show_iq_config : iq_config -> string
val equal_iq_config : iq_config -> iq_config -> bool

type t = {
  cfg_name : string;
  n_cores : int;
  freq_ghz : float;
  fetch_width : int;
  decode_width : int;
  fetch_buffer : int;
  btb_entries : int;
  ubtb_entries : int;
  tage_entries : int; (** per tagged table; four tables *)
  ras_size : int;
  ittage : bool;
  rob_size : int;
  lq_size : int;
  sq_size : int;
  int_pregs : int;
  fp_pregs : int;
  store_buffer_size : int;
  sb_drain_interval : int;
      (** cycles between store-buffer drains: the width of the
          Figure 3 non-determinism window *)
  iqs : iq_config list;
  issue_policy : issue_policy;
  fusion : bool;
  move_elim : bool;
  l1i_kb : int;
  l1i_ways : int;
  l1d_kb : int;
  l1d_ways : int;
  l2_kb : int;
  l2_ways : int;
  l3_kb : int; (** 0 = no L3 *)
  l3_ways : int;
  mshrs : int;
  itlb_entries : int;
  dtlb_entries : int;
  stlb_entries : int;
  dram : dram_model;
  sc_timeout_cycles : int;
      (** LR/SC reservation lifetime: the SC-failure non-determinism *)
}

val pp : Format.formatter -> t -> unit
val show : t -> string

val yqh_iqs : iq_config list
val nh_iqs : iq_config list

val yqh : t
(** First generation, Table II left column. *)

val nh : t
(** Second generation, Table II right column (dual-core). *)

val nh_single : t
(** NH with one core, for single-core performance studies. *)

val nh4 : t
(** Quad-core NH (fuzz campaign's widest SMP config). *)

val yqh_fpga_90c : t
val nh_fpga_250c_4mb : t
val nh_fpga_250c_2mb : t
(** The Figure 12 platform variants. *)

val all_presets : t list

val table2 : unit -> string
(** Render Table II from the presets. *)
