(* Distributed issue queues (the paper's grouped reservation stations,
   32- or 16-entry, issuing one or two instructions per cycle) with a
   pluggable selection policy: AGE (oldest first) or PUBS (§IV-D:
   high-priority unconfident-branch slices first, then age). *)

type t = {
  cfg : Config.iq_config;
  policy : Config.issue_policy;
  mutable slots : Uop.t list; (* kept in insertion (age) order *)
  mutable n : int; (* O(1) occupancy mirror of [slots] *)
}

let create (cfg : Config.iq_config) ~policy = { cfg; policy; slots = []; n = 0 }

let accepts t (cls : Config.exec_class) = List.mem cls t.cfg.iq_classes

let occupancy t = t.n

let capacity t = t.cfg.iq_size

let is_full t = t.n >= t.cfg.iq_size

let mem t (u : Uop.t) = List.exists (fun v -> v.Uop.seq = u.Uop.seq) t.slots

let insert t (u : Uop.t) =
  assert (not (is_full t));
  u.Uop.in_iq <- true;
  t.slots <- t.slots @ [ u ];
  t.n <- t.n + 1

let drop_squashed t =
  t.slots <-
    List.filter
      (fun (u : Uop.t) ->
        if u.Uop.squashed then u.Uop.in_iq <- false;
        not u.Uop.squashed)
      t.slots;
  t.n <- List.length t.slots

let clear t =
  List.iter (fun (u : Uop.t) -> u.Uop.in_iq <- false) t.slots;
  t.slots <- [];
  t.n <- 0

let rec take n = function
  | [] -> []
  | u :: rest -> if n = 0 then [] else u :: take (n - 1) rest

(* Select up to iq_issue ready uops under the policy; [ready] decides
   per-uop readiness (register sources plus LSU ordering for loads). *)
let select t ~(ready : Uop.t -> bool) : Uop.t list =
  let candidates =
    List.filter (fun u -> u.Uop.state = Uop.Waiting && ready u) t.slots
  in
  let ordered =
    match t.policy with
    | Config.Age -> candidates (* slots are age-ordered *)
    | Config.Pubs ->
        (* stable partition: high-priority first, age order within *)
        let hi, lo = List.partition (fun u -> u.Uop.priority) candidates in
        hi @ lo
  in
  take t.cfg.iq_issue ordered

let count_ready t ~(ready : Uop.t -> bool) : int =
  List.length
    (List.filter (fun u -> u.Uop.state = Uop.Waiting && ready u) t.slots)

(* One readiness scan serving both consumers: the selection (capped at
   iq_issue, policy-ordered) and the Figure 15 ready count.  [ready]
   can be expensive (rename lookups + LSU ordering), so the per-cycle
   issue path must evaluate it once per slot, not twice. *)
let select_counted t ~(ready : Uop.t -> bool) : Uop.t list * int =
  let candidates =
    List.filter (fun u -> u.Uop.state = Uop.Waiting && ready u) t.slots
  in
  let total = List.length candidates in
  let ordered =
    match t.policy with
    | Config.Age -> candidates
    | Config.Pubs ->
        let hi, lo = List.partition (fun u -> u.Uop.priority) candidates in
        hi @ lo
  in
  (take t.cfg.iq_issue ordered, total)

let remove t (u : Uop.t) =
  u.Uop.in_iq <- false;
  t.slots <- List.filter (fun v -> v.Uop.seq <> u.Uop.seq) t.slots;
  t.n <- List.length t.slots

(* Fault injection: silently lose the oldest waiting uop.  It stays
   Waiting in the ROB forever, so commit wedges on it -- unless a
   flush squashes it first (the caller retries in that case). *)
let steal_waiting t : Uop.t option =
  match List.find_opt (fun u -> u.Uop.state = Uop.Waiting) t.slots with
  | Some u ->
      remove t u;
      Some u
  | None -> None
