(* Distributed issue queues (the paper's grouped reservation stations,
   32- or 16-entry, issuing one or two instructions per cycle) with a
   pluggable selection policy: AGE (oldest first) or PUBS (§IV-D:
   high-priority unconfident-branch slices first, then age). *)

type t = {
  cfg : Config.iq_config;
  policy : Config.issue_policy;
  mutable slots : Uop.t list; (* kept in insertion (age) order *)
}

let create (cfg : Config.iq_config) ~policy = { cfg; policy; slots = [] }

let accepts t (cls : Config.exec_class) = List.mem cls t.cfg.iq_classes

let occupancy t = List.length t.slots

let is_full t = occupancy t >= t.cfg.iq_size

let insert t u =
  assert (not (is_full t));
  t.slots <- t.slots @ [ u ]

let drop_squashed t =
  t.slots <- List.filter (fun u -> not u.Uop.squashed) t.slots

let clear t = t.slots <- []

(* Select up to iq_issue ready uops under the policy; [ready] decides
   per-uop readiness (register sources plus LSU ordering for loads). *)
let select t ~(ready : Uop.t -> bool) : Uop.t list =
  let candidates = List.filter (fun u -> u.Uop.state = Uop.Waiting && ready u) t.slots in
  let ordered =
    match t.policy with
    | Config.Age -> candidates (* slots are age-ordered *)
    | Config.Pubs ->
        (* stable partition: high-priority first, age order within *)
        let hi, lo = List.partition (fun u -> u.Uop.priority) candidates in
        hi @ lo
  in
  let rec take n = function
    | [] -> []
    | u :: rest -> if n = 0 then [] else u :: take (n - 1) rest
  in
  take t.cfg.iq_issue ordered

let count_ready t ~(ready : Uop.t -> bool) : int =
  List.length
    (List.filter (fun u -> u.Uop.state = Uop.Waiting && ready u) t.slots)

let remove t (u : Uop.t) =
  t.slots <- List.filter (fun v -> v.Uop.seq <> u.Uop.seq) t.slots

(* Fault injection: silently lose the oldest waiting uop.  It stays
   Waiting in the ROB forever, so commit wedges on it -- unless a
   flush squashes it first (the caller retries in that case). *)
let steal_waiting t : Uop.t option =
  match List.find_opt (fun u -> u.Uop.state = Uop.Waiting) t.slots with
  | Some u ->
      remove t u;
      Some u
  | None -> None
