(** L1 TLBs + STLB + hardware page-table walker.

    The walker reads PTEs *through the cache hierarchy* (its own port
    below L2, like XiangShan's PTW), so it sees memory as of the last
    store-buffer drain rather than the core's retired-but-undrained
    stores; and failed translations are deliberately cached until an
    sfence.vma.  Together these reproduce the speculative page-fault
    behaviour of the paper's Figure 3. *)

type mapping = { ppn : int64; pte_flags : int64 }

type entry = {
  mutable e_vpn : int64;
  mutable e_res : (mapping, unit) result; (** [Error ()] = cached fault *)
  mutable e_lru : int;
}

type tlb_array = { entries : entry array; mutable clock : int }

type t = {
  itlb : tlb_array;
  dtlb : tlb_array;
  stlb : tlb_array;
  ptw_port : Softmem.Cache.t;
  mutable walks : int;
  mutable itlb_misses : int;
  mutable dtlb_misses : int;
  mutable stlb_hits : int;
  mutable cached_fault_hits : int;
}

val create : Config.t -> ptw_port:Softmem.Cache.t -> t

val flush : t -> unit
(** sfence.vma: drop every cached translation, including faults. *)

val corrupt_data_ppn : t -> int
(** Fault injection: force the low ppn bit of every cached data-side
    mapping (dtlb + stlb), modelling a stale translation surviving a
    PTE update.  Idempotent, so periodic re-injection never heals an
    entry.  Returns the number of entries newly corrupted. *)

type access = Fetch | Load | Store

type outcome =
  | Translated of int64
  | Page_fault of Riscv.Trap.exc * int64

val translate : t -> Riscv.Csr.t -> int64 -> access -> outcome * int
(** Translate a virtual address under the *committed* CSR state;
    returns the outcome and the latency in cycles (0 on an L1 TLB
    hit). *)

val walk : t -> Riscv.Csr.t -> int64 -> (mapping, unit) result * int
(** The raw hardware walk (exposed for tests). *)
