(** Micro-operations flowing through the out-of-order backend.  One
    uop normally covers one instruction; with macro-op fusion enabled
    it may cover two ([n_insns] = 2). *)

open Riscv

type fusion =
  | Fused_lui_addi of int64 (** the resulting constant *)
  | Fused_zext_w
  | Fused_sh_add of int (** the shift amount, 1..3 *)

(** Where the uop executes: in an issue queue, at the ROB head
    (system instructions, atomics, MMIO), or nowhere (eliminated
    moves). *)
type where = In_iq | At_commit | Eliminated

type state = Waiting | Issued | Completed

type t = {
  seq : int; (** global program-order sequence number *)
  pc : int64;
  insn : Insn.t;
  second : Insn.t option;
  fusion : fusion option;
  n_insns : int;
  pred_next : int64; (** predicted next pc after this uop's insns *)
  exec_class : Config.exec_class;
  where : where;
  mutable arch_rd : int;
  mutable rd_is_fp : bool;
  mutable prd : int;
  mutable old_prd : int;
  mutable psrc : int array;
  mutable psrc_fp : bool array;
  mutable src2 : int;
  mutable state : state;
  mutable done_at : int;
  mutable result : int64;
  mutable next_pc : int64;
  mutable mispredicted : bool;
  mutable exc : (Trap.exc * int64) option;
  mutable priority : bool; (** PUBS high priority *)
  mutable squashed : bool;
  mutable in_iq : bool;
      (** resident in an issue queue; maintained by [Iq] so phase-2
          issue revalidation is O(1) (a boundary fault hook may have
          stolen the slot) *)
  mutable eliminated : bool;
  mutable vaddr : int64;
  mutable paddr : int64;
  mutable msize : int;
  mutable sdata : int64;
  mutable addr_ready : bool;
  mutable mmio : bool;
  mutable load_value : int64;
  mutable mem_cycle : int; (** when the access touched memory *)
  mutable sc_failed : bool;
  mutable csr_read : (int * int64) option;
  mutable committed_store : bool;
}

val is_load : t -> bool
(** Pipelined loads only (LR/AMO execute at the head). *)

val is_store : t -> bool
(** Stores that go through the SQ/store buffer. *)

val classify : Insn.t -> Config.exec_class * where

val latency : Config.exec_class -> Insn.t -> int
(** Execution latency in cycles (FMA = 5, the paper's cascade FMA). *)

val make :
  seq:int ->
  pc:int64 ->
  insn:Insn.t ->
  second:Insn.t option ->
  fusion:fusion option ->
  pred_next:int64 ->
  t
