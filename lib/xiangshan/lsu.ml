(* Load/store unit: load queue, store queue, committed store buffer,
   store-to-load forwarding, and the LR/SC reservation.

   The store buffer is the paper's central source of memory
   non-determinism: stores retire into it at commit and only reach the
   cache hierarchy (and hence the backing memory, other cores, and the
   page-table walker) when drained -- the window that produces the
   speculative page faults of Figure 3 and the multi-core value
   divergences handled by the Global Memory diff-rule. *)

type sb_entry = { sb_paddr : int64; sb_size : int; sb_data : int64 }

type t = {
  cfg : Config.t;
  dcache : Softmem.Cache.t;
  mutable lq : Uop.t list; (* age order *)
  mutable sq : Uop.t list; (* age order *)
  (* O(1) occupancy mirrors of lq/sq (the lists are walked only for
     forwarding and ordering checks; admission and the stall reports
     read these) *)
  mutable lq_n : int;
  mutable sq_n : int;
  sb : sb_entry Queue.t;
  mutable sb_next_drain : int;
  mutable reservation : (int64 * int) option; (* line addr, cycle set *)
  (* stats *)
  mutable forwards : int;
  mutable blocked_loads : int;
  mutable forward_misses : int; (* loads with no older-store match *)
  mutable drains : int;
  (* fault-injection knobs (campaign harness) *)
  mutable bug_drop_drains : int; (* discard next N drained entries *)
  mutable bug_reorder_drains : int; (* drain next N pairs youngest-first *)
  mutable bug_silent_drains : int; (* next N drains skip on_drain *)
  mutable bug_stall_drain : bool; (* the buffer never drains *)
  mutable bug_no_forward : bool; (* loads ignore pending stores *)
  mutable bug_forward_mask : int64; (* XORed into forwarded data *)
}

let create (cfg : Config.t) ~dcache =
  {
    cfg;
    dcache;
    lq = [];
    sq = [];
    lq_n = 0;
    sq_n = 0;
    sb = Queue.create ();
    sb_next_drain = 0;
    reservation = None;
    forwards = 0;
    blocked_loads = 0;
    forward_misses = 0;
    drains = 0;
    bug_drop_drains = 0;
    bug_reorder_drains = 0;
    bug_silent_drains = 0;
    bug_stall_drain = false;
    bug_no_forward = false;
    bug_forward_mask = 0L;
  }

let lq_occupancy t = t.lq_n

let sq_occupancy t = t.sq_n

let sb_occupancy t = Queue.length t.sb

let lq_full t = t.lq_n >= t.cfg.lq_size

let sq_full t = t.sq_n >= t.cfg.sq_size

let sb_full t = Queue.length t.sb >= t.cfg.store_buffer_size

let sb_empty t = Queue.is_empty t.sb

let insert_load t u =
  t.lq <- t.lq @ [ u ];
  t.lq_n <- t.lq_n + 1

let insert_store t u =
  t.sq <- t.sq @ [ u ];
  t.sq_n <- t.sq_n + 1

let drop_squashed t =
  t.lq <- List.filter (fun u -> not u.Uop.squashed) t.lq;
  t.sq <- List.filter (fun u -> not u.Uop.squashed) t.sq;
  t.lq_n <- List.length t.lq;
  t.sq_n <- List.length t.sq

(* All older stores have known addresses (conservative load
   scheduling: no memory-dependence speculation, hence no ordering
   violations to replay). *)
let older_stores_known t ~(seq : int) =
  List.for_all
    (fun (s : Uop.t) -> s.Uop.seq >= seq || s.Uop.addr_ready)
    t.sq

type forward_result = Forward of int64 | Blocked | No_match

let ranges_overlap a1 s1 a2 s2 =
  let e1 = Int64.add a1 (Int64.of_int s1) and e2 = Int64.add a2 (Int64.of_int s2) in
  not (e1 <= a2 || e2 <= a1)

let contains a1 s1 a2 s2 =
  (* [a2, a2+s2) inside [a1, a1+s1) *)
  a2 >= a1 && Int64.add a2 (Int64.of_int s2) <= Int64.add a1 (Int64.of_int s1)

let extract ~(data : int64) ~(from_addr : int64) ~(at : int64) ~(size : int) =
  let shift = 8 * Int64.to_int (Int64.sub at from_addr) in
  let v = Int64.shift_right_logical data shift in
  if size >= 8 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L (8 * size)) 1L)

(* Look for the youngest older store (SQ, then store buffer) providing
   the bytes of a load. *)
let forward t ~(seq : int) ~(paddr : int64) ~(size : int) : forward_result =
  if t.bug_no_forward then begin
    t.forward_misses <- t.forward_misses + 1;
    No_match
  end
  else begin
  let best : forward_result ref = ref No_match in
  (* store buffer first (all older than any in-flight load), oldest to
     youngest so younger matches override *)
  Queue.iter
    (fun (e : sb_entry) ->
      if contains e.sb_paddr e.sb_size paddr size then
        best := Forward (extract ~data:e.sb_data ~from_addr:e.sb_paddr ~at:paddr ~size)
      else if ranges_overlap e.sb_paddr e.sb_size paddr size then best := Blocked)
    t.sb;
  (* then SQ entries older than the load, oldest to youngest *)
  List.iter
    (fun (s : Uop.t) ->
      if s.Uop.seq < seq && s.Uop.addr_ready && not s.Uop.mmio then begin
        if contains s.Uop.paddr s.Uop.msize paddr size then begin
          best :=
            Forward
              (extract ~data:s.Uop.sdata ~from_addr:s.Uop.paddr ~at:paddr ~size)
        end
        else if ranges_overlap s.Uop.paddr s.Uop.msize paddr size then
          best := Blocked
      end)
    t.sq;
  (match !best with
  | Forward _ -> t.forwards <- t.forwards + 1
  | Blocked -> t.blocked_loads <- t.blocked_loads + 1
  | No_match -> t.forward_misses <- t.forward_misses + 1);
  (* fault: the forwarding mux picks the wrong lanes *)
  match !best with
  | Forward v when t.bug_forward_mask <> 0L ->
      Forward (Int64.logxor v t.bug_forward_mask)
  | r -> r
  end

(* Commit a store: move its data from the SQ to the store buffer.
   Caller must check [sb_full] first. *)
let commit_store t (u : Uop.t) =
  assert (not (sb_full t));
  Queue.add { sb_paddr = u.Uop.paddr; sb_size = u.Uop.msize; sb_data = u.Uop.sdata } t.sb;
  t.sq <- List.filter (fun v -> v.Uop.seq <> u.Uop.seq) t.sq;
  t.sq_n <- List.length t.sq

let remove_load t (u : Uop.t) =
  t.lq <- List.filter (fun v -> v.Uop.seq <> u.Uop.seq) t.lq;
  t.lq_n <- List.length t.lq

(* Write one entry through to the cache and announce it; the fault
   knobs model drains that are lost, unannounced, or misordered. *)
let drain_one t ~now ~(on_drain : int64 -> int -> unit) (e : sb_entry) =
  let lat = Softmem.Cache.write t.dcache ~addr:e.sb_paddr ~size:e.sb_size e.sb_data in
  t.drains <- t.drains + 1;
  t.sb_next_drain <- now + max t.cfg.sb_drain_interval (lat / 4);
  if t.bug_silent_drains > 0 then t.bug_silent_drains <- t.bug_silent_drains - 1
  else on_drain e.sb_paddr e.sb_size

(* Pure: would [drain] dequeue an entry at [now]?  Phase 1 of the
   two-phase cycle snapshots this; [drain] itself stays authoritative
   (it re-checks, so a fence that force-drained the buffer between
   snapshot and application degrades to a no-op). *)
let drain_ready t ~now =
  (not t.bug_stall_drain)
  && (not (Queue.is_empty t.sb))
  && now >= t.sb_next_drain

(* Drain at most one store-buffer entry into the cache hierarchy.
   [on_drain] lets the SoC invalidate other cores' LR reservations. *)
let drain t ~now ~(on_drain : int64 -> int -> unit) =
  if t.bug_stall_drain then ()
  else if (not (Queue.is_empty t.sb)) && now >= t.sb_next_drain then begin
    if t.bug_drop_drains > 0 then begin
      (* fault: the entry leaves the buffer but never reaches memory *)
      ignore (Queue.pop t.sb);
      t.bug_drop_drains <- t.bug_drop_drains - 1;
      t.sb_next_drain <- now + t.cfg.sb_drain_interval
    end
    else if t.bug_reorder_drains > 0 && Queue.length t.sb >= 2 then begin
      (* fault: two oldest entries reach memory youngest-first *)
      let a = Queue.pop t.sb in
      let b = Queue.pop t.sb in
      t.bug_reorder_drains <- t.bug_reorder_drains - 1;
      drain_one t ~now ~on_drain b;
      drain_one t ~now ~on_drain a
    end
    else drain_one t ~now ~on_drain (Queue.pop t.sb)
  end

(* Force-drain everything (fences, AMO ordering). Returns the cycles
   consumed. *)
let drain_all t ~now ~(on_drain : int64 -> int -> unit) : int =
  let lat = ref 0 in
  while not (Queue.is_empty t.sb) do
    let e = Queue.pop t.sb in
    lat := !lat + Softmem.Cache.write t.dcache ~addr:e.sb_paddr ~size:e.sb_size e.sb_data;
    t.drains <- t.drains + 1;
    if t.bug_silent_drains > 0 then
      t.bug_silent_drains <- t.bug_silent_drains - 1
    else on_drain e.sb_paddr e.sb_size
  done;
  t.sb_next_drain <- now + !lat;
  !lat

let set_reservation t ~paddr ~now =
  t.reservation <- Some (Int64.shift_right_logical paddr 6, now)

let clear_reservation t = t.reservation <- None

(* Is the reservation still valid (not timed out, same line)? *)
let reservation_valid t ~paddr ~now =
  match t.reservation with
  | None -> false
  | Some (line, set_at) ->
      line = Int64.shift_right_logical paddr 6
      && now - set_at <= t.cfg.sc_timeout_cycles

(* Another agent stored to [paddr]: kill the reservation if it covers
   the same line. *)
let snoop_invalidate t ~paddr =
  match t.reservation with
  | Some (line, _) when line = Int64.shift_right_logical paddr 6 ->
      t.reservation <- None
  | Some _ | None -> ()
