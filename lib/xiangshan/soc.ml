(* SoC wiring: cores, cache tree, DRAM model, CLINT, and the cycle
   loop.

   YQH: core -> (L1I, L1D, PTW) -> L2 -> DRAM
   NH:  2 cores, each -> private L2 -> shared L3 -> DRAM

   The shared level's coherence directory generates the Probe traffic
   between cores; the SoC also propagates store drains to invalidate
   sibling LR reservations. *)

open Riscv

type t = {
  cfg : Config.t;
  plat : Platform.t;
  cores : Core.t array;
  l2s : Softmem.Cache.t array;
  l3 : Softmem.Cache.t option;
  dram : Softmem.Dram.t;
  mutable now : int;
  mutable event_sink : Softmem.Event.sink;
  mutable fault_hooks : (t -> unit) list;
}

let line_shift = 6

let create ?(dram_size = 64 * 1024 * 1024) (cfg : Config.t) : t =
  let plat = Platform.create ~dram_size () in
  let backing = plat.Platform.mem in
  let dram =
    Softmem.Dram.create
      (match cfg.dram with
      | Config.Fixed_amat n -> Softmem.Dram.Fixed_amat n
      | Config.Ddr4_1600 -> Softmem.Dram.ddr4_1600
      | Config.Ddr4_2400 -> Softmem.Dram.ddr4_2400)
  in
  let mk name size_kb ways lat =
    Softmem.Cache.create ~name ~size_bytes:(size_kb * 1024) ~ways
      ~line_shift ~hit_latency:lat ~backing ()
  in
  let l3 =
    if cfg.l3_kb > 0 then begin
      let l3 = mk "l3" cfg.l3_kb cfg.l3_ways 30 in
      Softmem.Cache.set_dram l3 dram;
      Some l3
    end
    else None
  in
  let l2s =
    Array.init cfg.n_cores (fun i ->
        let l2 = mk (Printf.sprintf "l2.%d" i) cfg.l2_kb cfg.l2_ways 12 in
        (match l3 with
        | Some l3 -> Softmem.Cache.set_parent l2 l3
        | None -> Softmem.Cache.set_dram l2 dram);
        l2)
  in
  let cores =
    Array.init cfg.n_cores (fun i ->
        let l1i = mk (Printf.sprintf "l1i.%d" i) cfg.l1i_kb cfg.l1i_ways 2 in
        let l1d = mk (Printf.sprintf "l1d.%d" i) cfg.l1d_kb cfg.l1d_ways 2 in
        let ptw = mk (Printf.sprintf "ptw.%d" i) 4 2 1 in
        Softmem.Cache.set_parent l1i l2s.(i);
        Softmem.Cache.set_parent l1d l2s.(i);
        Softmem.Cache.set_parent ptw l2s.(i);
        (* observational MSHR-saturation probe on the D-side *)
        Softmem.Cache.set_mshrs l1d cfg.mshrs;
        Core.create cfg ~hartid:i ~plat ~l1i ~l1d ~ptw_port:ptw)
  in
  let t =
    {
      cfg;
      plat;
      cores;
      l2s;
      l3;
      dram;
      now = 0;
      event_sink = Softmem.Event.null_sink;
      fault_hooks = [];
    }
  in
  (* store drains invalidate sibling reservations *)
  Array.iteri
    (fun i core ->
      core.Core.on_store_drain <-
        (fun paddr _size ->
          Array.iteri
            (fun j other ->
              if i <> j then Lsu.snoop_invalidate other.Core.lsu ~paddr)
            cores))
    cores;
  t

(* Install an event sink on every cache node. *)
let set_event_sink (t : t) (sink : Softmem.Event.sink) =
  t.event_sink <- sink;
  let install node = Softmem.Cache.iter_tree node (fun n -> n.Softmem.Cache.sink <- sink) in
  (match t.l3 with Some l3 -> install l3 | None -> Array.iter install t.l2s)

let load_program (t : t) (p : Asm.program) =
  Asm.load p t.plat.Platform.mem;
  Array.iter (fun c -> Core.set_boot_pc c p.Asm.entry) t.cores

let add_fault_hook (t : t) f = t.fault_hooks <- t.fault_hooks @ [ f ]

(* One SoC clock, two-phase: advance the shared clock domain, let
   every core plan its cycle against the frozen snapshot (phase 1),
   fire the fault hooks at the effect boundary, then apply all plans
   in hart order (phase 2).  Hooks mutating pipeline structures
   between the phases are exactly the hazard the appliers revalidate
   against (e.g. Iq.steal_waiting vs a pre-selected issue). *)
let tick (t : t) =
  t.now <- t.now + 1;
  Platform.Clint.tick t.plat.Platform.clint 1;
  (match t.l3 with
  | Some l3 -> Softmem.Cache.iter_tree l3 (fun n -> Softmem.Cache.set_now n t.now)
  | None ->
      Array.iter
        (fun l2 ->
          Softmem.Cache.iter_tree l2 (fun n -> Softmem.Cache.set_now n t.now))
        t.l2s);
  let effects = Array.map Core.step t.cores in
  List.iter (fun f -> f t) t.fault_hooks;
  Array.iteri (fun i core -> Core.apply core effects.(i)) t.cores

let exited (t : t) = Platform.exited t.plat

let exit_code (t : t) = Platform.exit_code t.plat

let attach_tracers ?(capacity = 4096) (t : t) =
  Array.map
    (fun (core : Core.t) ->
      let tr = Perf.Pipetrace.create ~capacity () in
      Core.set_tracer core (Some tr);
      tr)
    t.cores

let counter_snapshot (t : t) ~hartid = Core.counter_snapshot t.cores.(hartid)

(* Run until exit, a cycle budget, or [stop] returns true. *)
let run ?(max_cycles = 100_000_000) ?(stop = fun () -> false) (t : t) : int =
  let start = t.now in
  while (not (exited t)) && t.now - start < max_cycles && not (stop ()) do
    tick t
  done;
  t.now - start

(* Inject the §IV-C L2 MSHR arbitration bug on core [i]'s L2. *)
let inject_l2_race_bug (t : t) ~core =
  t.l2s.(core).Softmem.Cache.bug_probe_race <- true

let inject_skip_probe_bug (t : t) =
  match t.l3 with
  | Some l3 -> l3.Softmem.Cache.bug_skip_probe <- true
  | None -> Array.iter (fun l2 -> l2.Softmem.Cache.bug_skip_probe <- true) t.l2s
