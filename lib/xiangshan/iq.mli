(** Distributed issue queues (the paper's grouped reservation
    stations) with a pluggable selection policy: AGE (oldest first) or
    PUBS (§IV-D: high-priority unconfident-branch slices first, age
    within each class). *)

type t = {
  cfg : Config.iq_config;
  policy : Config.issue_policy;
  mutable slots : Uop.t list;  (** kept in age (insertion) order *)
  mutable n : int;  (** O(1) occupancy mirror of [slots] *)
}

val create : Config.iq_config -> policy:Config.issue_policy -> t

val accepts : t -> Config.exec_class -> bool

val occupancy : t -> int

val capacity : t -> int

val is_full : t -> bool

val mem : t -> Uop.t -> bool
(** Is the uop (by sequence number) still queued?  The hot phase-2
    revalidation path uses the O(1) [Uop.in_iq] flag [Iq] maintains
    instead; this scan remains for assertions and tests. *)

val insert : t -> Uop.t -> unit

val drop_squashed : t -> unit

val clear : t -> unit

val select : t -> ready:(Uop.t -> bool) -> Uop.t list
(** Up to [iq_issue] ready uops under the policy. *)

val count_ready : t -> ready:(Uop.t -> bool) -> int
(** The Figure 15 instrumentation: ready entries before selection. *)

val select_counted : t -> ready:(Uop.t -> bool) -> Uop.t list * int
(** [select] and [count_ready] from a single readiness scan -- the
    per-cycle phase-1 issue planner, where [ready] is the expensive
    part. *)

val remove : t -> Uop.t -> unit

val steal_waiting : t -> Uop.t option
(** Fault injection: remove and return the oldest waiting uop, which
    then never issues (commit wedges on it unless it is squashed). *)
