(* Re-order buffer: a ring buffer indexed by the global uop sequence
   number. *)

type t = {
  buf : Uop.t option array;
  cap : int;
  mutable head : int; (* oldest live seq *)
  mutable tail : int; (* next seq to allocate *)
}

let create ~size = { buf = Array.make size None; cap = size; head = 0; tail = 0 }

let count t = t.tail - t.head

let is_full t = count t >= t.cap

let is_empty t = count t = 0

let slot t seq = seq mod t.cap

let push t (u : Uop.t) =
  assert (not (is_full t));
  assert (u.Uop.seq = t.tail);
  t.buf.(slot t t.tail) <- Some u;
  t.tail <- t.tail + 1

let peek_head t : Uop.t option =
  if is_empty t then None else t.buf.(slot t t.head)

let pop_head t =
  assert (not (is_empty t));
  t.buf.(slot t t.head) <- None;
  t.head <- t.head + 1

let get t seq : Uop.t option =
  if seq < t.head || seq >= t.tail then None else t.buf.(slot t seq)

(* Squash every uop with seq > [after]; returns them youngest-first
   (the order required for rename rollback).  [after] = head - 1
   squashes everything. *)
let squash_younger t ~after : Uop.t list =
  let squashed = ref [] in
  let new_tail = max t.head (after + 1) in
  for seq = t.tail - 1 downto new_tail do
    match t.buf.(slot t seq) with
    | Some u ->
        u.Uop.squashed <- true;
        squashed := u :: !squashed;
        t.buf.(slot t seq) <- None
    | None -> ()
  done;
  t.tail <- new_tail;
  List.rev !squashed

(* Fault injection: exchange the two oldest entries so they retire out
   of program order.  Only applies when both are completed, exception
   free and past their completion cycle -- the swapped pair then
   commits immediately, before any intervening flush can mask it. *)
let swap_head_next t ~now : bool =
  if count t < 2 then false
  else
    match (t.buf.(slot t t.head), t.buf.(slot t (t.head + 1))) with
    | Some a, Some b
      when a.Uop.state = Uop.Completed
           && b.Uop.state = Uop.Completed
           && a.Uop.done_at <= now && b.Uop.done_at <= now
           && a.Uop.exc = None && b.Uop.exc = None
           && (not a.Uop.squashed)
           && not b.Uop.squashed ->
        t.buf.(slot t t.head) <- Some b;
        t.buf.(slot t (t.head + 1)) <- Some a;
        true
    | _ -> false

let iter t f =
  for seq = t.head to t.tail - 1 do
    match t.buf.(slot t seq) with Some u -> f u | None -> ()
  done
