(** Load/store unit: load queue, store queue, committed store buffer,
    store-to-load forwarding, and the LR/SC reservation.

    The store buffer is the paper's central source of memory
    non-determinism: stores retire into it at commit and only reach
    the cache hierarchy (hence other cores and the page-table walker)
    when drained -- the window behind the speculative page faults of
    Figure 3 and the multi-core divergences the Global-Memory rule
    reconciles. *)

type sb_entry = { sb_paddr : int64; sb_size : int; sb_data : int64 }

type t = {
  cfg : Config.t;
  dcache : Softmem.Cache.t;
  mutable lq : Uop.t list;
  mutable sq : Uop.t list;
  mutable lq_n : int;  (** O(1) occupancy mirror of [lq] *)
  mutable sq_n : int;  (** O(1) occupancy mirror of [sq] *)
  sb : sb_entry Queue.t;
  mutable sb_next_drain : int;
  mutable reservation : (int64 * int) option;
  mutable forwards : int;
  mutable blocked_loads : int;
  mutable forward_misses : int;
  mutable drains : int;
  mutable bug_drop_drains : int;
      (** fault: discard the next N drained entries (they leave the
          buffer but never reach memory) *)
  mutable bug_reorder_drains : int;
      (** fault: the next N drain pairs reach memory youngest-first *)
  mutable bug_silent_drains : int;
      (** fault: the next N drains skip the [on_drain] announcement *)
  mutable bug_stall_drain : bool;
      (** fault: the store buffer never drains (wedges commit) *)
  mutable bug_no_forward : bool;
      (** fault: loads ignore pending older stores *)
  mutable bug_forward_mask : int64;
      (** fault: store-to-load forwarded data is XORed with this mask
          (wrong-lane mux); [0L] disables *)
}

val create : Config.t -> dcache:Softmem.Cache.t -> t

val lq_occupancy : t -> int
val sq_occupancy : t -> int
val sb_occupancy : t -> int
(** O(1) occupancies; dispatch admission and [Core.stall_site] read
    these, so the two can never disagree. *)

val lq_full : t -> bool
val sq_full : t -> bool
val sb_full : t -> bool
val sb_empty : t -> bool

val insert_load : t -> Uop.t -> unit
val insert_store : t -> Uop.t -> unit
val drop_squashed : t -> unit

val older_stores_known : t -> seq:int -> bool
(** Conservative load scheduling: a load may only issue once every
    older store address is resolved (no memory-dependence
    speculation, hence no ordering-violation replays). *)

type forward_result = Forward of int64 | Blocked | No_match

val forward : t -> seq:int -> paddr:int64 -> size:int -> forward_result
(** Youngest fully-covering older store (SQ, then store buffer);
    [Blocked] on a partial overlap. *)

val commit_store : t -> Uop.t -> unit
(** Move a retiring store from the SQ into the store buffer (the
    caller checks [sb_full]). *)

val remove_load : t -> Uop.t -> unit

val drain_ready : t -> now:int -> bool
(** Pure: would [drain] dequeue an entry at [now]?  Snapshotted by
    phase 1 of the two-phase cycle. *)

val drain : t -> now:int -> on_drain:(int64 -> int -> unit) -> unit
(** Drain at most one store-buffer entry into the cache hierarchy,
    respecting the configured drain interval. *)

val drain_all : t -> now:int -> on_drain:(int64 -> int -> unit) -> int
(** Force-drain (fences, atomics, sfence.vma); returns cycles. *)

val set_reservation : t -> paddr:int64 -> now:int -> unit
val clear_reservation : t -> unit

val reservation_valid : t -> paddr:int64 -> now:int -> bool
(** Same line and not past the configured timeout (the SC-failure
    non-determinism source). *)

val snoop_invalidate : t -> paddr:int64 -> unit
(** Another agent stored to this line: kill a covering reservation. *)
