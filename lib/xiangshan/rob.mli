(** Re-order buffer: a ring buffer indexed by the global uop sequence
    number.  Commit pops from the head; branch mispredicts, traps and
    serialising instructions squash from the tail. *)

type t = {
  buf : Uop.t option array;
  cap : int;
  mutable head : int; (** oldest live sequence number *)
  mutable tail : int; (** next sequence number to allocate *)
}

val create : size:int -> t

val count : t -> int

val is_full : t -> bool

val is_empty : t -> bool

val push : t -> Uop.t -> unit
(** The uop's [seq] must equal [tail]. *)

val peek_head : t -> Uop.t option

val pop_head : t -> unit

val get : t -> int -> Uop.t option
(** Lookup by sequence number ([None] outside the live window). *)

val squash_younger : t -> after:int -> Uop.t list
(** Squash every uop with seq > [after]; returns them youngest-first,
    the order rename rollback requires. *)

val swap_head_next : t -> now:int -> bool
(** Fault injection: exchange the two oldest entries (both completed,
    exception-free, ready to retire) so they commit out of program
    order.  Returns whether the swap applied. *)

val iter : t -> (Uop.t -> unit) -> unit
