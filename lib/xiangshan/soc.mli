(** SoC wiring: cores, cache tree, DRAM model, CLINT, and the cycle
    loop.

    YQH: core -> (L1I, L1D, PTW) -> L2 -> DRAM.
    NH: two cores, each with a private L2, under a shared L3.

    The shared level's directory generates the inter-core Probe
    traffic; store drains from any core invalidate sibling LR
    reservations. *)

type t = {
  cfg : Config.t;
  plat : Riscv.Platform.t;
  cores : Core.t array;
  l2s : Softmem.Cache.t array;
  l3 : Softmem.Cache.t option;
  dram : Softmem.Dram.t;
  mutable now : int;
  mutable event_sink : Softmem.Event.sink;
  mutable fault_hooks : (t -> unit) list;
}

val create : ?dram_size:int -> Config.t -> t

val set_event_sink : t -> Softmem.Event.sink -> unit
(** Install a coherence-event sink on every cache node. *)

val load_program : t -> Riscv.Asm.program -> unit
(** Load the image and point every hart's boot pc at the entry. *)

val add_fault_hook : t -> (t -> unit) -> unit
(** Register a hook run at the effect boundary of every [tick]: after
    all cores have planned the cycle ([Core.step]) and before any plan
    is applied ([Core.apply]).  Fault models use this as their
    cycle-triggered injection point; a mutation made here is exactly
    the hazard phase-2 revalidation defends against.  Hooks are part
    of the SoC graph, so LightSSS snapshots carry them into replays. *)

val tick : t -> unit
(** One clock cycle, two-phase: CLINT and cache clocks advance, every
    core plans against the frozen snapshot, fault hooks fire, then the
    plans are applied in hart order. *)

val run : ?max_cycles:int -> ?stop:(unit -> bool) -> t -> int
(** Run to exit / budget / [stop]; returns cycles simulated. *)

val exited : t -> bool

val exit_code : t -> int option

val attach_tracers : ?capacity:int -> t -> Perf.Pipetrace.t array
(** Install a fresh pipeline tracer on every core (index = hartid) and
    return them.  Tracers are plain data inside the core graph, so
    LightSSS snapshots carry the trace window into replays. *)

val counter_snapshot : t -> hartid:int -> (string * int) list
(** [Core.counter_snapshot] of one hart. *)

val inject_l2_race_bug : t -> core:int -> unit
(** Plant the §IV-C fault: the core's private L2 mishandles Probes
    overlapping in-flight Acquires and later serves stale data. *)

val inject_skip_probe_bug : t -> unit
(** Plant a protocol fault at the shared level: Trunk grants skip the
    sibling probes (caught by the permission scoreboard). *)
