(* Basic-block-vector collection (paper §III-D3: "it is easy to
   compute the Basic Block Vector in NEMU, since it is straightforward
   to collect information about instructions in an interpreter").

   The NEMU fast engine reports control-flow edges; each edge source
   identifies the basic block that just ended.  Per fixed-size
   instruction interval we accumulate a sparse block-frequency vector. *)

type vector = (int64 * float) list (* block id -> normalised frequency *)

type t = {
  interval : int; (* instructions per interval *)
  counts : (int64, int) Hashtbl.t;
  mutable vectors : vector list; (* reverse order *)
  mutable intervals_done : int;
  mutable last_boundary : int; (* instret at last boundary *)
}

let create ~interval =
  {
    interval;
    counts = Hashtbl.create 1024;
    vectors = [];
    intervals_done = 0;
    last_boundary = 0;
  }

let snapshot_vector (t : t) =
  let total = Hashtbl.fold (fun _ c acc -> acc + c) t.counts 0 in
  if total > 0 then begin
    let v =
      Hashtbl.fold
        (fun pc c acc -> (pc, float_of_int c /. float_of_int total) :: acc)
        t.counts []
    in
    t.vectors <- v :: t.vectors;
    t.intervals_done <- t.intervals_done + 1;
    Hashtbl.reset t.counts
  end

(* Attach to a NEMU fast engine: the engine's instret drives interval
   boundaries. *)
let attach (t : t) (engine : Nemu.Fast.t) =
  engine.Nemu.Fast.prof_on <- true;
  (* entries compiled before profiling was enabled fold unconditional
     jumps into their traces, hiding those edges; recompile them *)
  Nemu.Fast.flush engine;
  engine.Nemu.Fast.prof_edge <-
    (fun src _dst ->
      Hashtbl.replace t.counts src
        (1 + Option.value (Hashtbl.find_opt t.counts src) ~default:0);
      let m = engine.Nemu.Fast.m in
      if m.Nemu.Mach.instret - t.last_boundary >= t.interval then begin
        t.last_boundary <- m.Nemu.Mach.instret;
        snapshot_vector t
      end)

let finish (t : t) =
  if Hashtbl.length t.counts > 0 then snapshot_vector t

let vectors (t : t) : vector array = Array.of_list (List.rev t.vectors)
