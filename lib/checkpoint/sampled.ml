(* The checkpoint-based performance evaluation flow (§III-D3):

   1. profile the workload at NEMU speed, collecting BBVs;
   2. SimPoint-select representative intervals;
   3. re-run NEMU to each selected boundary and capture an
      architectural checkpoint;
   4. restore each checkpoint into the cycle-level model, warm up,
      measure, and combine per-checkpoint CPI with the SimPoint
      weights.

   This is the flow that turns a >150-hour FPGA run into hours of
   parallel RTL simulation in the paper; here it turns a full
   cycle-level run into a handful of short sampled ones. *)

type sampled_checkpoint = {
  sc_index : int; (* interval index *)
  sc_weight : float;
  sc_checkpoint : Arch_checkpoint.t;
}

type generation_stats = {
  gen_instructions : int;
  gen_seconds : float;
  gen_intervals : int;
  gen_selected : int;
}

(* Profile + select + capture. *)
let generate ?(interval = 100_000) ?(max_k = 8) ?(max_insns = 200_000_000)
    (prog : Riscv.Asm.program) : sampled_checkpoint list * generation_stats =
  (* pass 1: BBV profiling at NEMU speed *)
  let t0 = Unix.gettimeofday () in
  let m = Nemu.Mach.create () in
  Nemu.Mach.load_program m prog;
  let engine = Nemu.Fast.create m in
  let bbv = Bbv.create ~interval in
  Bbv.attach bbv engine;
  let n1 = Nemu.Fast.run engine ~max_insns in
  Bbv.finish bbv;
  let vectors = Bbv.vectors bbv in
  let selections = Simpoint.select vectors ~max_k in
  (* pass 2: capture checkpoints at the selected boundaries *)
  let m2 = Nemu.Mach.create () in
  Nemu.Mach.load_program m2 prog;
  let engine2 = Nemu.Fast.create m2 in
  let checkpoints =
    List.filter_map
      (fun (s : Simpoint.selection) ->
        let target = s.Simpoint.sp_interval * interval in
        let need = target - m2.Nemu.Mach.instret in
        if need < 0 then None
        else begin
          ignore (Nemu.Fast.run engine2 ~max_insns:(max 1 need));
          if (not m2.Nemu.Mach.running) && target > m2.Nemu.Mach.instret then
            None
          else
            Some
              {
                sc_index = s.Simpoint.sp_interval;
                sc_weight = s.Simpoint.sp_weight;
                sc_checkpoint = Arch_checkpoint.capture_mach m2;
              }
        end)
      selections
  in
  let t1 = Unix.gettimeofday () in
  ( checkpoints,
    {
      gen_instructions = n1 + m2.Nemu.Mach.instret;
      gen_seconds = t1 -. t0;
      gen_intervals = Array.length vectors;
      gen_selected = List.length checkpoints;
    } )

type sample_result = {
  sr_index : int;
  sr_weight : float;
  sr_instructions : int;
  sr_cycles : int;
  sr_ipc : float;
}

(* Simulate one checkpoint on the cycle-level model. *)
let simulate_checkpoint ?(warmup = 20_000) ?(measure = 20_000)
    (cfg : Xiangshan.Config.t) (sc : sampled_checkpoint) : sample_result =
  let soc = Xiangshan.Soc.create cfg in
  Arch_checkpoint.restore_soc sc.sc_checkpoint soc;
  let core = soc.Xiangshan.Soc.cores.(0) in
  (* warm up micro-architectural state (paper: branch predictors and
     caches are warmed by executing instructions) *)
  let target_warm = warmup in
  while
    core.Xiangshan.Core.perf.Xiangshan.Core.p_instrs < target_warm
    && (not (Xiangshan.Soc.exited soc))
    && soc.Xiangshan.Soc.now < 50 * (warmup + measure)
  do
    Xiangshan.Soc.tick soc
  done;
  let i0 = core.Xiangshan.Core.perf.Xiangshan.Core.p_instrs in
  let c0 = soc.Xiangshan.Soc.now in
  while
    core.Xiangshan.Core.perf.Xiangshan.Core.p_instrs - i0 < measure
    && (not (Xiangshan.Soc.exited soc))
    && soc.Xiangshan.Soc.now - c0 < 100 * measure
  do
    Xiangshan.Soc.tick soc
  done;
  let instrs = core.Xiangshan.Core.perf.Xiangshan.Core.p_instrs - i0 in
  let cycles = soc.Xiangshan.Soc.now - c0 in
  {
    sr_index = sc.sc_index;
    sr_weight = sc.sc_weight;
    sr_instructions = instrs;
    sr_cycles = cycles;
    sr_ipc = (if cycles = 0 then 0.0 else float_of_int instrs /. float_of_int cycles);
  }

(* Simulate every checkpoint -- the paper's "hours of parallel RTL
   simulation": the samples are independent, so with jobs > 1 each one
   runs in a forked pool worker.  Results come back in submission
   order either way; a crashed or timed-out worker drops its sample
   (with a warning) exactly like a checkpoint that measured nothing,
   rather than poisoning the weighted estimate. *)
let simulate_all ?(warmup = 20_000) ?(measure = 20_000) ?jobs ?retries
    (cfg : Xiangshan.Config.t) (cks : sampled_checkpoint list) :
    sample_result list =
  let jobs = Minjie.Pool.resolve_jobs ?jobs () in
  let retries =
    match retries with
    | Some n -> max 0 n
    | None -> Option.value (Minjie.Supervisor.env_retries ()) ~default:0
  in
  if jobs <= 1 && retries = 0 then
    List.map (fun sc -> simulate_checkpoint ~warmup ~measure cfg sc) cks
  else begin
    let pool_jobs =
      List.map
        (fun sc ->
          {
            Minjie.Pool.j_label = Printf.sprintf "sample@%d" sc.sc_index;
            (* every sample costs warmup+measure; the weight is the
               only static hint of how long its region really runs *)
            j_cost = sc.sc_weight;
            j_run = (fun () -> simulate_checkpoint ~warmup ~measure cfg sc);
          })
        cks
    in
    let policy =
      { Minjie.Supervisor.default_policy with sp_retries = retries }
    in
    let results, _stats, _report =
      Minjie.Supervisor.map ~jobs ~policy pool_jobs
    in
    List.filter_map
      (fun (r : sample_result Minjie.Pool.result) ->
        match r.Minjie.Pool.r_outcome with
        | Minjie.Pool.Done s -> Some s
        | Minjie.Pool.Job_error msg | Minjie.Pool.Crashed msg ->
            Printf.eprintf "Sampled.simulate_all: dropping %s: %s\n%!"
              r.Minjie.Pool.r_label msg;
            None
        | Minjie.Pool.Timed_out secs ->
            Printf.eprintf
              "Sampled.simulate_all: dropping %s: timed out after %.1fs\n%!"
              r.Minjie.Pool.r_label secs;
            None)
      results
  end

(* Weighted IPC estimate across all sampled checkpoints. *)
let weighted_ipc (results : sample_result list) : float =
  let wsum = List.fold_left (fun a r -> a +. r.sr_weight) 0.0 results in
  if wsum = 0.0 then 0.0
  else
    List.fold_left (fun a r -> a +. (r.sr_weight *. r.sr_ipc)) 0.0 results
    /. wsum

(* Full flow. *)
let estimate ?(interval = 100_000) ?(max_k = 8) ?(warmup = 20_000)
    ?(measure = 20_000) ?jobs ?retries (cfg : Xiangshan.Config.t)
    (prog : Riscv.Asm.program) : float * sample_result list * generation_stats
    =
  let cks, stats = generate ~interval ~max_k prog in
  let results = simulate_all ~warmup ~measure ?jobs ?retries cfg cks in
  (weighted_ipc results, results, stats)
