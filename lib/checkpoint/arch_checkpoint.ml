(* RISC-V architectural checkpoints (paper §III-D3, Figure 9).

   A checkpoint captures the architectural state -- pc, integer and FP
   registers, the relevant CSRs -- and the physical memory image, using
   only basic RV64 state (independent of the debug-mode extension, as
   the paper emphasises).  Checkpoints are generated at speed by NEMU
   and restored into RTL-simulation (our cycle-level XiangShan model)
   for sampled performance evaluation.

   Memory is stored as the sparse list of allocated pages, so
   checkpoint size is proportional to the touched footprint. *)

open Riscv

type t = {
  ck_pc : int64;
  ck_regs : int64 array; (* x1..x31 stored from index 1 *)
  ck_fregs : int64 array;
  ck_priv : Csr.priv;
  ck_csrs : (int * int64) list; (* (address, value) for restorable CSRs *)
  ck_pages : (int * Bytes.t) list; (* (page index, data) *)
  ck_page_bits : int;
  ck_mem_base : int64;
  ck_mem_size : int;
  ck_instret : int64; (* position in the program, in instructions *)
}

let restorable_csrs =
  Csr.
    [
      mstatus; medeleg; mideleg; mie; mtvec; mscratch; mepc; mcause; mtval;
      stvec; sscratch; sepc; scause; stval; satp; fcsr;
    ]

let capture_memory (mem : Memory.t) =
  let pages = ref [] in
  Array.iteri
    (fun i p ->
      match p with
      | Some pg -> pages := (i, Bytes.copy pg.Memory.data) :: !pages
      | None -> ())
    mem.Memory.pages;
  List.rev !pages

let restore_memory (t : t) (mem : Memory.t) =
  assert (mem.Memory.page_bits = t.ck_page_bits);
  List.iter
    (fun (i, data) ->
      let base =
        Int64.add t.ck_mem_base
          (Int64.of_int (i lsl t.ck_page_bits))
      in
      Bytes.iteri
        (fun off c ->
          Memory.write_u8 mem (Int64.add base (Int64.of_int off)) (Char.code c))
        data)
    t.ck_pages

(* --- capture from a NEMU machine ------------------------------------- *)

let capture_mach (m : Nemu.Mach.t) : t =
  let csr = m.Nemu.Mach.csr in
  let mem = m.Nemu.Mach.plat.Platform.mem in
  {
    ck_pc = m.Nemu.Mach.pc;
    ck_regs = Array.init 32 (fun i -> Bigarray.Array1.get m.Nemu.Mach.regs i);
    ck_fregs = Array.init 32 (fun i -> Bigarray.Array1.get m.Nemu.Mach.fregs i);
    ck_priv = csr.Csr.priv;
    ck_csrs =
      List.map
        (fun a ->
          ( a,
            (* fcsr is readable everywhere; others need M, which NEMU
               machines always have when capturing *)
            try Csr.read csr a with Csr.Illegal_csr _ -> 0L ))
        restorable_csrs;
    ck_pages = capture_memory mem;
    ck_page_bits = mem.Memory.page_bits;
    ck_mem_base = mem.Memory.base;
    ck_mem_size = Memory.size mem;
    ck_instret = Int64.of_int m.Nemu.Mach.instret;
  }

(* --- restore into an arch state + platform ---------------------------- *)

let restore_arch (t : t) (st : Arch_state.t) (plat : Platform.t) =
  st.Arch_state.pc <- t.ck_pc;
  Array.blit t.ck_regs 0 st.Arch_state.regs 0 32;
  Array.blit t.ck_fregs 0 st.Arch_state.fregs 0 32;
  st.Arch_state.csr.Csr.priv <- t.ck_priv;
  List.iter
    (fun (a, v) -> try Csr.write st.Arch_state.csr a v with Csr.Illegal_csr _ -> ())
    t.ck_csrs;
  restore_memory t plat.Platform.mem

(* Restore into a XiangShan SoC (hart 0) for sampled simulation. *)
let restore_soc (t : t) (soc : Xiangshan.Soc.t) =
  let core = soc.Xiangshan.Soc.cores.(0) in
  restore_arch t core.Xiangshan.Core.arch soc.Xiangshan.Soc.plat;
  Xiangshan.Core.set_boot_pc core t.ck_pc;
  core.Xiangshan.Core.arch.Arch_state.pc <- t.ck_pc;
  Xiangshan.Core.sync_regfile_from_arch core

(* Restore into a fresh reference interpreter (checkpoints are also
   how DiffTest REFs are initialised mid-program). *)
let restore_interp (t : t) (r : Iss.Interp.t) =
  restore_arch t r.Iss.Interp.st r.Iss.Interp.plat

(* --- (de)serialisation ------------------------------------------------ *)

(* Atomic: a kill mid-save leaves the previous checkpoint (or no
   file), never a torn one a later restore would decode garbage from. *)
let save (t : t) ~(path : string) =
  Minjie.Journal.atomic_write_file ~path (Marshal.to_string t [])

let load ~(path : string) : t =
  let ic = open_in_bin path in
  let t : t = Marshal.from_channel ic in
  close_in ic;
  t

let size_bytes (t : t) =
  List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 t.ck_pages
