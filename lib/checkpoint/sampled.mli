(** The checkpoint-based performance-evaluation flow (paper §III-D3):
    NEMU profiles the workload collecting BBVs, SimPoint selects
    representative intervals, NEMU re-runs to capture checkpoints at
    their boundaries, and the cycle-level model simulates each sample;
    the SimPoint-weighted IPC estimates the whole-program score.

    This is the flow that replaces a >150-hour FPGA run with hours of
    parallel RTL simulation in the paper; the accuracy tests here hold
    the sampled estimate within a fraction of the full run. *)

type sampled_checkpoint = {
  sc_index : int;
  sc_weight : float;
  sc_checkpoint : Arch_checkpoint.t;
}

type generation_stats = {
  gen_instructions : int;
  gen_seconds : float;
  gen_intervals : int;
  gen_selected : int;
}

val generate :
  ?interval:int ->
  ?max_k:int ->
  ?max_insns:int ->
  Riscv.Asm.program ->
  sampled_checkpoint list * generation_stats
(** Profile (pass 1), SimPoint-select, and capture (pass 2). *)

type sample_result = {
  sr_index : int;
  sr_weight : float;
  sr_instructions : int;
  sr_cycles : int;
  sr_ipc : float;
}

val simulate_checkpoint :
  ?warmup:int ->
  ?measure:int ->
  Xiangshan.Config.t ->
  sampled_checkpoint ->
  sample_result
(** Restore into a fresh SoC, warm the micro-architectural state by
    executing [warmup] instructions, then measure [measure]. *)

val simulate_all :
  ?warmup:int ->
  ?measure:int ->
  ?jobs:int ->
  ?retries:int ->
  Xiangshan.Config.t ->
  sampled_checkpoint list ->
  sample_result list
(** Simulate every checkpoint -- the paper's "parallel RTL
    simulation" analogue.  [jobs] defaults to
    {!Minjie.Pool.resolve_jobs} ([MINJIE_JOBS], else 1); with
    [jobs = 1] and no retry budget this is exactly
    [List.map simulate_checkpoint].  Otherwise samples run under
    {!Minjie.Supervisor} supervision ([retries] defaults to
    [MINJIE_RETRIES], else 0): a transient worker crash or timeout is
    retried with backoff before its sample is dropped with a warning
    on stderr.  Results keep submission order. *)

val weighted_ipc : sample_result list -> float

val estimate :
  ?interval:int ->
  ?max_k:int ->
  ?warmup:int ->
  ?measure:int ->
  ?jobs:int ->
  ?retries:int ->
  Xiangshan.Config.t ->
  Riscv.Asm.program ->
  float * sample_result list * generation_stats
(** The full flow; returns (weighted IPC, per-sample results, stats). *)
