(** RISC-V architectural checkpoints (paper §III-D3, Figure 9).

    A checkpoint captures pc, integer and FP registers, the
    restorable CSRs and the sparse physical-memory image, using only
    basic RV64 state -- independent of the debug-mode extension, as
    the paper emphasises for early-stage processors.  Checkpoints are
    generated at NEMU speed and restored into any of the three
    execution substrates. *)

type t = {
  ck_pc : int64;
  ck_regs : int64 array;
  ck_fregs : int64 array;
  ck_priv : Riscv.Csr.priv;
  ck_csrs : (int * int64) list;
  ck_pages : (int * Bytes.t) list; (** sparse: only allocated pages *)
  ck_page_bits : int;
  ck_mem_base : int64;
  ck_mem_size : int;
  ck_instret : int64; (** position in the program *)
}

val restorable_csrs : int list

val capture_mach : Nemu.Mach.t -> t

val restore_arch : t -> Riscv.Arch_state.t -> Riscv.Platform.t -> unit

val restore_soc : t -> Xiangshan.Soc.t -> unit
(** Restore into hart 0 of a freshly created SoC, including syncing
    the physical register file with the restored architectural
    values. *)

val restore_interp : t -> Iss.Interp.t -> unit

val save : t -> path:string -> unit
(** Atomic (temp file + fsync + rename): a crash mid-save leaves the
    previous checkpoint or none, never a torn file. *)

val load : path:string -> t

val size_bytes : t -> int
(** Bytes of captured memory pages. *)
