(** NEMU: the fast threaded-code interpreter (paper §III-D1,
    Figure 7), extended with superblock compilation.

    Every guest instruction is compiled once into a specialised
    closure whose operands -- register indices, immediates, the pc --
    are inlined at compile time.  Straight-line runs of closures are
    fused into superblocks executed by a single dispatch that
    bulk-updates [instret] and checks the run budget once per block;
    unconditional jumps are folded into the trace, so a superblock
    can span short then/else arms and loop latches.
    Entries are chained at block granularity: [seq] is the
    fall-through successor (the paper's "add 1 to upc"), [tgt] the
    taken target of a direct branch or jump (block chaining), and
    indirect jumps query the hash list in their terminal routine.  On
    the fast path an executed block returns the next entry directly --
    no fetch, no decode, no pc maintenance; only a chain miss falls
    back to the slow path (fetch + decode + compile + patch).

    Writes to x0 are redirected at compile time to the sink register
    slot (§III-D1b); common pseudo-instruction forms (li / mv / nop /
    ret / beqz ...) get dedicated routines with constants inlined
    (§III-D1c); floating point uses the host FPU (§III-D1d).

    Each privilege level owns its own cache table (entries are keyed
    by virtual pc, which maps to different code under different
    privileges): traps and mret/sret just redirect the active table,
    so syscall-heavy guests keep their compiled working set.  All
    tables are flushed together on events that can remap or rewrite
    code (sfence.vma, satp writes, fence.i); when a table reaches
    capacity a bounded victim set is evicted and stale chains into the
    victims self-heal by in-place recompilation.

    Precision: a trap from the i-th instruction of a block retires
    i+1 instructions with a precise epc, and {!run} retires exactly
    [max_insns] unless the machine exits (checkpointing relies on
    this). *)

type entry = {
  e_pc : int64;
  mutable e_len : int;  (** instructions retired by a full pass *)
  mutable body : (unit -> unit) array;
      (** coalesced execution slots: up to four guest instructions per
          dispatch; an instruction that can trap (load/store) may only
          be a slot's final element *)
  mutable steps : (unit -> unit) array;
      (** the unfused per-instruction view used for exact partial
          stops *)
  mutable offs : int array;
      (** byte offset from [e_pc] of each instruction plus a final
          slot for the pc after the last one; traces fold
          unconditional jumps, so bodies are not contiguous *)
  mutable slot_ret : int array;
      (** per-slot count of guest instructions retired through the end
          of the slot -- the exact retire count when the slot raises,
          since only its final instruction can *)
  mutable slot_offs : int array;
      (** per-slot byte offset from [e_pc] of the slot's final
          instruction (the only one that can raise) *)
  mutable exec : exec_fn;
  mutable seq : entry option;
  mutable tgt : entry option;
}

and exec_fn = entry -> entry option

type patch_slot = Patch_seq | Patch_tgt | Patch_none

type t = {
  m : Mach.t;
  caches : (int64, entry) Hashtbl.t array;
      (** one hash list per privilege (U/S/M): privilege switches
          redirect [cache] instead of flushing *)
  mutable cache : (int64, entry) Hashtbl.t;
      (** the active privilege's hash list *)
  capacity : int;
  mutable patch : entry option;
  mutable patch_slot : patch_slot;
  mutable flushes : int;
  mutable slow_lookups : int;
  mutable compiled : int;
  mutable evictions : int; (** entries demoted by capacity eviction *)
  mutable recompiles : int; (** evicted entries rebuilt via stale chains *)
  mutable prof_on : bool;
  mutable prof_edge : int64 -> int64 -> unit;
      (** BBV profiling hook: called with (source pc, target pc) of
          every executed control-flow edge when [prof_on] *)
}

val compile_straight : Mach.t -> Riscv.Insn.t -> (unit -> unit) option
(** Compile one instruction with no control flow and no system effect
    into a body routine closed over the machine (registers read at
    call time, so external patches stay visible), or [None] if the
    instruction needs the generic path.  Shared with the
    non-autonomous REF mode ({!Ref_core}), which reuses the routines
    for its pure register operations. *)

val create : ?capacity:int -> Mach.t -> t
(** [capacity] defaults to 16384 entries, the size the paper selects
    for both Spike's cache and NEMU's uop cache. *)

val flush : t -> unit

val run : t -> max_insns:int -> int
(** Run to machine exit or the instruction budget; returns
    instructions retired. *)

val name : string
