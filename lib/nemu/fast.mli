(** NEMU: the fast threaded-code interpreter (paper §III-D1,
    Figure 7), extended with superblock compilation.

    Every guest instruction is compiled once into a specialised
    closure whose operands -- register indices, immediates, the pc --
    are inlined at compile time.  Straight-line runs of closures are
    fused into superblocks executed by a single dispatch that
    bulk-updates [instret] and checks the run budget once per block;
    unconditional jumps are folded into the trace, so a superblock
    can span short then/else arms and loop latches.
    Entries are chained at block granularity: [seq] is the
    fall-through successor (the paper's "add 1 to upc"), [tgt] the
    taken target of a direct branch or jump (block chaining), and
    indirect jumps query the hash list in their terminal routine.  On
    the fast path an executed block returns the next entry directly --
    no fetch, no decode, no pc maintenance; only a chain miss falls
    back to the slow path (fetch + decode + compile + patch).

    Writes to x0 are redirected at compile time to the sink register
    slot (§III-D1b); common pseudo-instruction forms (li / mv / nop /
    ret / beqz ...) get dedicated routines with constants inlined
    (§III-D1c); floating point uses the host FPU (§III-D1d).

    Each privilege level owns its own cache table (entries are keyed
    by virtual pc, which maps to different code under different
    privileges): traps and mret/sret just redirect the active table,
    so syscall-heavy guests keep their compiled working set.  All
    tables are flushed together on events that can remap or rewrite
    code (sfence.vma, satp writes, fence.i); when a table reaches
    capacity a bounded victim set is evicted and stale chains into the
    victims self-heal by in-place recompilation.

    Precision: a trap from the i-th instruction of a block retires
    i+1 instructions with a precise epc, and {!run} retires exactly
    [max_insns] unless the machine exits (checkpointing relies on
    this). *)

type entry = {
  e_pc : int64;
  mutable e_len : int;  (** instructions retired by a full pass *)
  mutable body : (unit -> unit) array;
      (** coalesced execution slots: up to four guest instructions per
          dispatch; an instruction that can trap (load/store) may only
          be a slot's final element *)
  mutable steps : (unit -> unit) array;
      (** the unfused per-instruction view used for exact partial
          stops *)
  mutable offs : int array;
      (** byte offset from [e_pc] of each instruction plus a final
          slot for the pc after the last one; traces fold
          unconditional jumps, so bodies are not contiguous *)
  mutable slot_ret : int array;
      (** per-slot count of guest instructions retired through the end
          of the slot -- the exact retire count when the slot raises,
          since only its final instruction can *)
  mutable slot_offs : int array;
      (** per-slot byte offset from [e_pc] of the slot's final
          instruction (the only one that can raise) *)
  mutable exec : exec_fn;
  mutable seq : entry option;
  mutable tgt : entry option;
  mutable hot : int;
      (** dispatch count; at the promotion threshold the entry is
          recompiled as a trace megablock *)
}

and exec_fn = entry -> entry option

type site = { sx_pc : int64; mutable sx_e : entry option }
(** A side exit from a trace megablock: the resume pc plus a memoized
    link to its entry, patched lazily like seq/tgt chain slots. *)

type ic = {
  mutable ic_pc0 : int64;
  mutable ic_e0 : entry option;
  mutable ic_pc1 : int64;
  mutable ic_e1 : entry option;
}
(** A 2-way inline cache for an indirect jump site: the last two
    (target pc -> entry) pairs, most recent in way 0. *)

type patch_slot = Patch_seq | Patch_tgt | Patch_site of site | Patch_none

type bias_info = {
  mutable b_pred : int;  (** 0 = follow not-taken, 1 = taken, 2 = nofollow *)
  mutable b_last : int;  (** instret at the previous exit *)
  mutable b_gap : int;  (** EWMA gap between exits; max_int = no sample *)
  mutable b_cnt : int;  (** exits since the last decision *)
  mutable b_flips : int;  (** direction changes so far *)
}
(** Exit-bias feedback for one trace-internal branch: guards whose
    exits arrive within a few trace lengths were predicted in the
    wrong direction -- the first offence flips the followed direction
    and re-traces, the second stops the trace before the branch. *)

type t = {
  m : Mach.t;
  caches : (int64, entry) Hashtbl.t array;
      (** one hash list per privilege (U/S/M): privilege switches
          redirect [cache] instead of flushing *)
  mutable cache : (int64, entry) Hashtbl.t;
      (** the active privilege's hash list *)
  capacity : int;
  mutable patch : entry option;
  mutable patch_slot : patch_slot;
  mutable flushes : int;
  mutable slow_lookups : int;
  mutable compiled : int;
  mutable evictions : int; (** entries demoted by capacity eviction *)
  mutable recompiles : int; (** evicted entries rebuilt via stale chains *)
  mega_enabled : bool; (** trace megablocks allowed in this engine *)
  hot_threshold : int; (** dispatch count that triggers promotion *)
  mutable stop_at : int; (** the active run's instret budget limit *)
  mutable megablocks : int; (** entries promoted to trace megablocks *)
  mutable mega_exits : int; (** trace side exits (guard mispredicts) *)
  mutable ic_hits : int; (** indirect jumps resolved by an inline cache *)
  mutable ic_misses : int; (** inline-cache misses (hash-list fallback) *)
  mutable branch_folds : int; (** trace branches folded to constants *)
  mutable tlb_dedups : int; (** memory-access pairs sharing one check *)
  mutable addr_fuses : int;
      (** address-forming ALU ops fused into their memory access *)
  bias : (int64, bias_info) Hashtbl.t;
      (** per-branch exit-bias feedback, keyed by branch pc *)
  retraces : (int64, int) Hashtbl.t;
      (** bias-driven re-traces per head pc (capped) *)
  mutable prof_on : bool;
  mutable prof_edge : int64 -> int64 -> unit;
      (** BBV profiling hook: called with (source pc, target pc) of
          every executed control-flow edge when [prof_on] *)
}

val compile_straight : Mach.t -> Riscv.Insn.t -> (unit -> unit) option
(** Compile one instruction with no control flow and no system effect
    into a body routine closed over the machine (registers read at
    call time, so external patches stay visible), or [None] if the
    instruction needs the generic path.  Shared with the
    non-autonomous REF mode ({!Ref_core}), which reuses the routines
    for its pure register operations. *)

val megablocks_default : unit -> bool
(** Whether trace megablocks are enabled by default: true unless the
    [MINJIE_MEGABLOCKS] environment variable is "0" / "false" / "off"
    (the CI A/B smoke uses this). *)

val create : ?capacity:int -> ?megablocks:bool -> ?hot_threshold:int ->
  Mach.t -> t
(** [capacity] defaults to 16384 entries, the size the paper selects
    for both Spike's cache and NEMU's uop cache.  [megablocks]
    (default {!megablocks_default}) enables trace-megablock promotion
    of entries dispatched [hot_threshold] (default 32) times. *)

val flush : t -> unit

val rewind : t -> unit
(** Re-arm the engine for another run of the same program image while
    keeping all compiled superblocks/megablocks: re-selects the cache
    table for the machine's current privilege and clears any pending
    chain patch.  Only sound when guest code is unchanged since the
    blocks were compiled; callers that restored memory must [flush]
    instead whenever the previous run performed any flush event
    (compare {!type:t}'s [flushes] counter across runs, as
    [Engine.warm_run] does). *)

val run : t -> max_insns:int -> int
(** Run to machine exit or the instruction budget; returns
    instructions retired. *)

val name : string
