(** Non-autonomous REF mode for the NEMU engine (paper §III-B, §III-D).

    The DiffTest-facing sibling of {!Fast}: instead of fused
    superblock closures it compiles superblocks of decoded
    instructions and retires exactly one per {!step}, emitting the
    same commit records as the {!Iss.Interp} REF -- so diff-rules can
    force events and patch state between any two commits.  Fetch
    translation and decode are paid once per block, data accesses go
    through the {!Mach} host TLB, and the register files are unboxed
    Bigarrays: the sources of the >1.5x co-simulation speedup over
    the plain ISS REF.

    Patching is uop-cache-safe: blocks record their physical code
    pages, and {!patch_mem} invalidates every block compiled from a
    written page before the write lands; fence.i / sfence.vma / satp
    writes flush the whole block cache. *)

open Riscv

type t = {
  m : Mach.t;
  caches : block array array;  (** U / S / M partitions, direct-mapped *)
  page_index : (int64, (int * int) list) Hashtbl.t;
  mutable cur : block;
  mutable cur_ix : int;
  mutable cur_pc : int64;
  mutable forced : forced option;
  mutable force_sc_fail : bool;
  mutable instret : int64;
  mega : bool;  (** jump-site inline caches enabled *)
  mutable gen : int;
      (** cache generation, bumped by every flush and physical-page
          invalidation: an inline-cache way proves its memoized block
          untouched with one integer compare *)
  mutable compiled : int;
  mutable flushes : int;
  mutable invalidations : int;
  mutable slow_lookups : int;
  mutable ic_hits : int;
      (** taken jumps resolved by a jump-site inline cache *)
  mutable ic_misses : int;
      (** taken jumps resolved through the block-cache lookup *)
}

and block = {
  b_pc : int64;
  b_gen : int;  (** the cache generation the block was compiled in *)
  b_insns : Insn.t array;
  b_ops : op array;
  b_pages : int64 array;
      (** physical 4 KiB code pages the block was fetched from *)
}

and op =
  | O_straight of (unit -> unit)
      (** pure register op (a {!Fast.compile_straight} routine);
          next pc = pc+4 *)
  | O_jump of (int64 -> int64) * jic
      (** control flow; returns the next pc.  The inline cache links
          taken jumps block-to-block, the REF-mode analogue of the
          autonomous engine's trace chaining. *)
  | O_slow  (** instrumented path: memory / CSR / system *)

and jic = { mutable j_b0 : block; mutable j_b1 : block }
(** 2-way inline cache at a jump site: last two target blocks, most
    recent in way 0; a way hits only if its block's generation is
    current (no flush or page write since it was compiled). *)

and forced = Force_exception of Trap.exc * int64 | Force_interrupt of Trap.irq

val create : ?dram_size:int -> ?hartid:int -> ?megablocks:bool -> unit -> t
(** [megablocks] (default {!Fast.megablocks_default}) enables the
    jump-site inline caches (REF-mode block linking). *)

val load_program : t -> Asm.program -> unit

val exited : t -> bool

val exit_code : t -> int option

(** {1 DRAV control surface} *)

val force_exception : t -> Trap.exc -> int64 -> unit

val force_interrupt : t -> Trap.irq -> unit

val force_sc_failure : t -> unit

val patch_reg : t -> int -> int64 -> unit

val patch_freg : t -> int -> int64 -> unit

val get_reg : t -> int -> int64

val patch_mem : t -> paddr:int64 -> size:int -> value:int64 -> unit
(** Invalidate any block compiled from the written page(s), then
    write physical memory. *)

val set_counters : t -> cycle:int64 -> instret:int64 -> unit

val set_mcycle : t -> int64 -> unit

val set_time : t -> int64 -> unit

val set_mip_bit : t -> int -> bool -> unit

val memories : t -> Memory.t list
(** The COW memories this REF owns (for LightSSS snapshots). *)

(** {1 Execution} *)

val step : t -> Iss.Interp.step_result
(** Retire exactly one instruction (or forced event), emitting the
    commit record DiffTest checks. *)

val run : ?max_insns:int -> t -> int

val diff_against : t -> Arch_state.t -> string option
(** First difference between the DUT architectural state and this
    REF, in the {!Riscv.Arch_state.diff} message format. *)

val flush_blocks : t -> unit
