(* Lightweight machine state shared by all interpreter engines
   (NEMU and the Spike / QEMU-TCI / Dromajo baselines).

   The integer register file has 33 slots: slot 32 is an unused sink
   variable.  NEMU's decoder redirects writes whose destination is x0
   to slot 32 so that execution routines never need an `if rd <> 0`
   check (paper §III-D1b); the baseline engines use the same register
   file but perform the traditional check.

   The register files are Bigarrays rather than [int64 array]: an
   unboxed int64 store into a Bigarray is a plain 8-byte write,
   whereas an [int64 array] element is a boxed pointer, so every
   register write would allocate a fresh box and run the GC write
   barrier -- the single largest cost in the interpreter hot loop.

   [Mach] also hosts the engines' *host TLB*: three direct-mapped
   VPN -> physical-page-base caches (fetch/load/store) consulted by
   [Exec_generic] before falling back to the full [Iss.Mmu.translate]
   Sv39 walk.  Only DRAM-backed translations are cached; a naturally
   aligned access of <= 8 bytes never crosses a 4 KiB page, so
   page-base + offset is always valid.  The TLB -- together with the
   cached [paging] flag -- is invalidated on every event that can
   change translations: trap entry/return (privilege change),
   sfence.vma, and CSR writes to satp/mstatus/sstatus.  Engines must
   therefore enter traps via {!take_trap}/{!take_irq} rather than
   calling [Trap.take_exception] directly. *)

open Riscv

type regfile =
  (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  regs : regfile; (* 33 entries; [32] is the x0 write sink *)
  fregs : regfile;
  mutable pc : int64;
  csr : Csr.t;
  plat : Platform.t;
  mutable reservation : int64 option;
  mutable instret : int;
  mutable running : bool;
  (* host TLB + cached translation-active flag *)
  mutable paging : bool;
  mutable tlb_off : int; (* active privilege's region: 0 = U, 3 x size = S *)
  tlb_tags : int64 array; (* 2 privs x 3 kinds x tlb_size; -1 = invalid *)
  tlb_base : int64 array; (* physical page base *)
}

let sink = 32

let tlb_bits = 9

let tlb_size = 1 lsl tlb_bits

(* kind indices into the TLB arrays *)
let tlb_fetch = 0
let tlb_load = 1
let tlb_store = 2

let tlb_flush t =
  Array.fill t.tlb_tags 0 (Array.length t.tlb_tags) (-1L)

let create ?(dram_size = 64 * 1024 * 1024) ?(hartid = 0) () =
  let plat = Platform.create ~dram_size () in
  let csr = Csr.create ~hartid in
  csr.Csr.time_source <-
    (fun () -> plat.Platform.clint.Platform.Clint.mtime);
  let regs = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout 33 in
  let fregs = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout 32 in
  Bigarray.Array1.fill regs 0L;
  Bigarray.Array1.fill fregs 0L;
  {
    regs;
    fregs;
    pc = Platform.dram_base;
    csr;
    plat;
    reservation = None;
    instret = 0;
    running = true;
    paging = false;
    tlb_off = 0;
    tlb_tags = Array.make (2 * 3 * tlb_size) (-1L);
    tlb_base = Array.make (2 * 3 * tlb_size) 0L;
  }

let load_program t (p : Asm.program) =
  Asm.load p t.plat.Platform.mem;
  t.pc <- p.Asm.entry

let get_reg t r = if r = 0 then 0L else Bigarray.Array1.get t.regs r

let set_reg t r v = if r <> 0 then Bigarray.Array1.set t.regs r v

let exited t = Platform.exited t.plat

let exit_code t = Platform.exit_code t.plat

let paging_on t =
  Pte.satp_mode t.csr.Csr.reg_satp = 8 && t.csr.Csr.priv <> Csr.M

(* The TLB is partitioned by privilege (permissions differ: PTE.U
   pages are U-only without SUM), so a plain privilege switch only has
   to retarget the active region -- no flush.  M-mode never consults
   the TLB ([paging] is false there; MPRV is not modelled). *)
let[@inline] sync_priv t =
  t.paging <- paging_on t;
  t.tlb_off <- (if t.csr.Csr.priv = Csr.S then 3 * tlb_size else 0)

(* Recompute the cached translation context and drop the host TLB
   after any event that can remap pages or change access permissions
   (satp writes, sfence.vma, mstatus/sstatus writes: SUM/MXR). *)
let sync_translation t =
  tlb_flush t;
  sync_priv t

(* [tlb_lookup] returns the physical address, or [Int64.min_int] on a
   miss (a physical address can never be negative). *)
let[@inline] tlb_lookup t kind va =
  let vpn = Int64.shift_right_logical va 12 in
  let idx =
    t.tlb_off + (kind lsl tlb_bits) + (Int64.to_int vpn land (tlb_size - 1))
  in
  if Int64.equal (Array.unsafe_get t.tlb_tags idx) vpn then
    Int64.logor (Array.unsafe_get t.tlb_base idx) (Int64.logand va 0xFFFL)
  else Int64.min_int

let[@inline] tlb_fill t kind va pa =
  let vpn = Int64.shift_right_logical va 12 in
  let idx =
    t.tlb_off + (kind lsl tlb_bits) + (Int64.to_int vpn land (tlb_size - 1))
  in
  Array.unsafe_set t.tlb_tags idx vpn;
  Array.unsafe_set t.tlb_base idx (Int64.logand pa (Int64.lognot 0xFFFL))

let translate t va (access : Iss.Mmu.access) =
  if t.paging then Iss.Mmu.translate t.plat t.csr va access else va

let take_trap t exc tval ~epc =
  t.pc <- Trap.take_exception t.csr exc tval ~epc;
  sync_priv t

let take_irq t irq =
  t.pc <- Trap.take_interrupt t.csr irq ~epc:t.pc;
  sync_priv t

let check_running t = if Platform.exited t.plat then t.running <- false

let arch_state_digest t =
  (* for checkpoint tests: (pc, xregs, fregs) *)
  ( t.pc,
    Array.init 32 (fun i -> Bigarray.Array1.get t.regs i),
    Array.init 32 (fun i -> Bigarray.Array1.get t.fregs i) )
