(* Generic (non-specialised) execution of a decoded instruction on a
   Mach.t, with pluggable floating-point arithmetic.

   This is the executor used by the baseline engines:
   - dromajo_like re-decodes and calls it for every instruction;
   - spike_like caches decodes but still pays the full generic
     dispatch, and plugs in SoftFloat arithmetic (the reason Spike is
     slow on SPECfp, §III-D2);
   - qemu_tci_like only uses it for system instructions.

   NEMU instead compiles each instruction into a specialised closure
   (see fast.ml), but shares [load]/[store]/[fetch_decode] as its
   slow path.

   Memory accesses consult the host TLB in [Mach] before the full Sv39
   walk: a hit resolves a virtual access with one array read.  Only
   DRAM-backed pages are cached (MMIO always takes the slow path).
   Privilege switches retarget the TLB's per-privilege partition
   ([Mach.sync_priv]: the [Mret]/[Sret] arms below plus
   [Mach.take_trap]); remapping events flush it
   ([Mach.sync_translation]: the [Sfence_vma] and satp/status [Csr]
   arms). *)

open Riscv

type fp_ops = {
  f_add : int64 -> int64 -> int64;
  f_sub : int64 -> int64 -> int64;
  f_mul : int64 -> int64 -> int64;
  f_div : int64 -> int64 -> int64;
  f_sqrt : int64 -> int64;
  f_fused : Insn.fp_fused_op -> int64 -> int64 -> int64 -> int64;
}

let host_fp =
  {
    f_add = Iss.Fpu.add;
    f_sub = Iss.Fpu.sub;
    f_mul = Iss.Fpu.mul;
    f_div = Iss.Fpu.div;
    f_sqrt = Iss.Fpu.sqrt;
    f_fused = Iss.Fpu.fused;
  }

let soft_fused op a b c =
  let neg v = Int64.logxor v Int64.min_int in
  match op with
  | Insn.FMADD -> Iss.Softfloat.add (Iss.Softfloat.mul a b) c
  | FMSUB -> Iss.Softfloat.sub (Iss.Softfloat.mul a b) c
  | FNMSUB -> Iss.Softfloat.add (neg (Iss.Softfloat.mul a b)) c
  | FNMADD -> Iss.Softfloat.sub (neg (Iss.Softfloat.mul a b)) c

let soft_fp =
  {
    f_add = Iss.Softfloat.add;
    f_sub = Iss.Softfloat.sub;
    f_mul = Iss.Softfloat.mul;
    f_div = Iss.Softfloat.div;
    f_sqrt = Iss.Softfloat.sqrt;
    f_fused = soft_fused;
  }

(* Widths are powers of two, so the remainder test is a mask test. *)
let[@inline] check_aligned vaddr size exc =
  if Int64.logand vaddr (Int64.of_int (size - 1)) <> 0L then
    raise (Trap.Exception (exc, vaddr))

let load (m : Mach.t) vaddr size =
  check_aligned vaddr size Trap.Load_misaligned;
  let mem = m.Mach.plat.Platform.mem in
  if not m.Mach.paging then begin
    if Memory.in_range mem vaddr then Memory.read_bytes_le mem vaddr size
    else
      match Platform.read m.plat ~addr:vaddr ~size with
      | v -> v
      | exception Platform.Bus_fault _ ->
          raise (Trap.Exception (Trap.Load_access, vaddr))
  end
  else begin
    let pa = Mach.tlb_lookup m Mach.tlb_load vaddr in
    if pa <> Int64.min_int then Memory.read_bytes_le mem pa size
    else begin
      let pa = Iss.Mmu.translate m.plat m.csr vaddr Iss.Mmu.Load in
      if Memory.in_range mem pa then begin
        Mach.tlb_fill m Mach.tlb_load vaddr pa;
        Memory.read_bytes_le mem pa size
      end
      else
        match Platform.read m.plat ~addr:pa ~size with
        | v -> v
        | exception Platform.Bus_fault _ ->
            raise (Trap.Exception (Trap.Load_access, vaddr))
    end
  end

let store (m : Mach.t) vaddr size v =
  check_aligned vaddr size Trap.Store_misaligned;
  let mem = m.Mach.plat.Platform.mem in
  if not m.Mach.paging then begin
    if Memory.in_range mem vaddr then Memory.write_bytes_le mem vaddr size v
    else begin
      (try Platform.write m.plat ~addr:vaddr ~size v
       with Platform.Bus_fault _ ->
         raise (Trap.Exception (Trap.Store_access, vaddr)));
      Mach.check_running m
    end
  end
  else begin
    let pa = Mach.tlb_lookup m Mach.tlb_store vaddr in
    if pa <> Int64.min_int then Memory.write_bytes_le mem pa size v
    else begin
      let pa = Iss.Mmu.translate m.plat m.csr vaddr Iss.Mmu.Store in
      if Memory.in_range mem pa then begin
        Mach.tlb_fill m Mach.tlb_store vaddr pa;
        Memory.write_bytes_le mem pa size v
      end
      else begin
        (try Platform.write m.plat ~addr:pa ~size v
         with Platform.Bus_fault _ ->
           raise (Trap.Exception (Trap.Store_access, vaddr)));
        Mach.check_running m
      end
    end
  end

(* Execute one decoded instruction at [pc]; updates m.pc.
   Raises Trap.Exception for traps (callers enter the trap). *)
let exec (fp : fp_ops) (m : Mach.t) (pc : int64) (insn : Insn.t) : unit =
  let rg = Mach.get_reg m in
  let wr = Mach.set_reg m in
  let frg i = Bigarray.Array1.get m.Mach.fregs i in
  let fwr i v = Bigarray.Array1.set m.Mach.fregs i v in
  let next = Int64.add pc 4L in
  match insn with
  | Lui (rd, imm) ->
      wr rd imm;
      m.pc <- next
  | Auipc (rd, imm) ->
      wr rd (Int64.add pc imm);
      m.pc <- next
  | Jal (rd, off) ->
      wr rd next;
      m.pc <- Int64.add pc off
  | Jalr (rd, rs1, imm) ->
      let target = Int64.logand (Int64.add (rg rs1) imm) (Int64.lognot 1L) in
      wr rd next;
      m.pc <- target
  | Branch (op, rs1, rs2, off) ->
      m.pc <-
        (if Iss.Alu.eval_branch op (rg rs1) (rg rs2) then Int64.add pc off
         else next)
  | Load (op, rd, rs1, imm) ->
      let v = load m (Int64.add (rg rs1) imm) (Iss.Alu.load_width op) in
      wr rd (Iss.Alu.extend_load op v);
      m.pc <- next
  | Store (op, rs2, rs1, imm) ->
      store m (Int64.add (rg rs1) imm) (Iss.Alu.store_width op) (rg rs2);
      m.pc <- next
  | Op_imm (op, rd, rs1, imm) ->
      wr rd (Iss.Alu.eval_alu op (rg rs1) imm);
      m.pc <- next
  | Op_imm_w (op, rd, rs1, imm) ->
      wr rd (Iss.Alu.eval_alu_w op (rg rs1) imm);
      m.pc <- next
  | Op (op, rd, rs1, rs2) ->
      wr rd (Iss.Alu.eval_alu op (rg rs1) (rg rs2));
      m.pc <- next
  | Op_w (op, rd, rs1, rs2) ->
      wr rd (Iss.Alu.eval_alu_w op (rg rs1) (rg rs2));
      m.pc <- next
  | Mul (op, rd, rs1, rs2) ->
      wr rd (Iss.Alu.eval_mul op (rg rs1) (rg rs2));
      m.pc <- next
  | Mul_w (op, rd, rs1, rs2) ->
      wr rd (Iss.Alu.eval_mul_w op (rg rs1) (rg rs2));
      m.pc <- next
  | Lr (w, rd, rs1) ->
      let size = match w with Width_w -> 4 | Width_d -> 8 in
      let vaddr = rg rs1 in
      let v = load m vaddr size in
      wr rd (match w with Width_w -> Iss.Alu.sext32 v | Width_d -> v);
      m.reservation <- Some (Mach.translate m vaddr Iss.Mmu.Load);
      m.pc <- next
  | Sc (w, rd, rs1, rs2) ->
      let size = match w with Width_w -> 4 | Width_d -> 8 in
      let vaddr = rg rs1 in
      check_aligned vaddr size Trap.Store_misaligned;
      let pa = Mach.translate m vaddr Iss.Mmu.Store in
      let ok = match m.reservation with Some r -> r = pa | None -> false in
      m.reservation <- None;
      if ok then begin
        store m vaddr size (rg rs2);
        wr rd 0L
      end
      else wr rd 1L;
      m.pc <- next
  | Amo (op, w, rd, rs1, rs2) ->
      let size = match w with Width_w -> 4 | Width_d -> 8 in
      let vaddr = rg rs1 in
      check_aligned vaddr size Trap.Store_misaligned;
      let raw = load m vaddr size in
      let old_v =
        match w with Width_w -> Iss.Alu.sext32 raw | Width_d -> raw
      in
      store m vaddr size (Iss.Alu.eval_amo op w old_v (rg rs2));
      wr rd old_v;
      m.pc <- next
  | Csr (op, rd, rs1, addr) -> (
      try
        let old_v =
          match op with
          | CSRRW | CSRRWI when rd = 0 -> 0L
          | _ -> Csr.read m.csr addr
        in
        let src =
          match op with
          | CSRRW | CSRRS | CSRRC -> rg rs1
          | CSRRWI | CSRRSI | CSRRCI -> Int64.of_int rs1
        in
        (match op with
        | CSRRW | CSRRWI -> Csr.write m.csr addr src
        | CSRRS | CSRRSI ->
            if rs1 <> 0 then Csr.write m.csr addr (Int64.logor old_v src)
        | CSRRC | CSRRCI ->
            if rs1 <> 0 then
              Csr.write m.csr addr (Int64.logand old_v (Int64.lognot src)));
        wr rd old_v;
        if addr = Csr.satp || addr = Csr.mstatus || addr = Csr.sstatus then
          Mach.sync_translation m;
        m.pc <- next
      with Csr.Illegal_csr _ ->
        raise (Trap.Exception (Trap.Illegal_instruction, 0L)))
  | Ecall ->
      let exc =
        match m.csr.Csr.priv with
        | Csr.U -> Trap.Ecall_from_u
        | Csr.S -> Trap.Ecall_from_s
        | Csr.M -> Trap.Ecall_from_m
      in
      raise (Trap.Exception (exc, 0L))
  | Ebreak -> raise (Trap.Exception (Trap.Breakpoint, pc))
  | Mret ->
      if m.csr.Csr.priv <> Csr.M then
        raise (Trap.Exception (Trap.Illegal_instruction, 0L));
      m.pc <- Trap.mret m.csr;
      Mach.sync_priv m
  | Sret ->
      if m.csr.Csr.priv = Csr.U then
        raise (Trap.Exception (Trap.Illegal_instruction, 0L));
      m.pc <- Trap.sret m.csr;
      Mach.sync_priv m
  | Wfi | Fence | Fence_i -> m.pc <- next
  | Sfence_vma (_, _) ->
      Mach.sync_translation m;
      m.pc <- next
  | Fld (frd, rs1, imm) ->
      fwr frd (load m (Int64.add (rg rs1) imm) 8);
      m.pc <- next
  | Fsd (frs2, rs1, imm) ->
      store m (Int64.add (rg rs1) imm) 8 (frg frs2);
      m.pc <- next
  | Fp_rrr (op, frd, f1, f2) ->
      let f =
        match op with
        | FADD -> fp.f_add
        | FSUB -> fp.f_sub
        | FMUL -> fp.f_mul
        | FDIV -> fp.f_div
      in
      fwr frd (f (frg f1) (frg f2));
      m.pc <- next
  | Fp_fused (op, frd, f1, f2, f3) ->
      fwr frd (fp.f_fused op (frg f1) (frg f2) (frg f3));
      m.pc <- next
  | Fp_sign (op, frd, f1, f2) ->
      fwr frd (Iss.Fpu.sign_inject op (frg f1) (frg f2));
      m.pc <- next
  | Fp_minmax (op, frd, f1, f2) ->
      fwr frd (Iss.Fpu.minmax op (frg f1) (frg f2));
      m.pc <- next
  | Fp_cmp (op, rd, f1, f2) ->
      wr rd (Iss.Fpu.cmp op (frg f1) (frg f2));
      m.pc <- next
  | Fsqrt_d (frd, f1) ->
      fwr frd (fp.f_sqrt (frg f1));
      m.pc <- next
  | Fcvt_d_l (frd, rs1) ->
      fwr frd (Iss.Fpu.cvt_d_l (rg rs1));
      m.pc <- next
  | Fcvt_d_lu (frd, rs1) ->
      fwr frd (Iss.Fpu.cvt_d_lu (rg rs1));
      m.pc <- next
  | Fcvt_d_w (frd, rs1) ->
      fwr frd (Iss.Fpu.cvt_d_w (rg rs1));
      m.pc <- next
  | Fcvt_l_d (rd, f1) ->
      wr rd (Iss.Fpu.cvt_l_d (frg f1));
      m.pc <- next
  | Fcvt_lu_d (rd, f1) ->
      wr rd (Iss.Fpu.cvt_lu_d (frg f1));
      m.pc <- next
  | Fcvt_w_d (rd, f1) ->
      wr rd (Iss.Fpu.cvt_w_d (frg f1));
      m.pc <- next
  | Fmv_x_d (rd, f1) ->
      wr rd (frg f1);
      m.pc <- next
  | Fmv_d_x (frd, rs1) ->
      fwr frd (rg rs1);
      m.pc <- next
  | Fclass_d (rd, f1) ->
      wr rd (Iss.Fpu.classify (frg f1));
      m.pc <- next
  | Illegal _ -> raise (Trap.Exception (Trap.Illegal_instruction, 0L))

(* Fetch and decode the instruction at [?at] (default m.pc). *)
let fetch_decode ?at (m : Mach.t) : Insn.t =
  let va = match at with Some pc -> pc | None -> m.Mach.pc in
  let mem = m.Mach.plat.Platform.mem in
  if not m.Mach.paging then begin
    if Memory.in_range mem va then
      Decode.decode_int (Memory.read_u32 mem va)
    else raise (Trap.Exception (Trap.Fetch_access, va))
  end
  else begin
    let pa = Mach.tlb_lookup m Mach.tlb_fetch va in
    if pa <> Int64.min_int then Decode.decode_int (Memory.read_u32 mem pa)
    else begin
      let pa = Iss.Mmu.translate m.plat m.csr va Iss.Mmu.Fetch in
      if Memory.in_range mem pa then begin
        Mach.tlb_fill m Mach.tlb_fetch va pa;
        Decode.decode_int (Memory.read_u32 mem pa)
      end
      else raise (Trap.Exception (Trap.Fetch_access, va))
    end
  end

(* One full step with trap handling. *)
let step (fp : fp_ops) (m : Mach.t) : unit =
  let pc = m.pc in
  (try
     let insn = fetch_decode m in
     exec fp m pc insn
   with Trap.Exception (exc, tval) -> Mach.take_trap m exc tval ~epc:pc);
  m.instret <- m.instret + 1
