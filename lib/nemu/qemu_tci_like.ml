(* Baseline engine modelled on QEMU's TCI (tiny code interpreter) mode:
   guest basic blocks are translated once into a linear bytecode of
   micro-operations, cached by block start address, and executed by a
   second-level dispatch loop that re-extracts operands from the
   bytecode cells -- the double dispatch is what makes TCI slower than
   a direct threaded interpreter (§III-D2). *)

open Riscv

(* bytecode opcodes; each micro-op occupies a fixed stride of 6 cells:
   [opc; sub; rd; rs1; rs2; imm_index].  Opcodes 1..6 are reserved for
   a fused-ALU encoding no longer emitted (ALU work now goes through
   the TCG-granularity ld/exec/st triples below). *)
let op_lui = 7
let op_auipc = 8
let op_load = 9
let op_store = 10
let op_branch = 11
let op_jal = 12
let op_jalr = 13
let op_fallback = 14
let op_end = 15

(* TCG-style micro-ops: an ALU guest instruction is split into a
   load-operands / execute / store-result triple, matching the
   granularity at which QEMU's TCI re-interprets TCG ops. *)
let op_ld_rr = 20
let op_ld_ri = 21
let op_exec_alu = 22
let op_exec_aluw = 23
let op_exec_mul = 24
let op_exec_mulw = 25
let op_st = 26

let stride = 6

let alu_id : Insn.alu_op -> int = function
  | ADD -> 0 | SUB -> 1 | SLL -> 2 | SLT -> 3 | SLTU -> 4 | XOR -> 5
  | SRL -> 6 | SRA -> 7 | OR -> 8 | AND -> 9

let alu_of_id = [| Insn.ADD; SUB; SLL; SLT; SLTU; XOR; SRL; SRA; OR; AND |]

let aluw_id : Insn.alu_w_op -> int = function
  | ADDW -> 0 | SUBW -> 1 | SLLW -> 2 | SRLW -> 3 | SRAW -> 4

let aluw_of_id = [| Insn.ADDW; SUBW; SLLW; SRLW; SRAW |]

let mul_id : Insn.mul_op -> int = function
  | MUL -> 0 | MULH -> 1 | MULHSU -> 2 | MULHU -> 3 | DIV -> 4 | DIVU -> 5
  | REM -> 6 | REMU -> 7

let mul_of_id = [| Insn.MUL; MULH; MULHSU; MULHU; DIV; DIVU; REM; REMU |]

let mulw_id : Insn.mul_w_op -> int = function
  | MULW -> 0 | DIVW -> 1 | DIVUW -> 2 | REMW -> 3 | REMUW -> 4

let mulw_of_id = [| Insn.MULW; DIVW; DIVUW; REMW; REMUW |]

let branch_id : Insn.branch_op -> int = function
  | BEQ -> 0 | BNE -> 1 | BLT -> 2 | BGE -> 3 | BLTU -> 4 | BGEU -> 5

let branch_of_id = [| Insn.BEQ; BNE; BLT; BGE; BLTU; BGEU |]

let load_id : Insn.load_op -> int = function
  | LB -> 0 | LH -> 1 | LW -> 2 | LD -> 3 | LBU -> 4 | LHU -> 5 | LWU -> 6

let load_of_id = [| Insn.LB; LH; LW; LD; LBU; LHU; LWU |]

let store_id : Insn.store_op -> int = function
  | SB -> 0 | SH -> 1 | SW -> 2 | SD -> 3

let store_of_id = [| Insn.SB; SH; SW; SD |]

type block = {
  start_pc : int64;
  code : int array;
  imms : int64 array;
  fallbacks : Insn.t array;
  n_insns : int;
}

type t = {
  blocks : (int64, block) Hashtbl.t;
  mutable translated_blocks : int;
}

let create () = { blocks = Hashtbl.create 1024; translated_blocks = 0 }

let max_block_insns = 64

(* Translate the basic block starting at [pc]. *)
let translate (m : Mach.t) (start_pc : int64) : block =
  let code = ref [] and imms = ref [] and fallbacks = ref [] in
  let n_imms = ref 0 and n_fb = ref 0 in
  let emit opc sub rd rs1 rs2 imm_idx =
    code := imm_idx :: rs2 :: rs1 :: rd :: sub :: opc :: !code
  in
  let imm v =
    imms := v :: !imms;
    incr n_imms;
    !n_imms - 1
  in
  let fb insn =
    fallbacks := insn :: !fallbacks;
    incr n_fb;
    !n_fb - 1
  in
  let rec go pc n =
    if n >= max_block_insns then emit op_end 0 0 0 0 (imm pc)
    else begin
      let insn =
        try Exec_generic.fetch_decode ~at:pc m
        with Trap.Exception _ -> Insn.Illegal 0l
      in
      let continue () = go (Int64.add pc 4L) (n + 1) in
      match insn with
      | Op (op, rd, rs1, rs2) ->
          emit op_ld_rr 0 0 rs1 rs2 0;
          emit op_exec_alu (alu_id op) 0 0 0 0;
          emit op_st 0 rd 0 0 0;
          continue ()
      | Op_imm (op, rd, rs1, v) ->
          emit op_ld_ri 0 0 rs1 0 (imm v);
          emit op_exec_alu (alu_id op) 0 0 0 0;
          emit op_st 0 rd 0 0 0;
          continue ()
      | Op_w (op, rd, rs1, rs2) ->
          emit op_ld_rr 0 0 rs1 rs2 0;
          emit op_exec_aluw (aluw_id op) 0 0 0 0;
          emit op_st 0 rd 0 0 0;
          continue ()
      | Op_imm_w (op, rd, rs1, v) ->
          emit op_ld_ri 0 0 rs1 0 (imm v);
          emit op_exec_aluw (aluw_id op) 0 0 0 0;
          emit op_st 0 rd 0 0 0;
          continue ()
      | Mul (op, rd, rs1, rs2) ->
          emit op_ld_rr 0 0 rs1 rs2 0;
          emit op_exec_mul (mul_id op) 0 0 0 0;
          emit op_st 0 rd 0 0 0;
          continue ()
      | Mul_w (op, rd, rs1, rs2) ->
          emit op_ld_rr 0 0 rs1 rs2 0;
          emit op_exec_mulw (mulw_id op) 0 0 0 0;
          emit op_st 0 rd 0 0 0;
          continue ()
      | Lui (rd, v) ->
          emit op_lui 0 rd 0 0 (imm v);
          continue ()
      | Auipc (rd, v) ->
          emit op_auipc 0 rd 0 0 (imm (Int64.add pc v));
          continue ()
      | Load (op, rd, rs1, v) ->
          emit op_load (load_id op) rd rs1 0 (imm v);
          continue ()
      | Store (op, rs2, rs1, v) ->
          emit op_store (store_id op) 0 rs1 rs2 (imm v);
          continue ()
      | Branch (op, rs1, rs2, off) ->
          (* imm slot holds the taken target; next imm the fallthrough *)
          let idx = imm (Int64.add pc off) in
          let _ = imm (Int64.add pc 4L) in
          emit op_branch (branch_id op) 0 rs1 rs2 idx
      | Jal (rd, off) ->
          emit op_jal 0 rd 0 0 (imm (Int64.add pc off));
          let _ = imm (Int64.add pc 4L) in
          ()
      | Jalr (rd, rs1, v) ->
          emit op_jalr 0 rd rs1 0 (imm v);
          let _ = imm (Int64.add pc 4L) in
          ()
      | Lr _ | Sc _ | Amo _ | Csr _ | Ecall | Ebreak | Mret | Sret | Wfi
      | Fence | Fence_i | Sfence_vma _ | Fld _ | Fsd _ | Fp_rrr _
      | Fp_fused _ | Fp_sign _ | Fp_minmax _ | Fp_cmp _ | Fsqrt_d _
      | Fcvt_d_l _ | Fcvt_d_lu _ | Fcvt_d_w _ | Fcvt_l_d _ | Fcvt_lu_d _
      | Fcvt_w_d _ | Fmv_x_d _ | Fmv_d_x _ | Fclass_d _ | Illegal _ ->
          let ends_block = Insn.is_control_flow insn in
          emit op_fallback (fb insn) 0 0 0 (imm pc);
          if ends_block then () else continue ()
    end
  in
  go start_pc 0;
  {
    start_pc;
    code = Array.of_list (List.rev !code);
    imms = Array.of_list (List.rev !imms);
    fallbacks = Array.of_list (List.rev !fallbacks);
    n_insns = 0;
  }

(* Execute one translated block; returns instructions executed. *)
let exec_block (m : Mach.t) (b : block) : int =
  let code = b.code and imms = b.imms in
  let regs = m.Mach.regs in
  let rg r = if r = 0 then 0L else Bigarray.Array1.get regs r in
  let wr r v = if r <> 0 then Bigarray.Array1.set regs r v in
  let n = Array.length code / stride in
  let executed = ref 0 in
  let tmp_a = ref 0L and tmp_b = ref 0L and tmp_c = ref 0L in
  let rec go i pc =
    if i >= n then m.Mach.pc <- pc
    else begin
      let base = i * stride in
      let opc = code.(base) in
      let sub = code.(base + 1) in
      let rd = code.(base + 2) in
      let rs1 = code.(base + 3) in
      let rs2 = code.(base + 4) in
      let ix = code.(base + 5) in
      if opc = op_ld_rr then begin
        tmp_a := rg rs1;
        tmp_b := rg rs2;
        go (i + 1) pc
      end
      else if opc = op_ld_ri then begin
        tmp_a := rg rs1;
        tmp_b := imms.(ix);
        go (i + 1) pc
      end
      else if opc = op_exec_alu then begin
        incr executed;
        tmp_c := Iss.Alu.eval_alu alu_of_id.(sub) !tmp_a !tmp_b;
        go (i + 1) pc
      end
      else if opc = op_exec_aluw then begin
        incr executed;
        tmp_c := Iss.Alu.eval_alu_w aluw_of_id.(sub) !tmp_a !tmp_b;
        go (i + 1) pc
      end
      else if opc = op_exec_mul then begin
        incr executed;
        tmp_c := Iss.Alu.eval_mul mul_of_id.(sub) !tmp_a !tmp_b;
        go (i + 1) pc
      end
      else if opc = op_exec_mulw then begin
        incr executed;
        tmp_c := Iss.Alu.eval_mul_w mulw_of_id.(sub) !tmp_a !tmp_b;
        go (i + 1) pc
      end
      else if opc = op_st then begin
        wr rd !tmp_c;
        go (i + 1) (Int64.add pc 4L)
      end
      else if opc = op_lui then begin
        incr executed;
        wr rd imms.(ix);
        go (i + 1) (Int64.add pc 4L)
      end
      else if opc = op_auipc then begin
        incr executed;
        wr rd imms.(ix);
        go (i + 1) (Int64.add pc 4L)
      end
      else if opc = op_load then begin
        incr executed;
        let op = load_of_id.(sub) in
        m.Mach.pc <- pc (* precise epc if the access traps *);
        let v =
          Exec_generic.load m
            (Int64.add (rg rs1) imms.(ix))
            (Iss.Alu.load_width op)
        in
        wr rd (Iss.Alu.extend_load op v);
        go (i + 1) (Int64.add pc 4L)
      end
      else if opc = op_store then begin
        incr executed;
        let op = store_of_id.(sub) in
        m.Mach.pc <- pc;
        Exec_generic.store m
          (Int64.add (rg rs1) imms.(ix))
          (Iss.Alu.store_width op) (rg rs2);
        if m.Mach.running then go (i + 1) (Int64.add pc 4L)
        else m.Mach.pc <- Int64.add pc 4L
      end
      else if opc = op_branch then begin
        incr executed;
        if Iss.Alu.eval_branch branch_of_id.(sub) (rg rs1) (rg rs2) then
          m.Mach.pc <- imms.(ix)
        else m.Mach.pc <- imms.(ix + 1)
      end
      else if opc = op_jal then begin
        incr executed;
        wr rd imms.(ix + 1);
        m.Mach.pc <- imms.(ix)
      end
      else if opc = op_jalr then begin
        incr executed;
        let target =
          Int64.logand (Int64.add (rg rs1) imms.(ix)) (Int64.lognot 1L)
        in
        wr rd imms.(ix + 1);
        m.Mach.pc <- target
      end
      else if opc = op_fallback then begin
        incr executed;
        let insn = b.fallbacks.(sub) in
        m.Mach.pc <- imms.(ix);
        Exec_generic.exec Exec_generic.host_fp m imms.(ix) insn;
        if Insn.is_control_flow insn then ()
        else go (i + 1) (Int64.add pc 4L)
      end
      else
        (* op_end: not a guest instruction *)
        m.Mach.pc <- imms.(ix)
    end
  in
  (try go 0 b.start_pc
   with Trap.Exception (exc, tval) -> Mach.take_trap m exc tval ~epc:m.Mach.pc);
  !executed

let name = "qemu-tci-like"

let run (m : Mach.t) ~max_insns : int =
  let t = create () in
  let start = m.Mach.instret in
  while m.Mach.running && m.Mach.instret - start < max_insns do
    let pc = m.Mach.pc in
    let b =
      match Hashtbl.find_opt t.blocks pc with
      | Some b -> b
      | None ->
          let b = translate m pc in
          Hashtbl.replace t.blocks pc b;
          t.translated_blocks <- t.translated_blocks + 1;
          b
    in
    let n = exec_block m b in
    m.Mach.instret <- m.Mach.instret + n;
    Mach.check_running m
  done;
  m.Mach.instret - start
