(* NEMU: the fast threaded-code interpreter (paper §III-D1), extended
   with superblock compilation.

   Every guest instruction is compiled once into a specialised OCaml
   closure (the "execution routine") whose operands -- register
   indices, immediates, even the pc -- are inlined at compile time.
   Straight-line runs of such closures (everything up to the next
   branch / jump / system instruction, the paper's trace locality) are
   fused into one *superblock*: a uop-cache entry whose [body] array
   is executed back-to-back by a single dispatch, bulk-updating
   [instret] and checking the run budget once per block instead of
   once per instruction.

   Entries are chained to each other at block granularity:

   - [seq]: the fall-through successor (the paper's "add 1 to upc");
   - [tgt]: the taken target of a direct branch or jump (block
     chaining);
   - indirect jumps query the hash list (❺ in Figure 7) in their
     terminal routine.

   On the fast path an executed superblock returns the next entry
   directly; no fetch, no decode, no pc maintenance.  Only on a chain
   miss does the engine fall back to the slow path (fetch + decode +
   compile + patch the chain).  Writes to x0 are redirected at compile
   time to the sink register slot (§III-D1b), and common
   pseudo-instruction forms (li / mv / nop / ret / beqz / bnez) get
   dedicated routines with their constant operands inlined (§III-D1c).

   Precision rules.  A trap raised by a body instruction retires that
   instruction too (as in [Exec_generic.step]) with a precise epc
   recovered from the per-entry offset tables -- bodies are not
   contiguous (unconditional jumps fold into the trace) and execute as
   coalesced multi-instruction slots, so both tables are indexed
   rather than computed as pc + 4i.  [run ~max_insns] retires
   *exactly* max_insns unless the machine exits -- checkpoints rely on
   this -- so when the remaining budget is smaller than a block, the
   block's body is stepped partially ([run_partial]) through the
   unfused per-instruction view.

   When the cache reaches capacity it is no longer flushed wholesale;
   a bounded victim set is evicted instead.  Chain pointers into an
   evicted entry are healed lazily: the victim keeps its identity but
   its routine is demoted to a stub that recompiles the block in place
   on next execution. *)

open Riscv
open Bigarray

type entry = {
  e_pc : int64;
  mutable e_len : int; (* instructions retired by a full pass *)
  mutable body : (unit -> unit) array;
      (* coalesced execution slots: up to four guest instructions per
         dispatch.  Closures that can raise (loads, stores) may only
         appear as a slot's *final* element -- everything before them
         is non-raising ALU/FP work -- which is what makes the trap
         bookkeeping below exact. *)
  mutable steps : (unit -> unit) array;
      (* the same instructions unfused, one per instruction: the
         partial-execution path ([run_partial]) must stop at an exact
         instruction count, which coalesced slots cannot. *)
  mutable offs : int array;
      (* byte offset from [e_pc] of each *instruction* (indexes
         [steps]), plus one final slot for the pc after the last one.
         Bodies are not contiguous: unconditional jumps are folded
         into the trace, so pc recovery indexes this table instead of
         assuming pc = e_pc + 4i. *)
  mutable slot_ret : int array;
      (* per-slot: guest instructions retired through the *end* of the
         slot.  A raise can only come from a slot's final instruction
         (earlier ones are non-raising by construction), so this is
         the exact retire count when slot i raises. *)
  mutable slot_offs : int array;
      (* per-slot byte offset from [e_pc] of the slot's *final*
         instruction -- the only one that can raise *)
  mutable exec : exec_fn;
  mutable seq : entry option;
  mutable tgt : entry option;
  mutable hot : int;
      (* dispatch count; when it reaches the promotion threshold the
         entry is recompiled as a trace megablock *)
}

and exec_fn = entry -> entry option

(* A side exit from a trace megablock: the pc execution resumes at
   when a trace-internal guard fails, plus a memoized link to that
   pc's entry (patched in lazily by the slow path, like seq/tgt). *)
type site = { sx_pc : int64; mutable sx_e : entry option }

(* A 2-way inline cache for an indirect jump (jalr/ret): the last two
   (target pc -> entry) pairs observed at this jump site.  Way 0 is
   the most recent; a way-1 hit swaps the ways.  Entries are only ever
   reachable from the same privilege's table as their holder, and
   evicted entries self-heal (demotion preserves identity), so no
   explicit invalidation is needed beyond the whole-cache flush. *)
type ic = {
  mutable ic_pc0 : int64;
  mutable ic_e0 : entry option;
  mutable ic_pc1 : int64;
  mutable ic_e1 : entry option;
}

type patch_slot = Patch_seq | Patch_tgt | Patch_site of site | Patch_none

(* Exit-bias feedback for one trace-internal branch: an EWMA of the
   gap (in retired instructions) between consecutive guard exits at
   this pc.  A guard whose exits arrive within a few trace lengths of
   each other was predicted in the wrong direction: the first offence
   flips the followed direction and retraces; a second offence means
   the branch is genuinely unstable, and the retrace stops before it
   ([b_pred] = 2, "nofollow"). *)
type bias_info = {
  mutable b_pred : int; (* 0 = follow not-taken, 1 = taken, 2 = nofollow *)
  mutable b_last : int; (* instret at the previous exit *)
  mutable b_gap : int; (* EWMA exit gap; max_int = no sample yet *)
  mutable b_cnt : int; (* exits since the last decision *)
  mutable b_flips : int; (* direction changes so far (0, 1, then stop) *)
}

type t = {
  m : Mach.t;
  caches : (int64, entry) Hashtbl.t array; (* one hash list per privilege *)
  mutable cache : (int64, entry) Hashtbl.t; (* the active privilege's list *)
  capacity : int;
  mutable patch : entry option;
  mutable patch_slot : patch_slot;
  mutable flushes : int;
  mutable slow_lookups : int;
  mutable compiled : int;
  mutable evictions : int;
  mutable recompiles : int;
  (* trace megablocks *)
  mega_enabled : bool;
  hot_threshold : int;
  mutable stop_at : int; (* current run's instret budget limit *)
  mutable megablocks : int;
  mutable mega_exits : int;
  mutable ic_hits : int;
  mutable ic_misses : int;
  mutable branch_folds : int;
  mutable tlb_dedups : int;
  mutable addr_fuses : int;
  bias : (int64, bias_info) Hashtbl.t; (* per-branch exit-bias feedback *)
  retraces : (int64, int) Hashtbl.t; (* re-traces per head pc (capped) *)
  (* BBV profiling hooks (§III-D3): record control-flow edges *)
  mutable prof_on : bool;
  mutable prof_edge : int64 -> int64 -> unit; (* src block pc -> dst pc *)
}

(* Raised by a body store routine when the guest hit the exit device
   mid-block; the block handler converts it into a clean stop with a
   precise pc and instret. *)
exception Mach_exited

let max_block = 64

(* Slot combinators for coalesced bodies: one dispatch, several guest
   instructions.  Only closures that cannot raise are combined. *)
let seq2 f g () = f (); g ()
let seq3 f g h () = f (); g (); h ()
let seq4 f g h k () = f (); g (); h (); k ()

(* Can this instruction's straight-line routine raise (Trap.Exception
   or Mach_exited)?  Memory accesses can; ALU / FP / moves cannot
   (divide by zero and FP exceptional cases are defined results in
   RISC-V, not traps). *)
let may_raise (insn : Insn.t) =
  match insn with
  | Insn.Load _ | Insn.Store _ | Insn.Fld _ | Insn.Fsd _ -> true
  | _ -> false

let[@inline] priv_ix = function Csr.U -> 0 | Csr.S -> 1 | Csr.M -> 2

(* Megablocks default on; MINJIE_MEGABLOCKS=0 disables them (the CI
   A/B smoke and the bench --no-megablocks flag use this). *)
let megablocks_default () =
  match Sys.getenv_opt "MINJIE_MEGABLOCKS" with
  | Some ("0" | "false" | "off") -> false
  | _ -> true

let create ?(capacity = 16384) ?megablocks ?(hot_threshold = 32) (m : Mach.t) :
    t =
  let caches = Array.init 3 (fun _ -> Hashtbl.create (2 * capacity)) in
  let megablocks =
    match megablocks with Some b -> b | None -> megablocks_default ()
  in
  {
    m;
    caches;
    cache = caches.(priv_ix m.Mach.csr.Csr.priv);
    capacity;
    patch = None;
    patch_slot = Patch_none;
    flushes = 0;
    slow_lookups = 0;
    compiled = 0;
    evictions = 0;
    recompiles = 0;
    mega_enabled = megablocks;
    hot_threshold = max 1 hot_threshold;
    stop_at = 0;
    megablocks = 0;
    mega_exits = 0;
    ic_hits = 0;
    ic_misses = 0;
    branch_folds = 0;
    tlb_dedups = 0;
    addr_fuses = 0;
    bias = Hashtbl.create 64;
    retraces = Hashtbl.create 16;
    prof_on = false;
    prof_edge = (fun _ _ -> ());
  }

(* Entries are keyed by virtual pc, and the same va maps to different
   code under different privileges (M bypasses translation; S and U
   see different leaf permissions).  Rather than flushing on every
   privilege switch -- ruinous for syscall-heavy guests, which would
   recompile their working set on every trap/mret round trip -- each
   privilege owns a cache and a switch just redirects [t.cache].
   Chains never cross tables: every transition that can change
   privilege (trap, interrupt, mret/sret) goes through the slow path
   with the pending patch cleared. *)
let[@inline] retarget (t : t) =
  t.cache <- t.caches.(priv_ix t.m.Mach.csr.Csr.priv);
  t.patch <- None;
  t.patch_slot <- Patch_none

(* Re-arm the engine for a fresh run of the *same* program image
   without dropping compiled code: point [cache] back at the table for
   the machine's (restored) privilege and clear any pending patch from
   the previous run's final dispatch.  Callers that restored guest
   memory are responsible for flushing instead when the previous run
   saw any flush event (fence.i / sfence / satp write) -- see
   {!Engine.warm_run}. *)
let rewind (t : t) = retarget t

let flush (t : t) =
  Array.iter Hashtbl.reset t.caches;
  t.cache <- t.caches.(priv_ix t.m.Mach.csr.Csr.priv);
  t.patch <- None;
  t.patch_slot <- Patch_none;
  Hashtbl.reset t.bias;
  Hashtbl.reset t.retraces;
  t.flushes <- t.flushes + 1

(* --- inline caches for indirect jumps --------------------------------- *)

let new_ic () =
  { ic_pc0 = Int64.min_int; ic_e0 = None; ic_pc1 = Int64.min_int; ic_e1 = None }

(* Resolve an indirect target through a jump site's inline cache,
   falling back to the active privilege's hash list only on a miss.
   A hash-list hit is installed in way 0 (way 0 shifts down); a way-1
   hit swaps the ways, so the two most recent targets stay cached. *)
let ic_lookup (t : t) (ic : ic) (target : int64) : entry option =
  if Int64.equal ic.ic_pc0 target then begin
    t.ic_hits <- t.ic_hits + 1;
    ic.ic_e0
  end
  else if Int64.equal ic.ic_pc1 target then begin
    t.ic_hits <- t.ic_hits + 1;
    let e1 = ic.ic_e1 in
    ic.ic_pc1 <- ic.ic_pc0;
    ic.ic_e1 <- ic.ic_e0;
    ic.ic_pc0 <- target;
    ic.ic_e0 <- e1;
    e1
  end
  else begin
    t.ic_misses <- t.ic_misses + 1;
    match Hashtbl.find_opt t.cache target with
    | Some _ as r ->
        ic.ic_pc1 <- ic.ic_pc0;
        ic.ic_e1 <- ic.ic_e0;
        ic.ic_pc0 <- target;
        ic.ic_e0 <- r;
        r
    | None ->
        t.m.Mach.pc <- target;
        t.patch <- None;
        t.patch_slot <- Patch_none;
        None
  end

(* --- trace-compiler helpers ------------------------------------------- *)

(* Integer destination register of an instruction, for the trace
   compiler's single-writer analysis (constant folds are only valid
   when every register the folded value depends on is written exactly
   once in the whole trace). *)
let dest_reg (insn : Insn.t) : int option =
  match insn with
  | Insn.Op_imm (_, rd, _, _)
  | Insn.Op_imm_w (_, rd, _, _)
  | Insn.Op (_, rd, _, _)
  | Insn.Op_w (_, rd, _, _)
  | Insn.Mul (_, rd, _, _)
  | Insn.Mul_w (_, rd, _, _)
  | Insn.Lui (rd, _)
  | Insn.Auipc (rd, _)
  | Insn.Load (_, rd, _, _)
  | Insn.Fp_cmp (_, rd, _, _)
  | Insn.Fcvt_l_d (rd, _)
  | Insn.Fcvt_lu_d (rd, _)
  | Insn.Fcvt_w_d (rd, _)
  | Insn.Fclass_d (rd, _)
  | Insn.Fmv_x_d (rd, _)
  | Insn.Jal (rd, _)
  | Insn.Jalr (rd, _, _) ->
      Some rd
  | _ -> None

let eval_branch_static (op : Insn.branch_op) (a : int64) (b : int64) : bool =
  match op with
  | Insn.BEQ -> Int64.equal a b
  | Insn.BNE -> not (Int64.equal a b)
  | Insn.BLT -> Int64.compare a b < 0
  | Insn.BGE -> Int64.compare a b >= 0
  | Insn.BLTU -> Int64.unsigned_compare a b < 0
  | Insn.BGEU -> Int64.unsigned_compare a b >= 0

(* --- straight-line routines ------------------------------------------

   [compile_straight] compiles an instruction with no control flow and
   no system effect into a [unit -> unit] body routine, or returns
   [None] if the instruction must terminate the superblock.  Body
   routines communicate exceptional outcomes by raising
   (Trap.Exception or Mach_exited); the enclosing block handler owns
   instret/pc/epc bookkeeping. *)

let compile_straight (m : Mach.t) (insn : Insn.t) : (unit -> unit) option =
  let regs = m.Mach.regs in
  let fregs = m.Mach.fregs in
  let mem = m.Mach.plat.Platform.mem in
  (* Inlined-at-compile-time memory geometry for the load/store fast
     paths.  Without flambda, a cross-module call taking or returning
     an int64 boxes it (3 minor words); at one box per executed memory
     access that allocation dominates memory-bound kernels.  The fast
     paths below therefore reduce the virtual address to a host [int]
     DRAM offset immediately -- every later check (bounds, alignment,
     last-page-cache probe) is int arithmetic -- and touch the page's
     backing store with [Bytes.get/set_*] primitives, which the
     compiler reads/writes unboxed.  A fast-path hit allocates
     nothing; misses (paging on, out of DRAM, misaligned, page-cache
     miss) call out exactly as before. *)
  let mbase = mem.Memory.base in
  let msize = Int64.of_int (Memory.size mem) in
  let pbits = mem.Memory.page_bits in
  let pmask = (1 lsl pbits) - 1 in
  let rdx rd = if rd = 0 then Mach.sink else rd in
  match insn with
  (* --- pseudo-instruction specialisations --- *)
  | Op_imm (ADD, 0, 0, _) -> Some (fun () -> ()) (* nop *)
  | Op_imm (ADD, rd, 0, imm) ->
      (* li *)
      let rd = rdx rd in
      Some (fun () -> Array1.unsafe_set regs rd imm)
  | Op_imm (ADD, rd, rs1, 0L) ->
      (* mv *)
      let rd = rdx rd in
      Some (fun () -> Array1.unsafe_set regs rd (Array1.unsafe_get regs rs1))
  | Op_imm (op, rd, rs1, imm) ->
      let rd = rdx rd in
      Some
        (match op with
        | ADD ->
            fun () ->
              Array1.unsafe_set regs rd
                (Int64.add (Array1.unsafe_get regs rs1) imm)
        | SUB ->
            fun () ->
              Array1.unsafe_set regs rd
                (Int64.sub (Array1.unsafe_get regs rs1) imm)
        | SLL ->
            let sh = Int64.to_int imm land 0x3F in
            fun () ->
              Array1.unsafe_set regs rd
                (Int64.shift_left (Array1.unsafe_get regs rs1) sh)
        | SLT ->
            fun () ->
              Array1.unsafe_set regs rd
                (if Array1.unsafe_get regs rs1 < imm then 1L else 0L)
        | SLTU ->
            (* unsigned a < b without a function call:
               signed (a < b) xor (sign a) xor (sign b) *)
            fun () ->
              let a = Array1.unsafe_get regs rs1 in
              Array1.unsafe_set regs rd
                (if a < imm <> (a < 0L <> (imm < 0L)) then 1L else 0L)
        | XOR ->
            fun () ->
              Array1.unsafe_set regs rd
                (Int64.logxor (Array1.unsafe_get regs rs1) imm)
        | SRL ->
            let sh = Int64.to_int imm land 0x3F in
            fun () ->
              Array1.unsafe_set regs rd
                (Int64.shift_right_logical (Array1.unsafe_get regs rs1) sh)
        | SRA ->
            let sh = Int64.to_int imm land 0x3F in
            fun () ->
              Array1.unsafe_set regs rd
                (Int64.shift_right (Array1.unsafe_get regs rs1) sh)
        | OR ->
            fun () ->
              Array1.unsafe_set regs rd
                (Int64.logor (Array1.unsafe_get regs rs1) imm)
        | AND ->
            fun () ->
              Array1.unsafe_set regs rd
                (Int64.logand (Array1.unsafe_get regs rs1) imm))
  | Op_imm_w (op, rd, rs1, imm) ->
      let rd = rdx rd in
      Some
        (fun () ->
          Array1.unsafe_set regs rd
            (Iss.Alu.eval_alu_w op (Array1.unsafe_get regs rs1) imm))
  | Op (op, rd, rs1, rs2) ->
      let rd = rdx rd in
      Some
        (match op with
        | ADD ->
            fun () ->
              Array1.unsafe_set regs rd
                (Int64.add
                   (Array1.unsafe_get regs rs1)
                   (Array1.unsafe_get regs rs2))
        | SUB ->
            fun () ->
              Array1.unsafe_set regs rd
                (Int64.sub
                   (Array1.unsafe_get regs rs1)
                   (Array1.unsafe_get regs rs2))
        | XOR ->
            fun () ->
              Array1.unsafe_set regs rd
                (Int64.logxor
                   (Array1.unsafe_get regs rs1)
                   (Array1.unsafe_get regs rs2))
        | OR ->
            fun () ->
              Array1.unsafe_set regs rd
                (Int64.logor
                   (Array1.unsafe_get regs rs1)
                   (Array1.unsafe_get regs rs2))
        | AND ->
            fun () ->
              Array1.unsafe_set regs rd
                (Int64.logand
                   (Array1.unsafe_get regs rs1)
                   (Array1.unsafe_get regs rs2))
        | SLL ->
            fun () ->
              Array1.unsafe_set regs rd
                (Int64.shift_left
                   (Array1.unsafe_get regs rs1)
                   (Int64.to_int (Array1.unsafe_get regs rs2) land 0x3F))
        | SRL ->
            fun () ->
              Array1.unsafe_set regs rd
                (Int64.shift_right_logical
                   (Array1.unsafe_get regs rs1)
                   (Int64.to_int (Array1.unsafe_get regs rs2) land 0x3F))
        | SRA ->
            fun () ->
              Array1.unsafe_set regs rd
                (Int64.shift_right
                   (Array1.unsafe_get regs rs1)
                   (Int64.to_int (Array1.unsafe_get regs rs2) land 0x3F))
        | SLT ->
            fun () ->
              Array1.unsafe_set regs rd
                (if Array1.unsafe_get regs rs1 < Array1.unsafe_get regs rs2
                 then 1L
                 else 0L)
        | SLTU ->
            fun () ->
              let a = Array1.unsafe_get regs rs1 in
              let b = Array1.unsafe_get regs rs2 in
              Array1.unsafe_set regs rd
                (if a < b <> (a < 0L <> (b < 0L)) then 1L else 0L))
  | Op_w (op, rd, rs1, rs2) ->
      let rd = rdx rd in
      Some
        (fun () ->
          Array1.unsafe_set regs rd
            (Iss.Alu.eval_alu_w op
               (Array1.unsafe_get regs rs1)
               (Array1.unsafe_get regs rs2)))
  | Mul (MUL, rd, rs1, rs2) ->
      let rd = rdx rd in
      Some
        (fun () ->
          Array1.unsafe_set regs rd
            (Int64.mul
               (Array1.unsafe_get regs rs1)
               (Array1.unsafe_get regs rs2)))
  | Mul (op, rd, rs1, rs2) ->
      let rd = rdx rd in
      Some
        (fun () ->
          Array1.unsafe_set regs rd
            (Iss.Alu.eval_mul op
               (Array1.unsafe_get regs rs1)
               (Array1.unsafe_get regs rs2)))
  | Mul_w (op, rd, rs1, rs2) ->
      let rd = rdx rd in
      Some
        (fun () ->
          Array1.unsafe_set regs rd
            (Iss.Alu.eval_mul_w op
               (Array1.unsafe_get regs rs1)
               (Array1.unsafe_get regs rs2)))
  | Lui (rd, imm) ->
      let rd = rdx rd in
      Some (fun () -> Array1.unsafe_set regs rd imm)
  | Auipc (rd, imm) ->
      (* note: the block compiler passes the *instruction* pc via imm
         pre-addition: Auipc is rewritten before reaching here *)
      let rd = rdx rd in
      Some (fun () -> Array1.unsafe_set regs rd imm)
  | Load (op, rd, rs1, imm) ->
      let rd = rdx rd in
      let ext = Iss.Alu.extend_load op in
      Some
        (match op with
        | LD ->
            fun () ->
              let a = Array1.unsafe_get regs rs1 in
              let d = Int64.sub (Int64.add a imm) mbase in
              if
                (not m.Mach.paging)
                && 0L <= d && d < msize
                && Int64.to_int d land 7 = 0
              then begin
                let off = Int64.to_int d in
                let idx = off lsr pbits in
                let data =
                  if idx = mem.Memory.cache_r_idx then mem.Memory.cache_r_data
                  else Memory.read_page mem idx
                in
                Array1.unsafe_set regs rd
                  (Bytes.get_int64_le data (off land pmask))
              end
              else
                Array1.unsafe_set regs rd
                  (Exec_generic.load m (Int64.add a imm) 8)
        | LW ->
            fun () ->
              let a = Array1.unsafe_get regs rs1 in
              let d = Int64.sub (Int64.add a imm) mbase in
              if
                (not m.Mach.paging)
                && 0L <= d && d < msize
                && Int64.to_int d land 3 = 0
              then begin
                let off = Int64.to_int d in
                let idx = off lsr pbits in
                let data =
                  if idx = mem.Memory.cache_r_idx then mem.Memory.cache_r_data
                  else Memory.read_page mem idx
                in
                Array1.unsafe_set regs rd
                  (Int64.of_int32 (Bytes.get_int32_le data (off land pmask)))
              end
              else
                Array1.unsafe_set regs rd
                  (ext (Exec_generic.load m (Int64.add a imm) 4))
        | LWU ->
            fun () ->
              let a = Array1.unsafe_get regs rs1 in
              let d = Int64.sub (Int64.add a imm) mbase in
              if
                (not m.Mach.paging)
                && 0L <= d && d < msize
                && Int64.to_int d land 3 = 0
              then begin
                let off = Int64.to_int d in
                let idx = off lsr pbits in
                let data =
                  if idx = mem.Memory.cache_r_idx then mem.Memory.cache_r_data
                  else Memory.read_page mem idx
                in
                Array1.unsafe_set regs rd
                  (Int64.logand
                     (Int64.of_int32 (Bytes.get_int32_le data (off land pmask)))
                     0xFFFF_FFFFL)
              end
              else
                Array1.unsafe_set regs rd
                  (ext (Exec_generic.load m (Int64.add a imm) 4))
        | LH ->
            fun () ->
              let a = Array1.unsafe_get regs rs1 in
              let d = Int64.sub (Int64.add a imm) mbase in
              if
                (not m.Mach.paging)
                && 0L <= d && d < msize
                && Int64.to_int d land 1 = 0
              then begin
                let off = Int64.to_int d in
                let idx = off lsr pbits in
                let data =
                  if idx = mem.Memory.cache_r_idx then mem.Memory.cache_r_data
                  else Memory.read_page mem idx
                in
                Array1.unsafe_set regs rd
                  (Int64.of_int (Bytes.get_int16_le data (off land pmask)))
              end
              else
                Array1.unsafe_set regs rd
                  (ext (Exec_generic.load m (Int64.add a imm) 2))
        | LHU ->
            fun () ->
              let a = Array1.unsafe_get regs rs1 in
              let d = Int64.sub (Int64.add a imm) mbase in
              if
                (not m.Mach.paging)
                && 0L <= d && d < msize
                && Int64.to_int d land 1 = 0
              then begin
                let off = Int64.to_int d in
                let idx = off lsr pbits in
                let data =
                  if idx = mem.Memory.cache_r_idx then mem.Memory.cache_r_data
                  else Memory.read_page mem idx
                in
                Array1.unsafe_set regs rd
                  (Int64.of_int (Bytes.get_uint16_le data (off land pmask)))
              end
              else
                Array1.unsafe_set regs rd
                  (ext (Exec_generic.load m (Int64.add a imm) 2))
        | LB ->
            fun () ->
              let a = Array1.unsafe_get regs rs1 in
              let d = Int64.sub (Int64.add a imm) mbase in
              if (not m.Mach.paging) && 0L <= d && d < msize then begin
                let off = Int64.to_int d in
                let idx = off lsr pbits in
                let data =
                  if idx = mem.Memory.cache_r_idx then mem.Memory.cache_r_data
                  else Memory.read_page mem idx
                in
                Array1.unsafe_set regs rd
                  (Int64.of_int (Bytes.get_int8 data (off land pmask)))
              end
              else
                Array1.unsafe_set regs rd
                  (ext (Exec_generic.load m (Int64.add a imm) 1))
        | LBU ->
            fun () ->
              let a = Array1.unsafe_get regs rs1 in
              let d = Int64.sub (Int64.add a imm) mbase in
              if (not m.Mach.paging) && 0L <= d && d < msize then begin
                let off = Int64.to_int d in
                let idx = off lsr pbits in
                let data =
                  if idx = mem.Memory.cache_r_idx then mem.Memory.cache_r_data
                  else Memory.read_page mem idx
                in
                Array1.unsafe_set regs rd
                  (Int64.of_int (Bytes.get_uint8 data (off land pmask)))
              end
              else
                Array1.unsafe_set regs rd
                  (ext (Exec_generic.load m (Int64.add a imm) 1)))
  | Store (op, rs2, rs1, imm) ->
      Some
        (match op with
        | SD ->
            fun () ->
              let a = Array1.unsafe_get regs rs1 in
              let d = Int64.sub (Int64.add a imm) mbase in
              if
                (not m.Mach.paging)
                && 0L <= d && d < msize
                && Int64.to_int d land 7 = 0
              then begin
                let off = Int64.to_int d in
                let idx = off lsr pbits in
                let data =
                  if idx = mem.Memory.cache_w_idx then mem.Memory.cache_w_data
                  else Memory.write_page mem idx
                in
                Bytes.set_int64_le data (off land pmask)
                  (Array1.unsafe_get regs rs2)
              end
              else begin
                Exec_generic.store m (Int64.add a imm) 8
                  (Array1.unsafe_get regs rs2);
                if not m.Mach.running then raise Mach_exited
              end
        | SW ->
            fun () ->
              let a = Array1.unsafe_get regs rs1 in
              let d = Int64.sub (Int64.add a imm) mbase in
              if
                (not m.Mach.paging)
                && 0L <= d && d < msize
                && Int64.to_int d land 3 = 0
              then begin
                let off = Int64.to_int d in
                let idx = off lsr pbits in
                let data =
                  if idx = mem.Memory.cache_w_idx then mem.Memory.cache_w_data
                  else Memory.write_page mem idx
                in
                Bytes.set_int32_le data (off land pmask)
                  (Int64.to_int32 (Array1.unsafe_get regs rs2))
              end
              else begin
                Exec_generic.store m (Int64.add a imm) 4
                  (Array1.unsafe_get regs rs2);
                if not m.Mach.running then raise Mach_exited
              end
        | SH ->
            fun () ->
              let a = Array1.unsafe_get regs rs1 in
              let d = Int64.sub (Int64.add a imm) mbase in
              if
                (not m.Mach.paging)
                && 0L <= d && d < msize
                && Int64.to_int d land 1 = 0
              then begin
                let off = Int64.to_int d in
                let idx = off lsr pbits in
                let data =
                  if idx = mem.Memory.cache_w_idx then mem.Memory.cache_w_data
                  else Memory.write_page mem idx
                in
                Bytes.set_uint16_le data (off land pmask)
                  (Int64.to_int (Array1.unsafe_get regs rs2) land 0xFFFF)
              end
              else begin
                Exec_generic.store m (Int64.add a imm) 2
                  (Array1.unsafe_get regs rs2);
                if not m.Mach.running then raise Mach_exited
              end
        | SB ->
            fun () ->
              let a = Array1.unsafe_get regs rs1 in
              let d = Int64.sub (Int64.add a imm) mbase in
              if (not m.Mach.paging) && 0L <= d && d < msize then begin
                let off = Int64.to_int d in
                let idx = off lsr pbits in
                let data =
                  if idx = mem.Memory.cache_w_idx then mem.Memory.cache_w_data
                  else Memory.write_page mem idx
                in
                Bytes.set_uint8 data (off land pmask)
                  (Int64.to_int (Array1.unsafe_get regs rs2) land 0xFF)
              end
              else begin
                Exec_generic.store m (Int64.add a imm) 1
                  (Array1.unsafe_get regs rs2);
                if not m.Mach.running then raise Mach_exited
              end)
  | Fld (frd, rs1, imm) ->
      Some
        (fun () ->
          let a = Array1.unsafe_get regs rs1 in
          let d = Int64.sub (Int64.add a imm) mbase in
          if
            (not m.Mach.paging)
            && 0L <= d && d < msize
            && Int64.to_int d land 7 = 0
          then begin
            let off = Int64.to_int d in
            let idx = off lsr pbits in
            let data =
              if idx = mem.Memory.cache_r_idx then mem.Memory.cache_r_data
              else Memory.read_page mem idx
            in
            Array1.unsafe_set fregs frd (Bytes.get_int64_le data (off land pmask))
          end
          else
            Array1.unsafe_set fregs frd (Exec_generic.load m (Int64.add a imm) 8))
  | Fsd (frs2, rs1, imm) ->
      Some
        (fun () ->
          let a = Array1.unsafe_get regs rs1 in
          let d = Int64.sub (Int64.add a imm) mbase in
          if
            (not m.Mach.paging)
            && 0L <= d && d < msize
            && Int64.to_int d land 7 = 0
          then begin
            let off = Int64.to_int d in
            let idx = off lsr pbits in
            let data =
              if idx = mem.Memory.cache_w_idx then mem.Memory.cache_w_data
              else Memory.write_page mem idx
            in
            Bytes.set_int64_le data (off land pmask)
              (Array1.unsafe_get fregs frs2)
          end
          else begin
            Exec_generic.store m (Int64.add a imm) 8
              (Array1.unsafe_get fregs frs2);
            if not m.Mach.running then raise Mach_exited
          end)
  | Fp_rrr (op, frd, f1, f2) ->
      (* Same semantics as [Iss.Fpu.add]/... but expanded in the
         closure: [Int64.float_of_bits]/[bits_of_float]/[Float.fma]
         are unboxed externals and [r <> r] is the NaN test, so a
         host-FPU op costs no allocation.  Calling [Fpu] would box
         both int64 operands and the result. *)
      Some
        (match op with
        | FADD ->
            fun () ->
              let r =
                Int64.float_of_bits (Array1.unsafe_get fregs f1)
                +. Int64.float_of_bits (Array1.unsafe_get fregs f2)
              in
              Array1.unsafe_set fregs frd
                (if r <> r then 0x7FF8_0000_0000_0000L
                 else Int64.bits_of_float r)
        | FSUB ->
            fun () ->
              let r =
                Int64.float_of_bits (Array1.unsafe_get fregs f1)
                -. Int64.float_of_bits (Array1.unsafe_get fregs f2)
              in
              Array1.unsafe_set fregs frd
                (if r <> r then 0x7FF8_0000_0000_0000L
                 else Int64.bits_of_float r)
        | FMUL ->
            fun () ->
              let r =
                Int64.float_of_bits (Array1.unsafe_get fregs f1)
                *. Int64.float_of_bits (Array1.unsafe_get fregs f2)
              in
              Array1.unsafe_set fregs frd
                (if r <> r then 0x7FF8_0000_0000_0000L
                 else Int64.bits_of_float r)
        | FDIV ->
            fun () ->
              let r =
                Int64.float_of_bits (Array1.unsafe_get fregs f1)
                /. Int64.float_of_bits (Array1.unsafe_get fregs f2)
              in
              Array1.unsafe_set fregs frd
                (if r <> r then 0x7FF8_0000_0000_0000L
                 else Int64.bits_of_float r))
  | Fp_fused (op, frd, f1, f2, f3) ->
      (* fnmsub/fnmadd negate the *product*: realised as fma with the
         multiplicand's sign flipped, as in [Iss.Fpu.fused]. *)
      let nega = match op with
        | FNMSUB | FNMADD -> true
        | FMADD | FMSUB -> false
      in
      let negc = match op with
        | FMSUB | FNMADD -> true
        | FMADD | FNMSUB -> false
      in
      Some
        (fun () ->
          let fa = Int64.float_of_bits (Array1.unsafe_get fregs f1) in
          let fb = Int64.float_of_bits (Array1.unsafe_get fregs f2) in
          let fc = Int64.float_of_bits (Array1.unsafe_get fregs f3) in
          let r =
            Float.fma (if nega then -.fa else fa) fb
              (if negc then -.fc else fc)
          in
          Array1.unsafe_set fregs frd
            (if r <> r then 0x7FF8_0000_0000_0000L else Int64.bits_of_float r))
  | Fp_sign (op, frd, f1, f2) ->
      Some
        (match op with
        | FSGNJ ->
            fun () ->
              Array1.unsafe_set fregs frd
                (Int64.logor
                   (Int64.logand (Array1.unsafe_get fregs f1) Int64.max_int)
                   (Int64.logand (Array1.unsafe_get fregs f2) Int64.min_int))
        | FSGNJN ->
            fun () ->
              Array1.unsafe_set fregs frd
                (Int64.logor
                   (Int64.logand (Array1.unsafe_get fregs f1) Int64.max_int)
                   (Int64.logand
                      (Int64.lognot (Array1.unsafe_get fregs f2))
                      Int64.min_int))
        | FSGNJX ->
            fun () ->
              Array1.unsafe_set fregs frd
                (Int64.logxor (Array1.unsafe_get fregs f1)
                   (Int64.logand (Array1.unsafe_get fregs f2) Int64.min_int)))
  | Fp_minmax (op, frd, f1, f2) ->
      Some
        (fun () ->
          Array1.unsafe_set fregs frd
            (Iss.Fpu.minmax op
               (Array1.unsafe_get fregs f1)
               (Array1.unsafe_get fregs f2)))
  | Fp_cmp (op, rd, f1, f2) ->
      let rd = rdx rd in
      (* quiet NaN handling: comparisons with a NaN operand are false
         (host float compares already are), so no explicit NaN test *)
      Some
        (match op with
        | FEQ ->
            fun () ->
              Array1.unsafe_set regs rd
                (if
                   Int64.float_of_bits (Array1.unsafe_get fregs f1)
                   = Int64.float_of_bits (Array1.unsafe_get fregs f2)
                 then 1L
                 else 0L)
        | FLT ->
            fun () ->
              Array1.unsafe_set regs rd
                (if
                   Int64.float_of_bits (Array1.unsafe_get fregs f1)
                   < Int64.float_of_bits (Array1.unsafe_get fregs f2)
                 then 1L
                 else 0L)
        | FLE ->
            fun () ->
              Array1.unsafe_set regs rd
                (if
                   Int64.float_of_bits (Array1.unsafe_get fregs f1)
                   <= Int64.float_of_bits (Array1.unsafe_get fregs f2)
                 then 1L
                 else 0L))
  | Fsqrt_d (frd, f1) ->
      Some
        (fun () ->
          let r = Float.sqrt (Int64.float_of_bits (Array1.unsafe_get fregs f1)) in
          Array1.unsafe_set fregs frd
            (if r <> r then 0x7FF8_0000_0000_0000L else Int64.bits_of_float r))
  | Fcvt_d_l (frd, rs1) ->
      Some
        (fun () ->
          Array1.unsafe_set fregs frd
            (Int64.bits_of_float (Int64.to_float (Array1.unsafe_get regs rs1))))
  | Fcvt_l_d (rd, f1) ->
      let rd = rdx rd in
      (* RTZ with saturation, as [Iss.Fpu.cvt_l_d] *)
      Some
        (fun () ->
          let f = Int64.float_of_bits (Array1.unsafe_get fregs f1) in
          Array1.unsafe_set regs rd
            (if f <> f then Int64.max_int
             else
               let tr = Float.trunc f in
               if tr >= 9.2233720368547758e18 then Int64.max_int
               else if tr <= -9.2233720368547758e18 then Int64.min_int
               else Int64.of_float tr))
  | Fmv_x_d (rd, f1) ->
      let rd = rdx rd in
      Some
        (fun () -> Array1.unsafe_set regs rd (Array1.unsafe_get fregs f1))
  | Fmv_d_x (frd, rs1) ->
      Some
        (fun () -> Array1.unsafe_set fregs frd (Array1.unsafe_get regs rs1))
  | Branch _ | Jal _ | Jalr _ | Lr _ | Sc _ | Amo _ | Csr _ | Ecall | Ebreak
  | Mret | Sret | Wfi | Fence | Fence_i | Sfence_vma _ | Fcvt_d_lu _
  | Fcvt_d_w _ | Fcvt_lu_d _ | Fcvt_w_d _ | Fclass_d _ | Illegal _ ->
      None

(* --- terminal routines ------------------------------------------------

   The terminal executes the block's final (control-flow or system)
   instruction, accounts for it in instret, and returns the successor
   entry (or None on a chain miss / system event). *)

let build_terminal (t : t) (e : entry) (pc : int64) (insn : Insn.t) : exec_fn =
  let m = t.m in
  let regs = m.Mach.regs in
  let next = Int64.add pc 4L in
  let rdx rd = if rd = 0 then Mach.sink else rd in
  let seq_or_miss () =
    match e.seq with
    | Some _ as n -> n
    | None ->
        m.Mach.pc <- next;
        t.patch <- Some e;
        t.patch_slot <- Patch_seq;
        None
  in
  let tgt_or_miss target =
    match e.tgt with
    | Some _ as n -> n
    | None ->
        m.Mach.pc <- target;
        t.patch <- Some e;
        t.patch_slot <- Patch_tgt;
        None
  in
  let indirect target =
    if t.prof_on then t.prof_edge pc target;
    match Hashtbl.find_opt t.cache target with
    | Some _ as n -> n
    | None ->
        m.Mach.pc <- target;
        t.patch <- None;
        t.patch_slot <- Patch_none;
        None
  in
  (* the slow generic routine for rare/system instructions *)
  let generic insn _ =
    let before_priv = m.Mach.csr.Csr.priv in
    (try Exec_generic.exec Exec_generic.host_fp m pc insn
     with Trap.Exception (exc, tval) -> Mach.take_trap m exc tval ~epc:pc);
    m.Mach.instret <- m.Mach.instret + 1;
    (* system events: a privilege change redirects to that privilege's
       own cache (no flush); anything that can remap the pcs the
       caches are keyed on (sfence.vma, satp writes) or rewrite code
       (fence.i) invalidates everything *)
    (if m.Mach.csr.Csr.priv <> before_priv then retarget t
     else
       match insn with
       | Insn.Sfence_vma _ | Insn.Fence_i -> flush t
       | Insn.Csr (_, _, _, a) when a = Csr.satp -> flush t
       | _ -> ());
    t.patch <- None;
    t.patch_slot <- Patch_none;
    None
  in
  match insn with
  | Branch (op, rs1, rs2, off) ->
      (* The condition is inlined per opcode (no [eval_branch] call:
         an int64 crossing a function boundary would be boxed); the
         unsigned compares use signed (a < b) xor sign(a) xor sign(b).
         [finish] takes an immediate bool, so calling it is free. *)
      let target = Int64.add pc off in
      let finish taken =
        if t.prof_on then t.prof_edge pc (if taken then target else next);
        m.Mach.instret <- m.Mach.instret + 1;
        if taken then tgt_or_miss target else seq_or_miss ()
      in
      if rs2 = 0 then
        (* beqz / bnez / ... specialisation: single operand read *)
        match op with
        | BEQ -> fun _ -> finish (Array1.unsafe_get regs rs1 = 0L)
        | BNE -> fun _ -> finish (Array1.unsafe_get regs rs1 <> 0L)
        | BLT -> fun _ -> finish (Array1.unsafe_get regs rs1 < 0L)
        | BGE -> fun _ -> finish (Array1.unsafe_get regs rs1 >= 0L)
        | BLTU -> fun _ -> finish false
        | BGEU -> fun _ -> finish true
      else
        (match op with
        | BEQ ->
            fun _ ->
              finish
                (Array1.unsafe_get regs rs1 = Array1.unsafe_get regs rs2)
        | BNE ->
            fun _ ->
              finish
                (Array1.unsafe_get regs rs1 <> Array1.unsafe_get regs rs2)
        | BLT ->
            fun _ ->
              finish
                (Array1.unsafe_get regs rs1 < Array1.unsafe_get regs rs2)
        | BGE ->
            fun _ ->
              finish
                (Array1.unsafe_get regs rs1 >= Array1.unsafe_get regs rs2)
        | BLTU ->
            fun _ ->
              let a = Array1.unsafe_get regs rs1 in
              let b = Array1.unsafe_get regs rs2 in
              finish (a < b <> (a < 0L <> (b < 0L)))
        | BGEU ->
            fun _ ->
              let a = Array1.unsafe_get regs rs1 in
              let b = Array1.unsafe_get regs rs2 in
              finish (not (a < b <> (a < 0L <> (b < 0L)))))
  | Jal (rd, off) ->
      let rd = rdx rd in
      let target = Int64.add pc off in
      fun _ ->
        Array1.unsafe_set regs rd next;
        if t.prof_on then t.prof_edge pc target;
        m.Mach.instret <- m.Mach.instret + 1;
        tgt_or_miss target
  | Jalr (0, rs1, 0L) ->
      (* ret-style: no link write *)
      if t.mega_enabled then begin
        let ic = new_ic () in
        fun _ ->
          let target =
            Int64.logand (Array1.unsafe_get regs rs1) (Int64.lognot 1L)
          in
          if t.prof_on then t.prof_edge pc target;
          m.Mach.instret <- m.Mach.instret + 1;
          ic_lookup t ic target
      end
      else
        fun _ ->
          let target =
            Int64.logand (Array1.unsafe_get regs rs1) (Int64.lognot 1L)
          in
          m.Mach.instret <- m.Mach.instret + 1;
          indirect target
  | Jalr (rd, rs1, imm) ->
      let rd = rdx rd in
      if t.mega_enabled then begin
        let ic = new_ic () in
        fun _ ->
          let target =
            Int64.logand
              (Int64.add (Array1.unsafe_get regs rs1) imm)
              (Int64.lognot 1L)
          in
          Array1.unsafe_set regs rd next;
          if t.prof_on then t.prof_edge pc target;
          m.Mach.instret <- m.Mach.instret + 1;
          ic_lookup t ic target
      end
      else
        fun _ ->
          let target =
            Int64.logand
              (Int64.add (Array1.unsafe_get regs rs1) imm)
              (Int64.lognot 1L)
          in
          Array1.unsafe_set regs rd next;
          m.Mach.instret <- m.Mach.instret + 1;
          indirect target
  | _ -> generic insn

(* Terminal for a block cut without a control-flow instruction (length
   limit, page boundary, lookahead fetch fault): fall through to the
   next pc, retiring nothing. *)
let build_fallthrough (t : t) (e : entry) (next_pc : int64) : exec_fn =
  let m = t.m in
  fun _ ->
    match e.seq with
    | Some _ as n -> n
    | None ->
        m.Mach.pc <- next_pc;
        t.patch <- Some e;
        t.patch_slot <- Patch_seq;
        None

(* --- block assembly --------------------------------------------------- *)

(* Wrap body + terminal into the block's execution routine.  Blocks
   of up to eight slots get a straight-line routine with the slot
   closures bound to variables -- no counter, no array indexing, no
   loop branch; longer blocks fall back to a counted loop.  Both keep
   the shared [cur] ref pointing at the executing slot so that a raise
   (only possible from a slot's final instruction) recovers the exact
   retire count and epc from [slot_ret]/[slot_offs]. *)
let build_exec (t : t) (e : entry) ~(guest_n : int) (term : exec_fn) : exec_fn =
  let m = t.m in
  let body = e.body in
  let slot_ret = e.slot_ret in
  let slot_offs = e.slot_offs in
  let n = Array.length body in
  if n = 0 then term
  else begin
    let cur = ref 0 in
    let finish () =
      m.Mach.instret <- m.Mach.instret + guest_n;
      term e
    in
    let fail_trap exc tval =
      m.Mach.instret <- m.Mach.instret + slot_ret.(!cur);
      Mach.take_trap m exc tval
        ~epc:(Int64.add e.e_pc (Int64.of_int slot_offs.(!cur)));
      retarget t;
      None
    in
    let fail_exit () =
      m.Mach.instret <- m.Mach.instret + slot_ret.(!cur);
      m.Mach.pc <- Int64.add e.e_pc (Int64.of_int (slot_offs.(!cur) + 4));
      None
    in
    match body with
    | [| s0 |] ->
        fun _ -> (
          match
            cur := 0;
            s0 ()
          with
          | () -> finish ()
          | exception Trap.Exception (exc, tval) -> fail_trap exc tval
          | exception Mach_exited -> fail_exit ())
    | [| s0; s1 |] ->
        fun _ -> (
          match
            cur := 0;
            s0 ();
            cur := 1;
            s1 ()
          with
          | () -> finish ()
          | exception Trap.Exception (exc, tval) -> fail_trap exc tval
          | exception Mach_exited -> fail_exit ())
    | [| s0; s1; s2 |] ->
        fun _ -> (
          match
            cur := 0;
            s0 ();
            cur := 1;
            s1 ();
            cur := 2;
            s2 ()
          with
          | () -> finish ()
          | exception Trap.Exception (exc, tval) -> fail_trap exc tval
          | exception Mach_exited -> fail_exit ())
    | [| s0; s1; s2; s3 |] ->
        fun _ -> (
          match
            cur := 0;
            s0 ();
            cur := 1;
            s1 ();
            cur := 2;
            s2 ();
            cur := 3;
            s3 ()
          with
          | () -> finish ()
          | exception Trap.Exception (exc, tval) -> fail_trap exc tval
          | exception Mach_exited -> fail_exit ())
    | [| s0; s1; s2; s3; s4 |] ->
        fun _ -> (
          match
            cur := 0;
            s0 ();
            cur := 1;
            s1 ();
            cur := 2;
            s2 ();
            cur := 3;
            s3 ();
            cur := 4;
            s4 ()
          with
          | () -> finish ()
          | exception Trap.Exception (exc, tval) -> fail_trap exc tval
          | exception Mach_exited -> fail_exit ())
    | [| s0; s1; s2; s3; s4; s5 |] ->
        fun _ -> (
          match
            cur := 0;
            s0 ();
            cur := 1;
            s1 ();
            cur := 2;
            s2 ();
            cur := 3;
            s3 ();
            cur := 4;
            s4 ();
            cur := 5;
            s5 ()
          with
          | () -> finish ()
          | exception Trap.Exception (exc, tval) -> fail_trap exc tval
          | exception Mach_exited -> fail_exit ())
    | [| s0; s1; s2; s3; s4; s5; s6 |] ->
        fun _ -> (
          match
            cur := 0;
            s0 ();
            cur := 1;
            s1 ();
            cur := 2;
            s2 ();
            cur := 3;
            s3 ();
            cur := 4;
            s4 ();
            cur := 5;
            s5 ();
            cur := 6;
            s6 ()
          with
          | () -> finish ()
          | exception Trap.Exception (exc, tval) -> fail_trap exc tval
          | exception Mach_exited -> fail_exit ())
    | [| s0; s1; s2; s3; s4; s5; s6; s7 |] ->
        fun _ -> (
          match
            cur := 0;
            s0 ();
            cur := 1;
            s1 ();
            cur := 2;
            s2 ();
            cur := 3;
            s3 ();
            cur := 4;
            s4 ();
            cur := 5;
            s5 ();
            cur := 6;
            s6 ();
            cur := 7;
            s7 ()
          with
          | () -> finish ()
          | exception Trap.Exception (exc, tval) -> fail_trap exc tval
          | exception Mach_exited -> fail_exit ())
    | _ ->
        fun _ -> (
          match
            cur := 0;
            while !cur < n do
              (Array.unsafe_get body !cur) ();
              incr cur
            done
          with
          | () -> finish ()
          | exception Trap.Exception (exc, tval) -> fail_trap exc tval
          | exception Mach_exited -> fail_exit ())
  end

(* (Re)compile the superblock starting at [e.e_pc] into [e], given its
   first decoded instruction.  Lookahead decoding stops at the block
   length limit, at a page boundary when translation is on (the next
   page may map differently by the time it executes), or at a fetch
   fault (the split block falls through and the fault is taken, if
   still reachable, on the next slow-path lookup). *)
let build (t : t) (e : entry) (first : Insn.t) =
  t.compiled <- t.compiled + 1;
  e.hot <- 0;
  let m = t.m in
  let regs = m.Mach.regs in
  let paged = m.Mach.paging in
  let epage = Int64.shift_right_logical e.e_pc 12 in
  (* (closure, may_raise, byte offset) per instruction, reversed *)
  let acc = ref [] in
  let n = ref 0 in
  let push ?(traps = false) op pc =
    acc := (op, traps, Int64.to_int (Int64.sub pc e.e_pc)) :: !acc;
    incr n
  in
  let rewrite pc = function
    (* inline the pc into pc-relative straight-line instructions *)
    | Insn.Auipc (rd, imm) -> Insn.Auipc (rd, Int64.add pc imm)
    | insn -> insn
  in
  let rec cont next =
    if !n >= max_block then split next
    else if paged && Int64.shift_right_logical next 12 <> epage then split next
    else begin
      match Exec_generic.fetch_decode ~at:next m with
      | insn -> grow next insn
      | exception Trap.Exception _ -> split next
    end
  and grow pc insn =
    match insn with
    | Insn.Jal (rd, off)
      when (not t.prof_on)
           && ((not paged)
              || Int64.shift_right_logical (Int64.add pc off) 12 = epage) ->
        (* Unconditional jumps are folded into the trace (the paper's
           trace locality): the jump retires as a body instruction --
           a link write, or nothing at all for plain [j] -- and
           decoding continues at its target, so short then/else arms
           and loop latches do not cut the superblock.  Disabled while
           BBV profiling is attached (it must observe every
           control-flow edge) and across page boundaries when paging
           is on.  Self-loops terminate via the block length limit. *)
        (if rd = 0 then push (fun () -> ()) pc
         else
           let link = Int64.add pc 4L in
           push (fun () -> Array1.unsafe_set regs rd link) pc);
        cont (Int64.add pc off)
    | _ -> (
        match compile_straight t.m (rewrite pc insn) with
        | None ->
            (* control-flow or system instruction: real terminal *)
            e.e_len <- !n + 1;
            `Term (pc, insn)
        | Some op ->
            push ~traps:(may_raise insn) op pc;
            cont (Int64.add pc 4L))
  and split next =
    e.e_len <- !n;
    `Split next
  in
  let outcome = grow e.e_pc first in
  let insns = List.rev !acc in
  let final = match outcome with `Term (pc, _) -> pc | `Split next -> next in
  e.steps <- Array.of_list (List.map (fun (f, _, _) -> f) insns);
  e.offs <-
    Array.of_list
      (List.map (fun (_, _, o) -> o) insns
      @ [ Int64.to_int (Int64.sub final e.e_pc) ]);
  (* Coalesce into slots of up to four instructions.  Only the final
     element of a slot may be a raising (memory) closure, so when a
     slot raises the retire count and epc are exact.  Slot tuples are
     (closure, retired-through-slot, final-instruction offset). *)
  let rec slots pre = function
    | [] -> []
    | (f1, false, _) :: (f2, false, _) :: (f3, false, _) :: (f4, false, o4)
      :: rest ->
        (seq4 f1 f2 f3 f4, pre + 4, o4) :: slots (pre + 4) rest
    | (f1, false, _) :: (f2, false, _) :: (f3, false, o3) :: rest ->
        (seq3 f1 f2 f3, pre + 3, o3) :: slots (pre + 3) rest
    | (f1, false, _) :: (f2, false, o2) :: rest ->
        (seq2 f1 f2, pre + 2, o2) :: slots (pre + 2) rest
    | (f, _, o) :: rest -> (f, pre + 1, o) :: slots (pre + 1) rest
  in
  let sl = slots 0 insns in
  e.body <- Array.of_list (List.map (fun (f, _, _) -> f) sl);
  e.slot_ret <- Array.of_list (List.map (fun (_, r, _) -> r) sl);
  e.slot_offs <- Array.of_list (List.map (fun (_, _, o) -> o) sl);
  let term =
    match outcome with
    | `Term (pc, insn) -> build_terminal t e pc insn
    | `Split next -> build_fallthrough t e next
  in
  e.exec <- build_exec t e ~guest_n:!n term

let compile (t : t) (pc : int64) (first : Insn.t) : entry =
  let e =
    { e_pc = pc; e_len = 1; body = [||]; steps = [||]; offs = [||];
      slot_ret = [||]; slot_offs = [||]; exec = (fun _ -> None); seq = None;
      tgt = None; hot = 0 }
  in
  build t e first;
  e

(* --- bounded eviction -------------------------------------------------

   Evicted entries are removed from the hash list but may still be
   referenced by the [seq]/[tgt] chains of surviving blocks.  Instead
   of chasing those references, the victim is *demoted*: its routine
   becomes a stub that recompiles the block in place on next execution
   (and re-inserts it into the hash list), so stale chains self-heal
   at the cost of one recompile. *)

let demote (t : t) (e : entry) =
  e.body <- [||];
  e.steps <- [||];
  e.offs <- [||];
  e.slot_ret <- [||];
  e.slot_offs <- [||];
  e.e_len <- 1;
  e.seq <- None;
  e.tgt <- None;
  (* a pending patch into this entry would link it for its *old* block
     shape; drop it *)
  (match t.patch with
  | Some p when p == e ->
      t.patch <- None;
      t.patch_slot <- Patch_none
  | _ -> ());
  e.exec <-
    (fun e' ->
      match Exec_generic.fetch_decode ~at:e'.e_pc t.m with
      | insn ->
          build t e' insn;
          Hashtbl.replace t.cache e'.e_pc e';
          t.recompiles <- t.recompiles + 1;
          (* re-dispatch without executing: the run loop re-checks the
             budget against the rebuilt e_len *)
          Some e'
      | exception Trap.Exception (exc, tval) ->
          Mach.take_trap t.m exc tval ~epc:e'.e_pc;
          retarget t;
          None)

let evict (t : t) =
  let want = max 1 (t.capacity / 8) in
  let victims = ref [] in
  let k = ref 0 in
  (try
     Hashtbl.iter
       (fun pc e ->
         victims := (pc, e) :: !victims;
         incr k;
         if !k >= want then raise Exit)
       t.cache
   with Exit -> ());
  List.iter
    (fun (pc, e) ->
      Hashtbl.remove t.cache pc;
      demote t e)
    !victims;
  t.evictions <- t.evictions + !k

(* --- slow path --------------------------------------------------------- *)

(* Resolve the entry for m.pc, compiling if needed, and patch the
   chain slot of the entry that missed. *)
let rec lookup_or_compile (t : t) : entry option =
  if not t.m.Mach.running then None
  else begin
    t.slow_lookups <- t.slow_lookups + 1;
    if Hashtbl.length t.cache >= t.capacity then evict t;
    let pc = t.m.Mach.pc in
    match Hashtbl.find_opt t.cache pc with
    | Some entry ->
        patch_chain t entry;
        Some entry
    | None -> (
        match Exec_generic.fetch_decode t.m with
        | insn ->
            let entry = compile t pc insn in
            Hashtbl.replace t.cache pc entry;
            patch_chain t entry;
            Some entry
        | exception Trap.Exception (exc, tval) ->
            (* fetch fault: take the trap and resolve the handler
               address in the handler privilege's cache instead *)
            Mach.take_trap t.m exc tval ~epc:pc;
            retarget t;
            lookup_or_compile t)
  end

and patch_chain (t : t) (entry : entry) =
  (match (t.patch, t.patch_slot) with
  | Some p, Patch_seq -> p.seq <- Some entry
  | Some p, Patch_tgt -> p.tgt <- Some entry
  | Some _, Patch_site s -> s.sx_e <- Some entry
  | Some _, Patch_none | None, _ -> ());
  t.patch <- None;
  t.patch_slot <- Patch_none

(* --- trace megablocks -------------------------------------------------

   When the chain loop has dispatched an entry [hot_threshold] times,
   the hot path starting at it is re-compiled into a *trace
   megablock*: one fused routine spanning direct branches and folded
   jumps, executed by a single dispatch.  Conditional branches inside
   the trace become *guards* -- the branch retires on both paths, but
   only a direction mismatch leaves the trace, through a lazily
   chained side-exit [site].  A branch whose condition is provably
   constant (its operands' whole dependency chains are written exactly
   once in the trace) folds away entirely; adjacent same-page memory
   accesses share one translation/bounds/page-cache check; an indirect
   terminal resolves through a 2-way inline cache; a backedge to the
   head loops inside the routine while the budget allows.  Short loop
   bodies are implicitly unrolled: a backedge is only accepted once
   the trace spans [min_span] instructions, so earlier encounters of
   the head pc just keep decoding (duplicating the body).

   Precision: the head entry keeps its plain superblock views
   (body/steps/offs), used by [run_partial] and whenever the remaining
   budget is smaller than one trace pass; inside a trace, every
   raising instruction records its accounting id in a shared cursor
   before executing, and the per-id tables give the exact retire count
   and epc, so a trap at instruction i retires exactly i+1 -- the same
   contract as plain superblocks. *)

let max_trace = 256
let min_span = 32

type tguard = {
  g_op : Insn.branch_op;
  g_rs1 : int;
  g_rs2 : int;
  g_taken : bool; (* the direction the trace follows *)
  g_exit : int64; (* resume pc when the actual direction differs *)
  g_pc : int64;
  g_fold : int list option; (* Some deps: constant-fold candidate *)
}

type titem =
  | T_op of (unit -> unit) * bool * int64 * Insn.t
  | T_guard of tguard

type tterm =
  | Tm_back of tguard option (* backedge to head; None = unconditional *)
  | Tm_jalr of int * int * int64 * int64 (* rd, rs1, imm, pc *)
  | Tm_exit of int64

(* A guard compiled as the tail of a chunk: the comparison is inlined
   (no condition closure), and the follow / leave continuations are
   tail calls.  The complement pairs (BNE/BEQ, BGE/BLT, BGEU/BLTU)
   normalise onto three comparisons by flipping [want]. *)
let guard_fin (regs : Mach.regfile) (op : Insn.branch_op) (rs1 : int)
    (rs2 : int)
    (want : bool) (next : unit -> entry option) (ex : unit -> entry option) :
    unit -> entry option =
  let want =
    match op with
    | Insn.BNE | Insn.BGE | Insn.BGEU -> not want
    | Insn.BEQ | Insn.BLT | Insn.BLTU -> want
  in
  match op with
  | Insn.BEQ | Insn.BNE ->
      if want then fun () ->
        if Int64.equal (Array1.unsafe_get regs rs1) (Array1.unsafe_get regs rs2)
        then next ()
        else ex ()
      else fun () ->
        if Int64.equal (Array1.unsafe_get regs rs1) (Array1.unsafe_get regs rs2)
        then ex ()
        else next ()
  | Insn.BLT | Insn.BGE ->
      if want then fun () ->
        if Array1.unsafe_get regs rs1 < Array1.unsafe_get regs rs2 then next ()
        else ex ()
      else fun () ->
        if Array1.unsafe_get regs rs1 < Array1.unsafe_get regs rs2 then ex ()
        else next ()
  | Insn.BLTU | Insn.BGEU ->
      if want then fun () ->
        let a = Array1.unsafe_get regs rs1 in
        let b = Array1.unsafe_get regs rs2 in
        if a < b <> (a < 0L <> (b < 0L)) then next () else ex ()
      else fun () ->
        let a = Array1.unsafe_get regs rs1 in
        let b = Array1.unsafe_get regs rs2 in
        if a < b <> (a < 0L <> (b < 0L)) then ex () else next ()

(* One chunk: up to eight slot routines called directly, then a tail
   call into [fin] (the next chunk, an inlined guard, or the trace
   terminal).  Mirrors [build_exec]'s matched arms -- no per-slot
   array indexing or cursor traffic on the fast path. *)
let chunk_arm (sl : (unit -> unit) array) (off : int) (len : int)
    (fin : unit -> entry option) : unit -> entry option =
  match len with
  | 0 -> fin
  | 1 ->
      let s0 = sl.(off) in
      fun () ->
        s0 ();
        fin ()
  | 2 ->
      let s0 = sl.(off) and s1 = sl.(off + 1) in
      fun () ->
        s0 ();
        s1 ();
        fin ()
  | 3 ->
      let s0 = sl.(off) and s1 = sl.(off + 1) and s2 = sl.(off + 2) in
      fun () ->
        s0 ();
        s1 ();
        s2 ();
        fin ()
  | 4 ->
      let s0 = sl.(off)
      and s1 = sl.(off + 1)
      and s2 = sl.(off + 2)
      and s3 = sl.(off + 3) in
      fun () ->
        s0 ();
        s1 ();
        s2 ();
        s3 ();
        fin ()
  | 5 ->
      let s0 = sl.(off)
      and s1 = sl.(off + 1)
      and s2 = sl.(off + 2)
      and s3 = sl.(off + 3)
      and s4 = sl.(off + 4) in
      fun () ->
        s0 ();
        s1 ();
        s2 ();
        s3 ();
        s4 ();
        fin ()
  | 6 ->
      let s0 = sl.(off)
      and s1 = sl.(off + 1)
      and s2 = sl.(off + 2)
      and s3 = sl.(off + 3)
      and s4 = sl.(off + 4)
      and s5 = sl.(off + 5) in
      fun () ->
        s0 ();
        s1 ();
        s2 ();
        s3 ();
        s4 ();
        s5 ();
        fin ()
  | 7 ->
      let s0 = sl.(off)
      and s1 = sl.(off + 1)
      and s2 = sl.(off + 2)
      and s3 = sl.(off + 3)
      and s4 = sl.(off + 4)
      and s5 = sl.(off + 5)
      and s6 = sl.(off + 6) in
      fun () ->
        s0 ();
        s1 ();
        s2 ();
        s3 ();
        s4 ();
        s5 ();
        s6 ();
        fin ()
  | _ ->
      let s0 = sl.(off)
      and s1 = sl.(off + 1)
      and s2 = sl.(off + 2)
      and s3 = sl.(off + 3)
      and s4 = sl.(off + 4)
      and s5 = sl.(off + 5)
      and s6 = sl.(off + 6)
      and s7 = sl.(off + 7) in
      fun () ->
        s0 ();
        s1 ();
        s2 ();
        s3 ();
        s4 ();
        s5 ();
        s6 ();
        s7 ();
        fin ()

(* Split a slot run into chained chunks of at most eight. *)
let rec chunks (sl : (unit -> unit) array) (lo : int) (hi : int)
    (fin : unit -> entry option) : unit -> entry option =
  if hi - lo <= 8 then chunk_arm sl lo (hi - lo) fin
  else
    let cut = hi - 8 in
    chunks sl lo cut (chunk_arm sl cut 8 fin)

(* Address-forming ALU shapes that can be emitted inline ahead of a
   memory access in one slot. *)
let can_fuse_alu = function
  | Insn.Op (Insn.ADD, rd, _, _) when rd <> 0 -> true
  | Insn.Op_imm ((Insn.ADD | Insn.SLL), rd, _, _) when rd <> 0 -> true
  | Insn.Lui (rd, _) | Insn.Auipc (rd, _) when rd <> 0 -> true
  | _ -> false

(* Leave the trace towards [s.sx_pc]: memoized entry, else hash list,
   else slow path with a pending site patch (healed by [patch_chain]
   exactly like seq/tgt chain slots). *)
let exit_site (t : t) (head : entry) (s : site) : entry option =
  match s.sx_e with
  | Some _ as r -> r
  | None -> (
      match Hashtbl.find_opt t.cache s.sx_pc with
      | Some _ as r ->
          s.sx_e <- r;
          r
      | None ->
          t.m.Mach.pc <- s.sx_pc;
          t.patch <- Some head;
          t.patch_slot <- Patch_site s;
          None)

(* [plain] is the head's original superblock routine, kept as the
   low-budget fallback; re-traces (exit-bias feedback) pass the saved
   original so traces never chain behind stale trace closures. *)
let rec build_trace (t : t) (head : entry) (plain : exec_fn) : exec_fn option =
  let m = t.m in
  let regs = m.Mach.regs in
  let fregs = m.Mach.fregs in
  let mem = m.Mach.plat.Platform.mem in
  let mbase = mem.Memory.base in
  let msize = Int64.of_int (Memory.size mem) in
  let pbits = mem.Memory.page_bits in
  let pmask = (1 lsl pbits) - 1 in
  let paged = m.Mach.paging in
  let hpc = head.e_pc in
  let hpage = Int64.shift_right_logical hpc 12 in
  let rdx rd = if rd = 0 then Mach.sink else rd in
  let rewrite pc = function
    | Insn.Auipc (rd, imm) -> Insn.Auipc (rd, Int64.add pc imm)
    | insn -> insn
  in
  (* --- decode walk, following predicted branch directions ---
     Constants are tracked optimistically (li / lui / auipc / addi
     chains); a branch over known-constant operands is followed in its
     computed direction and recorded as a fold candidate, validated
     after the walk by the single-writer check.  Everything else uses
     backward-taken / forward-not-taken prediction. *)
  let items = ref [] in
  let n = ref 0 in
  let consts : (int, int64 * int list) Hashtbl.t = Hashtbl.create 16 in
  let cval r = if r = 0 then Some (0L, []) else Hashtbl.find_opt consts r in
  let kill rd = if rd <> 0 then Hashtbl.remove consts rd in
  let setc rd v deps = if rd <> 0 then Hashtbl.replace consts rd (v, deps) in
  let track pc insn =
    match insn with
    | Insn.Op_imm (Insn.ADD, rd, 0, imm) -> setc rd imm [ rd ]
    | Insn.Op_imm (Insn.ADD, rd, rs1, imm) -> (
        match cval rs1 with
        | Some (v, deps) -> setc rd (Int64.add v imm) (rd :: deps)
        | None -> kill rd)
    | Insn.Lui (rd, imm) -> setc rd imm [ rd ]
    | Insn.Auipc (rd, imm) -> setc rd (Int64.add pc imm) [ rd ]
    | insn -> ( match dest_reg insn with Some rd -> kill rd | None -> ())
  in
  let push_op f traps pc insn =
    items := T_op (f, traps, pc, insn) :: !items;
    incr n
  in
  let rec walk pc =
    (* a fall-through (or folded-jump) re-arrival at the head closes
       the loop: mid-loop trace heads are re-reached without a branch
       to the head pc, and without this check they would unroll to
       [max_trace] and exit instead of looping *)
    if Int64.equal pc hpc && !n >= min_span then Tm_back None
    else if !n >= max_trace then Tm_exit pc
    else if paged && Int64.shift_right_logical pc 12 <> hpage then Tm_exit pc
    else
      match Exec_generic.fetch_decode ~at:pc m with
      | exception Trap.Exception _ -> Tm_exit pc
      | insn -> step pc insn
  and step pc insn =
    match insn with
    | Insn.Jal (rd, off) ->
        let tgt = Int64.add pc off in
        if paged && Int64.shift_right_logical tgt 12 <> hpage then Tm_exit pc
        else begin
          (if rd = 0 then push_op (fun () -> ()) false pc insn
           else begin
             let rdw = rdx rd in
             let link = Int64.add pc 4L in
             push_op (fun () -> Array1.unsafe_set regs rdw link) false pc insn;
             setc rd link [ rd ]
           end);
          walk tgt
        end
    | Insn.Branch (op, rs1, rs2, off) ->
        let tgt = Int64.add pc off in
        let fall = Int64.add pc 4L in
        let static =
          if rs1 = rs2 then
            Some
              ( (match op with
                | Insn.BEQ | Insn.BGE | Insn.BGEU -> true
                | Insn.BNE | Insn.BLT | Insn.BLTU -> false),
                [] )
          else
            match (cval rs1, cval rs2) with
            | Some (a, d1), Some (b, d2) ->
                Some (eval_branch_static op a b, d1 @ d2)
            | _ -> None
        in
        (* exit-bias feedback overrides backward-taken/forward-not-
           taken once a guard at this pc has proven it wrong *)
        let pred =
          if static <> None then -1
          else
            match Hashtbl.find_opt t.bias pc with
            | Some b -> b.b_pred
            | None -> -1
        in
        if pred = 2 then Tm_exit pc (* unstable branch: end before it *)
        else begin
          let taken, fold =
            match static with
            | Some (tk, deps) -> (tk, Some deps)
            | None ->
                ( (match pred with
                  | 0 -> false
                  | 1 -> true
                  | _ -> Int64.compare off 0L < 0),
                  None )
          in
          let follow = if taken then tgt else fall in
          let exitp = if taken then fall else tgt in
          if paged && Int64.shift_right_logical follow 12 <> hpage then
            Tm_exit pc
          else begin
            let g =
              {
                g_op = op;
                g_rs1 = rs1;
                g_rs2 = rs2;
                g_taken = taken;
                g_exit = exitp;
                g_pc = pc;
                g_fold = fold;
              }
            in
            if Int64.equal follow hpc && !n + 1 >= min_span then
              Tm_back (Some g)
            else begin
              items := T_guard g :: !items;
              incr n;
              walk follow
            end
          end
        end
    | Insn.Jalr (rd, rs1, imm) -> Tm_jalr (rd, rs1, imm, pc)
    | _ -> (
        (* push the rewritten form (auipc absolutised) so the slot
           fusers below see the value actually computed *)
        let insn' = rewrite pc insn in
        match compile_straight m insn' with
        | None -> Tm_exit pc (* system instruction: exit before it *)
        | Some f ->
            track pc insn;
            push_op f (may_raise insn) pc insn';
            walk (Int64.add pc 4L))
  in
  let term = walk hpc in
  let items = List.rev !items in
  (* --- validate constant folds: single writer over the whole trace --- *)
  let wcount = Hashtbl.create 32 in
  List.iter
    (function
      | T_op (_, _, _, insn) -> (
          match dest_reg insn with
          | Some rd when rd <> 0 ->
              Hashtbl.replace wcount rd
                (1 + (try Hashtbl.find wcount rd with Not_found -> 0))
          | _ -> ())
      | T_guard _ -> ())
    items;
  let fold_ok deps =
    List.for_all
      (fun r -> r = 0 || (try Hashtbl.find wcount r with Not_found -> 0) <= 1)
      deps
  in
  let items =
    List.map
      (function
        | T_guard g as it -> (
            match g.g_fold with
            | Some deps when fold_ok deps ->
                t.branch_folds <- t.branch_folds + 1;
                (* the folded branch still retires: a no-op slot *)
                T_op ((fun () -> ()), false, g.g_pc, Insn.Fence)
            | _ -> it)
        | it -> it)
      items
  in
  let term_ret, term =
    match term with
    | Tm_back None -> (0, term)
    | Tm_back (Some g) -> (
        match g.g_fold with
        | Some deps when fold_ok deps ->
            t.branch_folds <- t.branch_folds + 1;
            (1, Tm_back None)
        | _ -> (1, term))
    | Tm_jalr _ -> (1, term)
    | Tm_exit _ -> (0, term)
  in
  let trace_n = !n + term_ret in
  if
    trace_n = 0
    || (match term with Tm_exit _ -> trace_n <= head.e_len | _ -> false)
  then None (* nothing beyond the plain superblock: keep it *)
  else begin
    (* --- assembly: coalesced slots between guards, with per-raising-
       point accounting ids feeding the shared cursor --- *)
    let ret_acc = ref [] and epc_acc = ref [] in
    let nid = ref 0 in
    let add_id ret pc =
      let id = !nid in
      ret_acc := ret :: !ret_acc;
      epc_acc := pc :: !epc_acc;
      incr nid;
      id
    in
    let cur = ref 0 in
    let dl i1 i2 = Int64.to_int (Int64.sub i2 i1) in
    let okd d align = d land align = 0 && abs d < 1 lsl pbits in
    (* Fuse two adjacent memory accesses through [rs1] with a static
       address delta into one routine: one bounds / alignment /
       page-cache check, with the second access reusing the first's
       page bytes when it provably lands on the same guest page
       (otherwise its original routine runs).  [k] and [k+1] are the
       pair's accounting ids. *)
    let try_fuse (k : int) insn1 insn2 (f1 : unit -> unit)
        (f2 : unit -> unit) : (unit -> unit) option =
      match (insn1, insn2) with
      | ( Insn.Load (Insn.LD, rd1, rs1, imm1),
          Insn.Load (Insn.LD, rd2, rs1b, imm2) )
        when rs1b = rs1 && (rd1 = 0 || rd1 <> rs1) && okd (dl imm1 imm2) 7 ->
          let rd1 = rdx rd1 and rd2 = rdx rd2 in
          let delta = dl imm1 imm2 in
          t.tlb_dedups <- t.tlb_dedups + 1;
          Some
            (fun () ->
              cur := k;
              let a = Array1.unsafe_get regs rs1 in
              let d = Int64.sub (Int64.add a imm1) mbase in
              if
                (not m.Mach.paging)
                && 0L <= d && d < msize
                && Int64.to_int d land 7 = 0
              then begin
                let off = Int64.to_int d in
                let idx = off lsr pbits in
                let data =
                  if idx = mem.Memory.cache_r_idx then mem.Memory.cache_r_data
                  else Memory.read_page mem idx
                in
                Array1.unsafe_set regs rd1
                  (Bytes.get_int64_le data (off land pmask));
                let off2 = off + delta in
                if off2 lsr pbits = idx then
                  Array1.unsafe_set regs rd2
                    (Bytes.get_int64_le data (off2 land pmask))
                else begin
                  cur := k + 1;
                  f2 ()
                end
              end
              else begin
                f1 ();
                cur := k + 1;
                f2 ()
              end)
      | ( Insn.Load (Insn.LW, rd1, rs1, imm1),
          Insn.Load (Insn.LW, rd2, rs1b, imm2) )
        when rs1b = rs1 && (rd1 = 0 || rd1 <> rs1) && okd (dl imm1 imm2) 3 ->
          let rd1 = rdx rd1 and rd2 = rdx rd2 in
          let delta = dl imm1 imm2 in
          t.tlb_dedups <- t.tlb_dedups + 1;
          Some
            (fun () ->
              cur := k;
              let a = Array1.unsafe_get regs rs1 in
              let d = Int64.sub (Int64.add a imm1) mbase in
              if
                (not m.Mach.paging)
                && 0L <= d && d < msize
                && Int64.to_int d land 3 = 0
              then begin
                let off = Int64.to_int d in
                let idx = off lsr pbits in
                let data =
                  if idx = mem.Memory.cache_r_idx then mem.Memory.cache_r_data
                  else Memory.read_page mem idx
                in
                Array1.unsafe_set regs rd1
                  (Int64.of_int32 (Bytes.get_int32_le data (off land pmask)));
                let off2 = off + delta in
                if off2 lsr pbits = idx then
                  Array1.unsafe_set regs rd2
                    (Int64.of_int32 (Bytes.get_int32_le data (off2 land pmask)))
                else begin
                  cur := k + 1;
                  f2 ()
                end
              end
              else begin
                f1 ();
                cur := k + 1;
                f2 ()
              end)
      | ( Insn.Store (Insn.SD, rs2a, rs1, imm1),
          Insn.Store (Insn.SD, rs2b, rs1b, imm2) )
        when rs1b = rs1 && okd (dl imm1 imm2) 7 ->
          let delta = dl imm1 imm2 in
          t.tlb_dedups <- t.tlb_dedups + 1;
          Some
            (fun () ->
              cur := k;
              let a = Array1.unsafe_get regs rs1 in
              let d = Int64.sub (Int64.add a imm1) mbase in
              if
                (not m.Mach.paging)
                && 0L <= d && d < msize
                && Int64.to_int d land 7 = 0
              then begin
                let off = Int64.to_int d in
                let idx = off lsr pbits in
                let data =
                  if idx = mem.Memory.cache_w_idx then mem.Memory.cache_w_data
                  else Memory.write_page mem idx
                in
                Bytes.set_int64_le data (off land pmask)
                  (Array1.unsafe_get regs rs2a);
                let off2 = off + delta in
                if off2 lsr pbits = idx then
                  Bytes.set_int64_le data (off2 land pmask)
                    (Array1.unsafe_get regs rs2b)
                else begin
                  cur := k + 1;
                  f2 ()
                end
              end
              else begin
                f1 ();
                cur := k + 1;
                f2 ()
              end)
      | ( Insn.Store (Insn.SW, rs2a, rs1, imm1),
          Insn.Store (Insn.SW, rs2b, rs1b, imm2) )
        when rs1b = rs1 && okd (dl imm1 imm2) 3 ->
          let delta = dl imm1 imm2 in
          t.tlb_dedups <- t.tlb_dedups + 1;
          Some
            (fun () ->
              cur := k;
              let a = Array1.unsafe_get regs rs1 in
              let d = Int64.sub (Int64.add a imm1) mbase in
              if
                (not m.Mach.paging)
                && 0L <= d && d < msize
                && Int64.to_int d land 3 = 0
              then begin
                let off = Int64.to_int d in
                let idx = off lsr pbits in
                let data =
                  if idx = mem.Memory.cache_w_idx then mem.Memory.cache_w_data
                  else Memory.write_page mem idx
                in
                Bytes.set_int32_le data (off land pmask)
                  (Int64.to_int32 (Array1.unsafe_get regs rs2a));
                let off2 = off + delta in
                if off2 lsr pbits = idx then
                  Bytes.set_int32_le data (off2 land pmask)
                    (Int64.to_int32 (Array1.unsafe_get regs rs2b))
                else begin
                  cur := k + 1;
                  f2 ()
                end
              end
              else begin
                f1 ();
                cur := k + 1;
                f2 ()
              end)
      | Insn.Fld (fd1, rs1, imm1), Insn.Fld (fd2, rs1b, imm2)
        when rs1b = rs1 && okd (dl imm1 imm2) 7 ->
          let delta = dl imm1 imm2 in
          t.tlb_dedups <- t.tlb_dedups + 1;
          Some
            (fun () ->
              cur := k;
              let a = Array1.unsafe_get regs rs1 in
              let d = Int64.sub (Int64.add a imm1) mbase in
              if
                (not m.Mach.paging)
                && 0L <= d && d < msize
                && Int64.to_int d land 7 = 0
              then begin
                let off = Int64.to_int d in
                let idx = off lsr pbits in
                let data =
                  if idx = mem.Memory.cache_r_idx then mem.Memory.cache_r_data
                  else Memory.read_page mem idx
                in
                Array1.unsafe_set fregs fd1
                  (Bytes.get_int64_le data (off land pmask));
                let off2 = off + delta in
                if off2 lsr pbits = idx then
                  Array1.unsafe_set fregs fd2
                    (Bytes.get_int64_le data (off2 land pmask))
                else begin
                  cur := k + 1;
                  f2 ()
                end
              end
              else begin
                f1 ();
                cur := k + 1;
                f2 ()
              end)
      | Insn.Fsd (fs1, rs1, imm1), Insn.Fsd (fs2, rs1b, imm2)
        when rs1b = rs1 && okd (dl imm1 imm2) 7 ->
          let delta = dl imm1 imm2 in
          t.tlb_dedups <- t.tlb_dedups + 1;
          Some
            (fun () ->
              cur := k;
              let a = Array1.unsafe_get regs rs1 in
              let d = Int64.sub (Int64.add a imm1) mbase in
              if
                (not m.Mach.paging)
                && 0L <= d && d < msize
                && Int64.to_int d land 7 = 0
              then begin
                let off = Int64.to_int d in
                let idx = off lsr pbits in
                let data =
                  if idx = mem.Memory.cache_w_idx then mem.Memory.cache_w_data
                  else Memory.write_page mem idx
                in
                Bytes.set_int64_le data (off land pmask)
                  (Array1.unsafe_get fregs fs1);
                let off2 = off + delta in
                if off2 lsr pbits = idx then
                  Bytes.set_int64_le data (off2 land pmask)
                    (Array1.unsafe_get fregs fs2)
                else begin
                  cur := k + 1;
                  f2 ()
                end
              end
              else begin
                f1 ();
                cur := k + 1;
                f2 ()
              end)
      | _ -> None
    in
    (* Fuse an address-forming ALU op with the following (raising)
       memory access into one slot: the ALU result is computed inline
       and the access runs under one accounting id (the ALU op cannot
       raise, so one id covers the pair).  This collapses the
       slli/add/ld indexed-addressing idiom -- the dominant pattern in
       compiled loops -- into a single call. *)
    let fuse_addr (k : int) (alu : Insn.t) (fm : unit -> unit) :
        (unit -> unit) option =
      match alu with
      | Insn.Op (Insn.ADD, rd, rs1, rs2) when rd <> 0 ->
          let rd = rdx rd in
          Some
            (fun () ->
              cur := k;
              Array1.unsafe_set regs rd
                (Int64.add
                   (Array1.unsafe_get regs rs1)
                   (Array1.unsafe_get regs rs2));
              fm ())
      | Insn.Op_imm (Insn.ADD, rd, rs1, imm) when rd <> 0 ->
          let rd = rdx rd in
          Some
            (fun () ->
              cur := k;
              Array1.unsafe_set regs rd
                (Int64.add (Array1.unsafe_get regs rs1) imm);
              fm ())
      | Insn.Op_imm (Insn.SLL, rd, rs1, imm) when rd <> 0 ->
          let rd = rdx rd in
          let sh = Int64.to_int imm land 0x3F in
          Some
            (fun () ->
              cur := k;
              Array1.unsafe_set regs rd
                (Int64.shift_left (Array1.unsafe_get regs rs1) sh);
              fm ())
      | Insn.Lui (rd, imm) when rd <> 0 ->
          let rd = rdx rd in
          Some
            (fun () ->
              cur := k;
              Array1.unsafe_set regs rd imm;
              fm ())
      | Insn.Auipc (rd, imm) when rd <> 0 ->
          (* imm was absolutised to pc+imm by the walk's rewrite *)
          let rd = rdx rd in
          Some
            (fun () ->
              cur := k;
              Array1.unsafe_set regs rd imm;
              fm ())
      | _ -> None
    in
    (* Slot selection inside a guard-free segment.  Raising routines
       set the shared cursor inline in their own slot (no wrapper
       call); non-raising runs coalesce up to four per slot, with
       lookahead that keeps an address-forming ALU op adjacent to the
       memory access it feeds so [fuse_addr] can merge them. *)
    let rec seg_slots pre ops =
      match ops with
      | [] -> []
      | (f1, true, pc1, i1) :: ((f2, true, pc2, i2) :: rest2 as tail) -> (
          match try_fuse !nid i1 i2 f1 f2 with
          | Some fp ->
              let _ = add_id (pre + 1) pc1 in
              let _ = add_id (pre + 2) pc2 in
              fp :: seg_slots (pre + 2) rest2
          | None ->
              let k = add_id (pre + 1) pc1 in
              (fun () ->
                cur := k;
                f1 ())
              :: seg_slots (pre + 1) tail)
      | (fa, false, _, ia) :: (fm, true, pcm, _) :: rest when can_fuse_alu ia
        -> (
          let k = add_id (pre + 2) pcm in
          match fuse_addr k ia fm with
          | Some fp ->
              t.addr_fuses <- t.addr_fuses + 1;
              fp :: seg_slots (pre + 2) rest
          | None ->
              (fun () ->
                fa ();
                cur := k;
                fm ())
              :: seg_slots (pre + 2) rest)
      | (fa, false, _, _) :: (fm, true, pcm, _) :: rest ->
          let k = add_id (pre + 2) pcm in
          (fun () ->
            fa ();
            cur := k;
            fm ())
          :: seg_slots (pre + 2) rest
      | (f1, false, _, _) :: (((_, false, _, i2) :: (_, true, _, _) :: _) as
                              tail)
        when can_fuse_alu i2 ->
          f1 :: seg_slots (pre + 1) tail
      | (f1, false, _, _) :: (f2, false, _, _)
        :: (((_, false, _, i3) :: (_, true, _, _) :: _) as tail)
        when can_fuse_alu i3 ->
          seq2 f1 f2 :: seg_slots (pre + 2) tail
      | (f1, false, _, _) :: (f2, false, _, _) :: (f3, false, _, _)
        :: (((_, false, _, i4) :: (_, true, _, _) :: _) as tail)
        when can_fuse_alu i4 ->
          seq3 f1 f2 f3 :: seg_slots (pre + 3) tail
      | (f1, false, _, _) :: (f2, false, _, _) :: (f3, false, _, _)
        :: (fm, true, pcm, _) :: rest ->
          let k = add_id (pre + 4) pcm in
          (fun () ->
            f1 ();
            f2 ();
            f3 ();
            cur := k;
            fm ())
          :: seg_slots (pre + 4) rest
      | (f1, false, _, _) :: (f2, false, _, _) :: (f3, false, _, _)
        :: (f4, false, _, _) :: rest ->
          seq4 f1 f2 f3 f4 :: seg_slots (pre + 4) rest
      | (f1, false, _, _) :: (f2, false, _, _) :: (fm, true, pcm, _) :: rest
        ->
          let k = add_id (pre + 3) pcm in
          (fun () ->
            f1 ();
            f2 ();
            cur := k;
            fm ())
          :: seg_slots (pre + 3) rest
      | (f1, false, _, _) :: (f2, false, _, _) :: rest ->
          seq2 f1 f2 :: seg_slots (pre + 2) rest
      | (fm, true, pcm, _) :: rest ->
          let k = add_id (pre + 1) pcm in
          (fun () ->
            cur := k;
            fm ())
          :: seg_slots (pre + 1) rest
      | (f, false, _, _) :: rest -> f :: seg_slots (pre + 1) rest
    in
    (* split the item list into guard-free segments, each closed by an
       optional guard (the final segment runs into the terminal) *)
    let rec split_segs acc ops items =
      match items with
      | [] -> List.rev ((List.rev ops, None) :: acc)
      | T_guard g :: rest -> split_segs ((List.rev ops, Some g) :: acc) [] rest
      | T_op (f, tr, pc, insn) :: rest ->
          split_segs acc ((f, tr, pc, insn) :: ops) rest
    in
    let segs = split_segs [] [] items in
    (* forward pass: slot arrays and accounting ids in trace order; a
       guard's [gret] is the exact retire count when it exits (the
       branch itself retires on both paths) *)
    let pre = ref 0 in
    let built =
      List.map
        (fun (ops, gopt) ->
          let slots = Array.of_list (seg_slots !pre ops) in
          pre := !pre + List.length ops;
          let gret =
            match gopt with
            | Some _ ->
                incr pre;
                !pre
            | None -> 0
          in
          (slots, gopt, gret))
        segs
    in
    let some_head = Some head in
    let first_ref = ref (fun () -> (None : entry option)) in
    (* Re-trace this head with the bias table's updated predictions
       (bounded per head; the saved [plain] fallback keeps the chain
       sane if the new walk finds nothing worth tracing). *)
    let retrace () =
      let c = try Hashtbl.find t.retraces hpc with Not_found -> 0 in
      if c < 16 && m.Mach.running then begin
        Hashtbl.replace t.retraces hpc (c + 1);
        (match build_trace t head plain with
        | Some f -> head.exec <- f
        | None -> head.exec <- plain);
        head.hot <- min_int
      end
    in
    (* A guard whose exits arrive within [bias_window] retired
       instructions of each other is mispredicted often enough that
       the exit cost dominates whatever the trace saves: record the
       offence and re-trace.  The bias record is resolved here, at
       build time, so the exit path touches no hash table. *)
    let note_exit (g : tguard) =
      let b =
        match Hashtbl.find_opt t.bias g.g_pc with
        | Some b -> b
        | None ->
            let b =
              {
                b_pred = (if g.g_taken then 1 else 0);
                b_last = m.Mach.instret;
                b_gap = max_int;
                b_cnt = 0;
                b_flips = 0;
              }
            in
            Hashtbl.replace t.bias g.g_pc b;
            b
      in
      fun () ->
        b.b_cnt <- b.b_cnt + 1;
        let gap = m.Mach.instret - b.b_last in
        b.b_last <- m.Mach.instret;
        b.b_gap <-
          (if b.b_gap = max_int then gap else (3 * b.b_gap + gap) asr 2);
        if b.b_cnt >= 8 && b.b_gap < 1024 then begin
          (* if the table already says nofollow (another trace hit the
             same branch first), don't advance the state machine --
             just rebuild this trace so it respects the table *)
          if b.b_pred <> 2 then begin
            b.b_pred <-
              (if b.b_flips = 0 then (if g.g_taken then 0 else 1) else 2);
            b.b_flips <- b.b_flips + 1
          end;
          b.b_cnt <- 0;
          b.b_gap <- max_int;
          retrace ()
        end
    in
    let mk_exit (g : tguard) (gret : int) : unit -> entry option =
      let site = { sx_pc = g.g_exit; sx_e = None } in
      let note = note_exit g in
      fun () ->
        m.Mach.instret <- m.Mach.instret + gret;
        t.mega_exits <- t.mega_exits + 1;
        note ();
        exit_site t head site
    in
    let back_loop () =
      let ni = m.Mach.instret + trace_n in
      m.Mach.instret <- ni;
      if t.stop_at - ni >= trace_n then !first_ref () else some_head
    in
    let term_close =
      match term with
      | Tm_back None -> back_loop
      | Tm_back (Some g) ->
          guard_fin regs g.g_op g.g_rs1 g.g_rs2 g.g_taken back_loop
            (mk_exit g trace_n)
      | Tm_jalr (rd, rs1, imm, jpc) ->
          let ic = new_ic () in
          let rdw = rdx rd in
          let link = Int64.add jpc 4L in
          fun () ->
            m.Mach.instret <- m.Mach.instret + trace_n;
            let target =
              Int64.logand
                (Int64.add (Array1.unsafe_get regs rs1) imm)
                (Int64.lognot 1L)
            in
            Array1.unsafe_set regs rdw link;
            ic_lookup t ic target
      | Tm_exit xpc ->
          let site = { sx_pc = xpc; sx_e = None } in
          fun () ->
            m.Mach.instret <- m.Mach.instret + trace_n;
            exit_site t head site
    in
    (* backward threading: each segment's chunks tail-call the next,
       through an inlined guard comparison when one closes the
       segment *)
    let first =
      List.fold_left
        (fun next (slots, gopt, gret) ->
          let fin =
            match gopt with
            | None -> next
            | Some g ->
                guard_fin regs g.g_op g.g_rs1 g.g_rs2 g.g_taken next
                  (mk_exit g gret)
          in
          chunks slots 0 (Array.length slots) fin)
        term_close (List.rev built)
    in
    first_ref := first;
    let tr_ret = Array.of_list (List.rev !ret_acc) in
    let tr_epc = Array.of_list (List.rev !epc_acc) in
    let exec_trace e' =
      if t.stop_at - m.Mach.instret >= trace_n then (
        match first () with
        | r -> r
        | exception Trap.Exception (exc, tval) ->
            m.Mach.instret <- m.Mach.instret + Array.unsafe_get tr_ret !cur;
            Mach.take_trap m exc tval ~epc:(Array.unsafe_get tr_epc !cur);
            retarget t;
            None
        | exception Mach_exited ->
            m.Mach.instret <- m.Mach.instret + Array.unsafe_get tr_ret !cur;
            m.Mach.pc <- Int64.add (Array.unsafe_get tr_epc !cur) 4L;
            None)
      else plain e'
    in
    Some exec_trace
  end

let promote (t : t) (e : entry) =
  if (not t.prof_on) && t.m.Mach.running then
    match build_trace t e e.exec with
    | Some f ->
        e.exec <- f;
        t.megablocks <- t.megablocks + 1
    | None ->
        (* not worth tracing: park the counter so the equality test in
           the chain loop never re-trips (rebuilds reset it) *)
        e.hot <- min_int

(* --- run loop ---------------------------------------------------------- *)

exception Budget_exhausted

(* Execute the first [budget] (< e.e_len) instructions of [e]: the
   exact-stop path used when the remaining budget is smaller than a
   block (checkpointing relies on run ~max_insns retiring exactly
   max_insns).  Steps through the unfused per-instruction view --
   coalesced slots cannot stop at an exact instruction count. *)
let run_partial (t : t) (e : entry) (budget : int) =
  let m = t.m in
  let body = e.steps in
  let offs = e.offs in
  let k = min budget (Array.length body) in
  let i = ref 0 in
  try
    while !i < k do
      (Array.unsafe_get body !i) ();
      incr i
    done;
    m.Mach.instret <- m.Mach.instret + k;
    m.Mach.pc <- Int64.add e.e_pc (Int64.of_int offs.(k))
  with
  | Trap.Exception (exc, tval) ->
      m.Mach.instret <- m.Mach.instret + !i + 1;
      Mach.take_trap m exc tval ~epc:(Int64.add e.e_pc (Int64.of_int offs.(!i)));
      retarget t
  | Mach_exited ->
      m.Mach.instret <- m.Mach.instret + !i + 1;
      m.Mach.pc <- Int64.add e.e_pc (Int64.of_int (offs.(!i) + 4))

(* Run at most [max_insns] instructions (or to exit). *)
let run (t : t) ~max_insns : int =
  let m = t.m in
  let start = m.Mach.instret in
  let stop_at = start + max_insns in
  t.stop_at <- stop_at;
  (* megablocks stand down while BBV profiling is attached: traces
     hide the control-flow edges the profiler must observe (and
     [Bbv.attach] flushes, so none survive from before) *)
  let mega = t.mega_enabled && not t.prof_on in
  (* entry pending when the budget ran out on a block boundary; its pc
     must be restored below *)
  let hold = ref None in
  (* chain-following loop: one budget compare and one indirect call
     per superblock, no intermediate ref/option traffic.  Terminals
     that can exit or change privilege always return [None], so the
     running/interrupt checks only need to run on the slow path. *)
  let rec chain (e : entry) =
    let budget = stop_at - m.Mach.instret in
    if budget <= 0 then begin
      hold := Some e;
      raise Budget_exhausted
    end
    else if e.e_len <= budget then begin
      (if mega then
         let h = e.hot + 1 in
         e.hot <- h;
         if h = t.hot_threshold then promote t e);
      match e.exec e with Some e' -> chain e' | None -> ()
    end
    else run_partial t e budget
  in
  (try
     while m.Mach.running do
       Mach.check_running m;
       (match Riscv.Trap.pending_interrupt m.Mach.csr with
       | Some irq ->
           Mach.take_irq m irq;
           retarget t
       | None -> ());
       if m.Mach.instret >= stop_at then raise Budget_exhausted;
       match lookup_or_compile t with
       | Some e -> chain e
       | None -> raise Budget_exhausted (* machine exited *)
     done
   with Budget_exhausted -> ());
  (* make m.pc coherent if we stopped on a fast-path boundary *)
  (match !hold with Some e -> m.Mach.pc <- e.e_pc | None -> ());
  m.Mach.instret - start

let name = "nemu"
