(** Common driver over the four interpreter engines compared in the
    paper's Figure 8:

    - [Nemu]: the fast threaded-code engine with a trace-organised uop
      cache ({!Fast});
    - [Spike_like]: direct-mapped decode cache + generic dispatch +
      SoftFloat arithmetic ({!Spike_like});
    - [Qemu_tci_like]: per-block bytecode of TCG-granularity micro-ops
      interpreted by a second-level dispatch loop ({!Qemu_tci_like});
    - [Dromajo_like]: fetch + decode on every step, no cache
      ({!Dromajo_like}). *)

type kind = Nemu | Spike_like | Qemu_tci_like | Dromajo_like

val all : kind list

val name : kind -> string

type stats = {
  insns : int;  (** instructions retired *)
  seconds : float;  (** wall-clock run time *)
  flushes : int;  (** NEMU uop-cache whole flushes (system events) *)
  slow_lookups : int;  (** NEMU chain misses resolved via the hash list *)
  compiled : int;  (** NEMU superblocks compiled *)
  evictions : int;  (** NEMU entries demoted by capacity eviction *)
  recompiles : int;  (** NEMU evicted entries rebuilt via stale chains *)
  megablocks : int;  (** NEMU entries promoted to trace megablocks *)
  mega_exits : int;  (** NEMU trace side exits (guard mispredicts) *)
  ic_hits : int;  (** NEMU indirect jumps resolved by an inline cache *)
  ic_misses : int;  (** NEMU inline-cache misses (hash-list fallback) *)
  branch_folds : int;  (** NEMU trace branches folded to constants *)
  tlb_dedups : int;  (** NEMU memory-access pairs sharing one check *)
  addr_fuses : int;  (** NEMU address ALU ops fused into memory slots *)
}
(** Per-run statistics.  The uop-cache and megablock counters are zero
    for every engine but [Nemu]. *)

val run_program_stats :
  ?max_insns:int ->
  ?dram_size:int ->
  ?megablocks:bool ->
  kind ->
  Riscv.Asm.program ->
  stats
(** [run_program_stats kind prog] runs [prog] to completion (or the
    budget) on a fresh machine and reports full statistics.
    [megablocks] (NEMU only; default {!Fast.megablocks_default})
    enables trace-megablock promotion. *)

val run_program :
  ?max_insns:int ->
  ?dram_size:int ->
  ?megablocks:bool ->
  kind ->
  Riscv.Asm.program ->
  int * float
(** [run_program kind prog] runs [prog] to completion (or the budget)
    on a fresh machine; returns (instructions retired, seconds). *)

val mips : int -> float -> float
(** Million instructions per second. *)

type warm
(** A resident NEMU instance for one program: the machine and its
    decoded superblock/megablock caches stay alive across runs, and
    each {!warm_run} first rolls the architectural state back to the
    post-load reset point (guest memory via a COW snapshot, CSRs via a
    pristine copy, registers/pc/CLINT/console by hand).  Compiled code
    is retained only when the previous run performed no cache-flush
    event (fence.i / sfence.vma / satp write); otherwise the caches
    are conservatively dropped, so results are architecturally
    identical to a cold run regardless of warmth. *)

val warm_create :
  ?dram_size:int -> ?megablocks:bool -> Riscv.Asm.program -> warm

val warm_run : warm -> max_insns:int -> int
(** Run the program from reset; returns instructions retired.  The
    first run executes on the freshly loaded machine; later runs reset
    architectural state first and reuse warm decoded code when it is
    provably clean. *)

val warm_mach : warm -> Mach.t
(** The underlying machine, for reading exit code / console output /
    {!Mach.arch_state_digest} after a run. *)

val warm_runs : warm -> int
(** Number of {!warm_run}s performed so far. *)

val warm_compiled : warm -> int
(** Total instructions compiled by the engine since creation (does not
    reset across runs — a second run that recompiles nothing keeps
    this flat, which tests use to prove cache reuse). *)
