(** Generic (non-specialised) execution of decoded instructions on a
    {!Mach.t}, with pluggable floating-point arithmetic.

    This is the executor the baseline engines pay for on every
    instruction: dromajo_like re-decodes and calls it each step;
    spike_like caches decodes but keeps the generic dispatch and plugs
    in SoftFloat (the SPECfp slowdown of §III-D2); qemu_tci_like uses
    it for instructions outside its bytecode.  NEMU instead compiles
    specialised closures ({!Fast}). *)

open Riscv

type fp_ops = {
  f_add : int64 -> int64 -> int64;
  f_sub : int64 -> int64 -> int64;
  f_mul : int64 -> int64 -> int64;
  f_div : int64 -> int64 -> int64;
  f_sqrt : int64 -> int64;
  f_fused : Insn.fp_fused_op -> int64 -> int64 -> int64 -> int64;
}

val host_fp : fp_ops

val soft_fp : fp_ops
(** Berkeley-SoftFloat-style bit-exact integer implementation. *)

val load : Mach.t -> int64 -> int -> int64
(** Aligned virtual load (fast DRAM path, device fallback).
    @raise Trap.Exception on misalignment / access / page faults. *)

val store : Mach.t -> int64 -> int -> int64 -> unit

val exec : fp_ops -> Mach.t -> int64 -> Insn.t -> unit
(** Execute one decoded instruction at a pc; updates [Mach.pc].
    @raise Trap.Exception for traps (callers perform trap entry). *)

val fetch_decode : ?at:int64 -> Mach.t -> Insn.t
(** Fetch and decode at [?at] (default [Mach.pc]) without touching
    [Mach.pc]; the NEMU superblock compiler uses [?at] for lookahead. *)

val step : fp_ops -> Mach.t -> unit
(** Full fetch/decode/execute step with trap handling. *)
