(* Common driver interface over the four interpreter engines compared
   in Figure 8. *)

type kind = Nemu | Spike_like | Qemu_tci_like | Dromajo_like

let all = [ Nemu; Spike_like; Qemu_tci_like; Dromajo_like ]

let name = function
  | Nemu -> "NEMU"
  | Spike_like -> "Spike-like"
  | Qemu_tci_like -> "QEMU-TCI-like"
  | Dromajo_like -> "Dromajo-like"

type stats = {
  insns : int;
  seconds : float;
  (* NEMU uop-cache counters; zero for the other engines *)
  flushes : int;
  slow_lookups : int;
  compiled : int;
  evictions : int;
  recompiles : int;
  (* NEMU trace-megablock counters; zero elsewhere *)
  megablocks : int;
  mega_exits : int;
  ic_hits : int;
  ic_misses : int;
  branch_folds : int;
  tlb_dedups : int;
  addr_fuses : int;
}

(* Run [prog] on a fresh machine; returns run statistics. *)
let run_program_stats ?(max_insns = 2_000_000_000)
    ?(dram_size = 64 * 1024 * 1024) ?megablocks (kind : kind)
    (prog : Riscv.Asm.program) : stats =
  let m = Mach.create ~dram_size () in
  Mach.load_program m prog;
  let t0 = Unix.gettimeofday () in
  let n, counters =
    match kind with
    | Nemu ->
        let t = Fast.create ?megablocks m in
        let n = Fast.run t ~max_insns in
        (n, Some t)
    | Spike_like -> (Spike_like.run m ~max_insns, None)
    | Qemu_tci_like -> (Qemu_tci_like.run m ~max_insns, None)
    | Dromajo_like -> (Dromajo_like.run m ~max_insns, None)
  in
  let t1 = Unix.gettimeofday () in
  match counters with
  | Some t ->
      {
        insns = n;
        seconds = t1 -. t0;
        flushes = t.Fast.flushes;
        slow_lookups = t.Fast.slow_lookups;
        compiled = t.Fast.compiled;
        evictions = t.Fast.evictions;
        recompiles = t.Fast.recompiles;
        megablocks = t.Fast.megablocks;
        mega_exits = t.Fast.mega_exits;
        ic_hits = t.Fast.ic_hits;
        ic_misses = t.Fast.ic_misses;
        branch_folds = t.Fast.branch_folds;
        tlb_dedups = t.Fast.tlb_dedups;
        addr_fuses = t.Fast.addr_fuses;
      }
  | None ->
      {
        insns = n;
        seconds = t1 -. t0;
        flushes = 0;
        slow_lookups = 0;
        compiled = 0;
        evictions = 0;
        recompiles = 0;
        megablocks = 0;
        mega_exits = 0;
        ic_hits = 0;
        ic_misses = 0;
        branch_folds = 0;
        tlb_dedups = 0;
        addr_fuses = 0;
      }

let run_program ?max_insns ?dram_size ?megablocks kind prog =
  let s = run_program_stats ?max_insns ?dram_size ?megablocks kind prog in
  (s.insns, s.seconds)

let mips n secs = if secs <= 0.0 then 0.0 else float_of_int n /. secs /. 1e6
