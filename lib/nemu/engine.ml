(* Common driver interface over the four interpreter engines compared
   in Figure 8. *)

type kind = Nemu | Spike_like | Qemu_tci_like | Dromajo_like

let all = [ Nemu; Spike_like; Qemu_tci_like; Dromajo_like ]

let name = function
  | Nemu -> "NEMU"
  | Spike_like -> "Spike-like"
  | Qemu_tci_like -> "QEMU-TCI-like"
  | Dromajo_like -> "Dromajo-like"

type stats = {
  insns : int;
  seconds : float;
  (* NEMU uop-cache counters; zero for the other engines *)
  flushes : int;
  slow_lookups : int;
  compiled : int;
  evictions : int;
  recompiles : int;
}

(* Run [prog] on a fresh machine; returns run statistics. *)
let run_program_stats ?(max_insns = 2_000_000_000)
    ?(dram_size = 64 * 1024 * 1024) (kind : kind) (prog : Riscv.Asm.program) :
    stats =
  let m = Mach.create ~dram_size () in
  Mach.load_program m prog;
  let t0 = Unix.gettimeofday () in
  let n, counters =
    match kind with
    | Nemu ->
        let t = Fast.create m in
        let n = Fast.run t ~max_insns in
        ( n,
          Some
            Fast.
              (t.flushes, t.slow_lookups, t.compiled, t.evictions, t.recompiles)
        )
    | Spike_like -> (Spike_like.run m ~max_insns, None)
    | Qemu_tci_like -> (Qemu_tci_like.run m ~max_insns, None)
    | Dromajo_like -> (Dromajo_like.run m ~max_insns, None)
  in
  let t1 = Unix.gettimeofday () in
  let flushes, slow_lookups, compiled, evictions, recompiles =
    match counters with Some c -> c | None -> (0, 0, 0, 0, 0)
  in
  {
    insns = n;
    seconds = t1 -. t0;
    flushes;
    slow_lookups;
    compiled;
    evictions;
    recompiles;
  }

let run_program ?max_insns ?dram_size kind prog =
  let s = run_program_stats ?max_insns ?dram_size kind prog in
  (s.insns, s.seconds)

let mips n secs = if secs <= 0.0 then 0.0 else float_of_int n /. secs /. 1e6
