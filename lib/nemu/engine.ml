(* Common driver interface over the four interpreter engines compared
   in Figure 8. *)

type kind = Nemu | Spike_like | Qemu_tci_like | Dromajo_like

let all = [ Nemu; Spike_like; Qemu_tci_like; Dromajo_like ]

let name = function
  | Nemu -> "NEMU"
  | Spike_like -> "Spike-like"
  | Qemu_tci_like -> "QEMU-TCI-like"
  | Dromajo_like -> "Dromajo-like"

type stats = {
  insns : int;
  seconds : float;
  (* NEMU uop-cache counters; zero for the other engines *)
  flushes : int;
  slow_lookups : int;
  compiled : int;
  evictions : int;
  recompiles : int;
  (* NEMU trace-megablock counters; zero elsewhere *)
  megablocks : int;
  mega_exits : int;
  ic_hits : int;
  ic_misses : int;
  branch_folds : int;
  tlb_dedups : int;
  addr_fuses : int;
}

(* Run [prog] on a fresh machine; returns run statistics. *)
let run_program_stats ?(max_insns = 2_000_000_000)
    ?(dram_size = 64 * 1024 * 1024) ?megablocks (kind : kind)
    (prog : Riscv.Asm.program) : stats =
  let m = Mach.create ~dram_size () in
  Mach.load_program m prog;
  let t0 = Unix.gettimeofday () in
  let n, counters =
    match kind with
    | Nemu ->
        let t = Fast.create ?megablocks m in
        let n = Fast.run t ~max_insns in
        (n, Some t)
    | Spike_like -> (Spike_like.run m ~max_insns, None)
    | Qemu_tci_like -> (Qemu_tci_like.run m ~max_insns, None)
    | Dromajo_like -> (Dromajo_like.run m ~max_insns, None)
  in
  let t1 = Unix.gettimeofday () in
  match counters with
  | Some t ->
      {
        insns = n;
        seconds = t1 -. t0;
        flushes = t.Fast.flushes;
        slow_lookups = t.Fast.slow_lookups;
        compiled = t.Fast.compiled;
        evictions = t.Fast.evictions;
        recompiles = t.Fast.recompiles;
        megablocks = t.Fast.megablocks;
        mega_exits = t.Fast.mega_exits;
        ic_hits = t.Fast.ic_hits;
        ic_misses = t.Fast.ic_misses;
        branch_folds = t.Fast.branch_folds;
        tlb_dedups = t.Fast.tlb_dedups;
        addr_fuses = t.Fast.addr_fuses;
      }
  | None ->
      {
        insns = n;
        seconds = t1 -. t0;
        flushes = 0;
        slow_lookups = 0;
        compiled = 0;
        evictions = 0;
        recompiles = 0;
        megablocks = 0;
        mega_exits = 0;
        ic_hits = 0;
        ic_misses = 0;
        branch_folds = 0;
        tlb_dedups = 0;
        addr_fuses = 0;
      }

let run_program ?max_insns ?dram_size ?megablocks kind prog =
  let s = run_program_stats ?max_insns ?dram_size ?megablocks kind prog in
  (s.insns, s.seconds)

let mips n secs = if secs <= 0.0 then 0.0 else float_of_int n /. secs /. 1e6

(* --- warm (resident) NEMU engine -------------------------------------- *)

(* A machine + Fast engine kept alive across runs of one program so
   the decoded superblock/megablock caches amortise.  Between runs the
   *architectural* state is rolled back to the post-load reset point:
   guest memory via a COW snapshot, the CSR file via a pristine copy,
   registers/pc/devices by hand.  Compiled code is kept only when the
   previous run performed no flush event (fence.i / sfence.vma / satp
   write, tracked by [Fast.flushes]): any flush means code bytes or
   mappings may have diverged from what the blocks were compiled
   against, so the whole cache is conservatively dropped. *)
type warm = {
  w_mach : Mach.t;
  w_fast : Fast.t;
  w_entry : int64;
  w_mem0 : Riscv.Memory.snapshot;  (** memory right after [load_program] *)
  w_csr0 : Riscv.Csr.t;  (** pristine CSR file (a [Csr.copy]) *)
  mutable w_clean_flushes : int;
      (** value of [Fast.flushes] at the last point the caches were
          known to match the pristine image *)
  mutable w_runs : int;
}

let warm_create ?(dram_size = 64 * 1024 * 1024) ?megablocks
    (prog : Riscv.Asm.program) : warm =
  let m = Mach.create ~dram_size () in
  Mach.load_program m prog;
  let mem0 = Riscv.Memory.snapshot m.Mach.plat.Riscv.Platform.mem in
  let csr0 = Riscv.Csr.copy m.Mach.csr in
  let t = Fast.create ?megablocks m in
  {
    w_mach = m;
    w_fast = t;
    w_entry = prog.Riscv.Asm.entry;
    w_mem0 = mem0;
    w_csr0 = csr0;
    w_clean_flushes = 0;
    w_runs = 0;
  }

let warm_reset (w : warm) =
  let m = w.w_mach in
  let plat = m.Mach.plat in
  Riscv.Memory.restore plat.Riscv.Platform.mem w.w_mem0;
  Riscv.Csr.restore m.Mach.csr w.w_csr0;
  Bigarray.Array1.fill m.Mach.regs 0L;
  Bigarray.Array1.fill m.Mach.fregs 0L;
  m.Mach.pc <- w.w_entry;
  m.Mach.reservation <- None;
  m.Mach.instret <- 0;
  m.Mach.running <- true;
  plat.Riscv.Platform.exit_code <- None;
  Buffer.clear plat.Riscv.Platform.console;
  let clint = plat.Riscv.Platform.clint in
  clint.Riscv.Platform.Clint.mtime <- 0L;
  let cmp = clint.Riscv.Platform.Clint.mtimecmp in
  Array.fill cmp 0 (Array.length cmp) Int64.max_int;
  let msip = clint.Riscv.Platform.Clint.msip in
  Array.fill msip 0 (Array.length msip) false;
  (* recompute cached paging state and drop soft-TLB entries that
     translated against the pre-restore address space *)
  Mach.sync_translation m;
  let t = w.w_fast in
  if t.Fast.flushes <> w.w_clean_flushes then begin
    Fast.flush t;
    w.w_clean_flushes <- t.Fast.flushes
  end
  else Fast.rewind t

let warm_run (w : warm) ~max_insns =
  if w.w_runs > 0 then warm_reset w;
  w.w_runs <- w.w_runs + 1;
  Fast.run w.w_fast ~max_insns

let warm_mach (w : warm) = w.w_mach

let warm_runs (w : warm) = w.w_runs

let warm_compiled (w : warm) = w.w_fast.Fast.compiled
