(* Non-autonomous REF mode for the NEMU engine (paper §III-B, §III-D).

   DiffTest drives a reference model one commit at a time, so the
   fused superblock closures of [Fast] -- which retire a whole block
   per call and observe no commit boundaries -- cannot be used
   directly: a diff-rule may patch a register or a memory word
   *between* two commits, and the patch must be visible to the very
   next instruction.  This engine keeps NEMU's superblock shape but
   compiles blocks of *decoded* instructions instead of fused
   closures: a cursor walks the block one instruction per [step],
   each step emitting the commit record (pc, next pc, memory
   accesses, CSR reads, traps) that DiffTest checks.

   The speed over the straightforward [Iss.Interp] REF comes from the
   same sources as the autonomous engine: fetch translation and
   decode are paid once per block instead of once per step (the block
   cache is keyed by virtual pc, partitioned by privilege), data
   accesses go through the host TLB, and the register files are the
   unboxed [Mach] Bigarrays.

   Patching is uop-cache-safe: every block records the physical code
   pages it was fetched from, and [patch_mem] -- the Global-Memory
   rule's write path -- invalidates any block compiled from a written
   page (plus the active cursor) before touching memory.  fence.i,
   sfence.vma and satp writes flush the whole block cache, exactly
   like the autonomous engine's uop-cache flushes. *)

open Riscv

type forced = Force_exception of Trap.exc * int64 | Force_interrupt of Trap.irq

(* Per-instruction execution strategy, decided once at block-compile
   time.  [O_straight] and [O_jump] are specialised closures in the
   [Fast.compile_straight] style -- they read registers at call time,
   so diff-rule patches between commits stay visible -- while
   [O_slow] is the instrumented path (memory, CSRs, system). *)
type op =
  | O_straight of (unit -> unit) (* pure register op; next pc = pc+4 *)
  | O_jump of (int64 -> int64) * jic
    (* control flow; returns the next pc.  The inline cache memoizes
       the blocks this site jumped to, so a taken branch links
       block-to-block without a cache lookup -- the REF-mode analogue
       of the autonomous engine's trace chaining. *)
  | O_slow

and jic = { mutable j_b0 : block; mutable j_b1 : block }
(* 2-way inline cache at a jump site: the last two target blocks,
   most recent in way 0.  A way hits only if the target pc matches
   AND the block's generation is current (see [gen] below). *)

and block = {
  b_pc : int64; (* virtual start pc *)
  b_gen : int; (* the cache generation the block was compiled in *)
  b_insns : Insn.t array;
  b_ops : op array;
  b_pages : int64 array; (* physical 4 KiB code pages fetched from *)
}

let no_block =
  {
    b_pc = Int64.min_int;
    b_gen = -1;
    b_insns = [||];
    b_ops = [||];
    b_pages = [||];
  }

type t = {
  m : Mach.t;
  caches : block array array; (* U / S / M partitions, direct-mapped *)
  page_index : (int64, (int * int) list) Hashtbl.t;
      (* physical code page -> cache slots (partition, slot) compiled
         from it *)
  mutable cur : block;
  mutable cur_ix : int;
  mutable cur_pc : int64; (* = b_pc + 4*cur_ix, min_int when invalid *)
  mutable forced : forced option;
  mutable force_sc_fail : bool;
  mutable instret : int64;
  mega : bool; (* jump-site inline caches enabled *)
  mutable gen : int;
      (* cache generation: bumped by every flush and every
         physical-page invalidation, so an inline-cache way can prove
         its memoized block untouched with one integer compare --
         page-write safety without re-walking the page index *)
  (* stats *)
  mutable compiled : int;
  mutable flushes : int;
  mutable invalidations : int;
  mutable slow_lookups : int;
  mutable ic_hits : int;
  mutable ic_misses : int;
}

let max_block_len = 32

(* Direct-mapped block cache, like a uop cache: lookup is one array
   read and one pc compare, conflicting pcs simply overwrite.  The
   page index can only grow (overwritten slots leave their entries
   behind), so it carries a flush backstop. *)
let cache_bits = 14
let cache_slots = 1 lsl cache_bits
let cache_mask = cache_slots - 1
let slot_of vpc = (Int64.to_int vpc lsr 2) land cache_mask
let page_index_cap = 16384

let priv_ix (csr : Csr.t) =
  match csr.Csr.priv with Csr.U -> 0 | Csr.S -> 1 | Csr.M -> 2

let create ?dram_size ?(hartid = 0) ?megablocks () =
  {
    m = Mach.create ?dram_size ~hartid ();
    caches = Array.init 3 (fun _ -> Array.make cache_slots no_block);
    page_index = Hashtbl.create 256;
    cur = no_block;
    cur_ix = 0;
    cur_pc = Int64.min_int;
    forced = None;
    force_sc_fail = false;
    instret = 0L;
    mega =
      (match megablocks with
      | Some b -> b
      | None -> Fast.megablocks_default ());
    gen = 0;
    compiled = 0;
    flushes = 0;
    invalidations = 0;
    slow_lookups = 0;
    ic_hits = 0;
    ic_misses = 0;
  }

let load_program t prog = Mach.load_program t.m prog

let exited t = Mach.exited t.m

let exit_code t = Mach.exit_code t.m

(* --- DRAV control surface -------------------------------------------- *)

let force_exception t exc tval = t.forced <- Some (Force_exception (exc, tval))

let force_interrupt t irq = t.forced <- Some (Force_interrupt irq)

let force_sc_failure t = t.force_sc_fail <- true

let patch_reg t rd v = Mach.set_reg t.m rd v

let patch_freg t frd v = Bigarray.Array1.set t.m.Mach.fregs frd v

let get_reg t r = Mach.get_reg t.m r

let set_counters t ~cycle ~instret =
  t.m.Mach.csr.Csr.reg_mcycle <- cycle;
  t.m.Mach.csr.Csr.reg_minstret <- instret

let set_mcycle t v = t.m.Mach.csr.Csr.reg_mcycle <- v

let set_time t mtime =
  t.m.Mach.plat.Platform.clint.Platform.Clint.mtime <- mtime

let set_mip_bit t n b = Csr.set_mip_bit t.m.Mach.csr n b

let memories t = [ t.m.Mach.plat.Platform.mem ]

(* --- block-cache maintenance ------------------------------------------ *)

let flush_blocks t =
  Array.iter (fun c -> Array.fill c 0 cache_slots no_block) t.caches;
  Hashtbl.reset t.page_index;
  t.cur <- no_block;
  t.cur_ix <- 0;
  t.cur_pc <- Int64.min_int;
  t.gen <- t.gen + 1;
  t.flushes <- t.flushes + 1

let page_of pa = Int64.logand pa (Int64.lognot 0xFFFL)

let index_block t ix slot (b : block) =
  Array.iter
    (fun page ->
      let prev = Option.value (Hashtbl.find_opt t.page_index page) ~default:[] in
      Hashtbl.replace t.page_index page ((ix, slot) :: prev))
    b.b_pages

(* A DiffTest patch (or any external write) landed on [paddr]: drop
   every block compiled from the written page so the next step
   recompiles against the patched bytes. *)
let invalidate_paddr t ~paddr ~size =
  (* retire the generation so every inline-cache way memoizing a
     possibly-stale block misses from now on *)
  t.gen <- t.gen + 1;
  let invalidate_page page =
    (match Hashtbl.find_opt t.page_index page with
    | Some entries ->
        List.iter
          (fun (ix, slot) ->
            (* the slot may have been overwritten by an unrelated
               block since it was indexed; dropping that one too only
               costs a recompile *)
            t.caches.(ix).(slot) <- no_block;
            t.invalidations <- t.invalidations + 1)
          entries;
        Hashtbl.remove t.page_index page
    | None -> ());
    if Array.exists (Int64.equal page) t.cur.b_pages then begin
      t.cur <- no_block;
      t.cur_ix <- 0;
      t.cur_pc <- Int64.min_int
    end
  in
  let first = page_of paddr
  and last = page_of (Int64.add paddr (Int64.of_int (max 0 (size - 1)))) in
  invalidate_page first;
  if not (Int64.equal first last) then invalidate_page last

let patch_mem t ~paddr ~size ~value =
  invalidate_paddr t ~paddr ~size;
  Platform.write t.m.Mach.plat ~addr:paddr ~size value

(* --- fetch + compile --------------------------------------------------- *)

(* Fetch translation through the host TLB; mirrors the ISS fetch
   (Platform.read fallback for the pathological non-DRAM fetch). *)
let fetch_word (m : Mach.t) va : int * int64 =
  let mem = m.Mach.plat.Platform.mem in
  let read pa =
    if Memory.in_range mem pa then Memory.read_u32 mem pa
    else
      match Platform.read m.Mach.plat ~addr:pa ~size:4 with
      | v -> Int64.to_int v land 0xFFFFFFFF
      | exception Platform.Bus_fault _ ->
          raise (Trap.Exception (Trap.Fetch_access, va))
  in
  if not m.Mach.paging then (read va, va)
  else begin
    let pa = Mach.tlb_lookup m Mach.tlb_fetch va in
    if pa <> Int64.min_int then (read pa, pa)
    else begin
      let pa = Iss.Mmu.translate m.Mach.plat m.Mach.csr va Iss.Mmu.Fetch in
      if Memory.in_range mem pa then Mach.tlb_fill m Mach.tlb_fetch va pa;
      (read pa, pa)
    end
  end

(* Only instructions that change the translation / privilege context
   (or trap unconditionally) end a block.  Branches and jumps do NOT:
   the cursor keeps walking the block across a not-taken branch and
   simply drops on any other next pc, so branchy loops stay on the
   fast path.  Bytes decoded past an unconditional jump are dead
   unless execution actually falls onto them. *)
let terminal (i : Insn.t) =
  match i with
  | Insn.Ecall | Insn.Ebreak | Insn.Mret | Insn.Sret | Insn.Sfence_vma _
  | Insn.Fence_i | Insn.Csr _ | Insn.Illegal _ ->
      true
  | _ -> false

(* Specialise one decoded instruction.  Memory, CSR and system
   instructions stay on the instrumented [exec_commit] path (their
   commits carry access records); everything else gets a closure that
   skips the double dispatch.  Jump/branch closures replicate
   [Exec_generic.exec] -- link register written after the target read,
   bit 0 cleared on jalr, [Iss.Alu.eval_branch] comparison
   semantics. *)
let specialise (m : Mach.t) vpc (insn : Insn.t) : op =
  let regs = m.Mach.regs in
  let g r = Bigarray.Array1.unsafe_get regs r in
  let rdx rd = if rd = 0 then Mach.sink else rd in
  let jump f = O_jump (f, { j_b0 = no_block; j_b1 = no_block }) in
  match insn with
  | Insn.Load _ | Insn.Store _ | Insn.Lr _ | Insn.Sc _ | Insn.Amo _
  | Insn.Fld _ | Insn.Fsd _ | Insn.Csr _ | Insn.Sfence_vma _ | Insn.Fence_i
  | Insn.Ecall | Insn.Ebreak | Insn.Mret | Insn.Sret | Insn.Illegal _ ->
      O_slow
  | Insn.Jal (rd, off) ->
      let rd = rdx rd in
      jump
        (fun pc ->
          Bigarray.Array1.unsafe_set regs rd (Int64.add pc 4L);
          Int64.add pc off)
  | Insn.Jalr (rd, rs1, imm) ->
      let rd = rdx rd in
      jump
        (fun pc ->
          let target =
            Int64.logand (Int64.add (g rs1) imm) (Int64.lognot 1L)
          in
          Bigarray.Array1.unsafe_set regs rd (Int64.add pc 4L);
          target)
  | Insn.Branch (op, rs1, rs2, off) ->
      jump
        (match op with
        | Insn.BEQ ->
            fun pc ->
              if Int64.equal (g rs1) (g rs2) then Int64.add pc off
              else Int64.add pc 4L
        | Insn.BNE ->
            fun pc ->
              if Int64.equal (g rs1) (g rs2) then Int64.add pc 4L
              else Int64.add pc off
        | Insn.BLT ->
            fun pc ->
              if g rs1 < g rs2 then Int64.add pc off else Int64.add pc 4L
        | Insn.BGE ->
            fun pc ->
              if g rs1 >= g rs2 then Int64.add pc off else Int64.add pc 4L
        | Insn.BLTU ->
            (* unsigned a < b: signed (a < b) xor (sign a) xor (sign b) *)
            fun pc ->
              let a = g rs1 and b = g rs2 in
              if a < b <> (a < 0L <> (b < 0L)) then Int64.add pc off
              else Int64.add pc 4L
        | Insn.BGEU ->
            fun pc ->
              let a = g rs1 and b = g rs2 in
              if a < b <> (a < 0L <> (b < 0L)) then Int64.add pc 4L
              else Int64.add pc off)
  | Insn.Auipc (rd, imm) ->
      (* pc-relative with the pc known at compile time *)
      let rd = rdx rd in
      let v = Int64.add vpc imm in
      O_straight (fun () -> Bigarray.Array1.unsafe_set regs rd v)
  | _ -> (
      match Fast.compile_straight m insn with
      | Some f -> O_straight f
      | None -> O_slow)

(* Compile a straight-line block starting at [vpc].  The first fetch
   may trap (propagated to the caller, which performs trap entry);
   later fetch faults simply end the block so the fault is taken when
   execution actually reaches that pc. *)
let compile t vpc : block =
  let m = t.m in
  let word0, pa0 = fetch_word m vpc in
  let insns = ref [ Decode.decode_int word0 ] in
  let pages = ref [ page_of pa0 ] in
  let note_page pa =
    let p = page_of pa in
    if not (List.exists (Int64.equal p) !pages) then pages := p :: !pages
  in
  let n = ref 1 in
  (try
     while !n < max_block_len && not (terminal (List.hd !insns)) do
       let va = Int64.add vpc (Int64.of_int (4 * !n)) in
       let word, pa = fetch_word m va in
       note_page pa;
       insns := Decode.decode_int word :: !insns;
       incr n
     done
   with Trap.Exception _ -> ());
  let b_insns = Array.of_list (List.rev !insns) in
  let b_ops =
    Array.mapi
      (fun i insn -> specialise m (Int64.add vpc (Int64.of_int (4 * i))) insn)
      b_insns
  in
  let b =
    { b_pc = vpc; b_gen = t.gen; b_insns; b_ops; b_pages = Array.of_list !pages }
  in
  t.compiled <- t.compiled + 1;
  b

let lookup_or_compile t vpc : block =
  let ix = priv_ix t.m.Mach.csr in
  let cache = t.caches.(ix) in
  let slot = slot_of vpc in
  let b = Array.unsafe_get cache slot in
  if Int64.equal b.b_pc vpc then b
  else begin
    t.slow_lookups <- t.slow_lookups + 1;
    if Hashtbl.length t.page_index >= page_index_cap then flush_blocks t;
    let b = compile t vpc in
    cache.(slot) <- b;
    index_block t ix slot b;
    b
  end

(* --- instrumented execution ------------------------------------------- *)

let[@inline] check_aligned vaddr size exc =
  if Int64.logand vaddr (Int64.of_int (size - 1)) <> 0L then
    raise (Trap.Exception (exc, vaddr))

(* Loads and stores mirror [Exec_generic.load]/[store] but return the
   full access record (vaddr, paddr, size, value) the commit carries. *)
let ref_load (m : Mach.t) vaddr size : Iss.Interp.mem_access =
  check_aligned vaddr size Trap.Load_misaligned;
  let mem = m.Mach.plat.Platform.mem in
  let dram pa =
    { Iss.Interp.vaddr; paddr = pa; size; value = Memory.read_bytes_le mem pa size }
  in
  let slow pa =
    match Platform.read m.Mach.plat ~addr:pa ~size with
    | v -> { Iss.Interp.vaddr; paddr = pa; size; value = v }
    | exception Platform.Bus_fault _ ->
        raise (Trap.Exception (Trap.Load_access, vaddr))
  in
  if not m.Mach.paging then
    if Memory.in_range mem vaddr then dram vaddr else slow vaddr
  else begin
    let pa = Mach.tlb_lookup m Mach.tlb_load vaddr in
    if pa <> Int64.min_int then dram pa
    else begin
      let pa = Iss.Mmu.translate m.Mach.plat m.Mach.csr vaddr Iss.Mmu.Load in
      if Memory.in_range mem pa then begin
        Mach.tlb_fill m Mach.tlb_load vaddr pa;
        dram pa
      end
      else slow pa
    end
  end

let ref_store (t : t) vaddr size v : Iss.Interp.mem_access =
  check_aligned vaddr size Trap.Store_misaligned;
  let m = t.m in
  let mem = m.Mach.plat.Platform.mem in
  let acc pa = { Iss.Interp.vaddr; paddr = pa; size; value = v } in
  let dram pa =
    (* a guest store into a compiled code page must drop the block
       (made visible at the next fence.i, but dropping now is always
       safe and keeps the cache byte-accurate) *)
    (if Hashtbl.length t.page_index > 0 then
       match Hashtbl.find_opt t.page_index (page_of pa) with
       | Some _ -> invalidate_paddr t ~paddr:pa ~size
       | None -> ());
    Memory.write_bytes_le mem pa size v;
    acc pa
  in
  let slow pa =
    (try Platform.write m.Mach.plat ~addr:pa ~size v
     with Platform.Bus_fault _ ->
       raise (Trap.Exception (Trap.Store_access, vaddr)));
    Mach.check_running m;
    acc pa
  in
  if not m.Mach.paging then
    if Memory.in_range mem vaddr then dram vaddr else slow vaddr
  else begin
    let pa = Mach.tlb_lookup m Mach.tlb_store vaddr in
    if pa <> Int64.min_int then dram pa
    else begin
      let pa = Iss.Mmu.translate m.Mach.plat m.Mach.csr vaddr Iss.Mmu.Store in
      if Memory.in_range mem pa then begin
        Mach.tlb_fill m Mach.tlb_store vaddr pa;
        dram pa
      end
      else slow pa
    end
  end

let translate_store (m : Mach.t) vaddr =
  if not m.Mach.paging then vaddr
  else begin
    let pa = Mach.tlb_lookup m Mach.tlb_store vaddr in
    if pa <> Int64.min_int then pa
    else begin
      let pa = Iss.Mmu.translate m.Mach.plat m.Mach.csr vaddr Iss.Mmu.Store in
      if Memory.in_range m.Mach.plat.Platform.mem pa then
        Mach.tlb_fill m Mach.tlb_store vaddr pa;
      pa
    end
  end

let commit_plain insn pc next_pc : Iss.Interp.commit =
  {
    Iss.Interp.pc;
    insn;
    next_pc;
    trap = None;
    interrupt = None;
    load = None;
    store = None;
    sc_failed = false;
    csr_read = None;
    mmio = false;
  }

(* Execute one decoded instruction, producing the commit record.  The
   memory / CSR / atomic arms are instrumented here; everything else
   delegates to the generic executor (host-FP arithmetic, identical
   semantics to the ISS REF).  Raises [Trap.Exception] like the ISS
   exec; callers perform trap entry. *)
let exec_commit (t : t) pc (insn : Insn.t) : Iss.Interp.commit =
  let m = t.m in
  let rg = Mach.get_reg m in
  let wr = Mach.set_reg m in
  let next = Int64.add pc 4L in
  let plain = commit_plain insn pc in
  match insn with
  | Insn.Load (op, rd, rs1, imm) ->
      let acc = ref_load m (Int64.add (rg rs1) imm) (Iss.Alu.load_width op) in
      wr rd (Iss.Alu.extend_load op acc.Iss.Interp.value);
      m.Mach.pc <- next;
      {
        (plain next) with
        load = Some acc;
        mmio = Platform.is_mmio m.Mach.plat acc.Iss.Interp.paddr;
      }
  | Insn.Store (op, rs2, rs1, imm) ->
      let acc =
        ref_store t (Int64.add (rg rs1) imm) (Iss.Alu.store_width op) (rg rs2)
      in
      m.Mach.pc <- next;
      {
        (plain next) with
        store = Some acc;
        mmio = Platform.is_mmio m.Mach.plat acc.Iss.Interp.paddr;
      }
  | Insn.Lr (w, rd, rs1) ->
      let size = match w with Insn.Width_w -> 4 | Insn.Width_d -> 8 in
      let vaddr = rg rs1 in
      let acc = ref_load m vaddr size in
      wr rd
        (match w with
        | Insn.Width_w -> Iss.Alu.sext32 acc.Iss.Interp.value
        | Insn.Width_d -> acc.Iss.Interp.value);
      m.Mach.reservation <- Some acc.Iss.Interp.paddr;
      m.Mach.pc <- next;
      { (plain next) with load = Some acc }
  | Insn.Sc (w, rd, rs1, rs2) ->
      let size = match w with Insn.Width_w -> 4 | Insn.Width_d -> 8 in
      let vaddr = rg rs1 in
      check_aligned vaddr size Trap.Store_misaligned;
      let pa = translate_store m vaddr in
      let reserved =
        match m.Mach.reservation with Some r -> Int64.equal r pa | None -> false
      in
      m.Mach.reservation <- None;
      if reserved && not t.force_sc_fail then begin
        let acc = ref_store t vaddr size (rg rs2) in
        wr rd 0L;
        m.Mach.pc <- next;
        { (plain next) with store = Some acc }
      end
      else begin
        t.force_sc_fail <- false;
        wr rd 1L;
        m.Mach.pc <- next;
        { (plain next) with sc_failed = true }
      end
  | Insn.Amo (op, w, rd, rs1, rs2) ->
      let size = match w with Insn.Width_w -> 4 | Insn.Width_d -> 8 in
      let vaddr = rg rs1 in
      check_aligned vaddr size Trap.Store_misaligned;
      let acc = ref_load m vaddr size in
      let old_v =
        match w with
        | Insn.Width_w -> Iss.Alu.sext32 acc.Iss.Interp.value
        | Insn.Width_d -> acc.Iss.Interp.value
      in
      let stacc = ref_store t vaddr size (Iss.Alu.eval_amo op w old_v (rg rs2)) in
      wr rd old_v;
      m.Mach.pc <- next;
      { (plain next) with load = Some acc; store = Some stacc }
  | Insn.Fld (frd, rs1, imm) ->
      let acc = ref_load m (Int64.add (rg rs1) imm) 8 in
      Bigarray.Array1.set m.Mach.fregs frd acc.Iss.Interp.value;
      m.Mach.pc <- next;
      { (plain next) with load = Some acc }
  | Insn.Fsd (frs2, rs1, imm) ->
      let acc =
        ref_store t
          (Int64.add (rg rs1) imm)
          8
          (Bigarray.Array1.get m.Mach.fregs frs2)
      in
      m.Mach.pc <- next;
      { (plain next) with store = Some acc }
  | Insn.Csr (op, rd, rs1, addr) -> (
      try
        let csr = m.Mach.csr in
        let old_v =
          match op with
          | Insn.CSRRW | Insn.CSRRWI when rd = 0 -> 0L
          | _ -> Csr.read csr addr
        in
        let src =
          match op with
          | Insn.CSRRW | Insn.CSRRS | Insn.CSRRC -> rg rs1
          | Insn.CSRRWI | Insn.CSRRSI | Insn.CSRRCI -> Int64.of_int rs1
        in
        (match op with
        | Insn.CSRRW | Insn.CSRRWI -> Csr.write csr addr src
        | Insn.CSRRS | Insn.CSRRSI ->
            if rs1 <> 0 then Csr.write csr addr (Int64.logor old_v src)
        | Insn.CSRRC | Insn.CSRRCI ->
            if rs1 <> 0 then
              Csr.write csr addr (Int64.logand old_v (Int64.lognot src)));
        wr rd old_v;
        if addr = Csr.satp || addr = Csr.mstatus || addr = Csr.sstatus then begin
          Mach.sync_translation m;
          (* the code mapping may have changed under the block cache *)
          if addr = Csr.satp then flush_blocks t
        end;
        m.Mach.pc <- next;
        { (plain next) with csr_read = Some (addr, old_v) }
      with Csr.Illegal_csr _ ->
        raise (Trap.Exception (Trap.Illegal_instruction, 0L)))
  | Insn.Sfence_vma (_, _) ->
      Exec_generic.exec Exec_generic.host_fp m pc insn;
      flush_blocks t;
      plain m.Mach.pc
  | Insn.Fence_i ->
      Exec_generic.exec Exec_generic.host_fp m pc insn;
      flush_blocks t;
      plain m.Mach.pc
  | _ ->
      Exec_generic.exec Exec_generic.host_fp m pc insn;
      plain m.Mach.pc

(* --- step-to-commit ---------------------------------------------------- *)

let invalidate_cursor t =
  t.cur <- no_block;
  t.cur_ix <- 0;
  t.cur_pc <- Int64.min_int

(* A taken jump at an [O_jump] site: resolve the target block through
   the site's inline cache and leave the cursor on it, so the next
   step starts inside the target with no hash/slot lookup -- REF-mode
   block-to-block linking.  A way hits only if its block is from the
   current generation, i.e. no flush and no physical-page write has
   happened since the block was compiled; jump sites never change
   privilege (mret/sret are [O_slow] terminals), so a memoized block
   is always from the jumping block's own privilege partition.  On a
   double miss the target resolves through the normal lookup and is
   promoted to way 0.  A first-fetch fault during resolution leaves
   the cursor invalid: the fault belongs to the *next* commit and is
   raised there by the normal path. *)
let link_jump t (ic : jic) target =
  let set b =
    t.cur <- b;
    t.cur_ix <- 0;
    t.cur_pc <- target
  in
  let b0 = ic.j_b0 in
  if Int64.equal b0.b_pc target && b0.b_gen = t.gen then begin
    t.ic_hits <- t.ic_hits + 1;
    set b0
  end
  else begin
    let b1 = ic.j_b1 in
    if Int64.equal b1.b_pc target && b1.b_gen = t.gen then begin
      t.ic_hits <- t.ic_hits + 1;
      ic.j_b1 <- b0;
      ic.j_b0 <- b1;
      set b1
    end
    else begin
      t.ic_misses <- t.ic_misses + 1;
      match lookup_or_compile t target with
      | b ->
          ic.j_b1 <- ic.j_b0;
          ic.j_b0 <- b;
          set b
      | exception Trap.Exception _ -> invalidate_cursor t
    end
  end

let finish t (c : Iss.Interp.commit) : Iss.Interp.step_result =
  t.instret <- Int64.add t.instret 1L;
  t.m.Mach.csr.Csr.reg_minstret <-
    Int64.add t.m.Mach.csr.Csr.reg_minstret 1L;
  t.m.Mach.instret <- t.m.Mach.instret + 1;
  Iss.Interp.Committed c

let step (t : t) : Iss.Interp.step_result =
  if exited t then Iss.Interp.Exited
  else begin
    let m = t.m in
    let pc = m.Mach.pc in
    let forced = t.forced in
    t.forced <- None;
    match forced with
    | Some (Force_interrupt irq) ->
        Mach.take_irq m irq;
        invalidate_cursor t;
        Iss.Interp.Committed
          {
            (commit_plain (Insn.Op_imm (Insn.ADD, 0, 0, 0L)) pc m.Mach.pc) with
            interrupt = Some irq;
          }
    | Some (Force_exception (exc, tval)) ->
        Mach.take_trap m exc tval ~epc:pc;
        invalidate_cursor t;
        Iss.Interp.Committed
          {
            (commit_plain (Insn.Op_imm (Insn.ADD, 0, 0, 0L)) pc m.Mach.pc) with
            trap = Some { Iss.Interp.exc; tval };
          }
    | None -> (
        try
          if not (Int64.equal t.cur_pc pc) then begin
            let b = lookup_or_compile t pc in
            t.cur <- b;
            t.cur_ix <- 0;
            t.cur_pc <- pc
          end;
          let b = t.cur in
          let ix = t.cur_ix in
          let insn = Array.unsafe_get b.b_insns ix in
          (* stay on the block while execution is straight-line ([b]
             may have been flushed by the instruction itself -- the
             physical-equality check drops the cursor then) *)
          let straight = Int64.add pc 4L in
          let advance () =
            if ix + 1 < Array.length b.b_insns && t.cur == b then begin
              t.cur_ix <- ix + 1;
              t.cur_pc <- straight
            end
            else invalidate_cursor t
          in
          let c =
            match Array.unsafe_get b.b_ops ix with
            | O_straight f ->
                f ();
                m.Mach.pc <- straight;
                advance ();
                commit_plain insn pc straight
            | O_jump (g, ic) ->
                let next = g pc in
                m.Mach.pc <- next;
                (if Int64.equal next straight then advance ()
                 else if t.mega then link_jump t ic next
                 else invalidate_cursor t);
                commit_plain insn pc next
            | O_slow ->
                let c = exec_commit t pc insn in
                if
                  Int64.equal m.Mach.pc straight
                  && ix + 1 < Array.length b.b_insns
                  && t.cur == b
                then begin
                  t.cur_ix <- ix + 1;
                  t.cur_pc <- straight
                end
                else invalidate_cursor t;
                c
          in
          finish t c
        with Trap.Exception (exc, tval) ->
          Mach.take_trap m exc tval ~epc:pc;
          invalidate_cursor t;
          finish t
            {
              (commit_plain (Insn.Illegal 0l) pc m.Mach.pc) with
              trap = Some { Iss.Interp.exc; tval };
            })
  end

(* --- architectural-state diff ------------------------------------------ *)

(* DUT-vs-REF comparison in exactly the [Riscv.Arch_state.diff]
   message format, so failures read the same whichever REF is
   active. *)
let diff_against t (dut : Arch_state.t) : string option =
  let m = t.m in
  let buf = ref None in
  let note msg = if !buf = None then buf := Some msg in
  if dut.Arch_state.pc <> m.Mach.pc then
    note (Printf.sprintf "pc: 0x%Lx vs 0x%Lx" dut.Arch_state.pc m.Mach.pc);
  for i = 1 to 31 do
    let rv = Bigarray.Array1.get m.Mach.regs i in
    if !buf = None && dut.Arch_state.regs.(i) <> rv then
      note
        (Printf.sprintf "x%d(%s): 0x%Lx vs 0x%Lx" i (Insn.reg_name i)
           dut.Arch_state.regs.(i) rv)
  done;
  for i = 0 to 31 do
    let fv = Bigarray.Array1.get m.Mach.fregs i in
    if !buf = None && dut.Arch_state.fregs.(i) <> fv then
      note (Printf.sprintf "f%d: 0x%Lx vs 0x%Lx" i dut.Arch_state.fregs.(i) fv)
  done;
  if !buf = None then begin
    let da = Csr.compare_digest dut.Arch_state.csr
    and db = Csr.compare_digest m.Mach.csr in
    List.iter2
      (fun (name, va) (_, vb) ->
        if !buf = None && va <> vb then
          note (Printf.sprintf "csr %s: 0x%Lx vs 0x%Lx" name va vb))
      da db
  end;
  !buf

(* Standalone run loop (bench + conformance tests): retire up to
   [max_insns] instructions, returning how many actually retired. *)
let run ?(max_insns = 1_000_000_000) (t : t) : int =
  let rec go n =
    if n >= max_insns then n
    else
      match step t with
      | Iss.Interp.Exited -> n
      | Iss.Interp.Committed _ -> go (n + 1)
  in
  go 0
