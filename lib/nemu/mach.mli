(** Lightweight machine state shared by all interpreter engines (NEMU
    and the Spike / QEMU-TCI / Dromajo baselines).

    The integer register file has 33 slots: slot 32 ({!sink}) is an
    unused variable.  NEMU's compiler redirects writes whose
    destination is x0 to the sink so execution routines never need an
    [if rd <> 0] check (paper §III-D1b); the baseline engines use the
    same register file with the traditional check.

    Register files are Bigarrays so int64 register writes are unboxed
    plain stores (no allocation, no GC write barrier).

    [Mach] also hosts the engines' host TLB: direct-mapped
    VPN->page-base caches (one per access kind, partitioned by
    privilege) consulted before the full Sv39 walk.  Plain privilege
    switches (trap entry/return) go through
    {!take_trap}/{!take_irq}/{!sync_priv}, which just retarget the
    active partition; events that can remap pages or change
    permissions (sfence.vma, satp/mstatus/sstatus writes) must go
    through {!sync_translation}, which also flushes, so the TLB and
    the cached {!field-paging} flag stay coherent. *)

open Riscv

type regfile =
  (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  regs : regfile; (** 33 entries; slot 32 is the x0 write sink *)
  fregs : regfile;
  mutable pc : int64;
  csr : Csr.t;
  plat : Platform.t;
  mutable reservation : int64 option;
  mutable instret : int;
  mutable running : bool;
  mutable paging : bool;
      (** cached [paging_on]; kept in sync by {!sync_priv} *)
  mutable tlb_off : int;
      (** active privilege's TLB partition offset (0 = U, 3 x size = S) *)
  tlb_tags : int64 array;
  tlb_base : int64 array;
}

val sink : int

val create : ?dram_size:int -> ?hartid:int -> unit -> t

val load_program : t -> Asm.program -> unit

val get_reg : t -> int -> int64

val set_reg : t -> int -> int64 -> unit

val exited : t -> bool

val exit_code : t -> int option

val paging_on : t -> bool
(** Recomputed from the CSR file (slow); engines read the cached
    [paging] field instead. *)

val translate : t -> int64 -> Iss.Mmu.access -> int64

(** {1 Host TLB} *)

val tlb_fetch : int
val tlb_load : int
val tlb_store : int

val tlb_lookup : t -> int -> int64 -> int64
(** [tlb_lookup t kind va] is the physical address, or [Int64.min_int]
    on a miss. *)

val tlb_fill : t -> int -> int64 -> int64 -> unit
(** [tlb_fill t kind va pa].  Only fill with DRAM-backed [pa]. *)

val tlb_flush : t -> unit

val sync_priv : t -> unit
(** Recompute the cached [paging] flag and retarget the TLB partition
    after a privilege change; does not flush. *)

val sync_translation : t -> unit
(** {!sync_priv} plus a full TLB flush.  Must be called after any
    satp/mstatus/sstatus write or sfence.vma. *)

val take_trap : t -> Trap.exc -> int64 -> epc:int64 -> unit
(** Architectural trap entry (sets [pc]) plus {!sync_priv}. *)

val take_irq : t -> Trap.irq -> unit
(** Interrupt entry at [epc = pc], plus {!sync_priv}. *)

val check_running : t -> unit
(** Fold the platform's exit flag into [running]. *)

val arch_state_digest : t -> int64 * int64 array * int64 array
