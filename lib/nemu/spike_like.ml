(* Baseline engine modelled on Spike: a direct-mapped software decode
   cache indexed by PC (so different addresses can conflict and force
   re-decode, unlike NEMU's trace-organised cache), generic dispatch on
   the decoded AST, and SoftFloat arithmetic for floating point --
   which is why this engine, like Spike, is slower on FP-heavy
   workloads (§III-D2). *)

let name = "spike-like"

type t = {
  tags : int64 array; (* -1L = invalid *)
  insns : Riscv.Insn.t array;
  size : int; (* power of two *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(size = 16384) () =
  assert (size land (size - 1) = 0);
  {
    tags = Array.make size (-1L);
    insns = Array.make size (Riscv.Insn.Illegal 0l);
    size;
    hits = 0;
    misses = 0;
  }

let step (c : t) (m : Mach.t) : unit =
  let pc = m.Mach.pc in
  (try
     let idx = Int64.to_int (Int64.shift_right_logical pc 2) land (c.size - 1) in
     let insn =
       if c.tags.(idx) = pc then begin
         c.hits <- c.hits + 1;
         c.insns.(idx)
       end
       else begin
         c.misses <- c.misses + 1;
         let insn = Exec_generic.fetch_decode m in
         c.tags.(idx) <- pc;
         c.insns.(idx) <- insn;
         insn
       end
     in
     Exec_generic.exec Exec_generic.soft_fp m pc insn
   with Riscv.Trap.Exception (exc, tval) -> Mach.take_trap m exc tval ~epc:pc);
  m.Mach.instret <- m.Mach.instret + 1

let run ?(size = 16384) (m : Mach.t) ~max_insns : int =
  let c = create ~size () in
  let start = m.Mach.instret in
  while m.Mach.running && m.Mach.instret - start < max_insns do
    step c m;
    if m.Mach.instret land 0xFFF = 0 then Mach.check_running m
  done;
  Mach.check_running m;
  m.Mach.instret - start
