(* Control and status registers, privilege modes, and the machine CSR
   file shared by the reference model and the DUT's architectural
   commit state.

   Only the CSRs the workloads and the micro-kernel need are
   implemented; unknown CSR numbers read as illegal.  WARL masking is
   deliberately simple but *identical* between REF and DUT, matching
   the paper's observation that most machine-mode diff-rules concern
   read/written CSR values (we demonstrate those rules on the
   genuinely non-deterministic CSRs: time, cycle, instret, mip). *)

type priv = U | S | M [@@deriving show { with_path = false }, eq, ord]

let priv_level = function U -> 0 | S -> 1 | M -> 3

(* CSR addresses *)
let fflags = 0x001
let frm = 0x002
let fcsr = 0x003
let sstatus = 0x100
let sie = 0x104
let stvec = 0x105
let scounteren = 0x106
let sscratch = 0x140
let sepc = 0x141
let scause = 0x142
let stval = 0x143
let sip = 0x144
let satp = 0x180
let mstatus = 0x300
let misa = 0x301
let medeleg = 0x302
let mideleg = 0x303
let mie = 0x304
let mtvec = 0x305
let mcounteren = 0x306
let mscratch = 0x340
let mepc = 0x341
let mcause = 0x342
let mtval = 0x343
let mip = 0x344
let mcycle = 0xB00
let minstret = 0xB02
let cycle = 0xC00
let time = 0xC01
let instret = 0xC02
let mvendorid = 0xF11
let marchid = 0xF12
let mimpid = 0xF13
let mhartid = 0xF14

(* mstatus bit positions *)
let st_sie = 1
let st_mie = 3
let st_spie = 5
let st_mpie = 7
let st_spp = 8
let st_mpp_lo = 11
let st_fs_lo = 13
let st_sum = 18
let st_mxr = 19

let bit n = Int64.shift_left 1L n

let get_bit v n = Int64.logand (Int64.shift_right_logical v n) 1L <> 0L

let set_bit v n b =
  if b then Int64.logor v (bit n) else Int64.logand v (Int64.lognot (bit n))

let get_field v lo width =
  Int64.to_int
    (Int64.logand
       (Int64.shift_right_logical v lo)
       (Int64.of_int ((1 lsl width) - 1)))

let set_field v lo width f =
  let mask = Int64.shift_left (Int64.of_int ((1 lsl width) - 1)) lo in
  Int64.logor
    (Int64.logand v (Int64.lognot mask))
    (Int64.logand (Int64.shift_left (Int64.of_int f) lo) mask)

(* Interrupt bit positions in mip/mie *)
let ip_ssip = 1
let ip_msip = 3
let ip_stip = 5
let ip_mtip = 7
let ip_seip = 9
let ip_meip = 11

type t = {
  mutable priv : priv;
  mutable reg_mstatus : int64;
  mutable reg_misa : int64;
  mutable reg_medeleg : int64;
  mutable reg_mideleg : int64;
  mutable reg_mie : int64;
  mutable reg_mtvec : int64;
  mutable reg_mscratch : int64;
  mutable reg_mepc : int64;
  mutable reg_mcause : int64;
  mutable reg_mtval : int64;
  mutable reg_mip : int64;
  mutable reg_mcycle : int64;
  mutable reg_minstret : int64;
  mutable reg_mcounteren : int64;
  mutable reg_scounteren : int64;
  mutable reg_stvec : int64;
  mutable reg_sscratch : int64;
  mutable reg_sepc : int64;
  mutable reg_scause : int64;
  mutable reg_stval : int64;
  mutable reg_satp : int64;
  mutable reg_fflags : int64;
  mutable reg_frm : int64;
  hartid : int64;
  mutable time_source : unit -> int64;
      (* reads the CLINT mtime; a non-deterministic source handled by a
         diff-rule in DiffTest *)
}

let create ~hartid =
  {
    priv = M;
    reg_mstatus = 0L;
    (* RV64 ACDFIMSU *)
    reg_misa =
      Int64.logor
        (Int64.shift_left 2L 62)
        (Int64.of_int
           ((1 lsl 0) lor (1 lsl 2) lor (1 lsl 3) lor (1 lsl 5) lor (1 lsl 8)
          lor (1 lsl 12) lor (1 lsl 18) lor (1 lsl 20)));
    reg_medeleg = 0L;
    reg_mideleg = 0L;
    reg_mie = 0L;
    reg_mtvec = 0L;
    reg_mscratch = 0L;
    reg_mepc = 0L;
    reg_mcause = 0L;
    reg_mtval = 0L;
    reg_mip = 0L;
    reg_mcycle = 0L;
    reg_minstret = 0L;
    reg_mcounteren = 0xFFFFFFFFL;
    reg_scounteren = 0xFFFFFFFFL;
    reg_stvec = 0L;
    reg_sscratch = 0L;
    reg_sepc = 0L;
    reg_scause = 0L;
    reg_stval = 0L;
    reg_satp = 0L;
    reg_fflags = 0L;
    reg_frm = 0L;
    hartid = Int64.of_int hartid;
    time_source = (fun () -> 0L);
  }

let copy t = { t with priv = t.priv }

(* Restore every mutable field of [dst] from [src] (typically a
   pristine [copy] taken right after reset).  [hartid] is immutable
   and [time_source] is a closure over the live platform, so both are
   left alone: a restored CSR file keeps reading the *current*
   machine's CLINT. *)
let restore dst src =
  dst.priv <- src.priv;
  dst.reg_mstatus <- src.reg_mstatus;
  dst.reg_misa <- src.reg_misa;
  dst.reg_medeleg <- src.reg_medeleg;
  dst.reg_mideleg <- src.reg_mideleg;
  dst.reg_mie <- src.reg_mie;
  dst.reg_mtvec <- src.reg_mtvec;
  dst.reg_mscratch <- src.reg_mscratch;
  dst.reg_mepc <- src.reg_mepc;
  dst.reg_mcause <- src.reg_mcause;
  dst.reg_mtval <- src.reg_mtval;
  dst.reg_mip <- src.reg_mip;
  dst.reg_mcycle <- src.reg_mcycle;
  dst.reg_minstret <- src.reg_minstret;
  dst.reg_mcounteren <- src.reg_mcounteren;
  dst.reg_scounteren <- src.reg_scounteren;
  dst.reg_stvec <- src.reg_stvec;
  dst.reg_sscratch <- src.reg_sscratch;
  dst.reg_sepc <- src.reg_sepc;
  dst.reg_scause <- src.reg_scause;
  dst.reg_stval <- src.reg_stval;
  dst.reg_satp <- src.reg_satp;
  dst.reg_fflags <- src.reg_fflags;
  dst.reg_frm <- src.reg_frm

(* sstatus is a restricted view of mstatus *)
let sstatus_mask =
  Int64.logor (bit st_sie)
    (Int64.logor (bit st_spie)
       (Int64.logor (bit st_spp)
          (Int64.logor
             (Int64.logor (bit st_sum) (bit st_mxr))
             (Int64.shift_left 3L st_fs_lo))))

(* Bits of mip writable by software via the mip CSR *)
let mip_write_mask =
  Int64.logor (bit ip_ssip) (Int64.logor (bit ip_stip) (bit ip_seip))

let sip_mask = Int64.logor (bit ip_ssip) (Int64.logor (bit ip_stip) (bit ip_seip))

let min_priv_of_addr addr = (addr lsr 8) land 0x3

let readable t addr = priv_level t.priv >= min_priv_of_addr addr

let writable t addr =
  priv_level t.priv >= min_priv_of_addr addr && (addr lsr 10) land 0x3 <> 0x3

exception Illegal_csr of int

let read t addr =
  if not (readable t addr) then raise (Illegal_csr addr);
  if addr = fflags then t.reg_fflags
  else if addr = frm then t.reg_frm
  else if addr = fcsr then
    Int64.logor (Int64.shift_left t.reg_frm 5) t.reg_fflags
  else if addr = sstatus then Int64.logand t.reg_mstatus sstatus_mask
  else if addr = sie then Int64.logand t.reg_mie t.reg_mideleg
  else if addr = stvec then t.reg_stvec
  else if addr = scounteren then t.reg_scounteren
  else if addr = sscratch then t.reg_sscratch
  else if addr = sepc then t.reg_sepc
  else if addr = scause then t.reg_scause
  else if addr = stval then t.reg_stval
  else if addr = sip then Int64.logand t.reg_mip t.reg_mideleg
  else if addr = satp then t.reg_satp
  else if addr = mstatus then t.reg_mstatus
  else if addr = misa then t.reg_misa
  else if addr = medeleg then t.reg_medeleg
  else if addr = mideleg then t.reg_mideleg
  else if addr = mie then t.reg_mie
  else if addr = mtvec then t.reg_mtvec
  else if addr = mcounteren then t.reg_mcounteren
  else if addr = mscratch then t.reg_mscratch
  else if addr = mepc then t.reg_mepc
  else if addr = mcause then t.reg_mcause
  else if addr = mtval then t.reg_mtval
  else if addr = mip then t.reg_mip
  else if addr = mcycle || addr = cycle then t.reg_mcycle
  else if addr = minstret || addr = instret then t.reg_minstret
  else if addr = time then t.time_source ()
  else if addr = mvendorid then 0L
  else if addr = marchid then 0x4D494E4AL (* "MINJ" *)
  else if addr = mimpid then 1L
  else if addr = mhartid then t.hartid
  else raise (Illegal_csr addr)

let mstatus_write_mask =
  List.fold_left
    (fun acc b -> Int64.logor acc (bit b))
    (Int64.shift_left 3L st_mpp_lo)
    [ st_sie; st_mie; st_spie; st_mpie; st_spp; st_sum; st_mxr ]
  |> Int64.logor (Int64.shift_left 3L st_fs_lo)

let write t addr v =
  if not (writable t addr) then raise (Illegal_csr addr);
  if addr = fflags then t.reg_fflags <- Int64.logand v 0x1FL
  else if addr = frm then t.reg_frm <- Int64.logand v 0x7L
  else if addr = fcsr then begin
    t.reg_fflags <- Int64.logand v 0x1FL;
    t.reg_frm <- Int64.logand (Int64.shift_right_logical v 5) 0x7L
  end
  else if addr = sstatus then
    t.reg_mstatus <-
      Int64.logor
        (Int64.logand t.reg_mstatus (Int64.lognot sstatus_mask))
        (Int64.logand v sstatus_mask)
  else if addr = sie then
    t.reg_mie <-
      Int64.logor
        (Int64.logand t.reg_mie (Int64.lognot t.reg_mideleg))
        (Int64.logand v t.reg_mideleg)
  else if addr = stvec then t.reg_stvec <- Int64.logand v (Int64.lognot 2L)
  else if addr = scounteren then t.reg_scounteren <- v
  else if addr = sscratch then t.reg_sscratch <- v
  else if addr = sepc then t.reg_sepc <- Int64.logand v (Int64.lognot 1L)
  else if addr = scause then t.reg_scause <- v
  else if addr = stval then t.reg_stval <- v
  else if addr = sip then
    t.reg_mip <-
      Int64.logor
        (Int64.logand t.reg_mip (Int64.lognot (Int64.logand sip_mask t.reg_mideleg)))
        (Int64.logand v (Int64.logand sip_mask t.reg_mideleg))
  else if addr = satp then begin
    (* Only mode 0 (bare) and 8 (Sv39) are supported. *)
    let mode = get_field v 60 4 in
    if mode = 0 || mode = 8 then t.reg_satp <- v
  end
  else if addr = mstatus then
    t.reg_mstatus <-
      Int64.logor
        (Int64.logand t.reg_mstatus (Int64.lognot mstatus_write_mask))
        (Int64.logand v mstatus_write_mask)
  else if addr = misa then () (* WARL: fixed *)
  else if addr = medeleg then t.reg_medeleg <- Int64.logand v 0xFFFFL
  else if addr = mideleg then
    t.reg_mideleg <-
      Int64.logand v
        (Int64.logor (bit ip_ssip) (Int64.logor (bit ip_stip) (bit ip_seip)))
  else if addr = mie then
    t.reg_mie <-
      Int64.logand v
        (List.fold_left
           (fun acc b -> Int64.logor acc (bit b))
           0L
           [ ip_ssip; ip_msip; ip_stip; ip_mtip; ip_seip; ip_meip ])
  else if addr = mtvec then t.reg_mtvec <- Int64.logand v (Int64.lognot 2L)
  else if addr = mcounteren then t.reg_mcounteren <- v
  else if addr = mscratch then t.reg_mscratch <- v
  else if addr = mepc then t.reg_mepc <- Int64.logand v (Int64.lognot 1L)
  else if addr = mcause then t.reg_mcause <- v
  else if addr = mtval then t.reg_mtval <- v
  else if addr = mip then
    t.reg_mip <-
      Int64.logor
        (Int64.logand t.reg_mip (Int64.lognot mip_write_mask))
        (Int64.logand v mip_write_mask)
  else if addr = mcycle then t.reg_mcycle <- v
  else if addr = minstret then t.reg_minstret <- v
  else raise (Illegal_csr addr)

(* Set/clear interrupt-pending bits driven by devices (CLINT). *)
let set_mip_bit t n b = t.reg_mip <- set_bit t.reg_mip n b

(* Architectural-state digest used by DiffTest for CSR comparison. *)
let compare_digest t =
  [
    ("priv", Int64.of_int (priv_level t.priv));
    ("mstatus", t.reg_mstatus);
    ("mepc", t.reg_mepc);
    ("mcause", t.reg_mcause);
    ("mtval", t.reg_mtval);
    ("mtvec", t.reg_mtvec);
    ("mscratch", t.reg_mscratch);
    ("medeleg", t.reg_medeleg);
    ("mideleg", t.reg_mideleg);
    ("mie", t.reg_mie);
    ("sepc", t.reg_sepc);
    ("scause", t.reg_scause);
    ("stval", t.reg_stval);
    ("stvec", t.reg_stvec);
    ("sscratch", t.reg_sscratch);
    ("satp", t.reg_satp);
  ]
