(** Paged physical memory with copy-on-write snapshots.

    The software analogue of a Linux process address space: a snapshot
    copies only the page table (like [fork] copying the PCB and page
    tables) and marks every page shared; the first write to a shared
    page performs a lazy copy (a COW fault, counted in {!stats}).
    LightSSS builds its fork-style snapshots on this module; the SSS
    baseline deliberately deep-copies instead.

    Pages are allocated lazily: memory that has never been written
    reads as zero and costs nothing to snapshot.

    Common-width accesses resolve to a single
    [Bytes.get/set_int64_le]-family primitive on the page's backing
    store, with a one-entry last-page cache (separate read/write) that
    skips page-table indexing on sequential access.

    The representation is exposed because LightSSS detaches/reattaches
    the page array around marshalling; treat the fields as read-only
    elsewhere. *)

type page = { mutable data : Bytes.t; mutable rc : int }

type t = {
  base : int64;
  page_bits : int;
  n_pages : int;
  mutable pages : page option array;
  zero : Bytes.t;
  mutable cache_r_idx : int;
  mutable cache_r_data : Bytes.t;
  mutable cache_w_idx : int;
  mutable cache_w_data : Bytes.t;
  mutable stat_cow_faults : int;
  mutable stat_pages_allocated : int;
  mutable stat_snapshots : int;
}

type snapshot

val create : ?page_bits:int -> base:int64 -> size:int -> unit -> t
(** [page_bits] defaults to 12 (4 KiB pages). *)

val size : t -> int

val base : t -> int64

val in_range : t -> int64 -> bool

val page_size : t -> int

val invalidate_caches : t -> unit
(** Drop the last-page caches.  Required after mutating [pages] or a
    page's [data] field directly (LightSSS detach/reattach). *)

(** {1 Access}

    Multi-byte accessors are little-endian and may straddle page
    boundaries.  All raise [Invalid_argument] out of range. *)

val read_u8 : t -> int64 -> int
val write_u8 : t -> int64 -> int -> unit
val read_u16 : t -> int64 -> int
val write_u16 : t -> int64 -> int -> unit
val read_u32 : t -> int64 -> int
val write_u32 : t -> int64 -> int -> unit
val read_u64 : t -> int64 -> int64
val write_u64 : t -> int64 -> int64 -> unit

val read_page : t -> int -> Bytes.t
(** [read_page t idx] is page [idx]'s backing store for reading (the
    shared zero page if unallocated), refreshing the read cache.
    Exported so interpreter fast paths can probe
    [cache_r_idx]/[cache_r_data] inline and only call out on a miss. *)

val write_page : t -> int -> Bytes.t
(** [write_page t idx] is page [idx]'s backing store for writing,
    allocating / COW-resolving on demand and refreshing the write
    cache. *)

val read_bytes_le : t -> int64 -> int -> int64
(** [read_bytes_le t addr n] reads [n] (<= 8) bytes. *)

val write_bytes_le : t -> int64 -> int -> int64 -> unit

val load_program : t -> addr:int64 -> int32 array -> unit

(** {1 Snapshots} *)

val snapshot : t -> snapshot
(** O(page-table): copies the page array and bumps refcounts. *)

val restore : t -> snapshot -> unit
(** Point [t] back at the snapshot's pages.  The snapshot remains
    valid and can be restored again. *)

val release_snapshot : snapshot -> unit
(** Drop the snapshot's page references. *)

val deep_copy : t -> t
(** O(memory): the SSS baseline. *)

(** {1 Statistics} *)

val allocated_pages : t -> int

type stats = { cow_faults : int; pages_allocated : int; snapshots : int }

val stats : t -> stats

val reset_stats : t -> unit
