(* Paged physical memory with copy-on-write snapshots.

   This is the software analogue of a Linux process address space: a
   snapshot copies only the page table (like [fork] copying the PCB and
   page tables) and marks every page shared; the first write to a
   shared page copies it (a COW fault).  LightSSS builds its
   fork()-style snapshots on top of this module, and the SSS baseline
   deliberately bypasses it with a full image copy.

   Pages are allocated lazily: a page that has never been written reads
   as zero and costs nothing to snapshot.

   The access paths are the interpreter engines' memory fast path: the
   common widths go through [Bytes.get/set_int64_le]-family primitives
   rather than byte-at-a-time assembly, and a one-entry last-page cache
   (separate for reads and writes) skips the page-table indexing on
   sequential access.  The caches are invalidated whenever the page
   array or a page's backing store changes (COW, snapshot restore). *)

type page = { mutable data : Bytes.t; mutable rc : int }

type t = {
  base : int64; (* physical base address *)
  page_bits : int;
  n_pages : int;
  mutable pages : page option array;
  zero : Bytes.t; (* shared read view of never-written pages *)
  (* last-page caches: [cache_*_idx] = -1 when invalid *)
  mutable cache_r_idx : int;
  mutable cache_r_data : Bytes.t;
  mutable cache_w_idx : int;
  mutable cache_w_data : Bytes.t;
  (* statistics *)
  mutable stat_cow_faults : int;
  mutable stat_pages_allocated : int;
  mutable stat_snapshots : int;
}

type snapshot = { snap_pages : page option array }

let page_size t = 1 lsl t.page_bits

let create ?(page_bits = 12) ~base ~size () =
  let psz = 1 lsl page_bits in
  let n_pages = (size + psz - 1) / psz in
  {
    base;
    page_bits;
    n_pages;
    pages = Array.make n_pages None;
    zero = Bytes.make psz '\000';
    cache_r_idx = -1;
    cache_r_data = Bytes.empty;
    cache_w_idx = -1;
    cache_w_data = Bytes.empty;
    stat_cow_faults = 0;
    stat_pages_allocated = 0;
    stat_snapshots = 0;
  }

let size t = t.n_pages * page_size t

let base t = t.base

let in_range t addr =
  let off = Int64.sub addr t.base in
  off >= 0L && off < Int64.of_int (size t)

(* Also drops the [Bytes.t] references so a detached [t] (LightSSS
   marshalling) does not smuggle page data into the image. *)
let invalidate_caches t =
  t.cache_r_idx <- -1;
  t.cache_r_data <- Bytes.empty;
  t.cache_w_idx <- -1;
  t.cache_w_data <- Bytes.empty

let offset_exn t addr =
  let off = Int64.to_int (Int64.sub addr t.base) in
  if off < 0 || off >= size t then
    invalid_arg
      (Printf.sprintf "Memory: physical address 0x%Lx out of range" addr);
  off

(* Read path: never allocates.  Unallocated pages read from the shared
   zero page (which is never cached nor written). *)
let read_page t idx =
  if idx = t.cache_r_idx then t.cache_r_data
  else
    match Array.unsafe_get t.pages idx with
    | Some p ->
        t.cache_r_idx <- idx;
        t.cache_r_data <- p.data;
        p.data
    | None -> t.zero

(* Write path: allocate on demand and resolve COW sharing. *)
let page_rw t idx =
  match t.pages.(idx) with
  | None ->
      let p = { data = Bytes.make (page_size t) '\000'; rc = 1 } in
      t.pages.(idx) <- Some p;
      t.stat_pages_allocated <- t.stat_pages_allocated + 1;
      p
  | Some p ->
      if p.rc > 1 then begin
        let fresh = { data = Bytes.copy p.data; rc = 1 } in
        p.rc <- p.rc - 1;
        t.pages.(idx) <- Some fresh;
        t.stat_cow_faults <- t.stat_cow_faults + 1;
        (* the old bytes stop receiving writes: drop any cached view *)
        if t.cache_r_idx = idx then t.cache_r_idx <- -1;
        fresh
      end
      else p

let write_page t idx =
  if idx = t.cache_w_idx then t.cache_w_data
  else begin
    let p = page_rw t idx in
    t.cache_w_idx <- idx;
    t.cache_w_data <- p.data;
    p.data
  end

let read_u8 t addr =
  let off = offset_exn t addr in
  Char.code
    (Bytes.unsafe_get
       (read_page t (off lsr t.page_bits))
       (off land (page_size t - 1)))

let write_u8 t addr v =
  let off = offset_exn t addr in
  Bytes.unsafe_set
    (write_page t (off lsr t.page_bits))
    (off land (page_size t - 1))
    (Char.chr (v land 0xFF))

(* Single-page fast paths for the common widths (a naturally aligned
   access never straddles a page); accesses that do straddle fall back
   to byte-by-byte. *)

let read_bytes_slow t addr n =
  let rec go acc i =
    if i < 0 then acc
    else
      go
        (Int64.logor
           (Int64.shift_left acc 8)
           (Int64.of_int (read_u8 t (Int64.add addr (Int64.of_int i)))))
        (i - 1)
  in
  go 0L (n - 1)

let write_bytes_slow t addr n v =
  for i = 0 to n - 1 do
    write_u8 t
      (Int64.add addr (Int64.of_int i))
      (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF)
  done

let read_u64 t addr =
  let off = offset_exn t addr in
  let poff = off land (page_size t - 1) in
  if poff + 8 <= page_size t then
    Bytes.get_int64_le (read_page t (off lsr t.page_bits)) poff
  else read_bytes_slow t addr 8

let read_u32 t addr =
  let off = offset_exn t addr in
  let poff = off land (page_size t - 1) in
  if poff + 4 <= page_size t then
    Int32.to_int (Bytes.get_int32_le (read_page t (off lsr t.page_bits)) poff)
    land 0xFFFFFFFF
  else Int64.to_int (read_bytes_slow t addr 4)

let read_u16 t addr =
  let off = offset_exn t addr in
  let poff = off land (page_size t - 1) in
  if poff + 2 <= page_size t then
    Bytes.get_uint16_le (read_page t (off lsr t.page_bits)) poff
  else Int64.to_int (read_bytes_slow t addr 2)

let write_u64 t addr v =
  let off = offset_exn t addr in
  let poff = off land (page_size t - 1) in
  if poff + 8 <= page_size t then
    Bytes.set_int64_le (write_page t (off lsr t.page_bits)) poff v
  else write_bytes_slow t addr 8 v

let write_u32 t addr v =
  let off = offset_exn t addr in
  let poff = off land (page_size t - 1) in
  if poff + 4 <= page_size t then
    Bytes.set_int32_le
      (write_page t (off lsr t.page_bits))
      poff (Int32.of_int v)
  else write_bytes_slow t addr 4 (Int64.of_int (v land 0xFFFFFFFF))

let write_u16 t addr v =
  let off = offset_exn t addr in
  let poff = off land (page_size t - 1) in
  if poff + 2 <= page_size t then
    Bytes.set_uint16_le (write_page t (off lsr t.page_bits)) poff (v land 0xFFFF)
  else write_bytes_slow t addr 2 (Int64.of_int (v land 0xFFFF))

let read_bytes_le t addr n =
  match n with
  | 8 -> read_u64 t addr
  | 4 -> Int64.of_int (read_u32 t addr)
  | 2 -> Int64.of_int (read_u16 t addr)
  | 1 -> Int64.of_int (read_u8 t addr)
  | _ ->
      ignore (offset_exn t addr);
      read_bytes_slow t addr n

let write_bytes_le t addr n v =
  match n with
  | 8 -> write_u64 t addr v
  | 4 -> write_u32 t addr (Int64.to_int v land 0xFFFFFFFF)
  | 2 -> write_u16 t addr (Int64.to_int v land 0xFFFF)
  | 1 -> write_u8 t addr (Int64.to_int v land 0xFF)
  | _ ->
      ignore (offset_exn t addr);
      write_bytes_slow t addr n v

let load_program t ~addr (words : int32 array) =
  Array.iteri
    (fun i w ->
      write_u32 t
        (Int64.add addr (Int64.of_int (4 * i)))
        (Int32.to_int w land 0xFFFFFFFF))
    words

(* --- Snapshots ------------------------------------------------------ *)

let snapshot t =
  Array.iter (function Some p -> p.rc <- p.rc + 1 | None -> ()) t.pages;
  t.stat_snapshots <- t.stat_snapshots + 1;
  (* shared pages must COW on the next write *)
  t.cache_w_idx <- -1;
  { snap_pages = Array.copy t.pages }

let release_snapshot (s : snapshot) =
  Array.iter (function Some p -> p.rc <- p.rc - 1 | None -> ()) s.snap_pages

let restore t (s : snapshot) =
  (* The snapshot keeps its reference so it can be restored again. *)
  Array.iter (function Some p -> p.rc <- p.rc - 1 | None -> ()) t.pages;
  Array.iter (function Some p -> p.rc <- p.rc + 1 | None -> ()) s.snap_pages;
  t.pages <- Array.copy s.snap_pages;
  invalidate_caches t

(* Full deep copy: the SSS baseline. O(memory) rather than O(page table). *)
let deep_copy t =
  {
    t with
    pages =
      Array.map
        (function
          | None -> None
          | Some p -> Some { data = Bytes.copy p.data; rc = 1 })
        t.pages;
    cache_r_idx = -1;
    cache_r_data = Bytes.empty;
    cache_w_idx = -1;
    cache_w_data = Bytes.empty;
  }

let allocated_pages t =
  Array.fold_left (fun n p -> match p with Some _ -> n + 1 | None -> n) 0 t.pages

type stats = { cow_faults : int; pages_allocated : int; snapshots : int }

let stats t =
  {
    cow_faults = t.stat_cow_faults;
    pages_allocated = t.stat_pages_allocated;
    snapshots = t.stat_snapshots;
  }

let reset_stats t =
  t.stat_cow_faults <- 0;
  t.stat_pages_allocated <- 0;
  t.stat_snapshots <- 0
