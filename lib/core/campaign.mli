(** Fault-injection campaign driver: prove DRAV catches what we break.

    Every (fault, seed) cell builds the fault's designated workload and
    SoC configuration, installs the fault from the {!Fault} registry,
    and runs the full {!Workflow.run_verified} loop (fast mode +
    LightSSS snapshots, debug replay on failure).  A cell passes only
    if all three hold:

    - the run is NOT verified (an undetected fault -- an "escape" --
      is a hard campaign failure);
    - the rule that fired is one the fault declares as expected;
    - the failure reproduces in the snapshot replay, restored from at
      most two snapshot intervals before the first failure.

    The per-cell report carries the detection latency in cycles since
    the injection trigger and in commits checked, plus the replay
    window -- the numbers behind the EXPERIMENTS.md campaign table. *)

type cell = {
  c_fault : string;
  c_layer : string;
  c_workload : string;
  c_config : string;
  c_seed : int;
  c_trigger : int;
  c_detected : bool;
  c_rule : string;  (** rule that detected the fault, or "" *)
  c_rule_expected : bool;
  c_failure_cycle : int;
  c_latency_cycles : int;  (** failure cycle - trigger cycle *)
  c_commits : int;  (** commits checked when the failure fired *)
  c_msg : string;
  c_replayed : bool;  (** the replay reproduced a failure *)
  c_replay_rule : string;
  c_replay_window : int;
      (** cycles between the replayed-from snapshot and the failure *)
  c_replay_within : bool;  (** window <= 2 snapshot intervals *)
  c_ok : bool;
}

type summary = {
  cells : cell list;
  total : int;
  detected : int;
  escapes : int;
  rule_mismatches : int;
  replay_misses : int;
  snapshot_interval : int;
  resumed : int;  (** cells replayed from the journal, not recomputed *)
  retried : int;  (** supervised job re-runs (see {!Supervisor}) *)
  recovered : int;  (** failed cells that converged to a verdict *)
}

val find_workload : string -> Workloads.Wl_common.t
(** Resolve a registry workload name against the campaign catalogue
    (the full workload library plus campaign-specific variants).
    @raise Invalid_argument on an unknown name. *)

val run_cell :
  ?snapshot_interval:int ->
  ?max_cycles:int ->
  ?ref_kind:Ref_model.kind ->
  ?perf:bool ->
  fault:Fault.t ->
  seed:int ->
  unit ->
  cell

val run :
  ?faults:string list ->
  ?seeds:int list ->
  ?snapshot_interval:int ->
  ?max_cycles:int ->
  ?ref_kind:Ref_model.kind ->
  ?perf:bool ->
  ?jobs:int ->
  ?journal:string ->
  ?resume:bool ->
  ?retries:int ->
  ?timeout:float ->
  ?progress:(cell -> unit) ->
  unit ->
  summary
(** Run the campaign grid.  [faults] defaults to the full registry,
    [seeds] to [[1; 2]], [ref_kind] to {!Ref_model.kind_of_env},
    [jobs] to {!Pool.resolve_jobs} (i.e. [MINJIE_JOBS], else 1).

    With [jobs = 1] and no retry budget cells run in-process on the
    original sequential path.  Otherwise each cell is one {!Pool} job
    under {!Supervisor} supervision; cells are deterministic, so the
    parallel summary is identical to the sequential one, cell for
    cell.  A worker crash or timeout that survives the retry budget
    turns into an escape-shaped cell ([c_ok = false], the pool message
    in [c_msg]) rather than aborting the grid.  [progress] is called
    once per cell with its final verdict -- in completion order when
    parallel.

    [journal] names a {!Journal} file: every completed cell is
    appended (checksummed, fsynced) as it lands.  With
    [resume = true], cells already in a matching-key journal are
    replayed instead of recomputed and only the remainder runs; the
    merged summary is byte-identical to an uninterrupted run's,
    because cells are deterministic and merging is in grid order.
    Without [resume] an existing journal at that path is discarded.

    [retries] (default [MINJIE_RETRIES], else 0) is the supervised
    retry budget per failed cell; [timeout] is the per-cell pool
    timeout in seconds.  Failed cells are never journaled, so a resume
    also re-attempts them.

    [perf] threads through to {!Workflow.run_verified}: pipeline
    tracers are attached but cells are pure verdict data, so the
    summary is bit-identical with it on or off. *)

val string_of_cell : cell -> string
