(* Diff-rules: the DRAV abstraction (§III-A).

   A diff-rule reconciles a legal micro-architecture-dependent
   divergence between the DUT and the REF.  Rules come in two shapes:

   - [pre] rules inspect a DUT commit *before* the REF steps and may
     force an event onto the REF (exception, interrupt, SC failure) --
     these correspond to "the DUT is trusted to trigger the event and
     the REF is notified to refine its behaviour";
   - [post] rules run after the REF has stepped and may patch the REF
     (non-deterministic CSR reads, Global-Memory load values) or
     reject the commit as a real mismatch.

   Rules are data: the standard RISC-V set lives in [Rules.standard],
   and verification code can add its own on the fly, which is what
   makes one REF serve many DUTs (the N-to-1 correspondence). *)

type ctx = {
  refs : Ref_model.t array; (* one single-core REF per hart *)
  global_mem : Global_memory.t;
  soc : Xiangshan.Soc.t;
  mutable failure : failure option;
  (* guard state: repeated forced events at one pc indicate a real bug
     (paper: "tracked and asserted not to repeatedly occur") *)
  forced_history : (int * int64, int) Hashtbl.t;
}

and failure = {
  f_cycle : int;
  f_hart : int;
  f_pc : int64;
  f_rule : string;
  f_msg : string;
  f_commits : int; (* commits checked when the failure fired; -1 unknown *)
  f_probe : string; (* snapshot of the offending commit probe, or "" *)
}

type verdict = Pass | Patched | Fail of string

(* One-line snapshot of a commit probe for failure reports: pc,
   instruction, and the memory access values the DUT saw. *)
let describe_probe (p : Xiangshan.Probe.commit) : string =
  let acc tag = function
    | Some (m : Xiangshan.Probe.mem_access) ->
        Printf.sprintf " %s@0x%Lx=0x%Lx" tag m.Xiangshan.Probe.m_paddr
          m.Xiangshan.Probe.m_value
    | None -> ""
  in
  Printf.sprintf "pc=0x%Lx insn=%s next=0x%Lx%s%s"
    p.Xiangshan.Probe.p_pc
    (Riscv.Insn.show p.Xiangshan.Probe.p_insn)
    p.Xiangshan.Probe.p_next_pc
    (acc "load" p.Xiangshan.Probe.p_load)
    (acc "store" p.Xiangshan.Probe.p_store)

let string_of_failure (f : failure) : string =
  Printf.sprintf "cycle %d hart %d pc=0x%Lx [%s] %s%s" f.f_cycle f.f_hart
    f.f_pc f.f_rule f.f_msg
    (if f.f_probe = "" then "" else "; probe: " ^ f.f_probe)

type t = {
  name : string;
  descr : string;
  mutable fires : int;
  pre : (ctx -> hart:int -> Xiangshan.Probe.commit -> bool) option;
      (* returns true when the rule fired (forced an event) *)
  post :
    (ctx ->
    hart:int ->
    Xiangshan.Probe.commit ->
    Ref_model.commit ->
    verdict)
    option;
}

let fail ctx ~hart ~(probe : Xiangshan.Probe.commit) ~rule msg =
  if ctx.failure = None then
    ctx.failure <-
      Some
        {
          f_cycle = probe.Xiangshan.Probe.p_cycle;
          f_hart = hart;
          f_pc = probe.Xiangshan.Probe.p_pc;
          f_rule = rule;
          f_msg = msg;
          f_commits = -1;
          f_probe = describe_probe probe;
        }

let make ?pre ?post ~name ~descr () = { name; descr; fires = 0; pre; post }

(* Guard against livelock from repeatedly forced events at one pc. *)
let max_consecutive_forces = 200

let bump_force_guard ctx ~hart ~(probe : Xiangshan.Probe.commit) ~rule =
  let key = (hart, probe.Xiangshan.Probe.p_pc) in
  let n = Option.value (Hashtbl.find_opt ctx.forced_history key) ~default:0 in
  Hashtbl.replace ctx.forced_history key (n + 1);
  if n + 1 > max_consecutive_forces then
    fail ctx ~hart ~probe ~rule
      (Printf.sprintf "event forced %d times at the same pc (livelock?)"
         (n + 1))

let clear_force_guard ctx ~hart ~(probe : Xiangshan.Probe.commit) =
  Hashtbl.remove ctx.forced_history (hart, probe.Xiangshan.Probe.p_pc)
