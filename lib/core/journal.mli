(** Crash-safe result journaling: a checksummed, append-only
    write-ahead journal of per-cell results.

    A multi-hour campaign SIGKILLed at cell k used to lose every
    completed cell; with a journal, {!Campaign.run}[ ~resume] replays
    the completed prefix on startup and recomputes only the rest --
    and because cells are deterministic, the resumed run's final
    output is byte-identical to an uninterrupted one.

    On-disk format: an 8-byte magic, then a framed key string, then
    framed records.  Every frame is [length (4B LE) | crc32 (4B LE) |
    payload], the payload being [Marshal] bytes; each append is a
    single [write] followed by [fsync], so a crash can only ever leave
    a {e torn tail} -- never a corrupt interior.  Replay stops at the
    first frame that is short, oversized, or fails its CRC, and
    {!open_} truncates that tail away before appending resumes.  A
    missing file, foreign magic, or mismatched key starts an empty
    journal (a resume key encodes the run's identity: grid, REF,
    intervals -- so a stale journal of a different run is ignored, not
    half-applied).

    Payloads go through [Marshal], so as with {!Pool} results the
    caller must read back the same type it wrote. *)

type t

val open_ : path:string -> key:string -> t * 'a list
(** Open (or create) the journal at [path] for appending, replaying
    the valid records of a matching-key journal and truncating any
    torn tail.  Returns the writer plus the replayed records in append
    order. *)

val append : t -> 'a -> unit
(** Append one record: a single atomic frame write, fsynced before
    return.  Never raises: a write failure (ENOSPC and friends, or the
    {!Host_chaos} injector) prints one warning and degrades the
    journal to inactive -- the run continues unjournaled rather than
    aborting. *)

val active : t -> bool
(** [false] once a write failure has degraded the journal. *)

val appended : t -> int
(** Records successfully appended through this writer. *)

val sync : t -> unit
(** Re-fsync the journal fd (appends already fsync; this is for
    shutdown paths).  No-op on a degraded journal. *)

val close : t -> unit

val scan : path:string -> string option * 'a list
(** Read-only replay: the stored key (or [None] if the file is
    missing/foreign) and the valid record prefix.  Never raises on a
    torn or corrupt file and never modifies it. *)

val env_resume : unit -> bool
(** [MINJIE_RESUME]: unset, empty, ["0"] or ["false"] mean no resume;
    anything else opts in. *)

val atomic_write_file : path:string -> string -> unit
(** Write a whole file atomically: sibling temp file, fsync, rename
    over [path].  A crash mid-write leaves the old file (or no file),
    never a torn one.  Used for checkpoints, ArchDB dumps and bench
    JSON. *)

val crc32 : string -> int32
(** The CRC-32 (IEEE 802.3) used by the frame format; exposed for
    tests. *)
