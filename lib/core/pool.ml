(* Fork-based parallel simulation pool (see pool.mli).

   One forked child per job, at most [jobs] alive at once.  The child
   inherits the parent's whole heap copy-on-write -- loaded programs,
   decoded superblocks, workload caches -- so there is no per-job
   setup cost beyond the fork itself, and no result is ever shared
   back implicitly: the only channel is one pipe carrying a single
   marshalled [('r, string) result] value.

   The parent runs a select loop over the live pipes: it drains bytes
   as they arrive (a worker's write can be split across pipe-buffer
   chunks), treats EOF as job completion, reaps the child with an
   EINTR-safe waitpid, and only then decodes the buffer.  Anything
   abnormal -- non-zero exit, death by signal, short or undecodable
   buffer -- becomes that job's own [Crashed] outcome; the pool keeps
   going. *)

type 'r job = { j_label : string; j_cost : float; j_run : unit -> 'r }

type 'r outcome =
  | Done of 'r
  | Job_error of string
  | Crashed of string
  | Timed_out of float

type 'r result = {
  r_index : int;
  r_label : string;
  r_outcome : 'r outcome;
  r_seconds : float;
  r_slot : int;
}

type slot_stats = { s_jobs : int; s_seconds : float }

type stats = {
  p_workers : int;
  p_seconds : float;
  p_slots : slot_stats array;
  p_crashed : int;
  p_timed_out : int;
}

let env_jobs () =
  match Sys.getenv_opt "MINJIE_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ ->
          invalid_arg
            (Printf.sprintf "MINJIE_JOBS=%S (want a positive integer)" s))

let resolve_jobs ?jobs () =
  match jobs with
  | Some n -> max 1 n
  | None -> ( match env_jobs () with Some n -> n | None -> 1)

let host_cores () =
  try
    let ic = open_in "/proc/cpuinfo" in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.length line >= 9 && String.sub line 0 9 = "processor" then
           incr n
       done
     with End_of_file -> ());
    close_in ic;
    max 1 !n
  with Sys_error _ -> 1

let now () = Unix.gettimeofday ()

(* ---------------------------------------------------------------- *)
(* EINTR-/short-transfer-safe primitives.  Every read and write on a
   worker pipe goes through these wrappers: they retry on EINTR
   (real or synthetic -- Host_chaos raises ahead of the syscall when
   an EINTR storm is armed) and tolerate partial transfers, so a
   Marshal frame split across short writes still arrives whole.      *)
(* ---------------------------------------------------------------- *)

let rec waitpid_retry pid =
  match
    Host_chaos.pipe_io_interrupt ();
    Unix.waitpid [] pid
  with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let select_retry fds tmo =
  try
    let r, _, _ = Unix.select fds [] [] tmo in
    r
  with Unix.Unix_error (Unix.EINTR, _, _) -> []

let rec write_all fd bytes off len =
  if len > 0 then begin
    match
      Host_chaos.pipe_io_interrupt ();
      Unix.write fd bytes off (Host_chaos.clamp_write len)
    with
    | n -> write_all fd bytes (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        write_all fd bytes off len
  end

(* ---------------------------------------------------------------- *)
(* live-worker registry: every forked worker pid, so a SIGINT/SIGTERM
   shutdown handler (Supervisor.install_signal_handlers) can kill the
   whole brood and leave no orphans                                  *)
(* ---------------------------------------------------------------- *)

let live_pids : (int, unit) Hashtbl.t = Hashtbl.create 16

let live_worker_pids () = Hashtbl.fold (fun pid () acc -> pid :: acc) live_pids []

let kill_live_workers () =
  let pids = live_worker_pids () in
  List.iter
    (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
    pids;
  if pids <> [] then Unix.sleepf 0.05;
  List.iter
    (fun pid ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (* reap so the worker cannot linger as a zombie past our exit *)
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      Hashtbl.remove live_pids pid)
    pids

(* ---------------------------------------------------------------- *)
(* sequential path: jobs = 1 -- the pre-pool in-process code path    *)
(* ---------------------------------------------------------------- *)

let map_sequential ~progress jobs_list =
  let t0 = now () in
  let busy = ref 0.0 in
  let results =
    List.mapi
      (fun i j ->
        let s0 = now () in
        let outcome =
          try Done (j.j_run ())
          with e -> Job_error (Printexc.to_string e)
        in
        let secs = now () -. s0 in
        busy := !busy +. secs;
        let r =
          {
            r_index = i;
            r_label = j.j_label;
            r_outcome = outcome;
            r_seconds = secs;
            r_slot = 0;
          }
        in
        progress r;
        r)
      jobs_list
  in
  ( results,
    {
      p_workers = 1;
      p_seconds = now () -. t0;
      p_slots = [| { s_jobs = List.length jobs_list; s_seconds = !busy } |];
      p_crashed = 0;
      p_timed_out = 0;
    } )

(* ---------------------------------------------------------------- *)
(* parallel path                                                     *)
(* ---------------------------------------------------------------- *)

type 'r active = {
  a_index : int;
  a_label : string;
  a_pid : int;
  a_fd : Unix.file_descr;
  a_buf : Buffer.t;
  a_start : float;
  a_slot : int;
  mutable a_deadline : float;
  mutable a_termed : bool;  (* SIGTERM already sent *)
  mutable a_timed_out : bool;
}

(* exit code a worker uses when its Gc alarm finds the heap past the
   per-worker memory ceiling; decode_result maps it to a Crashed
   outcome that names the ceiling *)
let mem_ceiling_exit_code = 97

(* The worker body: run the job, marshal an [('r, string) result] to
   the pipe, and _exit without running the parent's at_exit chain
   (which would re-flush inherited channel buffers).  A result that
   cannot be marshalled (closures, custom blocks) is reported as the
   job's error rather than tearing the pipe mid-write. *)
let worker ~attempt ~mem_limit_mb wr job =
  (* if the parent is gone the write must fail with EPIPE (handled
     below), not kill us through the default SIGPIPE action *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* the parent's SIGINT/SIGTERM handlers (shutdown cleanup) must not
     run here: a worker dies plainly so the parent's SIGTERM->SIGKILL
     escalation works as designed *)
  Sys.set_signal Sys.sigterm Sys.Signal_default;
  Sys.set_signal Sys.sigint Sys.Signal_default;
  (* per-worker memory ceiling.  OCaml's Unix module has no setrlimit
     binding, so the ceiling is enforced cooperatively: a Gc alarm
     checks the major heap after every major collection and exits with
     a distinct code when it is past the budget.  A worker that leaks
     gets reaped as a Crashed outcome instead of OOMing the host. *)
  (match mem_limit_mb with
  | Some mb when mb > 0 ->
      let limit_words = mb * 1024 * 1024 / (Sys.word_size / 8) in
      ignore
        (Gc.create_alarm (fun () ->
             if (Gc.quick_stat ()).Gc.heap_words > limit_words then
               Unix._exit mem_ceiling_exit_code))
  | Some _ | None -> ());
  (* host-chaos worker fates (no-ops unless a chaos plan is armed) *)
  (match Host_chaos.worker_fate ~label:job.j_label ~attempt with
  | Host_chaos.Run -> ()
  | Host_chaos.Kill_before_run -> Unix.kill (Unix.getpid ()) Sys.sigkill
  | Host_chaos.Die_mid_write ->
      (* a torn result frame: a few bytes, then death mid-write *)
      let junk = Bytes.of_string "torn!" in
      (try write_all wr junk 0 (Bytes.length junk)
       with Unix.Unix_error _ -> ());
      Unix.kill (Unix.getpid ()) Sys.sigkill
  | Host_chaos.Stall secs -> Unix.sleepf secs);
  let payload =
    try Ok (job.j_run ()) with e -> Error (Printexc.to_string e)
  in
  let bytes =
    match payload with
    | Error _ -> Marshal.to_bytes payload []
    | Ok _ -> (
        try Marshal.to_bytes payload []
        with e ->
          Marshal.to_bytes
            (Error
               (Printf.sprintf "result of %S is not marshallable: %s"
                  job.j_label (Printexc.to_string e)))
            [])
  in
  (try write_all wr bytes 0 (Bytes.length bytes)
   with Unix.Unix_error _ -> () (* parent gone; nothing to report to *));
  (try Unix.close wr with Unix.Unix_error _ -> ());
  Unix._exit 0

let spawn ~timeout ~attempt ~mem_limit_mb index slot (job : 'r job) :
    'r active =
  let rd, wr = Unix.pipe () in
  (* the child inherits channel buffers; empty them first so nothing
     is printed twice *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close rd;
      worker ~attempt ~mem_limit_mb wr job
  | pid ->
      Unix.close wr;
      Unix.set_nonblock rd;
      Hashtbl.replace live_pids pid ();
      {
        a_index = index;
        a_label = job.j_label;
        a_pid = pid;
        a_fd = rd;
        a_buf = Buffer.create 4096;
        a_start = now ();
        a_slot = slot;
        a_deadline = now () +. timeout;
        a_termed = false;
        a_timed_out = false;
      }

(* Drain whatever the pipe has; true on EOF.  EINTR (real or a chaos
   storm) retries; a short read just comes back for more. *)
let drain a =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match
      Host_chaos.pipe_io_interrupt ();
      Unix.read a.a_fd chunk 0 (Bytes.length chunk)
    with
    | 0 -> true
    | n ->
        Buffer.add_subbytes a.a_buf chunk 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let decode_result (a : 'r active) status : 'r outcome =
  if a.a_timed_out then Timed_out (now () -. a.a_start)
  else
    match status with
    | Unix.WEXITED 0 -> (
        let b = Buffer.to_bytes a.a_buf in
        if Bytes.length b < Marshal.header_size then
          Crashed
            (Printf.sprintf "worker for %S returned a truncated result"
               a.a_label)
        else
          match (Marshal.from_bytes b 0 : ('r, string) Stdlib.result) with
          | Ok r -> Done r
          | Error msg -> Job_error msg
          | exception _ ->
              Crashed
                (Printf.sprintf "worker for %S returned an undecodable result"
                   a.a_label))
    | Unix.WEXITED c when c = mem_ceiling_exit_code ->
        Crashed
          (Printf.sprintf "worker for %S exceeded its memory ceiling"
             a.a_label)
    | Unix.WEXITED c ->
        Crashed (Printf.sprintf "worker for %S exited with code %d" a.a_label c)
    | Unix.WSIGNALED s ->
        Crashed (Printf.sprintf "worker for %S killed by signal %d" a.a_label s)
    | Unix.WSTOPPED s ->
        Crashed (Printf.sprintf "worker for %S stopped by signal %d" a.a_label s)

let map ?jobs ?timeout ?(kill_grace = 2.0) ?(attempt = 0) ?mem_limit_mb
    ?(isolate = false) ?(dispatch = `Longest_first) ?(progress = fun _ -> ())
    (jobs_list : 'r job list) : 'r result list * stats =
  let workers = resolve_jobs ?jobs () in
  if workers <= 1 && not isolate then map_sequential ~progress jobs_list
  else begin
    let t0 = now () in
    (* trim the heap before the first fork: children inherit every
       parent page copy-on-write, and their own GCs re-dirty whatever
       the parent left fragmented -- compacting once here is paid
       once, not once per worker *)
    Gc.compact ();
    let n = List.length jobs_list in
    let timeout = Option.value timeout ~default:infinity in
    (* longest-expected-first (ties broken by submission order), or
       plain submission order under `Fifo -- the dispatch A/B the
       scaling study measures *)
    let indexed = List.mapi (fun i j -> (i, j)) jobs_list in
    let queue =
      ref
        (match dispatch with
        | `Fifo -> indexed
        | `Longest_first ->
            List.stable_sort
              (fun (i1, j1) (i2, j2) ->
                match compare j2.j_cost j1.j_cost with
                | 0 -> compare i1 i2
                | c -> c)
              indexed)
    in
    let free = ref (List.init workers Fun.id) in
    let active = ref ([] : 'r active list) in
    let results : 'r result option array = Array.make n None in
    let slot_jobs = Array.make workers 0 in
    let slot_secs = Array.make workers 0.0 in
    let crashed = ref 0 and timed_out = ref 0 in
    let finish a =
      (try Unix.close a.a_fd with Unix.Unix_error _ -> ());
      let status = waitpid_retry a.a_pid in
      Hashtbl.remove live_pids a.a_pid;
      let secs = now () -. a.a_start in
      let outcome = decode_result a status in
      (match outcome with
      | Crashed _ -> incr crashed
      | Timed_out _ -> incr timed_out
      | Done _ | Job_error _ -> ());
      let r =
        {
          r_index = a.a_index;
          r_label = a.a_label;
          r_outcome = outcome;
          r_seconds = secs;
          r_slot = a.a_slot;
        }
      in
      results.(a.a_index) <- Some r;
      slot_jobs.(a.a_slot) <- slot_jobs.(a.a_slot) + 1;
      slot_secs.(a.a_slot) <- slot_secs.(a.a_slot) +. secs;
      active := List.filter (fun x -> x.a_pid <> a.a_pid) !active;
      free := a.a_slot :: !free;
      progress r
    in
    while !queue <> [] || !active <> [] do
      (* fill free worker slots *)
      while !queue <> [] && !free <> [] do
        match (!queue, !free) with
        | (i, j) :: qrest, slot :: frest ->
            queue := qrest;
            free := frest;
            active := spawn ~timeout ~attempt ~mem_limit_mb i slot j :: !active
        | _ -> assert false
      done;
      (* wait for output or the nearest deadline *)
      let next_deadline =
        List.fold_left (fun m a -> min m a.a_deadline) infinity !active
      in
      let tmo =
        let d = next_deadline -. now () in
        if d = infinity then 0.2 else Float.max 0.0 (Float.min 0.2 d)
      in
      let ready = select_retry (List.map (fun a -> a.a_fd) !active) tmo in
      List.iter
        (fun fd ->
          match List.find_opt (fun a -> a.a_fd = fd) !active with
          | Some a -> if drain a then finish a
          | None -> ())
        ready;
      (* timeout enforcement: TERM first, KILL after the grace period *)
      List.iter
        (fun a ->
          if now () >= a.a_deadline then
            if not a.a_termed then begin
              a.a_termed <- true;
              a.a_timed_out <- true;
              a.a_deadline <- now () +. kill_grace;
              try Unix.kill a.a_pid Sys.sigterm
              with Unix.Unix_error _ -> ()
            end
            else begin
              a.a_deadline <- infinity;
              try Unix.kill a.a_pid Sys.sigkill
              with Unix.Unix_error _ -> ()
            end)
        !active
    done;
    let results =
      Array.to_list results
      |> List.map (function
           | Some r -> r
           | None -> assert false (* every submitted job was finished *))
    in
    ( results,
      {
        p_workers = workers;
        p_seconds = now () -. t0;
        p_slots =
          Array.init workers (fun i ->
              { s_jobs = slot_jobs.(i); s_seconds = slot_secs.(i) });
        p_crashed = !crashed;
        p_timed_out = !timed_out;
      } )
  end
