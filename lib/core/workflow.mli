(** "Put it all together" (paper §III-E and the §IV-C case study):
    the MINJIE verification workflow.

    A DUT runs in fast mode under DiffTest with LightSSS taking
    periodic snapshots.  When DiffTest reports a mismatch, the older
    of the two retained snapshots is restored and at most two
    intervals are replayed with debugging enabled -- ArchDB capturing
    every commit, store drain and coherence transaction -- and the
    report carries the localisation queries (the Acquire/Probe
    overlaps of the §IV-C race). *)

type debug_report = {
  first_failure : Rule.failure;
  replay_failure : Rule.failure option;
      (** the failure as reproduced in the debug-mode replay *)
  replay_from_cycle : int;
  replay_cycles : int;
  db : Archdb.t; (** full recording of the region of interest *)
  overlaps : Archdb.overlap list; (** the §IV-C race signature *)
  drains_near_failure : Xiangshan.Probe.store_drain list;
  snapshots_taken : int;
  snapshot_seconds : float;
  replay_traces : Perf.Pipetrace.t array;
      (** with [~perf:true], per-hart pipeline trace windows around the
          failure (ring buffers restored from the snapshot and replayed
          to the failure); empty otherwise *)
}

type outcome = Verified of int (** exit code *) | Debugged of debug_report

val memories_of : Difftest.t -> Riscv.Memory.t list
(** Every COW memory a DiffTest instance owns (DUT + all REFs), in a
    stable order -- the enumeration LightSSS snapshots and restores. *)

val subject_of : Difftest.t -> Difftest.t Lightsss.subject
(** The standard snapshot subject: COW memories plus the simulator
    graph, with the Global Memory detached (it is shared with the
    replay like fork-shared pages rather than copied per snapshot). *)

val restore_shared : Difftest.t -> Lightsss.snapshot -> Difftest.t
(** Restore a snapshot of [dt] into a fresh instance sharing the live
    Global Memory. *)

val run_verified :
  ?snapshot_interval:int ->
  ?max_cycles:int ->
  ?inject:(Xiangshan.Soc.t -> unit) ->
  ?ref_kind:Ref_model.kind ->
  ?perf:bool ->
  prog:Riscv.Asm.program ->
  Xiangshan.Config.t ->
  outcome
(** Build the SoC, apply the optional fault [inject]ion, and run the
    full fast-mode -> replay -> diagnose loop.  [ref_kind] selects
    the reference-model backend (default: {!Ref_model.kind_of_env}).
    [perf] (default false) attaches pipeline tracers whose windows
    are reported in [replay_traces] on failure; counters themselves
    are always on, and neither affects any verdict. *)

val soc_counters : Xiangshan.Soc.t -> (string * int) list
(** Per-hart counter snapshots merged by name (summed across harts),
    sorted by name.  On a freshly created SoC every counter starts at
    zero, so the final snapshot is the run's delta. *)

val run_collect :
  ?snapshot_interval:int ->
  ?max_cycles:int ->
  ?inject:(Xiangshan.Soc.t -> unit) ->
  ?ref_kind:Ref_model.kind ->
  ?perf:bool ->
  prog:Riscv.Asm.program ->
  Xiangshan.Config.t ->
  outcome * (string * int) list
(** Like {!run_verified}, additionally returning the DUT's merged
    final counter snapshot ({!soc_counters} of the original instance,
    not of a debug replay) -- the fuzzer's coverage feed. *)
