(* Seeded deterministic host-fault injection (see host_chaos.mli).

   The plan is one process-global record: the pool forks its workers
   after the driver arms the plan, so children inherit it copy-on-write
   and every process -- parent draining pipes, child writing its result
   -- consults the same deterministic schedule.  Selection hashes only
   stable identities (the armed seed, the job label, the attempt
   number), never wall-clock or pids, so the same seed always breaks
   the same cells in the same way. *)

type fault_class =
  | Worker_kill
  | Eintr_storm
  | Short_write
  | Slow_worker
  | Journal_enospc

let all_classes =
  [ Worker_kill; Eintr_storm; Short_write; Slow_worker; Journal_enospc ]

let class_name = function
  | Worker_kill -> "worker-kill"
  | Eintr_storm -> "eintr"
  | Short_write -> "short-write"
  | Slow_worker -> "slow-worker"
  | Journal_enospc -> "journal-enospc"

let class_of_string s =
  List.find_opt (fun c -> class_name c = s) all_classes

type plan = {
  seed : int;
  classes : fault_class list;
  slow_delay : float;
  (* bounded parent/child-local budgets; a forked child starts from a
     copy-on-write snapshot of these, so every process's storm is
     finite on its own *)
  mutable eintr_budget : int;
  mutable short_budget : int;
  mutable enospc_fired : bool;
  fired : (string, int) Hashtbl.t;
}

let state : plan option ref = ref None

let arm ?(slow_delay = 4.0) ~seed classes =
  state :=
    Some
      {
        seed;
        classes;
        slow_delay;
        eintr_budget = 64;
        short_budget = 256;
        enospc_fired = false;
        fired = Hashtbl.create 8;
      }

let disarm () = state := None

let armed () = match !state with None -> [] | Some p -> p.classes

let env_plan () =
  match Sys.getenv_opt "MINJIE_CHAOS" with
  | None | Some "" -> None
  | Some s ->
      let seed =
        match Sys.getenv_opt "MINJIE_CHAOS_SEED" with
        | None -> 1
        | Some v -> (
            match int_of_string_opt (String.trim v) with
            | Some n -> n
            | None ->
                invalid_arg
                  (Printf.sprintf "MINJIE_CHAOS_SEED=%S (want an integer)" v))
      in
      let classes =
        String.split_on_char ',' s
        |> List.map String.trim
        |> List.filter (fun c -> c <> "")
        |> List.concat_map (fun c ->
               if c = "all" then all_classes
               else
                 match class_of_string c with
                 | Some cl -> [ cl ]
                 | None ->
                     invalid_arg
                       (Printf.sprintf
                          "MINJIE_CHAOS=%S: unknown fault class %S" s c))
      in
      Some (seed, classes)

let has p c = List.mem c p.classes

let note p name =
  Hashtbl.replace p.fired name
    (1 + Option.value (Hashtbl.find_opt p.fired name) ~default:0)

(* FNV-1a over the label, folded with the seed: stable across
   processes and OCaml versions (unlike Hashtbl.hash, which is
   documented to vary). *)
let select ~seed ~label ~salt ~modulus =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun ch -> h := (!h lxor Char.code ch) * 0x01000193 land 0x3FFFFFFF)
    label;
  h := (!h + (seed * 0x9e3779b1) + (salt * 0x85ebca6b)) land 0x3FFFFFFF;
  !h mod modulus = 0

(* ---------------------------------------------------------------- *)
(* injection points                                                  *)
(* ---------------------------------------------------------------- *)

type worker_fate = Run | Kill_before_run | Die_mid_write | Stall of float

(* A third of the jobs die under Worker_kill, a quarter stall under
   Slow_worker -- dense enough that a smoke grid still gets hit,
   sparse enough that the retry budget is never the bottleneck.
   Attempt > 0 is always clean: a supervised re-run must converge. *)
let worker_fate ~label ~attempt =
  match !state with
  | None -> Run
  | Some _ when attempt > 0 -> Run
  | Some p ->
      if has p Worker_kill && select ~seed:p.seed ~label ~salt:1 ~modulus:3
      then
        if select ~seed:p.seed ~label ~salt:2 ~modulus:2 then Kill_before_run
        else Die_mid_write
      else if
        has p Slow_worker && select ~seed:p.seed ~label ~salt:3 ~modulus:4
      then Stall p.slow_delay
      else Run

let pipe_io_interrupt () =
  match !state with
  | Some p when has p Eintr_storm && p.eintr_budget > 0 ->
      p.eintr_budget <- p.eintr_budget - 1;
      note p (class_name Eintr_storm);
      raise (Unix.Unix_error (Unix.EINTR, "chaos", "synthetic EINTR"))
  | Some _ | None -> ()

let clamp_write len =
  match !state with
  | Some p when has p Short_write && p.short_budget > 0 && len > 3 ->
      p.short_budget <- p.short_budget - 1;
      note p (class_name Short_write);
      3
  | Some _ | None -> len

let journal_append_check ~index =
  match !state with
  | Some p when has p Journal_enospc && index >= 1 && not p.enospc_fired ->
      p.enospc_fired <- true;
      note p (class_name Journal_enospc);
      raise (Unix.Unix_error (Unix.ENOSPC, "chaos", "synthetic ENOSPC"))
  | Some _ | None -> ()

(* ---------------------------------------------------------------- *)
(* reporting                                                         *)
(* ---------------------------------------------------------------- *)

let planned ~labels =
  match !state with
  | None -> []
  | Some p ->
      List.filter_map
        (fun c ->
          let n =
            match c with
            | Worker_kill ->
                List.length
                  (List.filter
                     (fun l -> select ~seed:p.seed ~label:l ~salt:1 ~modulus:3)
                     labels)
            | Slow_worker ->
                List.length
                  (List.filter
                     (fun l ->
                       (not
                          (has p Worker_kill
                          && select ~seed:p.seed ~label:l ~salt:1 ~modulus:3))
                       && select ~seed:p.seed ~label:l ~salt:3 ~modulus:4)
                     labels)
            | Eintr_storm -> 64
            | Short_write -> 256
            | Journal_enospc -> 1
          in
          if has p c then Some (class_name c, n) else None)
        all_classes

let fired () =
  match !state with
  | None -> []
  | Some p ->
      List.filter_map
        (fun c ->
          match Hashtbl.find_opt p.fired (class_name c) with
          | Some n -> Some (class_name c, n)
          | None -> None)
        all_classes
