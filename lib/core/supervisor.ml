(* Retry/backoff supervision over Pool (see supervisor.mli). *)

type policy = {
  sp_retries : int;
  sp_backoff_base : float;
  sp_backoff_cap : float;
  sp_mem_limit_mb : int option;
  sp_shrink_after : int;
}

let default_policy =
  {
    sp_retries = 1;
    sp_backoff_base = 0.05;
    sp_backoff_cap = 2.0;
    sp_mem_limit_mb = None;
    sp_shrink_after = 3;
  }

let env_retries () =
  match Sys.getenv_opt "MINJIE_RETRIES" with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> Some n
      | _ ->
          invalid_arg
            (Printf.sprintf "MINJIE_RETRIES=%S (want an integer >= 0)" s))

type report = {
  sup_rounds : int;
  sup_retried : int;
  sup_recovered : int;
  sup_deterministic : int;
  sup_gave_up : int;
  sup_shrinks : int;
  sup_final_workers : int;
}

(* A failure's identity for reproduce-and-compare classification.
   Timed_out deliberately drops the elapsed seconds -- two timeouts of
   the same job are the same failure even if the clock differs. *)
let signature (o : 'r Pool.outcome) =
  match o with
  | Pool.Done _ -> "done"
  | Pool.Job_error msg -> "error:" ^ msg
  | Pool.Crashed msg -> "crash:" ^ msg
  | Pool.Timed_out _ -> "timeout"

(* Crashes and timeouts took a whole process down (or needed a kill);
   their retries must stay fork-isolated even at one worker.  A plain
   job exception is safe to re-run in-process. *)
let needs_isolation (o : 'r Pool.outcome) =
  match o with
  | Pool.Crashed _ | Pool.Timed_out _ -> true
  | Pool.Done _ | Pool.Job_error _ -> false

let crashes_in results =
  List.length
    (List.filter
       (fun r ->
         match r.Pool.r_outcome with Pool.Crashed _ -> true | _ -> false)
       results)

let map ?jobs ?timeout ?(policy = default_policy) ?(progress = fun _ -> ())
    (job_list : 'r Pool.job list) : 'r Pool.result list * Pool.stats * report
    =
  let n = List.length job_list in
  let jobs_arr = Array.of_list job_list in
  let final : 'r Pool.result option array = Array.make n None in
  let sigs = Array.make n "" in
  let isolate_flags = Array.make n false in
  let workers = ref (Pool.resolve_jobs ?jobs ()) in
  let retried = ref 0
  and recovered = ref 0
  and deterministic = ref 0
  and gave_up = ref 0
  and shrinks = ref 0
  and rounds = ref 0 in
  let shrink_if_needed results =
    if crashes_in results >= policy.sp_shrink_after && !workers > 1 then begin
      workers := max 1 (!workers / 2);
      incr shrinks;
      Printf.eprintf
        "supervisor: repeated worker deaths; shrinking pool to %d worker%s\n%!"
        !workers
        (if !workers = 1 then "" else "s")
    end
  in
  (* round 0: the whole grid at full width *)
  let results0, stats =
    Pool.map ~jobs:!workers ?timeout ~attempt:0
      ?mem_limit_mb:policy.sp_mem_limit_mb
      ~progress:(fun r ->
        match r.Pool.r_outcome with Pool.Done _ -> progress r | _ -> ())
      job_list
  in
  let pending = ref [] in
  List.iter
    (fun (r : 'r Pool.result) ->
      match r.Pool.r_outcome with
      | Pool.Done _ -> final.(r.Pool.r_index) <- Some r
      | o ->
          if policy.sp_retries = 0 then begin
            final.(r.Pool.r_index) <- Some r;
            progress r
          end
          else begin
            sigs.(r.Pool.r_index) <- signature o;
            isolate_flags.(r.Pool.r_index) <- needs_isolation o;
            pending := r.Pool.r_index :: !pending
          end)
    results0;
  shrink_if_needed results0;
  (* retry rounds: failed jobs only, at the (possibly shrunk) width *)
  let attempt = ref 1 in
  while !pending <> [] && !attempt <= policy.sp_retries do
    incr rounds;
    let backoff =
      min policy.sp_backoff_cap
        (policy.sp_backoff_base *. (2.0 ** float_of_int (!attempt - 1)))
    in
    if backoff > 0.0 then Unix.sleepf backoff;
    let idxs = List.sort compare !pending in
    pending := [];
    (* split by isolation need so in-process retries never share a
       Pool.map call with jobs whose last run killed a process *)
    let run_batch ~isolate batch =
      if batch <> [] then begin
        retried := !retried + List.length batch;
        let sub = List.map (fun i -> jobs_arr.(i)) batch in
        let sub_results, _ =
          Pool.map
            ~jobs:(min !workers (List.length batch))
            ?timeout ~attempt:!attempt
            ?mem_limit_mb:policy.sp_mem_limit_mb ~isolate sub
        in
        shrink_if_needed sub_results;
        List.iter2
          (fun i (r : 'r Pool.result) ->
            let r = { r with Pool.r_index = i } in
            match r.Pool.r_outcome with
            | Pool.Done _ ->
                incr recovered;
                final.(i) <- Some r;
                progress r
            | o ->
                let s = signature o in
                if s = sigs.(i) then begin
                  (* reproduced: a deterministic failure, not a flake *)
                  incr deterministic;
                  final.(i) <- Some r;
                  progress r
                end
                else begin
                  sigs.(i) <- s;
                  isolate_flags.(i) <- isolate_flags.(i) || needs_isolation o;
                  if !attempt >= policy.sp_retries then begin
                    incr gave_up;
                    final.(i) <- Some r;
                    progress r
                  end
                  else pending := i :: !pending
                end)
          batch sub_results
      end
    in
    run_batch ~isolate:true (List.filter (fun i -> isolate_flags.(i)) idxs);
    run_batch ~isolate:false
      (List.filter (fun i -> not isolate_flags.(i)) idxs);
    incr attempt
  done;
  let results =
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> assert false (* every index is finalized above *))
         final)
  in
  ( results,
    stats,
    {
      sup_rounds = !rounds;
      sup_retried = !retried;
      sup_recovered = !recovered;
      sup_deterministic = !deterministic;
      sup_gave_up = !gave_up;
      sup_shrinks = !shrinks;
      sup_final_workers = !workers;
    } )

(* ---- clean shutdown ---------------------------------------------- *)

let cleanups : (unit -> unit) list ref = ref []

let at_shutdown f = cleanups := f :: !cleanups

let shutdown ~code ~signal_name =
  (* forked children inherit the handler; only the original process
     should tear the world down (workers reset to Signal_default) *)
  Pool.kill_live_workers ();
  List.iter (fun f -> try f () with _ -> ()) !cleanups;
  Printf.eprintf "interrupted (%s); workers killed, state flushed\n%!"
    signal_name;
  (try flush stdout with Sys_error _ -> ());
  (try flush stderr with Sys_error _ -> ());
  Unix._exit code

let install_signal_handlers () =
  Sys.set_signal Sys.sigint
    (Sys.Signal_handle (fun _ -> shutdown ~code:130 ~signal_name:"SIGINT"));
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> shutdown ~code:143 ~signal_name:"SIGTERM"))
