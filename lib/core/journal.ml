(* Checksummed append-only result journal (see journal.mli).

   Layout:   magic "MJNL0001" | frame(key) | frame(record)*
   frame:    length (4B LE) | crc32(payload) (4B LE) | payload

   The writer builds each frame in one buffer and hands it to a single
   EINTR-/short-write-safe write_all followed by fsync, so the only
   state a crash can leave behind is a torn final frame; the reader
   treats anything that does not check out -- short header, absurd
   length, short payload, CRC mismatch, Marshal failure -- as the end
   of the journal, never as an error.  Replay is therefore always a
   valid prefix of what was appended (the property test in
   test_journal.ml truncates a journal at every byte offset to prove
   exactly this). *)

let magic = "MJNL0001"

(* one frame must hold a marshalled campaign cell, not a memory dump *)
let max_record_bytes = 1 lsl 28

(* ---- CRC-32 (IEEE 802.3, reflected) ------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 (s : string) : int32 =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      c :=
        Int32.logxor
          t.(Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl))
          (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ---- EINTR-/short-write-safe primitives -------------------------- *)

let rec write_all fd bytes off len =
  if len > 0 then begin
    match
      Host_chaos.pipe_io_interrupt ();
      Unix.write fd bytes off (Host_chaos.clamp_write len)
    with
    | n -> write_all fd bytes (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd bytes off len
  end

let rec fsync_retry fd =
  try Unix.fsync fd
  with Unix.Unix_error (Unix.EINTR, _, _) -> fsync_retry fd

(* ---- frames ------------------------------------------------------ *)

let le32 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

let read_le32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let frame (payload : string) : bytes =
  let n = String.length payload in
  let b = Bytes.create (8 + n) in
  le32 b 0 n;
  le32 b 4 (Int32.to_int (crc32 payload) land 0xFFFFFFFF);
  Bytes.blit_string payload 0 b 8 n;
  b

(* Parse one frame at [off]; [None] on anything torn or corrupt. *)
let parse_frame (s : string) off : (string * int) option =
  let len = String.length s in
  if off + 8 > len then None
  else
    let n = read_le32 s off in
    let crc = read_le32 s (off + 4) in
    if n < 0 || n > max_record_bytes || off + 8 + n > len then None
    else
      let payload = String.sub s (off + 8) n in
      if Int32.to_int (crc32 payload) land 0xFFFFFFFF <> crc then None
      else Some (payload, off + 8 + n)

(* ---- read side --------------------------------------------------- *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s

(* Replay: (key, records, offset of the first invalid byte). *)
let replay (s : string) : string option * Obj.t list * int =
  let len = String.length s in
  if len < String.length magic || String.sub s 0 (String.length magic) <> magic
  then (None, [], 0)
  else
    match parse_frame s (String.length magic) with
    | None -> (None, [], 0)
    | Some (key, off0) ->
        let rec go acc off =
          match parse_frame s off with
          | None -> (List.rev acc, off)
          | Some (payload, off') -> (
              match Marshal.from_string payload 0 with
              | v -> go (v :: acc) off'
              | exception _ -> (List.rev acc, off))
        in
        let records, valid_end = go [] off0 in
        (Some key, records, valid_end)

let scan ~path : string option * 'a list =
  match read_file path with
  | None -> (None, [])
  | Some s ->
      let key, records, _ = replay s in
      (key, Obj.magic records)

(* ---- write side -------------------------------------------------- *)

type t = {
  j_path : string;
  mutable j_fd : Unix.file_descr option;  (* None once degraded/closed *)
  mutable j_appended : int;
  mutable j_index : int;  (* absolute record index, incl. replayed *)
}

let degrade t reason =
  (match t.j_fd with
  | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.j_fd <- None;
  Printf.eprintf
    "journal: write to %s failed (%s); continuing without journaling\n%!"
    t.j_path reason

let open_ ~path ~key : t * 'a list =
  let fresh () =
    let fd =
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    let header = Bytes.of_string magic in
    write_all fd header 0 (Bytes.length header);
    let kf = frame key in
    write_all fd kf 0 (Bytes.length kf);
    fsync_retry fd;
    fd
  in
  match read_file path with
  | Some s when (match replay s with Some k, _, _ -> k = key | _ -> false) ->
      let _, records, valid_end = replay s in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      (* a torn tail from the interrupted run is dead bytes: cut it off
         so the next append extends the valid prefix *)
      Unix.ftruncate fd valid_end;
      ignore (Unix.lseek fd valid_end Unix.SEEK_SET);
      ( {
          j_path = path;
          j_fd = Some fd;
          j_appended = 0;
          j_index = List.length records;
        },
        Obj.magic records )
  | Some _ | None ->
      ({ j_path = path; j_fd = Some (fresh ()); j_appended = 0; j_index = 0 }, [])

let append t v =
  match t.j_fd with
  | None -> ()
  | Some fd -> (
      try
        Host_chaos.journal_append_check ~index:t.j_index;
        let f = frame (Marshal.to_string v []) in
        write_all fd f 0 (Bytes.length f);
        fsync_retry fd;
        t.j_appended <- t.j_appended + 1;
        t.j_index <- t.j_index + 1
      with
      | Unix.Unix_error (e, _, _) -> degrade t (Unix.error_message e)
      | Sys_error msg -> degrade t msg)

let active t = t.j_fd <> None

let appended t = t.j_appended

let sync t =
  match t.j_fd with
  | None -> ()
  | Some fd -> (
      try fsync_retry fd
      with Unix.Unix_error (e, _, _) -> degrade t (Unix.error_message e))

let close t =
  match t.j_fd with
  | None -> ()
  | Some fd ->
      (try fsync_retry fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.j_fd <- None

let env_resume () =
  match Sys.getenv_opt "MINJIE_RESUME" with
  | None | Some "" | Some "0" | Some "false" -> false
  | Some _ -> true

(* ---- whole-file atomic writes ------------------------------------ *)

let atomic_write_file ~path (contents : string) =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let b = Bytes.of_string contents in
  write_all fd b 0 (Bytes.length b);
  fsync_retry fd;
  Unix.close fd;
  Sys.rename tmp path;
  (* fsync the directory so the rename itself survives a crash *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dfd ->
      (try fsync_retry dfd with Unix.Unix_error _ -> ());
      (try Unix.close dfd with Unix.Unix_error _ -> ())
