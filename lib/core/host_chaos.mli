(** Seeded, deterministic injection of harness-level host faults.

    The fault campaign proves the verification stack catches DUT bugs;
    nothing proved the harness itself survives the hosts it runs on.
    This module injects the host-side failure modes a long unattended
    run actually meets -- a worker SIGKILLed mid-job, EINTR storms on
    pipe I/O, short pipe writes, a worker stalled past its deadline,
    ENOSPC on the result journal -- at fixed points {!Pool} and
    {!Journal} consult.  Every injection is a pure function of the
    armed seed (plus the job label and attempt number), so a chaos run
    is exactly reproducible, and the runtime's recovery machinery
    (retry/backoff in {!Supervisor}, journal truncation, EINTR/short
    -write retry loops in {!Pool}) must deliver a campaign verdict
    byte-identical to the clean run.

    When disarmed (the default) every hook is a cheap no-op; arming is
    process-global so forked pool workers inherit the plan. *)

type fault_class =
  | Worker_kill  (** SIGKILL selected workers mid-job (attempt 0 only):
                     half die before running, half after writing a
                     truncated result frame *)
  | Eintr_storm  (** a bounded burst of synthetic [EINTR]s raised ahead
                     of pipe reads/writes and [waitpid] *)
  | Short_write  (** clamp a bounded number of pipe/journal writes to a
                     few bytes, forcing the partial-transfer path *)
  | Slow_worker  (** selected workers sleep before running (attempt 0
                     only), firing the pool's timeout escalation *)
  | Journal_enospc
      (** the first journal append past the header fails ENOSPC-shaped;
          the journal must degrade, not abort the run *)

val all_classes : fault_class list

val class_name : fault_class -> string
(** "worker-kill", "eintr", "short-write", "slow-worker",
    "journal-enospc". *)

val class_of_string : string -> fault_class option

val arm : ?slow_delay:float -> seed:int -> fault_class list -> unit
(** Install a chaos plan (replacing any previous one) and zero the
    fired counters.  [slow_delay] (default 4s) is the stall injected
    into {!Slow_worker}-selected workers -- pick it above the pool
    timeout of the run under test. *)

val disarm : unit -> unit

val armed : unit -> fault_class list
(** The armed classes, [[]] when disarmed. *)

val env_plan : unit -> (int * fault_class list) option
(** [MINJIE_CHAOS] as a comma-separated class list ("all" for every
    class), seeded by [MINJIE_CHAOS_SEED] (default 1).
    @raise Invalid_argument on an unknown class name. *)

(** {1 Injection points} (no-ops when the class is not armed) *)

type worker_fate =
  | Run  (** no interference *)
  | Kill_before_run  (** SIGKILL self before the job body *)
  | Die_mid_write  (** write a truncated result frame, then SIGKILL *)
  | Stall of float  (** sleep this long before the job body *)

val worker_fate : label:string -> attempt:int -> worker_fate
(** Consulted by the forked worker.  Deterministic in (seed, label);
    always {!Run} for [attempt > 0], so a supervised retry converges. *)

val pipe_io_interrupt : unit -> unit
(** May raise [Unix_error (EINTR, ...)] -- called ahead of pipe reads,
    writes and [waitpid] so retry loops face synthetic storms.  The
    burst is bounded per process. *)

val clamp_write : int -> int
(** Under {!Short_write}, clamps a write length to a few bytes for a
    bounded number of calls; otherwise the identity. *)

val journal_append_check : index:int -> unit
(** May raise [Unix_error (ENOSPC, ...)] for the record at [index]
    under {!Journal_enospc} (fires once per armed plan). *)

(** {1 Reporting} *)

val planned : labels:string list -> (string * int) list
(** Per-class injection counts the armed plan would fire against a job
    list with these labels (worker fates are counted by evaluating the
    same deterministic selection; I/O storms report their budgets). *)

val fired : unit -> (string * int) list
(** Per-class injections actually fired {e in this process} since
    {!arm}.  Worker-side fires happen in forked children and do not
    show up here; use {!planned} for totals. *)
