(* Fault-injection campaign driver (see campaign.mli).

   Each cell is an independent, deterministic co-simulation: the same
   (fault, seed) pair always builds the same program, installs the
   same corruption at the same cycle, and therefore fails the same
   way.  The driver only interprets the Workflow outcome; all the
   detection machinery is the ordinary DiffTest + LightSSS stack. *)

type cell = {
  c_fault : string;
  c_layer : string;
  c_workload : string;
  c_config : string;
  c_seed : int;
  c_trigger : int;
  c_detected : bool;
  c_rule : string;
  c_rule_expected : bool;
  c_failure_cycle : int;
  c_latency_cycles : int;
  c_commits : int;
  c_msg : string;
  c_replayed : bool;
  c_replay_rule : string;
  c_replay_window : int;
  c_replay_within : bool;
  c_ok : bool;
}

type summary = {
  cells : cell list;
  total : int;
  detected : int;
  escapes : int;
  rule_mismatches : int;
  replay_misses : int;
  snapshot_interval : int;
  resumed : int;
  retried : int;
  recovered : int;
}

(* Sv39 steady state: many read-back rounds over the lazily allocated
   heap, no sfence.vma after the first pass -- so a corrupted cached
   translation stays live and must serve loads of data that was
   written through the correct one.  (The stock one-round vm_kernel
   can mask TLB corruption: its spurious-fault sfences re-walk the
   stale entries before the single read-back uses them.) *)
let vm_kernel_steady : Workloads.Wl_common.t =
  {
    Workloads.Wl_common.wl_name = "vm_kernel_steady";
    group = `Int;
    mimics = "Sv39 steady-state paging (fault-campaign variant)";
    program =
      (fun ~scale -> Workloads.Vm_kernel.program ~rounds:50 ~scale ());
    small = 4;
    big = 16;
  }

(* The campaign draws on the whole workload library, not just the
   SPEC-like suite: the system and SMP workloads are what exercise the
   TLB and coherence faults. *)
let catalogue =
  (vm_kernel_steady :: Workloads.Suite.all)
  @ Workloads.Suite.system @ Workloads.Suite.smp

let find_workload name =
  match
    List.find_opt (fun w -> w.Workloads.Wl_common.wl_name = name) catalogue
  with
  | Some w -> w
  | None ->
      invalid_arg (Printf.sprintf "Campaign: unknown workload %S" name)

let config_of = function
  | Fault.Yqh -> Xiangshan.Config.yqh
  | Fault.Nh -> Xiangshan.Config.nh

let run_cell ?(snapshot_interval = 1_500) ?(max_cycles = 400_000) ?ref_kind
    ?perf ~(fault : Fault.t) ~seed () : cell =
  let w = find_workload fault.Fault.f_workload in
  let prog = w.Workloads.Wl_common.program ~scale:w.Workloads.Wl_common.small in
  let cfg = config_of fault.Fault.f_config in
  let trigger = fault.Fault.f_trigger in
  let base =
    {
      c_fault = fault.Fault.f_name;
      c_layer = fault.Fault.f_layer;
      c_workload = fault.Fault.f_workload;
      c_config = cfg.Xiangshan.Config.cfg_name;
      c_seed = seed;
      c_trigger = trigger;
      c_detected = false;
      c_rule = "";
      c_rule_expected = false;
      c_failure_cycle = -1;
      c_latency_cycles = -1;
      c_commits = -1;
      c_msg = "";
      c_replayed = false;
      c_replay_rule = "";
      c_replay_window = -1;
      c_replay_within = false;
      c_ok = false;
    }
  in
  match
    Workflow.run_verified ~snapshot_interval ~max_cycles ?ref_kind ?perf
      ~inject:(fun soc -> fault.Fault.f_install ~seed ~trigger soc)
      ~prog cfg
  with
  | Workflow.Verified code ->
      (* the fault ran to completion undetected: an escape *)
      {
        base with
        c_msg =
          Printf.sprintf "ESCAPE: run verified (exit code %d) despite fault"
            code;
      }
  | Workflow.Debugged r ->
      let f = r.Workflow.first_failure in
      let rule_expected = List.mem f.Rule.f_rule fault.Fault.f_expected_rules in
      let replayed = r.Workflow.replay_failure <> None in
      let window =
        if replayed then f.Rule.f_cycle - r.Workflow.replay_from_cycle else -1
      in
      let within = replayed && window <= 2 * snapshot_interval in
      {
        base with
        c_detected = true;
        c_rule = f.Rule.f_rule;
        c_rule_expected = rule_expected;
        c_failure_cycle = f.Rule.f_cycle;
        c_latency_cycles = f.Rule.f_cycle - trigger;
        c_commits = f.Rule.f_commits;
        c_msg = Rule.string_of_failure f;
        c_replayed = replayed;
        c_replay_rule =
          (match r.Workflow.replay_failure with
          | Some rf -> rf.Rule.f_rule
          | None -> "");
        c_replay_window = window;
        c_replay_within = within;
        c_ok = rule_expected && within;
      }

(* A pool failure (worker crash, timeout) means we cannot prove the
   fault was detected, so it reports as an escape-shaped cell: c_ok
   false, c_detected false, the pool's message in c_msg. *)
let cell_of_pool_failure ~(fault : Fault.t) ~seed msg : cell =
  {
    c_fault = fault.Fault.f_name;
    c_layer = fault.Fault.f_layer;
    c_workload = fault.Fault.f_workload;
    c_config = (config_of fault.Fault.f_config).Xiangshan.Config.cfg_name;
    c_seed = seed;
    c_trigger = fault.Fault.f_trigger;
    c_detected = false;
    c_rule = "";
    c_rule_expected = false;
    c_failure_cycle = -1;
    c_latency_cycles = -1;
    c_commits = -1;
    c_msg = "POOL: " ^ msg;
    c_replayed = false;
    c_replay_rule = "";
    c_replay_window = -1;
    c_replay_within = false;
    c_ok = false;
  }

(* The journal key encodes the run's identity: resuming against a
   journal written by a different grid, REF backend or interval set
   must start fresh, never splice foreign cells in. *)
let journal_key ~faults ~seeds ~ref_kind ~snapshot_interval ~max_cycles =
  let kind = match ref_kind with Some k -> k | None -> Ref_model.kind_of_env () in
  Printf.sprintf "campaign|faults=%s|seeds=%s|ref=%s|si=%d|mc=%d"
    (String.concat "," (List.map (fun f -> f.Fault.f_name) faults))
    (String.concat "," (List.map string_of_int seeds))
    (Ref_model.kind_name kind)
    snapshot_interval max_cycles

let run ?faults ?(seeds = [ 1; 2 ]) ?(snapshot_interval = 1_500)
    ?(max_cycles = 400_000) ?ref_kind ?perf ?jobs ?journal
    ?(resume = false) ?retries ?timeout
    ?(progress = fun (_ : cell) -> ()) () : summary =
  let faults =
    match faults with
    | None -> Fault.all
    | Some names -> List.map Fault.find names
  in
  let grid =
    List.concat_map (fun fault -> List.map (fun seed -> (fault, seed)) seeds)
      faults
  in
  let jobs = Pool.resolve_jobs ?jobs () in
  let retries =
    match retries with
    | Some n -> max 0 n
    | None -> Option.value (Supervisor.env_retries ()) ~default:0
  in
  (* journal replay: completed (fault, seed) cells are not recomputed.
     Only Done cells were ever appended, so a resumed run re-attempts
     every cell the interrupted run failed or never reached. *)
  let done_tbl : (string * int, cell) Hashtbl.t = Hashtbl.create 64 in
  let jnl =
    match journal with
    | None -> None
    | Some path ->
        let key =
          journal_key ~faults ~seeds ~ref_kind ~snapshot_interval ~max_cycles
        in
        if not resume then (try Sys.remove path with Sys_error _ -> ());
        let j, (replayed : cell list) = Journal.open_ ~path ~key in
        List.iter (fun c -> Hashtbl.replace done_tbl (c.c_fault, c.c_seed) c)
          replayed;
        Supervisor.at_shutdown (fun () -> Journal.close j);
        Some j
  in
  let resumed = Hashtbl.length done_tbl in
  List.iter
    (fun (fault, seed) ->
      match Hashtbl.find_opt done_tbl (fault.Fault.f_name, seed) with
      | Some c -> progress c
      | None -> ())
    grid;
  let todo =
    List.filter
      (fun (fault, seed) ->
        not (Hashtbl.mem done_tbl (fault.Fault.f_name, seed)))
      grid
  in
  let record c =
    (match jnl with Some j -> Journal.append j c | None -> ());
    progress c
  in
  let fresh_cells, retried, recovered =
    if todo = [] then ([], 0, 0)
    else if jobs <= 1 && retries = 0 then
      (* the original in-process path, unchanged *)
      ( List.map
          (fun (fault, seed) ->
            let c =
              run_cell ~snapshot_interval ~max_cycles ?ref_kind ?perf ~fault
                ~seed ()
            in
            record c;
            c)
          todo,
        0,
        0 )
    else begin
      (* one pool job per cell, under supervision.  The injection
         trigger cycle is the best static proxy for cell cost: later
         triggers mean more fast-mode cycles before detection can even
         start. *)
      let pool_jobs =
        List.map
          (fun (fault, seed) ->
            {
              Pool.j_label =
                Printf.sprintf "%s#%d" fault.Fault.f_name seed;
              j_cost = float_of_int fault.Fault.f_trigger;
              j_run =
                (fun () ->
                  run_cell ~snapshot_interval ~max_cycles ?ref_kind ?perf
                    ~fault ~seed ());
            })
          todo
      in
      let todo_arr = Array.of_list todo in
      let policy = { Supervisor.default_policy with sp_retries = retries } in
      let cell_of (r : cell Pool.result) =
        let fault, seed = todo_arr.(r.Pool.r_index) in
        match r.Pool.r_outcome with
        | Pool.Done c -> c
        | Pool.Job_error msg | Pool.Crashed msg ->
            cell_of_pool_failure ~fault ~seed msg
        | Pool.Timed_out secs ->
            cell_of_pool_failure ~fault ~seed
              (Printf.sprintf "timed out after %.1fs" secs)
      in
      let results, _stats, rep =
        Supervisor.map ~jobs ?timeout ~policy
          ~progress:(fun (r : cell Pool.result) ->
            (* fires once per job, on its final outcome; only real
               verdicts reach the journal *)
            match r.Pool.r_outcome with
            | Pool.Done c -> record c
            | _ -> progress (cell_of r))
          pool_jobs
      in
      ( List.map cell_of results,
        rep.Supervisor.sup_retried,
        rep.Supervisor.sup_recovered )
    end
  in
  (match jnl with Some j -> Journal.close j | None -> ());
  let fresh_tbl : (string * int, cell) Hashtbl.t = Hashtbl.create 64 in
  List.iter2
    (fun (fault, seed) c ->
      Hashtbl.replace fresh_tbl (fault.Fault.f_name, seed) c)
    todo fresh_cells;
  (* merge in grid order, wherever each cell came from: the summary is
     byte-identical whether the run was interrupted and resumed or ran
     straight through *)
  let cells =
    List.map
      (fun (fault, seed) ->
        match Hashtbl.find_opt done_tbl (fault.Fault.f_name, seed) with
        | Some c -> c
        | None -> Hashtbl.find fresh_tbl (fault.Fault.f_name, seed))
      grid
  in
  let count p = List.length (List.filter p cells) in
  {
    cells;
    total = List.length cells;
    detected = count (fun c -> c.c_detected);
    escapes = count (fun c -> not c.c_detected);
    rule_mismatches = count (fun c -> c.c_detected && not c.c_rule_expected);
    replay_misses =
      count (fun c -> c.c_detected && not (c.c_replayed && c.c_replay_within));
    snapshot_interval;
    resumed;
    retried;
    recovered;
  }

let string_of_cell (c : cell) : string =
  if not c.c_detected then
    Printf.sprintf "%-24s %-16s seed=%d  %s" c.c_fault c.c_workload c.c_seed
      c.c_msg
  else
    Printf.sprintf
      "%-24s %-16s seed=%d  %s by %s at cycle %d (latency %d cycles, %d \
       commits; replay %s in %d-cycle window)"
      c.c_fault c.c_workload c.c_seed
      (if c.c_ok then "caught" else "MISCAUGHT")
      c.c_rule c.c_failure_cycle c.c_latency_cycles c.c_commits
      (if c.c_replayed then "reproduced [" ^ c.c_replay_rule ^ "]"
       else "NOT reproduced")
      c.c_replay_window
