(** The reference model behind a first-class interface (paper §III-B).

    Everything DiffTest needs from a REF -- step-to-commit, the DRAV
    control plane, the architectural-state diff, and the COW-memory
    enumeration LightSSS snapshots -- as a record of operations
    closed over the backend.  Two implementations ship: the plain
    {!Iss.Interp} interpreter ({!Iss}) and the NEMU block-compiled
    engine in non-autonomous REF mode ({!Nemu}, see
    {!Nemu.Ref_core}), the paper's fast REF.  Select per DiffTest
    instance with [?ref_kind], or process-wide for tests/CI with the
    [MINJIE_REF] environment variable. *)

type kind = Iss | Nemu

(** The shared commit vocabulary (identical to the ISS records, so
    rules written against either name interoperate). *)
type mem_access = Iss.Interp.mem_access = {
  vaddr : int64;
  paddr : int64;
  size : int;
  value : int64;
}

type trap_info = Iss.Interp.trap_info = { exc : Riscv.Trap.exc; tval : int64 }

type commit = Iss.Interp.commit = {
  pc : int64;
  insn : Riscv.Insn.t;
  next_pc : int64;
  trap : trap_info option;
  interrupt : Riscv.Trap.irq option;
  load : mem_access option;
  store : mem_access option;
  sc_failed : bool;
  csr_read : (int * int64) option;
  mmio : bool;
}

type step_result = Iss.Interp.step_result = Committed of commit | Exited

type t = {
  kind : kind;
  hartid : int;
  step : unit -> step_result;
      (** retire one instruction (or forced event) *)
  force_exception : Riscv.Trap.exc -> int64 -> unit;
  force_interrupt : Riscv.Trap.irq -> unit;
  force_sc_failure : unit -> unit;
  patch_reg : int -> int64 -> unit;
  patch_freg : int -> int64 -> unit;
  patch_mem : paddr:int64 -> size:int -> value:int64 -> unit;
      (** physical-memory patch; NEMU invalidates affected uop blocks *)
  get_reg : int -> int64;
  set_counters : cycle:int64 -> instret:int64 -> unit;
  set_mcycle : int64 -> unit;
  set_time : int64 -> unit;
  set_mip_bit : int -> bool -> unit;
  diff_against : Riscv.Arch_state.t -> string option;
      (** first difference against the DUT's architectural state, in
          the {!Riscv.Arch_state.diff} message format *)
  memories : unit -> Riscv.Memory.t list;
      (** the COW memories this REF owns (LightSSS snapshots these) *)
  exited : unit -> bool;
  exit_code : unit -> int option;
}

val kind_name : kind -> string

val kind_of_string : string -> kind option

val kind_of_env : unit -> kind
(** [MINJIE_REF] (iss|nemu), defaulting to {!Iss}.
    @raise Invalid_argument on an unrecognised value. *)

val of_iss : Iss.Interp.t -> t

val of_nemu : Nemu.Ref_core.t -> t

val create : ?kind:kind -> hartid:int -> prog:Riscv.Asm.program -> unit -> t
(** Fresh non-autonomous REF with [prog] loaded. *)
