(* "Put it all together" (§III-E, §IV-C): the MINJIE verification
   workflow.

   A DUT runs in fast mode under DiffTest with LightSSS taking
   periodic snapshots.  When DiffTest reports a mismatch, the older of
   the two retained snapshots is restored and the last <= 2N cycles
   are replayed with debugging enabled -- ArchDB capturing every
   commit, store drain and coherence transaction -- and the report
   localises the bug (for the §IV-C case study: the Acquire/Probe
   overlap on the corrupted block). *)

type debug_report = {
  first_failure : Rule.failure;
  replay_failure : Rule.failure option;
  replay_from_cycle : int;
  replay_cycles : int;
  db : Archdb.t;
  overlaps : Archdb.overlap list; (* §IV-C race signature *)
  drains_near_failure : Xiangshan.Probe.store_drain list;
  snapshots_taken : int;
  snapshot_seconds : float;
  replay_traces : Perf.Pipetrace.t array;
      (* with ~perf:true, per-hart pipeline trace windows around the
         failure, captured during the debug-mode replay *)
}

type outcome =
  | Verified of int (* exit code; no mismatch found *)
  | Debugged of debug_report

let memories_of (dt : Difftest.t) : Riscv.Memory.t list =
  (Difftest.soc dt).Xiangshan.Soc.plat.Riscv.Platform.mem
  :: List.concat_map
       (fun (r : Ref_model.t) -> r.Ref_model.memories ())
       (Array.to_list (Difftest.refs dt))

(* The Global Memory grows with the stored footprint; like fork-shared
   pages it is shared with the replayed instance instead of being
   copied into every snapshot image. *)
let subject_of (dt : Difftest.t) : Difftest.t Lightsss.subject =
  let gm = Difftest.global_mem dt in
  let stash = ref None in
  {
    Lightsss.memories = memories_of dt;
    roots = dt;
    detach_heavy =
      (fun () ->
        stash := Some gm.Global_memory.words;
        gm.Global_memory.words <- Hashtbl.create 1);
    reattach_heavy =
      (fun () ->
        match !stash with
        | Some w ->
            gm.Global_memory.words <- w;
            stash := None
        | None -> ());
  }

(* Restore a snapshot of [dt], sharing the live Global Memory (a
   superset of its state at snapshot time, which only makes the legal
   set larger in the replayed window). *)
let restore_shared (dt : Difftest.t) (snap : Lightsss.snapshot) : Difftest.t =
  let dt' : Difftest.t = Lightsss.restore_with snap ~memories_of in
  (Difftest.global_mem dt').Global_memory.words <-
    (Difftest.global_mem dt).Global_memory.words;
  dt'

(* Per-hart counter snapshots merged by name (summed across harts) and
   sorted: the interchange form the fuzzer's coverage map folds.  A
   fresh SoC starts every counter at zero, so the final snapshot IS
   the run's delta. *)
let soc_counters (soc : Xiangshan.Soc.t) : (string * int) list =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun i _ ->
      List.iter
        (fun (k, v) ->
          let prev = Option.value (Hashtbl.find_opt tbl k) ~default:0 in
          Hashtbl.replace tbl k (prev + v))
        (Xiangshan.Soc.counter_snapshot soc ~hartid:i))
    soc.Xiangshan.Soc.cores;
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* Run [prog] on a SoC built from [cfg] under DiffTest + LightSSS.
   [inject] can plant a fault after construction (used by the tests
   and the debugging example).  [run_collect] additionally returns the
   DUT's merged final counter snapshot (taken from the original
   instance, not a debug replay). *)
let run_collect ?(snapshot_interval = 2000) ?(max_cycles = 20_000_000)
    ?(inject = fun (_ : Xiangshan.Soc.t) -> ()) ?ref_kind ?(perf = false)
    ~(prog : Riscv.Asm.program) (cfg : Xiangshan.Config.t) :
    outcome * (string * int) list =
  let soc = Xiangshan.Soc.create cfg in
  Xiangshan.Soc.load_program soc prog;
  inject soc;
  (* counters are always on (pure observation); [perf] additionally
     attaches pipeline tracers, which ride inside LightSSS snapshots
     so a debug replay reproduces the trace window around the failure *)
  if perf then ignore (Xiangshan.Soc.attach_tracers soc);
  let dt = Difftest.create ?ref_kind ~prog soc in
  let subject = subject_of dt in
  let mgr = Lightsss.manager ~interval:snapshot_interval subject in
  let start = soc.Xiangshan.Soc.now in
  let running () =
    match Difftest.status dt with
    | Difftest.Running -> soc.Xiangshan.Soc.now - start < max_cycles
    | Difftest.Finished _ | Difftest.Failed _ -> false
  in
  while running () do
    Lightsss.tick mgr ~cycle:soc.Xiangshan.Soc.now;
    Difftest.tick dt
  done;
  let outcome =
    match Difftest.status dt with
  | Difftest.Running | Difftest.Finished _ ->
      Verified
        (match Difftest.status dt with
        | Difftest.Finished c -> c
        | Difftest.Running | Difftest.Failed _ -> -1)
  | Difftest.Failed first_failure -> (
      (* restore the older snapshot and replay in debug mode *)
      match Lightsss.replay_point mgr with
      | None ->
          Debugged
            {
              first_failure;
              replay_failure = None;
              replay_from_cycle = 0;
              replay_cycles = 0;
              db = Archdb.create ();
              overlaps = [];
              drains_near_failure = [];
              snapshots_taken = mgr.Lightsss.snapshots_taken;
              snapshot_seconds = mgr.Lightsss.total_snapshot_seconds;
              replay_traces = [||];
            }
      | Some snap ->
          let dt' : Difftest.t = restore_shared dt snap in
          (* debug mode: ArchDB + debug log on the replayed instance *)
          let db = Archdb.create () in
          Archdb.attach db (Difftest.soc dt');
          Difftest.enable_debug dt';
          let replay_start = (Difftest.soc dt').Xiangshan.Soc.now in
          let budget = (2 * snapshot_interval) + 10_000 in
          let rec go () =
            match Difftest.status dt' with
            | Difftest.Running
              when (Difftest.soc dt').Xiangshan.Soc.now - replay_start < budget
              ->
                Difftest.tick dt';
                go ()
            | Difftest.Running | Difftest.Finished _ | Difftest.Failed _ -> ()
          in
          go ();
          let replay_failure =
            match Difftest.status dt' with
            | Difftest.Failed f -> Some f
            | Difftest.Running | Difftest.Finished _ -> None
          in
          let overlaps = Archdb.acquire_probe_overlaps db ~window:60 in
          let drains_near_failure =
            match replay_failure with
            | Some f when f.Rule.f_pc <> 0L ->
                Archdb.drains_for_line db ~addr:f.Rule.f_pc
            | Some _ | None -> []
          in
          (* persist the replayed instance's final counters; the trace
             windows were restored from the snapshot and replayed to
             the failure *)
          Archdb.record_counters db (Difftest.soc dt');
          let replay_traces =
            if perf then
              Array.map
                (fun (c : Xiangshan.Core.t) ->
                  match c.Xiangshan.Core.tracer with
                  | Some tr -> tr
                  | None -> Perf.Pipetrace.create ~capacity:16 ())
                (Difftest.soc dt').Xiangshan.Soc.cores
            else [||]
          in
          Debugged
            {
              first_failure;
              replay_failure;
              replay_from_cycle = snap.Lightsss.snap_cycle;
              replay_cycles =
                (Difftest.soc dt').Xiangshan.Soc.now - replay_start;
              db;
              overlaps;
              drains_near_failure;
              snapshots_taken = mgr.Lightsss.snapshots_taken;
              snapshot_seconds = mgr.Lightsss.total_snapshot_seconds;
              replay_traces;
            })
  in
  (outcome, soc_counters soc)

let run_verified ?snapshot_interval ?max_cycles ?inject ?ref_kind ?perf
    ~(prog : Riscv.Asm.program) (cfg : Xiangshan.Config.t) : outcome =
  fst
    (run_collect ?snapshot_interval ?max_cycles ?inject ?ref_kind ?perf ~prog
       cfg)
