(* The standard diff-rule set for RISC-V processors (§III-B2).

   Each rule abstracts one source of legal non-determinism.  Beyond
   these, the machine-mode CSR rules of the paper (the "at least 120"
   simple value rules) are generated programmatically in
   [csr_read_rules]. *)

open Riscv

(* --- 1. speculative page faults (Figure 3) --------------------------- *)

(* The DUT may take a page fault the REF would not take (speculative
   TLB walk raced a PTE store still in the store buffer, or a cached
   invalid PTE before sfence.vma).  The REF is forced to take the same
   trap.  Identical architectural state afterwards is still required
   (checked by the post-step state comparison). *)
let page_fault_forcing () =
  Rule.make ~name:"page-fault-forcing"
    ~descr:
      "DUT may fault on speculative/stale translations; REF is forced to \
       take the same trap"
    ~pre:(fun ctx ~hart (p : Xiangshan.Probe.commit) ->
      match p.p_trap with
      | Some (exc, tval) ->
          Rule.bump_force_guard ctx ~hart ~probe:p ~rule:"page-fault-forcing";
          ctx.Rule.refs.(hart).Ref_model.force_exception exc tval;
          true
      | None ->
          Rule.clear_force_guard ctx ~hart ~probe:p;
          false)
    ()

(* --- 2. asynchronous interrupts -------------------------------------- *)

let interrupt_forcing () =
  Rule.make ~name:"interrupt-forcing"
    ~descr:
      "interrupt arrival cycles are micro-architectural; REF takes the \
       interrupt exactly when the DUT does"
    ~pre:(fun ctx ~hart (p : Xiangshan.Probe.commit) ->
      match p.p_interrupt with
      | Some irq ->
          (* mirror the pending bit so mip-dependent behaviour matches *)
          let r = ctx.Rule.refs.(hart) in
          r.Ref_model.set_mip_bit (Trap.irq_code irq) true;
          r.Ref_model.force_interrupt irq;
          true
      | None -> false)
    ()

(* --- 3. SC failures (LR/SC timeout, §III-B2c) ------------------------- *)

let sc_failure_forcing () =
  Rule.make ~name:"sc-failure-forcing"
    ~descr:
      "SC may fail on reservation timeout or eviction; the DUT failure is \
       trusted and the REF SC is forced to fail too"
    ~pre:(fun ctx ~hart (p : Xiangshan.Probe.commit) ->
      if p.p_sc_failed then begin
        Rule.bump_force_guard ctx ~hart ~probe:p ~rule:"sc-failure-forcing";
        ctx.Rule.refs.(hart).Ref_model.force_sc_failure ();
        true
      end
      else false)
    ()

(* --- 4. non-deterministic CSR reads ----------------------------------- *)

(* Reads of counters and asynchronous status are micro-architecture
   dependent: the DUT value is copied into the REF's destination
   register and counter state.  This family stands in for the paper's
   ~120 machine-mode CSR value rules. *)
let nondet_csrs =
  [ Csr.cycle; Csr.mcycle; Csr.time; Csr.instret; Csr.minstret; Csr.mip ]

let csr_read_rule () =
  Rule.make ~name:"csr-nondet-read"
    ~descr:
      "cycle/time/instret/mip reads depend on timing; the DUT value is \
       propagated to the REF"
    ~post:(fun ctx ~hart (p : Xiangshan.Probe.commit) (c : Ref_model.commit) ->
      match (p.p_csr_read, c.Ref_model.csr_read) with
      | Some (addr, dut_v), Some (raddr, ref_v)
        when addr = raddr && List.mem addr nondet_csrs ->
          if dut_v <> ref_v then begin
            let rd =
              match p.p_insn with Insn.Csr (_, rd, _, _) -> rd | _ -> 0
            in
            let r = ctx.Rule.refs.(hart) in
            r.Ref_model.patch_reg rd dut_v;
            (* keep the REF counters loosely in sync going forward *)
            if addr = Csr.cycle || addr = Csr.mcycle then
              r.Ref_model.set_mcycle dut_v;
            if addr = Csr.time then r.Ref_model.set_time dut_v;
            Rule.Patched
          end
          else Rule.Pass
      | _ -> Rule.Pass)
    ()

(* --- 5. MMIO loads ----------------------------------------------------- *)

let mmio_load_trust () =
  Rule.make ~name:"mmio-load-trust"
    ~descr:
      "memory-mapped IO devices are not modelled in the REF in detail; the \
       DUT's MMIO load value is trusted and copied to the REF"
    ~post:(fun ctx ~hart (p : Xiangshan.Probe.commit) (c : Ref_model.commit) ->
      if p.p_mmio then begin
        match (p.p_load, c.Ref_model.load) with
        | Some dut, Some _ ->
            let rd =
              match p.p_insn with
              | Insn.Load (_, rd, _, _) -> rd
              | _ -> 0
            in
            let extended =
              match p.p_insn with
              | Insn.Load (op, _, _, _) ->
                  Iss.Alu.extend_load op dut.Xiangshan.Probe.m_value
              | _ -> dut.Xiangshan.Probe.m_value
            in
            ctx.Rule.refs.(hart).Ref_model.patch_reg rd extended;
            Rule.Patched
        | _ -> Rule.Pass
      end
      else Rule.Pass)
    ()

(* --- 6. the Global Memory rule (multi-core, §III-B2b) ------------------ *)

let global_memory_load () =
  Rule.make ~name:"global-memory-load"
    ~descr:
      "a load value differing from the single-core REF is legal if it \
       matches a store another hart drained into the cache hierarchy; the \
       REF's local memory and destination register are updated"
    ~post:(fun ctx ~hart (p : Xiangshan.Probe.commit) (c : Ref_model.commit) ->
      match (p.p_load, c.Ref_model.load) with
      | Some dut, Some ref_acc when not p.p_mmio ->
          if dut.Xiangshan.Probe.m_value = ref_acc.Ref_model.value then
            Rule.Pass
          else if Array.length ctx.Rule.refs <= 1 then
            (* single hart: no other thread can have produced the
               value, so the whitewash is off -- any divergence is a
               real bug (stale TLB entries, poisoned cache lines and
               dropped store-to-load forwarding all land here) *)
            Rule.Fail
              (Printf.sprintf
                 "load @0x%Lx: DUT=0x%Lx REF=0x%Lx on a single-hart SoC (no \
                  cross-thread store can justify it)"
                 dut.Xiangshan.Probe.m_paddr dut.Xiangshan.Probe.m_value
                 ref_acc.Ref_model.value)
          else if
            Global_memory.compatible ctx.Rule.global_mem
              ~at:dut.Xiangshan.Probe.m_cycle ~paddr:dut.Xiangshan.Probe.m_paddr
              ~size:dut.Xiangshan.Probe.m_size
              ~value:dut.Xiangshan.Probe.m_value
          then begin
            (* legal cross-thread value: patch REF memory and rd *)
            let r = ctx.Rule.refs.(hart) in
            r.Ref_model.patch_mem ~paddr:dut.Xiangshan.Probe.m_paddr
              ~size:dut.Xiangshan.Probe.m_size
              ~value:dut.Xiangshan.Probe.m_value;
            (match p.p_insn with
            | Insn.Load (op, rd, _, _) ->
                r.Ref_model.patch_reg rd
                  (Iss.Alu.extend_load op dut.Xiangshan.Probe.m_value)
            | Insn.Lr (w, rd, _) | Insn.Amo (_, w, rd, _, _) ->
                let v =
                  match w with
                  | Insn.Width_w -> Iss.Alu.sext32 dut.Xiangshan.Probe.m_value
                  | Insn.Width_d -> dut.Xiangshan.Probe.m_value
                in
                (* AMO rd gets the loaded (old) value; redo the AMO
                   store on the REF with the patched old value *)
                r.Ref_model.patch_reg rd v;
                (match p.p_insn with
                | Insn.Amo (op, w, _, _, rs2) ->
                    let src = r.Ref_model.get_reg rs2 in
                    let nv = Iss.Alu.eval_amo op w v src in
                    r.Ref_model.patch_mem ~paddr:dut.Xiangshan.Probe.m_paddr
                      ~size:dut.Xiangshan.Probe.m_size ~value:nv
                | _ -> ())
            | Insn.Fld (frd, _, _) ->
                r.Ref_model.patch_freg frd dut.Xiangshan.Probe.m_value
            | _ -> ());
            Rule.Patched
          end
          else
            Rule.Fail
              (Printf.sprintf
                 "load @0x%Lx: DUT=0x%Lx REF=0x%Lx and Global Memory cannot \
                  justify the DUT value"
                 dut.Xiangshan.Probe.m_paddr dut.Xiangshan.Probe.m_value
                 ref_acc.Ref_model.value)
      | _ -> Rule.Pass)
    ()

(* Fresh rule instances (fire counters are per-DiffTest). *)
let standard () : Rule.t list =
  [
    page_fault_forcing ();
    interrupt_forcing ();
    sc_failure_forcing ();
    csr_read_rule ();
    mmio_load_trust ();
    global_memory_load ();
  ]
