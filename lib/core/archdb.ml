(* ArchDB (§III-B3): a typed in-memory event database fed by the
   information probes.

   The paper's version is SQLite-backed with tables auto-generated
   from probe definitions; here each probe type gets a typed table
   with filtering and query helpers, and the analyses the §IV-C
   debugging session needs -- transaction histories per cache block,
   overlapping Acquire/Probe windows -- are provided as queries. *)

type commit_row = Xiangshan.Probe.commit

type drain_row = Xiangshan.Probe.store_drain

type cache_row = Softmem.Event.t

type 'a table = { t_name : string; rows : 'a Queue.t; mutable capacity : int }

let make_table name ?(capacity = 1_000_000) () =
  { t_name = name; rows = Queue.create (); capacity }

let insert tbl row =
  Queue.add row tbl.rows;
  if Queue.length tbl.rows > tbl.capacity then ignore (Queue.pop tbl.rows)

let to_list tbl = List.of_seq (Queue.to_seq tbl.rows)

let filter tbl p = List.filter p (to_list tbl)

let count tbl = Queue.length tbl.rows

(* Final performance-counter values, persisted per hart so campaign
   and debug sessions can query them after the run. *)
type counter_row = { cn_hartid : int; cn_name : string; cn_value : int }

type t = {
  commits : commit_row table;
  drains : drain_row table;
  cache_events : cache_row table;
  counters : counter_row table;
}

let create ?(capacity = 1_000_000) () =
  {
    commits = make_table "commits" ~capacity ();
    drains = make_table "store_drains" ~capacity ();
    cache_events = make_table "cache_transactions" ~capacity ();
    counters = make_table "perf_counters" ~capacity ();
  }

(* Attach to a SoC: tees every probe stream into the database while
   preserving previously installed sinks (e.g. DiffTest's). *)
let attach (db : t) (soc : Xiangshan.Soc.t) =
  Array.iter
    (fun (core : Xiangshan.Core.t) ->
      let p = core.Xiangshan.Core.probes in
      let old_commit = p.Xiangshan.Probe.on_commit in
      p.Xiangshan.Probe.on_commit <-
        (fun c ->
          insert db.commits c;
          old_commit c);
      let old_drain = p.Xiangshan.Probe.on_drain in
      p.Xiangshan.Probe.on_drain <-
        (fun d ->
          insert db.drains d;
          old_drain d))
    soc.Xiangshan.Soc.cores;
  let old_sink = soc.Xiangshan.Soc.event_sink in
  Xiangshan.Soc.set_event_sink soc (fun ev ->
      insert db.cache_events ev;
      old_sink ev)

(* Persist the current counter snapshot of every hart.  Called at the
   end of a run (or of a debug replay); the newest record for a name
   wins in [final_counters]. *)
let record_counters (db : t) (soc : Xiangshan.Soc.t) =
  Array.iteri
    (fun hartid (core : Xiangshan.Core.t) ->
      List.iter
        (fun (name, v) ->
          insert db.counters { cn_hartid = hartid; cn_name = name; cn_value = v })
        (Xiangshan.Core.counter_snapshot core))
    soc.Xiangshan.Soc.cores

(* ---- queries ---------------------------------------------------------- *)

(* The latest recorded value of every counter of one hart, in
   first-recorded order. *)
let final_counters (db : t) ~hartid : (string * int) list =
  let order = ref [] in
  let values = Hashtbl.create 64 in
  List.iter
    (fun r ->
      if r.cn_hartid = hartid then begin
        if not (Hashtbl.mem values r.cn_name) then order := r.cn_name :: !order;
        Hashtbl.replace values r.cn_name r.cn_value
      end)
    (to_list db.counters);
  List.rev_map (fun name -> (name, Hashtbl.find values name)) !order

(* All coherence transactions touching the line of [addr], in time
   order. *)
let transactions_for_line (db : t) ~(addr : int64) : cache_row list =
  let line = Int64.shift_right_logical addr 6 in
  filter db.cache_events (fun (e : cache_row) ->
      Int64.shift_right_logical e.Softmem.Event.addr 6 = line)

(* Find blocks where a Probe arrived at a node within [window] cycles
   after an Acquire on the same block -- the §IV-C race signature. *)
type overlap = {
  ov_addr : int64;
  ov_node : string;
  ov_acquire_cycle : int;
  ov_probe_cycle : int;
}

let acquire_probe_overlaps (db : t) ~(window : int) : overlap list =
  let acquires = Hashtbl.create 64 in
  let result = ref [] in
  List.iter
    (fun (e : cache_row) ->
      match e.Softmem.Event.xact with
      | Softmem.Perm.Acquire _ ->
          Hashtbl.replace acquires
            (e.Softmem.Event.node, e.Softmem.Event.addr)
            e.Softmem.Event.cycle
      | Softmem.Perm.Probe _ -> (
          match
            Hashtbl.find_opt acquires (e.Softmem.Event.node, e.Softmem.Event.addr)
          with
          | Some acq when e.Softmem.Event.cycle - acq <= window ->
              result :=
                {
                  ov_addr = e.Softmem.Event.addr;
                  ov_node = e.Softmem.Event.node;
                  ov_acquire_cycle = acq;
                  ov_probe_cycle = e.Softmem.Event.cycle;
                }
                :: !result
          | Some _ | None -> ())
      | Softmem.Perm.Grant _ | Softmem.Perm.Probe_ack _ | Softmem.Perm.Release
        ->
          ())
    (to_list db.cache_events);
  List.rev !result

(* Commits in a cycle range (the LightSSS region of interest). *)
let commits_between (db : t) ~from_cycle ~to_cycle : commit_row list =
  filter db.commits (fun (c : commit_row) ->
      c.Xiangshan.Probe.p_cycle >= from_cycle
      && c.Xiangshan.Probe.p_cycle <= to_cycle)

(* The last stores that drained to the line of [addr]. *)
let drains_for_line (db : t) ~(addr : int64) : drain_row list =
  let line = Int64.shift_right_logical addr 6 in
  filter db.drains (fun (d : drain_row) ->
      Int64.shift_right_logical d.Xiangshan.Probe.d_paddr 6 = line)

(* ---- persistence ------------------------------------------------------ *)

(* On-disk shape: plain lists, so the file does not depend on Queue's
   internal representation. *)
type disk = {
  dk_capacity : int;
  dk_commits : commit_row list;
  dk_drains : drain_row list;
  dk_cache : cache_row list;
  dk_counters : counter_row list;
}

let save (db : t) ~path =
  let d =
    {
      dk_capacity = db.commits.capacity;
      dk_commits = to_list db.commits;
      dk_drains = to_list db.drains;
      dk_cache = to_list db.cache_events;
      dk_counters = to_list db.counters;
    }
  in
  Journal.atomic_write_file ~path (Marshal.to_string d [])

let load ~path : t =
  let ic = open_in_bin path in
  let d : disk =
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        Marshal.from_channel ic)
  in
  let db = create ~capacity:d.dk_capacity () in
  List.iter (insert db.commits) d.dk_commits;
  List.iter (insert db.drains) d.dk_drains;
  List.iter (insert db.cache_events) d.dk_cache;
  List.iter (insert db.counters) d.dk_counters;
  db

let pp_summary fmt (db : t) =
  Format.fprintf fmt
    "ArchDB: %d commits, %d store drains, %d cache transactions, %d counters"
    (count db.commits) (count db.drains) (count db.cache_events)
    (count db.counters)
