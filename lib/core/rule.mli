(** Diff-rules: the DRAV abstraction of paper §III-A.

    A rule reconciles one class of legal micro-architecture-dependent
    divergence between the DUT and the REF.  [pre] rules inspect a DUT
    commit before the REF steps and may force an event onto it
    (exception / interrupt / SC failure); [post] rules run after the
    REF stepped and may patch it (non-deterministic CSR reads,
    Global-Memory load values) or reject the commit as a real
    mismatch.

    Rules are data: {!Rules.standard} builds the RISC-V set, and
    verification code can pass its own list to {!Difftest.create} --
    which is what lets one REF serve many DUTs (the N-to-1
    correspondence of Figure 1c). *)

(** Shared state the rules operate on. *)
type ctx = {
  refs : Ref_model.t array; (** one single-core REF per hart *)
  global_mem : Global_memory.t;
  soc : Xiangshan.Soc.t;
  mutable failure : failure option;
  forced_history : (int * int64, int) Hashtbl.t;
      (** per (hart, pc) counts guarding against forced-event
          livelock (paper: forced events are "tracked and asserted
          not to repeatedly occur") *)
}

and failure = {
  f_cycle : int;
  f_hart : int;
  f_pc : int64;
  f_rule : string;
  f_msg : string;
  f_commits : int;
      (** commits checked when the failure fired; -1 if unknown *)
  f_probe : string;
      (** snapshot of the offending commit probe (pc, instruction,
          DUT memory-access values), or [""] when no probe applies *)
}

type verdict = Pass | Patched | Fail of string

val describe_probe : Xiangshan.Probe.commit -> string
(** One-line snapshot of a commit probe for failure reports. *)

val string_of_failure : failure -> string
(** Everything a report needs on one line: cycle, hart, pc, the rule
    that fired, the message, and the probe snapshot. *)

type t = {
  name : string;
  descr : string;
  mutable fires : int;
  pre : (ctx -> hart:int -> Xiangshan.Probe.commit -> bool) option;
      (** returns whether the rule fired (forced an event) *)
  post :
    (ctx ->
    hart:int ->
    Xiangshan.Probe.commit ->
    Ref_model.commit ->
    verdict)
    option;
}

val make :
  ?pre:(ctx -> hart:int -> Xiangshan.Probe.commit -> bool) ->
  ?post:
    (ctx ->
    hart:int ->
    Xiangshan.Probe.commit ->
    Ref_model.commit ->
    verdict) ->
  name:string ->
  descr:string ->
  unit ->
  t

val fail :
  ctx -> hart:int -> probe:Xiangshan.Probe.commit -> rule:string -> string -> unit

val max_consecutive_forces : int

val bump_force_guard :
  ctx -> hart:int -> probe:Xiangshan.Probe.commit -> rule:string -> unit

val clear_force_guard : ctx -> hart:int -> probe:Xiangshan.Probe.commit -> unit
