(* The REF behind a first-class interface (paper §III-B: "one simple
   REF verifies many DUTs" -- and the REF itself is swappable).

   DiffTest, the diff-rules, the workflow and the campaign all talk
   to the reference model through this record of operations: the
   step-to-commit loop, the DRAV control plane (forced events, state
   patches, counter/time sync), the architectural-state diff, and
   the COW-memory enumeration LightSSS snapshots.  Two backends are
   provided: the straightforward [Iss.Interp] interpreter and the
   NEMU block-compiled engine in its non-autonomous REF mode
   ([Nemu.Ref_core]) -- the paper's choice, fast enough to keep
   co-simulation off the critical path.

   The record fields are closures over the backend value, which is
   exactly what LightSSS needs: Marshal with [Closures] captures the
   whole record (environment included), so a snapshot of a DiffTest
   instance carries its REFs whichever backend is active. *)

type kind = Iss | Nemu

(* The commit vocabulary is shared with the ISS REF: every backend
   reports retirement in the same records. *)
type mem_access = Iss.Interp.mem_access = {
  vaddr : int64;
  paddr : int64;
  size : int;
  value : int64;
}

type trap_info = Iss.Interp.trap_info = { exc : Riscv.Trap.exc; tval : int64 }

type commit = Iss.Interp.commit = {
  pc : int64;
  insn : Riscv.Insn.t;
  next_pc : int64;
  trap : trap_info option;
  interrupt : Riscv.Trap.irq option;
  load : mem_access option;
  store : mem_access option;
  sc_failed : bool;
  csr_read : (int * int64) option;
  mmio : bool;
}

type step_result = Iss.Interp.step_result = Committed of commit | Exited

type t = {
  kind : kind;
  hartid : int;
  step : unit -> step_result;
  (* DRAV control plane *)
  force_exception : Riscv.Trap.exc -> int64 -> unit;
  force_interrupt : Riscv.Trap.irq -> unit;
  force_sc_failure : unit -> unit;
  patch_reg : int -> int64 -> unit;
  patch_freg : int -> int64 -> unit;
  patch_mem : paddr:int64 -> size:int -> value:int64 -> unit;
  get_reg : int -> int64;
  set_counters : cycle:int64 -> instret:int64 -> unit;
  set_mcycle : int64 -> unit;
  set_time : int64 -> unit;
  set_mip_bit : int -> bool -> unit;
  (* observation *)
  diff_against : Riscv.Arch_state.t -> string option;
  memories : unit -> Riscv.Memory.t list;
  exited : unit -> bool;
  exit_code : unit -> int option;
}

let kind_name = function Iss -> "iss" | Nemu -> "nemu"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "iss" -> Some Iss
  | "nemu" -> Some Nemu
  | _ -> None

(* Test/CI selector: MINJIE_REF=nemu flips every default-REF
   co-simulation in the process onto the NEMU backend. *)
let kind_of_env () =
  match Sys.getenv_opt "MINJIE_REF" with
  | None | Some "" -> Iss
  | Some s -> (
      match kind_of_string s with
      | Some k -> k
      | None -> invalid_arg (Printf.sprintf "MINJIE_REF=%S (want iss|nemu)" s))

let of_iss (r : Iss.Interp.t) : t =
  {
    kind = Iss;
    hartid = r.Iss.Interp.st.Riscv.Arch_state.hartid;
    step = (fun () -> Iss.Interp.step r);
    force_exception = Iss.Interp.force_exception r;
    force_interrupt = Iss.Interp.force_interrupt r;
    force_sc_failure = (fun () -> Iss.Interp.force_sc_failure r);
    patch_reg = Iss.Interp.patch_reg r;
    patch_freg = Riscv.Arch_state.set_freg r.Iss.Interp.st;
    patch_mem = (fun ~paddr ~size ~value -> Iss.Interp.patch_mem r ~paddr ~size ~value);
    get_reg = Riscv.Arch_state.get_reg r.Iss.Interp.st;
    set_counters =
      (fun ~cycle ~instret -> Iss.Interp.set_counters r ~cycle ~instret);
    set_mcycle =
      (fun v -> r.Iss.Interp.st.Riscv.Arch_state.csr.Riscv.Csr.reg_mcycle <- v);
    set_time = Iss.Interp.set_time r;
    set_mip_bit = Iss.Interp.set_mip_bit r;
    diff_against = (fun dut -> Riscv.Arch_state.diff dut r.Iss.Interp.st);
    memories = (fun () -> [ r.Iss.Interp.plat.Riscv.Platform.mem ]);
    exited = (fun () -> Iss.Interp.exited r);
    exit_code = (fun () -> Iss.Interp.exit_code r);
  }

let of_nemu (r : Nemu.Ref_core.t) : t =
  {
    kind = Nemu;
    hartid = Int64.to_int r.Nemu.Ref_core.m.Nemu.Mach.csr.Riscv.Csr.hartid;
    step = (fun () -> Nemu.Ref_core.step r);
    force_exception = Nemu.Ref_core.force_exception r;
    force_interrupt = Nemu.Ref_core.force_interrupt r;
    force_sc_failure = (fun () -> Nemu.Ref_core.force_sc_failure r);
    patch_reg = Nemu.Ref_core.patch_reg r;
    patch_freg = Nemu.Ref_core.patch_freg r;
    patch_mem =
      (fun ~paddr ~size ~value -> Nemu.Ref_core.patch_mem r ~paddr ~size ~value);
    get_reg = Nemu.Ref_core.get_reg r;
    set_counters =
      (fun ~cycle ~instret -> Nemu.Ref_core.set_counters r ~cycle ~instret);
    set_mcycle = Nemu.Ref_core.set_mcycle r;
    set_time = Nemu.Ref_core.set_time r;
    set_mip_bit = Nemu.Ref_core.set_mip_bit r;
    diff_against = Nemu.Ref_core.diff_against r;
    memories = (fun () -> Nemu.Ref_core.memories r);
    exited = (fun () -> Nemu.Ref_core.exited r);
    exit_code = (fun () -> Nemu.Ref_core.exit_code r);
  }

(* Build a fresh non-autonomous REF of [kind] with [prog] loaded. *)
let create ?(kind = Iss) ~hartid ~(prog : Riscv.Asm.program) () : t =
  match kind with
  | Iss ->
      let r = Iss.Interp.create ~autonomous:false ~hartid () in
      Iss.Interp.load_program r prog;
      of_iss r
  | Nemu ->
      let r = Nemu.Ref_core.create ~hartid () in
      Nemu.Ref_core.load_program r prog;
      of_nemu r
