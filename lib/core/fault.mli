(** Fault-model registry for the injection campaign.

    Each fault is a parameterised, seed-deterministic corruption of
    one DUT layer, installed on a freshly built SoC through
    {!Xiangshan.Soc.add_fault_hook} (cycle-triggered hooks that are
    marshalled into LightSSS snapshots, so they re-fire identically in
    the debug replay) or through the §IV-C knobs the SoC already
    exposes.  A fault also names the workload/configuration that
    exercises the broken structure and the diff-rules that are
    expected to catch it -- the campaign driver
    ({!Campaign}) asserts that detection happens, that the firing
    rule is one of the expected ones, and that the failure reproduces
    in the snapshot replay. *)

type config = Yqh  (** single-core YQH *) | Nh  (** dual-core NH *)

type t = {
  f_name : string;
  f_layer : string;
      (** DUT layer the corruption lives in: "bpu", "rename", "rob",
          "iq", "lsu", "tlb", "cache", "dram" or "csr" *)
  f_descr : string;
  f_workload : string;  (** workload (by suite name) that exposes it *)
  f_config : config;
  f_trigger : int;  (** default injection cycle *)
  f_expected_rules : string list;
      (** diff-rules that may legitimately report this fault; any
          other rule (or no detection at all) is a campaign failure *)
  f_install : seed:int -> trigger:int -> Xiangshan.Soc.t -> unit;
}

val all : t list
(** The registry: fifteen faults spanning every DUT layer, including
    the two §IV-C cache bugs ("cache-mshr-race", "cache-skip-probe")
    and two deadlock faults that only the hang watchdog can see. *)

val find : string -> t
(** @raise Invalid_argument on an unknown fault name. *)

val names : unit -> string list

val mix : seed:int -> salt:int -> int
(** Small deterministic hash used to derive per-fault parameters from
    the campaign seed (exposed for tests). *)
