(* DiffTest: the DRAV co-simulation framework for RISC-V processors
   (§III-B, Figure 4).

   The DUT (a Xiangshan.Soc) and one single-core REF per hart run
   simultaneously; the DUT's commit stream, extracted by the
   information probes, drives the REFs instruction by instruction.
   Diff-rules reconcile legal micro-architecture-dependent divergence;
   anything they cannot justify aborts the simulation with a located
   failure, which the LightSSS workflow can then replay in debug
   mode. *)

open Riscv

type status =
  | Running
  | Finished of int (* exit code *)
  | Failed of Rule.failure

(* Store accounting (the drain checker): every committed store must
   reach the cache hierarchy, in order, with its committed value.
   Faults that drop, reorder or never perform drains are invisible to
   the Global Memory rule (unrecorded bytes are unconstrained there),
   so they are checked directly against the commit stream. *)
type pending_store = {
  ps_paddr : int64;
  ps_size : int;
  ps_value : int64;
  ps_commit_cycle : int;
}

type t = {
  soc : Xiangshan.Soc.t;
  ref_kind : Ref_model.kind;
  ctx : Rule.ctx;
  rules : Rule.t list;
  queues : Xiangshan.Probe.commit Queue.t array;
  scoreboard : Softmem.Scoreboard.t option;
  mutable status : status;
  mutable commits_checked : int;
  mutable debug_log : (int * string) list; (* debug mode only *)
  mutable debug : bool;
  last_commit_cycle : int array; (* per-hart watchdog *)
  mutable commit_timeout : int;
  (* store accounting *)
  pending_stores : pending_store Queue.t array; (* per hart, commit order *)
  early_drains : pending_store list array;
      (* drains seen this cycle before their commit probe was
         processed (a store can retire into the buffer and drain in
         the same cycle); also absorbs atomics' direct writes, which
         have no store probe.  Cleared every tick. *)
  mutable store_timeout : int;
}

let fail_now (t : t) ~hart ~pc ?(probe = "") ~rule msg =
  if
    match t.status with
    | Running -> true
    | Finished _ | Failed _ -> false
  then
    t.status <-
      Failed
        {
          Rule.f_cycle = t.soc.Xiangshan.Soc.now;
          f_hart = hart;
          f_pc = pc;
          f_rule = rule;
          f_msg = msg;
          f_commits = t.commits_checked;
          f_probe = probe;
        }

let log t fmt =
  Printf.ksprintf
    (fun s -> if t.debug then t.debug_log <- (t.soc.Xiangshan.Soc.now, s) :: t.debug_log)
    fmt

(* A drain arrived from hart [hart]'s store buffer.  Committed stores
   drain in commit order, so the drain must match the oldest pending
   store exactly; matching a younger one instead means an older store
   was skipped or the buffer reordered.  Drains with no pending match
   are parked in [early_drains] until this cycle's commit probes are
   processed (same-cycle retire+drain, atomics' direct writes). *)
let note_drain (t : t) hart (d : Xiangshan.Probe.store_drain) =
  let dp = d.Xiangshan.Probe.d_paddr
  and ds = d.Xiangshan.Probe.d_size
  and dv = d.Xiangshan.Probe.d_value in
  let park () =
    t.early_drains.(hart) <-
      {
        ps_paddr = dp;
        ps_size = ds;
        ps_value = dv;
        ps_commit_cycle = d.Xiangshan.Probe.d_cycle;
      }
      :: t.early_drains.(hart)
  in
  let q = t.pending_stores.(hart) in
  if Queue.is_empty q then park ()
  else begin
    let h = Queue.peek q in
    if h.ps_paddr = dp && h.ps_size = ds then begin
      if h.ps_value = dv then ignore (Queue.pop q)
      else
        fail_now t ~hart ~pc:t.soc.Xiangshan.Soc.cores.(hart)
                          .Xiangshan.Core.arch.Riscv.Arch_state.pc
          ~rule:"store-drain-value"
          (Printf.sprintf
             "store @0x%Lx (size %d) committed 0x%Lx but drained 0x%Lx" dp ds
             h.ps_value dv)
    end
    else begin
      (* FIFO order means a clean drain always matches the head; a
         match deeper in the queue is a drop or reorder of everything
         older *)
      let depth = ref 0 and found = ref (-1) in
      Queue.iter
        (fun p ->
          if !found < 0 then begin
            if !depth > 0 && p.ps_paddr = dp && p.ps_size = ds
               && p.ps_value = dv
            then found := !depth;
            incr depth
          end)
        q;
      if !found > 0 then
        fail_now t ~hart ~pc:t.soc.Xiangshan.Soc.cores.(hart)
                          .Xiangshan.Core.arch.Riscv.Arch_state.pc
          ~rule:"store-drain-order"
          (Printf.sprintf
             "drain @0x%Lx=0x%Lx matches the committed store %d deep; the \
              older store @0x%Lx=0x%Lx (commit cycle %d) was skipped or \
              reordered"
             dp dv !found h.ps_paddr h.ps_value h.ps_commit_cycle)
      else park ()
    end
  end

(* A store probe committed: either its drain already raced past this
   cycle (consume the parked announcement) or it joins the pending
   queue to be matched when the buffer drains it. *)
let note_committed_store (t : t) ~hart (p : Xiangshan.Probe.commit) =
  match p.Xiangshan.Probe.p_store with
  | Some m when not p.Xiangshan.Probe.p_mmio ->
      let entry =
        {
          ps_paddr = m.Xiangshan.Probe.m_paddr;
          ps_size = m.Xiangshan.Probe.m_size;
          ps_value = m.Xiangshan.Probe.m_value;
          ps_commit_cycle = p.Xiangshan.Probe.p_cycle;
        }
      in
      let rec take acc = function
        | [] -> None
        | (e : pending_store) :: rest ->
            if
              e.ps_paddr = entry.ps_paddr && e.ps_size = entry.ps_size
              && e.ps_value = entry.ps_value
            then Some (List.rev_append acc rest)
            else take (e :: acc) rest
      in
      (match take [] t.early_drains.(hart) with
      | Some rest -> t.early_drains.(hart) <- rest
      | None -> Queue.add entry t.pending_stores.(hart))
  | _ -> ()

(* Attach probes to the SoC and build REFs mirroring the program.
   [ref_kind] selects the reference-model backend (default: the
   MINJIE_REF environment variable, then the ISS). *)
let create ?rules ?(with_scoreboard = true) ?ref_kind
    ~(prog : Asm.program) (soc : Xiangshan.Soc.t) : t =
  let rules = match rules with Some r -> r | None -> Rules.standard () in
  let ref_kind =
    match ref_kind with Some k -> k | None -> Ref_model.kind_of_env ()
  in
  let n = Array.length soc.Xiangshan.Soc.cores in
  let refs =
    Array.init n (fun hartid ->
        Ref_model.create ~kind:ref_kind ~hartid ~prog ())
  in
  let ctx =
    {
      Rule.refs;
      global_mem = Global_memory.create ();
      soc;
      failure = None;
      forced_history = Hashtbl.create 64;
    }
  in
  let queues = Array.init n (fun _ -> Queue.create ()) in
  let scoreboard =
    if not with_scoreboard then None
    else begin
      let parent, children =
        match soc.Xiangshan.Soc.l3 with
        | Some _ ->
            ( "l3",
              Array.init n (fun i -> Printf.sprintf "l2.%d" i) )
        | None ->
            ( "l2.0",
              [| "l1i.0"; "l1d.0"; "ptw.0" |] )
      in
      Some (Softmem.Scoreboard.create ~node:parent ~children)
    end
  in
  let t =
    {
      soc;
      ref_kind;
      ctx;
      rules;
      queues;
      scoreboard;
      status = Running;
      commits_checked = 0;
      debug_log = [];
      debug = false;
      last_commit_cycle = Array.make n 0;
      commit_timeout = 20_000;
      pending_stores = Array.init n (fun _ -> Queue.create ());
      early_drains = Array.make n [];
      store_timeout = 10_000;
    }
  in
  Array.iteri
    (fun i core ->
      core.Xiangshan.Core.probes.Xiangshan.Probe.on_commit <-
        (fun p -> Queue.add p t.queues.(i));
      core.Xiangshan.Core.probes.Xiangshan.Probe.on_drain <-
        (fun d ->
          Global_memory.record ctx.Rule.global_mem
            ~cycle:d.Xiangshan.Probe.d_cycle ~paddr:d.Xiangshan.Probe.d_paddr
            ~size:d.Xiangshan.Probe.d_size ~value:d.Xiangshan.Probe.d_value;
          note_drain t i d))
    soc.Xiangshan.Soc.cores;
  (match scoreboard with
  | Some sb ->
      Xiangshan.Soc.set_event_sink soc (fun ev ->
          Softmem.Scoreboard.observe sb ev)
  | None -> ());
  t

let apply_pre t ~hart (p : Xiangshan.Probe.commit) =
  List.iter
    (fun (r : Rule.t) ->
      match r.Rule.pre with
      | Some f -> if f t.ctx ~hart p then r.Rule.fires <- r.Rule.fires + 1
      | None -> ())
    t.rules

let apply_post t ~hart (p : Xiangshan.Probe.commit) (c : Ref_model.commit) =
  List.iter
    (fun (r : Rule.t) ->
      match r.Rule.post with
      | Some f -> (
          match f t.ctx ~hart p c with
          | Rule.Pass -> ()
          | Rule.Patched ->
              r.Rule.fires <- r.Rule.fires + 1;
              log t "rule %s patched REF at pc=0x%Lx" r.Rule.name p.p_pc
          | Rule.Fail msg ->
              r.Rule.fires <- r.Rule.fires + 1;
              fail_now t ~hart ~pc:p.p_pc ~probe:(Rule.describe_probe p)
                ~rule:r.Rule.name msg)
      | None -> ())
    t.rules

let process_commit t ~hart (p : Xiangshan.Probe.commit) =
  let r = t.ctx.Rule.refs.(hart) in
  t.commits_checked <- t.commits_checked + 1;
  t.last_commit_cycle.(hart) <- p.p_cycle;
  note_committed_store t ~hart p;
  apply_pre t ~hart p;
  (match t.ctx.Rule.failure with
  | Some f ->
      t.status <- Failed { f with Rule.f_commits = t.commits_checked };
      t.ctx.Rule.failure <- None
  | None -> ());
  match t.status with
  | Failed _ | Finished _ -> ()
  | Running -> (
      match r.Ref_model.step () with
      | Ref_model.Exited -> ()
      | Ref_model.Committed c -> (
          if c.Ref_model.pc <> p.p_pc then
            fail_now t ~hart ~pc:p.p_pc ~probe:(Rule.describe_probe p)
              ~rule:"pc-check"
              (Printf.sprintf "pc mismatch: DUT commits 0x%Lx, REF at 0x%Lx"
                 p.p_pc c.Ref_model.pc);
          (* fused second instruction: the REF executes both *)
          let final_c =
            match p.p_second with
            | Some _ -> (
                match r.Ref_model.step () with
                | Ref_model.Committed c2 -> c2
                | Ref_model.Exited -> c)
            | None -> c
          in
          apply_post t ~hart p c;
          match t.status with
          | Failed _ | Finished _ -> ()
          | Running ->
              if
                final_c.Ref_model.next_pc <> p.p_next_pc
                && p.p_trap = None && p.p_interrupt = None
              then
                fail_now t ~hart ~pc:p.p_pc ~probe:(Rule.describe_probe p)
                  ~rule:"next-pc-check"
                  (Printf.sprintf
                     "next pc mismatch at 0x%Lx: DUT 0x%Lx, REF 0x%Lx" p.p_pc
                     p.p_next_pc final_c.Ref_model.next_pc)))

(* End-of-cycle architectural comparison (after the commit queue of
   each hart has been drained). *)
let compare_states t =
  Array.iteri
    (fun hart (core : Xiangshan.Core.t) ->
      if not (Queue.is_empty t.queues.(hart)) then ()
      else
        let r = t.ctx.Rule.refs.(hart) in
        match r.Ref_model.diff_against core.Xiangshan.Core.arch with
        | Some msg ->
            fail_now t ~hart ~pc:core.Xiangshan.Core.arch.Arch_state.pc
              ~rule:"state-compare" ("DUT vs REF: " ^ msg)
        | None -> ())
    t.soc.Xiangshan.Soc.cores

let check_scoreboard t =
  match t.scoreboard with
  | Some sb when not (Softmem.Scoreboard.ok sb) ->
      let v = List.hd (Softmem.Scoreboard.violations sb) in
      fail_now t ~hart:(-1) ~pc:0L ~rule:"cache-permission-scoreboard"
        (Printf.sprintf "block 0x%Lx at cycle %d: %s"
           v.Softmem.Scoreboard.v_addr v.Softmem.Scoreboard.v_cycle
           v.Softmem.Scoreboard.v_msg)
  | Some _ | None -> ()

(* One co-simulated cycle. *)
let tick t =
  match t.status with
  | Failed _ | Finished _ -> ()
  | Running ->
      Xiangshan.Soc.tick t.soc;
      (* keep REF wall-clock in sync (part of the time diff-rule) *)
      Array.iter
        (fun (r : Ref_model.t) ->
          r.Ref_model.set_time
            t.soc.Xiangshan.Soc.plat.Platform.clint.Platform.Clint.mtime)
        t.ctx.Rule.refs;
      Array.iteri
        (fun hart q ->
          while
            (not (Queue.is_empty q))
            && match t.status with Running -> true | _ -> false
          do
            process_commit t ~hart (Queue.pop q)
          done)
        t.queues;
      (* parked drain announcements only live until this cycle's
         probes are processed *)
      Array.iteri (fun i _ -> t.early_drains.(i) <- []) t.early_drains;
      (match t.status with
      | Running ->
          compare_states t;
          check_scoreboard t;
          (* hang watchdog: a hart that stops committing is hung --
             the bug class commit-diffing cannot see.  The failure
             carries the retirement stall site from the probes. *)
          Array.iteri
            (fun hart last ->
              if
                t.soc.Xiangshan.Soc.now - last > t.commit_timeout
                && not (Xiangshan.Soc.exited t.soc)
              then
                fail_now t ~hart
                  ~pc:t.soc.Xiangshan.Soc.cores.(hart)
                        .Xiangshan.Core.arch.Arch_state.pc
                  ~rule:"hang-watchdog"
                  (Printf.sprintf
                     "hart %d committed nothing for %d cycles; stall site: %s"
                     hart t.commit_timeout
                     (Xiangshan.Core.stall_site t.soc.Xiangshan.Soc.cores.(hart))))
            t.last_commit_cycle;
          (* store accounting: a committed store must drain within the
             timeout (dropped or wedged store buffers) *)
          Array.iteri
            (fun hart q ->
              if not (Queue.is_empty q) then begin
                let h = Queue.peek q in
                if
                  t.soc.Xiangshan.Soc.now - h.ps_commit_cycle > t.store_timeout
                  && not (Xiangshan.Soc.exited t.soc)
                then
                  fail_now t ~hart
                    ~pc:t.soc.Xiangshan.Soc.cores.(hart)
                          .Xiangshan.Core.arch.Arch_state.pc
                    ~rule:"store-drain-timeout"
                    (Printf.sprintf
                       "store @0x%Lx=0x%Lx committed at cycle %d never \
                        drained (%d cycles ago); %s"
                       h.ps_paddr h.ps_value h.ps_commit_cycle
                       (t.soc.Xiangshan.Soc.now - h.ps_commit_cycle)
                       (Xiangshan.Core.stall_site
                          t.soc.Xiangshan.Soc.cores.(hart)))
              end)
            t.pending_stores;
          if Xiangshan.Soc.exited t.soc then
            t.status <-
              Finished (Option.value (Xiangshan.Soc.exit_code t.soc) ~default:(-1))
      | Failed _ | Finished _ -> ())

let run ?(max_cycles = 50_000_000) t : status =
  let start = t.soc.Xiangshan.Soc.now in
  while
    (match t.status with Running -> true | Failed _ | Finished _ -> false)
    && t.soc.Xiangshan.Soc.now - start < max_cycles
  do
    tick t
  done;
  t.status

(* Sorted by rule name so output is stable across rule-list order
   and REF backends. *)
let rule_fire_counts t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.map (fun (r : Rule.t) -> (r.Rule.name, r.Rule.fires)) t.rules)

let set_commit_timeout t n = t.commit_timeout <- n

let set_store_timeout t n = t.store_timeout <- n

let enable_debug t = t.debug <- true

let debug_log t = List.rev t.debug_log

(* --- accessors (the record is abstract outside this module) ----------- *)

let soc t = t.soc

let ref_kind t = t.ref_kind

let refs t = t.ctx.Rule.refs

let ctx t = t.ctx

let global_mem t = t.ctx.Rule.global_mem

let status t = t.status

let commits_checked t = t.commits_checked
