(* Fault-model registry for the injection campaign.

   Every fault here is the kind of bug the paper's verification stack
   is supposed to catch: a targeted corruption of one DUT structure,
   triggered at a configurable cycle and parameterised by a campaign
   seed.  Installation goes through Soc.add_fault_hook wherever the
   fault needs a cycle trigger: the hooks are part of the SoC record,
   so LightSSS marshals them into every snapshot and they re-fire at
   the same cycles during the debug replay -- which is what makes an
   injected failure reproducible from a restored snapshot.

   Hooks are written statelessly (conditions on soc.now only, plus
   state that itself lives inside the marshalled simulator graph) so
   that a replay that restores to any point, before or after the
   trigger, sees the same fault behaviour. *)

type config = Yqh | Nh

type t = {
  f_name : string;
  f_layer : string;
  f_descr : string;
  f_workload : string;
  f_config : config;
  f_trigger : int;
  f_expected_rules : string list;
  f_install : seed:int -> trigger:int -> Xiangshan.Soc.t -> unit;
}

(* Deterministic parameter derivation: the campaign seed is the only
   source of variation, so a (fault, workload, seed) cell always runs
   identically. *)
let mix ~seed ~salt =
  let h = (seed * 0x9E3779B1) lxor (salt * 0x85EBCA6B) in
  (h lxor (h lsr 13)) land 0x3FFF_FFFF

let core_of (soc : Xiangshan.Soc.t) ~seed =
  let n = Array.length soc.Xiangshan.Soc.cores in
  soc.Xiangshan.Soc.cores.(seed mod n)

(* Refire predicate: fires at [trigger] and every [period] cycles
   after it, purely as a function of the current cycle. *)
let refires (soc : Xiangshan.Soc.t) ~trigger ~period =
  let now = soc.Xiangshan.Soc.now in
  now >= trigger && (now - trigger) mod period = 0

(* --- the registry --------------------------------------------------- *)

let bpu_wrong_path =
  {
    f_name = "bpu-wrong-path-commit";
    f_layer = "bpu";
    f_descr =
      "BTB/uBTB targets bit-flipped while redirect-on-mispredict is \
       suppressed for a few branches: wrong-path instructions commit";
    f_workload = "sjeng_like";
    f_config = Yqh;
    f_trigger = 2_000;
    f_expected_rules = [ "next-pc-check"; "pc-check"; "state-compare" ];
    f_install =
      (fun ~seed ~trigger soc ->
        Xiangshan.Soc.add_fault_hook soc (fun s ->
            if refires s ~trigger ~period:2_000 then begin
              let core = core_of s ~seed:0 in
              ignore (Xiangshan.Bpu.corrupt_targets core.Xiangshan.Core.bpu);
              core.Xiangshan.Core.bug_trust_bpu <-
                4 + (mix ~seed ~salt:1 mod 4)
            end));
  }

let rename_alias =
  {
    f_name = "rename-alias-corruption";
    f_layer = "rename";
    f_descr =
      "the rename map of one architectural register is silently pointed \
       at another's physical register (a free-list / map-table bug); \
       the leaked pregs also slowly starve the free list";
    f_workload = "coremark_like";
    f_config = Yqh;
    f_trigger = 2_000;
    f_expected_rules =
      [
        "state-compare";
        "pc-check";
        "next-pc-check";
        "global-memory-load";
        "hang-watchdog";
      ];
    f_install =
      (fun ~seed ~trigger soc ->
        Xiangshan.Soc.add_fault_hook soc (fun s ->
            if refires s ~trigger ~period:2_000 then begin
              let core = core_of s ~seed:0 in
              let k = (s.Xiangshan.Soc.now - trigger) / 2_000 in
              let rd = 5 + ((seed + k) mod 11) (* x5..x15 *) in
              let rs = 16 + ((seed + k) mod 4) (* x16..x19 *) in
              Xiangshan.Rename.corrupt_alias core.Xiangshan.Core.rename
                ~arch_rd:rd ~arch_rs:rs
            end));
  }

let rob_reorder =
  {
    f_name = "rob-commit-reorder";
    f_layer = "rob";
    f_descr =
      "the ROB retires the second-oldest completed instruction before \
       the oldest (commit-port arbitration bug)";
    f_workload = "coremark_like";
    f_config = Yqh;
    f_trigger = 2_000;
    f_expected_rules = [ "pc-check"; "state-compare"; "next-pc-check" ];
    f_install =
      (fun ~seed:_ ~trigger soc ->
        Xiangshan.Soc.add_fault_hook soc (fun s ->
            if s.Xiangshan.Soc.now >= trigger then
              ignore
                (Xiangshan.Rob.swap_head_next
                   (core_of s ~seed:0).Xiangshan.Core.rob
                   ~now:s.Xiangshan.Soc.now)));
  }

let iq_lost_uop =
  {
    f_name = "iq-lost-uop";
    f_layer = "iq";
    f_descr =
      "an issue queue silently drops waiting uops (select/wakeup bug); \
       the ROB head never completes and retirement wedges -- only the \
       hang watchdog can see this";
    f_workload = "coremark_like";
    f_config = Yqh;
    f_trigger = 2_000;
    f_expected_rules = [ "hang-watchdog" ];
    f_install =
      (fun ~seed:_ ~trigger soc ->
        Xiangshan.Soc.add_fault_hook soc (fun s ->
            if s.Xiangshan.Soc.now >= trigger then
              Array.iter
                (fun iq -> ignore (Xiangshan.Iq.steal_waiting iq))
                (core_of s ~seed:0).Xiangshan.Core.iqs));
  }

let lsu_sb_drop =
  {
    f_name = "lsu-sb-drop";
    f_layer = "lsu";
    f_descr =
      "the store buffer drops committed stores instead of draining them \
       to the cache";
    f_workload = "stream_like";
    f_config = Yqh;
    f_trigger = 2_000;
    f_expected_rules =
      [
        "store-drain-order";
        "store-drain-timeout";
        "global-memory-load";
        "state-compare";
      ];
    f_install =
      (fun ~seed ~trigger soc ->
        Xiangshan.Soc.add_fault_hook soc (fun s ->
            if s.Xiangshan.Soc.now = trigger then
              (core_of s ~seed:0).Xiangshan.Core.lsu
                .Xiangshan.Lsu.bug_drop_drains <-
                1 + (mix ~seed ~salt:2 mod 3)));
  }

let lsu_sb_reorder =
  {
    f_name = "lsu-sb-reorder";
    f_layer = "lsu";
    f_descr = "the store buffer drains entries out of FIFO order";
    f_workload = "stream_like";
    f_config = Yqh;
    f_trigger = 2_000;
    f_expected_rules =
      [
        "store-drain-order";
        "store-drain-value";
        "global-memory-load";
        "state-compare";
      ];
    f_install =
      (fun ~seed ~trigger soc ->
        Xiangshan.Soc.add_fault_hook soc (fun s ->
            if s.Xiangshan.Soc.now = trigger then
              (core_of s ~seed:0).Xiangshan.Core.lsu
                .Xiangshan.Lsu.bug_reorder_drains <-
                2 + (mix ~seed ~salt:3 mod 3)));
  }

let lsu_silent_drain =
  {
    f_name = "lsu-silent-drain";
    f_layer = "lsu";
    f_descr =
      "drains write the cache but never announce themselves: Global \
       Memory misses the store and sibling LR reservations are not \
       snooped";
    f_workload = "smp_lrsc";
    f_config = Nh;
    f_trigger = 1_000;
    f_expected_rules =
      [
        "store-drain-timeout";
        "global-memory-load";
        "state-compare";
        "hang-watchdog";
      ];
    f_install =
      (fun ~seed ~trigger soc ->
        Xiangshan.Soc.add_fault_hook soc (fun s ->
            if s.Xiangshan.Soc.now = trigger then
              (core_of s ~seed).Xiangshan.Core.lsu
                .Xiangshan.Lsu.bug_silent_drains <-
                3 + (mix ~seed ~salt:4 mod 3)));
  }

let lsu_forward_corrupt =
  {
    f_name = "lsu-forward-corrupt";
    f_layer = "lsu";
    f_descr =
      "the store-to-load forwarding mux picks wrong lanes: forwarded \
       data is bit-flipped while the pending store itself drains \
       correctly";
    f_workload = "user_mode";
    f_config = Yqh;
    f_trigger = 1_000;
    f_expected_rules =
      [ "global-memory-load"; "state-compare"; "pc-check"; "next-pc-check" ];
    f_install =
      (fun ~seed ~trigger soc ->
        let mask = Int64.shift_left 1L (4 + (mix ~seed ~salt:8 mod 28)) in
        Xiangshan.Soc.add_fault_hook soc (fun s ->
            if s.Xiangshan.Soc.now = trigger then
              (core_of s ~seed:0).Xiangshan.Core.lsu
                .Xiangshan.Lsu.bug_forward_mask <- mask));
  }

let sb_wedge =
  {
    f_name = "sb-wedge";
    f_layer = "lsu";
    f_descr =
      "the store-buffer drain arbiter deadlocks: committed stores pile \
       up and retirement stalls behind a full buffer";
    f_workload = "stream_like";
    f_config = Yqh;
    f_trigger = 2_000;
    f_expected_rules = [ "store-drain-timeout"; "hang-watchdog" ];
    f_install =
      (fun ~seed:_ ~trigger soc ->
        Xiangshan.Soc.add_fault_hook soc (fun s ->
            if s.Xiangshan.Soc.now = trigger then
              (core_of s ~seed:0).Xiangshan.Core.lsu
                .Xiangshan.Lsu.bug_stall_drain <- true));
  }

let tlb_stale =
  {
    f_name = "tlb-stale-translation";
    f_layer = "tlb";
    f_descr =
      "data-side TLB entries keep a stale physical page (low ppn bit \
       forced) as if an sfence.vma were lost";
    f_workload = "vm_kernel_steady";
    f_config = Yqh;
    f_trigger = 4_000;
    f_expected_rules =
      [
        "global-memory-load";
        "state-compare";
        "pc-check";
        "next-pc-check";
        "page-fault-forcing";
      ];
    f_install =
      (fun ~seed:_ ~trigger soc ->
        Xiangshan.Soc.add_fault_hook soc (fun s ->
            if refires s ~trigger ~period:1_500 then
              ignore
                (Xiangshan.Tlb.corrupt_data_ppn
                   (core_of s ~seed:0).Xiangshan.Core.tlb)));
  }

let cache_grant_corrupt =
  {
    f_name = "cache-grant-corrupt";
    f_layer = "cache";
    f_descr =
      "valid L1D lines serve a bit-flipped data image (bad Grant \
       payload); a store to the line heals it";
    f_workload = "coremark_like";
    f_config = Yqh;
    f_trigger = 2_000;
    f_expected_rules =
      [ "global-memory-load"; "state-compare"; "pc-check"; "next-pc-check" ];
    f_install =
      (fun ~seed ~trigger soc ->
        Xiangshan.Soc.add_fault_hook soc (fun s ->
            if refires s ~trigger ~period:3_000 then
              ignore
                (Softmem.Cache.corrupt_lines
                   (core_of s ~seed:0).Xiangshan.Core.l1d
                   ~max:(2 + (mix ~seed ~salt:5 mod 3)))));
  }

let cache_mshr_race =
  {
    f_name = "cache-mshr-race";
    f_layer = "cache";
    f_descr =
      "the §IV-C L2 MSHR arbitration bug: a Probe overlapping an \
       in-flight Acquire captures the stale line image, which later \
       Grants serve upward";
    f_workload = "smp_lrsc";
    f_config = Nh;
    f_trigger = 0;
    f_expected_rules = [ "global-memory-load"; "hang-watchdog"; "state-compare" ];
    f_install =
      (fun ~seed ~trigger:_ soc ->
        Xiangshan.Soc.inject_l2_race_bug soc
          ~core:(seed mod Array.length soc.Xiangshan.Soc.cores));
  }

let cache_skip_probe =
  {
    f_name = "cache-skip-probe";
    f_layer = "cache";
    f_descr =
      "the shared level grants Trunk without probing sibling sharers \
       (directory bug); stale copies survive in other L1s";
    f_workload = "smp_spinlock";
    f_config = Nh;
    f_trigger = 0;
    f_expected_rules =
      [
        "cache-permission-scoreboard";
        "global-memory-load";
        "state-compare";
        "hang-watchdog";
      ];
    f_install =
      (fun ~seed:_ ~trigger:_ soc -> Xiangshan.Soc.inject_skip_probe_bug soc);
  }

let dram_stuck_bit =
  {
    f_name = "dram-stuck-bit";
    f_layer = "dram";
    f_descr =
      "one bit of a hot 512-byte data region is stuck at zero: every \
       cycle the faulty bit is cleared in backing memory";
    f_workload = "coremark_like";
    f_config = Yqh;
    f_trigger = 2_000;
    f_expected_rules =
      [ "global-memory-load"; "state-compare"; "pc-check"; "next-pc-check" ];
    f_install =
      (fun ~seed ~trigger soc ->
        (* the workloads' scratch array (Wl_common.data_base) *)
        let base = Workloads.Wl_common.data_base in
        let bit = mix ~seed ~salt:6 mod 16 in
        let mask = Int64.lognot (Int64.shift_left 1L bit) in
        Xiangshan.Soc.add_fault_hook soc (fun s ->
            if s.Xiangshan.Soc.now >= trigger then
              let mem = s.Xiangshan.Soc.plat.Riscv.Platform.mem in
              for k = 0 to 63 do
                let addr = Int64.add base (Int64.of_int (8 * k)) in
                let v = Riscv.Memory.read_bytes_le mem addr 8 in
                let v' = Int64.logand v mask in
                if v' <> v then Riscv.Memory.write_bytes_le mem addr 8 v'
              done));
  }

let csr_mtvec_corrupt =
  {
    f_name = "csr-mtvec-corrupt";
    f_layer = "csr";
    f_descr =
      "the committed mtvec flips a bit (CSR write-port corruption); \
       state comparison sees it the same cycle, and any trap after it \
       vectors to the wrong handler";
    f_workload = "timer_interrupts";
    f_config = Yqh;
    f_trigger = 2_000;
    f_expected_rules = [ "state-compare"; "pc-check"; "next-pc-check" ];
    f_install =
      (fun ~seed ~trigger soc ->
        let flip = Int64.shift_left 4L (mix ~seed ~salt:7 mod 4) in
        Xiangshan.Soc.add_fault_hook soc (fun s ->
            if s.Xiangshan.Soc.now = trigger then begin
              let csr =
                (core_of s ~seed:0).Xiangshan.Core.arch.Riscv.Arch_state.csr
              in
              csr.Riscv.Csr.reg_mtvec <-
                Int64.logxor csr.Riscv.Csr.reg_mtvec flip
            end));
  }

let all =
  [
    bpu_wrong_path;
    rename_alias;
    rob_reorder;
    iq_lost_uop;
    lsu_sb_drop;
    lsu_sb_reorder;
    lsu_silent_drain;
    lsu_forward_corrupt;
    sb_wedge;
    tlb_stale;
    cache_grant_corrupt;
    cache_mshr_race;
    cache_skip_probe;
    dram_stuck_bit;
    csr_mtvec_corrupt;
  ]

let find name =
  match List.find_opt (fun f -> f.f_name = name) all with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Fault.find: unknown fault %S" name)

let names () = List.map (fun f -> f.f_name) all
