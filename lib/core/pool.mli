(** Fork-based parallel simulation pool.

    The paper's checkpoint flow exists to replace a >150-hour FPGA run
    with "hours of parallel RTL simulation" (§III-D3), and the
    fault-injection campaign's claims rest on many independent
    (fault x seed) cells; both fan-outs are embarrassingly parallel.
    This pool runs such job lists across [jobs] worker processes using
    [Unix.fork] + pipes + [Marshal] -- the LightSSS philosophy: a fork
    child shares every loaded program, decoded superblock and COW page
    with the parent for free, where OCaml 5 domains would race on the
    simulator's mutable global state.

    Semantics, by construction:

    - {b deterministic merging}: results come back in submission
      order, whatever order the workers finish in;
    - {b longest-expected-first scheduling}: jobs are dispatched in
      decreasing [j_cost] order so a long tail job cannot strand the
      pool at the end of the run;
    - {b crash isolation}: a worker that exits non-zero, dies on a
      signal, or writes a truncated result surfaces as that one job's
      {!Crashed} outcome -- the pool never aborts;
    - {b per-job timeout}: a job past its deadline gets SIGTERM, then
      SIGKILL after a grace period, and reports {!Timed_out};
    - EINTR-safe [waitpid]/[select] throughout; every child is reaped.

    [jobs = 1] (the default) runs every job in-process, in submission
    order, with no fork -- byte-identical to the pre-pool sequential
    code path (timeouts are not enforced in-process). *)

type 'r job = {
  j_label : string;  (** for progress lines and failure messages *)
  j_cost : float;
      (** expected relative cost; only the ordering matters
          (longest-expected-first dispatch) *)
  j_run : unit -> 'r;
      (** runs in the forked worker; the result must be marshallable
          plain data (no closures, no custom blocks) *)
}

type 'r outcome =
  | Done of 'r
  | Job_error of string  (** [j_run] raised; carries the exception *)
  | Crashed of string
      (** the worker process died (non-zero exit, signal, or
          truncated/undecodable result pipe) *)
  | Timed_out of float  (** seconds the job had run when killed *)

type 'r result = {
  r_index : int;  (** submission index *)
  r_label : string;
  r_outcome : 'r outcome;
  r_seconds : float;  (** wall-clock seconds, spawn to completion *)
  r_slot : int;  (** worker slot that ran the job *)
}

type slot_stats = {
  s_jobs : int;  (** jobs this worker slot ran *)
  s_seconds : float;  (** wall-clock seconds the slot was busy *)
}

type stats = {
  p_workers : int;  (** worker slots the pool ran with *)
  p_seconds : float;  (** wall-clock seconds for the whole pool run *)
  p_slots : slot_stats array;  (** length [p_workers] *)
  p_crashed : int;
  p_timed_out : int;
}

val env_jobs : unit -> int option
(** [MINJIE_JOBS], the process-wide default worker count.
    @raise Invalid_argument on a non-positive or non-integer value. *)

val resolve_jobs : ?jobs:int -> unit -> int
(** The effective worker count: [jobs] if given (clamped to >= 1),
    else [MINJIE_JOBS], else 1. *)

val host_cores : unit -> int
(** Online CPUs on this host (from /proc/cpuinfo; 1 if unreadable).
    Scaling beyond this is bookkeeping, not speedup. *)

val mem_ceiling_exit_code : int
(** Exit code a worker uses to report that it breached its cooperative
    memory ceiling (OCaml's [Unix] has no [setrlimit] binding, so the
    ceiling is a [Gc] alarm checking the major heap, not a hard kernel
    limit).  Decoded by the parent as a {!Crashed} outcome naming the
    ceiling. *)

val live_worker_pids : unit -> int list
(** Pids of worker processes currently forked by this process's pools.
    Empty outside {!map}; used by shutdown handlers. *)

val kill_live_workers : unit -> unit
(** SIGTERM, then SIGKILL and reap, every live worker.  Safe to call
    from a signal handler path; idempotent. *)

val map :
  ?jobs:int ->
  ?timeout:float ->
  ?kill_grace:float ->
  ?attempt:int ->
  ?mem_limit_mb:int ->
  ?isolate:bool ->
  ?dispatch:[ `Longest_first | `Fifo ] ->
  ?progress:('r result -> unit) ->
  'r job list ->
  'r result list * stats
(** Run every job; return results in submission order plus pool
    stats.  [timeout] (seconds, default none) applies per job;
    [kill_grace] (default 2s) is the SIGTERM-to-SIGKILL escalation
    delay.  [dispatch] (default [`Longest_first]) picks the queue
    order: longest-expected-first by [j_cost] minimises makespan when
    costs are roughly right, [`Fifo] dispatches in submission order
    (the scaling study's A/B baseline, and what a server with
    externally ordered batches wants).  [progress] is called in the
    parent as each result completes -- completion order, not
    submission order.

    [attempt] (default 0) is forwarded to {!Host_chaos.worker_fate} so
    chaos schedules can spare retries.  [mem_limit_mb] arms the
    cooperative per-worker memory ceiling (see
    {!mem_ceiling_exit_code}).  [isolate] forces the forked code path
    even at one worker -- a supervisor re-running a job that crashed
    the last process must not run it in the parent. *)
