(** DiffTest: the DRAV co-simulation framework for RISC-V processors
    (paper §III-B, Figure 4).

    A DUT ({!Xiangshan.Soc}) and one single-core REF per hart run
    simultaneously; the DUT's commit stream, extracted by the
    information probes, drives the REFs instruction by instruction.
    Diff-rules reconcile legal micro-architecture-dependent
    divergence; anything they cannot justify aborts the co-simulation
    with a located failure, which the LightSSS workflow can replay in
    debug mode.

    Always-on checks beyond the rules: per-commit pc and next-pc
    agreement, full architectural-state comparison at every cycle
    boundary, the permission scoreboard on the shared cache level, a
    per-hart hang watchdog (a hart that stops committing fails with
    the rule ["hang-watchdog"], the failure message carrying the
    retirement stall site), and per-hart store accounting (every
    committed store must drain to memory with the right value, in
    order, within a timeout: rules ["store-drain-timeout"],
    ["store-drain-order"], ["store-drain-value"]). *)

type status = Running | Finished of int | Failed of Rule.failure

type pending_store = {
  ps_paddr : int64;
  ps_size : int;
  ps_value : int64;
  ps_commit_cycle : int;
}

type t = {
  soc : Xiangshan.Soc.t;
  ctx : Rule.ctx;
  rules : Rule.t list;
  queues : Xiangshan.Probe.commit Queue.t array;
  scoreboard : Softmem.Scoreboard.t option;
  mutable status : status;
  mutable commits_checked : int;
  mutable debug_log : (int * string) list;
  mutable debug : bool;
  last_commit_cycle : int array;
  mutable commit_timeout : int;
  pending_stores : pending_store Queue.t array;
      (** per-hart committed-but-not-yet-drained stores *)
  early_drains : pending_store list array;
      (** drains announced before their commit probe was processed
          this cycle (same-cycle retire+drain, AMO/SC direct writes) *)
  mutable store_timeout : int;
}

val create :
  ?rules:Rule.t list ->
  ?with_scoreboard:bool ->
  prog:Riscv.Asm.program ->
  Xiangshan.Soc.t ->
  t
(** Wire probes into the SoC (which must already have the program
    loaded) and build one REF per hart running the same [prog].
    [rules] defaults to a fresh {!Rules.standard} set. *)

val tick : t -> unit
(** One co-simulated cycle: advance the SoC, drain and check each
    hart's commit queue, compare architectural states, check the
    scoreboard and the watchdog. *)

val run : ?max_cycles:int -> t -> status

val rule_fire_counts : t -> (string * int) list

val set_commit_timeout : t -> int -> unit
(** Cycles without a commit before the hang watchdog fires
    (default 20_000). *)

val set_store_timeout : t -> int -> unit
(** Cycles a committed store may sit undrained before
    ["store-drain-timeout"] fires (default 10_000). *)

val enable_debug : t -> unit
(** Record rule-patch events into the debug log (used on the LightSSS
    replay instance). *)

val debug_log : t -> (int * string) list
