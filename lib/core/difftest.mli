(** DiffTest: the DRAV co-simulation framework for RISC-V processors
    (paper §III-B, Figure 4).

    A DUT ({!Xiangshan.Soc}) and one single-core REF per hart run
    simultaneously; the DUT's commit stream, extracted by the
    information probes, drives the REFs instruction by instruction.
    Diff-rules reconcile legal micro-architecture-dependent
    divergence; anything they cannot justify aborts the co-simulation
    with a located failure, which the LightSSS workflow can replay in
    debug mode.

    The REF backend is pluggable (see {!Ref_model}): the plain ISS
    interpreter or the NEMU block-compiled engine in non-autonomous
    REF mode, selected per instance with [?ref_kind] or process-wide
    with the [MINJIE_REF] environment variable.

    Always-on checks beyond the rules: per-commit pc and next-pc
    agreement, full architectural-state comparison at every cycle
    boundary, the permission scoreboard on the shared cache level, a
    per-hart hang watchdog (a hart that stops committing fails with
    the rule ["hang-watchdog"], the failure message carrying the
    retirement stall site), and per-hart store accounting (every
    committed store must drain to memory with the right value, in
    order, within a timeout: rules ["store-drain-timeout"],
    ["store-drain-order"], ["store-drain-value"]). *)

type status = Running | Finished of int | Failed of Rule.failure

type t
(** A co-simulation instance.  Abstract: observe it through the
    accessors below. *)

val create :
  ?rules:Rule.t list ->
  ?with_scoreboard:bool ->
  ?ref_kind:Ref_model.kind ->
  prog:Riscv.Asm.program ->
  Xiangshan.Soc.t ->
  t
(** Wire probes into the SoC (which must already have the program
    loaded) and build one REF per hart running the same [prog].
    [rules] defaults to a fresh {!Rules.standard} set; [ref_kind]
    defaults to {!Ref_model.kind_of_env}[ ()]. *)

val tick : t -> unit
(** One co-simulated cycle: advance the SoC, drain and check each
    hart's commit queue, compare architectural states, check the
    scoreboard and the watchdog. *)

val run : ?max_cycles:int -> t -> status

(** {1 Accessors} *)

val status : t -> status

val soc : t -> Xiangshan.Soc.t

val ref_kind : t -> Ref_model.kind

val refs : t -> Ref_model.t array
(** The per-hart reference models (index = hartid). *)

val ctx : t -> Rule.ctx

val global_mem : t -> Global_memory.t

val commits_checked : t -> int

val rule_fire_counts : t -> (string * int) list
(** Fire count per rule, sorted by rule name (deterministic across
    rule-list order and REF backends). *)

(** {1 Tuning and debug} *)

val set_commit_timeout : t -> int -> unit
(** Cycles without a commit before the hang watchdog fires
    (default 20_000). *)

val set_store_timeout : t -> int -> unit
(** Cycles a committed store may sit undrained before
    ["store-drain-timeout"] fires (default 10_000). *)

val enable_debug : t -> unit
(** Record rule-patch events into the debug log (used on the LightSSS
    replay instance). *)

val debug_log : t -> (int * string) list
