(** ArchDB (paper §III-B3): a typed in-memory event database fed by
    the information probes.

    The paper's ArchDB is SQLite-backed with tables auto-generated
    from probe definitions; here each probe type has a typed, bounded
    table plus the queries the §IV-C debugging session needs. *)

type commit_row = Xiangshan.Probe.commit

type drain_row = Xiangshan.Probe.store_drain

type cache_row = Softmem.Event.t

type 'a table = { t_name : string; rows : 'a Queue.t; mutable capacity : int }

val make_table : string -> ?capacity:int -> unit -> 'a table

val insert : 'a table -> 'a -> unit
(** Bounded: the oldest row is dropped beyond [capacity]. *)

val to_list : 'a table -> 'a list

val filter : 'a table -> ('a -> bool) -> 'a list

val count : 'a table -> int

(** One persisted performance-counter value. *)
type counter_row = { cn_hartid : int; cn_name : string; cn_value : int }

type t = {
  commits : commit_row table;
  drains : drain_row table;
  cache_events : cache_row table;
  counters : counter_row table;
}

val create : ?capacity:int -> unit -> t

val attach : t -> Xiangshan.Soc.t -> unit
(** Tee every probe stream of the SoC into the database, preserving
    previously installed sinks (DiffTest's, for instance). *)

val record_counters : t -> Xiangshan.Soc.t -> unit
(** Persist [Core.counter_snapshot] of every hart into the [counters]
    table (called at the end of a run or debug replay). *)

(** {1 Queries} *)

val transactions_for_line : t -> addr:int64 -> cache_row list
(** All coherence transactions touching the 64-byte line of [addr]. *)

type overlap = {
  ov_addr : int64;
  ov_node : string;
  ov_acquire_cycle : int;
  ov_probe_cycle : int;
}

val acquire_probe_overlaps : t -> window:int -> overlap list
(** Blocks where a Probe reached a node within [window] cycles of an
    Acquire on the same block -- the §IV-C race signature. *)

val commits_between : t -> from_cycle:int -> to_cycle:int -> commit_row list

val drains_for_line : t -> addr:int64 -> drain_row list

val final_counters : t -> hartid:int -> (string * int) list
(** Latest recorded value of every counter of one hart. *)

(** {1 Persistence} *)

val save : t -> path:string -> unit
(** Dump the database (atomically: temp file + fsync + rename) so a
    campaign or debug session's evidence survives the process.  A
    crash mid-save leaves the previous dump or none, never a torn
    file. *)

val load : path:string -> t
(** Load a {!save}d database. *)

val pp_summary : Format.formatter -> t -> unit
