(** Worker supervision: retry/backoff and graceful degradation on top
    of {!Pool}.

    A multi-hour unattended campaign meets host faults the pool alone
    cannot absorb: a worker OOM-killed mid-cell, a transient stall, an
    EINTR storm that tears a result pipe.  The supervisor re-runs
    failed jobs with capped exponential backoff and {e classifies}
    each failure by re-running it once and comparing: a deterministic
    failure (a bug in the job, a job that always exhausts memory)
    reproduces with the same signature and is reported as-is after one
    confirmation -- it must never be retried away -- while a transient
    host fault does not reproduce and converges to a clean result.

    Crucially, a {e fault-detection verdict} from the campaign is a
    successful [Done] result carrying a mismatch -- the supervisor
    never sees it as a failure, so injected microarchitectural faults
    cannot be "retried away"; only harness-level failures (crash,
    timeout, exception) enter the retry path.

    Degradation ladder: a round with enough worker crashes halves the
    worker count for subsequent rounds, bottoming out at one worker --
    where crash/timeout retries still run fork-isolated
    ({!Pool.map}[ ~isolate:true]) so a deterministically-crashing job
    cannot take the harness down with it. *)

type policy = {
  sp_retries : int;  (** max re-runs per failed job (0 disables) *)
  sp_backoff_base : float;  (** seconds before the first retry round *)
  sp_backoff_cap : float;  (** backoff ceiling, seconds *)
  sp_mem_limit_mb : int option;
      (** cooperative per-worker memory ceiling (see
          {!Pool.mem_ceiling_exit_code}) *)
  sp_shrink_after : int;
      (** worker crashes in one round that trigger a pool halving *)
}

val default_policy : policy
(** 1 retry, 50ms base backoff capped at 2s, no memory ceiling,
    shrink after 3 crashes in a round. *)

val env_retries : unit -> int option
(** [MINJIE_RETRIES], the process-wide default retry budget.
    @raise Invalid_argument on a negative or non-integer value. *)

type report = {
  sup_rounds : int;  (** retry rounds actually executed *)
  sup_retried : int;  (** job re-runs across all rounds *)
  sup_recovered : int;  (** failed jobs that converged to [Done] *)
  sup_deterministic : int;
      (** failures that reproduced with the same signature and were
          finalized without spending the rest of the budget *)
  sup_gave_up : int;  (** failures still changing when budget ran out *)
  sup_shrinks : int;  (** pool halvings applied *)
  sup_final_workers : int;  (** worker count after degradation *)
}

val map :
  ?jobs:int ->
  ?timeout:float ->
  ?policy:policy ->
  ?progress:('r Pool.result -> unit) ->
  'r Pool.job list ->
  'r Pool.result list * Pool.stats * report
(** {!Pool.map} under supervision.  Results come back in submission
    order; each job's result is its {e final} outcome after retries.
    [progress] fires exactly once per job, when its outcome is final.
    [stats] are from the first (full-width) round. *)

(** {1 Clean shutdown}

    SIGINT/SIGTERM must not strand forked workers or tear half-written
    output.  {!install_signal_handlers} arms handlers that kill and
    reap every live pool worker, run the registered cleanups (journal
    sync/close, progress-line teardown), flush stdio, and [_exit] with
    the conventional status -- 130 for SIGINT, 143 for SIGTERM. *)

val at_shutdown : (unit -> unit) -> unit
(** Register a cleanup to run on signal-driven shutdown (LIFO;
    exceptions in one cleanup do not stop the others).  Cleanups run
    only on the signal path, not on normal exit. *)

val install_signal_handlers : unit -> unit
(** Arm the SIGINT/SIGTERM handlers described above.  Idempotent. *)
