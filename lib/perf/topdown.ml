type bucket =
  | Base
  | Frontend_icache
  | Frontend_fetch
  | Badspec_mispredict
  | Badspec_flush
  | Mem_load
  | Mem_store
  | Core_exec
  | Core_dep

let all =
  [
    Base;
    Frontend_icache;
    Frontend_fetch;
    Badspec_mispredict;
    Badspec_flush;
    Mem_load;
    Mem_store;
    Core_exec;
    Core_dep;
  ]

let n_buckets = List.length all

let index = function
  | Base -> 0
  | Frontend_icache -> 1
  | Frontend_fetch -> 2
  | Badspec_mispredict -> 3
  | Badspec_flush -> 4
  | Mem_load -> 5
  | Mem_store -> 6
  | Core_exec -> 7
  | Core_dep -> 8

let counter_name = function
  | Base -> "td.base"
  | Frontend_icache -> "td.frontend_icache"
  | Frontend_fetch -> "td.frontend_fetch"
  | Badspec_mispredict -> "td.badspec_mispredict"
  | Badspec_flush -> "td.badspec_flush"
  | Mem_load -> "td.mem_load"
  | Mem_store -> "td.mem_store"
  | Core_exec -> "td.core_exec"
  | Core_dep -> "td.core_dep"

type level1 = L1_base | L1_frontend | L1_badspec | L1_backend_mem | L1_backend_core

let level1_all = [ L1_base; L1_frontend; L1_badspec; L1_backend_mem; L1_backend_core ]

let level1_name = function
  | L1_base -> "base"
  | L1_frontend -> "frontend"
  | L1_badspec -> "bad_speculation"
  | L1_backend_mem -> "backend_memory"
  | L1_backend_core -> "backend_core"

let level1_of = function
  | Base -> L1_base
  | Frontend_icache | Frontend_fetch -> L1_frontend
  | Badspec_mispredict | Badspec_flush -> L1_badspec
  | Mem_load | Mem_store -> L1_backend_mem
  | Core_exec | Core_dep -> L1_backend_core

type stack = { ts_cycles : int; ts_instrs : int; ts_buckets : int array }

let of_counters counters =
  let lookup name =
    match List.assoc_opt name counters with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing counter %S" name)
  in
  let ( let* ) = Result.bind in
  let* cycles = lookup "core.cycles" in
  let* instrs = lookup "core.instrs" in
  let buckets = Array.make n_buckets 0 in
  let rec fill = function
    | [] -> Ok ()
    | b :: rest ->
        let* v = lookup (counter_name b) in
        buckets.(index b) <- v;
        fill rest
  in
  let* () = fill all in
  Ok { ts_cycles = cycles; ts_instrs = instrs; ts_buckets = buckets }

let check s =
  let sum = Array.fold_left ( + ) 0 s.ts_buckets in
  if sum = s.ts_cycles then Ok ()
  else
    Error
      (Printf.sprintf
         "CPI-stack buckets sum to %d but the core measured %d cycles (delta \
          %d): %s"
         sum s.ts_cycles (sum - s.ts_cycles)
         (String.concat ", "
            (List.map
               (fun b ->
                 Printf.sprintf "%s=%d" (counter_name b) s.ts_buckets.(index b))
               all)))

let cycles_of s b = s.ts_buckets.(index b)

let level1_cycles s =
  List.map
    (fun l1 ->
      let c =
        List.fold_left
          (fun acc b -> if level1_of b = l1 then acc + cycles_of s b else acc)
          0 all
      in
      (l1, c))
    level1_all

let cpi s =
  if s.ts_instrs = 0 then 0.0
  else float_of_int s.ts_cycles /. float_of_int s.ts_instrs

let ipc s =
  if s.ts_cycles = 0 then 0.0
  else float_of_int s.ts_instrs /. float_of_int s.ts_cycles

let frac s b =
  if s.ts_cycles = 0 then 0.0
  else float_of_int (cycles_of s b) /. float_of_int s.ts_cycles

let level1_frac s l1 =
  if s.ts_cycles = 0 then 0.0
  else
    let c = List.assoc l1 (level1_cycles s) in
    float_of_int c /. float_of_int s.ts_cycles

let render ?label s =
  let b = Buffer.create 512 in
  (match label with
  | Some l -> Buffer.add_string b (Printf.sprintf "top-down stack: %s\n" l)
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf "  cycles %d, instrs %d, IPC %.3f, CPI %.3f\n" s.ts_cycles
       s.ts_instrs (ipc s) (cpi s));
  List.iter
    (fun l1 ->
      Buffer.add_string b
        (Printf.sprintf "  %-16s %6.2f%%\n" (level1_name l1)
           (100.0 *. level1_frac s l1));
      List.iter
        (fun bk ->
          if level1_of bk = l1 then
            Buffer.add_string b
              (Printf.sprintf "    %-22s %6.2f%%  (%d cycles)\n"
                 (counter_name bk)
                 (100.0 *. frac s bk)
                 (cycles_of s bk)))
        all)
    level1_all;
  Buffer.contents b
