(* Top-down CPI-stack analysis over counter snapshots.

   The core attributes every simulated cycle to exactly one Level-2
   bucket at runtime (a single counter increment per cycle), so the
   invariant "buckets sum to measured cycles" holds by construction
   and [check] can assert it exactly — there is no post-hoc
   apportioning of overlap. The Level-1 stack is a fixed grouping of
   the Level-2 buckets. *)

(* Level-2 buckets. *)
type bucket =
  | Base  (* at least one uop committed this cycle *)
  | Frontend_icache  (* ROB empty while an L1I miss refill is in flight *)
  | Frontend_fetch  (* ROB empty: fetch/decode could not supply uops *)
  | Badspec_mispredict  (* redirect/recovery window after a mispredict *)
  | Badspec_flush  (* recovery window after a trap/interrupt/serialise flush *)
  | Mem_load  (* ROB head is a load waiting on memory *)
  | Mem_store  (* ROB head is a store/amo blocked on memory or SB drain *)
  | Core_exec  (* ROB head issued/completing in a non-memory unit *)
  | Core_dep  (* ROB head waiting on operands (dependency chain) *)

val n_buckets : int
val all : bucket list
val index : bucket -> int

(* Canonical counter name of a bucket ("td.base", "td.mem_load", ...).
   The core registers its per-cycle attribution counters under exactly
   these names so [of_counters] can find them. *)
val counter_name : bucket -> string

(* Level-1 groups and the Level-2 buckets they fold. *)
type level1 = L1_base | L1_frontend | L1_badspec | L1_backend_mem | L1_backend_core

val level1_all : level1 list
val level1_name : level1 -> string
val level1_of : bucket -> level1

type stack = {
  ts_cycles : int;  (* measured cycles ("core.cycles") *)
  ts_instrs : int;  (* committed instructions ("core.instrs") *)
  ts_buckets : int array;  (* indexed by [index], length [n_buckets] *)
}

(* Build a stack from a counter snapshot (as produced by
   [Xiangshan.Core.counter_snapshot]). [Error] names the first missing
   counter. *)
val of_counters : (string * int) list -> (stack, string) result

(* Assert the invariant: sum of Level-2 buckets = measured cycles.
   [Error] carries a human-readable account of the discrepancy. *)
val check : stack -> (unit, string) result

val cycles_of : stack -> bucket -> int
val level1_cycles : stack -> (level1 * int) list
val cpi : stack -> float
val ipc : stack -> float

(* Fraction of total cycles in a bucket / level-1 group (0 when
   cycles = 0). *)
val frac : stack -> bucket -> float
val level1_frac : stack -> level1 -> float

(* Multi-line human-readable rendering of the L1/L2 stack. *)
val render : ?label:string -> stack -> string
