(* Opt-in per-uop pipeline lifecycle tracer.

   Records dispatch→issue→complete→commit/flush timestamps for the
   most recent [capacity] uops in a ring buffer keyed by the uop
   sequence number (slot = seq mod capacity). Sequence numbers are
   reused after a pipeline flush, so every update is guarded by a
   stored-seq match: a stale hook aimed at a reclaimed slot is simply
   dropped instead of corrupting the newer record.

   The ring is plain mutable data (no closures), so when a core
   carrying a tracer is snapshotted by LightSSS the trace window rides
   along and the debug-mode replay can dump the exact uop lifecycles
   leading up to a failure.

   [to_konata] renders the window in the Konata pipeline-viewer text
   format (header "Kanata\t0004"; I/L/S/E/R records with C cycle
   advance commands), with lanes F (fetch→dispatch), D
   (dispatch→issue), X (issue→complete) and C (complete→retire). *)

type t

val create : ?capacity:int -> unit -> t

(* Number of dispatch records ever written (may exceed capacity). *)
val recorded : t -> int

val capacity : t -> int

(* Hooks, called by the core. All are no-ops for negative seqs (the
   synthetic interrupt probe uses seq -1). *)
val on_dispatch :
  t -> seq:int -> pc:int64 -> label:string -> fetched_at:int -> now:int -> unit

val on_issue : t -> seq:int -> now:int -> unit

(* [at] may be in the future (execute-at-issue folds the latency into
   the completion time). *)
val on_complete : t -> seq:int -> at:int -> unit
val on_commit : t -> seq:int -> now:int -> unit
val on_flush : t -> seq:int -> now:int -> unit

(* Render the current window as Konata text. Records are emitted in
   dispatch order; flushed uops retire with type 1, committed with 0. *)
val to_konata : t -> string

(* Number of live (valid) records currently in the window. *)
val live : t -> int
