type t = {
  mutable names : string array;
  mutable values : int array;
  mutable n : int;
}

type id = int

let create ?(capacity = 64) () =
  let capacity = max capacity 1 in
  { names = Array.make capacity ""; values = Array.make capacity 0; n = 0 }

let grow t =
  let cap = Array.length t.names in
  let names = Array.make (cap * 2) "" and values = Array.make (cap * 2) 0 in
  Array.blit t.names 0 names 0 cap;
  Array.blit t.values 0 values 0 cap;
  t.names <- names;
  t.values <- values

let register t name =
  for i = 0 to t.n - 1 do
    if String.equal t.names.(i) name then
      invalid_arg (Printf.sprintf "Perf_counter.register: duplicate %S" name)
  done;
  if t.n = Array.length t.names then grow t;
  let id = t.n in
  t.names.(id) <- name;
  t.values.(id) <- 0;
  t.n <- t.n + 1;
  id

let incr t id = t.values.(id) <- t.values.(id) + 1
let add t id k = t.values.(id) <- t.values.(id) + k
let get t id = t.values.(id)
let set t id v = t.values.(id) <- v
let length t = t.n
let name t id = t.names.(id)

let find t n =
  let rec go i =
    if i >= t.n then None
    else if String.equal t.names.(i) n then Some t.values.(i)
    else go (i + 1)
  in
  go 0

let to_alist t =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) ((t.names.(i), t.values.(i)) :: acc)
  in
  go (t.n - 1) []

let reset t = Array.fill t.values 0 t.n 0

let ratio t ~num ~den =
  let d = t.values.(den) in
  if d = 0 then 0.0 else float_of_int t.values.(num) /. float_of_int d
