(* Allocation-free named counter registry.

   A registry is a pair of flat arrays (names, values) plus a length.
   Registration is O(n) and happens once at core-construction time;
   the hot path (incr/add) is a bounds-checked array store with no
   allocation, so counters can ride inside the simulated core and be
   bumped every cycle without disturbing the GC.

   The whole structure is plain data (no closures, no hashtables with
   functorial seeds), so it marshals byte-stably inside LightSSS
   snapshots: replaying from a snapshot replays the counter state too,
   which is what makes fast-mode and debug-mode counter vectors
   provably identical. *)

type t

(* Dense handle returned by [register]; store it once, use it forever. *)
type id = int

val create : ?capacity:int -> unit -> t

(* [register t name] adds a counter (initially 0) and returns its id.
   Raises [Invalid_argument] on duplicate names. *)
val register : t -> string -> id

val incr : t -> id -> unit
val add : t -> id -> int -> unit
val get : t -> id -> int
val set : t -> id -> int -> unit

(* Number of registered counters. *)
val length : t -> int

(* Name of a registered counter. *)
val name : t -> id -> string

(* Value by name; [None] if never registered. *)
val find : t -> string -> int option

(* All (name, value) pairs in registration order. *)
val to_alist : t -> (string * int) list

(* Zero every counter, keeping the registrations. *)
val reset : t -> unit

(* Derived ratio [num/den] as a float; 0.0 when the denominator is 0.
   Handy for rates like mispredicts/lookups without division traps. *)
val ratio : t -> num:id -> den:id -> float
