type rec_ = {
  mutable r_valid : bool;
  mutable r_seq : int;
  mutable r_uid : int;  (* dispatch order, monotone across the run *)
  mutable r_pc : int64;
  mutable r_label : string;
  mutable r_fetch : int;
  mutable r_dispatch : int;
  mutable r_issue : int;  (* -1 until issued *)
  mutable r_complete : int;  (* -1 until completed *)
  mutable r_commit : int;  (* -1 until committed *)
  mutable r_flush : int;  (* -1 unless squashed *)
}

type t = { ring : rec_ array; cap : int; mutable written : int }

let fresh_rec () =
  {
    r_valid = false;
    r_seq = -1;
    r_uid = -1;
    r_pc = 0L;
    r_label = "";
    r_fetch = 0;
    r_dispatch = 0;
    r_issue = -1;
    r_complete = -1;
    r_commit = -1;
    r_flush = -1;
  }

let create ?(capacity = 4096) () =
  let capacity = max capacity 16 in
  { ring = Array.init capacity (fun _ -> fresh_rec ()); cap = capacity; written = 0 }

let recorded t = t.written
let capacity t = t.cap

let live t =
  Array.fold_left (fun acc r -> if r.r_valid then acc + 1 else acc) 0 t.ring

let on_dispatch t ~seq ~pc ~label ~fetched_at ~now =
  if seq >= 0 then begin
    let r = t.ring.(seq mod t.cap) in
    r.r_valid <- true;
    r.r_seq <- seq;
    r.r_uid <- t.written;
    r.r_pc <- pc;
    r.r_label <- label;
    r.r_fetch <- min fetched_at now;
    r.r_dispatch <- now;
    r.r_issue <- -1;
    r.r_complete <- -1;
    r.r_commit <- -1;
    r.r_flush <- -1;
    t.written <- t.written + 1
  end

(* Seq numbers are reused after a flush; only touch the slot if it
   still belongs to this uop. *)
let slot_for t seq =
  if seq < 0 then None
  else
    let r = t.ring.(seq mod t.cap) in
    if r.r_valid && r.r_seq = seq then Some r else None

let on_issue t ~seq ~now =
  match slot_for t seq with
  | Some r -> if r.r_issue < 0 then r.r_issue <- now
  | None -> ()

let on_complete t ~seq ~at =
  match slot_for t seq with
  | Some r ->
      (* execute-at-commit uops complete without a separate issue hook *)
      if r.r_issue < 0 then r.r_issue <- at;
      r.r_complete <- max at r.r_issue
  | None -> ()

let on_commit t ~seq ~now =
  match slot_for t seq with Some r -> r.r_commit <- now | None -> ()

let on_flush t ~seq ~now =
  match slot_for t seq with Some r -> r.r_flush <- now | None -> ()

(* --- Konata rendering ------------------------------------------------ *)

let end_cycle r =
  if r.r_commit >= 0 then r.r_commit
  else if r.r_flush >= 0 then r.r_flush
  else max r.r_dispatch (max r.r_issue r.r_complete)

let to_konata t =
  let recs =
    Array.to_list t.ring
    |> List.filter (fun r -> r.r_valid)
    |> List.sort (fun a b -> compare a.r_uid b.r_uid)
  in
  (* (cycle, tie-order, line) — tie-order preserves per-uop stage order
     and inter-uop dispatch order within a cycle *)
  let events = ref [] in
  let tie = ref 0 in
  let ev c line =
    incr tie;
    events := (c, !tie, line) :: !events
  in
  List.iteri
    (fun id r ->
      let fin = end_cycle r in
      let stage c lane name =
        if c >= 0 && c <= fin then ev c (Printf.sprintf "S\t%d\t%d\t%s" id lane name)
      in
      ev r.r_fetch (Printf.sprintf "I\t%d\t%d\t0" id id);
      ev r.r_fetch
        (Printf.sprintf "L\t%d\t0\t%Lx: %s" id r.r_pc r.r_label);
      stage r.r_fetch 0 "F";
      stage r.r_dispatch 0 "D";
      stage r.r_issue 0 "X";
      stage r.r_complete 0 "C";
      if r.r_commit >= 0 then
        ev r.r_commit (Printf.sprintf "R\t%d\t%d\t0" id (id + 1))
      else
        (* flushed, or still in flight when the window ends: close the
           lane with a flush-type retire so viewers render it *)
        ev fin (Printf.sprintf "R\t%d\t%d\t1" id (id + 1)))
    recs;
  let events =
    List.sort
      (fun (c1, t1, _) (c2, t2, _) -> if c1 <> c2 then compare c1 c2 else compare t1 t2)
      !events
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "Kanata\t0004\n";
  let cur = ref min_int in
  List.iter
    (fun (c, _, line) ->
      if !cur = min_int then begin
        Buffer.add_string buf (Printf.sprintf "C=\t%d\n" c);
        cur := c
      end
      else if c > !cur then begin
        Buffer.add_string buf (Printf.sprintf "C\t%d\n" (c - !cur));
        cur := c
      end;
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf
