(* Client side of the `minjie serve` protocol. *)

type t = { fd : Unix.file_descr }

let connect path =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let read_reply t =
  match Proto.read_frame t.fd with
  | Some payload -> Proto.reply_of_payload payload
  | None -> raise (Proto.Frame_error "server closed the connection")

let request t req =
  Proto.write_frame t.fd (Proto.request_to_bytes req);
  read_reply t

let rec submit ?(retries = 0) ?(retry_delay = 0.2) t spec =
  match request t (Submit spec) with
  | Proto.Busy _ as busy ->
      if retries <= 0 then busy
      else begin
        Unix.sleepf retry_delay;
        submit ~retries:(retries - 1) ~retry_delay t spec
      end
  | reply -> reply

let submit_nowait t spec =
  Proto.write_frame t.fd (Proto.request_to_bytes (Proto.Submit spec))

let wait_ready ?(timeout = 10.0) path =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec poll () =
    let ok =
      match
        let c = connect path in
        Fun.protect ~finally:(fun () -> close c) (fun () -> request c Proto.Ping)
      with
      | Proto.Pong _ -> true
      | _ -> false
      | exception _ -> false
    in
    if ok then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Unix.sleepf 0.05;
      poll ()
    end
  in
  poll ()

(* --- rendering -------------------------------------------------------- *)

let render_result (r : Proto.job_result) =
  let b = Buffer.create 256 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string b s) fmt in
  (match r with
  | Proto.R_run r ->
      (match r.rr_status with
      | Proto.Rs_finished c -> p "run: finished, exit code %d\n" c
      | Proto.Rs_failed f ->
          p "run: DIFFTEST FAILURE at cycle %d (rule %s): %s\n" f.rf_cycle
            f.rf_rule f.rf_msg
      | Proto.Rs_timeout -> p "run: cycle budget exhausted\n");
      p "cycles %d | instrs %d | commits checked %d\n" r.rr_cycles r.rr_instrs
        r.rr_commits;
      List.iter
        (fun (rule, n) -> if n > 0 then p "  rule %-24s fired %d\n" rule n)
        r.rr_rules
  | Proto.R_engine e ->
      let pc, regs, fregs = e.re_digest in
      let fold = Array.fold_left Int64.logxor 0L in
      p "engine: %d instructions retired, exit %s\n" e.re_insns
        (match e.re_exit with Some c -> string_of_int c | None -> "-");
      p "digest: pc=0x%Lx xregs=0x%Lx fregs=0x%Lx\n" pc (fold regs) (fold fregs)
  | Proto.R_checkpoint c ->
      p "checkpoint: %d interval(s), %d selected\n" c.rc_intervals c.rc_selected;
      List.iter
        (fun (s : Proto.sample) ->
          p "  sample %2d  weight %.4f  %7d instrs  %8d cycles  IPC %.4f\n"
            s.sa_index s.sa_weight s.sa_instructions s.sa_cycles
            (if s.sa_cycles = 0 then 0.0
             else float_of_int s.sa_instructions /. float_of_int s.sa_cycles))
        c.rc_samples;
      p "weighted IPC %.4f\n" c.rc_weighted_ipc
  | Proto.R_campaign c ->
      List.iter (fun line -> p "%s\n" line) c.rca_cells;
      p "campaign: %d cell(s), %d detected, %d escape(s)\n" c.rca_total
        c.rca_detected c.rca_escapes
  | Proto.R_fuzz f ->
      List.iter (fun line -> p "%s\n" line) f.rfz_round_lines;
      p
        "fuzz: %d round(s), %d exec(s), %d coverage point(s) over %d \
         cell(s), corpus %d, %d mismatch(es)\n"
        f.rfz_rounds f.rfz_execs f.rfz_points f.rfz_cells f.rfz_corpus
        f.rfz_mismatches
  | Proto.R_topdown t ->
      p "topdown: %d cycles, %d instrs\n" t.rt_cycles t.rt_instrs;
      List.iter (fun (n, v) -> p "  %-28s %12d\n" n v) t.rt_counters;
      (match Perf.Topdown.of_counters t.rt_counters with
      | Error msg -> p "top-down stack unavailable: %s\n" msg
      | Ok stack -> (
          match Perf.Topdown.check stack with
          | Error msg -> p "TOPDOWN INVARIANT VIOLATED: %s\n" msg
          | Ok () -> p "%s" (Perf.Topdown.render ~label:"topdown" stack)))
  | Proto.R_sleep s -> p "slept (%s)\n" s.rs_tag
  | Proto.R_error msg -> p "job error: %s\n" msg);
  Buffer.contents b
