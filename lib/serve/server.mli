(** The `minjie serve` daemon: a Unix-domain-socket job server that
    keeps warm simulation state resident across jobs.

    Execution model: a batched event loop.  Each round drains every
    readable client connection (accepting jobs into per-client FIFO
    queues, bounded by [queue_depth] across all clients — excess
    submits get an immediate {!Proto.Busy} reply), then builds a batch
    by taking jobs round-robin across clients (fairness: a flooding
    client contributes at most its share per round) and sorts the
    batch by warm key so jobs sharing warm state run back-to-back.
    Warm-stateful classes (engine, checkpoint generation) execute in
    the server process, where the decoded superblock caches and
    generated checkpoints accumulate; isolation classes (run,
    campaign, topdown, sleep) go through {!Minjie.Pool} with
    [~isolate:true], their expected costs fed by the
    {!Warm_cache.Ewma} of observed runtimes, and the assembled
    program images they need are prefetched into the warm cache in
    the parent first, so forked workers inherit them copy-on-write.

    Crash safety: with a journal, every accepted job is appended
    before it runs and every result when it lands; a killed server
    restarted with [resume] re-executes accepted-but-unfinished jobs
    (as orphans — their clients are gone) before accepting new ones.
    SIGTERM/SIGINT go through {!Minjie.Supervisor}'s handlers: live
    pool workers are killed and reaped, the socket is unlinked, the
    journal is closed, and the process exits 143/130. *)

type config = {
  socket_path : string;
  jobs : int;  (** pool worker count for isolation-class batches *)
  queue_depth : int;  (** max queued jobs across all clients *)
  batch_max : int;  (** max jobs dispatched per loop round *)
  journal_path : string option;
  resume : bool;
  quiet : bool;  (** suppress per-job stderr log lines *)
}

val default_config : socket_path:string -> config
(** jobs 1, queue_depth 64, batch_max [2 * jobs], no journal. *)

type jrec = J_acc of int * Proto.job_spec | J_done of int * Proto.job_result
(** Journal records: a job is appended as [J_acc] when accepted (before
    it runs) and as [J_done] when its result lands, so the journal is a
    write-ahead account of the queue. *)

val journal_key : string
(** The {!Minjie.Journal} key serve journals are written under. *)

val pending_of_records : jrec list -> (int * Proto.job_spec) list
(** The accepted-but-unfinished jobs in a journal replay, in
    acceptance order — exactly what a restarted server re-runs. *)

val exec_cold : ?jobs:int -> Proto.job_spec -> Proto.job_result
(** Execute a job spec against a fresh, throwaway warm cache — the
    cold-start reference path.  Every served result must be
    [Marshal]-byte-identical to this function's output for the same
    spec ([jobs] only changes how checkpoint samples / campaign cells
    fan out, never the result). *)

val exec :
  Warm_cache.t -> jobs:int -> Proto.job_spec -> Proto.job_result
(** Execute against a resident warm cache (exposed for tests and the
    bench harness; the server calls this internally).  Exceptions
    become {!Proto.R_error}. *)

val serve : config -> int
(** Run the server until a [Shutdown] request; returns the process
    exit code (0).  Binds [socket_path] (unlinking a stale socket,
    refusing a live one), then loops as described above. *)
