(* Server-resident warm state.  See warm_cache.mli. *)

module Ewma = struct
  type cell = { mutable value : float; mutable n : int }

  type t = { alpha : float; tbl : (string, cell) Hashtbl.t }

  let create ?(alpha = 0.3) () = { alpha; tbl = Hashtbl.create 32 }

  let observe t key x =
    match Hashtbl.find_opt t.tbl key with
    | None -> Hashtbl.replace t.tbl key { value = x; n = 1 }
    | Some c ->
        c.value <- (t.alpha *. x) +. ((1.0 -. t.alpha) *. c.value);
        c.n <- c.n + 1

  let expect t key ~default =
    match Hashtbl.find_opt t.tbl key with
    | Some c -> c.value
    | None -> default

  let snapshot t =
    Hashtbl.fold (fun k c acc -> (k, c.value) :: acc) t.tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
end

type entry =
  | W_prog of Riscv.Asm.program
  | W_engine of Nemu.Engine.warm
  | W_ckpt of
      Checkpoint.Sampled.sampled_checkpoint list
      * Checkpoint.Sampled.generation_stats

type slot = { mutable e : entry; mutable last_used : int }

type t = {
  entries : (string, slot) Hashtbl.t;
  capacity : int;
  mutable tick : int;  (** logical access clock for LRU *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 64) () =
  { entries = Hashtbl.create 32; capacity; tick = 0; hits = 0; misses = 0 }

let hits t = t.hits
let misses t = t.misses

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k s acc ->
        match acc with
        | Some (_, age) when age <= s.last_used -> acc
        | _ -> Some (k, s.last_used))
      t.entries None
  in
  match victim with Some (k, _) -> Hashtbl.remove t.entries k | None -> ()

let get t key build =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.entries key with
  | Some s ->
      s.last_used <- t.tick;
      t.hits <- t.hits + 1;
      s.e
  | None ->
      t.misses <- t.misses + 1;
      let e = build () in
      if Hashtbl.length t.entries >= t.capacity then evict_lru t;
      Hashtbl.replace t.entries key { e; last_used = t.tick };
      e

(* --- program resolution ----------------------------------------------- *)

let resolve_program name =
  match String.split_on_char ':' name with
  | [ "testgen"; seed; blocks; len ] -> (
      match
        (int_of_string_opt seed, int_of_string_opt blocks, int_of_string_opt len)
      with
      | Some seed, Some blocks, Some block_len ->
          Workloads.Testgen.program ~seed ~blocks ~block_len ()
      | _ ->
          invalid_arg
            (Printf.sprintf "serve: malformed testgen workload %S" name))
  | _ ->
      let w = Minjie.Campaign.find_workload name in
      w.Workloads.Wl_common.program ~scale:w.Workloads.Wl_common.small

let program t name =
  match get t ("prog:" ^ name) (fun () -> W_prog (resolve_program name)) with
  | W_prog p -> p
  | _ -> assert false

let engine t name =
  match
    get t
      ("engine:" ^ name)
      (fun () -> W_engine (Nemu.Engine.warm_create (resolve_program name)))
  with
  | W_engine w -> w
  | _ -> assert false

let checkpoints t ~workload ~interval ~max_k =
  match
    get t
      (Printf.sprintf "ckpt:%s:%d:%d" workload interval max_k)
      (fun () ->
        let prog = resolve_program workload in
        let cks, stats = Checkpoint.Sampled.generate ~interval ~max_k prog in
        W_ckpt (cks, stats))
  with
  | W_ckpt (cks, stats) -> (cks, stats)
  | _ -> assert false

(* --- configs ---------------------------------------------------------- *)

let config_of_name name =
  match
    List.find_opt
      (fun (c : Xiangshan.Config.t) -> c.Xiangshan.Config.cfg_name = name)
      Xiangshan.Config.all_presets
  with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "serve: unknown config %S" name)

let config_fingerprint (cfg : Xiangshan.Config.t) =
  String.sub (Digest.to_hex (Digest.string (Marshal.to_string cfg []))) 0 12
