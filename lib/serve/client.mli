(** Client side of the `minjie serve` protocol: a blocking
    one-request / one-reply connection, plus deterministic result
    rendering shared by `minjie submit` and the CI byte-diff smoke.

    Rendering is free of wall-clock and host-dependent fields by
    construction (the results themselves are; see {!Proto}), so the
    rendered text for a served result is byte-identical to the
    rendered text for its cold-start equivalent. *)

type t

val connect : string -> t
(** Connect to a server socket path.  Ignores SIGPIPE process-wide
    (dropped connections surface as exceptions, not death). *)

val close : t -> unit

val request : t -> Proto.request -> Proto.reply
(** One round trip.  For [Submit] the reply arrives only when the job
    has a result, so this blocks for the job's duration.
    @raise Proto.Frame_error if the server hangs up or the stream is
    corrupt. *)

val submit : ?retries:int -> ?retry_delay:float -> t -> Proto.job_spec -> Proto.reply
(** [request] for a [Submit], retrying up to [retries] (default 0)
    times with [retry_delay] (default 0.2s) sleeps on a {!Proto.Busy}
    reply. *)

val submit_nowait : t -> Proto.job_spec -> unit
(** Fire a [Submit] frame without waiting for the reply — the
    disconnect-mid-job tests use this to abandon a running job. *)

val read_reply : t -> Proto.reply
(** Block until the next reply frame arrives (pairs with
    {!submit_nowait}).
    @raise Proto.Frame_error if the server hangs up. *)

val wait_ready : ?timeout:float -> string -> bool
(** Poll a socket path with [Ping] until the server answers [Pong],
    or [timeout] (default 10s) elapses. *)

val render_result : Proto.job_result -> string
(** Deterministic multi-line rendering of a job result. *)
