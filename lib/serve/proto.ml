(* Wire protocol for `minjie serve`: framed Marshal payloads over a
   Unix domain socket.  See proto.mli for the format. *)

type job_spec =
  | Run of {
      rn_workload : string;
      rn_config : string;
      rn_max_cycles : int;
      rn_ref : string;
    }
  | Engine of { en_workload : string; en_max_insns : int }
  | Checkpoint of {
      ck_workload : string;
      ck_config : string;
      ck_interval : int;
      ck_max_k : int;
      ck_warmup : int;
      ck_measure : int;
    }
  | Campaign of { ca_faults : string list; ca_seeds : int list; ca_ref : string }
  | Fuzz of {
      fu_seed : int;
      fu_rounds : int;
      fu_cands : int;
      fu_ref : string;
    }
  | Topdown of { td_workload : string; td_config : string; td_max_cycles : int }
  | Sleep of { sl_seconds : float; sl_tag : string }

type run_status =
  | Rs_finished of int
  | Rs_failed of { rf_rule : string; rf_cycle : int; rf_msg : string }
  | Rs_timeout

type sample = {
  sa_index : int;
  sa_weight : float;
  sa_instructions : int;
  sa_cycles : int;
}

type job_result =
  | R_run of {
      rr_status : run_status;
      rr_cycles : int;
      rr_instrs : int;
      rr_commits : int;
      rr_rules : (string * int) list;
    }
  | R_engine of {
      re_insns : int;
      re_exit : int option;
      re_digest : int64 * int64 array * int64 array;
    }
  | R_checkpoint of {
      rc_intervals : int;
      rc_selected : int;
      rc_samples : sample list;
      rc_weighted_ipc : float;
    }
  | R_campaign of {
      rca_total : int;
      rca_detected : int;
      rca_escapes : int;
      rca_cells : string list;
    }
  | R_fuzz of {
      rfz_rounds : int;
      rfz_points : int;
      rfz_cells : int;
      rfz_corpus : int;
      rfz_execs : int;
      rfz_mismatches : int;
      rfz_round_lines : string list;
    }
  | R_topdown of {
      rt_cycles : int;
      rt_instrs : int;
      rt_counters : (string * int) list;
    }
  | R_sleep of { rs_tag : string }
  | R_error of string

type request = Submit of job_spec | Ping | Stats | Shutdown

type stats_summary = {
  st_jobs_done : int;
  st_warm_hits : int;
  st_warm_misses : int;
  st_queue_depth : int;
  st_clients : int;
  st_ewma : (string * float) list;
}

type reply =
  | Result of { r_id : int; r_warm : bool; r_result : job_result }
  | Busy of { b_depth : int }
  | Pong of { p_jobs : int; p_queued : int }
  | Stats_reply of stats_summary
  | Shutting_down
  | Err of string

(* --- keys ------------------------------------------------------------- *)

let class_key = function
  | Run r -> Printf.sprintf "run:%s:%s" r.rn_workload r.rn_config
  | Engine e -> Printf.sprintf "engine:%s" e.en_workload
  | Checkpoint c -> Printf.sprintf "checkpoint:%s:%s" c.ck_workload c.ck_config
  | Campaign _ -> "campaign"
  | Fuzz f ->
      Printf.sprintf "fuzz:%s" (if f.fu_ref = "" then "both" else f.fu_ref)
  | Topdown t -> Printf.sprintf "topdown:%s:%s" t.td_workload t.td_config
  | Sleep _ -> "sleep"

let warm_key = function
  | Run r -> Some ("prog:" ^ r.rn_workload)
  | Engine e -> Some ("engine:" ^ e.en_workload)
  | Checkpoint c ->
      Some (Printf.sprintf "ckpt:%s:%d:%d" c.ck_workload c.ck_interval c.ck_max_k)
  | Topdown t -> Some ("prog:" ^ t.td_workload)
  | Campaign _ | Fuzz _ | Sleep _ -> None

let describe = function
  | Run r -> Printf.sprintf "run %s on %s (ref %s)" r.rn_workload r.rn_config r.rn_ref
  | Engine e ->
      Printf.sprintf "engine %s (budget %d)" e.en_workload e.en_max_insns
  | Checkpoint c ->
      Printf.sprintf "checkpoint %s on %s (interval %d, k<=%d)" c.ck_workload
        c.ck_config c.ck_interval c.ck_max_k
  | Campaign c ->
      Printf.sprintf "campaign %s x %d seed(s)"
        (match c.ca_faults with
        | [] -> "full-registry"
        | fs -> String.concat "," fs)
        (List.length c.ca_seeds)
  | Fuzz f ->
      Printf.sprintf "fuzz seed=%d %d round(s) x %d candidate(s) (ref %s)"
        f.fu_seed f.fu_rounds f.fu_cands
        (if f.fu_ref = "" then "both" else f.fu_ref)
  | Topdown t -> Printf.sprintf "topdown %s on %s" t.td_workload t.td_config
  | Sleep s -> Printf.sprintf "sleep %.3fs (%s)" s.sl_seconds s.sl_tag

(* --- framing ---------------------------------------------------------- *)

exception Frame_error of string

let max_frame = 64 * 1024 * 1024

let crc payload = Minjie.Journal.crc32 (Bytes.unsafe_to_string payload)

let put32 b off (v : int32) =
  Bytes.set b off (Char.chr (Int32.to_int (Int32.logand v 0xffl)));
  Bytes.set b (off + 1)
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 8) 0xffl)));
  Bytes.set b (off + 2)
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 16) 0xffl)));
  Bytes.set b (off + 3)
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 24) 0xffl)))

let get32 b off =
  let byte i = Int32.of_int (Char.code (Bytes.get b (off + i))) in
  Int32.logor (byte 0)
    (Int32.logor
       (Int32.shift_left (byte 1) 8)
       (Int32.logor (Int32.shift_left (byte 2) 16) (Int32.shift_left (byte 3) 24)))

let frame payload =
  let n = Bytes.length payload in
  if n > max_frame then raise (Frame_error "frame too large");
  let b = Bytes.create (8 + n) in
  put32 b 0 (Int32.of_int n);
  put32 b 4 (crc payload);
  Bytes.blit payload 0 b 8 n;
  b

let request_to_bytes (r : request) = Marshal.to_bytes r []
let reply_to_bytes (r : reply) = Marshal.to_bytes r []

(* A Marshal payload for the wrong type would decode into garbage, so
   both decoders re-check the variant shape by matching: an exception
   anywhere becomes a Frame_error. *)
let request_of_payload b : request =
  match (Marshal.from_bytes b 0 : request) with
  | r -> r
  | exception _ -> raise (Frame_error "undecodable request payload")

let reply_of_payload b : reply =
  match (Marshal.from_bytes b 0 : reply) with
  | r -> r
  | exception _ -> raise (Frame_error "undecodable reply payload")

let rec write_all fd b off len =
  if len > 0 then begin
    let n =
      try Unix.write fd b off len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
      | Unix.Unix_error (Unix.EAGAIN, _, _) ->
          ignore (Unix.select [] [ fd ] [] 1.0);
          0
    in
    write_all fd b (off + n) (len - n)
  end

let write_frame fd payload =
  let b = frame payload in
  write_all fd b 0 (Bytes.length b)

let rec read_exact fd b off len =
  if len = 0 then true
  else
    match Unix.read fd b off len with
    | 0 -> false
    | n -> read_exact fd b (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_exact fd b off len

let read_frame fd =
  let hdr = Bytes.create 8 in
  (* distinguish clean EOF (no header bytes at all) from truncation *)
  let first =
    let rec rd () =
      try Unix.read fd hdr 0 1
      with Unix.Unix_error (Unix.EINTR, _, _) -> rd ()
    in
    rd ()
  in
  if first = 0 then None
  else begin
    if not (read_exact fd hdr 1 7) then
      raise (Frame_error "truncated frame header");
    let len = Int32.to_int (get32 hdr 0) in
    if len < 0 || len > max_frame then
      raise (Frame_error (Printf.sprintf "bad frame length %d" len));
    let want = get32 hdr 4 in
    let payload = Bytes.create len in
    if not (read_exact fd payload 0 len) then
      raise (Frame_error "truncated frame payload");
    if crc payload <> want then raise (Frame_error "frame CRC mismatch");
    Some payload
  end

module Accum = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.create 4096; len = 0 }

  let feed t chunk n =
    let need = t.len + n in
    if need > Bytes.length t.buf then begin
      let cap = max need (2 * Bytes.length t.buf) in
      let b = Bytes.create cap in
      Bytes.blit t.buf 0 b 0 t.len;
      t.buf <- b
    end;
    Bytes.blit chunk 0 t.buf t.len n;
    t.len <- t.len + n

  let next t =
    if t.len < 8 then None
    else begin
      let len = Int32.to_int (get32 t.buf 0) in
      if len < 0 || len > max_frame then
        Some (Error (Printf.sprintf "bad frame length %d" len))
      else if t.len < 8 + len then None
      else begin
        let want = get32 t.buf 4 in
        let payload = Bytes.sub t.buf 8 len in
        if crc payload <> want then Some (Error "frame CRC mismatch")
        else begin
          let rest = t.len - (8 + len) in
          Bytes.blit t.buf (8 + len) t.buf 0 rest;
          t.len <- rest;
          Some (Ok payload)
        end
      end
    end
end
