(** The `minjie serve` wire protocol.

    Transport: a Unix domain socket carrying length-prefixed frames,

    {v [payload length (4B LE)] [crc32 of payload (4B LE)] [payload] v}

    where the payload is a [Marshal]-encoded {!request} (client to
    server) or {!reply} (server to client).  The CRC is the same
    polynomial the {!Minjie.Journal} uses, so a corrupted or truncated
    frame is detected before [Marshal] ever sees it.  Every request
    gets exactly one reply; [Submit] replies only once the job has a
    result (or immediately with [Busy] when the queue is full), so a
    client is also a completion waiter.

    Job specs and results deliberately contain no wall-clock or
    host-dependent fields: a result computed by the warm server must
    be byte-identical ([Marshal]-equal) to one computed by a cold
    one-shot process, and tests/CI assert exactly that. *)

(** {1 Jobs} *)

type job_spec =
  | Run of {
      rn_workload : string;
      rn_config : string;  (** a {!Xiangshan.Config} preset name *)
      rn_max_cycles : int;
      rn_ref : string;  (** "iss" | "nemu" *)
    }  (** a DiffTest-verified simulation of one workload *)
  | Engine of { en_workload : string; en_max_insns : int }
      (** a bare NEMU run; [en_workload] accepts catalogue names or
          ["testgen:SEED:BLOCKS:BLOCKLEN"] for generated programs *)
  | Checkpoint of {
      ck_workload : string;
      ck_config : string;
      ck_interval : int;
      ck_max_k : int;
      ck_warmup : int;
      ck_measure : int;
    }  (** SimPoint checkpoint generation + sampled simulation *)
  | Campaign of {
      ca_faults : string list;  (** empty = full fault registry *)
      ca_seeds : int list;
      ca_ref : string;
    }  (** a fault-injection campaign slice *)
  | Fuzz of {
      fu_seed : int;
      fu_rounds : int;
      fu_cands : int;  (** candidates per round *)
      fu_ref : string;  (** "iss" | "nemu" | "" = both backends *)
    }
      (** a coverage-guided fuzz campaign ({!Fuzz.run}, smoke-sized
          grid); deterministic, so warm/cold results are
          [Marshal]-equal like every other class *)
  | Topdown of {
      td_workload : string;
      td_config : string;
      td_max_cycles : int;
    }  (** performance counters + top-down CPI stack *)
  | Sleep of { sl_seconds : float; sl_tag : string }
      (** test/bench aid: occupies a queue slot for a fixed duration *)

type run_status =
  | Rs_finished of int
  | Rs_failed of { rf_rule : string; rf_cycle : int; rf_msg : string }
  | Rs_timeout

type sample = {
  sa_index : int;
  sa_weight : float;
  sa_instructions : int;
  sa_cycles : int;
}

type job_result =
  | R_run of {
      rr_status : run_status;
      rr_cycles : int;
      rr_instrs : int;
      rr_commits : int;
      rr_rules : (string * int) list;
    }
  | R_engine of {
      re_insns : int;
      re_exit : int option;
      re_digest : int64 * int64 array * int64 array;
          (** {!Nemu.Mach.arch_state_digest}: pc, xregs, fregs *)
    }
  | R_checkpoint of {
      rc_intervals : int;
      rc_selected : int;
      rc_samples : sample list;
      rc_weighted_ipc : float;
    }
  | R_campaign of {
      rca_total : int;
      rca_detected : int;
      rca_escapes : int;
      rca_cells : string list;  (** {!Minjie.Campaign.string_of_cell} lines *)
    }
  | R_fuzz of {
      rfz_rounds : int;
      rfz_points : int;  (** final coverage points (monotone feed) *)
      rfz_cells : int;
      rfz_corpus : int;
      rfz_execs : int;
      rfz_mismatches : int;
      rfz_round_lines : string list;  (** {!Fuzz.string_of_round} lines *)
    }
  | R_topdown of {
      rt_cycles : int;
      rt_instrs : int;
      rt_counters : (string * int) list;
    }
  | R_sleep of { rs_tag : string }
  | R_error of string  (** the job raised; message is deterministic *)

(** {1 Requests and replies} *)

type request = Submit of job_spec | Ping | Stats | Shutdown

type stats_summary = {
  st_jobs_done : int;
  st_warm_hits : int;
  st_warm_misses : int;
  st_queue_depth : int;
  st_clients : int;
  st_ewma : (string * float) list;
      (** observed mean runtime per job class, sorted by class key *)
}

type reply =
  | Result of { r_id : int; r_warm : bool; r_result : job_result }
  | Busy of { b_depth : int }
      (** queue full: the job was NOT accepted; retry later *)
  | Pong of { p_jobs : int; p_queued : int }
  | Stats_reply of stats_summary
  | Shutting_down
  | Err of string  (** protocol error; the server closes the connection *)

(** {1 Keys} *)

val class_key : job_spec -> string
(** EWMA key: job class plus the workload/config axes that dominate
    its runtime, e.g. ["run:coremark_like:YQH"]. *)

val warm_key : job_spec -> string option
(** Warm-state cache key, [None] for classes with no reusable state.
    Jobs sharing a key are coalesced back-to-back within a batch. *)

val describe : job_spec -> string
(** One-line human description for logs. *)

(** {1 Framing} *)

exception Frame_error of string
(** Raised on oversized frames, CRC mismatches, or undecodable
    payloads. *)

val max_frame : int
(** Upper bound on payload size (refuse absurd lengths before
    allocating). *)

val frame : bytes -> bytes
(** Wrap a payload in a [length | crc | payload] frame. *)

val request_to_bytes : request -> bytes
val reply_to_bytes : reply -> bytes

val request_of_payload : bytes -> request
(** @raise Frame_error if the payload is not a request. *)

val reply_of_payload : bytes -> reply
(** @raise Frame_error if the payload is not a reply. *)

val write_frame : Unix.file_descr -> bytes -> unit
(** Write [frame payload] fully, retrying on [EINTR] and short
    writes.  Raises the underlying [Unix.Unix_error] on a dead peer
    ([EPIPE]); callers decide whether that matters. *)

val read_frame : Unix.file_descr -> bytes option
(** Blocking read of one complete frame's payload; [None] on clean
    EOF before the first header byte.
    @raise Frame_error on truncation mid-frame or CRC mismatch. *)

(** {1 Incremental parsing (server side)} *)

module Accum : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> unit
  (** Append the first [n] bytes of a chunk. *)

  val next : t -> (bytes, string) result option
  (** [Some (Ok payload)] when a complete, CRC-valid frame is
      buffered; [Some (Error msg)] when the stream is unrecoverably
      malformed (the connection should be closed); [None] when more
      bytes are needed. *)
end
