(* The `minjie serve` daemon.  See server.mli for the execution
   model. *)

type config = {
  socket_path : string;
  jobs : int;
  queue_depth : int;
  batch_max : int;
  journal_path : string option;
  resume : bool;
  quiet : bool;
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = 1;
    queue_depth = 64;
    batch_max = 2;
    journal_path = None;
    resume = false;
    quiet = false;
  }

(* --- job execution ---------------------------------------------------- *)

let ref_kind_of_string s =
  match Minjie.Ref_model.kind_of_string s with
  | Some k -> k
  | None -> invalid_arg (Printf.sprintf "serve: unknown REF backend %S" s)

(* mirror the CLI: SMP workloads need a multi-core config *)
let effective_config workload (cfg : Xiangshan.Config.t) =
  let is_smp =
    List.exists
      (fun (w : Workloads.Wl_common.t) -> w.Workloads.Wl_common.wl_name = workload)
      Workloads.Suite.smp
  in
  if is_smp && cfg.Xiangshan.Config.n_cores < 2 then Xiangshan.Config.nh
  else cfg

let soc_instrs (soc : Xiangshan.Soc.t) =
  Array.fold_left
    (fun acc (core : Xiangshan.Core.t) ->
      acc + core.Xiangshan.Core.perf.Xiangshan.Core.p_instrs)
    0 soc.Xiangshan.Soc.cores

let exec_spec cache ~jobs (spec : Proto.job_spec) : Proto.job_result =
  match spec with
  | Proto.Run r ->
      let prog = Warm_cache.program cache r.rn_workload in
      let cfg =
        effective_config r.rn_workload (Warm_cache.config_of_name r.rn_config)
      in
      let ref_kind = ref_kind_of_string r.rn_ref in
      let soc = Xiangshan.Soc.create cfg in
      Xiangshan.Soc.load_program soc prog;
      let dt = Minjie.Difftest.create ~ref_kind ~prog soc in
      let status = Minjie.Difftest.run ~max_cycles:r.rn_max_cycles dt in
      let rr_status =
        match status with
        | Minjie.Difftest.Finished c -> Proto.Rs_finished c
        | Minjie.Difftest.Failed f ->
            Proto.Rs_failed
              {
                rf_rule = f.Minjie.Rule.f_rule;
                rf_cycle = f.Minjie.Rule.f_cycle;
                rf_msg = f.Minjie.Rule.f_msg;
              }
        | Minjie.Difftest.Running -> Proto.Rs_timeout
      in
      Proto.R_run
        {
          rr_status;
          rr_cycles = soc.Xiangshan.Soc.now;
          rr_instrs = soc_instrs soc;
          rr_commits = Minjie.Difftest.commits_checked dt;
          rr_rules = Minjie.Difftest.rule_fire_counts dt;
        }
  | Proto.Engine e ->
      let w = Warm_cache.engine cache e.en_workload in
      let insns = Nemu.Engine.warm_run w ~max_insns:e.en_max_insns in
      let m = Nemu.Engine.warm_mach w in
      Proto.R_engine
        {
          re_insns = insns;
          re_exit = Nemu.Mach.exit_code m;
          re_digest = Nemu.Mach.arch_state_digest m;
        }
  | Proto.Checkpoint c ->
      let cfg = Warm_cache.config_of_name c.ck_config in
      let cks, stats =
        Warm_cache.checkpoints cache ~workload:c.ck_workload
          ~interval:c.ck_interval ~max_k:c.ck_max_k
      in
      let results =
        Checkpoint.Sampled.simulate_all ~warmup:c.ck_warmup
          ~measure:c.ck_measure ~jobs cfg cks
      in
      Proto.R_checkpoint
        {
          rc_intervals = stats.Checkpoint.Sampled.gen_intervals;
          rc_selected = stats.Checkpoint.Sampled.gen_selected;
          rc_samples =
            List.map
              (fun (s : Checkpoint.Sampled.sample_result) ->
                {
                  Proto.sa_index = s.Checkpoint.Sampled.sr_index;
                  sa_weight = s.Checkpoint.Sampled.sr_weight;
                  sa_instructions = s.Checkpoint.Sampled.sr_instructions;
                  sa_cycles = s.Checkpoint.Sampled.sr_cycles;
                })
              results;
          rc_weighted_ipc = Checkpoint.Sampled.weighted_ipc results;
        }
  | Proto.Campaign c ->
      let faults = match c.ca_faults with [] -> None | fs -> Some fs in
      let seeds = match c.ca_seeds with [] -> None | ss -> Some ss in
      let ref_kind = ref_kind_of_string c.ca_ref in
      let s = Minjie.Campaign.run ?faults ?seeds ~ref_kind ~jobs () in
      Proto.R_campaign
        {
          rca_total = s.Minjie.Campaign.total;
          rca_detected = s.Minjie.Campaign.detected;
          rca_escapes = s.Minjie.Campaign.escapes;
          rca_cells =
            List.map Minjie.Campaign.string_of_cell s.Minjie.Campaign.cells;
        }
  | Proto.Fuzz f ->
      let p =
        {
          Fuzz.smoke with
          Fuzz.fz_seed = f.fu_seed;
          fz_rounds = max 1 f.fu_rounds;
          fz_cands = max 1 f.fu_cands;
          fz_refs =
            (if f.fu_ref = "" then Fuzz.smoke.Fuzz.fz_refs
             else [ ref_kind_of_string f.fu_ref ]);
        }
      in
      let s = Fuzz.run ~p ~jobs () in
      Proto.R_fuzz
        {
          rfz_rounds = List.length s.Fuzz.fz_round_stats;
          rfz_points = s.Fuzz.fz_points;
          rfz_cells = s.Fuzz.fz_cells;
          rfz_corpus = s.Fuzz.fz_corpus;
          rfz_execs = List.length s.Fuzz.fz_execs;
          rfz_mismatches = s.Fuzz.fz_mismatches;
          rfz_round_lines =
            List.map Fuzz.string_of_round s.Fuzz.fz_round_stats;
        }
  | Proto.Topdown t ->
      let prog = Warm_cache.program cache t.td_workload in
      let cfg =
        effective_config t.td_workload (Warm_cache.config_of_name t.td_config)
      in
      let soc = Xiangshan.Soc.create cfg in
      Xiangshan.Soc.load_program soc prog;
      let _ = Xiangshan.Soc.run ~max_cycles:t.td_max_cycles soc in
      Proto.R_topdown
        {
          rt_cycles = soc.Xiangshan.Soc.now;
          rt_instrs = soc_instrs soc;
          rt_counters =
            Xiangshan.Core.counter_snapshot soc.Xiangshan.Soc.cores.(0);
        }
  | Proto.Sleep s ->
      Unix.sleepf s.sl_seconds;
      Proto.R_sleep { rs_tag = s.sl_tag }

let exec cache ~jobs spec =
  try exec_spec cache ~jobs spec with
  | e -> Proto.R_error (Printexc.to_string e)

let exec_cold ?(jobs = 1) spec = exec (Warm_cache.create ()) ~jobs spec

(* Resolve a spec's warm dependencies in the server process so (a) the
   expensive state is built exactly once and stays resident, and (b)
   forked pool workers inherit it copy-on-write.  Returns whether all
   of the spec's warm state was already resident (the job is "warm"). *)
let prefetch cache (spec : Proto.job_spec) =
  let h0 = Warm_cache.hits cache in
  let m0 = Warm_cache.misses cache in
  (match spec with
  | Proto.Run r -> ignore (Warm_cache.program cache r.rn_workload)
  | Proto.Topdown t -> ignore (Warm_cache.program cache t.td_workload)
  | Proto.Engine e -> ignore (Warm_cache.engine cache e.en_workload)
  | Proto.Checkpoint c ->
      ignore
        (Warm_cache.checkpoints cache ~workload:c.ck_workload
           ~interval:c.ck_interval ~max_k:c.ck_max_k)
  | Proto.Campaign _ | Proto.Fuzz _ | Proto.Sleep _ -> ());
  Warm_cache.hits cache > h0 && Warm_cache.misses cache = m0

(* --- server state ----------------------------------------------------- *)

type client = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_accum : Proto.Accum.t;
  c_queue : pending Queue.t;
  mutable c_alive : bool;
}

and pending = { p_id : int; p_spec : Proto.job_spec; p_client : client option }

type jrec = J_acc of int * Proto.job_spec | J_done of int * Proto.job_result

let journal_key = "serve-queue-v1"

(* accepted-but-unfinished jobs, in acceptance order: what a restarted
   server must re-run *)
let pending_of_records (records : jrec list) =
  let done_ids = Hashtbl.create 64 in
  List.iter
    (function J_done (id, _) -> Hashtbl.replace done_ids id () | J_acc _ -> ())
    records;
  List.filter_map
    (function
      | J_acc (id, spec) when not (Hashtbl.mem done_ids id) -> Some (id, spec)
      | _ -> None)
    records

type state = {
  cfg : config;
  cache : Warm_cache.t;
  ewma : Warm_cache.Ewma.t;
  mutable clients : client list;  (** connection order; newest last *)
  mutable rr_cursor : int;  (** round-robin start offset across clients *)
  mutable next_id : int;
  mutable jobs_done : int;
  mutable stop : bool;
  journal : Minjie.Journal.t option;
}

let log state fmt =
  Printf.ksprintf
    (fun s -> if not state.cfg.quiet then Printf.eprintf "[serve] %s\n%!" s)
    fmt

let journal_append state (r : jrec) =
  match state.journal with
  | Some j when Minjie.Journal.active j -> Minjie.Journal.append j r
  | _ -> ()

let queued_total state =
  List.fold_left (fun acc c -> acc + Queue.length c.c_queue) 0 state.clients

let send_reply state client (reply : Proto.reply) =
  if client.c_alive then
    try Proto.write_frame client.c_fd (Proto.reply_to_bytes reply) with
    | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        (* the client left; its jobs still ran and were journaled *)
        client.c_alive <- false;
        (try Unix.close client.c_fd with Unix.Unix_error _ -> ());
        log state "client %d vanished; dropped a reply" client.c_id

let close_client state client =
  if client.c_alive then begin
    client.c_alive <- false;
    try Unix.close client.c_fd with Unix.Unix_error _ -> ()
  end;
  (* keep the client record while it still has queued jobs: they run
     to completion (and are journaled); only the replies are dropped *)
  if Queue.is_empty client.c_queue then
    state.clients <- List.filter (fun c -> c != client) state.clients

(* --- batch execution -------------------------------------------------- *)

let default_cost (spec : Proto.job_spec) =
  (* static priors, only the ordering matters: campaigns dwarf
     everything, checkpoint > run/topdown > engine > sleep *)
  match spec with
  | Proto.Campaign _ -> 64.0
  | Proto.Fuzz _ -> 64.0
  | Proto.Checkpoint _ -> 16.0
  | Proto.Run _ -> 4.0
  | Proto.Topdown _ -> 4.0
  | Proto.Engine _ -> 1.0
  | Proto.Sleep s -> s.sl_seconds

let finish_job state (p : pending) ~warm ~secs (result : Proto.job_result) =
  state.jobs_done <- state.jobs_done + 1;
  Warm_cache.Ewma.observe state.ewma (Proto.class_key p.p_spec) secs;
  journal_append state (J_done (p.p_id, result));
  (match p.p_client with
  | Some c ->
      send_reply state c
        (Proto.Result { r_id = p.p_id; r_warm = warm; r_result = result })
  | None -> ());
  log state "job %d done in %.3fs%s (%s)" p.p_id secs
    (if warm then " [warm]" else "")
    (Proto.describe p.p_spec)

(* Jobs whose warm state lives in this process (decoded superblocks,
   generated checkpoints) run here so the state accumulates;
   everything else goes through the pool for crash isolation. *)
let runs_in_parent = function
  | Proto.Engine _ | Proto.Checkpoint _ -> true
  | Proto.Run _ | Proto.Campaign _ | Proto.Fuzz _ | Proto.Topdown _
  | Proto.Sleep _ ->
      false

let run_batch state (batch : pending list) =
  (* coalesce: jobs sharing warm state run back-to-back *)
  let batch =
    List.stable_sort
      (fun a b ->
        compare (Proto.warm_key a.p_spec) (Proto.warm_key b.p_spec))
      batch
  in
  let parent_jobs, pool_jobs = List.partition (fun p -> runs_in_parent p.p_spec) batch in
  (* prefetch every job's warm dependencies in the parent: pool
     workers inherit them copy-on-write at fork *)
  let warmth =
    List.map (fun p -> (p.p_id, prefetch state.cache p.p_spec)) batch
  in
  let was_warm id = try List.assoc id warmth with Not_found -> false in
  List.iter
    (fun p ->
      let t0 = Unix.gettimeofday () in
      let result = exec state.cache ~jobs:state.cfg.jobs p.p_spec in
      finish_job state p ~warm:(was_warm p.p_id)
        ~secs:(Unix.gettimeofday () -. t0)
        result)
    parent_jobs;
  match pool_jobs with
  | [] -> ()
  | _ ->
      let arr = Array.of_list pool_jobs in
      let jobs_list =
        List.map
          (fun p ->
            {
              Minjie.Pool.j_label = Printf.sprintf "job-%d" p.p_id;
              j_cost =
                Warm_cache.Ewma.expect state.ewma
                  (Proto.class_key p.p_spec)
                  ~default:(default_cost p.p_spec);
              j_run =
                (fun () -> exec state.cache ~jobs:1 p.p_spec);
            })
          pool_jobs
      in
      let progress (r : Proto.job_result Minjie.Pool.result) =
        let p = arr.(r.Minjie.Pool.r_index) in
        let result =
          match r.Minjie.Pool.r_outcome with
          | Minjie.Pool.Done res -> res
          | Minjie.Pool.Job_error msg -> Proto.R_error msg
          | Minjie.Pool.Crashed msg -> Proto.R_error ("worker crashed: " ^ msg)
          | Minjie.Pool.Timed_out secs ->
              Proto.R_error (Printf.sprintf "timed out after %.1fs" secs)
        in
        finish_job state p ~warm:(was_warm p.p_id)
          ~secs:r.Minjie.Pool.r_seconds result
      in
      ignore
        (Minjie.Pool.map ~jobs:state.cfg.jobs ~isolate:true ~progress jobs_list)

(* Build a batch round-robin across clients: starting from a rotating
   cursor, take one queued job per live-or-draining client per pass
   until the batch is full or queues are empty. *)
let build_batch state =
  let clients = Array.of_list state.clients in
  let n = Array.length clients in
  if n = 0 then []
  else begin
    let batch = ref [] and taken = ref 0 and progress = ref true in
    while !taken < state.cfg.batch_max && !progress do
      progress := false;
      for i = 0 to n - 1 do
        if !taken < state.cfg.batch_max then begin
          let c = clients.((state.rr_cursor + i) mod n) in
          match Queue.take_opt c.c_queue with
          | Some p ->
              batch := p :: !batch;
              incr taken;
              progress := true
          | None -> ()
        end
      done
    done;
    state.rr_cursor <- (state.rr_cursor + 1) mod max 1 n;
    (* drop clients that disconnected and have now fully drained *)
    state.clients <-
      List.filter
        (fun c -> c.c_alive || not (Queue.is_empty c.c_queue))
        state.clients;
    List.rev !batch
  end

(* --- request handling ------------------------------------------------- *)

let handle_request state client (req : Proto.request) =
  match req with
  | Proto.Ping ->
      send_reply state client
        (Proto.Pong { p_jobs = state.cfg.jobs; p_queued = queued_total state })
  | Proto.Stats ->
      send_reply state client
        (Proto.Stats_reply
           {
             st_jobs_done = state.jobs_done;
             st_warm_hits = Warm_cache.hits state.cache;
             st_warm_misses = Warm_cache.misses state.cache;
             st_queue_depth = queued_total state;
             st_clients =
               List.length (List.filter (fun c -> c.c_alive) state.clients);
             st_ewma = Warm_cache.Ewma.snapshot state.ewma;
           })
  | Proto.Shutdown ->
      state.stop <- true;
      log state "shutdown requested by client %d" client.c_id;
      send_reply state client Proto.Shutting_down
  | Proto.Submit spec ->
      if state.stop then send_reply state client Proto.Shutting_down
      else if queued_total state >= state.cfg.queue_depth then
        send_reply state client (Proto.Busy { b_depth = state.cfg.queue_depth })
      else begin
        let id = state.next_id in
        state.next_id <- id + 1;
        journal_append state (J_acc (id, spec));
        Queue.add { p_id = id; p_spec = spec; p_client = Some client } client.c_queue;
        log state "job %d accepted from client %d (%s)" id client.c_id
          (Proto.describe spec)
      end

let drain_client state client =
  let chunk = Bytes.create 65536 in
  let rec read_once () =
    match Unix.read client.c_fd chunk 0 (Bytes.length chunk) with
    | 0 -> close_client state client  (* clean EOF *)
    | n -> Proto.Accum.feed client.c_accum chunk n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_once ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        close_client state client
  in
  read_once ();
  let rec frames () =
    if client.c_alive then
      match Proto.Accum.next client.c_accum with
      | None -> ()
      | Some (Error msg) ->
          (* malformed stream: tell the client why, then hang up; the
             server itself stays healthy *)
          send_reply state client (Proto.Err ("protocol error: " ^ msg));
          close_client state client;
          log state "client %d sent a malformed frame: %s" client.c_id msg
      | Some (Ok payload) -> (
          match Proto.request_of_payload payload with
          | req ->
              handle_request state client req;
              frames ()
          | exception Proto.Frame_error msg ->
              send_reply state client (Proto.Err ("protocol error: " ^ msg));
              close_client state client)
  in
  frames ()

(* --- socket lifecycle ------------------------------------------------- *)

let bind_socket path =
  if Sys.file_exists path then begin
    (* a live server owns this path; a stale socket from a dead one is
       safe to unlink *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      try
        Unix.connect probe (Unix.ADDR_UNIX path);
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      failwith (Printf.sprintf "serve: %s already has a live server" path);
    Sys.remove path
  end;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let serve (cfg : config) =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let journal, replayed =
    match cfg.journal_path with
    | None -> (None, [])
    | Some path ->
        if not cfg.resume then (try Sys.remove path with Sys_error _ -> ());
        let j, (records : jrec list) =
          Minjie.Journal.open_ ~path ~key:journal_key
        in
        (Some j, records)
  in
  let state =
    {
      cfg;
      cache = Warm_cache.create ();
      ewma = Warm_cache.Ewma.create ();
      clients = [];
      rr_cursor = 0;
      next_id = 0;
      jobs_done = 0;
      stop = false;
      journal;
    }
  in
  (* crash recovery: re-run jobs that were accepted but never finished
     before the previous server died.  Their clients are long gone, so
     results go only to the journal. *)
  List.iter
    (function
      | J_acc (id, _) -> if id >= state.next_id then state.next_id <- id + 1
      | J_done _ -> ())
    replayed;
  let orphans =
    List.map
      (fun (id, spec) -> { p_id = id; p_spec = spec; p_client = None })
      (pending_of_records replayed)
  in
  let listen_fd = bind_socket cfg.socket_path in
  let cleanup () =
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    (try Sys.remove cfg.socket_path with Sys_error _ -> ());
    match state.journal with
    | Some j -> (try Minjie.Journal.close j with _ -> ())
    | None -> ()
  in
  Minjie.Supervisor.at_shutdown cleanup;
  if orphans <> [] then begin
    log state "resuming %d journaled job(s) from the previous server"
      (List.length orphans);
    run_batch state orphans
  end;
  log state "listening on %s (jobs %d, queue depth %d, batch %d)"
    cfg.socket_path cfg.jobs cfg.queue_depth cfg.batch_max;
  let next_client_id = ref 0 in
  (try
     while not (state.stop && queued_total state = 0) do
       let client_fds =
         List.filter_map
           (fun c -> if c.c_alive then Some c.c_fd else None)
           state.clients
       in
       let readable, _, _ =
         try Unix.select (listen_fd :: client_fds) [] [] 1.0
         with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
       in
       (* accept every pending connection *)
       if List.mem listen_fd readable then begin
         let rec accept_all () =
           match Unix.accept listen_fd with
           | fd, _ ->
               let c =
                 {
                   c_id = !next_client_id;
                   c_fd = fd;
                   c_accum = Proto.Accum.create ();
                   c_queue = Queue.create ();
                   c_alive = true;
                 }
               in
               incr next_client_id;
               state.clients <- state.clients @ [ c ];
               accept_all ()
           | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
             ->
               ()
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_all ()
         in
         accept_all ()
       end;
       List.iter
         (fun c ->
           if c.c_alive && List.mem c.c_fd readable then drain_client state c)
         state.clients;
       match build_batch state with
       | [] -> ()
       | batch -> run_batch state batch
     done
   with e ->
     cleanup ();
     raise e);
  log state "served %d job(s); shutting down" state.jobs_done;
  List.iter (fun c -> close_client state c) state.clients;
  cleanup ();
  0
