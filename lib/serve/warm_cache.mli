(** The server-resident warm state: assembled program images, live
    NEMU engines with their decoded superblock/megablock caches, and
    generated SimPoint checkpoint sets, keyed by the strings
    {!Proto.warm_key} derives from job specs.

    Entries never go stale by accident: programs and checkpoints are
    pure functions of their key, and a warm engine rolls its machine
    back to the reset point before every run (dropping decoded code
    whenever the previous run executed a flush event), so a warm
    result is architecturally identical to a cold one — the property
    every byte-identity test leans on.  Invalidation is therefore
    purely capacity-driven: past [capacity] entries the
    least-recently-used entry is evicted. *)

module Ewma : sig
  (** Exponentially-weighted moving averages of observed per-class job
      runtimes — the feedback that replaces {!Minjie.Pool}'s static
      expected durations once the service has seen a class before. *)

  type t

  val create : ?alpha:float -> unit -> t
  (** [alpha] (default 0.3) weights the newest observation. *)

  val observe : t -> string -> float -> unit

  val expect : t -> string -> default:float -> float
  (** The current average for a key, or [default] before any
      observation. *)

  val snapshot : t -> (string * float) list
  (** All (key, average) pairs, sorted by key. *)
end

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 64) bounds the entry count; LRU eviction. *)

val hits : t -> int
val misses : t -> int

val resolve_program : string -> Riscv.Asm.program
(** Resolve a workload name to an assembled image: a campaign
    catalogue name (built at its [small] scale), or
    ["testgen:SEED:BLOCKS:BLOCKLEN"] for a generated program.
    @raise Invalid_argument on an unknown name or malformed testgen
    spec. *)

val program : t -> string -> Riscv.Asm.program
(** Cached {!resolve_program}, keyed ["prog:" ^ workload]. *)

val engine : t -> string -> Nemu.Engine.warm
(** The resident warm engine for a workload, creating (and counting a
    miss) on first use; keyed ["engine:" ^ workload]. *)

val checkpoints :
  t ->
  workload:string ->
  interval:int ->
  max_k:int ->
  Checkpoint.Sampled.sampled_checkpoint list * Checkpoint.Sampled.generation_stats
(** Cached checkpoint generation for (workload, interval, max_k). *)

val config_of_name : string -> Xiangshan.Config.t
(** Resolve a {!Xiangshan.Config} preset by [cfg_name].
    @raise Invalid_argument on an unknown name. *)

val config_fingerprint : Xiangshan.Config.t -> string
(** A short stable digest of the full config record — warm keys and
    stats use it so two presets that happen to share a name can never
    alias. *)
