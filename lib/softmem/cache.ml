(* Coherent cache hierarchy, transaction-level.

   Abstraction (documented in DESIGN.md): data is write-through to the
   single backing physical memory, while each cache level runs a real
   coherence *metadata* state machine -- tags, permissions, an
   inclusive sharers directory, probes and grants -- and computes
   latencies.  This preserves everything the experiments observe:
   hit/miss and capacity behaviour (Figure 12's LLC sweep), coherence
   transactions for the diff-rules and the permission scoreboard
   (§III-B2b), probe traffic between cores, and the Acquire/Probe race
   window used to reproduce the §IV-C debugging case study (the
   injected bug captures the pre-write line image and serves it to the
   requesting core, exactly "L2 grants the wrong data upward to L1").

   Timing is accumulated along the recursive resolution of each
   transaction; concurrency across misses is modelled by the LSU,
   which keeps several transactions in flight (MSHR-style) with
   independent completion times. *)

type line = {
  mutable tag : int64; (* line index (addr >> line_shift); -1L invalid *)
  mutable perm : Perm.t;
  mutable sharers : int; (* bitmask of children holding >= Branch *)
  mutable owner : int; (* child holding Trunk, -1 if none *)
  mutable last_use : int;
  mutable inflight_until : int; (* fill outstanding until this cycle *)
}

type parent = Dram of Dram.t | Cache of t

and t = {
  name : string;
  sets : int;
  ways : int;
  line_shift : int;
  hit_latency : int;
  lines : line array; (* sets * ways, row-major by set *)
  mutable parent : parent;
  mutable children : t array;
  mutable child_id : int; (* index of this node among parent's children *)
  backing : Riscv.Memory.t;
  mutable sink : Event.sink;
  mutable now : int; (* advanced by the owner SoC every cycle *)
  (* fault injection for the §IV-C case study *)
  mutable bug_probe_race : bool;
  (* fault injection for the permission-scoreboard rules: grant Trunk
     without probing the other sharers first *)
  mutable bug_skip_probe : bool;
  poisoned : (int64, Bytes.t) Hashtbl.t;
  (* statistics *)
  mutable s_accesses : int;
  mutable s_misses : int;
  mutable s_refills : int;
  mutable s_probes : int;
  mutable s_evictions : int;
  (* MSHR-saturation probe: [mshr_cap] outstanding fills are free; a
     miss that begins while a fill window already holds [mshr_cap]
     overlapping fills counts as a saturation event.  0 = untracked. *)
  mutable mshr_cap : int;
  mutable fill_win_until : int;
  mutable fill_win_count : int;
  mutable s_mshr_sat : int;
}

let line_bytes t = 1 lsl t.line_shift

let line_addr t addr = Int64.shift_right_logical addr t.line_shift

let base_of_la t la = Int64.shift_left la t.line_shift

let create ~name ~size_bytes ~ways ~line_shift ~hit_latency ~backing () =
  let line_b = 1 lsl line_shift in
  let sets = max 1 (size_bytes / line_b / ways) in
  {
    name;
    sets;
    ways;
    line_shift;
    hit_latency;
    lines =
      Array.init (sets * ways) (fun _ ->
          {
            tag = -1L;
            perm = Perm.Nothing;
            sharers = 0;
            owner = -1;
            last_use = 0;
            inflight_until = 0;
          });
    parent = Dram (Dram.create (Dram.Fixed_amat 100));
    children = [||];
    child_id = 0;
    backing;
    sink = Event.null_sink;
    now = 0;
    bug_probe_race = false;
    bug_skip_probe = false;
    poisoned = Hashtbl.create 8;
    s_accesses = 0;
    s_misses = 0;
    s_refills = 0;
    s_probes = 0;
    s_evictions = 0;
    mshr_cap = 0;
    fill_win_until = 0;
    fill_win_count = 0;
    s_mshr_sat = 0;
  }

let set_parent child parent =
  child.parent <- Cache parent;
  parent.children <- Array.append parent.children [| child |];
  child.child_id <- Array.length parent.children - 1

let set_dram node dram = node.parent <- Dram dram

(* Propagate the event sink and clock down a hierarchy. *)
let rec iter_tree node f =
  f node;
  Array.iter (fun c -> iter_tree c f) node.children

let emit t xact ~child ~la =
  t.sink { Event.cycle = t.now; node = t.name; child; xact; addr = base_of_la t la }

let set_index t la = Int64.to_int (Int64.rem la (Int64.of_int t.sets))

let lookup t la : line option =
  let s = set_index t la in
  let rec go w =
    if w >= t.ways then None
    else
      let l = t.lines.((s * t.ways) + w) in
      if l.tag = la && l.perm <> Perm.Nothing then Some l else go (w + 1)
  in
  go 0

let victim t la : line =
  let s = set_index t la in
  let best = ref t.lines.(s * t.ways) in
  (try
     for w = 0 to t.ways - 1 do
       let l = t.lines.((s * t.ways) + w) in
       if l.perm = Perm.Nothing then begin
         best := l;
         raise Exit
       end;
       if l.last_use < !best.last_use then best := l
     done
   with Exit -> ());
  !best

(* Fault injection: corrupt the data image of up to [max] valid lines
   in this node, as if a Grant delivered bit-flipped payload.  Uses
   the same poisoned-line machinery as the §IV-C bug: reads consult
   the poison image, a write to the line heals it.  Returns the number
   of lines corrupted. *)
let corrupt_lines (t : t) ~max : int =
  let n = ref 0 in
  Array.iter
    (fun (l : line) ->
      if !n < max && l.tag >= 0L && l.perm <> Perm.Nothing
         && not (Hashtbl.mem t.poisoned l.tag)
      then begin
        let buf = Bytes.create (line_bytes t) in
        let base = base_of_la t l.tag in
        for i = 0 to line_bytes t - 1 do
          Bytes.set buf i
            (Char.chr
               (Riscv.Memory.read_u8 t.backing (Int64.add base (Int64.of_int i))
               lxor 0xA5))
        done;
        Hashtbl.replace t.poisoned l.tag buf;
        incr n
      end)
    t.lines;
  !n

(* Downgrade [t]'s copy (and its whole subtree) to [to_perm].
   Returns the latency of the probe. *)
let rec probe (t : t) ~la ~(to_perm : Perm.t) : int =
  t.s_probes <- t.s_probes + 1;
  emit t (Perm.Probe to_perm) ~child:(-1) ~la;
  match lookup t la with
  | None ->
      emit t (Perm.Probe_ack to_perm) ~child:(-1) ~la;
      1
  | Some line ->
      (* forward to children first (inclusive hierarchy) *)
      let child_lat = ref 0 in
      Array.iteri
        (fun i c ->
          if line.sharers land (1 lsl i) <> 0 then
            child_lat := max !child_lat (probe c ~la ~to_perm))
        t.children;
      (* the injected L2 MSHR arbitration bug: a Probe overlapping an
         in-flight Acquire on the same block captures the pre-write
         data image, which later Grants serve upward *)
      if t.bug_probe_race && line.inflight_until > t.now then begin
        let buf = Bytes.create (line_bytes t) in
        let base = base_of_la t la in
        for i = 0 to line_bytes t - 1 do
          Bytes.set buf i
            (Char.chr
               (Riscv.Memory.read_u8 t.backing (Int64.add base (Int64.of_int i))))
        done;
        Hashtbl.replace t.poisoned la buf
      end;
      (match to_perm with
      | Perm.Nothing ->
          line.tag <- -1L;
          line.perm <- Perm.Nothing;
          line.sharers <- 0;
          line.owner <- -1
      | Perm.Branch ->
          if Perm.rank line.perm > Perm.rank Perm.Branch then
            line.perm <- Perm.Branch;
          line.owner <- -1
      | Perm.Trunk -> invalid_arg "probe to Trunk");
      emit t (Perm.Probe_ack to_perm) ~child:(-1) ~la;
      !child_lat + 1

(* Notify the parent that [t] no longer holds [la] (eviction). *)
let release_to_parent (t : t) ~la =
  emit t Perm.Release ~child:(-1) ~la;
  match t.parent with
  | Dram _ -> ()
  | Cache p -> (
      match lookup p la with
      | Some pl ->
          pl.sharers <- pl.sharers land lnot (1 lsl t.child_id);
          if pl.owner = t.child_id then pl.owner <- -1
      | None -> ())

(* One more outstanding fill, completing at [until]: misses landing
   inside a window where fills are still in flight model MSHR
   occupancy; exceeding [mshr_cap] concurrent fills is a saturation
   event (the D$ would have stalled the pipeline). *)
let note_fill (t : t) ~until =
  if t.mshr_cap > 0 then begin
    if t.now < t.fill_win_until then begin
      t.fill_win_count <- t.fill_win_count + 1;
      if t.fill_win_count > t.mshr_cap then t.s_mshr_sat <- t.s_mshr_sat + 1
    end
    else t.fill_win_count <- 1;
    if until > t.fill_win_until then t.fill_win_until <- until
  end

(* Make this node itself hold [la] with at least [want].
   Returns latency. *)
let rec ensure (t : t) ~la ~(want : Perm.t) : int =
  t.s_accesses <- t.s_accesses + 1;
  match lookup t la with
  | Some line when Perm.at_least line.perm want ->
      line.last_use <- t.now;
      t.hit_latency
  | Some line ->
      (* permission upgrade: a miss, but no line install (refill) *)
      t.s_misses <- t.s_misses + 1;
      let pl = acquire_from_parent t ~la ~want in
      line.perm <- want;
      line.last_use <- t.now;
      line.inflight_until <- t.now + t.hit_latency + pl;
      note_fill t ~until:line.inflight_until;
      t.hit_latency + pl
  | None ->
      t.s_misses <- t.s_misses + 1;
      t.s_refills <- t.s_refills + 1;
      let v = victim t la in
      if v.perm <> Perm.Nothing then begin
        t.s_evictions <- t.s_evictions + 1;
        (* inclusive eviction: purge the subtree, tell the parent *)
        Array.iteri
          (fun i c ->
            if v.sharers land (1 lsl i) <> 0 then
              ignore (probe c ~la:v.tag ~to_perm:Perm.Nothing))
          t.children;
        release_to_parent t ~la:v.tag
      end;
      let pl = acquire_from_parent t ~la ~want in
      v.tag <- la;
      v.perm <- want;
      v.sharers <- 0;
      v.owner <- -1;
      v.last_use <- t.now;
      v.inflight_until <- t.now + t.hit_latency + pl;
      note_fill t ~until:v.inflight_until;
      t.hit_latency + pl

and acquire_from_parent (t : t) ~la ~want : int =
  emit t (Perm.Acquire want) ~child:(-1) ~la;
  match t.parent with
  | Dram d -> Dram.access d ~now:t.now ~addr:(base_of_la t la)
  | Cache p -> acquire p ~la ~want ~child:t.child_id

(* A child requests [want] on [la] from [p]. Returns latency. *)
and acquire (p : t) ~la ~want ~child : int =
  let self_lat = ensure p ~la ~want in
  let probe_lat = ref 0 in
  (match lookup p la with
  | None -> assert false (* ensure just installed it *)
  | Some line ->
      (match want with
      | Perm.Trunk ->
          if not p.bug_skip_probe then
            Array.iteri
              (fun i c ->
                if i <> child && line.sharers land (1 lsl i) <> 0 then begin
                  probe_lat :=
                    max !probe_lat (probe c ~la ~to_perm:Perm.Nothing);
                  line.sharers <- line.sharers land lnot (1 lsl i)
                end)
              p.children;
          line.owner <- child
      | Perm.Branch ->
          if line.owner >= 0 && line.owner <> child then begin
            probe_lat :=
              max !probe_lat
                (probe p.children.(line.owner) ~la ~to_perm:Perm.Branch);
            line.owner <- -1
          end
      | Perm.Nothing -> ());
      line.sharers <- line.sharers lor (1 lsl child));
  emit p (Perm.Grant want) ~child ~la;
  (* the buggy grant path: serve poisoned data to the child *)
  (if Hashtbl.mem p.poisoned la then
     match Hashtbl.find_opt p.poisoned la with
     | Some buf ->
         Hashtbl.replace p.children.(child).poisoned la (Bytes.copy buf)
     | None -> ());
  self_lat + !probe_lat

(* ---- core-facing interface (called on an L1 node) ------------------- *)

let poisoned_value t ~la ~addr ~size : int64 option =
  match Hashtbl.find_opt t.poisoned la with
  | None -> None
  | Some buf ->
      let off = Int64.to_int (Int64.sub addr (base_of_la t la)) in
      if off + size > Bytes.length buf then None
      else begin
        let v = ref 0L in
        for i = size - 1 downto 0 do
          v :=
            Int64.logor
              (Int64.shift_left !v 8)
              (Int64.of_int (Char.code (Bytes.get buf (off + i))))
        done;
        Some !v
      end

(* Read [size] bytes; returns (value, latency). *)
let read (t : t) ~addr ~size : int64 * int =
  let la = line_addr t addr in
  let lat = ensure t ~la ~want:Perm.Branch in
  let v =
    match poisoned_value t ~la ~addr ~size with
    | Some v -> v
    | None -> Riscv.Memory.read_bytes_le t.backing addr size
  in
  (v, lat)

(* Write [size] bytes; returns latency.  Write-through to backing. *)
let write (t : t) ~addr ~size v : int =
  let la = line_addr t addr in
  let lat = ensure t ~la ~want:Perm.Trunk in
  Hashtbl.remove t.poisoned la;
  Riscv.Memory.write_bytes_le t.backing addr size v;
  lat

(* Read-only probe of latency without a data value (instruction fetch). *)
let fetch (t : t) ~addr : int =
  let la = line_addr t addr in
  ensure t ~la ~want:Perm.Branch

let invalidate_all (t : t) =
  iter_tree t (fun n ->
      Array.iter
        (fun l ->
          l.tag <- -1L;
          l.perm <- Perm.Nothing;
          l.sharers <- 0;
          l.owner <- -1)
        n.lines;
      Hashtbl.reset n.poisoned)

let tick (t : t) = t.now <- t.now + 1

let set_now (t : t) n = t.now <- n

type stats = {
  accesses : int;
  misses : int;
  refills : int; (* line installs; a permission-upgrade miss is not a refill *)
  probes : int;
  evictions : int;
  mshr_saturated : int;
}

let stats t =
  {
    accesses = t.s_accesses;
    misses = t.s_misses;
    refills = t.s_refills;
    probes = t.s_probes;
    evictions = t.s_evictions;
    mshr_saturated = t.s_mshr_sat;
  }

let set_mshrs t n = t.mshr_cap <- max 0 n
