(** Coherent cache hierarchy, transaction-level.

    Abstraction (see DESIGN.md "model fidelity"): line data is
    write-through to the single backing physical memory, while each
    level runs a real coherence *metadata* state machine -- tags,
    permissions, an inclusive sharers directory, Acquire / Grant /
    Probe / Probe_ack / Release events, MSHR in-flight windows -- and
    computes latencies.  This preserves everything the experiments
    observe: hit/miss/capacity behaviour, probe traffic for the
    permission scoreboard, and the Acquire/Probe race window used by
    the §IV-C fault injection (which captures the pre-write line image
    and serves it on later grants: "L2 grants the wrong data upward to
    L1").

    Concurrency across misses is modelled by the LSU keeping several
    transactions in flight with independent completion times. *)

type line = {
  mutable tag : int64;
  mutable perm : Perm.t;
  mutable sharers : int;
  mutable owner : int;
  mutable last_use : int;
  mutable inflight_until : int;
}

type parent = Dram of Dram.t | Cache of t

and t = {
  name : string;
  sets : int;
  ways : int;
  line_shift : int;
  hit_latency : int;
  lines : line array;
  mutable parent : parent;
  mutable children : t array;
  mutable child_id : int;
  backing : Riscv.Memory.t;
  mutable sink : Event.sink;
  mutable now : int;
  mutable bug_probe_race : bool;
      (** §IV-C injection: a Probe overlapping an in-flight Acquire
          captures the stale line image *)
  mutable bug_skip_probe : bool;
      (** scoreboard injection: grant Trunk without probing sharers *)
  poisoned : (int64, Bytes.t) Hashtbl.t;
  mutable s_accesses : int;
  mutable s_misses : int;
  mutable s_refills : int;
      (** misses that installed a line (permission upgrades excluded) *)
  mutable s_probes : int;
  mutable s_evictions : int;
  mutable mshr_cap : int;
  mutable fill_win_until : int;
  mutable fill_win_count : int;
  mutable s_mshr_sat : int;
}

val create :
  name:string ->
  size_bytes:int ->
  ways:int ->
  line_shift:int ->
  hit_latency:int ->
  backing:Riscv.Memory.t ->
  unit ->
  t

val set_parent : t -> t -> unit
(** Make the second argument the parent of the first (registers the
    child in the parent's directory). *)

val set_dram : t -> Dram.t -> unit

val iter_tree : t -> (t -> unit) -> unit

(** {1 Core-facing interface (called on an L1 node)} *)

val read : t -> addr:int64 -> size:int -> int64 * int
(** (value, latency); acquires Branch permission, probing a sibling
    Trunk holder if necessary. *)

val write : t -> addr:int64 -> size:int -> int64 -> int
(** Latency; acquires Trunk (invalidating sibling copies) and writes
    through to the backing memory. *)

val fetch : t -> addr:int64 -> int
(** Instruction-fetch latency (Branch permission, no data returned
    here; the IFU reads bytes from the backing memory). *)

val invalidate_all : t -> unit

val corrupt_lines : t -> max:int -> int
(** Fault injection: poison the data image of up to [max] valid lines
    (bit-flipped payload, as if a Grant went bad).  Reads consult the
    poison; a write to the line heals it.  Returns the count. *)

(** {1 Internal protocol steps (exposed for tests)} *)

val probe : t -> la:int64 -> to_perm:Perm.t -> int

val ensure : t -> la:int64 -> want:Perm.t -> int

val acquire : t -> la:int64 -> want:Perm.t -> child:int -> int

val line_addr : t -> int64 -> int64

val tick : t -> unit

val set_now : t -> int -> unit

type stats = {
  accesses : int;
  misses : int;
  refills : int;  (** line installs; a permission-upgrade miss is not a refill *)
  probes : int;
  evictions : int;
  mshr_saturated : int;
      (** misses that began while [mshr] fills were already outstanding
          (see {!set_mshrs}); 0 when untracked *)
}

val stats : t -> stats

val set_mshrs : t -> int -> unit
(** Enable the MSHR-saturation probe with the given number of miss
    slots (0 disables it, the default).  Purely observational: hit
    and miss latencies are unchanged; a miss that begins while the
    slots are exhausted increments [mshr_saturated]. *)
