(* Seed-deterministic structural mutations over Testgen IR (see
   mutate.mli).

   Every operator is total and closed over the generator's safety
   invariants: scratch accesses stay aligned inside the s2 region (the
   s2-relative guard means inserted sequences with other base
   registers are never re-targeted), control flow stays either forward
   or counter-bounded, and register choices come from the generator's
   usable set.  [apply] therefore always yields an assemblable,
   terminating program; the fuzz driver still belt-and-braces through
   [apply_all]'s assembly check. *)

open Riscv
module Testgen = Workloads.Testgen

type op =
  | Splice of { at : int; donor_seed : int }
  | Opcode of { block : int; index : int; pick : int }
  | Operand of { block : int; index : int; pick : int }
  | Branch_bias of { block : int; pick : int }
  | Loop_bound of { block : int; bound : int }
  | Page_boundary of { block : int; index : int; pick : int }
  | Self_mod_store of { block : int; index : int; pick : int }

let describe = function
  | Splice _ -> "splice"
  | Opcode _ -> "opcode"
  | Operand _ -> "operand"
  | Branch_bias _ -> "branch-bias"
  | Loop_bound _ -> "loop-bound"
  | Page_boundary _ -> "page-boundary"
  | Self_mod_store _ -> "self-mod-store"

(* --- serialization (corpus entries persist mutation histories) ------- *)

let to_string = function
  | Splice { at; donor_seed } -> Printf.sprintf "sp:%d:%d" at donor_seed
  | Opcode { block; index; pick } -> Printf.sprintf "oc:%d:%d:%d" block index pick
  | Operand { block; index; pick } -> Printf.sprintf "od:%d:%d:%d" block index pick
  | Branch_bias { block; pick } -> Printf.sprintf "bb:%d:%d" block pick
  | Loop_bound { block; bound } -> Printf.sprintf "lb:%d:%d" block bound
  | Page_boundary { block; index; pick } ->
      Printf.sprintf "pb:%d:%d:%d" block index pick
  | Self_mod_store { block; index; pick } ->
      Printf.sprintf "sm:%d:%d:%d" block index pick

let of_string s : op option =
  match String.split_on_char ':' s with
  | [ "sp"; a; b ] -> (
      try Some (Splice { at = int_of_string a; donor_seed = int_of_string b })
      with Failure _ -> None)
  | [ tag; a; b ] -> (
      try
        let a = int_of_string a and b = int_of_string b in
        match tag with
        | "bb" -> Some (Branch_bias { block = a; pick = b })
        | "lb" -> Some (Loop_bound { block = a; bound = b })
        | _ -> None
      with Failure _ -> None)
  | [ tag; a; b; c ] -> (
      try
        let block = int_of_string a
        and index = int_of_string b
        and pick = int_of_string c in
        match tag with
        | "oc" -> Some (Opcode { block; index; pick })
        | "od" -> Some (Operand { block; index; pick })
        | "pb" -> Some (Page_boundary { block; index; pick })
        | "sm" -> Some (Self_mod_store { block; index; pick })
        | _ -> None
      with Failure _ -> None)
  | _ -> None

let ops_to_string ops = String.concat ";" (List.map to_string ops)

let ops_of_string s : op list option =
  if s = "" then Some []
  else
    let parts = String.split_on_char ';' s in
    let parsed = List.map of_string parts in
    if List.for_all Option.is_some parsed then
      Some (List.map Option.get parsed)
    else None

(* --- planning --------------------------------------------------------- *)

(* Draw one operator from a seeded rng; indices are drawn wide and
   reduced modulo the program's actual shape at apply time, so a plan
   is valid against any parent. *)
let plan (r : Testgen.rng) : op =
  let big () = Testgen.rand r 1_000_000 in
  match Testgen.rand r 100 with
  | n when n < 16 -> Splice { at = big (); donor_seed = big () }
  | n when n < 40 -> Opcode { block = big (); index = big (); pick = big () }
  | n when n < 64 -> Operand { block = big (); index = big (); pick = big () }
  | n when n < 76 -> Branch_bias { block = big (); pick = big () }
  | n when n < 86 -> Loop_bound { block = big (); bound = big () }
  | n when n < 94 -> Page_boundary { block = big (); index = big (); pick = big () }
  | _ -> Self_mod_store { block = big (); index = big (); pick = big () }

(* --- application ------------------------------------------------------ *)

let nregs = Array.length Testgen.usable_regs
let ureg i = Testgen.usable_regs.(i mod nregs)

let realign off w = Int64.of_int (Int64.to_int off / w * w)

(* opcode swap within the instruction's own class; scratch accesses
   (base s2) keep their offsets aligned for the new width *)
let swap_opcode pick (insn : Insn.t) : Insn.t =
  match insn with
  | Insn.Op (_, rd, rs1, rs2) ->
      Insn.Op (Testgen.alu_ops.(pick mod 10), rd, rs1, rs2)
  | Insn.Op_imm (_, rd, rs1, imm) -> (
      match Testgen.alu_ops.(pick mod 10) with
      | Insn.SUB -> Insn.Op (SUB, rd, rs1, rs1)
      | (Insn.SLL | Insn.SRL | Insn.SRA) as op ->
          Insn.Op_imm (op, rd, rs1, Int64.logand imm 63L)
      | op -> Insn.Op_imm (op, rd, rs1, imm))
  | Insn.Op_w (_, rd, a, b) ->
      Insn.Op_w (Testgen.alu_w_ops.(pick mod 5), rd, a, b)
  | Insn.Mul (_, rd, a, b) -> Insn.Mul (Testgen.mul_ops.(pick mod 8), rd, a, b)
  | Insn.Load (_, rd, rs1, off) when rs1 = Asm.s2 ->
      let op = Testgen.load_ops.(pick mod 7) in
      Insn.Load (op, rd, rs1, realign off (Testgen.load_width op))
  | Insn.Store (_, rs2, rs1, off) when rs1 = Asm.s2 ->
      let op = Testgen.store_ops.(pick mod 4) in
      Insn.Store (op, rs2, rs1, realign off (Testgen.store_width op))
  | other -> other

(* operand perturbation: redirect one register field to another usable
   register, or re-draw an immediate within its encodable range *)
let perturb_operand pick (insn : Insn.t) : Insn.t =
  let field = pick mod 3 in
  let sub = pick / 3 in
  let nr = ureg sub in
  match insn with
  | Insn.Op (op, rd, rs1, rs2) -> (
      match field with
      | 0 -> Insn.Op (op, nr, rs1, rs2)
      | 1 -> Insn.Op (op, rd, nr, rs2)
      | _ -> Insn.Op (op, rd, rs1, nr))
  | Insn.Op_w (op, rd, rs1, rs2) -> (
      match field with
      | 0 -> Insn.Op_w (op, nr, rs1, rs2)
      | 1 -> Insn.Op_w (op, rd, nr, rs2)
      | _ -> Insn.Op_w (op, rd, rs1, nr))
  | Insn.Mul (op, rd, rs1, rs2) -> (
      match field with
      | 0 -> Insn.Mul (op, nr, rs1, rs2)
      | 1 -> Insn.Mul (op, rd, nr, rs2)
      | _ -> Insn.Mul (op, rd, rs1, nr))
  | Insn.Op_imm (op, rd, rs1, imm) -> (
      match field with
      | 0 -> Insn.Op_imm (op, nr, rs1, imm)
      | 1 -> Insn.Op_imm (op, rd, nr, imm)
      | _ ->
          let imm' =
            match op with
            | Insn.SLL | Insn.SRL | Insn.SRA -> Int64.of_int (sub mod 64)
            | _ -> Int64.of_int ((sub mod 4096) - 2048)
          in
          Insn.Op_imm (op, rd, rs1, imm'))
  | Insn.Lui (rd, imm) ->
      if field = 0 then Insn.Lui (nr, imm)
      else Insn.Lui (rd, Int64.shift_left (Int64.of_int ((sub mod 4096) - 2048)) 12)
  | Insn.Load (op, rd, rs1, _) when rs1 = Asm.s2 && field <> 0 ->
      let w = Testgen.load_width op in
      Insn.Load (op, rd, rs1, Int64.of_int (sub mod (2048 / w) * w))
  | Insn.Load (op, _, rs1, off) when rs1 = Asm.s2 -> Insn.Load (op, nr, rs1, off)
  | Insn.Store (op, _, rs1, off) when rs1 = Asm.s2 && field = 0 ->
      Insn.Store (op, nr, rs1, off)
  | Insn.Store (op, rs2, rs1, _) when rs1 = Asm.s2 ->
      let w = Testgen.store_width op in
      Insn.Store (op, rs2, rs1, Int64.of_int (sub mod (2048 / w) * w))
  | other -> other

let with_block (ir : Testgen.ir) b f : Testgen.ir =
  let n = Array.length ir.Testgen.ir_blocks in
  if n = 0 then ir
  else begin
    let b = b mod n in
    let blocks = Array.copy ir.Testgen.ir_blocks in
    blocks.(b) <- f blocks.(b);
    { ir with Testgen.ir_blocks = blocks }
  end

let with_insn (ir : Testgen.ir) b i f : Testgen.ir =
  with_block ir b (fun blk ->
      let len = Array.length blk.Testgen.bb_insns in
      if len = 0 then blk
      else begin
        let i = i mod len in
        let insns = Array.copy blk.Testgen.bb_insns in
        insns.(i) <- f insns.(i);
        { blk with Testgen.bb_insns = insns }
      end)

let insert_insns (ir : Testgen.ir) b i (seq : Insn.t list) : Testgen.ir =
  with_block ir b (fun blk ->
      let len = Array.length blk.Testgen.bb_insns in
      let i = if len = 0 then 0 else i mod (len + 1) in
      let before = Array.sub blk.Testgen.bb_insns 0 i in
      let after = Array.sub blk.Testgen.bb_insns i (len - i) in
      {
        blk with
        Testgen.bb_insns =
          Array.concat [ before; Array.of_list seq; after ];
      })

let apply (ir : Testgen.ir) (op : op) : Testgen.ir =
  match op with
  | Splice { at; donor_seed } ->
      with_block ir at (fun blk ->
          let len = max 1 (Array.length blk.Testgen.bb_insns) in
          let donor =
            Testgen.generate ~seed:donor_seed ~blocks:1 ~block_len:len ()
          in
          (match donor.Testgen.ir_blocks with
          | [| d |] -> { blk with Testgen.bb_insns = d.Testgen.bb_insns }
          | _ -> blk))
  | Opcode { block; index; pick } ->
      with_insn ir block index (swap_opcode pick)
  | Operand { block; index; pick } ->
      with_insn ir block index (perturb_operand pick)
  | Branch_bias { block; pick } ->
      with_block ir block (fun blk ->
          let op' = Testgen.branch_ops.(pick mod 6) in
          let _, rs1, rs2 = blk.Testgen.bb_branch in
          let rs1, rs2 = if pick / 6 mod 2 = 1 then (rs2, rs1) else (rs1, rs2) in
          let rs2 = if pick / 12 mod 4 = 0 then ureg (pick / 48) else rs2 in
          { blk with Testgen.bb_branch = (op', rs1, rs2) })
  | Loop_bound { block; bound } ->
      with_block ir block (fun blk ->
          { blk with Testgen.bb_loop = 1 + (bound mod 8) })
  | Page_boundary { block; index; pick } ->
      (* store/load pair straddling the scratch region's first page
         edge: t = s2 + 4094, bytes at +1/+2 sit on each side of the
         4KB boundary *)
      let t = ureg pick and u = ureg (pick / nregs) in
      insert_insns ir block index
        [
          Insn.Op_imm (ADD, t, Asm.s2, 2047L);
          Insn.Op_imm (ADD, t, t, 2047L);
          Insn.Store (SB, u, t, 1L);
          Insn.Store (SB, u, t, 2L);
          Insn.Load (LBU, u, t, 2L);
        ]
  | Self_mod_store { block; index; pick } ->
      (* idempotent self-modifying store: read the auipc's own word
         and write it back, then fence.i.  Architecturally a no-op,
         but it drives the store-to-text / icache / decoded-code
         invalidation paths in every engine. *)
      let t = ureg pick in
      let iu = pick / nregs mod nregs in
      let u = Testgen.usable_regs.(if ureg iu = t then (iu + 1) mod nregs else iu) in
      insert_insns ir block index
        [
          Insn.Auipc (t, 0L);
          Insn.Load (LW, u, t, 0L);
          Insn.Store (SW, u, t, 0L);
          Insn.Fence_i;
        ]

(* Apply a mutation history, validating by assembling after each step:
   an operator that somehow yields an unassemblable program is dropped
   (deterministically) rather than propagated. *)
let apply_all (ir : Testgen.ir) (ops : op list) : Testgen.ir =
  List.fold_left
    (fun acc op ->
      let candidate = apply acc op in
      match Testgen.to_asm candidate with
      | (_ : Asm.program) -> candidate
      | exception _ -> acc)
    ir ops
