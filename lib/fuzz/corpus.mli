(** Size-bounded mutation corpus, ranked by new-coverage-per-cycle.

    Entries are recipes (base generator seed + {!Mutate.op} history),
    not materialized programs: reconstruction through the
    deterministic generator yields bit-identical inputs, and the
    persisted form stays a few bytes per entry.

    Ranking is [new_points / (cycles / 1000)] -- coverage earned per
    kilocycle of simulation -- with entry id as the deterministic
    tiebreak, so eviction at the cap is a pure function of the
    admitted set.  Scores are recomputed from the persisted integers
    on load; no floats are serialized. *)

type entry = {
  en_id : int;  (** globally unique admission id (grid order) *)
  en_seed : int;  (** base {!Workloads.Testgen.generate} seed *)
  en_ops : Mutate.op list;  (** mutation history, applied in order *)
  en_new_points : int;  (** coverage points this entry first earned *)
  en_cycles : int;  (** cycles its run took *)
  en_score : float;  (** derived: new_points per kilocycle *)
}

type t

val create : cap:int -> t
(** [cap] is clamped to at least 1. *)

val score : new_points:int -> cycles:int -> float

val mk_entry :
  id:int -> seed:int -> ops:Mutate.op list -> new_points:int -> cycles:int ->
  entry

val admit : t -> entry -> bool
(** Insert if the entry earned new coverage, evicting the worst-ranked
    entry beyond the cap.  Returns whether the entry survived. *)

val size : t -> int

val entries : t -> entry list
(** Best-first. *)

val pick : t -> Workloads.Testgen.rng -> entry option
(** Rank-biased parent selection (rank [r] has weight [1/(r+1)]);
    consumes exactly one draw.  [None] on an empty corpus. *)

(** {1 Persistence} *)

val to_string : t -> string
val of_string : string -> t option

val save : t -> path:string -> unit
(** Via {!Minjie.Journal.atomic_write_file}: never leaves a torn
    corpus file behind. *)

val load : path:string -> t option
