(* Size-bounded mutation corpus (see corpus.mli).

   An entry is a recipe -- base generator seed plus mutation history --
   never a materialized program, so the corpus file is tiny and a load
   reconstructs bit-identical inputs through the deterministic
   generator.  Ranking uses new-coverage-per-kilocycle, recomputed
   from the persisted integers on load so a save/load round trip (and
   a journal resume) ranks identically: no floats are ever parsed. *)

type entry = {
  en_id : int;
  en_seed : int;
  en_ops : Mutate.op list;
  en_new_points : int;
  en_cycles : int;
  en_score : float;
}

type t = { cap : int; mutable entries : entry list (* sorted best-first *) }

let score ~new_points ~cycles =
  float_of_int new_points /. (float_of_int (max 1 cycles) /. 1000.)

(* score desc, then id asc: total order, so eviction is deterministic *)
let order a b =
  match compare b.en_score a.en_score with
  | 0 -> compare a.en_id b.en_id
  | c -> c

let create ~cap = { cap = max 1 cap; entries = [] }

let size t = List.length t.entries

let entries t = t.entries

let mk_entry ~id ~seed ~ops ~new_points ~cycles =
  {
    en_id = id;
    en_seed = seed;
    en_ops = ops;
    en_new_points = new_points;
    en_cycles = cycles;
    en_score = score ~new_points ~cycles;
  }

(* Insert if it earned new coverage; evict the worst beyond cap. *)
let admit t (e : entry) : bool =
  if e.en_new_points <= 0 then false
  else begin
    let merged = List.merge order [ e ] t.entries in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    t.entries <- take t.cap merged;
    List.exists (fun x -> x.en_id = e.en_id) t.entries
  end

(* Rank-biased pick: entry at rank r is chosen with weight 1/(r+1),
   via a single draw -- deterministic given the rng state. *)
let pick t (r : Workloads.Testgen.rng) : entry option =
  match t.entries with
  | [] -> None
  | es ->
      let n = List.length es in
      let weights = Array.init n (fun i -> 1000 / (i + 1)) in
      let total = Array.fold_left ( + ) 0 weights in
      let d = ref (Workloads.Testgen.rand r total) in
      let chosen = ref 0 in
      (try
         Array.iteri
           (fun i w ->
             if !d < w then begin
               chosen := i;
               raise Exit
             end
             else d := !d - w)
           weights
       with Exit -> ());
      Some (List.nth es !chosen)

(* --- persistence ------------------------------------------------------ *)

let magic = "MJCORP1"

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%s cap=%d\n" magic t.cap);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d %d %s\n" e.en_id e.en_seed e.en_new_points
           e.en_cycles
           (Mutate.ops_to_string e.en_ops)))
    t.entries;
  Buffer.contents buf

let of_string s : t option =
  match String.split_on_char '\n' s with
  | hdr :: lines -> (
      match String.split_on_char ' ' hdr with
      | [ m; capf ] when m = magic && String.length capf > 4 -> (
          try
            let cap = int_of_string (String.sub capf 4 (String.length capf - 4)) in
            let t = create ~cap in
            let parsed =
              List.filter_map
                (fun line ->
                  if line = "" then None
                  else
                    match String.split_on_char ' ' line with
                    | [ id; seed; np; cyc ] | [ id; seed; np; cyc; "" ] ->
                        Some
                          (mk_entry ~id:(int_of_string id)
                             ~seed:(int_of_string seed) ~ops:[]
                             ~new_points:(int_of_string np)
                             ~cycles:(int_of_string cyc))
                    | [ id; seed; np; cyc; ops ] -> (
                        match Mutate.ops_of_string ops with
                        | Some ops ->
                            Some
                              (mk_entry ~id:(int_of_string id)
                                 ~seed:(int_of_string seed) ~ops
                                 ~new_points:(int_of_string np)
                                 ~cycles:(int_of_string cyc))
                        | None -> raise Exit)
                    | _ -> raise Exit)
                lines
            in
            t.entries <- List.sort order parsed;
            Some t
          with Exit | Failure _ -> None)
      | _ -> None)
  | [] -> None

let save t ~path = Minjie.Journal.atomic_write_file ~path (to_string t)

let load ~path : t option =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      of_string s
