(** Coverage-guided fuzz campaign over the DiffTest stack.

    Rounds of mutate -> run -> merge -> rank: each round plans a batch
    of candidate programs (fresh {!Workloads.Testgen} seeds plus
    {!Mutate} variations of the best {!Corpus} entries), runs every
    candidate under {!Minjie.Workflow.run_collect} on a rotating
    (config x REF backend) grid cell -- 1/2/4-hart configs, both
    reference backends -- folds the final counter snapshots into the
    {!Coverage} map, and admits candidates that earned new coverage
    into the corpus.  Mismatches surface as ordinary DiffTest
    verdicts, reproduced through the LightSSS replay like any other
    campaign failure.

    Determinism: every candidate derives a private rng from (campaign
    seed, round, candidate) via an avalanche mix; corpus picks and
    mutation plans consume only that rng; exec records carry no
    wall-clock fields.  The same seed therefore produces byte-
    identical summaries, a journaled run killed mid-round resumes to
    the same bytes, and pool workers only change wall-clock time. *)

module Coverage : module type of Coverage
module Mutate : module type of Mutate
module Corpus : module type of Corpus

type params = {
  fz_seed : int;
  fz_rounds : int;
  fz_cands : int;  (** candidates per round *)
  fz_blocks : int;  (** generator blocks per program *)
  fz_block_len : int;
  fz_corpus_cap : int;
  fz_max_cycles : int;  (** per-run cycle budget *)
  fz_snapshot_interval : int;  (** LightSSS interval for runs *)
  fz_configs : string list;  (** {!config_of_name} forms *)
  fz_refs : Minjie.Ref_model.kind list;
  fz_fault : string option;
      (** optional {!Minjie.Fault} model planted in every run, to
          demonstrate mismatch finds reproduce through replay *)
}

val default : params
(** 6 rounds x 6 candidates over [YQH; NH; NH-4core] x [iss; nemu]. *)

val smoke : params
(** CI-sized: 2 rounds x 3 candidates over [YQH; NH] x [iss; nemu]. *)

(** One candidate execution -- the journaled unit of work. *)
type exec = {
  x_round : int;
  x_cand : int;
  x_parent : int;  (** corpus entry id; -1 = fresh generator seed *)
  x_seed : int;
  x_ops : string;  (** {!Mutate.ops_to_string} of the history *)
  x_cfg : string;
  x_ref : string;
  x_verified : bool;
  x_exit : int;  (** exit code when verified; -1 mismatch; -2 pool *)
  x_cycles : int;
  x_rule : string;  (** detection rule on a mismatch *)
  x_replayed : bool;  (** LightSSS replay reproduced the mismatch *)
  x_replay_rule : string;
  x_msg : string;
  x_counters : (string * int) list;
}

type round_stat = {
  rs_round : int;
  rs_execs : int;
  rs_new_points : int;
  rs_points : int;  (** cumulative; monotone over rounds *)
  rs_cells : int;
  rs_corpus : int;
  rs_mismatches : int;
}

type summary = {
  fz_round_stats : round_stat list;
  fz_execs : exec list;  (** grid order: round-major, candidate-minor *)
  fz_points : int;
  fz_cells : int;
  fz_corpus : int;
  fz_mismatches : int;
  fz_coverage : (string * int) list;  (** {!Coverage.to_alist} *)
  fz_resumed : int;  (** execs replayed from the journal *)
  fz_retried : int;
  fz_recovered : int;
}

val config_of_name : string -> Xiangshan.Config.t
(** Accepts preset aliases ([yqh], [nh], [nh1], [nh4], case-insensitive)
    or an exact [cfg_name] from {!Xiangshan.Config.all_presets}.
    @raise Invalid_argument on anything else. *)

val journal_key : params -> string
(** Encodes the campaign identity; a journal written under different
    parameters never splices into a resumed run. *)

val is_mismatch : exec -> bool

val run :
  ?p:params ->
  ?jobs:int ->
  ?journal:string ->
  ?resume:bool ->
  ?retries:int ->
  ?timeout:float ->
  ?corpus_path:string ->
  ?progress:(exec -> unit) ->
  unit ->
  summary
(** Run the campaign.  [jobs]/[retries]/[timeout] drive
    {!Minjie.Supervisor.map} exactly as in {!Minjie.Campaign.run}
    (defaulting through [MINJIE_JOBS]/[MINJIE_RETRIES]); [journal]
    with [resume:true] continues a killed campaign without re-running
    journaled execs; [corpus_path] persists the final corpus via
    {!Corpus.save}.  [progress] fires once per exec (journal replays
    included). *)

(** A planned candidate: everything {!run_exec} needs, no rng. *)
type cand_plan = {
  p_round : int;
  p_cand : int;
  p_parent : int;
  p_seed : int;
  p_ops : Mutate.op list;
  p_cfg : string;
  p_ref : Minjie.Ref_model.kind;
}

val run_exec : params -> cand_plan -> exec
(** Run one planned candidate in-process (the pool job body). *)

val string_of_exec : exec -> string
val string_of_round : round_stat -> string
