(* Coverage-guided fuzz campaign driver (see fuzz.mli).

   Rounds of mutate -> run -> merge -> rank, shaped like Campaign.run:
   the same journaled-pool pattern (only Done results reach the
   journal; resumed cells replay in grid order), so a SIGKILLed
   campaign resumed with --resume produces byte-identical output.

   Determinism inventory: every candidate derives its own rng from
   (campaign seed, round, candidate) through an avalanche mix (the
   generator's rng collides on low-bit-only variation); corpus picks
   and mutation plans consume only that rng; planning for round R sees
   exactly the corpus/coverage state after folding rounds < R, which a
   resume reconstructs from the journal; and exec records carry no
   wall-clock fields. *)

module Coverage = Coverage
module Mutate = Mutate
module Corpus = Corpus
module Testgen = Workloads.Testgen

type params = {
  fz_seed : int;
  fz_rounds : int;
  fz_cands : int;  (* candidates per round *)
  fz_blocks : int;
  fz_block_len : int;
  fz_corpus_cap : int;
  fz_max_cycles : int;
  fz_snapshot_interval : int;
  fz_configs : string list;
  fz_refs : Minjie.Ref_model.kind list;
  fz_fault : string option;
}

let default =
  {
    fz_seed = 1;
    fz_rounds = 6;
    fz_cands = 6;
    fz_blocks = 8;
    fz_block_len = 10;
    fz_corpus_cap = 32;
    fz_max_cycles = 60_000;
    fz_snapshot_interval = 2_000;
    fz_configs = [ "YQH"; "NH"; "NH-4core" ];
    fz_refs = [ Minjie.Ref_model.Iss; Minjie.Ref_model.Nemu ];
    fz_fault = None;
  }

let smoke =
  {
    default with
    fz_rounds = 2;
    fz_cands = 3;
    fz_blocks = 4;
    fz_block_len = 6;
    fz_max_cycles = 20_000;
    fz_configs = [ "YQH"; "NH" ];
  }

type exec = {
  x_round : int;
  x_cand : int;
  x_parent : int;  (* corpus entry id; -1 = fresh generator seed *)
  x_seed : int;
  x_ops : string;  (* Mutate.ops_to_string *)
  x_cfg : string;
  x_ref : string;
  x_verified : bool;
  x_exit : int;  (* exit code when verified; -1 mismatch; -2 pool *)
  x_cycles : int;
  x_rule : string;  (* detection rule on a mismatch *)
  x_replayed : bool;  (* LightSSS replay reproduced the mismatch *)
  x_replay_rule : string;
  x_msg : string;
  x_counters : (string * int) list;
}

type round_stat = {
  rs_round : int;
  rs_execs : int;
  rs_new_points : int;
  rs_points : int;
  rs_cells : int;
  rs_corpus : int;
  rs_mismatches : int;
}

type summary = {
  fz_round_stats : round_stat list;
  fz_execs : exec list;  (* grid order: round-major, candidate-minor *)
  fz_points : int;
  fz_cells : int;
  fz_corpus : int;
  fz_mismatches : int;
  fz_coverage : (string * int) list;
  fz_resumed : int;
  fz_retried : int;
  fz_recovered : int;
}

let config_of_name name : Xiangshan.Config.t =
  let module C = Xiangshan.Config in
  match String.lowercase_ascii name with
  | "yqh" -> C.yqh
  | "nh" -> C.nh
  | "nh1" | "nh-1core" -> C.nh_single
  | "nh4" | "nh-4core" -> C.nh4
  | _ -> (
      match List.find_opt (fun c -> c.C.cfg_name = name) C.all_presets with
      | Some c -> c
      | None -> invalid_arg (Printf.sprintf "Fuzz: unknown config %S" name))

(* splitmix-style avalanche: candidate rngs must differ in high bits
   because Testgen.rng_of_seed ORs bit 0 into the seed *)
let derive seed ~round ~cand =
  let open Int64 in
  let z =
    add (of_int seed)
      (add
         (mul (of_int (round + 1)) 0x9E3779B97F4A7C15L)
         (mul (of_int (cand + 1)) 0xBF58476D1CE4E5B9L))
  in
  let z = mul (logxor z (shift_right_logical z 30)) 0x94D049BB133111EBL in
  to_int (logxor z (shift_right_logical z 31)) land Stdlib.max_int

(* --- one candidate execution ----------------------------------------- *)

type cand_plan = {
  p_round : int;
  p_cand : int;
  p_parent : int;
  p_seed : int;
  p_ops : Mutate.op list;
  p_cfg : string;
  p_ref : Minjie.Ref_model.kind;
}

let run_exec (p : params) (c : cand_plan) : exec =
  let cfg = config_of_name c.p_cfg in
  let ir =
    Testgen.generate ~seed:c.p_seed ~blocks:p.fz_blocks
      ~block_len:p.fz_block_len ()
  in
  let ir = Mutate.apply_all ir c.p_ops in
  let prog = Testgen.to_asm ~smp:(cfg.Xiangshan.Config.n_cores > 1) ir in
  let inject =
    Option.map
      (fun name ->
        let f = Minjie.Fault.find name in
        (* the registry's triggers are tuned to the campaign's long
           workloads; fuzz programs retire in a few thousand cycles,
           so cap the trigger well inside the cycle budget or the
           corruption lands after the program has already exited *)
        let trigger = min f.Minjie.Fault.f_trigger (p.fz_max_cycles / 40) in
        fun soc -> f.Minjie.Fault.f_install ~seed:c.p_seed ~trigger soc)
      p.fz_fault
  in
  let outcome, counters =
    Minjie.Workflow.run_collect ~snapshot_interval:p.fz_snapshot_interval
      ~max_cycles:p.fz_max_cycles ?inject ~ref_kind:c.p_ref ~prog cfg
  in
  let cycles =
    Option.value (List.assoc_opt "core.cycles" counters)
      ~default:p.fz_max_cycles
  in
  let base =
    {
      x_round = c.p_round;
      x_cand = c.p_cand;
      x_parent = c.p_parent;
      x_seed = c.p_seed;
      x_ops = Mutate.ops_to_string c.p_ops;
      x_cfg = cfg.Xiangshan.Config.cfg_name;
      x_ref = Minjie.Ref_model.kind_name c.p_ref;
      x_verified = false;
      x_exit = -1;
      x_cycles = cycles;
      x_rule = "";
      x_replayed = false;
      x_replay_rule = "";
      x_msg = "";
      x_counters = counters;
    }
  in
  match outcome with
  | Minjie.Workflow.Verified code -> { base with x_verified = true; x_exit = code }
  | Minjie.Workflow.Debugged r ->
      let f = r.Minjie.Workflow.first_failure in
      {
        base with
        x_rule = f.Minjie.Rule.f_rule;
        x_replayed = r.Minjie.Workflow.replay_failure <> None;
        x_replay_rule =
          (match r.Minjie.Workflow.replay_failure with
          | Some rf -> rf.Minjie.Rule.f_rule
          | None -> "");
        x_msg = Minjie.Rule.string_of_failure f;
      }

let exec_of_pool_failure (c : cand_plan) msg : exec =
  {
    x_round = c.p_round;
    x_cand = c.p_cand;
    x_parent = c.p_parent;
    x_seed = c.p_seed;
    x_ops = Mutate.ops_to_string c.p_ops;
    x_cfg = (config_of_name c.p_cfg).Xiangshan.Config.cfg_name;
    x_ref = Minjie.Ref_model.kind_name c.p_ref;
    x_verified = false;
    x_exit = -2;
    x_cycles = 0;
    x_rule = "";
    x_replayed = false;
    x_replay_rule = "";
    x_msg = "POOL: " ^ msg;
    x_counters = [];
  }

(* The journal key encodes the campaign's identity: a journal written
   by a different seed, grid, budget or fault set never splices in. *)
let journal_key (p : params) =
  Printf.sprintf
    "fuzz|seed=%d|rounds=%d|cands=%d|blocks=%d|bl=%d|cap=%d|mc=%d|si=%d|cfgs=%s|refs=%s|fault=%s"
    p.fz_seed p.fz_rounds p.fz_cands p.fz_blocks p.fz_block_len p.fz_corpus_cap
    p.fz_max_cycles p.fz_snapshot_interval
    (String.concat "," p.fz_configs)
    (String.concat "," (List.map Minjie.Ref_model.kind_name p.fz_refs))
    (match p.fz_fault with None -> "none" | Some f -> f)

let is_mismatch (e : exec) = e.x_rule <> ""

let run ?(p = default) ?jobs ?journal ?(resume = false) ?retries ?timeout
    ?corpus_path ?(progress = fun (_ : exec) -> ()) () : summary =
  if p.fz_configs = [] then invalid_arg "Fuzz.run: empty config list";
  if p.fz_refs = [] then invalid_arg "Fuzz.run: empty REF list";
  let ncfg = List.length p.fz_configs and nref = List.length p.fz_refs in
  let grid_cell idx =
    (List.nth p.fz_configs (idx mod ncfg), List.nth p.fz_refs (idx / ncfg mod nref))
  in
  let jobs = Minjie.Pool.resolve_jobs ?jobs () in
  let retries =
    match retries with
    | Some n -> max 0 n
    | None -> Option.value (Minjie.Supervisor.env_retries ()) ~default:0
  in
  (* journal replay: completed (round, cand) execs are not re-run; a
     resumed campaign re-attempts everything else *)
  let done_tbl : (int * int, exec) Hashtbl.t = Hashtbl.create 64 in
  let jnl =
    match journal with
    | None -> None
    | Some path ->
        if not resume then (try Sys.remove path with Sys_error _ -> ());
        let j, (replayed : exec list) =
          Minjie.Journal.open_ ~path ~key:(journal_key p)
        in
        List.iter
          (fun e -> Hashtbl.replace done_tbl (e.x_round, e.x_cand) e)
          replayed;
        Minjie.Supervisor.at_shutdown (fun () -> Minjie.Journal.close j);
        Some j
  in
  let resumed = Hashtbl.length done_tbl in
  let record e =
    (match jnl with Some j -> Minjie.Journal.append j e | None -> ());
    progress e
  in
  let cov = Coverage.create () in
  let corpus = Corpus.create ~cap:p.fz_corpus_cap in
  let retried = ref 0 and recovered = ref 0 in
  let all_execs = ref [] and round_stats = ref [] in
  (* merge one exec into global coverage + corpus; new-coverage credit
     depends on fold order, which is always grid order *)
  let fold_exec (e : exec) =
    let m = Coverage.create () in
    Coverage.add_counters m ~axis:e.x_cfg e.x_counters;
    if is_mismatch e then Coverage.note m (e.x_cfg ^ "/detect." ^ e.x_rule) 1;
    let before = Coverage.points cov in
    Coverage.merge_into ~into:cov m;
    let new_points = Coverage.points cov - before in
    let ops = Option.value (Mutate.ops_of_string e.x_ops) ~default:[] in
    ignore
      (Corpus.admit corpus
         (Corpus.mk_entry
            ~id:((e.x_round * p.fz_cands) + e.x_cand)
            ~seed:e.x_seed ~ops ~new_points ~cycles:e.x_cycles))
  in
  for round = 0 to p.fz_rounds - 1 do
    (* plan every candidate against the pre-round corpus state (a
       resume plans pending candidates against the same state the
       interrupted run saw, because folding happens after the round) *)
    let plan_cand cand : cand_plan =
      let idx = (round * p.fz_cands) + cand in
      let r = Testgen.rng_of_seed (derive p.fz_seed ~round ~cand) in
      let cfg, refk = grid_cell idx in
      let fresh () =
        let seed = Int64.to_int (Testgen.rand64 r) land max_int in
        (-1, seed, [])
      in
      let parent, seed, ops =
        if Corpus.size corpus = 0 || Testgen.rand r 100 < 30 then fresh ()
        else
          match Corpus.pick corpus r with
          | None -> fresh ()
          | Some e ->
              let n = 1 + Testgen.rand r 2 in
              let rec draw k acc =
                if k = 0 then List.rev acc
                else draw (k - 1) (Mutate.plan r :: acc)
              in
              (e.Corpus.en_id, e.Corpus.en_seed,
               e.Corpus.en_ops @ draw n [])
      in
      {
        p_round = round;
        p_cand = cand;
        p_parent = parent;
        p_seed = seed;
        p_ops = ops;
        p_cfg = cfg;
        p_ref = refk;
      }
    in
    let slots =
      List.init p.fz_cands (fun cand ->
          match Hashtbl.find_opt done_tbl (round, cand) with
          | Some e ->
              progress e;
              (cand, `Done e)
          | None -> (cand, `Todo (plan_cand cand)))
    in
    let todo =
      List.filter_map
        (fun (_, s) -> match s with `Todo c -> Some c | `Done _ -> None)
        slots
    in
    let fresh_execs =
      if todo = [] then []
      else if jobs <= 1 && retries = 0 then
        List.map
          (fun c ->
            let e = run_exec p c in
            record e;
            e)
          todo
      else begin
        (* one pool job per candidate; a candidate's max-cycle budget
           is the only static cost proxy, so weight SMP configs by
           their hart count *)
        let pool_jobs =
          List.map
            (fun c ->
              {
                Minjie.Pool.j_label =
                  Printf.sprintf "r%d.c%d@%s" c.p_round c.p_cand c.p_cfg;
                j_cost =
                  float_of_int
                    ((config_of_name c.p_cfg).Xiangshan.Config.n_cores
                    * p.fz_max_cycles);
                j_run = (fun () -> run_exec p c);
              })
            todo
        in
        let todo_arr = Array.of_list todo in
        let policy =
          { Minjie.Supervisor.default_policy with sp_retries = retries }
        in
        let exec_of (r : exec Minjie.Pool.result) =
          let c = todo_arr.(r.Minjie.Pool.r_index) in
          match r.Minjie.Pool.r_outcome with
          | Minjie.Pool.Done e -> e
          | Minjie.Pool.Job_error msg | Minjie.Pool.Crashed msg ->
              exec_of_pool_failure c msg
          | Minjie.Pool.Timed_out secs ->
              exec_of_pool_failure c
                (Printf.sprintf "timed out after %.1fs" secs)
        in
        let results, _stats, rep =
          Minjie.Supervisor.map ~jobs ?timeout ~policy
            ~progress:(fun (r : exec Minjie.Pool.result) ->
              match r.Minjie.Pool.r_outcome with
              | Minjie.Pool.Done e -> record e
              | _ -> progress (exec_of r))
            pool_jobs
        in
        retried := !retried + rep.Minjie.Supervisor.sup_retried;
        recovered := !recovered + rep.Minjie.Supervisor.sup_recovered;
        List.map exec_of results
      end
    in
    let fresh_tbl : (int, exec) Hashtbl.t = Hashtbl.create 16 in
    List.iter2
      (fun c e -> Hashtbl.replace fresh_tbl c.p_cand e)
      todo fresh_execs;
    (* fold in candidate order, wherever each exec came from *)
    let round_execs =
      List.map
        (fun (cand, s) ->
          match s with
          | `Done e -> e
          | `Todo _ -> Hashtbl.find fresh_tbl cand)
        slots
    in
    let points_before = Coverage.points cov in
    List.iter fold_exec round_execs;
    all_execs := List.rev_append round_execs !all_execs;
    round_stats :=
      {
        rs_round = round;
        rs_execs = List.length round_execs;
        rs_new_points = Coverage.points cov - points_before;
        rs_points = Coverage.points cov;
        rs_cells = Coverage.cells cov;
        rs_corpus = Corpus.size corpus;
        rs_mismatches =
          List.length (List.filter is_mismatch round_execs);
      }
      :: !round_stats
  done;
  (match jnl with Some j -> Minjie.Journal.close j | None -> ());
  (match corpus_path with
  | Some path -> Corpus.save corpus ~path
  | None -> ());
  let execs = List.rev !all_execs in
  {
    fz_round_stats = List.rev !round_stats;
    fz_execs = execs;
    fz_points = Coverage.points cov;
    fz_cells = Coverage.cells cov;
    fz_corpus = Corpus.size corpus;
    fz_mismatches = List.length (List.filter is_mismatch execs);
    fz_coverage = Coverage.to_alist cov;
    fz_resumed = resumed;
    fz_retried = !retried;
    fz_recovered = !recovered;
  }

let string_of_exec (e : exec) : string =
  Printf.sprintf "r%d.c%-2d %-8s %-4s seed=%-19d ops=%-2d %s" e.x_round e.x_cand
    e.x_cfg e.x_ref e.x_seed
    (if e.x_ops = "" then 0
     else List.length (String.split_on_char ';' e.x_ops))
    (if e.x_verified then Printf.sprintf "verified (exit %d, %d cycles)"
         e.x_exit e.x_cycles
     else if e.x_rule <> "" then
       Printf.sprintf "MISMATCH [%s] replay %s" e.x_rule
         (if e.x_replayed then "[" ^ e.x_replay_rule ^ "]" else "MISSED")
     else e.x_msg)

let string_of_round (r : round_stat) : string =
  Printf.sprintf
    "round %d: %d execs, +%d points (total %d points / %d cells), corpus %d, \
     %d mismatches"
    r.rs_round r.rs_execs r.rs_new_points r.rs_points r.rs_cells r.rs_corpus
    r.rs_mismatches
