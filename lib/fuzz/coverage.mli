(** Microarchitectural coverage map.

    A cell names an event class the fuzzer wants to reach -- a counter
    from {!Xiangshan.Core.counter_snapshot} (IQ-full and SB-full
    dispatch stalls, RAS overflow/underflow, mispredict classes,
    LR/SC success/failure, D$ MSHR saturation, ROB walk-depth buckets,
    TLB-walk-during-flush, ...) prefixed with the config axis it was
    observed on.  The cell's value is the deepest log2 magnitude
    bucket ever observed ([1] = fired once, up to {!max_bucket} for
    >= 128 events), so "more of the same event" keeps counting as new
    coverage a few times, then saturates.

    Maps form a lattice under pointwise bucket max: {!merge_into} is
    commutative, associative and idempotent, which is what lets pool
    workers' maps merge in any order and a journal resume replay into
    the identical map.  The per-event hot path is the core's
    allocation-free counter registry; this map folds one final
    snapshot per run. *)

type t

val max_bucket : int
(** 8: buckets are 1, 2-3, 4-7, ..., >= 128. *)

val bucket : int -> int
(** [floor(log2 v) + 1] capped at {!max_bucket}; 0 for [v <= 0]. *)

val create : unit -> t

val note : t -> string -> int -> unit
(** [note t cell v] raises [cell] to at least [bucket v]. *)

val add_counters : t -> axis:string -> (string * int) list -> unit
(** Fold one run's counter snapshot; every cell is prefixed
    ["axis/"] so runs on different configs cover distinct cells. *)

val cells : t -> int
(** Distinct covered cells (hit at least once). *)

val points : t -> int
(** Total coverage points: the sum of bucket levels over all cells.
    Monotone under both {!note} and {!merge_into}. *)

val merge_into : into:t -> t -> unit

val to_alist : t -> (string * int) list
(** Sorted by cell name. *)

val equal : t -> t -> bool

val to_string : t -> string
(** Stable text form ([MJCOV1] header + sorted [cell level] lines):
    byte-identical for equal maps, so merged campaign state can be
    diffed and persisted. *)

val of_string : string -> t option
(** Inverse of {!to_string}; [None] on a malformed document. *)
