(* Microarchitectural coverage map (see coverage.mli).

   A cell is a named event class ("NH/flush.mispredict",
   "YQH/l1d.mshr_saturated", ...); its value is the deepest log2
   magnitude bucket ever observed for that event.  The per-event hot
   path lives in the core's allocation-free counter registry -- this
   map only folds final counter snapshots, once per run, so the merge
   lattice (pointwise max over buckets) can afford a hashtable.

   The lattice makes merging commutative, associative and idempotent:
   pool workers can fold their runs in any order, a resumed campaign
   replays journal records into the same map, and the global points
   total is monotone over rounds by construction. *)

type t = (string, int) Hashtbl.t

let max_bucket = 8

(* floor(log2 v) + 1, capped: 1, 2-3, 4-7, ..., >=128 all land in
   buckets 1..8.  0 (event never fired) is "not covered". *)
let bucket v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x <> 0 && !b < max_bucket do
      incr b;
      x := !x lsr 1
    done;
    !b
  end

let create () : t = Hashtbl.create 512

let raise_to (t : t) cell level =
  if level > 0 then
    match Hashtbl.find_opt t cell with
    | Some l when l >= level -> ()
    | Some _ | None -> Hashtbl.replace t cell (min level max_bucket)

let note t cell v = raise_to t cell (bucket v)

let add_counters t ~axis counters =
  List.iter (fun (name, v) -> note t (axis ^ "/" ^ name) v) counters

let cells t = Hashtbl.length t

let points t = Hashtbl.fold (fun _ l acc -> acc + l) t 0

let merge_into ~into (src : t) = Hashtbl.iter (raise_to into) src

let to_alist t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun c l acc -> (c, l) :: acc) t [])

let equal a b = to_alist a = to_alist b

(* --- stable serialized form ------------------------------------------ *)

let magic = "MJCOV1"

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  List.iter
    (fun (c, l) ->
      Buffer.add_string buf c;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int l);
      Buffer.add_char buf '\n')
    (to_alist t);
  Buffer.contents buf

let of_string s : t option =
  match String.split_on_char '\n' s with
  | hdr :: lines when hdr = magic -> (
      let t = create () in
      try
        List.iter
          (fun line ->
            if line <> "" then
              match String.rindex_opt line ' ' with
              | Some i ->
                  let cell = String.sub line 0 i in
                  let level =
                    int_of_string
                      (String.sub line (i + 1) (String.length line - i - 1))
                  in
                  if cell = "" || level < 1 || level > max_bucket then
                    raise Exit;
                  raise_to t cell level
              | None -> raise Exit)
          lines;
        Some t
      with Exit | Failure _ -> None)
  | _ -> None
