(** Structural mutations over {!Workloads.Testgen} IR.

    Every operator is deterministic (a pure function of the [op]
    value), total (indices are reduced modulo the program's actual
    shape at apply time, so a plan drawn against one parent applies to
    any other), and closed over the generator's safety invariants:

    - scratch loads/stores keep base [s2] and width-aligned offsets
      inside the per-hart 64KB window;
    - control flow stays forward or counter-bounded (loop bounds are
      clamped to 1..8 on the reserved [s3] counter);
    - destination registers come from {!Workloads.Testgen.usable_regs}.

    [apply] therefore never yields an unassemblable or non-terminating
    program; {!apply_all} additionally assembles after each step and
    drops (deterministically) any operator that fails, as a backstop. *)

type op =
  | Splice of { at : int; donor_seed : int }
      (** Replace one block's straight-line body with a freshly
          generated donor block of the same length. *)
  | Opcode of { block : int; index : int; pick : int }
      (** Swap an instruction's opcode within its own class (ALU, ALU-W,
          MUL, load, store); scratch offsets are re-aligned for the new
          access width. *)
  | Operand of { block : int; index : int; pick : int }
      (** Redirect one register field to another usable register, or
          re-draw an immediate within its encodable range. *)
  | Branch_bias of { block : int; pick : int }
      (** Re-draw the block terminator's comparison op and/or swap or
          replace its operands, shifting taken/not-taken bias. *)
  | Loop_bound of { block : int; bound : int }
      (** Make the block a counted loop (bound clamped to 1..8). *)
  | Page_boundary of { block : int; index : int; pick : int }
      (** Insert a byte store/load pair straddling the scratch
          region's first 4KB page edge. *)
  | Self_mod_store of { block : int; index : int; pick : int }
      (** Insert an idempotent store to the instruction stream
          ([auipc]; reload/rewrite its own word; [fence.i]) to drive
          icache invalidation and DBT code-page flush paths. *)

val describe : op -> string
(** Short operator-class name for stats ("splice", "opcode", ...). *)

val plan : Workloads.Testgen.rng -> op
(** Draw one operator from the rng.  Consumes a bounded number of
    draws; the resulting [op] is self-contained (applying it consumes
    no further randomness beyond the donor generator's own seed). *)

val apply : Workloads.Testgen.ir -> op -> Workloads.Testgen.ir
(** Total; never raises on in-range constructor payloads. *)

val apply_all : Workloads.Testgen.ir -> op list -> Workloads.Testgen.ir
(** Left fold of {!apply}, assembling after each step and skipping any
    operator whose result fails to assemble. *)

(** {1 Serialization} (corpus entries persist mutation histories) *)

val to_string : op -> string
val of_string : string -> op option

val ops_to_string : op list -> string
(** [;]-separated {!to_string} forms; [""] for the empty history. *)

val ops_of_string : string -> op list option
