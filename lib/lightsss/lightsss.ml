(* LightSSS: lightweight simulation snapshots (paper §III-C).

   The paper's implementation forks the RTL-simulation process and
   lets the kernel's copy-on-write give an in-memory, incremental,
   circuit-agnostic snapshot.  The OCaml analogue implemented here:

   - the big state (every simulated physical memory) lives in
     Riscv.Memory's paged COW store: a snapshot copies only the page
     table, exactly like fork duplicating page tables, and later
     writes pay lazy per-page copies (the COW faults measured in
     Figure 6);
   - the remaining simulator state (cores, caches, reference models)
     is captured with Marshal including closures -- the analogue of
     the fork'd process image -- after detaching the page arrays so
     the marshalled image stays O(metadata), not O(memory).

   The manager keeps only the two most recent snapshots (paper
   §III-C3): when the verification layer reports an error, the older
   one is restored and the last <= 2N cycles are replayed in debug
   mode.

   The SSS and LiveSim baselines of Table I are provided for
   comparison: both copy the full image (memory included); SSS
   additionally round-trips it through a file. *)

type snapshot = {
  snap_cycle : int;
  mem_snaps : Riscv.Memory.snapshot list;
  image : bytes; (* marshalled simulator graph, memories detached *)
  image_bytes : int;
}

(* A subject couples the COW-able memories with the root of the
   mutable object graph to capture.  [detach_heavy]/[reattach_heavy]
   bracket the marshalling step: verification state that is shared
   with the replayed instance rather than copied (the analogue of
   fork-shared pages, e.g. DiffTest's Global Memory) is unhooked there
   so the image stays O(simulator metadata). *)
type 'a subject = {
  memories : Riscv.Memory.t list;
  roots : 'a;
  detach_heavy : unit -> unit;
  reattach_heavy : unit -> unit;
}

let plain_subject ~memories ~roots =
  {
    memories;
    roots;
    detach_heavy = (fun () -> ());
    reattach_heavy = (fun () -> ());
  }

let detach_pages (m : Riscv.Memory.t) =
  let p = m.Riscv.Memory.pages in
  m.Riscv.Memory.pages <- [||];
  Riscv.Memory.invalidate_caches m;
  p

let reattach_pages (m : Riscv.Memory.t) p =
  m.Riscv.Memory.pages <- p;
  Riscv.Memory.invalidate_caches m

(* Take a lightweight snapshot at [cycle]. *)
let snapshot (s : 'a subject) ~cycle : snapshot =
  let mem_snaps = List.map Riscv.Memory.snapshot s.memories in
  let saved = List.map detach_pages s.memories in
  s.detach_heavy ();
  let image =
    Fun.protect
      ~finally:(fun () ->
        s.reattach_heavy ();
        List.iter2 reattach_pages s.memories saved)
      (fun () -> Marshal.to_bytes s.roots [ Marshal.Closures ])
  in
  { snap_cycle = cycle; mem_snaps; image; image_bytes = Bytes.length image }

(* Restore with an explicit memory enumeration function applied to the
   fresh roots. *)
let restore_with (snap : snapshot) ~(memories_of : 'a -> Riscv.Memory.t list) :
    'a =
  let roots : 'a = Marshal.from_bytes snap.image 0 in
  let mems = memories_of roots in
  List.iter2
    (fun m ms -> Riscv.Memory.restore m ms)
    mems snap.mem_snaps;
  roots

let release (snap : snapshot) =
  List.iter Riscv.Memory.release_snapshot snap.mem_snaps

(* ---- the two-slot snapshot manager ---------------------------------- *)

type 'a manager = {
  subject : 'a subject;
  interval : int; (* cycles between snapshots *)
  mutable slots : snapshot list; (* at most 2, newest first *)
  mutable last_snap_cycle : int;
  mutable snapshots_taken : int;
  mutable total_snapshot_seconds : float;
}

let manager ~interval subject =
  {
    subject;
    interval;
    slots = [];
    last_snap_cycle = -(2 * interval);
    snapshots_taken = 0;
    total_snapshot_seconds = 0.0;
  }

(* Called every cycle; takes a snapshot when the interval elapses,
   keeping only the most recent two. *)
let tick (m : 'a manager) ~cycle =
  if cycle - m.last_snap_cycle >= m.interval then begin
    let t0 = Unix.gettimeofday () in
    let s = snapshot m.subject ~cycle in
    m.total_snapshot_seconds <-
      m.total_snapshot_seconds +. (Unix.gettimeofday () -. t0);
    m.snapshots_taken <- m.snapshots_taken + 1;
    m.last_snap_cycle <- cycle;
    (match m.slots with
    | a :: b :: _ ->
        release b;
        m.slots <- [ s; a ]
    | rest -> m.slots <- s :: rest)
  end

(* The snapshot to replay from on an error: the *older* of the two
   retained (so the region of interest, <= 2 intervals, is covered). *)
let replay_point (m : 'a manager) : snapshot option =
  match m.slots with [ _; b ] -> Some b | [ a ] -> Some a | _ -> None

(* ---- SSS / LiveSim baselines (Table I) ------------------------------- *)

(* Full-image snapshot: marshals everything *including* the memory
   pages -- O(simulated memory).  [to_file] additionally round-trips
   through the filesystem, like the Verilator save/restore flow. *)
let full_image_snapshot ?(to_file = false) (s : 'a subject) : int =
  let image = Marshal.to_bytes s.roots [ Marshal.Closures ] in
  if to_file then begin
    let f = Filename.temp_file "sss" ".img" in
    let oc = open_out_bin f in
    output_bytes oc image;
    close_out oc;
    Sys.remove f
  end;
  Bytes.length image

type scheme = {
  scheme_name : string;
  in_memory : bool;
  incremental : bool;
  circuit_agnostic : bool;
}

(* Table I. *)
let schemes =
  [
    {
      scheme_name = "CRIU-like";
      in_memory = false;
      incremental = true;
      circuit_agnostic = true;
    };
    {
      scheme_name = "Verilator save/restore (SSS)";
      in_memory = false;
      incremental = false;
      circuit_agnostic = false;
    };
    {
      scheme_name = "LiveSim-like";
      in_memory = true;
      incremental = false;
      circuit_agnostic = false;
    };
    {
      scheme_name = "LightSSS";
      in_memory = true;
      incremental = true;
      circuit_agnostic = true;
    };
  ]
