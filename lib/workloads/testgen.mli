(** Constrained-random test generation (the in-repo equivalent of the
    riscv-dv / riscv-torture generators the paper drives MINJIE with,
    §V-B).

    Generated programs are seeded and deterministic, architecturally
    well-defined (aligned accesses in a private scratch region,
    division corner cases allowed), and always terminate: control flow
    is a chain of blocks whose conditional branches only jump forward
    to the next block.  Each program ends by exiting with a checksum
    of every working register, so differential runs compare both the
    exit code and the full register file.

    The generator is exposed as a typed IR plus a lowering so the
    fuzzer ({!Fuzz.Mutate}) can perform structural mutations --
    splice blocks, swap opcodes, perturb operands, add bounded loops
    -- and round-trip the result through [to_asm].
    [to_asm (generate ~seed ())] is byte-identical to
    [program ~seed ()] (same PRNG draw sequence), pinned by the
    seed-stability regression test. *)

(** {1 PRNG} *)

type rng = { mutable s : int64 }
(** xorshift64 state; exposed so mutations can share the generator's
    draw discipline. *)

val rng_of_seed : int -> rng
(** Note: the seed is OR'd with 1 (xorshift must not start at 0), so
    seeds [2k] and [2k+1] yield the same stream. *)

val rand : rng -> int -> int
(** [rand r bound] advances the state and returns a draw in
    [\[0, bound)]. *)

val rand64 : rng -> int64
(** Advance and return the raw 64-bit state. *)

(** {1 Instruction-class tables} *)

val usable_regs : int array
(** Registers the generator may read/write.  Excludes x0, s2 (scratch
    base), s3 (reserved bounded-loop counter), t5/t6 (exit helper) and
    sp/gp/tp. *)

val alu_ops : Riscv.Insn.alu_op array
val alu_w_ops : Riscv.Insn.alu_w_op array
val mul_ops : Riscv.Insn.mul_op array
val branch_ops : Riscv.Insn.branch_op array
val load_ops : Riscv.Insn.load_op array
val store_ops : Riscv.Insn.store_op array
val load_width : Riscv.Insn.load_op -> int
val store_width : Riscv.Insn.store_op -> int

val gen_insn : rng -> Riscv.Insn.t
(** Draw one instruction from the generator's class distribution
    (scratch accesses are aligned offsets off s2). *)

(** {1 Typed IR} *)

type block = {
  bb_insns : Riscv.Insn.t array;
  bb_branch : Riscv.Insn.branch_op * int * int;
      (** forward conditional terminator: op, rs1, rs2 *)
  bb_loop : int;
      (** 0 = straight-line; n > 0 repeats the block body n times via
          the reserved counter s3 (bounded backward branch, so
          termination is preserved) *)
}

type ir = {
  ir_reg_init : int64 array;  (** parallel to {!usable_regs} *)
  ir_blocks : block array;
}

val generate : seed:int -> ?blocks:int -> ?block_len:int -> unit -> ir

val to_asm : ?smp:bool -> ir -> Riscv.Asm.program
(** Lower and assemble.  With [smp] (default false), each hart offsets
    its scratch base by [mhartid * 64KB] so multi-hart runs of the
    same image never race on the scratch region. *)

val program :
  seed:int -> ?blocks:int -> ?block_len:int -> unit -> Riscv.Asm.program
(** [to_asm (generate ...)]. *)
