(* Three-privilege micro-kernel: M-mode boots and delegates, S-mode
   acts as a kernel with its own trap vector, U-mode runs the payload
   under Sv39 with user pages, requesting services via ecall.

   Exercised architecture: medeleg (U-ecalls and page faults delegated
   to S), sret/mret transitions, stvec/sepc/scause/sstatus.SPP, user
   pages (PTE.U) with S-mode access denied without SUM, and lazy
   allocation handled by the *S-mode* handler this time.

   Layout (offsets from DRAM base):
     +0        code (identity-mapped, kernel, X)
     +2MB      page tables (root/kl1/hl1/hl0, as in Vm_kernel)
     +4MB      bump-allocated user heap pages
   User virtual heap at 0x4000_0000 (PTE.U pages installed lazily). *)

open Riscv
open Wl_common.Ops

let ( @. ) = List.append

let heap_va = Vm_kernel.heap_va

let root_pa = Vm_kernel.root_pa

let kl1_pa = Vm_kernel.kl1_pa

let hl1_pa = Vm_kernel.hl1_pa

let hl0_pa = Vm_kernel.hl0_pa

let alloc_pa = Vm_kernel.alloc_pa

let ul1_pa = Int64.add root_pa 0x4000L

(* U-mode executes the payload through its own window: VA 0xC000_0000
   maps the same physical image with PTE.U set (S-mode must never
   execute U pages, so the kernel window stays U=0) *)
let user_window = 0xC000_0000L

let user_va_of_kernel pa_or_identity =
  Int64.add (Int64.sub pa_or_identity Platform.dram_base) user_window

let pte_v = 1
let pte_u = 16

let leaf_flags = Vm_kernel.leaf_flags (* V|R|W|X|A|D, kernel *)

let ptr_pte = Vm_kernel.ptr_pte

let program ?(rounds = 1) ~scale () =
  let open Asm in
  let pages = min 256 (max 4 (8 * scale)) in
  Asm.assemble
    ([
       label "boot";
       (* page tables: identical skeleton to Vm_kernel *)
       li t0 root_pa;
       li t1 (Int64.add root_pa 0x5000L);
       label "clear_pt";
       sd zero t0 0;
       addi t0 t0 8;
       blt t0 t1 "clear_pt";
       li t0 root_pa;
       li t1 (ptr_pte kl1_pa);
       sd t1 t0 16;
       li t1 (ptr_pte hl1_pa);
       sd t1 t0 8;
       li t0 hl1_pa;
       li t1 (ptr_pte hl0_pa);
       sd t1 t0 0;
       (* root[3] -> user L1 (the 0xC000_0000 execution window) *)
       li t0 root_pa;
       li t1 (ptr_pte ul1_pa);
       sd t1 t0 24;
       (* kernel window: identity, U=0; user window: same frames, U=1 *)
       li t0 kl1_pa;
       li s6 ul1_pa;
       li t1 Platform.dram_base;
       li t2 0L;
       label "kmap";
       srli t3 t1 12;
       slli t3 t3 10;
       ori t3 t3 leaf_flags;
       sd t3 t0 0;
       ori t3 t3 pte_u;
       sd t3 s6 0;
       addi t0 t0 8;
       addi s6 s6 8;
       li t4 0x20_0000L;
       add t1 t1 t4;
       addi t2 t2 1;
       li t4 8L;
       blt t2 t4 "kmap";
       li tp alloc_pa;
       (* delegate U-ecalls and page faults to S-mode *)
       li t0 0x100L (* ecall-from-U *);
       li t1 0xB000L (* fetch/load/store page faults: bits 12,13,15 *);
       or_ t0 t0 t1;
       i (Insn.Csr (CSRRW, 0, t0, Csr.medeleg));
       (* M fallback handler for anything not delegated *)
       la t0 "mtrap";
       i (Insn.Csr (CSRRW, 0, t0, Csr.mtvec));
       li t0 (Pte.make_satp ~mode:8 ~asid:0 ~root_pa);
       i (Insn.Csr (CSRRW, 0, t0, Csr.satp));
       i (Insn.Sfence_vma (0, 0));
       (* drop to S-mode kernel *)
       la t0 "skernel";
       i (Insn.Csr (CSRRW, 0, t0, Csr.mepc));
       li t0 0x800L;
       i (Insn.Csr (CSRRC, 0, t0, Csr.mstatus));
       li t0 0x1000L;
       i (Insn.Csr (CSRRC, 0, t0, Csr.mstatus));
       li t0 0x800L;
       i (Insn.Csr (CSRRS, 0, t0, Csr.mstatus));
       i Insn.Mret;
       (* ---------------- S-mode kernel ---------------------------- *)
       label "skernel";
       la t0 "strap";
       i (Insn.Csr (CSRRW, 0, t0, Csr.stvec));
       (* enter U-mode at umain, relocated into the user window:
          sstatus.SPP = 0 *)
       la t0 "umain";
       li t1 (Int64.sub user_window Platform.dram_base);
       add t0 t0 t1;
       i (Insn.Csr (CSRRW, 0, t0, Csr.sepc));
       li t0 0x100L (* SPP *);
       i (Insn.Csr (CSRRC, 0, t0, Csr.sstatus));
       i Insn.Sret;
       (* ---------------- U-mode payload --------------------------- *)
       label "umain";
       li s2 heap_va;
       li s3 (Int64.of_int pages);
       li s1 0L;
       li t0 0L;
       label "touch";
       slli t1 t0 12;
       add t1 t1 s2;
       slli t2 t0 2;
       ori t2 t2 3;
       sd t2 t1 0 (* faults into the S handler on first touch *);
       ld t3 t1 0;
       add s1 s1 t3;
       addi t0 t0 1;
       blt t0 s3 "touch";
       (* syscall 1: add 100 to a0 (checks register passing across
          privilege); repeated [rounds] times it doubles as a
          U<->S round-trip throughput loop *)
       mv a0 s1;
       li s4 (Int64.of_int (max 1 rounds));
       label "sysloop";
       li a7 1L;
       i Insn.Ecall;
       addi s4 s4 (-1);
       bnez s4 "sysloop";
       (* syscall 0: exit with a0 *)
       li a7 0L;
       i Insn.Ecall;
       label "uhang";
       j "uhang";
       (* ---------------- S-mode trap handler ---------------------- *)
       label "strap";
       i (Insn.Csr (CSRRS, t5, 0, Csr.scause));
       li t6 8L (* ecall from U *);
       beq t5 t6 "syscall";
       li t6 13L;
       beq t5 t6 "s_pf";
       li t6 15L;
       beq t5 t6 "s_pf";
       (* unexpected in S: report 0xEC via M *)
       li a0 0xECL;
       li a7 0L;
       i Insn.Ecall (* ecall from S goes to M (not delegated) *);
       label "s_pf";
       i (Insn.Csr (CSRRS, t5, 0, Csr.stval));
       li t6 heap_va;
       bltu t5 t6 "s_bad";
       srli t5 t5 12;
       li t6 (Int64.shift_right_logical heap_va 12);
       sub t5 t5 t6;
       li t6 512L;
       bgeu t5 t6 "s_bad";
       slli t5 t5 3;
       li t6 hl0_pa;
       add t5 t5 t6;
       ld t6 t5 0;
       i (Insn.Op_imm (AND, t6, t6, 1L));
       bnez t6 "s_spurious";
       (* install a user page (V|R|W|U|A|D, no X) *)
       srli t6 tp 12;
       slli t6 t6 10;
       ori t6 t6 (pte_v lor 2 lor 4 lor pte_u lor 64 lor 128);
       sd t6 t5 0;
       li t5 4096L;
       add tp tp t5;
       i Insn.Sret;
       label "s_spurious";
       i (Insn.Sfence_vma (0, 0));
       i Insn.Sret;
       label "s_bad";
       li a0 0xEBL;
       li a7 0L;
       i Insn.Ecall;
       label "syscall";
       (* a7 = 1: a0 += 100, return to U past the ecall *)
       li t6 1L;
       bne a7 t6 "sys_exit";
       addi a0 a0 100;
       i (Insn.Csr (CSRRS, t5, 0, Csr.sepc));
       addi t5 t5 4;
       i (Insn.Csr (CSRRW, 0, t5, Csr.sepc));
       i Insn.Sret;
       label "sys_exit";
       (* forward to M to stop the machine *)
       i Insn.Ecall;
       (* ---------------- M fallback ------------------------------- *)
       label "mtrap";
       i (Insn.Csr (CSRRS, t5, 0, Csr.mcause));
       li t6 9L (* ecall from S = exit request *);
       beq t5 t6 "do_exit";
       li a0 0xEAL;
       label "do_exit";
     ]
    @. Wl_common.exit_with Asm.a0)

let spec : Wl_common.t =
  {
    wl_name = "user_mode";
    group = `Int;
    mimics = "U/S/M privilege stack with delegation";
    program = (fun ~scale -> program ~scale ());
    small = 2;
    big = 12;
  }
