(* Constrained-random test generation (the paper uses existing
   open-source generators like riscv-dv / riscv-torture with MINJIE,
   §V-B; this is the equivalent in-repo generator).

   Programs are seeded and deterministic: a xorshift PRNG drives the
   selection of instruction classes, registers and immediates.
   Constraints keeping every program architecturally well-defined and
   terminating:

   - memory accesses are naturally aligned inside a private scratch
     region (base register s2 is reserved and never clobbered);
   - control flow is structured as a fixed number of straight-line
     "blocks" whose terminating branches only jump forward to the
     next block label, so execution always reaches the exit;
   - division corner cases (by zero, overflow) are *allowed* -- their
     semantics are defined and make good test cases;
   - a final checksum folds every written register into the exit
     code.

   The generator is split into a typed IR ([generate]) and a lowering
   ([to_asm]) so that the fuzzer can mutate programs structurally --
   splice blocks, perturb opcodes/operands, add bounded loops --
   without string manipulation, and re-assemble the result.  The
   composition [to_asm (generate ~seed ...)] is byte-identical to what
   the pre-IR generator emitted for the same seed (the PRNG draw
   sequence is preserved exactly), which the seed-stability test
   pins. *)

open Riscv

let ( @. ) = List.append

type rng = { mutable s : int64 }

let rand (r : rng) (bound : int) : int =
  r.s <- Int64.logxor r.s (Int64.shift_left r.s 13);
  r.s <- Int64.logxor r.s (Int64.shift_right_logical r.s 7);
  r.s <- Int64.logxor r.s (Int64.shift_left r.s 17);
  Int64.to_int (Int64.unsigned_rem r.s (Int64.of_int bound))

let rand64 (r : rng) : int64 =
  ignore (rand r 2);
  r.s

let rng_of_seed seed = { s = Int64.logor (Int64.of_int seed) 1L }

(* registers the generator may use: avoid x0 (sink semantics tested
   separately), s2 (scratch base), s3 (reserved loop counter for
   mutated bounded loops), t5/t6 (exit helper) and sp/gp/tp *)
let usable_regs =
  [| 1; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15; 16; 17; 28; 29 |]

let reg r = usable_regs.(rand r (Array.length usable_regs))

let alu_ops =
  [| Insn.ADD; SUB; SLL; SLT; SLTU; XOR; SRL; SRA; OR; AND |]

let alu_w_ops = [| Insn.ADDW; SUBW; SLLW; SRLW; SRAW |]

let mul_ops =
  [| Insn.MUL; MULH; MULHSU; MULHU; DIV; DIVU; REM; REMU |]

let branch_ops = [| Insn.BEQ; BNE; BLT; BGE; BLTU; BGEU |]

let load_ops = [| Insn.LB; LH; LW; LD; LBU; LHU; LWU |]
let store_ops = [| Insn.SB; SH; SW; SD |]

let load_width = function
  | Insn.LB | Insn.LBU -> 1
  | Insn.LH | Insn.LHU -> 2
  | Insn.LW | Insn.LWU -> 4
  | Insn.LD -> 8

let store_width = function
  | Insn.SB -> 1
  | Insn.SH -> 2
  | Insn.SW -> 4
  | Insn.SD -> 8

let gen_insn (r : rng) : Insn.t =
  match rand r 100 with
  | n when n < 30 ->
      let op = alu_ops.(rand r 10) in
      Insn.Op (op, reg r, reg r, reg r)
  | n when n < 50 -> (
      let op = alu_ops.(rand r 10) in
      match op with
      | Insn.SUB -> Insn.Op (SUB, reg r, reg r, reg r)
      | Insn.SLL | Insn.SRL | Insn.SRA ->
          Insn.Op_imm (op, reg r, reg r, Int64.of_int (rand r 64))
      | _ ->
          Insn.Op_imm (op, reg r, reg r, Int64.of_int (rand r 4096 - 2048)))
  | n when n < 60 ->
      let op = alu_w_ops.(rand r 5) in
      Insn.Op_w (op, reg r, reg r, reg r)
  | n when n < 72 -> Insn.Mul (mul_ops.(rand r 8), reg r, reg r, reg r)
  | n when n < 76 ->
      Insn.Lui (reg r, Int64.shift_left (Int64.of_int (rand r 4096 - 2048)) 12)
  | n when n < 88 ->
      (* aligned load from the scratch region *)
      let op = load_ops.(rand r 7) in
      let w = load_width op in
      let off = rand r (2048 / w) * w in
      Insn.Load (op, reg r, Asm.s2, Int64.of_int off)
  | _ ->
      let op = store_ops.(rand r 4) in
      let w = store_width op in
      let off = rand r (2048 / w) * w in
      Insn.Store (op, reg r, Asm.s2, Int64.of_int off)

(* ---------------- typed IR ------------------------------------------- *)

type block = {
  bb_insns : Insn.t array;
  bb_branch : Insn.branch_op * int * int; (* terminator: op, rs1, rs2 *)
  bb_loop : int;
      (* 0 = straight-line; n > 0 repeats the block body n times via
         the reserved counter s3 (a backward branch, but bounded, so
         termination is preserved) *)
}

type ir = {
  ir_reg_init : int64 array; (* parallel to [usable_regs] *)
  ir_blocks : block array;
}

(* A random program IR: [blocks] straight-line blocks of [block_len]
   instructions, each ended by a random forward conditional branch to
   the next block (taken or not, both paths land on the next block).

   PRNG discipline: the draw order below replicates the historical
   emitter exactly -- register seeds first, then per block the body
   instructions followed by the branch opcode and then rs2 BEFORE rs1
   (the old code passed [reg r] twice as constructor arguments, which
   OCaml evaluates right-to-left).  Do not reorder. *)
let generate ~seed ?(blocks = 24) ?(block_len = 18) () : ir =
  let r = rng_of_seed seed in
  let nregs = Array.length usable_regs in
  let reg_init = Array.make nregs 0L in
  for k = 0 to nregs - 1 do
    reg_init.(k) <- rand64 r
  done;
  let mk_block () =
    let insns = Array.make block_len (Insn.Op_imm (ADD, 0, 0, 0L)) in
    for k = 0 to block_len - 1 do
      insns.(k) <- gen_insn r
    done;
    let op = branch_ops.(rand r 6) in
    let rs2 = reg r in
    let rs1 = reg r in
    { bb_insns = insns; bb_branch = (op, rs1, rs2); bb_loop = 0 }
  in
  let blks =
    if blocks <= 0 then [||]
    else begin
      let a = Array.make blocks (mk_block ()) in
      for b = 1 to blocks - 1 do
        a.(b) <- mk_block ()
      done;
      a
    end
  in
  { ir_reg_init = reg_init; ir_blocks = blks }

(* Lower the IR to an assembled program.  With [smp], each hart offsets
   its scratch base by mhartid * 64KB so multi-hart runs of the same
   image never race on the scratch region (mirrors the SMP workloads'
   partitioning idiom). *)
let to_asm ?(smp = false) (ir : ir) : Asm.program =
  let items = ref [ Asm.label "start"; Asm.li Asm.s2 Wl_common.data_base ] in
  let emit it = items := it :: !items in
  if smp then begin
    emit (Asm.i (Insn.Csr (CSRRS, Asm.t5, 0, Csr.mhartid)));
    emit (Asm.i (Insn.Op_imm (SLL, Asm.t5, Asm.t5, 16L)));
    emit (Asm.i (Insn.Op (ADD, Asm.s2, Asm.s2, Asm.t5)))
  end;
  Array.iteri
    (fun k v -> emit (Asm.li usable_regs.(k) v))
    ir.ir_reg_init;
  let nblocks = Array.length ir.ir_blocks in
  for b = 0 to nblocks - 1 do
    let blk = ir.ir_blocks.(b) in
    emit (Asm.label (Printf.sprintf "blk%d" b));
    if blk.bb_loop > 0 then begin
      emit (Asm.li Asm.s3 (Int64.of_int blk.bb_loop));
      emit (Asm.label (Printf.sprintf "blk%d_loop" b))
    end;
    Array.iter (fun insn -> emit (Asm.i insn)) blk.bb_insns;
    if blk.bb_loop > 0 then begin
      emit (Asm.i (Insn.Op_imm (ADD, Asm.s3, Asm.s3, -1L)));
      emit
        (Asm.branch_to Insn.BNE Asm.s3 Asm.zero
           (Printf.sprintf "blk%d_loop" b))
    end;
    let op, rs1, rs2 = blk.bb_branch in
    emit (Asm.branch_to op rs1 rs2 (Printf.sprintf "blk%d" (b + 1)))
    (* fall-through also reaches the next block *)
  done;
  emit (Asm.label (Printf.sprintf "blk%d" nblocks));
  (* checksum every usable register *)
  emit (Asm.li Asm.a0 0L);
  Array.iter (fun x -> emit (Wl_common.Ops.xor Asm.a0 Asm.a0 x)) usable_regs;
  let tail = Wl_common.exit_with Asm.a0 in
  Asm.assemble (List.rev !items @. tail)

let program ~seed ?blocks ?block_len () : Asm.program =
  to_asm (generate ~seed ?blocks ?block_len ())
