(* Micro-kernel with Sv39 paging and Linux-style lazy page allocation:
   the workload that produces the speculative-TLB page-fault
   non-determinism of Figure 3.

   Boot (M-mode): build a page table that identity-maps the kernel
   image with 2MB superpages and prepares an initially-empty heap
   region, install the M-mode trap handler, then mret into S-mode.

   S-mode body: touch [pages] heap pages that have no valid PTE yet.
   Each first touch takes a page fault into M-mode, whose handler
   installs a freshly allocated physical page *without* executing
   sfence.vma (exactly the Linux behaviour cited by the paper [52]);
   only a *spurious* re-fault -- PTE already valid, the hart just saw
   a stale/uncommitted view -- executes sfence.vma.  On the DUT the
   PTE store can sit in the store buffer while the hardware walker
   reads stale memory, and failed walks are cached in the TLB, so
   spurious re-faults genuinely occur and the page-fault diff-rule
   must reconcile them.

   Register conventions: the handler owns t5/t6/tp (tp = bump
   allocator pointer); S-mode code never uses them.

   Physical layout (offsets from DRAM base):
     +0        code
     +2MB      root page table
     +2MB+4K   kernel L1 table
     +2MB+8K   heap L1 table
     +2MB+12K  heap L0 table
     +4MB      lazily allocated heap pages *)

open Riscv
open Wl_common.Ops

let ( @. ) = List.append

let heap_va = 0x4000_0000L

let root_pa = Int64.add Platform.dram_base 0x20_0000L

let kl1_pa = Int64.add root_pa 0x1000L

let hl1_pa = Int64.add root_pa 0x2000L

let hl0_pa = Int64.add root_pa 0x3000L

let alloc_pa = Int64.add Platform.dram_base 0x40_0000L

let pte_v = 1
let pte_r = 2
let pte_w = 4
let pte_x = 8
let pte_a = 64
let pte_d = 128

let ptr_pte pa = Int64.logor (Int64.shift_left (Int64.shift_right_logical pa 12) 10) (Int64.of_int pte_v)

let leaf_flags = pte_v lor pte_r lor pte_w lor pte_x lor pte_a lor pte_d

(* [rounds] repeats the S-mode readback pass: the first pass takes the
   lazy-allocation page faults, every further pass is pure Sv39
   load/branch steady state -- the paging-heavy workload used by the
   interpreter benchmarks (bench `fig8` paging group). *)
let program ?(rounds = 1) ~scale () =
  let open Asm in
  let pages = min 384 (max 8 (16 * scale)) in
  Asm.assemble
    ([
       label "boot";
       (* clear the four page-table pages *)
       li t0 root_pa;
       li t1 (Int64.add root_pa 0x4000L);
       label "clear_pt";
       sd zero t0 0;
       addi t0 t0 8;
       blt t0 t1 "clear_pt";
       (* root[2] -> kernel L1 ; root[1] -> heap L1 ; heapL1[0] -> heap L0 *)
       li t0 root_pa;
       li t1 (ptr_pte kl1_pa);
       sd t1 t0 16; (* root[2] *)
       li t1 (ptr_pte hl1_pa);
       sd t1 t0 8; (* root[1] *)
       li t0 hl1_pa;
       li t1 (ptr_pte hl0_pa);
       sd t1 t0 0;
       (* kernel L1[0..7]: 2MB identity leaves *)
       li t0 kl1_pa;
       li t1 Platform.dram_base;
       li t2 0L;
       label "kmap";
       srli t3 t1 12;
       slli t3 t3 10;
       ori t3 t3 leaf_flags;
       sd t3 t0 0;
       addi t0 t0 8;
       li t4 0x20_0000L;
       add t1 t1 t4;
       addi t2 t2 1;
       li t4 8L;
       blt t2 t4 "kmap";
       (* bump allocator pointer lives in tp *)
       li tp alloc_pa;
       (* trap handler *)
       la t0 "mtrap";
       i (Insn.Csr (CSRRW, 0, t0, Csr.mtvec));
       (* satp; the canonical sfence.vma afterwards orders the
          page-table stores before any translation *)
       li t0 (Pte.make_satp ~mode:8 ~asid:0 ~root_pa);
       i (Insn.Csr (CSRRW, 0, t0, Csr.satp));
       i (Insn.Sfence_vma (0, 0));
       (* enter S-mode at smain *)
       la t0 "smain";
       i (Insn.Csr (CSRRW, 0, t0, Csr.mepc));
       (* mstatus.MPP = 01 (S) *)
       li t0 0x800L;
       i (Insn.Csr (CSRRC, 0, t0, Csr.mstatus));
       li t0 0x1000L;
       i (Insn.Csr (CSRRC, 0, t0, Csr.mstatus));
       li t0 0x800L;
       i (Insn.Csr (CSRRS, 0, t0, Csr.mstatus));
       i Insn.Mret;
       (* ------------- S-mode body (runs under Sv39) -------------- *)
       label "smain";
       li s2 heap_va;
       li s3 (Int64.of_int pages);
       li s1 0L; (* checksum *)
       (* first-touch writes: each page fault lazily allocates *)
       li t0 0L;
       label "touch";
       slli t1 t0 12;
       add t1 t1 s2;
       (* write a recognisable value at two spots in the page *)
       slli t2 t0 4;
       ori t2 t2 5;
       sd t2 t1 0;
       sd t0 t1 128;
       addi t0 t0 1;
       blt t0 s3 "touch";
       (* read-back passes (the first may also fault spuriously on
          stale TLBs; later rounds are pure Sv39 steady state) *)
       li s4 (Int64.of_int rounds);
       label "round";
       li t0 0L;
       label "readback";
       slli t1 t0 12;
       add t1 t1 s2;
       ld t2 t1 0;
       add s1 s1 t2;
       ld t2 t1 128;
       add s1 s1 t2;
       addi t0 t0 1;
       blt t0 s3 "readback";
       (* lazy *read* of a never-written page: must fault (once) and
          read 0 *)
       slli t1 s3 12;
       add t1 t1 s2;
       ld t2 t1 0;
       add s1 s1 t2;
       addi s4 s4 (-1);
       bnez s4 "round";
       (* done: ecall with checksum in a0 *)
       mv a0 s1;
       i Insn.Ecall;
       label "shang";
       j "shang";
       (* ------------- M-mode trap handler ------------------------ *)
       label "mtrap";
       i (Insn.Csr (CSRRS, t5, 0, Csr.mcause));
       (* ecall from S (9): exit with a0 *)
       li t6 9L;
       beq t5 t6 "do_exit";
       (* load (13) or store (15) page fault in the heap range? *)
       li t6 13L;
       beq t5 t6 "pf";
       li t6 15L;
       beq t5 t6 "pf";
       (* unexpected: exit 0xEE *)
       li a0 0xEEL;
       j "do_exit_raw";
       label "pf";
       i (Insn.Csr (CSRRS, t5, 0, Csr.mtval));
       li t6 heap_va;
       bltu t5 t6 "bad_fault";
       srli t5 t5 12;
       li t6 (Int64.shift_right_logical heap_va 12);
       sub t5 t5 t6; (* vpn0 index (heap is < 2MB so one L0 table) *)
       li t6 512L;
       bgeu t5 t6 "bad_fault";
       slli t5 t5 3;
       li t6 hl0_pa;
       add t5 t5 t6; (* &pte *)
       ld t6 t5 0;
       (* PTE already valid? spurious fault from a stale view: the
          Linux-style refault path executes sfence.vma *)
       i (Insn.Op_imm (AND, t6, t6, 1L));
       bnez t6 "spurious";
       (* allocate a page (bump pointer in tp), install the PTE.
          NO sfence.vma here -- this is the Figure 3 window. *)
       srli t6 tp 12;
       slli t6 t6 10;
       ori t6 t6 (pte_v lor pte_r lor pte_w lor pte_a lor pte_d);
       sd t6 t5 0;
       li t5 4096L;
       add tp tp t5;
       i Insn.Mret;
       label "spurious";
       i (Insn.Sfence_vma (0, 0));
       i Insn.Mret;
       label "bad_fault";
       li a0 0xEDL;
       j "do_exit_raw";
       label "do_exit";
       label "do_exit_raw";
     ]
    @. Wl_common.exit_with Asm.a0)

let spec : Wl_common.t =
  {
    wl_name = "vm_kernel";
    group = `Int;
    mimics = "Linux lazy page allocation (Figure 3 scenario)";
    program = (fun ~scale -> program ~scale ());
    small = 2;
    big = 16;
  }
